// Node state machine: SWIM §4.2 incarnation precedence rules, exercised by
// injecting wire messages into a single simulated node.
#include <gtest/gtest.h>

#include "proto/wire.h"
#include "sim/simulator.h"

namespace lifeguard {
namespace {

using swim::MemberState;

class NodeState : public ::testing::Test {
 protected:
  NodeState() : sim_(make()) {
    node().start();
    sim_.run_for(msec(10));
  }

  static sim::Simulator make() {
    sim::SimParams p;
    p.seed = 33;
    return sim::Simulator(1, swim::Config::lifeguard(), p);
  }

  swim::Node& node() { return sim_.node(0); }

  void inject(const proto::Message& m) {
    const auto bytes = proto::encode_datagram(m);
    node().on_packet(Address{200, 1}, bytes, Channel::kUdp);
  }

  void add_member(const std::string& name, std::uint64_t inc = 0) {
    inject(proto::Alive{name, inc, Address{100, 1}});
  }

  MemberState state(const std::string& name) {
    const auto s = node().state_of(name);
    EXPECT_TRUE(s.has_value()) << name;
    return s.value_or(MemberState::kDead);
  }

  std::uint64_t inc_of(const std::string& name) {
    return node().members().find(name)->incarnation;
  }

  sim::Simulator sim_;
};

TEST_F(NodeState, AliveAddsUnknownMember) {
  add_member("m", 3);
  EXPECT_EQ(state("m"), MemberState::kAlive);
  EXPECT_EQ(inc_of("m"), 3u);
  EXPECT_EQ(node().members().num_active(), 2);  // self + m
}

TEST_F(NodeState, StaleAliveIgnored) {
  add_member("m", 5);
  inject(proto::Alive{"m", 4, Address{100, 1}});
  EXPECT_EQ(inc_of("m"), 5u);
}

TEST_F(NodeState, SuspectRequiresKnownMember) {
  inject(proto::Suspect{"ghost", 1, "accuser"});
  EXPECT_FALSE(node().state_of("ghost").has_value());
}

TEST_F(NodeState, SuspectMarksAliveMember) {
  add_member("m", 2);
  inject(proto::Suspect{"m", 2, "accuser"});
  EXPECT_EQ(state("m"), MemberState::kSuspect);
  EXPECT_EQ(inc_of("m"), 2u);
}

TEST_F(NodeState, StaleSuspectIgnored) {
  add_member("m", 5);
  inject(proto::Suspect{"m", 4, "accuser"});
  EXPECT_EQ(state("m"), MemberState::kAlive);
}

TEST_F(NodeState, EqualIncarnationAliveDoesNotRefuteSuspicion) {
  // SWIM §4.2: alive overrides suspect only with a HIGHER incarnation.
  add_member("m", 2);
  inject(proto::Suspect{"m", 2, "accuser"});
  inject(proto::Alive{"m", 2, Address{100, 1}});
  EXPECT_EQ(state("m"), MemberState::kSuspect);
}

TEST_F(NodeState, HigherIncarnationAliveRefutesSuspicion) {
  add_member("m", 2);
  inject(proto::Suspect{"m", 2, "accuser"});
  inject(proto::Alive{"m", 3, Address{100, 1}});
  EXPECT_EQ(state("m"), MemberState::kAlive);
  EXPECT_EQ(inc_of("m"), 3u);
  // The refutation keeps spreading: it must sit in the broadcast queue.
  EXPECT_GT(node().pending_broadcasts(), 0u);
}

TEST_F(NodeState, SuspicionTimeoutDeclaresDead) {
  add_member("m", 0);
  inject(proto::Suspect{"m", 0, "accuser"});
  // n = 2 active: Min = 5·max(1, log10(2))·1 s = 5 s; Max = 6·Min = 30 s.
  sim_.run_for(sec(31));
  EXPECT_EQ(state("m"), MemberState::kDead);
  // The local timeout originated a failure event.
  bool found = false;
  for (const auto& e : sim_.events(0).events()) {
    if (e.type == swim::EventType::kFailed && e.member == "m") {
      EXPECT_TRUE(e.originated);
      EXPECT_EQ(e.reporter, "node-0");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(NodeState, IndependentConfirmationsShrinkTimeout) {
  add_member("m", 0);
  inject(proto::Suspect{"m", 0, "a1"});
  inject(proto::Suspect{"m", 0, "a2"});
  inject(proto::Suspect{"m", 0, "a3"});
  inject(proto::Suspect{"m", 0, "a4"});  // K = 3 reached
  // Timeout now at Min = 5 s, not Max = 30 s.
  sim_.run_for(sec(6));
  EXPECT_EQ(state("m"), MemberState::kDead);
}

TEST_F(NodeState, DuplicateOriginsDoNotShrinkTimeout) {
  add_member("m", 0);
  inject(proto::Suspect{"m", 0, "a1"});
  for (int i = 0; i < 10; ++i) inject(proto::Suspect{"m", 0, "a1"});
  sim_.run_for(sec(6));
  EXPECT_EQ(state("m"), MemberState::kSuspect);  // still waiting (Max = 30 s)
}

TEST_F(NodeState, DeadMessageKillsMember) {
  add_member("m", 1);
  inject(proto::Dead{"m", 1, "accuser"});
  EXPECT_EQ(state("m"), MemberState::kDead);
  // Applying gossip is dissemination, not origination.
  for (const auto& e : sim_.events(0).events()) {
    if (e.type == swim::EventType::kFailed && e.member == "m") {
      EXPECT_FALSE(e.originated);
      EXPECT_EQ(e.origin, "accuser");
    }
  }
}

TEST_F(NodeState, StaleDeadIgnored) {
  add_member("m", 5);
  inject(proto::Dead{"m", 3, "accuser"});
  EXPECT_EQ(state("m"), MemberState::kAlive);
}

TEST_F(NodeState, DeadFromSelfMeansLeft) {
  add_member("m", 1);
  inject(proto::Dead{"m", 1, "m"});
  EXPECT_EQ(state("m"), MemberState::kLeft);
  bool saw_left = false;
  for (const auto& e : sim_.events(0).events()) {
    saw_left |= e.type == swim::EventType::kLeft && e.member == "m";
    EXPECT_NE(e.type, swim::EventType::kFailed);
  }
  EXPECT_TRUE(saw_left);
}

TEST_F(NodeState, SuspectOnDeadMemberIgnored) {
  add_member("m", 1);
  inject(proto::Dead{"m", 1, "accuser"});
  inject(proto::Suspect{"m", 1, "other"});
  EXPECT_EQ(state("m"), MemberState::kDead);
}

TEST_F(NodeState, ResurrectionWithHigherIncarnation) {
  add_member("m", 1);
  inject(proto::Dead{"m", 1, "accuser"});
  inject(proto::Alive{"m", 2, Address{100, 1}});
  EXPECT_EQ(state("m"), MemberState::kAlive);
  EXPECT_EQ(inc_of("m"), 2u);
}

TEST_F(NodeState, SuspectHigherIncarnationUpdatesExistingSuspicion) {
  add_member("m", 1);
  inject(proto::Suspect{"m", 1, "a"});
  inject(proto::Suspect{"m", 3, "b"});
  EXPECT_EQ(state("m"), MemberState::kSuspect);
  EXPECT_EQ(inc_of("m"), 3u);
  // An alive at the old incarnation can no longer refute.
  inject(proto::Alive{"m", 2, Address{100, 1}});
  EXPECT_EQ(state("m"), MemberState::kSuspect);
  inject(proto::Alive{"m", 4, Address{100, 1}});
  EXPECT_EQ(state("m"), MemberState::kAlive);
}

TEST_F(NodeState, AliveUpdatesAddress) {
  add_member("m", 1);
  inject(proto::Alive{"m", 2, Address{111, 9}});
  EXPECT_EQ(node().members().find("m")->addr, (Address{111, 9}));
}

TEST_F(NodeState, MalformedPacketsAreCountedAndIgnored) {
  std::vector<std::uint8_t> garbage{0xff, 0x01, 0x02};
  node().on_packet(Address{200, 1}, garbage, Channel::kUdp);
  EXPECT_GT(node().metrics().counter_value("net.malformed"), 0);
  EXPECT_EQ(node().members().num_active(), 1);
}

TEST_F(NodeState, JoinEventEmittedOnce) {
  add_member("m", 0);
  add_member("m", 0);  // duplicate alive
  int joins = 0;
  for (const auto& e : sim_.events(0).events()) {
    joins += e.type == swim::EventType::kJoin && e.member == "m" ? 1 : 0;
  }
  EXPECT_EQ(joins, 1);
}

}  // namespace
}  // namespace lifeguard
