// Refutation: a suspected/declared-dead node must clear its name via a
// higher-incarnation alive, and the buddy system must accelerate the moment
// it learns of the suspicion.
#include <gtest/gtest.h>

#include "proto/wire.h"
#include "sim/simulator.h"

namespace lifeguard {
namespace {

sim::Simulator make(int n, const swim::Config& cfg, std::uint64_t seed) {
  sim::SimParams p;
  p.seed = seed;
  return sim::Simulator(n, cfg, p);
}

TEST(Refutation, SuspectAboutSelfBumpsIncarnationAndHealth) {
  auto sim = make(2, swim::Config::lifeguard(), 81);
  sim.start_all();
  sim.run_for(sec(2));
  ASSERT_EQ(sim.node(0).incarnation(), 0u);

  const auto bytes =
      proto::encode_datagram(proto::Suspect{"node-0", 0, "node-1"});
  sim.node(0).on_packet(sim::sim_address(1), bytes, Channel::kUdp);
  EXPECT_EQ(sim.node(0).incarnation(), 1u);
  EXPECT_EQ(sim.node(0).local_health().score(), 1);  // refute => LHM +1
  EXPECT_EQ(sim.node(0).metrics().counter_value("swim.refutations"), 1);
  EXPECT_GT(sim.node(0).pending_broadcasts(), 0u);
}

TEST(Refutation, StaleSuspectAboutSelfIgnored) {
  auto sim = make(2, swim::Config::lifeguard(), 83);
  sim.start_all();
  sim.run_for(sec(2));
  // First refutation moves us to incarnation 1; a replay at inc 0 is stale.
  auto s0 = proto::encode_datagram(proto::Suspect{"node-0", 0, "node-1"});
  sim.node(0).on_packet(sim::sim_address(1), s0, Channel::kUdp);
  sim.node(0).on_packet(sim::sim_address(1), s0, Channel::kUdp);
  EXPECT_EQ(sim.node(0).incarnation(), 1u);
}

TEST(Refutation, DeadAboutSelfIsRefutedUnlessLeaving) {
  auto sim = make(2, swim::Config::lifeguard(), 87);
  sim.start_all();
  sim.run_for(sec(2));
  auto d = proto::encode_datagram(proto::Dead{"node-0", 0, "node-1"});
  sim.node(0).on_packet(sim::sim_address(1), d, Channel::kUdp);
  EXPECT_EQ(sim.node(0).incarnation(), 1u);
  EXPECT_EQ(sim.node(0).metrics().counter_value("swim.refuted_death"), 1);

  // While leaving, the same message is accepted silently.
  sim.node(1).leave();
  sim.run_for(msec(100));
  auto d1 = proto::encode_datagram(proto::Dead{"node-1", 5, "node-0"});
  const auto inc_before = sim.node(1).incarnation();
  sim.node(1).on_packet(sim::sim_address(0), d1, Channel::kUdp);
  EXPECT_EQ(sim.node(1).incarnation(), inc_before);
}

TEST(Refutation, RefutationIncarnationExceedsSuspicion) {
  auto sim = make(2, swim::Config::lifeguard(), 89);
  sim.start_all();
  sim.run_for(sec(2));
  // Suspected at a (fabricated) high incarnation: the refutation must jump
  // past it, not just increment once from the local value.
  auto s = proto::encode_datagram(proto::Suspect{"node-0", 41, "node-1"});
  sim.node(0).on_packet(sim::sim_address(1), s, Channel::kUdp);
  EXPECT_EQ(sim.node(0).incarnation(), 42u);
}

class BuddyParam : public ::testing::TestWithParam<bool> {};

TEST_P(BuddyParam, SuspectedNodeLearnsOfSuspicion) {
  // Block a node long enough to be suspected, then release it. With or
  // without buddy it must eventually refute; the mechanism differs (buddy:
  // first ping carries the suspicion; default: dedicated gossip).
  const bool buddy = GetParam();
  swim::Config cfg = swim::Config::swim_baseline();
  cfg.buddy_system = buddy;
  auto sim = make(12, cfg, 91);
  sim.start_all();
  sim.run_for(sec(12));
  ASSERT_TRUE(sim.converged(12));

  // Several cycles, each long enough for a suspicion but short of the fixed
  // timeout (5·log10(12) ≈ 5.4 s): the suspicion window must be wide enough
  // that some prober's round-robin reaches node-4 while suspecting it.
  for (int cycle = 0; cycle < 3; ++cycle) {
    sim.block_node(4);
    sim.run_for(sec_f(4.5));
    sim.unblock_node(4);
    sim.run_for(sec(10));
  }

  EXPECT_GE(sim.node(4).incarnation(), 1u) << "never refuted";
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(sim.node(i).members().num_active(), 12) << "node " << i;
  }
  if (buddy) {
    std::int64_t prioritized = 0;
    for (int i = 0; i < 12; ++i) {
      prioritized += sim.node(i).metrics().counter_value("buddy.prioritized");
    }
    EXPECT_GT(prioritized, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(BuddyOnOff, BuddyParam, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Buddy" : "Default";
                         });

TEST(Refutation, FlappingNodeIncarnationGrowsMonotonically) {
  auto sim = make(12, swim::Config::lifeguard(), 97);
  sim.start_all();
  sim.run_for(sec(12));
  std::uint64_t last = sim.node(4).incarnation();
  for (int cycle = 0; cycle < 4; ++cycle) {
    sim.block_node(4);
    sim.run_for(sec(4));
    sim.unblock_node(4);
    sim.run_for(sec(6));
    const std::uint64_t now = sim.node(4).incarnation();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GT(last, 0u);
}

}  // namespace
}  // namespace lifeguard
