// Probe pipeline: direct probe, indirect relay path, nack protocol, and
// LHA-Probe's timing backoff, on small simulated clusters.
#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace lifeguard {
namespace {

sim::Simulator make(int n, const swim::Config& cfg, std::uint64_t seed) {
  sim::SimParams p;
  p.seed = seed;
  return sim::Simulator(n, cfg, p);
}

TEST(NodeProbe, SteadyStateProbesAreAcked) {
  auto sim = make(4, swim::Config::lifeguard(), 41);
  sim.start_all();
  sim.run_for(sec(20));
  for (int i = 0; i < 4; ++i) {
    auto& m = sim.node(i).metrics();
    EXPECT_GT(m.counter_value("probe.started"), 10);
    EXPECT_EQ(m.counter_value("probe.started"),
              m.counter_value("probe.acked"))
        << "node " << i;
    EXPECT_EQ(m.counter_value("probe.failed"), 0);
    EXPECT_EQ(sim.node(i).local_health().score(), 0);
  }
}

TEST(NodeProbe, CrashTriggersIndirectThenSuspicion) {
  auto sim = make(8, swim::Config::lifeguard(), 43);
  sim.start_all();
  sim.run_for(sec(10));
  ASSERT_TRUE(sim.converged(8));

  sim.crash_node(2);
  sim.run_for(sec(10));
  std::int64_t indirect = 0, relayed = 0, suspicions = 0;
  for (int i = 0; i < 8; ++i) {
    if (i == 2) continue;
    auto& m = sim.node(i).metrics();
    indirect += m.counter_value("probe.indirect");
    relayed += m.counter_value("probe.relayed");
    suspicions += m.counter_value("suspicion.started");
  }
  EXPECT_GT(indirect, 0);  // someone escalated past the direct probe
  EXPECT_GT(relayed, 0);   // someone served as relay
  EXPECT_GT(suspicions, 0);
}

TEST(NodeProbe, IndirectPathRescuesUdpLossyDirectProbe) {
  // With heavy UDP loss, the reliable-channel fallback keeps the cluster
  // converged (memberlist's motivation for the TCP fallback probe).
  swim::Config cfg = swim::Config::lifeguard();
  sim::SimParams p;
  p.seed = 47;
  p.network.udp_loss = 0.6;
  sim::Simulator sim(6, cfg, p);
  sim.start_all();
  sim.run_for(sec(40));
  // No member may be declared dead: acks flow via relays or reliable pings.
  for (int i = 0; i < 6; ++i) {
    for (const auto& e : sim.events(i).events()) {
      EXPECT_NE(e.type, swim::EventType::kFailed)
          << "node " << i << " declared " << e.member;
    }
  }
}

TEST(NodeProbe, NackSentWhenTargetSilent) {
  auto sim = make(8, swim::Config::lifeguard(), 53);
  sim.start_all();
  sim.run_for(sec(10));
  sim.crash_node(5);
  sim.run_for(sec(8));
  std::int64_t nacks_sent = 0, nacks_recv = 0;
  for (int i = 0; i < 8; ++i) {
    if (i == 5) continue;
    nacks_sent += sim.node(i).metrics().counter_value("probe.nack_sent");
    nacks_recv += sim.node(i).metrics().counter_value("probe.nack_received");
  }
  EXPECT_GT(nacks_sent, 0);
  EXPECT_GT(nacks_recv, 0);
}

TEST(NodeProbe, NoNacksWithoutLhaProbe) {
  auto sim = make(8, swim::Config::swim_baseline(), 59);
  sim.start_all();
  sim.run_for(sec(10));
  sim.crash_node(5);
  sim.run_for(sec(8));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sim.node(i).metrics().counter_value("probe.nack_sent"), 0);
  }
}

TEST(NodeProbe, BlockedNodeBacksOffUnderLhaProbe) {
  auto sim = make(16, swim::Config::lifeguard(), 61);
  sim.start_all();
  sim.run_for(sec(12));
  ASSERT_TRUE(sim.converged(16));

  // Cycle node 3 through block/open windows; its failed probes, refutations
  // and missed nacks must raise the LHM.
  for (int cycle = 0; cycle < 6; ++cycle) {
    sim.block_node(3);
    sim.run_for(sec(5));
    sim.unblock_node(3);
    sim.run_for(msec(30));
  }
  EXPECT_GT(sim.node(3).local_health().score(), 0);
  // Healthy members' LHM stays near zero: their probes of healthy peers ack.
  EXPECT_LE(sim.node(7).local_health().score(), 2);
}

TEST(NodeProbe, BaselineNeverScalesTimings) {
  auto sim = make(16, swim::Config::swim_baseline(), 67);
  sim.start_all();
  sim.run_for(sec(12));
  for (int cycle = 0; cycle < 4; ++cycle) {
    sim.block_node(3);
    sim.run_for(sec(5));
    sim.unblock_node(3);
    sim.run_for(msec(30));
  }
  EXPECT_EQ(sim.node(3).local_health().score(), 0);
  EXPECT_EQ(sim.node(3).local_health().multiplier(), 1);
}

TEST(NodeProbe, MisroutedPingIsDropped) {
  auto sim = make(2, swim::Config::lifeguard(), 71);
  sim.start_all();
  sim.run_for(sec(2));
  // A ping naming the wrong target must not be acked.
  const auto bytes =
      proto::encode_datagram(proto::Ping{9, "someone-else", "node-1",
                                         sim::sim_address(1)});
  sim.node(0).on_packet(sim::sim_address(1), bytes, Channel::kUdp);
  EXPECT_EQ(sim.node(0).metrics().counter_value("probe.misrouted_ping"), 1);
}

TEST(NodeProbe, StaleAckIsCounted) {
  auto sim = make(2, swim::Config::lifeguard(), 73);
  sim.start_all();
  sim.run_for(sec(2));
  const auto bytes = proto::encode_datagram(proto::Ack{424242, "node-1"});
  sim.node(0).on_packet(sim::sim_address(1), bytes, Channel::kUdp);
  EXPECT_EQ(sim.node(0).metrics().counter_value("probe.stale_ack"), 1);
}

}  // namespace
}  // namespace lifeguard
