// Piggyback selection, including the Buddy System's guaranteed suspect
// notification (paper §IV-C).
#include "swim/piggyback.h"

#include <gtest/gtest.h>

#include "proto/wire.h"

namespace lifeguard::swim {
namespace {

std::vector<std::uint8_t> suspect_frame(const std::string& member) {
  BufWriter w;
  proto::encode(proto::Suspect{member, 1, "me"}, w);
  return std::move(w).take();
}

TEST(DefaultPiggyback, DrainsQueue) {
  proto::BroadcastQueue q(4);
  q.queue("a", suspect_frame("a"));
  DefaultPiggyback pb(q);
  auto frames = pb.select(1000, 10, nullptr);
  EXPECT_EQ(frames.size(), 1u);
}

TEST(DefaultPiggyback, IgnoresPingTarget) {
  proto::BroadcastQueue q(4);
  DefaultPiggyback pb(q);
  const std::string target = "t";
  EXPECT_TRUE(pb.select(1000, 10, &target).empty());
}

TEST(BuddyPiggyback, PrependsSuspectFrameForPingTarget) {
  proto::BroadcastQueue q(4);
  q.queue("other", suspect_frame("other"));
  int priority_calls = 0;
  BuddyPiggyback pb(q, [&](const std::string& t)
                           -> std::optional<std::vector<std::uint8_t>> {
    ++priority_calls;
    if (t == "suspected") return suspect_frame("suspected");
    return std::nullopt;
  });

  const std::string target = "suspected";
  auto frames = pb.select(1000, 10, &target);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(priority_calls, 1);
  // The buddy frame must come FIRST so the target refutes before acking.
  BufReader r(frames[0]);
  const auto msg = proto::decode(r);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get<proto::Suspect>(*msg).member, "suspected");
}

TEST(BuddyPiggyback, NoPriorityFrameForUnsuspectedTarget) {
  proto::BroadcastQueue q(4);
  BuddyPiggyback pb(q, [](const std::string&)
                           -> std::optional<std::vector<std::uint8_t>> {
    return std::nullopt;
  });
  const std::string target = "healthy";
  EXPECT_TRUE(pb.select(1000, 10, &target).empty());
}

TEST(BuddyPiggyback, NonPingPacketsSkipPriority) {
  proto::BroadcastQueue q(4);
  int calls = 0;
  BuddyPiggyback pb(q, [&](const std::string&)
                           -> std::optional<std::vector<std::uint8_t>> {
    ++calls;
    return std::nullopt;
  });
  (void)pb.select(1000, 10, nullptr);
  EXPECT_EQ(calls, 0);
}

TEST(BuddyPiggyback, PriorityFrameRespectsBudget) {
  proto::BroadcastQueue q(4);
  BuddyPiggyback pb(q, [](const std::string& t)
                           -> std::optional<std::vector<std::uint8_t>> {
    return std::vector<std::uint8_t>(100, 0);
    (void)t;
  });
  const std::string target = "t";
  // Budget too small for the 100-byte priority frame: dropped gracefully.
  EXPECT_TRUE(pb.select(20, 10, &target).empty());
}

TEST(BuddyPiggyback, GuaranteedEvenWhenQueueSaturated) {
  // The paper's point: normal gossip selection might starve the suspect
  // notification; buddy must include it regardless of queue pressure.
  proto::BroadcastQueue q(4);
  for (int i = 0; i < 50; ++i) {
    q.queue("m" + std::to_string(i),
            std::vector<std::uint8_t>(40, static_cast<std::uint8_t>(i)));
  }
  BuddyPiggyback pb(q, [](const std::string& t)
                           -> std::optional<std::vector<std::uint8_t>> {
    return suspect_frame(t);
  });
  const std::string target = "victim";
  auto frames = pb.select(200, 128, &target);
  ASSERT_FALSE(frames.empty());
  BufReader r(frames[0]);
  const auto msg = proto::decode(r);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get<proto::Suspect>(*msg).member, "victim");
}

}  // namespace
}  // namespace lifeguard::swim
