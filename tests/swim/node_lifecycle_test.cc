// Dead-member lifecycle: retention, gossip-to-the-dead, housekeeping reclaim
// and the Serf-style reconnect that re-merges healed partitions.
#include <gtest/gtest.h>

#include "proto/wire.h"
#include "sim/simulator.h"

namespace lifeguard {
namespace {

using swim::MemberState;

sim::Simulator make(int n, swim::Config cfg, std::uint64_t seed) {
  sim::SimParams p;
  p.seed = seed;
  return sim::Simulator(n, cfg, p);
}

TEST(Lifecycle, DeadMembersAreRetainedThenReclaimed) {
  swim::Config cfg = swim::Config::lifeguard();
  cfg.dead_reclaim_after = sec(40);
  auto sim = make(8, cfg, 401);
  sim.start_all();
  sim.run_for(sec(10));
  ASSERT_TRUE(sim.converged(8));

  sim.crash_node(3);
  sim.run_for(sec(30));
  // Declared dead but still known (retention window).
  ASSERT_TRUE(sim.node(0).state_of("node-3").has_value());
  EXPECT_EQ(sim.node(0).state_of("node-3"), MemberState::kDead);

  sim.run_for(sec(80));  // housekeeping ticks at reclaim/2 cadence
  EXPECT_FALSE(sim.node(0).state_of("node-3").has_value())
      << "dead member should have been reclaimed";
  EXPECT_GT(sim.node(0).metrics().counter_value("swim.reclaimed"), 0);
}

TEST(Lifecycle, ZeroReclaimKeepsDeadForever) {
  swim::Config cfg = swim::Config::lifeguard();
  cfg.dead_reclaim_after = Duration{0};
  auto sim = make(8, cfg, 403);
  sim.start_all();
  sim.run_for(sec(10));
  sim.crash_node(3);
  sim.run_for(sec(120));
  EXPECT_TRUE(sim.node(0).state_of("node-3").has_value());
}

TEST(Lifecycle, GossipReachesTheRecentlyDead) {
  // A member falsely declared dead must keep receiving gossip for the
  // gossip_to_dead window so it can hear of its death and refute. Verify the
  // window's effect: a long-blocked node that returns inside the window
  // refutes quickly.
  auto sim = make(16, swim::Config::swim_baseline(), 405);
  sim.start_all();
  sim.run_for(sec(12));
  ASSERT_TRUE(sim.converged(16));

  sim.block_node(5);
  sim.run_for(sec(25));  // suspicion (~6 s) + timeout (~6 s): declared dead
  ASSERT_EQ(sim.node(0).state_of("node-5"), MemberState::kDead);
  sim.unblock_node(5);
  sim.run_for(sec(20));
  EXPECT_EQ(sim.node(0).state_of("node-5"), MemberState::kAlive)
      << "dead member could not refute: gossip-to-the-dead failed";
  EXPECT_GE(sim.node(5).incarnation(), 1u);
}

TEST(Lifecycle, ReconnectTicksTargetDeadMembers) {
  auto sim = make(8, swim::Config::lifeguard(), 407);
  sim.start_all();
  sim.run_for(sec(10));
  // Partition node 6 away; after it is declared dead, reconnect attempts
  // (push-pull to a dead member) must be recorded at the survivors.
  sim.network().set_partition(6, 3);
  sim.run_for(sec(90));
  std::int64_t attempts = 0;
  for (int i = 0; i < 6; ++i) {
    attempts += sim.node(i).metrics().counter_value("sync.reconnect_attempts");
  }
  EXPECT_GT(attempts, 0);
}

TEST(Lifecycle, StoppedNodeGoesQuiet) {
  auto sim = make(4, swim::Config::lifeguard(), 409);
  sim.start_all();
  sim.run_for(sec(5));
  auto& n0 = sim.node(0);
  n0.stop();
  EXPECT_FALSE(n0.running());
  const auto msgs_before = n0.metrics().counter_value("net.msgs_sent");
  sim.run_for(sec(10));
  EXPECT_EQ(n0.metrics().counter_value("net.msgs_sent"), msgs_before);
  // Stop is idempotent.
  n0.stop();
  EXPECT_FALSE(n0.running());
}

TEST(Lifecycle, LeaverDoesNotRefuteItsOwnDeparture) {
  auto sim = make(6, swim::Config::lifeguard(), 411);
  sim.start_all();
  sim.run_for(sec(8));
  ASSERT_TRUE(sim.converged(6));
  const auto inc_before = sim.node(2).incarnation();
  sim.node(2).leave();
  sim.run_for(sec(10));
  // Everyone sees it as left, and the leaver never bumped its incarnation to
  // fight the dead-about-self messages echoing back.
  for (int i = 0; i < 6; ++i) {
    if (i == 2) continue;
    EXPECT_EQ(sim.node(i).state_of("node-2"), MemberState::kLeft);
  }
  EXPECT_EQ(sim.node(2).incarnation(), inc_before);
}

TEST(Lifecycle, RejoinAfterLeaveWithHigherIncarnation) {
  auto sim = make(6, swim::Config::lifeguard(), 413);
  sim.start_all();
  sim.run_for(sec(8));
  sim.node(2).leave();
  sim.run_for(sec(8));
  ASSERT_EQ(sim.node(0).state_of("node-2"), MemberState::kLeft);

  // A fresh alive at a higher incarnation resurrects the member (operator
  // restarted the agent).
  const auto bytes = proto::encode_datagram(
      proto::Alive{"node-2", sim.node(2).incarnation() + 1,
                   sim::sim_address(2)});
  sim.node(0).on_packet(sim::sim_address(2), bytes, Channel::kUdp);
  EXPECT_EQ(sim.node(0).state_of("node-2"), MemberState::kAlive);
}

}  // namespace
}  // namespace lifeguard
