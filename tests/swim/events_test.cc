// EventBus: multi-subscriber fan-out with RAII unsubscription.
#include "swim/events.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

namespace lifeguard::swim {
namespace {

MemberEvent event_about(const std::string& member) {
  MemberEvent e;
  e.type = EventType::kSuspect;
  e.member = member;
  return e;
}

TEST(EventBus, DeliversToEverySubscriberInOrder) {
  EventBus bus;
  std::vector<int> order;
  auto a = bus.subscribe([&](const MemberEvent&) { order.push_back(1); });
  auto b = bus.subscribe([&](const MemberEvent&) { order.push_back(2); });
  bus.publish(event_about("x"));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(bus.subscriber_count(), 2u);
}

TEST(EventBus, DestroyingSubscriptionDetaches) {
  EventBus bus;
  int count = 0;
  {
    auto sub = bus.subscribe([&](const MemberEvent&) { ++count; });
    bus.publish(event_about("x"));
    EXPECT_EQ(count, 1);
  }
  bus.publish(event_about("y"));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(EventBus, ResetDetachesAndIsIdempotent) {
  EventBus bus;
  int count = 0;
  auto sub = bus.subscribe([&](const MemberEvent&) { ++count; });
  EXPECT_TRUE(sub.active());
  sub.reset();
  sub.reset();
  EXPECT_FALSE(sub.active());
  bus.publish(event_about("x"));
  EXPECT_EQ(count, 0);
}

TEST(EventBus, MoveTransfersOwnership) {
  EventBus bus;
  int count = 0;
  auto a = bus.subscribe([&](const MemberEvent&) { ++count; });
  EventBus::Subscription b = std::move(a);
  bus.publish(event_about("x"));
  EXPECT_EQ(count, 1);
  // Moving onto an attached handle detaches its old subscription first.
  b = bus.subscribe([&](const MemberEvent&) { count += 10; });
  bus.publish(event_about("y"));
  EXPECT_EQ(count, 11);
  EXPECT_EQ(bus.subscriber_count(), 1u);
}

TEST(EventBus, SubscriptionOutlivingBusIsSafe) {
  EventBus::Subscription sub;
  {
    EventBus bus;
    sub = bus.subscribe([](const MemberEvent&) {});
    EXPECT_TRUE(sub.active());
  }
  EXPECT_FALSE(sub.active());
  sub.reset();  // no-op, no crash
}

TEST(EventBus, SubscriberMayUnsubscribeItselfDuringPublish) {
  EventBus bus;
  int count = 0;
  EventBus::Subscription sub;
  sub = bus.subscribe([&](const MemberEvent&) {
    ++count;
    sub.reset();
  });
  bus.publish(event_about("x"));
  bus.publish(event_about("y"));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(EventBus, CrossThreadResetWaitsForInFlightPublish) {
  // After reset() returns on another thread, the handler must never run
  // again — this is what makes destroying captures safe on the UDP backend.
  EventBus bus;
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load()) bus.publish(MemberEvent{});
  });

  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> count{0};
    auto sub = bus.subscribe([&count](const MemberEvent&) { ++count; });
    while (count.load() == 0 && !stop.load()) std::this_thread::yield();
    sub.reset();
    const std::int64_t at_reset = count.load();
    // Give the publisher time to (incorrectly) call a detached handler.
    for (int i = 0; i < 100; ++i) std::this_thread::yield();
    EXPECT_EQ(count.load(), at_reset) << "handler ran after reset()";
  }
  stop = true;
  publisher.join();
}

TEST(EventBus, LegacyListenerAdapterStillWorks) {
  // RecordingListener subscribes the old way through a closure.
  EventBus bus;
  RecordingListener rec;
  auto sub =
      bus.subscribe([&rec](const MemberEvent& e) { rec.on_event(e); });
  bus.publish(event_about("m1"));
  bus.publish(event_about("m2"));
  ASSERT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.events()[1].member, "m2");
}

}  // namespace
}  // namespace lifeguard::swim
