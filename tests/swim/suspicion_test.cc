// LHA-Suspicion timeout math (paper §IV-B) — unit and property tests.
#include "swim/suspicion.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace lifeguard::swim {
namespace {

TEST(SuspicionTimeout, FixedWhenMinEqualsMax) {
  // SWIM baseline: β = 1 means Max == Min — a constant timeout.
  EXPECT_EQ(suspicion_timeout(sec(10), sec(10), 3, 0), sec(10));
  EXPECT_EQ(suspicion_timeout(sec(10), sec(10), 3, 2), sec(10));
}

TEST(SuspicionTimeout, StartsAtMaxWithoutConfirmations) {
  EXPECT_EQ(suspicion_timeout(sec(10), sec(60), 3, 0), sec(60));
}

TEST(SuspicionTimeout, ReachesMinAtKConfirmations) {
  EXPECT_EQ(suspicion_timeout(sec(10), sec(60), 3, 3), sec(10));
  // And never goes below Min for C > K.
  EXPECT_EQ(suspicion_timeout(sec(10), sec(60), 3, 10), sec(10));
}

TEST(SuspicionTimeout, MatchesPaperFormula) {
  // timeout = max(Min, Max − (Max−Min)·log(C+1)/log(K+1))
  const Duration min = sec(10), max = sec(60);
  const int k = 3;
  for (int c = 0; c <= k; ++c) {
    const double expected =
        std::max(10.0, 60.0 - 50.0 * std::log(c + 1.0) / std::log(k + 1.0));
    EXPECT_NEAR(suspicion_timeout(min, max, k, c).seconds(), expected, 1e-6)
        << "C=" << c;
  }
}

TEST(SuspicionTimeout, LogarithmicDecayShrinksEachStep) {
  // The first confirmation buys the biggest reduction (paper's intuition).
  const Duration min = sec(10), max = sec(60);
  const int k = 5;
  Duration prev = suspicion_timeout(min, max, k, 0);
  Duration prev_drop = Duration{1LL << 60};
  for (int c = 1; c <= k; ++c) {
    const Duration cur = suspicion_timeout(min, max, k, c);
    const Duration drop = prev - cur;
    EXPECT_GT(drop, Duration{0}) << "C=" << c;
    EXPECT_LT(drop, prev_drop) << "C=" << c;
    prev = cur;
    prev_drop = drop;
  }
}

TEST(SuspicionTimeout, DegenerateInputsAreSafe) {
  EXPECT_EQ(suspicion_timeout(sec(10), sec(60), 0, 0), sec(60));  // K=0: fixed at Max
  EXPECT_EQ(suspicion_timeout(sec(10), sec(60), -1, 5), sec(60));
  EXPECT_EQ(suspicion_timeout(sec(10), sec(60), 3, -4), sec(60));  // C<0 -> 0
  EXPECT_EQ(suspicion_timeout(sec(60), sec(10), 3, 0), sec(60));   // max<min
}

// Property sweep: monotonicity and bounds over a (K, C, Min, Max) grid.
class TimeoutProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TimeoutProperty, BoundedAndMonotone) {
  const auto [k, min_s, beta] = GetParam();
  const Duration min = sec(min_s);
  const Duration max = sec(min_s * beta);
  Duration prev = max + sec(1);
  for (int c = 0; c <= k + 3; ++c) {
    const Duration t = suspicion_timeout(min, max, k, c);
    EXPECT_GE(t, min);
    EXPECT_LE(t, max);
    EXPECT_LE(t, prev);  // monotone non-increasing in C
    prev = t;
  }
  EXPECT_EQ(prev, min);  // saturates at Min
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimeoutProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),   // K
                       ::testing::Values(5, 10, 21),       // Min seconds
                       ::testing::Values(2, 4, 6)));       // β

TEST(SuspicionMin, FollowsAlphaLogN) {
  // Min = α·log10(n)·ProbeInterval (floored at α·ProbeInterval).
  EXPECT_NEAR(suspicion_min(5.0, 128, sec(1)).seconds(),
              5.0 * std::log10(128.0), 1e-6);
  EXPECT_NEAR(suspicion_min(2.0, 1000, sec(1)).seconds(), 6.0, 1e-6);
  // Tiny clusters clamp the log factor to 1.
  EXPECT_NEAR(suspicion_min(5.0, 3, sec(1)).seconds(), 5.0, 1e-6);
  EXPECT_NEAR(suspicion_min(5.0, 1, sec(1)).seconds(), 5.0, 1e-6);
  // Scales with the probe interval.
  EXPECT_NEAR(suspicion_min(5.0, 128, msec(500)).seconds(),
              2.5 * std::log10(128.0), 1e-6);
}

TEST(Suspicion, ConfirmCountsDistinctOriginsOnly) {
  Suspicion s("m", 1, "first", sec(10), sec(60), 3, TimePoint{0});
  EXPECT_EQ(s.confirmations(), 0);
  EXPECT_FALSE(s.confirm("first"));  // creator already counted toward K
  EXPECT_TRUE(s.confirm("a"));
  EXPECT_FALSE(s.confirm("a"));  // duplicate
  EXPECT_TRUE(s.confirm("b"));
  EXPECT_TRUE(s.confirm("c"));
  EXPECT_EQ(s.confirmations(), 3);
  EXPECT_FALSE(s.accepts_more());
  EXPECT_FALSE(s.confirm("d"));  // K reached: no further re-gossip
}

TEST(Suspicion, DeadlineTracksConfirmations) {
  const TimePoint start{1'000'000};
  Suspicion s("m", 1, "first", sec(10), sec(60), 3, start);
  EXPECT_EQ(s.deadline(), start + sec(60));
  (void)s.confirm("a");
  (void)s.confirm("b");
  (void)s.confirm("c");
  EXPECT_EQ(s.deadline(), start + sec(10));
  // remaining_at can be negative when the reduced deadline already passed.
  EXPECT_EQ(s.remaining_at(start + sec(15)), sec(-5));
  EXPECT_EQ(s.remaining_at(start + sec(4)), sec(6));
}

TEST(Suspicion, IncarnationUpdatable) {
  Suspicion s("m", 1, "f", sec(10), sec(60), 3, TimePoint{});
  EXPECT_EQ(s.incarnation(), 1u);
  s.set_incarnation(5);
  EXPECT_EQ(s.incarnation(), 5u);
  EXPECT_EQ(s.member(), "m");
}

}  // namespace
}  // namespace lifeguard::swim
