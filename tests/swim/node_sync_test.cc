// Anti-entropy push-pull: snapshot contents, merge semantics (including the
// dead→suspect conversion) and the join path, via direct message injection.
#include <gtest/gtest.h>

#include "proto/wire.h"
#include "sim/simulator.h"

namespace lifeguard {
namespace {

using swim::MemberState;

class NodeSync : public ::testing::Test {
 protected:
  NodeSync() : sim_(make()) {
    node().start();
    sim_.run_for(msec(10));
  }

  static sim::Simulator make() {
    sim::SimParams p;
    p.seed = 55;
    return sim::Simulator(2, swim::Config::lifeguard(), p);
  }

  swim::Node& node() { return sim_.node(0); }

  void inject(const proto::Message& m) {
    const auto bytes = proto::encode_datagram(m);
    node().on_packet(sim::sim_address(1), bytes, Channel::kReliable);
  }

  proto::PushPull make_state(bool response,
                             std::vector<proto::MemberSnapshot> members) {
    proto::PushPull p;
    p.is_response = response;
    p.join = false;
    p.from = "node-1";
    p.from_addr = sim::sim_address(1);
    p.members = std::move(members);
    return p;
  }

  static proto::MemberSnapshot snap(const std::string& name, MemberState st,
                                    std::uint64_t inc = 0) {
    return proto::MemberSnapshot{name, Address{50, 1}, inc,
                                 static_cast<std::uint8_t>(st)};
  }

  sim::Simulator sim_;
};

TEST_F(NodeSync, MergeAddsAliveMembers) {
  inject(make_state(true, {snap("m1", MemberState::kAlive, 4),
                           snap("m2", MemberState::kAlive, 0)}));
  EXPECT_EQ(node().state_of("m1"), MemberState::kAlive);
  EXPECT_EQ(node().state_of("m2"), MemberState::kAlive);
  EXPECT_EQ(node().members().find("m1")->incarnation, 4u);
}

TEST_F(NodeSync, MergeConvertsRemoteDeadToSuspicion) {
  // A remote dead entry must NOT kill the member instantly: it degrades to a
  // suspicion (memberlist's refutation window).
  inject(make_state(true, {snap("m1", MemberState::kAlive, 0)}));
  inject(make_state(true, {snap("m1", MemberState::kDead, 0)}));
  EXPECT_EQ(node().state_of("m1"), MemberState::kSuspect);
}

TEST_F(NodeSync, MergeSuspectOnUnknownMemberIgnored) {
  inject(make_state(true, {snap("ghost", MemberState::kSuspect, 1)}));
  EXPECT_FALSE(node().state_of("ghost").has_value());
}

TEST_F(NodeSync, MergeLeftIsAppliedDirectly) {
  inject(make_state(true, {snap("m1", MemberState::kAlive, 2)}));
  inject(make_state(true, {snap("m1", MemberState::kLeft, 2)}));
  EXPECT_EQ(node().state_of("m1"), MemberState::kLeft);
}

TEST_F(NodeSync, MergeStaleEntriesIgnored) {
  inject(make_state(true, {snap("m1", MemberState::kAlive, 5)}));
  inject(make_state(true, {snap("m1", MemberState::kDead, 3)}));   // stale
  inject(make_state(true, {snap("m1", MemberState::kAlive, 2)}));  // stale
  EXPECT_EQ(node().state_of("m1"), MemberState::kAlive);
  EXPECT_EQ(node().members().find("m1")->incarnation, 5u);
}

TEST_F(NodeSync, RepeatedMergesDoNotManufactureIndependentSuspicions) {
  // Regression: merge-imported suspicions are attributed to the LOCAL node
  // (memberlist mergeState), so ten syncs must count as ONE origin and the
  // LHA-Suspicion timeout must stay at Max, not collapse toward Min.
  inject(make_state(true, {snap("m1", MemberState::kAlive, 0)}));
  for (int i = 0; i < 10; ++i) {
    inject(make_state(true, {snap("m1", MemberState::kSuspect, 0)}));
  }
  EXPECT_EQ(node().state_of("m1"), MemberState::kSuspect);
  // Min = 5 s (n=2 clamps log10 to 1), Max = 30 s. If merges had counted as
  // independent origins the timeout would have collapsed to ~5 s.
  sim_.run_for(sec(12));
  EXPECT_EQ(node().state_of("m1"), MemberState::kSuspect)
      << "timeout collapsed: merges were counted as independent suspicions";
  sim_.run_for(sec(25));
  EXPECT_EQ(node().state_of("m1"), MemberState::kDead);
}

TEST_F(NodeSync, RequestTriggersResponseWithFullState) {
  // Prime the node with some members, then send a request and capture the
  // response at the network layer via node-1's inbox.
  inject(make_state(true, {snap("m1", MemberState::kAlive, 1),
                           snap("m2", MemberState::kAlive, 2)}));
  proto::PushPull req = make_state(false, {});
  const auto bytes = proto::encode_datagram(req);
  node().on_packet(sim::sim_address(1), bytes, Channel::kReliable);
  EXPECT_GT(node().metrics().counter_value("sync.received"), 0);
  // The response contains self + m1 + m2 (we can't easily decode node-1's
  // inbox here, but the send counter must have moved on the reliable
  // channel).
  EXPECT_GT(node().metrics().counter_value("net.sent.push-pull-resp"), 0);
}

TEST_F(NodeSync, JoinViaSeedPopulatesBothSides) {
  sim_.node(1).start();
  sim_.node(1).join({sim::sim_address(0)});
  sim_.run_for(sec(1));
  EXPECT_EQ(node().members().num_active(), 2);
  EXPECT_EQ(sim_.node(1).members().num_active(), 2);
}

TEST_F(NodeSync, MergeRefutesSuspicionAboutSelf) {
  // A peer claiming WE are suspect/dead must trigger refutation on merge.
  const auto inc_before = node().incarnation();
  inject(make_state(true, {snap("node-0", MemberState::kDead, inc_before)}));
  EXPECT_GT(node().incarnation(), inc_before);
  EXPECT_GT(node().metrics().counter_value("swim.refutations"), 0);
}

}  // namespace
}  // namespace lifeguard
