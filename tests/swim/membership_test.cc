// Membership table: round-robin probe order, random insertion, selection.
#include "swim/membership.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace lifeguard::swim {
namespace {

Member mk(const std::string& name, MemberState s = MemberState::kAlive) {
  Member m;
  m.name = name;
  m.addr = Address{1, 1};
  m.state = s;
  return m;
}

TEST(Membership, AddFindContains) {
  Rng rng(1);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  t.add(mk("a"), rng);
  EXPECT_TRUE(t.contains("a"));
  EXPECT_FALSE(t.contains("b"));
  ASSERT_NE(t.find("a"), nullptr);
  EXPECT_EQ(t.find("a")->name, "a");
  EXPECT_EQ(t.find("nope"), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Membership, NumActiveCountsAliveAndSuspect) {
  Rng rng(2);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  t.add(mk("a"), rng);
  t.add(mk("b", MemberState::kSuspect), rng);
  t.add(mk("c", MemberState::kDead), rng);
  t.add(mk("d", MemberState::kLeft), rng);
  EXPECT_EQ(t.num_active(), 3);  // self + a + b
}

TEST(Membership, ProbeOrderVisitsEveryActiveMemberPerPass) {
  Rng rng(3);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  for (int i = 0; i < 10; ++i) t.add(mk("m" + std::to_string(i)), rng);

  // Two full passes: every member probed exactly twice; self never.
  std::map<std::string, int> counts;
  for (int i = 0; i < 20; ++i) {
    Member* m = t.next_probe_target(rng);
    ASSERT_NE(m, nullptr);
    ++counts[m->name];
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [name, c] : counts) {
    EXPECT_EQ(c, 2) << name;
    EXPECT_NE(name, "self");
  }
}

TEST(Membership, ProbeOrderSkipsInactive) {
  Rng rng(4);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  t.add(mk("alive"), rng);
  Member& dead = t.add(mk("dead"), rng);
  t.set_state(dead, MemberState::kDead, TimePoint{});
  Member& left = t.add(mk("left"), rng);
  t.set_state(left, MemberState::kLeft, TimePoint{});

  for (int i = 0; i < 6; ++i) {
    Member* m = t.next_probe_target(rng);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->name, "alive");
  }
}

TEST(Membership, ProbeTargetNullWhenAlone) {
  Rng rng(5);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  EXPECT_EQ(t.next_probe_target(rng), nullptr);
  Member& only = t.add(mk("a"), rng);
  t.set_state(only, MemberState::kDead, TimePoint{});
  EXPECT_EQ(t.next_probe_target(rng), nullptr);
}

TEST(Membership, RandomInsertionPositionsVary) {
  // New members must land at random positions in the probe list (SWIM's
  // join rule): across many tables, the newcomer's first-probe rank varies.
  std::set<int> ranks;
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 100);
    MembershipTable t("self");
    t.add(mk("self"), rng);
    for (int i = 0; i < 8; ++i) t.add(mk("m" + std::to_string(i)), rng);
    (void)t.next_probe_target(rng);  // force an initial shuffle+position
    t.add(mk("newcomer"), rng);
    for (int i = 0; i < 9; ++i) {
      if (t.next_probe_target(rng)->name == "newcomer") {
        ranks.insert(i);
        break;
      }
    }
  }
  EXPECT_GT(ranks.size(), 3u);
}

TEST(Membership, RemoveDropsFromProbeOrder) {
  Rng rng(6);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  t.add(mk("a"), rng);
  t.add(mk("b"), rng);
  t.remove("a");
  EXPECT_FALSE(t.contains("a"));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(t.next_probe_target(rng)->name, "b");
  }
}

TEST(Membership, RandomMembersExcludesAndDeduplicates) {
  Rng rng(7);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  for (int i = 0; i < 10; ++i) t.add(mk("m" + std::to_string(i)), rng);

  for (int round = 0; round < 50; ++round) {
    auto picks = t.random_active(3, rng, {"m0", "m1"});
    EXPECT_EQ(picks.size(), 3u);
    std::set<std::string> names;
    for (Member* m : picks) {
      names.insert(m->name);
      EXPECT_NE(m->name, "self");
      EXPECT_NE(m->name, "m0");
      EXPECT_NE(m->name, "m1");
    }
    EXPECT_EQ(names.size(), 3u);  // distinct
  }
}

TEST(Membership, RandomMembersReturnsFewerWhenShort) {
  Rng rng(8);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  t.add(mk("a"), rng);
  auto picks = t.random_active(5, rng, {});
  EXPECT_EQ(picks.size(), 1u);
  picks = t.random_active(0, rng, {});
  EXPECT_TRUE(picks.empty());
}

TEST(Membership, RandomMembersIsRoughlyUniform) {
  Rng rng(9);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  for (int i = 0; i < 8; ++i) t.add(mk("m" + std::to_string(i)), rng);
  std::map<std::string, int> counts;
  constexpr int kRounds = 8000;
  for (int i = 0; i < kRounds; ++i) {
    for (Member* m : t.random_active(1, rng, {})) ++counts[m->name];
  }
  for (const auto& [name, c] : counts) {
    EXPECT_NEAR(c, kRounds / 8, kRounds / 8 / 4) << name;
  }
}

TEST(Membership, PredicateFiltering) {
  Rng rng(10);
  MembershipTable t("self");
  t.add(mk("self"), rng);
  t.add(mk("alive1"), rng);
  t.add(mk("dead1", MemberState::kDead), rng);
  auto picks = t.random_members(5, rng, {}, [](const Member& m) {
    return m.state == MemberState::kDead;
  });
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0]->name, "dead1");
}

TEST(MemberState, NamesAndActivity) {
  EXPECT_STREQ(member_state_name(MemberState::kAlive), "alive");
  EXPECT_STREQ(member_state_name(MemberState::kSuspect), "suspect");
  EXPECT_STREQ(member_state_name(MemberState::kDead), "dead");
  EXPECT_STREQ(member_state_name(MemberState::kLeft), "left");
  EXPECT_TRUE(is_active(MemberState::kAlive));
  EXPECT_TRUE(is_active(MemberState::kSuspect));
  EXPECT_FALSE(is_active(MemberState::kDead));
  EXPECT_FALSE(is_active(MemberState::kLeft));
}

}  // namespace
}  // namespace lifeguard::swim
