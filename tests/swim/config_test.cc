// Configuration presets mirror the paper's Table I.
#include "swim/config.h"

#include <gtest/gtest.h>

namespace lifeguard::swim {
namespace {

TEST(Config, DefaultsMatchPaper) {
  const Config c;
  EXPECT_EQ(c.probe_interval, sec(1));      // BaseProbeInterval (§IV-A)
  EXPECT_EQ(c.probe_timeout, msec(500));    // BaseProbeTimeout (§IV-A)
  EXPECT_EQ(c.lhm_max, 8);                  // S
  EXPECT_EQ(c.suspicion_k, 3);              // K
  EXPECT_EQ(c.indirect_checks, 3);          // k
  EXPECT_DOUBLE_EQ(c.nack_fraction, 0.8);
}

TEST(Config, SwimBaselineDisablesAllComponents) {
  const Config c = Config::swim_baseline();
  EXPECT_FALSE(c.lha_probe);
  EXPECT_FALSE(c.lha_suspicion);
  EXPECT_FALSE(c.buddy_system);
  // Fixed suspicion timeout: α = 5, β = 1 (paper §V-C).
  EXPECT_DOUBLE_EQ(c.suspicion_alpha, 5.0);
  EXPECT_DOUBLE_EQ(c.suspicion_beta, 1.0);
  EXPECT_EQ(c.table1_name(), "SWIM");
}

TEST(Config, LifeguardEnablesAll) {
  const Config c = Config::lifeguard();
  EXPECT_TRUE(c.lha_probe);
  EXPECT_TRUE(c.lha_suspicion);
  EXPECT_TRUE(c.buddy_system);
  EXPECT_EQ(c.table1_name(), "Lifeguard");
}

TEST(Config, SingleComponentPresets) {
  EXPECT_EQ(Config::lha_probe_only().table1_name(), "LHA-Probe");
  EXPECT_EQ(Config::lha_suspicion_only().table1_name(), "LHA-Suspicion");
  EXPECT_EQ(Config::buddy_only().table1_name(), "Buddy System");

  const Config p = Config::lha_probe_only();
  EXPECT_TRUE(p.lha_probe);
  EXPECT_FALSE(p.lha_suspicion);
  EXPECT_FALSE(p.buddy_system);

  const Config s = Config::lha_suspicion_only();
  EXPECT_FALSE(s.lha_probe);
  EXPECT_TRUE(s.lha_suspicion);
  EXPECT_DOUBLE_EQ(s.suspicion_beta, 6.0);
}

TEST(Config, CustomComboIsNamedCustom) {
  Config c = Config::lifeguard();
  c.buddy_system = false;
  EXPECT_EQ(c.table1_name(), "Custom");
}

}  // namespace
}  // namespace lifeguard::swim
