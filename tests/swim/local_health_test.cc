// Local Health Multiplier (paper §IV-A) — saturation and scaling.
#include "swim/local_health.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lifeguard::swim {
namespace {

TEST(LocalHealth, StartsAtZero) {
  LocalHealth h(8, true);
  EXPECT_EQ(h.score(), 0);
  EXPECT_EQ(h.multiplier(), 1);
  EXPECT_EQ(h.scale(sec(1)), sec(1));
}

TEST(LocalHealth, EventDeltasMatchPaper) {
  LocalHealth h(8, true);
  h.probe_failed();         // +1
  EXPECT_EQ(h.score(), 1);
  h.refuted_suspicion();    // +1
  EXPECT_EQ(h.score(), 2);
  h.missed_nack();          // +1
  EXPECT_EQ(h.score(), 3);
  h.probe_success();        // -1
  EXPECT_EQ(h.score(), 2);
}

TEST(LocalHealth, SaturatesAtSAndZero) {
  LocalHealth h(8, true);
  for (int i = 0; i < 50; ++i) h.probe_failed();
  EXPECT_EQ(h.score(), 8);
  EXPECT_EQ(h.multiplier(), 9);
  for (int i = 0; i < 50; ++i) h.probe_success();
  EXPECT_EQ(h.score(), 0);
  EXPECT_EQ(h.multiplier(), 1);
}

TEST(LocalHealth, PaperDefaultsScaleTo9xAnd4_5s) {
  // S = 8: probe interval backs off to 9 s and timeout to 4.5 s (§IV-A).
  LocalHealth h(8, true);
  for (int i = 0; i < 20; ++i) h.probe_failed();
  EXPECT_EQ(h.scale(sec(1)), sec(9));
  EXPECT_EQ(h.scale(msec(500)), msec(4500));
}

TEST(LocalHealth, DisabledPinsMultiplierAtOne) {
  LocalHealth h(8, false);
  for (int i = 0; i < 20; ++i) {
    h.probe_failed();
    h.missed_nack();
    h.refuted_suspicion();
  }
  EXPECT_EQ(h.score(), 0);
  EXPECT_EQ(h.multiplier(), 1);
  EXPECT_EQ(h.scale(sec(1)), sec(1));
  EXPECT_FALSE(h.enabled());
}

TEST(LocalHealth, CustomSaturationLimit) {
  LocalHealth h(2, true);
  for (int i = 0; i < 10; ++i) h.probe_failed();
  EXPECT_EQ(h.score(), 2);
  EXPECT_EQ(h.multiplier(), 3);
}

TEST(LocalHealth, PropertyRandomWalkStaysInBounds) {
  // Property: under any event sequence the score remains in [0, S].
  lifeguard::Rng rng(3);
  for (int s : {1, 4, 8, 16}) {
    LocalHealth h(s, true);
    for (int i = 0; i < 5000; ++i) {
      switch (rng.uniform(4)) {
        case 0: h.probe_success(); break;
        case 1: h.probe_failed(); break;
        case 2: h.missed_nack(); break;
        case 3: h.refuted_suspicion(); break;
      }
      ASSERT_GE(h.score(), 0);
      ASSERT_LE(h.score(), s);
      ASSERT_EQ(h.multiplier(), h.score() + 1);
    }
  }
}

}  // namespace
}  // namespace lifeguard::swim
