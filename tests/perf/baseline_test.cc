// perf::Baseline JSON round trip and perf::compare on synthetic pairs.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>

#include "perf/baseline.h"
#include "perf/compare.h"

namespace lifeguard::perf {
namespace {

Baseline sample_baseline() {
  Baseline b;
  b.suite = "micro";
  b.created = "2026-07-28 12:00:00";
  b.host = "Linux test x86_64";
  b.build = "gcc 12.2, NDEBUG";
  b.entries.push_back(
      {"micro/event-queue", 0.31, 4.1e6, 0.0, 0.0, 24576, 12});
  b.entries.push_back(
      {"sim/cluster-n64", 2.5, 12.0, 250000.0, 91000.5, 131072, 1});
  return b;
}

TEST(PerfBaseline, JsonRoundTripPreservesEveryField) {
  const Baseline b = sample_baseline();
  std::string error;
  const auto parsed = from_json(to_json(b), error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->suite, b.suite);
  EXPECT_EQ(parsed->created, b.created);
  EXPECT_EQ(parsed->host, b.host);
  EXPECT_EQ(parsed->build, b.build);
  ASSERT_EQ(parsed->entries.size(), b.entries.size());
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    EXPECT_EQ(parsed->entries[i].name, b.entries[i].name);
    EXPECT_DOUBLE_EQ(parsed->entries[i].items_per_s,
                     b.entries[i].items_per_s);
    EXPECT_DOUBLE_EQ(parsed->entries[i].events_per_s,
                     b.entries[i].events_per_s);
    EXPECT_DOUBLE_EQ(parsed->entries[i].datagrams_per_s,
                     b.entries[i].datagrams_per_s);
    EXPECT_EQ(parsed->entries[i].peak_rss_kb, b.entries[i].peak_rss_kb);
    EXPECT_EQ(parsed->entries[i].iterations, b.entries[i].iterations);
  }
}

TEST(PerfBaseline, CommitFingerprintRoundTripsAndStaysOptional) {
  Baseline b = sample_baseline();
  b.commit = "abc1234-dirty";
  std::string error;
  const auto parsed = from_json(to_json(b), error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->commit, "abc1234-dirty");
  // Pre-commit-field documents (no "commit" key) still parse, with the
  // field left empty — and an empty commit is not serialized at all.
  const Baseline without = sample_baseline();
  EXPECT_EQ(to_json(without).find("\"commit\""), std::string::npos);
  const auto legacy = from_json(to_json(without), error);
  ASSERT_TRUE(legacy.has_value()) << error;
  EXPECT_TRUE(legacy->commit.empty());
}

TEST(PerfBaseline, GitFingerprintIsEmptyOrShaShaped) {
  // Environment-dependent on purpose: inside a checkout it is a short hex
  // sha with an optional "-dirty" suffix, elsewhere it degrades to empty.
  const std::string fp = git_fingerprint();
  if (fp.empty()) return;
  std::string sha = fp;
  const std::string suffix = "-dirty";
  if (sha.size() > suffix.size() &&
      sha.compare(sha.size() - suffix.size(), suffix.size(), suffix) == 0) {
    sha.resize(sha.size() - suffix.size());
  }
  EXPECT_GE(sha.size(), 7u);
  for (char c : sha) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << fp;
  }
}

TEST(PerfBaseline, UnknownKeysAreIgnoredForwardCompatibly) {
  const std::string doc = R"({
    "suite": "micro",
    "created": "2026-01-01 00:00:00",
    "host": "h",
    "build": "b",
    "schema_version": 2,
    "entries": [
      {"name": "x", "items_per_s": 10, "future_metric": 3.5}
    ]
  })";
  std::string error;
  const auto parsed = from_json(doc, error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->entries.size(), 1u);
  EXPECT_EQ(parsed->entries[0].name, "x");
  EXPECT_DOUBLE_EQ(parsed->entries[0].items_per_s, 10.0);
}

TEST(PerfBaseline, MalformedDocumentsAreRejectedWithAnError) {
  std::string error;
  EXPECT_FALSE(from_json("", error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(from_json("{\"suite\": }", error).has_value());
  EXPECT_FALSE(from_json("{\"entries\": [{]}", error).has_value());
  EXPECT_FALSE(
      from_json("{\"suite\": \"unterminated", error).has_value());
}

TEST(PerfBaseline, FileRoundTrip) {
  const Baseline b = sample_baseline();
  const std::string path =
      (std::filesystem::temp_directory_path() / "perf_baseline_test.json")
          .string();
  std::string error;
  ASSERT_TRUE(save_baseline_file(b, path, error)) << error;
  const auto loaded = load_baseline_file(path, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->entries.size(), b.entries.size());
  std::remove(path.c_str());
  EXPECT_FALSE(load_baseline_file(path, error).has_value());
}

// ---------------------------------------------------------------------------
// compare

Baseline with_rates(std::vector<std::pair<std::string, double>> rates) {
  Baseline b;
  b.suite = "micro";
  for (auto& [name, rate] : rates) {
    Measurement m;
    m.name = name;
    m.items_per_s = rate;
    b.entries.push_back(std::move(m));
  }
  return b;
}

TEST(PerfCompare, FlagsOnlyRegressionsBeyondTheThreshold) {
  const Baseline old_b =
      with_rates({{"a", 100.0}, {"b", 100.0}, {"c", 100.0}});
  const Baseline new_b = with_rates({{"a", 95.0}, {"b", 80.0}, {"c", 130.0}});
  const CompareReport r = compare(old_b, new_b, 10.0);
  ASSERT_EQ(r.deltas.size(), 3u);
  EXPECT_FALSE(r.deltas[0].regression);  // -5% is inside the 10% threshold
  EXPECT_TRUE(r.deltas[1].regression);   // -20%
  EXPECT_FALSE(r.deltas[2].regression);  // +30% improvement
  EXPECT_TRUE(r.has_regression());
  EXPECT_NEAR(r.worst_regression_pct, -20.0, 1e-9);
  const std::string text = format_report(r);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
}

TEST(PerfCompare, CleanComparisonHasNoRegression) {
  const Baseline old_b = with_rates({{"a", 100.0}});
  const Baseline new_b = with_rates({{"a", 99.0}});
  const CompareReport r = compare(old_b, new_b, 10.0);
  EXPECT_FALSE(r.has_regression());
  EXPECT_DOUBLE_EQ(r.worst_regression_pct, 0.0);
}

TEST(PerfCompare, ReportsAddedAndDroppedCases) {
  const Baseline old_b = with_rates({{"a", 100.0}, {"dropped", 50.0}});
  const Baseline new_b = with_rates({{"a", 100.0}, {"added", 75.0}});
  const CompareReport r = compare(old_b, new_b, 10.0);
  ASSERT_EQ(r.only_in_old.size(), 1u);
  EXPECT_EQ(r.only_in_old[0], "dropped");
  ASSERT_EQ(r.only_in_new.size(), 1u);
  EXPECT_EQ(r.only_in_new[0], "added");
  EXPECT_FALSE(r.has_regression());  // missing cases report, not fail
}

TEST(PerfCompare, FallsBackToWallTimeWhenNoThroughputIsRecorded) {
  Measurement slow;
  slow.name = "walltime-only";
  slow.wall_s = 2.0;
  Measurement fast = slow;
  fast.wall_s = 1.0;
  Baseline old_b, new_b;
  old_b.entries.push_back(fast);  // 1/wall = 1.0
  new_b.entries.push_back(slow);  // 1/wall = 0.5 → 50% regression
  const CompareReport r = compare(old_b, new_b, 10.0);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_TRUE(r.deltas[0].regression);
  EXPECT_NEAR(r.deltas[0].change_pct, -50.0, 1e-9);
}

}  // namespace
}  // namespace lifeguard::perf
