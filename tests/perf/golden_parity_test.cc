// Golden-seed bit-parity for the hot-path optimization pass.
//
// These exact values were captured at the seed of this PR, BEFORE the
// EventQueue slot-pool rewrite, the Task-based delivery closures, the
// datagram buffer pool, the BroadcastQueue rank-map redesign, the cached
// active count and the per-node link-fault index. Every one of those
// changes claims to be a pure performance transformation: identical Rng
// draw sequence, identical event ordering, identical protocol behavior.
// This suite holds them (and any future "optimization") to that claim
// across registry scenarios covering healthy steady state, the SWIM
// baseline under interval anomalies, threshold latency, and the composed
// stress/partition/loss/duplication/reordering timelines.
//
// If this test breaks, the optimization changed observable behavior — fix
// the optimization, do not re-capture the numbers.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness/scenario.h"

namespace lifeguard {
namespace {

struct Golden {
  const char* scenario;
  std::int64_t fp, fp_healthy, msgs, bytes;
  std::size_t first_detect, full_dissem;
};

// Captured from the pre-optimization engine (see header).
constexpr Golden kGoldens[] = {
    {"steady-state", 0, 0, 12315, 1523700, 0, 0},
    {"fig2-total-false-positives", 179, 0, 149043, 22771719, 8, 8},
    {"table5-latency", 0, 0, 39742, 8600485, 4, 4},
    {"partition-under-stress", 13, 0, 6744, 380863, 7, 7},
    {"lossy-flapping", 0, 0, 33435, 1614951, 3, 0},
    {"packet-chaos", 0, 0, 4885, 266461, 0, 0},
};

class GoldenSeedParity : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenSeedParity, RegistryScenarioReplaysBitIdentically) {
  const Golden& g = GetParam();
  const harness::Scenario* s =
      harness::ScenarioRegistry::builtin().find(g.scenario);
  ASSERT_NE(s, nullptr) << g.scenario;
  const harness::RunResult r = harness::run(*s);
  EXPECT_EQ(r.fp_events, g.fp) << g.scenario;
  EXPECT_EQ(r.fp_healthy_events, g.fp_healthy) << g.scenario;
  EXPECT_EQ(r.msgs_sent, g.msgs) << g.scenario;
  EXPECT_EQ(r.bytes_sent, g.bytes) << g.scenario;
  EXPECT_EQ(r.first_detect.size(), g.first_detect) << g.scenario;
  EXPECT_EQ(r.full_dissem.size(), g.full_dissem) << g.scenario;
}

INSTANTIATE_TEST_SUITE_P(PreOptimizationGoldens, GoldenSeedParity,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           std::string name = info.param.scenario;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace lifeguard
