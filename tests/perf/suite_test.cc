// perf::Suite smoke: the registered suites run and produce sane baselines.
#include <gtest/gtest.h>

#include "perf/suite.h"

namespace lifeguard::perf {
namespace {

TEST(PerfSuite, NamesAndLookupAgree) {
  const auto names = Suite::names();
  ASSERT_GE(names.size(), 2u);
  for (const std::string& name : names) {
    const auto* cases = Suite::find(name);
    ASSERT_NE(cases, nullptr) << name;
    EXPECT_FALSE(cases->empty()) << name;
    for (const BenchCase& c : *cases) {
      // Case names are namespaced by their suite: "micro/event-queue".
      EXPECT_EQ(c.name.rfind(name + "/", 0), 0u) << c.name;
      EXPECT_FALSE(c.summary.empty()) << c.name;
    }
  }
  EXPECT_EQ(Suite::find("no-such-suite"), nullptr);
}

TEST(PerfSuite, MicroSuiteQuickRunProducesAllMeasurements) {
  SuiteOptions opt;
  opt.quick = true;
  opt.min_time_s = 0.02;  // smoke: just prove every case measures
  const Baseline b = Suite::run("micro", opt, nullptr);
  EXPECT_EQ(b.suite, "micro");
  EXPECT_FALSE(b.created.empty());
  EXPECT_FALSE(b.host.empty());
  EXPECT_FALSE(b.build.empty());
  ASSERT_EQ(b.entries.size(), Suite::find("micro")->size());
  for (const Measurement& m : b.entries) {
    EXPECT_GT(m.items_per_s, 0.0) << m.name;
    EXPECT_GT(m.wall_s, 0.0) << m.name;
    EXPECT_GT(m.iterations, 0) << m.name;
    EXPECT_GT(m.peak_rss_kb, 0) << m.name;
  }
}

TEST(PerfSuite, QuickModeSkipsHeavyCases) {
  SuiteOptions quick;
  quick.quick = true;
  quick.min_time_s = 0.02;
  // The sim suite's n=1024 case is marked heavy and must not run under
  // --quick; everything else must.
  const auto* cases = Suite::find("sim");
  ASSERT_NE(cases, nullptr);
  std::size_t heavy = 0;
  for (const BenchCase& c : *cases) heavy += c.heavy ? 1 : 0;
  ASSERT_GE(heavy, 1u);
  const Baseline b = Suite::run("sim", quick, nullptr);
  EXPECT_EQ(b.entries.size(), cases->size() - heavy);
  for (const Measurement& m : b.entries) {
    EXPECT_GT(m.items_per_s, 0.0) << m.name;     // virtual s per real s
    EXPECT_GT(m.events_per_s, 0.0) << m.name;    // simulator events
    EXPECT_GT(m.datagrams_per_s, 0.0) << m.name; // routed datagrams
  }
}

TEST(PerfSuite, UnknownSuiteThrows) {
  SuiteOptions opt;
  EXPECT_THROW(Suite::run("bogus", opt, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace lifeguard::perf
