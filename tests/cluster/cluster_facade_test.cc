// Cluster/ClusterBuilder facade: one builder over both runtimes.
#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

namespace lifeguard {
namespace {

TEST(ClusterBuilder, RejectsNonPositiveSize) {
  try {
    ClusterBuilder().size(0).build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("size"), std::string::npos);
  }
}

TEST(ClusterBuilder, RejectsOversizedUdpCluster) {
  try {
    ClusterBuilder().size(1000).backend(Cluster::Backend::kUdp).build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sim backend"), std::string::npos);
  }
}

TEST(ClusterFacade, SimClusterConverges) {
  auto cluster = ClusterBuilder()
                     .size(12)
                     .config(swim::Config::lifeguard())
                     .seed(31)
                     .build();
  EXPECT_EQ(cluster->backend(), Cluster::Backend::kSim);
  EXPECT_EQ(cluster->size(), 12);
  ASSERT_NE(cluster->simulator(), nullptr);
  cluster->start();
  EXPECT_TRUE(cluster->await_convergence(sec(15)));
  EXPECT_TRUE(cluster->converged());
  for (int i = 0; i < cluster->size(); ++i) {
    EXPECT_EQ(cluster->active_members(i), 12) << "node " << i;
  }
}

TEST(ClusterFacade, SimPathIsDeterministic) {
  auto fingerprint = [](std::uint64_t seed) {
    auto cluster = ClusterBuilder()
                       .size(16)
                       .config(swim::Config::lifeguard())
                       .seed(seed)
                       .build();
    cluster->start();
    cluster->run_for(sec(30));
    const Metrics m = cluster->aggregate_metrics();
    return std::make_pair(m.counter_value("net.msgs_sent"),
                          m.counter_value("net.bytes_sent"));
  };
  EXPECT_EQ(fingerprint(5), fingerprint(5));
  EXPECT_NE(fingerprint(5), fingerprint(6));
}

TEST(ClusterFacade, SubscriptionSeesFailureAndRaiiDetaches) {
  auto cluster = ClusterBuilder()
                     .size(8)
                     .config(swim::Config::lifeguard())
                     .seed(33)
                     .build();
  cluster->start();
  ASSERT_TRUE(cluster->await_convergence(sec(15)));

  int failures = 0;
  int all_events = 0;
  auto counting = cluster->subscribe([&](const swim::MemberEvent& e) {
    ++all_events;
    if (e.type == swim::EventType::kFailed && e.member == "node-3") {
      ++failures;
    }
  });
  {
    auto scoped = cluster->subscribe([&](const swim::MemberEvent&) {});
    cluster->simulator()->crash_node(3);
    cluster->run_for(sec(40));
  }  // scoped detaches here; counting keeps going
  EXPECT_GT(failures, 0) << "every survivor should report node-3 failed";
  const int events_before = all_events;
  counting.reset();
  cluster->simulator()->crash_node(5);
  cluster->run_for(sec(40));
  EXPECT_EQ(all_events, events_before) << "reset() must stop delivery";
}

TEST(ClusterFacade, StopIsIdempotent) {
  auto cluster = ClusterBuilder().size(4).seed(35).build();
  cluster->start();
  cluster->run_for(sec(5));
  cluster->stop();
  cluster->stop();
}

TEST(ClusterFacade, UdpClusterConvergesAndDetectsFailure) {
  // Real sockets on loopback; accelerated timers keep this test short.
  swim::Config cfg = swim::Config::lifeguard();
  cfg.probe_interval = msec(100);
  cfg.probe_timeout = msec(50);
  cfg.gossip_interval = msec(40);
  cfg.push_pull_interval = sec(2);
  cfg.reconnect_interval = sec(2);

  auto cluster = ClusterBuilder()
                     .size(3)
                     .config(cfg)
                     .seed(37)
                     .backend(Cluster::Backend::kUdp)
                     .build();
  EXPECT_EQ(cluster->backend(), Cluster::Backend::kUdp);
  EXPECT_EQ(cluster->simulator(), nullptr);

  std::atomic<int> failed_events{0};
  auto sub = cluster->subscribe([&](const swim::MemberEvent& e) {
    if (e.type == swim::EventType::kFailed) ++failed_events;
  });

  cluster->start();
  ASSERT_TRUE(cluster->await_convergence(sec(10)));

  cluster->stop_node(2);
  bool detected = false;
  for (int tries = 0; tries < 100 && !detected; ++tries) {
    detected = cluster->active_members(0) == 2 &&
               cluster->active_members(1) == 2;
    if (!detected) cluster->run_for(msec(100));
  }
  EXPECT_TRUE(detected) << "survivors never removed the stopped node";
  EXPECT_GE(failed_events.load(), 2);
  cluster->stop();
  // Post-stop queries must not deadlock (direct access; loop threads joined).
  EXPECT_GT(cluster->aggregate_metrics().counter_value("net.msgs_sent"), 0);
  EXPECT_EQ(cluster->active_members(0), 2);
}

}  // namespace
}  // namespace lifeguard
