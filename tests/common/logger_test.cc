#include "common/logger.h"

#include <gtest/gtest.h>

#include <vector>

namespace lifeguard {
namespace {

TEST(Logger, LevelFiltering) {
  Logger log("test", LogLevel::kWarn);
  std::vector<std::pair<LogLevel, std::string>> captured;
  log.set_sink([&](LogLevel l, std::string_view m) {
    captured.emplace_back(l, std::string(m));
  });
  log.debug("d");
  log.info("i");
  log.warn("w");
  log.error("e");
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "w");
  EXPECT_EQ(captured[1].second, "e");
}

TEST(Logger, OffSilencesEverything) {
  Logger log("test", LogLevel::kOff);
  int calls = 0;
  log.set_sink([&](LogLevel, std::string_view) { ++calls; });
  log.error("should not appear");
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(log.enabled(LogLevel::kError));
}

TEST(Logger, LevelChangeAtRuntime) {
  Logger log;
  int calls = 0;
  log.set_sink([&](LogLevel, std::string_view) { ++calls; });
  log.info("dropped");  // default level is kOff
  log.set_level(LogLevel::kDebug);
  log.info("kept");
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(log.enabled(LogLevel::kDebug));
}

TEST(Logger, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace lifeguard
