#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace lifeguard {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  // Different seed diverges (overwhelmingly likely on the first draw).
  EXPECT_NE(Rng(42).next_u64(), c.next_u64());
}

TEST(Rng, UniformRespectsBound) {
  Rng r(1);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.uniform(bound), bound);
    }
  }
  EXPECT_EQ(r.uniform(0), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng r(7);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(r.uniform(kBuckets))];
  }
  const double expected = kDraws / static_cast<double>(kBuckets);
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(r.uniform_range(5, 5), 5);
  EXPECT_EQ(r.uniform_range(5, 4), 5);  // degenerate clamps to lo
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, LogUniformStaysInRangeAndSkewsLow) {
  Rng r(17);
  int low_half = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.log_uniform(1.0, 100.0);
    ASSERT_GE(v, 1.0);
    ASSERT_LE(v, 100.0);
    if (v < 10.0) ++low_half;  // geometric midpoint of [1, 100]
  }
  // Log-uniform puts half the mass below the geometric mean.
  EXPECT_NEAR(low_half, 5000, 300);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(19);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_FALSE(r.chance(-1.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_TRUE(r.chance(2.0));
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(Rng, ShuffleIsPermutationAndDeterministic) {
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  Rng r1(23), r2(23);
  r1.shuffle(v);
  r2.shuffle(w);
  EXPECT_EQ(v, w);  // same seed, same permutation
  std::sort(w.begin(), w.end());
  std::vector<int> sorted(50);
  std::iota(sorted.begin(), sorted.end(), 0);
  EXPECT_EQ(w, sorted);  // still a permutation
}

TEST(Rng, ForkDivergesFromParent) {
  Rng parent(29);
  Rng child = parent.fork();
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = parent.next_u64() != child.next_u64();
  }
  EXPECT_TRUE(differs);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  // Regression pin: SplitMix64 of seed 0 (reference value).
  std::uint64_t z = 0;
  EXPECT_EQ(splitmix64(z), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace lifeguard
