#include "common/metrics.h"

#include <gtest/gtest.h>

namespace lifeguard {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.add(-2);
  EXPECT_EQ(c.value(), 40);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {4.0, 1.0, 3.0, 2.0, 5.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(Histogram, PercentileInterpolation) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
  EXPECT_NEAR(h.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(h.percentile(0.99), 99.01, 1e-9);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(2.0), 100.0);
}

TEST(Histogram, RecordAfterPercentileStillSorts) {
  Histogram h;
  h.record(10);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
  h.record(1);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.record(1);
  b.record(3);
  b.record(5);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Histogram, MergeEmptyIsNoop) {
  Histogram a, empty;
  a.record(2);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.max(), 2.0);
}

TEST(Histogram, ReservePreallocates) {
  Histogram h;
  h.reserve(1000);
  EXPECT_GE(h.samples().capacity(), 1000u);
  EXPECT_EQ(h.count(), 0u);
  h.record(1.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, SummaryMatchesIndividualStats) {
  Histogram h;
  for (int i = 100; i >= 1; --i) h.record(i);
  const Summary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  // Sample stddev of 1..100: sqrt(n(n+1)/12).
  EXPECT_NEAR(s.stddev, 29.0115, 1e-3);
  EXPECT_NEAR(s.stddev, h.stddev(), 1e-12);
}

TEST(Histogram, SummaryOfEmptyIsZero) {
  const Summary s = Histogram{}.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Metrics, CounterLookupAndMerge) {
  Metrics m1, m2;
  m1.counter("x").add(5);
  m2.counter("x").add(7);
  m2.counter("y").add(1);
  m2.histogram("h").record(2.0);
  m1.merge(m2);
  EXPECT_EQ(m1.counter_value("x"), 12);
  EXPECT_EQ(m1.counter_value("y"), 1);
  EXPECT_EQ(m1.counter_value("missing"), 0);
  EXPECT_EQ(m1.histogram("h").count(), 1u);
}

TEST(Metrics, Reset) {
  Metrics m;
  m.counter("a").add(3);
  m.histogram("b").record(1.0);
  m.reset();
  EXPECT_EQ(m.counter_value("a"), 0);
  EXPECT_TRUE(m.counters().empty());
  EXPECT_TRUE(m.histograms().empty());
}

// ---------------------------------------------------------------------------
// Edge cases the telemetry layer leans on

TEST(Histogram, EmptySummaryMatchesTheIndividualAccessors) {
  const Histogram h;
  const Summary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, h.mean());
  EXPECT_DOUBLE_EQ(s.min, h.min());
  EXPECT_DOUBLE_EQ(s.max, h.max());
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(0.5));
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Histogram, SingleSampleHasZeroStddevAndDegeneratePercentiles) {
  Histogram h;
  h.record(42.0);
  const Summary s = h.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);  // n-1 denominator: undefined -> 0
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
}

TEST(Histogram, ReserveChangesCapacityNotContents) {
  Histogram h;
  h.record(1.0);
  h.reserve(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);  // interpolation still exact
}

TEST(Histogram, SummaryIsStableAcrossRecordOrder) {
  // The sampler and band folds treat Summary as a pure function of the
  // sample multiset — insertion order must not leak into any statistic.
  Histogram a, b;
  const double xs[] = {5.0, 1.0, 4.0, 2.0, 3.0};
  for (double x : xs) a.record(x);
  for (int i = 4; i >= 0; --i) b.record(xs[i]);
  const Summary sa = a.summary(), sb = b.summary();
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_DOUBLE_EQ(sa.mean, sb.mean);
  EXPECT_DOUBLE_EQ(sa.stddev, sb.stddev);
  EXPECT_DOUBLE_EQ(sa.p50, sb.p50);
  EXPECT_DOUBLE_EQ(sa.p99, sb.p99);
}

TEST(Counter, EqualityComparesValues) {
  Counter a, b;
  EXPECT_EQ(a, b);
  a.add(2);
  EXPECT_NE(a, b);
  b.add(2);
  EXPECT_EQ(a, b);
  a.reset();
  EXPECT_EQ(a.value(), 0);
}

}  // namespace
}  // namespace lifeguard
