#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lifeguard {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  BufWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  BufReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, LittleEndianLayout) {
  BufWriter w;
  w.u32(0x01020304);
  const auto b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Bytes, VarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 ~0ull};
  for (std::uint64_t v : cases) {
    BufWriter w;
    w.varint(v);
    BufReader r(w.bytes());
    EXPECT_EQ(r.varint(), v) << v;
    EXPECT_TRUE(r.ok());
  }
}

TEST(Bytes, VarintSizes) {
  auto size_of = [](std::uint64_t v) {
    BufWriter w;
    w.varint(v);
    return w.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(~0ull), 10u);
}

TEST(Bytes, StringRoundTrip) {
  BufWriter w;
  w.str("");
  w.str("node-42");
  w.str(std::string(1000, 'x'));
  BufReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "node-42");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
  EXPECT_TRUE(r.ok());
}

TEST(Bytes, ReaderRejectsTruncation) {
  BufWriter w;
  w.u32(7);
  auto full = w.bytes();
  BufReader r(full.subspan(0, 2));
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, ReaderRejectsTruncatedString) {
  BufWriter w;
  w.varint(100);  // claims 100 bytes follow
  w.u8('a');
  BufReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, ReaderRejectsVarintOverflow) {
  // 11 continuation bytes can't fit in 64 bits.
  std::vector<std::uint8_t> evil(11, 0xff);
  BufReader r(evil);
  (void)r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, ReaderStaysFailedAfterError) {
  BufWriter w;
  w.u8(1);
  BufReader r(w.bytes());
  (void)r.u32();  // fails
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // still failed; returns default
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, RawSpanViewsInput) {
  BufWriter w;
  w.raw(std::vector<std::uint8_t>{1, 2, 3, 4});
  BufReader r(w.bytes());
  auto s = r.raw(4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[2], 3);
  EXPECT_TRUE(r.at_end());
  auto over = r.raw(1);
  EXPECT_TRUE(over.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, PatchU32) {
  BufWriter w;
  w.u32(0);
  w.u8(9);
  w.patch_u32(0, 0xcafebabe);
  BufReader r(w.bytes());
  EXPECT_EQ(r.u32(), 0xcafebabeu);
  EXPECT_EQ(r.u8(), 9);
  // Out-of-range patch is a no-op, not UB.
  w.patch_u32(100, 1);
}

TEST(Bytes, FuzzRoundTripRandomSequences) {
  // Property: any sequence of typed writes reads back identically.
  Rng rng(31);
  for (int round = 0; round < 200; ++round) {
    BufWriter w;
    std::vector<std::pair<int, std::uint64_t>> ops;
    const int n = static_cast<int>(rng.uniform(20)) + 1;
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.uniform(4));
      const std::uint64_t v = rng.next_u64();
      ops.emplace_back(kind, v);
      switch (kind) {
        case 0: w.u8(static_cast<std::uint8_t>(v)); break;
        case 1: w.u32(static_cast<std::uint32_t>(v)); break;
        case 2: w.u64(v); break;
        case 3: w.varint(v); break;
      }
    }
    BufReader r(w.bytes());
    for (const auto& [kind, v] : ops) {
      switch (kind) {
        case 0: ASSERT_EQ(r.u8(), static_cast<std::uint8_t>(v)); break;
        case 1: ASSERT_EQ(r.u32(), static_cast<std::uint32_t>(v)); break;
        case 2: ASSERT_EQ(r.u64(), v); break;
        case 3: ASSERT_EQ(r.varint(), v); break;
      }
    }
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.at_end());
  }
}

}  // namespace
}  // namespace lifeguard
