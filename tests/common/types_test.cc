#include "common/types.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lifeguard {
namespace {

TEST(Duration, ArithmeticAndComparison) {
  EXPECT_EQ(msec(1), usec(1000));
  EXPECT_EQ(sec(2), msec(2000));
  EXPECT_EQ((sec(1) + msec(500)).us, 1'500'000);
  EXPECT_EQ((sec(1) - msec(250)).us, 750'000);
  EXPECT_EQ((msec(10) * 3).us, 30'000);
  EXPECT_EQ((sec(1) / 4).us, 250'000);
  EXPECT_LT(msec(1), msec(2));
  EXPECT_GT(sec(1), msec(999));
}

TEST(Duration, ScaledTruncates) {
  EXPECT_EQ(sec(1).scaled(2.5).us, 2'500'000);
  EXPECT_EQ(msec(1).scaled(0.5).us, 500);
  EXPECT_EQ(usec(3).scaled(0.5).us, 1);  // truncation toward zero
}

TEST(Duration, ConversionHelpers) {
  EXPECT_DOUBLE_EQ(sec(3).seconds(), 3.0);
  EXPECT_DOUBLE_EQ(msec(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(usec(2500).millis(), 2.5);
  EXPECT_TRUE(Duration{}.is_zero());
  EXPECT_TRUE((msec(1) - msec(2)).is_negative());
  EXPECT_EQ(sec_f(0.25), msec(250));
}

TEST(TimePoint, ArithmeticAndOrdering) {
  const TimePoint t0{1'000'000};
  EXPECT_EQ((t0 + sec(1)).us, 2'000'000);
  EXPECT_EQ((t0 - msec(500)).us, 500'000);
  EXPECT_EQ((t0 + sec(1)) - t0, sec(1));
  EXPECT_LT(t0, t0 + usec(1));
}

TEST(Address, OrderingHashingFormatting) {
  const Address a{0x7f000001, 7946};
  const Address b{0x7f000001, 7947};
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(a.to_string(), "127.0.0.1:7946");
  EXPECT_TRUE(Address{}.is_unset());
  EXPECT_FALSE(a.is_unset());

  std::unordered_set<Address> set{a, b, a};
  EXPECT_EQ(set.size(), 2u);
}

TEST(Channel, Names) {
  EXPECT_STREQ(channel_name(Channel::kUdp), "udp");
  EXPECT_STREQ(channel_name(Channel::kReliable), "reliable");
}

}  // namespace
}  // namespace lifeguard
