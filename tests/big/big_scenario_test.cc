// The large-cluster tier at full scale (ctest label: big).
//
// These tests run minutes of wall time: a 1000-node cluster under the full
// protocol invariant suite, and a big-tier campaign proving jobs=1 and
// jobs=8 produce byte-identical artifacts. The 2k/4k registry scenarios
// follow the same code paths at bigger n and are exercised out of band
// (they were validated at full scale when this tier landed — see
// docs/benchmarks.md); keeping them out of ctest bounds suite wall time.
#include <gtest/gtest.h>

#include <sstream>

#include "check/spec.h"
#include "harness/campaign.h"
#include "harness/report.h"
#include "harness/scenario.h"

namespace lifeguard {
namespace {

using harness::Campaign;
using harness::CampaignResult;
using harness::RunResult;
using harness::Scenario;
using harness::ScenarioRegistry;

TEST(BigTier, CatalogHasTheLargeClusterScenarios) {
  for (const char* name : {"big-healthy-2k", "big-flapping-1k",
                           "big-churn-2k", "big-partition-4k"}) {
    const Scenario* s = ScenarioRegistry::builtin().find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_GE(s->cluster_size, 1000) << name;
    // The tier ships with live invariant checking on by default.
    EXPECT_TRUE(s->checks.enabled) << name;
    EXPECT_TRUE(s->validate().empty()) << name;
  }
}

// big-flapping-1k at full scale: 1000 members, 8 flapping victims, the
// whole built-in invariant suite — zero violations required.
TEST(BigTier, FlappingThousandNodesPassesTheFullInvariantSuite) {
  const Scenario* s = ScenarioRegistry::builtin().find("big-flapping-1k");
  ASSERT_NE(s, nullptr);
  const RunResult r = harness::run(*s);
  ASSERT_TRUE(r.checks.checked);
  EXPECT_EQ(r.checks.total_violations, 0)
      << "violations: " << r.checks.violations.size();
  EXPECT_EQ(r.cluster_size, 1000);
  // The flapping victims must actually be detected by the healthy majority.
  EXPECT_FALSE(r.first_detect.empty());
}

// Campaign artifacts over a big-tier scenario are byte-identical at every
// jobs level — the shared-nothing trial isolation holds at n=1000 exactly
// as it does at paper scale.
TEST(BigTier, CampaignArtifactsAreJobsInvariant) {
  const Scenario* base = ScenarioRegistry::builtin().find("big-flapping-1k");
  ASSERT_NE(base, nullptr);

  Campaign c;
  c.name = "big-flapping-1k-parity";
  c.base = *base;
  c.repetitions = 2;
  c.base_seed = 99;

  auto execute = [&](int jobs, std::string& jsonl_text) {
    Campaign run_c = c;
    run_c.jobs = jobs;
    std::ostringstream jsonl_out;
    harness::JsonlReporter jsonl(jsonl_out);
    const CampaignResult r = harness::run(run_c, {&jsonl});
    jsonl_text = jsonl_out.str();
    return r;
  };

  std::string jsonl1, jsonl8;
  const CampaignResult seq = execute(1, jsonl1);
  const CampaignResult par = execute(8, jsonl8);

  ASSERT_EQ(seq.trials.size(), 2u);
  ASSERT_EQ(par.trials.size(), seq.trials.size());
  for (std::size_t i = 0; i < seq.trials.size(); ++i) {
    EXPECT_EQ(seq.trials[i].seed, par.trials[i].seed);
    EXPECT_EQ(seq.trials[i].result.msgs_sent, par.trials[i].result.msgs_sent);
    EXPECT_EQ(seq.trials[i].result.bytes_sent,
              par.trials[i].result.bytes_sent);
    EXPECT_EQ(seq.trials[i].result.fp_events,
              par.trials[i].result.fp_events);
    EXPECT_EQ(seq.trials[i].result.checks.total_violations, 0);
  }
  EXPECT_EQ(jsonl1, jsonl8);
}

}  // namespace
}  // namespace lifeguard
