// Compound (piggyback container) packing and unpacking.
#include <gtest/gtest.h>

#include "proto/wire.h"

namespace lifeguard::proto {
namespace {

std::vector<std::uint8_t> frame(const Message& m) {
  return encode_datagram(m);
}

TEST(Compound, SingleFrameHasNoWrapper) {
  auto f = frame(Ack{1, "a"});
  auto packed = pack_compound({f});
  EXPECT_EQ(packed, f);

  std::vector<std::span<const std::uint8_t>> frames;
  ASSERT_TRUE(unpack_compound(packed, frames));
  ASSERT_EQ(frames.size(), 1u);
  BufReader r(frames[0]);
  auto msg = decode(r);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get<Ack>(*msg).seq, 1u);
}

TEST(Compound, MultiFrameRoundTripPreservesOrder) {
  std::vector<std::vector<std::uint8_t>> in{
      frame(Suspect{"m1", 1, "a"}),
      frame(Alive{"m2", 2, Address{1, 1}}),
      frame(Ping{3, "m3", "me", Address{2, 2}}),
  };
  auto packed = pack_compound(in);

  std::vector<std::span<const std::uint8_t>> out;
  ASSERT_TRUE(unpack_compound(packed, out));
  ASSERT_EQ(out.size(), 3u);
  // Order must be preserved: buddy relies on the suspect preceding the ping.
  BufReader r0(out[0]);
  EXPECT_EQ(message_type(*decode(r0)), MsgType::kSuspect);
  BufReader r1(out[1]);
  EXPECT_EQ(message_type(*decode(r1)), MsgType::kAlive);
  BufReader r2(out[2]);
  EXPECT_EQ(message_type(*decode(r2)), MsgType::kPing);
}

TEST(Compound, ManySmallFrames) {
  std::vector<std::vector<std::uint8_t>> in;
  for (int i = 0; i < 200; ++i) {
    in.push_back(frame(Suspect{"m" + std::to_string(i),
                               static_cast<std::uint64_t>(i), "x"}));
  }
  auto packed = pack_compound(in);
  std::vector<std::span<const std::uint8_t>> out;
  ASSERT_TRUE(unpack_compound(packed, out));
  ASSERT_EQ(out.size(), 200u);
  BufReader r(out[137]);
  EXPECT_EQ(std::get<Suspect>(*decode(r)).incarnation, 137u);
}

TEST(Compound, UnpackRejectsEmpty) {
  std::vector<std::span<const std::uint8_t>> out;
  EXPECT_FALSE(unpack_compound({}, out));
}

TEST(Compound, UnpackRejectsTruncatedContainer) {
  auto packed = pack_compound({frame(Ack{1, "a"}), frame(Ack{2, "b"})});
  std::vector<std::span<const std::uint8_t>> out;
  for (std::size_t len = 1; len < packed.size(); ++len) {
    // Any truncation of the container must be rejected (or, if it cuts at a
    // frame boundary... it can't: the count header says two frames).
    EXPECT_FALSE(unpack_compound(
        std::span<const std::uint8_t>(packed.data(), len), out))
        << "length " << len;
  }
}

TEST(Compound, FrameOverheadMatchesVarintWidth) {
  EXPECT_EQ(compound_frame_overhead(0), 1u);
  EXPECT_EQ(compound_frame_overhead(127), 1u);
  EXPECT_EQ(compound_frame_overhead(128), 2u);
  EXPECT_EQ(compound_frame_overhead(20000), 3u);
}

}  // namespace
}  // namespace lifeguard::proto
