// Transmit-limited broadcast queue invariants.
#include "proto/broadcast.h"

#include <gtest/gtest.h>

#include <map>

namespace lifeguard::proto {
namespace {

std::vector<std::uint8_t> frame(char tag, std::size_t len = 8) {
  return std::vector<std::uint8_t>(len, static_cast<std::uint8_t>(tag));
}

TEST(RetransmitLimit, MatchesFormula) {
  // λ·⌈log10(n+1)⌉
  EXPECT_EQ(retransmit_limit(4, 0), 4);
  EXPECT_EQ(retransmit_limit(4, 9), 4);
  EXPECT_EQ(retransmit_limit(4, 10), 8);     // log10(11) -> ceil = 2
  EXPECT_EQ(retransmit_limit(4, 99), 8);
  EXPECT_EQ(retransmit_limit(4, 128), 12);   // ceil(log10(129)) = 3
  EXPECT_EQ(retransmit_limit(3, 128), 9);
  EXPECT_EQ(retransmit_limit(4, 6000), 16);  // ceil(log10(6001)) = 4
}

TEST(BroadcastQueue, DrainsToTransmitLimit) {
  BroadcastQueue q(1);  // limit = 1·ceil(log10(n+1))
  q.queue("m", frame('a'));
  const int n = 128;  // limit 3
  int handed_out = 0;
  for (int i = 0; i < 10; ++i) {
    handed_out += static_cast<int>(q.get_broadcasts(0, 1000, n).size());
  }
  EXPECT_EQ(handed_out, 3);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_transmits(), 3);
}

TEST(BroadcastQueue, NewUpdateInvalidatesOld) {
  BroadcastQueue q(4);
  q.queue("m", frame('a'));
  q.queue("m", frame('b'));  // supersedes 'a'
  EXPECT_EQ(q.pending(), 1u);
  auto out = q.get_broadcasts(0, 1000, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], 'b');
}

TEST(BroadcastQueue, InvalidateRemoves) {
  BroadcastQueue q(4);
  q.queue("m1", frame('a'));
  q.queue("m2", frame('b'));
  q.invalidate("m1");
  EXPECT_EQ(q.pending(), 1u);
  auto out = q.get_broadcasts(0, 1000, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], 'b');
}

TEST(BroadcastQueue, PrefersFewestTransmits) {
  BroadcastQueue q(4);  // n=128 -> limit 12, won't exhaust here
  q.queue("old", frame('o'));
  // Transmit 'old' twice with a tiny budget that fits only one frame.
  const std::size_t budget = 10;
  (void)q.get_broadcasts(0, budget, 128);
  (void)q.get_broadcasts(0, budget, 128);
  q.queue("new", frame('n'));
  // The never-transmitted 'new' frame must now win the single slot.
  auto out = q.get_broadcasts(0, budget, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], 'n');
}

TEST(BroadcastQueue, TiesBrokenNewestFirst) {
  BroadcastQueue q(4);
  q.queue("a", frame('a'));
  q.queue("b", frame('b'));  // same transmit count (0), newer
  auto out = q.get_broadcasts(0, 10, 128);  // budget fits one
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], 'b');
}

TEST(BroadcastQueue, RespectsByteBudget) {
  BroadcastQueue q(4);
  q.queue("big", frame('B', 500));
  q.queue("small", frame('s', 10));
  // Budget fits the small frame only; the big one is skipped, not dropped.
  auto out = q.get_broadcasts(0, 50, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], 's');
  EXPECT_EQ(q.pending(), 2u);  // both still queued (small not at limit)
}

TEST(BroadcastQueue, SkipsOversizedButPacksLaterFrames) {
  BroadcastQueue q(4);
  q.queue("a", frame('a', 100));
  q.queue("b", frame('b', 100));
  q.queue("c", frame('c', 10));
  // Budget fits one 100-byte frame plus the 10-byte one.
  auto out = q.get_broadcasts(0, 120, 128);
  ASSERT_EQ(out.size(), 2u);
}

TEST(BroadcastQueue, PerFrameOverheadCounted) {
  BroadcastQueue q(4);
  q.queue("a", frame('a', 10));
  // frame(10) + overhead base 5 + varint(1) = 16 > budget 15 -> nothing fits.
  auto out = q.get_broadcasts(5, 15, 128);
  EXPECT_TRUE(out.empty());
  out = q.get_broadcasts(5, 16, 128);
  EXPECT_EQ(out.size(), 1u);
}

TEST(BroadcastQueue, EveryQueuedFrameEventuallyTransmitsExactlyLimitTimes) {
  // Property over a batch: with ample budget, each of k frames is handed out
  // exactly `limit` times, no more, no matter how often we drain.
  BroadcastQueue q(2);
  const int n = 50;  // limit = 2·ceil(log10(51)) = 4
  const int limit = retransmit_limit(2, n);
  std::map<char, int> counts;
  for (char c = 'a'; c < 'a' + 10; ++c) q.queue(std::string(1, c), frame(c));
  for (int round = 0; round < 100; ++round) {
    for (const auto& f : q.get_broadcasts(0, 10'000, n)) ++counts[static_cast<char>(f[0])];
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [tag, cnt] : counts) {
    EXPECT_EQ(cnt, limit) << tag;
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace lifeguard::proto
