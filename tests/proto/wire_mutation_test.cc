// Structured mutation fuzzing of the wire codec: every single-byte mutation
// (and truncation) of every valid encoding must either decode to *something*
// well-formed or be rejected — never crash, hang or read out of bounds.
// Compound containers get the same treatment.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "proto/wire.h"

namespace lifeguard::proto {
namespace {

std::vector<Message> corpus() {
  std::vector<Message> out;
  out.emplace_back(Ping{77, "target", "source", Address{1, 2}});
  out.emplace_back(PingReq{5, "t", Address{1, 2}, "s", Address{3, 4},
                           4'500'000, true});
  out.emplace_back(Ack{99, "from"});
  out.emplace_back(Nack{100, "relay"});
  out.emplace_back(Suspect{"member-name", 7, "accuser"});
  out.emplace_back(Alive{"member-name", 8, Address{9, 10}});
  out.emplace_back(Dead{"member-name", 9, "member-name"});
  PushPull pp;
  pp.is_response = true;
  pp.from = "seed";
  pp.from_addr = {42, 7946};
  for (int i = 0; i < 3; ++i) {
    pp.members.push_back(MemberSnapshot{
        "n" + std::to_string(i), Address{static_cast<std::uint32_t>(i), 1},
        static_cast<std::uint64_t>(i), static_cast<std::uint8_t>(i % 4)});
  }
  out.emplace_back(pp);
  return out;
}

void try_decode(std::span<const std::uint8_t> bytes) {
  BufReader r(bytes);
  const auto msg = decode(r);
  if (msg.has_value()) {
    // If it decoded, re-encoding must not crash either (the decoded value is
    // well-formed by construction).
    BufWriter w;
    encode(*msg, w);
  }
}

TEST(WireMutation, EverySingleByteFlipIsHandled) {
  for (const Message& m : corpus()) {
    const auto bytes = encode_datagram(m);
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      for (std::uint8_t flip : {0x01, 0x80, 0xff}) {
        auto mutated = bytes;
        mutated[pos] ^= flip;
        try_decode(mutated);
      }
    }
  }
  SUCCEED();
}

TEST(WireMutation, EveryTruncationIsHandled) {
  for (const Message& m : corpus()) {
    const auto bytes = encode_datagram(m);
    for (std::size_t len = 0; len <= bytes.size(); ++len) {
      try_decode(std::span<const std::uint8_t>(bytes.data(), len));
    }
  }
  SUCCEED();
}

TEST(WireMutation, RandomSplicesIntoCompounds) {
  lifeguard::Rng rng(424242);
  const auto msgs = corpus();
  for (int round = 0; round < 300; ++round) {
    // Build a compound from 1-4 random messages, then splice random bytes.
    std::vector<std::vector<std::uint8_t>> frames;
    const int n = 1 + static_cast<int>(rng.uniform(4));
    for (int i = 0; i < n; ++i) {
      frames.push_back(
          encode_datagram(msgs[static_cast<std::size_t>(rng.uniform(msgs.size()))]));
    }
    auto packed = pack_compound(frames);
    const int mutations = 1 + static_cast<int>(rng.uniform(4));
    for (int i = 0; i < mutations; ++i) {
      packed[static_cast<std::size_t>(rng.uniform(packed.size()))] =
          static_cast<std::uint8_t>(rng.next_u64());
    }
    std::vector<std::span<const std::uint8_t>> out;
    if (unpack_compound(packed, out)) {
      for (const auto& f : out) try_decode(f);
    }
  }
  SUCCEED();
}

TEST(WireMutation, CompoundCountHeaderLies) {
  // A compound whose count header claims more frames than present must be
  // rejected, not over-read.
  auto packed = pack_compound({encode_datagram(Ack{1, "a"}),
                               encode_datagram(Ack{2, "b"})});
  ASSERT_EQ(static_cast<MsgType>(packed[0]), MsgType::kCompound);
  packed[1] = 0xff;  // count low byte -> 255 frames claimed
  std::vector<std::span<const std::uint8_t>> out;
  EXPECT_FALSE(unpack_compound(packed, out));
}

TEST(WireMutation, NestedCompoundIsNotRecursed) {
  // A compound frame containing another compound tag must not cause
  // unbounded recursion at the node layer: unpack returns the inner bytes as
  // a frame; decode() then rejects the compound tag as a message.
  auto inner = pack_compound({encode_datagram(Ack{1, "a"}),
                              encode_datagram(Ack{2, "b"})});
  auto outer = pack_compound({inner, encode_datagram(Ack{3, "c"})});
  std::vector<std::span<const std::uint8_t>> out;
  ASSERT_TRUE(unpack_compound(outer, out));
  ASSERT_EQ(out.size(), 2u);
  BufReader r(out[0]);
  EXPECT_FALSE(decode(r).has_value());  // compound is not a message type
}

}  // namespace
}  // namespace lifeguard::proto
