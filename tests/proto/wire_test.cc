// Wire codec: round-trips for every message type, malformed-input rejection
// and randomized round-trip sweeps.
#include "proto/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lifeguard::proto {
namespace {

template <typename T>
T round_trip(const Message& in) {
  auto bytes = encode_datagram(in);
  BufReader r(bytes);
  auto out = decode(r);
  EXPECT_TRUE(out.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*out));
  return std::get<T>(*out);
}

TEST(Wire, PingRoundTrip) {
  Ping p{77, "target-node", "source-node", Address{0x0a000001, 7946}};
  const Ping q = round_trip<Ping>(p);
  EXPECT_EQ(q.seq, 77u);
  EXPECT_EQ(q.target, "target-node");
  EXPECT_EQ(q.source, "source-node");
  EXPECT_EQ(q.source_addr, (Address{0x0a000001, 7946}));
}

TEST(Wire, PingReqRoundTrip) {
  PingReq p;
  p.seq = 1234;
  p.target = "t";
  p.target_addr = {9, 1};
  p.source = "s";
  p.source_addr = {4, 2};
  p.probe_timeout_us = 4'500'000;
  p.want_nack = true;
  const PingReq q = round_trip<PingReq>(p);
  EXPECT_EQ(q.seq, 1234u);
  EXPECT_EQ(q.target_addr, (Address{9, 1}));
  EXPECT_EQ(q.source_addr, (Address{4, 2}));
  EXPECT_EQ(q.probe_timeout_us, 4'500'000);
  EXPECT_TRUE(q.want_nack);
}

TEST(Wire, AckNackRoundTrip) {
  const Ack a = round_trip<Ack>(Ack{99, "responder"});
  EXPECT_EQ(a.seq, 99u);
  EXPECT_EQ(a.from, "responder");
  const Nack n = round_trip<Nack>(Nack{100, "relay"});
  EXPECT_EQ(n.seq, 100u);
  EXPECT_EQ(n.from, "relay");
}

TEST(Wire, SuspectAliveDeadRoundTrip) {
  const Suspect s = round_trip<Suspect>(Suspect{"m", 7, "accuser"});
  EXPECT_EQ(s.member, "m");
  EXPECT_EQ(s.incarnation, 7u);
  EXPECT_EQ(s.from, "accuser");

  const Alive a = round_trip<Alive>(Alive{"m", 8, Address{1, 2}});
  EXPECT_EQ(a.incarnation, 8u);
  EXPECT_EQ(a.addr, (Address{1, 2}));

  const Dead d = round_trip<Dead>(Dead{"m", 8, "m"});
  EXPECT_EQ(d.from, "m");  // leave encoding preserved
}

TEST(Wire, PushPullRoundTrip) {
  PushPull p;
  p.is_response = true;
  p.join = true;
  p.from = "seed";
  p.from_addr = {42, 7946};
  for (int i = 0; i < 5; ++i) {
    p.members.push_back(MemberSnapshot{"n" + std::to_string(i),
                                       Address{static_cast<std::uint32_t>(i), 1},
                                       static_cast<std::uint64_t>(i * 3),
                                       static_cast<std::uint8_t>(i % 4)});
  }
  const PushPull q = round_trip<PushPull>(p);
  EXPECT_TRUE(q.is_response);
  EXPECT_TRUE(q.join);
  ASSERT_EQ(q.members.size(), 5u);
  EXPECT_EQ(q.members[3].name, "n3");
  EXPECT_EQ(q.members[3].incarnation, 9u);
  EXPECT_EQ(q.members[3].state, 3);
}

TEST(Wire, MessageTypeMapping) {
  EXPECT_EQ(message_type(Message{Ping{}}), MsgType::kPing);
  EXPECT_EQ(message_type(Message{PingReq{}}), MsgType::kPingReq);
  EXPECT_EQ(message_type(Message{Ack{}}), MsgType::kAck);
  EXPECT_EQ(message_type(Message{Nack{}}), MsgType::kNack);
  EXPECT_EQ(message_type(Message{Suspect{}}), MsgType::kSuspect);
  EXPECT_EQ(message_type(Message{Alive{}}), MsgType::kAlive);
  EXPECT_EQ(message_type(Message{Dead{}}), MsgType::kDead);
  PushPull req;
  EXPECT_EQ(message_type(Message{req}), MsgType::kPushPullReq);
  req.is_response = true;
  EXPECT_EQ(message_type(Message{req}), MsgType::kPushPullResp);
}

TEST(Wire, DecodeRejectsUnknownTag) {
  std::vector<std::uint8_t> bad{0x7f, 0, 0, 0};
  BufReader r(bad);
  EXPECT_FALSE(decode(r).has_value());
}

TEST(Wire, DecodeRejectsEmpty) {
  BufReader r(std::span<const std::uint8_t>{});
  EXPECT_FALSE(decode(r).has_value());
}

TEST(Wire, DecodeRejectsTruncationAtEveryPrefix) {
  // Property: no prefix of a valid encoding decodes successfully (the codec
  // must detect truncation rather than fabricate values).
  PingReq p;
  p.seq = 5;
  p.target = "target";
  p.target_addr = {1, 2};
  p.source = "source";
  p.source_addr = {3, 4};
  p.probe_timeout_us = 500000;
  p.want_nack = true;
  const auto bytes = encode_datagram(p);
  for (std::size_t len = 1; len < bytes.size(); ++len) {
    BufReader r(std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_FALSE(decode(r).has_value()) << "prefix length " << len;
  }
}

TEST(Wire, DecodeRejectsAbsurdPushPullCount) {
  BufWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPushPullReq));
  w.u8(0);        // join
  w.str("x");     // from
  w.u32(1);       // addr ip
  w.u16(2);       // addr port
  w.varint(50'000'000);  // absurd member count
  BufReader r(w.bytes());
  EXPECT_FALSE(decode(r).has_value());
}

TEST(Wire, RandomGarbageNeverDecodesToCrash) {
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> garbage(rng.uniform(64));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    BufReader r(garbage);
    (void)decode(r);  // must not crash or hang; result irrelevant
  }
  SUCCEED();
}

TEST(Wire, RandomizedSuspectRoundTripSweep) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    Suspect s;
    s.member = "m" + std::to_string(rng.uniform(1000));
    s.incarnation = rng.next_u64();
    s.from = std::string(rng.uniform(40), 'f');
    const Suspect q = round_trip<Suspect>(s);
    ASSERT_EQ(q.member, s.member);
    ASSERT_EQ(q.incarnation, s.incarnation);
    ASSERT_EQ(q.from, s.from);
  }
}

}  // namespace
}  // namespace lifeguard::proto
