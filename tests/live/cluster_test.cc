// End-to-end live tier: real forked worker processes exchanging real UDP on
// loopback. These tests spawn whole clusters, so they are RUN_SERIAL and
// labeled `live` in CMake; each one skips cleanly when the live_node worker
// binary is not next to the test executable.
//
// The parity smoke runs the same cataloged scenario on both backends and
// holds the results to the tolerance band docs/live-tier.md documents:
// both backends must pass the invariant suite, detect the same victims, and
// agree on detection latency within ±5 s and FP counts within ±2.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "check/events.h"
#include "check/spec.h"
#include "harness/scenario.h"
#include "live/runner.h"

namespace lifeguard::live {
namespace {

std::string describe_all(const check::RunReport& report) {
  std::string out;
  for (const check::Violation& v : report.violations) {
    out += "\n  " + v.describe();
  }
  return out;
}

const harness::Scenario& cataloged(const char* name) {
  const harness::Scenario* s = harness::ScenarioRegistry::builtin().find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

#define REQUIRE_WORKER_BINARY()                                         \
  do {                                                                  \
    if (find_live_node_binary().empty()) {                              \
      GTEST_SKIP() << "live_node worker binary not found — build it "   \
                      "next to this test";                              \
    }                                                                   \
  } while (0)

TEST(LiveCluster, HealthyClusterConvergesAndPassesInvariants) {
  REQUIRE_WORKER_BINARY();
  harness::Scenario s = cataloged("live-healthy");
  const harness::RunResult r = live::run(s);

  EXPECT_TRUE(r.checks.checked);
  EXPECT_TRUE(r.checks.passed())
      << "violations: " << r.checks.total_violations << describe_all(r.checks);
  EXPECT_TRUE(r.victims.empty());
  EXPECT_EQ(r.fp_events, 0);  // nobody should be declared failed
  EXPECT_GT(r.msgs_sent, 0);
  EXPECT_GT(r.bytes_sent, 0);
}

TEST(LiveCluster, RunHonorsTheWallClockCeiling) {
  REQUIRE_WORKER_BINARY();
  harness::Scenario s = cataloged("live-healthy");
  RunOptions opts;
  opts.timeout = msec(50);  // far below quiesce + run — must trip
  EXPECT_THROW(live::run(s, opts), TimeoutError);
}

/// Captures the merged stream to measure detection latency from the crash
/// itself. Anchoring on the kCrash record factors out the one draw the
/// backends intentionally do not share — the random churn phase.
class DetectLatencySink : public check::TraceSink {
 public:
  explicit DetectLatencySink(int victim) : victim_(victim) {}
  void on_trace_event(const check::TraceEvent& e) override {
    if (e.kind == check::TraceEventKind::kCrash && e.node == victim_ &&
        crash_.us < 0) {
      crash_ = e.at;
    }
    if (e.kind == check::TraceEventKind::kFailed && e.peer == victim_ &&
        e.originated && crash_.us >= 0 && latency_ < 0) {
      latency_ = (e.at - crash_).seconds();
    }
  }
  /// Seconds from the victim's first crash to the first originated failed
  /// declaration about it; negative when either never happened.
  double latency() const { return latency_; }

 private:
  int victim_;
  TimePoint crash_{-1};
  double latency_ = -1.0;
};

TEST(LiveCluster, ParitySmokeCrashRestartMatchesTheSimulator) {
  REQUIRE_WORKER_BINARY();
  harness::Scenario s = cataloged("live-crash-restart");
  ASSERT_EQ(s.effective_timeline().entries().size(), 1u);
  const int victim = 3;  // explicit in the catalog entry

  DetectLatencySink sim_detect(victim);
  DetectLatencySink live_detect(victim);
  const harness::RunResult sim = harness::run(s, {&sim_detect});
  const harness::RunResult live = live::run(s, {}, {&live_detect});

  // Both backends run the invariant suite over their merged streams and
  // both must hold.
  ASSERT_TRUE(sim.checks.checked);
  ASSERT_TRUE(live.checks.checked);
  EXPECT_TRUE(sim.checks.passed());
  EXPECT_TRUE(live.checks.passed())
      << "live violations: " << live.checks.total_violations
      << describe_all(live.checks);

  // The victim set is explicit in the catalog entry, so it is identical —
  // not merely equivalent — across backends.
  EXPECT_EQ(sim.victims, live.victims);
  EXPECT_EQ(sim.victims, std::vector<int>{victim});

  // Both backends crash the victim and detect it; crash-to-detection
  // latency agrees within the documented ±5 s band (real schedulers
  // jitter; the protocol's detection time does not move by seconds).
  ASSERT_GE(sim_detect.latency(), 0.0) << "sim never detected the crash";
  ASSERT_GE(live_detect.latency(), 0.0) << "live never detected the crash";
  EXPECT_LE(std::abs(sim_detect.latency() - live_detect.latency()), 5.0)
      << "sim=" << sim_detect.latency() << "s live=" << live_detect.latency()
      << "s";

  // FP accounting within the documented ±2 band — healthy members of an
  // 8-node cluster should produce essentially none on either backend.
  EXPECT_LE(std::llabs(sim.fp_events - live.fp_events), 2);
  EXPECT_LE(std::llabs(sim.fp_healthy_events - live.fp_healthy_events), 2);
}

}  // namespace
}  // namespace lifeguard::live
