// compile_timeline (src/live/fault_plan.h): lowering a fault::Timeline into
// the flat wall-clock action list the live runner executes. The schedules
// must keep the simulator's shape — interval cycles complete, churn spares
// the rejoin seed, netem overlays are keyed by entry — or the two backends
// stop being comparable.
#include "live/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"

namespace lifeguard::live {
namespace {

using Kind = LiveAction::Kind;

std::vector<LiveAction> actions_of(const LivePlan& plan, Kind k) {
  std::vector<LiveAction> out;
  for (const LiveAction& a : plan.actions) {
    if (a.kind == k) out.push_back(a);
  }
  return out;
}

TEST(LiveFaultPlan, BlockLowersToStopContPair) {
  fault::Timeline tl;
  tl.add(sec(2), sec(5), fault::Fault::block(),
         fault::VictimSelector::nodes({3, 6}));
  Rng rng(1);
  const LivePlan plan = compile_timeline(tl, 8, sec(20), rng);

  const auto stops = actions_of(plan, Kind::kStop);
  const auto conts = actions_of(plan, Kind::kCont);
  ASSERT_EQ(stops.size(), 2u);
  ASSERT_EQ(conts.size(), 2u);
  for (const auto& a : stops) EXPECT_EQ(a.at, sec(2));
  for (const auto& a : conts) EXPECT_EQ(a.at, sec(7));
  EXPECT_EQ(plan.victims, (std::vector<int>{3, 6}));
  EXPECT_EQ(plan.entry_victims.size(), 1u);

  // Actions are time-sorted and the entry's start marker precedes its
  // same-instant stops (stable sort + markers generated first).
  ASSERT_GE(plan.actions.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      plan.actions.begin(), plan.actions.end(),
      [](const LiveAction& a, const LiveAction& b) { return a.at < b.at; }));
  EXPECT_EQ(plan.actions.front().kind, Kind::kFaultStart);
}

TEST(LiveFaultPlan, IntervalCyclesBegunBeforeEndComplete) {
  // 3s period + 1s gap over a 10s span: cycles start at 0, 4, 8 — the last
  // one begins inside the span and runs to completion at 11s, exactly like
  // sim::schedule_interval_anomaly.
  fault::Timeline tl;
  tl.add(sec(0), sec(10), fault::Fault::interval_block(sec(3), sec(1)),
         fault::VictimSelector::nodes({2}));
  Rng rng(1);
  const LivePlan plan = compile_timeline(tl, 8, sec(20), rng);

  const auto stops = actions_of(plan, Kind::kStop);
  const auto conts = actions_of(plan, Kind::kCont);
  ASSERT_EQ(stops.size(), 3u);
  ASSERT_EQ(conts.size(), 3u);
  EXPECT_EQ(stops[0].at, sec(0));
  EXPECT_EQ(stops[1].at, sec(4));
  EXPECT_EQ(stops[2].at, sec(8));
  EXPECT_EQ(conts[2].at, sec(11));  // completes past span end
  // plan_total_run stretches the observation window to cover it.
  EXPECT_GE(plan.total_run.us, sec(11).us);
}

TEST(LiveFaultPlan, ChurnSparesTheRejoinSeedAndPairsKillRespawn) {
  // Cycle (2s down + 3s up) <= span, so whatever phase the rng draws, at
  // least one kill lands inside the span (matching sim::schedule_churn,
  // where a phase past the span end legitimately yields no churn at all).
  fault::Timeline tl;
  tl.add(sec(0), sec(10), fault::Fault::churn(sec(2), sec(3)),
         fault::VictimSelector::nodes({0, 4}));
  Rng rng(7);
  const LivePlan plan = compile_timeline(tl, 8, sec(20), rng);

  const auto kills = actions_of(plan, Kind::kKill);
  const auto spawns = actions_of(plan, Kind::kRespawn);
  ASSERT_FALSE(kills.empty());
  ASSERT_EQ(kills.size(), spawns.size());
  for (const auto& a : kills) EXPECT_NE(a.node, 0);  // node 0 is the seed
  for (std::size_t i = 0; i < kills.size(); ++i) {
    EXPECT_EQ(spawns[i].node, kills[i].node);
    EXPECT_EQ(spawns[i].at, kills[i].at + sec(2));  // one downtime apart
  }
}

TEST(LiveFaultPlan, FlappingDrawsAPhasePerVictimInsideOneCycle) {
  fault::Timeline tl;
  tl.add(sec(0), sec(30), fault::Fault::flapping(sec(4), sec(2)),
         fault::VictimSelector::nodes({1, 2, 3}));
  Rng rng(42);
  const LivePlan plan = compile_timeline(tl, 8, sec(30), rng);

  // Every victim's first stop lands inside [0, cycle) and subsequent stops
  // repeat at the 6s cycle.
  for (int v : {1, 2, 3}) {
    std::vector<Duration> at;
    for (const auto& a : actions_of(plan, Kind::kStop)) {
      if (a.node == v) at.push_back(a.at);
    }
    ASSERT_GE(at.size(), 2u) << "victim " << v;
    EXPECT_LT(at[0].us, sec(6).us);
    for (std::size_t i = 1; i < at.size(); ++i) {
      EXPECT_EQ(at[i].us - at[i - 1].us, sec(6).us);
    }
  }
}

TEST(LiveFaultPlan, NetworkFaultsBecomeTokenedNetemOverlays) {
  fault::Timeline tl;
  tl.add(sec(0), sec(10), fault::Fault::link_loss(0.25, 0.1),
         fault::VictimSelector::nodes({2, 5}));
  tl.add(sec(3), sec(4), fault::Fault::latency(msec(30), msec(20)),
         fault::VictimSelector::nodes({2}));
  Rng rng(1);
  const LivePlan plan = compile_timeline(tl, 8, sec(20), rng);

  const auto adds = actions_of(plan, Kind::kNetemAdd);
  const auto dels = actions_of(plan, Kind::kNetemDel);
  ASSERT_EQ(adds.size(), 3u);
  ASSERT_EQ(dels.size(), 3u);
  // Tokens are timeline entry indices, so node 2 can carry both overlays
  // and shed them independently.
  int loss_tokens = 0, latency_tokens = 0;
  for (const auto& a : adds) {
    if (a.token == 0) {
      ++loss_tokens;
      EXPECT_DOUBLE_EQ(a.overlay.egress_loss, 0.25);
      EXPECT_DOUBLE_EQ(a.overlay.ingress_loss, 0.1);
    } else if (a.token == 1) {
      ++latency_tokens;
      EXPECT_EQ(a.node, 2);
      EXPECT_EQ(a.overlay.extra_latency, msec(30));
      EXPECT_EQ(a.overlay.jitter, msec(20));
    }
  }
  EXPECT_EQ(loss_tokens, 2);
  EXPECT_EQ(latency_tokens, 1);
}

TEST(LiveFaultPlan, PartitionClaimsCarryTheirIsland) {
  fault::Timeline tl;
  tl.add(sec(2), sec(4), fault::Fault::partition(),
         fault::VictimSelector::island(3, 4));
  Rng rng(1);
  const LivePlan plan = compile_timeline(tl, 10, sec(20), rng);

  const auto adds = actions_of(plan, Kind::kPartitionAdd);
  const auto dels = actions_of(plan, Kind::kPartitionDel);
  ASSERT_EQ(adds.size(), 1u);
  ASSERT_EQ(dels.size(), 1u);
  EXPECT_EQ(adds[0].at, sec(2));
  EXPECT_EQ(dels[0].at, sec(6));
  EXPECT_EQ(adds[0].island, (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(adds[0].token, dels[0].token);
}

TEST(LiveFaultPlan, MarkersBracketEveryEntry) {
  fault::Timeline tl;
  tl.add(sec(0), sec(8), fault::Fault::stressed(),
         fault::VictimSelector::nodes({7}));
  tl.add(sec(2), sec(4), fault::Fault::partition(),
         fault::VictimSelector::island(3, 4));
  Rng rng(3);
  const LivePlan plan = compile_timeline(tl, 10, sec(10), rng);

  const auto starts = actions_of(plan, Kind::kFaultStart);
  const auto ends = actions_of(plan, Kind::kFaultEnd);
  ASSERT_EQ(starts.size(), 2u);
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(plan.entry_victims.size(), 2u);
  // Stress never escapes its span start..end+last block; all stops pair
  // with conts.
  EXPECT_EQ(actions_of(plan, Kind::kStop).size(),
            actions_of(plan, Kind::kCont).size());
}

TEST(LiveFaultPlan, VictimUnionDeduplicatesInFirstOccurrenceOrder) {
  fault::Timeline tl;
  tl.add(sec(0), sec(5), fault::Fault::block(),
         fault::VictimSelector::nodes({5, 2}));
  tl.add(sec(6), sec(2), fault::Fault::block(),
         fault::VictimSelector::nodes({2, 7}));
  Rng rng(1);
  const LivePlan plan = compile_timeline(tl, 8, sec(20), rng);
  EXPECT_EQ(plan.victims, (std::vector<int>{5, 2, 7}));
}

}  // namespace
}  // namespace lifeguard::live
