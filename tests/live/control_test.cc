// Codec round-trips for the live tier's control-channel protocol
// (src/live/control.h): every line the parent and workers exchange must
// survive build -> parse unchanged, and the config/address codecs must be
// exact inverses — a worker configured through argv has to run the same
// protocol parameters the simulator would.
#include "live/control.h"

#include <gtest/gtest.h>

#include "check/events.h"
#include "net/fault_filter.h"
#include "swim/config.h"

namespace lifeguard::live {
namespace {

TEST(LiveControl, AddressRoundTrip) {
  const Address a{(127u << 24) | 1u, 9431};
  const auto parsed = parse_address(format_address(a));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip, a.ip);
  EXPECT_EQ(parsed->port, a.port);
}

TEST(LiveControl, AddressRejectsGarbage) {
  EXPECT_FALSE(parse_address("").has_value());
  EXPECT_FALSE(parse_address("127.0.0.1").has_value());
  EXPECT_FALSE(parse_address("127.0.0.1:").has_value());
  EXPECT_FALSE(parse_address("127.0.0.1:99999").has_value());
  EXPECT_FALSE(parse_address("1.2.3:44").has_value());
  EXPECT_FALSE(parse_address("a.b.c.d:44").has_value());
}

TEST(LiveControl, ConfigRoundTripDefault) {
  std::string error;
  const auto decoded = decode_config(encode_config(swim::Config{}), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, swim::Config{});
}

TEST(LiveControl, ConfigRoundTripEveryFieldNonDefault) {
  swim::Config c;
  c.probe_interval = msec(123);
  c.probe_timeout = msec(45);
  c.indirect_checks = 7;
  c.reliable_fallback_probe = false;
  c.retransmit_mult = 9;
  c.gossip_interval = msec(77);
  c.gossip_fanout = 5;
  c.gossip_to_dead = sec(11);
  c.max_packet_bytes = 512;
  c.push_pull_interval = sec(41);
  c.reconnect_interval = sec(13);
  c.suspicion_alpha = 3.25;
  c.suspicion_beta = 1.75;
  c.suspicion_k = 2;
  c.lha_probe = false;
  c.lha_suspicion = false;
  c.buddy_system = false;
  c.lhm_max = 4;
  c.nack_fraction = 0.6180339887498949;  // full double precision must survive
  c.nack_enabled = false;
  c.dead_reclaim_after = sec(33);

  std::string error;
  const auto decoded = decode_config(encode_config(c), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, c);
}

TEST(LiveControl, ConfigRejectsUnknownKey) {
  std::string error;
  EXPECT_FALSE(decode_config("pi=1000,zz=3", error).has_value());
  EXPECT_NE(error.find("zz"), std::string::npos) << error;
}

TEST(LiveControl, HelloRoundTrip) {
  std::string error;
  const auto msg = parse_worker_msg(hello_line(4, 12345, 40001), error);
  ASSERT_TRUE(msg.has_value()) << error;
  EXPECT_EQ(msg->kind, WorkerMsg::Kind::kHello);
  EXPECT_EQ(msg->index, 4);
  EXPECT_EQ(msg->pid, 12345);
  EXPECT_EQ(msg->udp_port, 40001);
}

TEST(LiveControl, EventRoundTrip) {
  check::TraceEvent e;
  e.at = TimePoint{msec(12304).us};
  e.kind = check::TraceEventKind::kSuspect;
  e.node = 3;
  e.peer = 7;
  e.origin = 3;
  e.incarnation = 2;
  e.originated = true;

  std::string error;
  const auto msg = parse_worker_msg(event_msg_line(e), error);
  ASSERT_TRUE(msg.has_value()) << error;
  EXPECT_EQ(msg->kind, WorkerMsg::Kind::kEvent);
  EXPECT_EQ(msg->event, e);
}

TEST(LiveControl, TickAndStatsAndByeRoundTrip) {
  std::string error;
  const TimePoint t{msec(2500).us};
  auto tick = parse_worker_msg(tick_line(t), error);
  ASSERT_TRUE(tick.has_value()) << error;
  EXPECT_EQ(tick->kind, WorkerMsg::Kind::kTick);
  EXPECT_EQ(tick->tick, t);

  WorkerStats s;
  s.msgs_sent = 101;
  s.bytes_sent = 20202;
  s.active = 8;
  auto stats = parse_worker_msg(stats_line(s), error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->kind, WorkerMsg::Kind::kStats);
  EXPECT_EQ(stats->stats.msgs_sent, s.msgs_sent);
  EXPECT_EQ(stats->stats.bytes_sent, s.bytes_sent);
  EXPECT_EQ(stats->stats.active, s.active);

  auto bye = parse_worker_msg(bye_line(), error);
  ASSERT_TRUE(bye.has_value()) << error;
  EXPECT_EQ(bye->kind, WorkerMsg::Kind::kBye);
}

TEST(LiveControl, StartCommandRoundTrip) {
  std::string error;
  const Address seed{(127u << 24) | 1u, 7001};
  auto join = parse_command(start_line(seed), error);
  ASSERT_TRUE(join.has_value()) << error;
  EXPECT_EQ(join->kind, Command::Kind::kStart);
  ASSERT_TRUE(join->join.has_value());
  EXPECT_EQ(join->join->port, seed.port);

  auto be_seed = parse_command(start_line(std::nullopt), error);
  ASSERT_TRUE(be_seed.has_value()) << error;
  EXPECT_EQ(be_seed->kind, Command::Kind::kStart);
  EXPECT_FALSE(be_seed->join.has_value());
}

TEST(LiveControl, FaultAddCommandRoundTrip) {
  net::NetemFilter::Overlay o;
  o.egress_loss = 0.25;
  o.ingress_loss = 0.1;
  o.extra_latency = msec(30);
  o.jitter = msec(20);
  o.duplicate_p = 0.05;
  o.reorder_p = 0.3;
  o.reorder_spread = msec(200);

  std::string error;
  const auto cmd = parse_command(fault_add_line(6, o), error);
  ASSERT_TRUE(cmd.has_value()) << error;
  EXPECT_EQ(cmd->kind, Command::Kind::kFaultAdd);
  EXPECT_EQ(cmd->token, 6);
  EXPECT_DOUBLE_EQ(cmd->overlay.egress_loss, o.egress_loss);
  EXPECT_DOUBLE_EQ(cmd->overlay.ingress_loss, o.ingress_loss);
  EXPECT_EQ(cmd->overlay.extra_latency, o.extra_latency);
  EXPECT_EQ(cmd->overlay.jitter, o.jitter);
  EXPECT_DOUBLE_EQ(cmd->overlay.duplicate_p, o.duplicate_p);
  EXPECT_DOUBLE_EQ(cmd->overlay.reorder_p, o.reorder_p);
  EXPECT_EQ(cmd->overlay.reorder_spread, o.reorder_spread);
}

TEST(LiveControl, FaultPartAndDelCommandRoundTrip) {
  const std::vector<Address> peers = {{(127u << 24) | 1u, 7002},
                                      {(127u << 24) | 1u, 7003}};
  std::string error;
  const auto part = parse_command(fault_part_line(9, peers), error);
  ASSERT_TRUE(part.has_value()) << error;
  EXPECT_EQ(part->kind, Command::Kind::kFaultPart);
  EXPECT_EQ(part->token, 9);
  ASSERT_EQ(part->peers.size(), 2u);
  EXPECT_EQ(part->peers[0].port, 7002);
  EXPECT_EQ(part->peers[1].port, 7003);

  const auto del = parse_command(fault_del_line(9), error);
  ASSERT_TRUE(del.has_value()) << error;
  EXPECT_EQ(del->kind, Command::Kind::kFaultDel);
  EXPECT_EQ(del->token, 9);

  EXPECT_EQ(parse_command(stats_request_line(), error)->kind,
            Command::Kind::kStats);
  EXPECT_EQ(parse_command(stop_line(), error)->kind, Command::Kind::kStop);
}

TEST(LiveControl, LineBufferFramesPartialReads) {
  LineBuffer lb;
  EXPECT_FALSE(lb.next_line().has_value());
  lb.append("HEL", 3);
  EXPECT_FALSE(lb.next_line().has_value());  // no terminator yet
  lb.append("LO 1 2 3\nTI", 11);
  auto first = lb.next_line();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "HELLO 1 2 3");
  EXPECT_FALSE(lb.next_line().has_value());  // "TI" is incomplete
  lb.append("CK 5\r\n", 6);
  auto second = lb.next_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "TICK 5");  // \r stripped
  EXPECT_TRUE(lb.empty());
}

}  // namespace
}  // namespace lifeguard::live
