// TraceMerger (src/live/merge.h): the watermark K-way merge that turns
// per-worker control streams — which arrive interleaved and out of order —
// back into the single time-ordered stream the checking layer requires.
// Covers the two failure shapes the live tier actually produces: events from
// different workers arriving out of global order, and a stream truncated
// mid-run by a SIGKILL.
#include "live/merge.h"

#include <gtest/gtest.h>

#include <vector>

#include "check/events.h"

namespace lifeguard::live {
namespace {

check::TraceEvent ev(Duration at, int node,
                     check::TraceEventKind kind = check::TraceEventKind::kAlive) {
  check::TraceEvent e;
  e.at = TimePoint{at.us};
  e.kind = kind;
  e.node = node;
  return e;
}

class CaptureSink : public check::TraceSink {
 public:
  void on_trace_event(const check::TraceEvent& e) override {
    events.push_back(e);
  }
  std::vector<check::TraceEvent> events;
};

class DatagramSink : public CaptureSink {
 public:
  bool wants_datagrams() const override { return true; }
};

TEST(TraceMerger, ReordersAcrossStreams) {
  CaptureSink sink;
  TraceMerger m({&sink});
  const int a = m.open_stream();
  const int b = m.open_stream();

  // Stream a races ahead; b's earlier event arrives later (a slow poll).
  m.push(a, ev(msec(300), 0));
  m.push(a, ev(msec(500), 0));
  EXPECT_EQ(sink.events.size(), 0u);  // b's watermark still at 0 — hold

  m.push(b, ev(msec(100), 1));
  // b promises nothing before 100ms: only the 100ms event may flow.
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].at, TimePoint{msec(100).us});

  m.advance(b, TimePoint{msec(600).us});  // TICK: b is quiet but alive
  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[1].at, TimePoint{msec(300).us});
  EXPECT_EQ(sink.events[2].at, TimePoint{msec(500).us});
  EXPECT_EQ(m.pending(), 0u);
}

TEST(TraceMerger, TimestampTiesBreakDeterministically) {
  // Same instant on two streams: stream id then arrival order decides. A
  // lagging third stream holds the release so the whole tie sits buffered
  // together; the flush must order it by (stream, arrival), not heap whim.
  CaptureSink sink;
  TraceMerger m({&sink});
  const int a = m.open_stream();
  const int b = m.open_stream();
  m.open_stream();  // lagging: holds the global watermark at 0

  m.push(b, ev(msec(100), 1));
  m.push(a, ev(msec(100), 0));
  m.push(a, ev(msec(100), 2));
  EXPECT_EQ(sink.events.size(), 0u);
  m.finish();

  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].node, 0);  // stream a first...
  EXPECT_EQ(sink.events[1].node, 2);  // ...in arrival order
  EXPECT_EQ(sink.events[2].node, 1);  // then stream b
}

TEST(TraceMerger, RegressingEventClampsToStreamWatermark) {
  // Cross-process clock skew can hand us an event timestamped before its
  // own stream's watermark; it must clamp up, never travel back in time.
  CaptureSink sink;
  TraceMerger m({&sink});
  const int a = m.open_stream();
  m.push(a, ev(msec(400), 0));
  m.push(a, ev(msec(250), 0));  // late timestamp — clamped to 400ms
  m.finish();
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].at, TimePoint{msec(400).us});
  EXPECT_EQ(sink.events[1].at, TimePoint{msec(400).us});
}

TEST(TraceMerger, KilledStreamStopsBoundingAndFlushesItsTail) {
  // Worker b is SIGKILLed mid-stream: whatever it emitted still comes out
  // in order, and — crucially — its dead watermark stops holding back the
  // survivors.
  CaptureSink sink;
  TraceMerger m({&sink});
  const int a = m.open_stream();
  const int b = m.open_stream();

  m.push(b, ev(msec(100), 1));
  m.push(a, ev(msec(150), 0));
  m.push(a, ev(msec(900), 0));
  ASSERT_EQ(sink.events.size(), 1u);  // only b's 100ms event released so far

  m.close_stream(b);  // EOF on b's control channel (killed)
  // b no longer bounds the merge: a's buffered events flow to a's watermark.
  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[1].at, TimePoint{msec(150).us});
  EXPECT_EQ(sink.events[2].at, TimePoint{msec(900).us});

  m.close_stream(b);  // idempotent
  m.push(a, ev(sec(1), 0));
  m.finish();
  EXPECT_EQ(sink.events.size(), 4u);
  EXPECT_EQ(m.pending(), 0u);
}

TEST(TraceMerger, FinishFlushesEverythingBuffered) {
  CaptureSink sink;
  TraceMerger m({&sink});
  const int a = m.open_stream();
  m.open_stream();  // never advances — would hold the merge forever
  m.push(a, ev(msec(100), 0));
  EXPECT_EQ(sink.events.size(), 0u);
  m.finish();
  EXPECT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(m.emitted(), 1u);
}

TEST(TraceMerger, WithholdsDatagramsFromUninterestedSinks) {
  CaptureSink plain;
  DatagramSink wants;
  TraceMerger m({&plain, &wants});
  const int a = m.open_stream();
  m.push(a, ev(msec(10), 0, check::TraceEventKind::kDatagram));
  m.push(a, ev(msec(20), 0));
  m.finish();
  ASSERT_EQ(plain.events.size(), 1u);
  EXPECT_EQ(plain.events[0].kind, check::TraceEventKind::kAlive);
  ASSERT_EQ(wants.events.size(), 2u);
  EXPECT_EQ(wants.events[0].kind, check::TraceEventKind::kDatagram);
}

}  // namespace
}  // namespace lifeguard::live
