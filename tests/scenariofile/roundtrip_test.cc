// Round-trip property tests for the scenario-file format and the `--fault`
// grammar it is built on.
//
// The file format stores timelines as check::entry_spec() strings and
// re-parses them with fault::parse_timeline_entry, so the grammar must be a
// lossless encoding of every Fault kind and every VictimSelector variant —
// the sweep below pins entry_spec -> parse -> re-emit string equality for
// the full cross product. On top of that, ScenarioFile::to_json must be a
// fixpoint under load: to_json(from_json(to_json(s))) == to_json(s) for
// every registry scenario and for hand-tuned ("Custom") configurations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/trace.h"
#include "fault/fault.h"
#include "harness/scenario.h"
#include "harness/scenariofile.h"

namespace lifeguard::harness {
namespace {

using fault::Fault;
using fault::TimelineEntry;
using fault::VictimSelector;

/// One representative Fault per kind, with every kind-specific parameter
/// set to a non-default value so a dropped key cannot hide.
std::vector<Fault> every_fault() {
  sim::StressParams stress;
  stress.block_min = msec(100);
  stress.block_max = sec(2);
  stress.run_min = msec(50);
  stress.run_max = msec(750);
  return {
      Fault::block(),
      Fault::interval_block(msec(1500), msec(250)),
      Fault::stressed(stress),
      Fault::flapping(msec(800), msec(40)),
      Fault::churn(sec(3), sec(7)),
      Fault::partition(),
      Fault::link_loss(0.3, 0.1),
      Fault::latency(msec(25), msec(5)),
      Fault::duplicate(0.15),
      Fault::reorder(0.05, msec(12)),
  };
}

/// One representative selector per VictimSelector::Mode.
std::vector<VictimSelector> every_selector() {
  return {
      VictimSelector::uniform(4),
      VictimSelector::nodes({1, 3, 5}),
      VictimSelector::fraction_of(0.25),
      VictimSelector::island(3, 2),
  };
}

TEST(FaultGrammarRoundTrip, EveryKindTimesEverySelectorReEmitsItself) {
  for (const Fault& f : every_fault()) {
    for (const VictimSelector& v : every_selector()) {
      TimelineEntry e;
      e.at = msec(2500);
      e.duration = sec(30);
      e.fault = f;
      e.victims = v;
      const std::string spec = check::entry_spec(e);

      std::string error;
      const auto parsed = fault::parse_timeline_entry(spec, error);
      ASSERT_TRUE(parsed.has_value())
          << "spec '" << spec << "' failed to parse: " << error;
      EXPECT_EQ(check::entry_spec(*parsed), spec)
          << fault::fault_kind_name(f.kind) << " x " << v.describe()
          << " did not round-trip";
    }
  }
}

TEST(ScenarioFileRoundTrip, EveryRegistryScenarioIsAToJsonFixpoint) {
  for (const Scenario& s : ScenarioRegistry::builtin().all()) {
    const std::string doc = ScenarioFile::to_json(s);
    std::string error;
    const auto loaded = ScenarioFile::from_json(doc, error);
    ASSERT_TRUE(loaded.has_value()) << s.name << ": " << error;
    EXPECT_EQ(ScenarioFile::to_json(*loaded), doc)
        << s.name << " did not round-trip";
    // The loaded scenario carries the timeline explicitly (the AnomalyPlan
    // shim was rendered through its effective timeline), and stays valid.
    EXPECT_TRUE(loaded->validate().empty()) << s.name;
    EXPECT_EQ(loaded->name, s.name);
    EXPECT_EQ(loaded->seed, s.seed);
    EXPECT_EQ(loaded->cluster_size, s.cluster_size);
    EXPECT_EQ(loaded->membership, s.membership);
    EXPECT_TRUE(loaded->config == s.config) << s.name;
  }
}

TEST(ScenarioFileRoundTrip, HandTunedCustomConfigSurvivesFieldForField) {
  Scenario s;
  s.name = "custom-config-roundtrip";
  s.cluster_size = 8;
  s.run_length = sec(30);
  // A toggle combination outside Table I ("Custom") with every other knob
  // moved off its default — the hardest case for the preset + overrides
  // decomposition.
  s.config.lha_probe = true;
  s.config.lha_suspicion = true;
  s.config.buddy_system = false;
  s.config.probe_interval = msec(350);
  s.config.probe_timeout = msec(120);
  s.config.indirect_checks = 5;
  s.config.reliable_fallback_probe = false;
  s.config.retransmit_mult = 6;
  s.config.gossip_interval = msec(75);
  s.config.gossip_fanout = 4;
  s.config.gossip_to_dead = sec(12);
  s.config.max_packet_bytes = 900;
  s.config.push_pull_interval = sec(45);
  s.config.reconnect_interval = sec(8);
  s.config.suspicion_alpha = 4.5;
  s.config.suspicion_beta = 3.25;
  s.config.suspicion_k = 2;
  s.config.lhm_max = 6;
  s.config.nack_fraction = 0.6;
  s.config.nack_enabled = false;
  s.config.dead_reclaim_after = sec(90);
  ASSERT_EQ(s.config.table1_name(), "Custom");

  const std::string doc = ScenarioFile::to_json(s);
  std::string error;
  const auto loaded = ScenarioFile::from_json(doc, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->config == s.config);
  EXPECT_EQ(ScenarioFile::to_json(*loaded), doc);
}

TEST(ScenarioFileRoundTrip, SparseHandAuthoredFileGetsScenarioDefaults) {
  const std::string doc =
      "{\"type\": \"scenario\", \"version\": 1, \"name\": \"minimal\"}";
  std::string error;
  const auto loaded = ScenarioFile::from_json(doc, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  const Scenario defaults;
  EXPECT_EQ(loaded->cluster_size, defaults.cluster_size);
  EXPECT_EQ(loaded->seed, defaults.seed);
  EXPECT_EQ(loaded->quiesce.us, defaults.quiesce.us);
  EXPECT_EQ(loaded->run_length.us, defaults.run_length.us);
  EXPECT_EQ(loaded->membership, "swim");
  EXPECT_TRUE(loaded->config == defaults.config);
  EXPECT_TRUE(loaded->timeline.empty());
  EXPECT_FALSE(loaded->checks.enabled);
}

}  // namespace
}  // namespace lifeguard::harness
