// Byte-parity between run-from-registry and export -> load -> run.
//
// Scenario files are only trustworthy as versioned data if loading one back
// reproduces the in-memory scenario *bit for bit*: same Rng draw order, same
// event stream, same trace bytes. The suite runs every non-big registry
// scenario both ways and compares the full RunResult plus an FNV-1a 64
// digest of the saved trace (header, transitions, fault markers, metric
// samples — every byte). A second test pins campaign artifacts: a campaign
// whose base came through the file format emits byte-identical JSONL/CSV at
// jobs=1 and jobs=8, matching the registry-based campaign exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/spec.h"
#include "check/trace.h"
#include "harness/campaign.h"
#include "harness/report.h"
#include "harness/scenario.h"
#include "harness/scenariofile.h"

namespace lifeguard::harness {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct Captured {
  RunResult result;
  std::uint64_t trace_digest = 0;
};

Captured capture(const Scenario& s) {
  check::TraceRecorder rec(s, /*include_datagrams=*/false,
                           /*include_probe_spans=*/false);
  Captured c;
  c.result = run(s, {&rec});
  std::ostringstream os;
  check::save_trace(rec.trace(), os);
  c.trace_digest = fnv1a(os.str());
  return c;
}

TEST(ScenarioFileParity, EveryRegistryScenarioRunsIdenticallyAfterReload) {
  std::vector<Scenario> all;
  for (const Scenario& s : ScenarioRegistry::builtin().all()) {
    if (s.cluster_size < 1000) all.push_back(s);  // big-* tier runs out of band
  }
  ASSERT_EQ(all.size(), 22u);

  struct Outcome {
    std::string name;
    std::string load_error;
    Captured from_registry;
    Captured from_file;
  };
  std::vector<Outcome> outcomes(all.size());

  // Independent deterministic runs — spread them like campaign trials.
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned w = 0; w < hw; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= all.size()) return;
        Outcome& o = outcomes[i];
        o.name = all[i].name;
        const auto loaded =
            ScenarioFile::from_json(ScenarioFile::to_json(all[i]),
                                    o.load_error);
        if (!loaded) continue;
        o.from_registry = capture(all[i]);
        o.from_file = capture(*loaded);
      }
    });
  }
  for (auto& th : pool) th.join();

  for (const Outcome& o : outcomes) {
    ASSERT_TRUE(o.load_error.empty()) << o.name << ": " << o.load_error;
    const RunResult& a = o.from_registry.result;
    const RunResult& b = o.from_file.result;
    EXPECT_EQ(a.fp_events, b.fp_events) << o.name;
    EXPECT_EQ(a.fp_healthy_events, b.fp_healthy_events) << o.name;
    EXPECT_EQ(a.victims, b.victims) << o.name;
    EXPECT_EQ(a.first_detect, b.first_detect) << o.name;
    EXPECT_EQ(a.full_dissem, b.full_dissem) << o.name;
    EXPECT_EQ(a.msgs_sent, b.msgs_sent) << o.name;
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << o.name;
    EXPECT_TRUE(a.checks == b.checks) << o.name;
    EXPECT_EQ(o.from_registry.trace_digest, o.from_file.trace_digest)
        << o.name << ": trace bytes diverged after export -> load";
  }
}

TEST(ScenarioFileParity, CampaignArtifactsMatchAcrossLoadAndJobsLevels) {
  Campaign c;
  c.name = "filed-campaign";
  c.base = *ScenarioRegistry::builtin().find("partition-split-heal");
  c.base.cluster_size = 12;
  c.base.anomaly.victims = 4;
  c.base.run_length = sec(90);
  c.base.checks = check::Spec::all();
  c.repetitions = 4;

  std::string error;
  const auto loaded =
      ScenarioFile::from_json(ScenarioFile::to_json(c.base), error);
  ASSERT_TRUE(loaded.has_value()) << error;

  auto artifacts = [&](const Scenario& base, int jobs) {
    Campaign run_c = c;
    run_c.base = base;
    run_c.jobs = jobs;
    std::ostringstream jsonl, csv;
    JsonlReporter jr(jsonl);
    CsvReporter cr(csv);
    run(run_c, {&jr, &cr});
    return std::pair{jsonl.str(), csv.str()};
  };

  const auto registry_seq = artifacts(c.base, 1);
  const auto registry_par = artifacts(c.base, 8);
  const auto loaded_seq = artifacts(*loaded, 1);
  const auto loaded_par = artifacts(*loaded, 8);
  EXPECT_EQ(registry_seq, registry_par);
  EXPECT_EQ(registry_seq, loaded_seq);
  EXPECT_EQ(registry_seq, loaded_par);
}

}  // namespace
}  // namespace lifeguard::harness
