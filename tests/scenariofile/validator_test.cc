// Negative-path coverage for the scenario-file validator: one malformed
// document per error class, each asserting the diagnostic names the
// offending key or value — the same error discipline as
// membership::parse_spec ("actionable, or it didn't happen").
#include <gtest/gtest.h>

#include <string>

#include "harness/gate.h"
#include "harness/scenariofile.h"

namespace lifeguard::harness {
namespace {

/// Wrap body fields into a minimally valid document and expect from_json to
/// reject it with a message containing every needle.
void expect_rejected(const std::string& extra_fields,
                     std::initializer_list<const char*> needles) {
  const std::string doc =
      "{\"type\": \"scenario\", \"version\": 1, \"name\": \"t\"" +
      (extra_fields.empty() ? "" : ", " + extra_fields) + "}";
  std::string error;
  const auto loaded = ScenarioFile::from_json(doc, error);
  ASSERT_FALSE(loaded.has_value()) << doc;
  for (const char* needle : needles) {
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error '" << error << "' does not name '" << needle << "'";
  }
}

TEST(ScenarioFileValidator, UnknownKeyIsNamed) {
  expect_rejected("\"frobnicate\": 3", {"unknown key", "frobnicate"});
}

TEST(ScenarioFileValidator, BadTypeNamesTheField) {
  expect_rejected("\"nodes\": \"plenty\"",
                  {"field 'nodes'", "not an integer"});
  expect_rejected("\"checked\": 3", {"field 'checked'", "not a boolean"});
  expect_rejected("\"timeline\": \"block\"",
                  {"field 'timeline'", "not an array"});
}

TEST(ScenarioFileValidator, OutOfRangeValueSurfacesScenarioValidation) {
  // Scenario::validate's message names the field and the value.
  expect_rejected("\"nodes\": 1", {"cluster_size (1)"});
}

TEST(ScenarioFileValidator, TrailingColonMembershipSpecIsActionable) {
  expect_rejected("\"membership\": \"central:\"",
                  {"bad membership spec 'central:'",
                   "empty parameter list after 'central:'"});
  expect_rejected("\"membership\": \"carrier-pigeon\"",
                  {"unknown membership backend 'carrier-pigeon'"});
}

TEST(ScenarioFileValidator, EmptyTimelineEntryIsNamed) {
  expect_rejected("\"timeline\": [\"\"]", {"bad timeline spec ''"});
  expect_rejected("\"timeline\": [\"wobble@0s:10s\"]",
                  {"bad timeline spec 'wobble@0s:10s'"});
}

TEST(ScenarioFileValidator, UnknownConfigAndOverrideAreNamed) {
  expect_rejected("\"config\": \"Turbo\"", {"unknown config 'Turbo'"});
  expect_rejected("\"config_overrides\": {\"warp_factor\": 9}",
                  {"unknown config override", "warp_factor"});
  expect_rejected("\"config_overrides\": 5",
                  {"'config_overrides'", "not an object"});
}

TEST(ScenarioFileValidator, WrongDocumentTypeAndVersionAreExplicit) {
  std::string error;
  EXPECT_FALSE(ScenarioFile::from_json(
                   "{\"type\": \"trace\", \"version\": 1, \"name\": \"t\"}",
                   error)
                   .has_value());
  EXPECT_NE(error.find("type is 'trace'"), std::string::npos) << error;

  EXPECT_FALSE(ScenarioFile::from_json(
                   "{\"type\": \"scenario\", \"version\": 7, "
                   "\"name\": \"t\"}",
                   error)
                   .has_value());
  EXPECT_NE(error.find("version 7"), std::string::npos) << error;

  EXPECT_FALSE(ScenarioFile::from_json("not json at all", error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ScenarioFileValidator, MissingNameIsRequired) {
  std::string error;
  EXPECT_FALSE(
      ScenarioFile::from_json("{\"type\": \"scenario\", \"version\": 1}",
                              error)
          .has_value());
  EXPECT_NE(error.find("'name'"), std::string::npos) << error;
}

TEST(BaselinesValidator, StrictAboutKeysTypesAndDuplicates) {
  std::string error;
  EXPECT_FALSE(baselines_from_json(
                   "{\"type\": \"scenario-baselines\", \"version\": 1, "
                   "\"entries\": [], \"bogus\": 1}",
                   error)
                   .has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;

  EXPECT_FALSE(baselines_from_json(
                   "{\"type\": \"trace\", \"version\": 1, \"entries\": []}",
                   error)
                   .has_value());
  EXPECT_NE(error.find("type is 'trace'"), std::string::npos) << error;

  const std::string dup =
      "{\"type\": \"scenario-baselines\", \"version\": 1, \"entries\": ["
      "{\"scenario\": \"a\", \"seed\": \"1\", \"bands\": []},"
      "{\"scenario\": \"a\", \"seed\": \"1\", \"bands\": []}]}";
  EXPECT_FALSE(baselines_from_json(dup, error).has_value());
  EXPECT_NE(error.find("duplicate baseline entry 'a'"), std::string::npos)
      << error;

  const std::string bad_band =
      "{\"type\": \"scenario-baselines\", \"version\": 1, \"entries\": ["
      "{\"scenario\": \"a\", \"seed\": \"1\", \"bands\": ["
      "{\"metric\": \"fp_events\", \"lo\": 0, \"ceiling\": 4}]}]}";
  EXPECT_FALSE(baselines_from_json(bad_band, error).has_value());
  EXPECT_NE(error.find("ceiling"), std::string::npos) << error;
  EXPECT_NE(error.find("'a'"), std::string::npos) << error;
}

}  // namespace
}  // namespace lifeguard::harness
