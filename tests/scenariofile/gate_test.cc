// The baseline metric gate: record_baseline on a run must admit that same
// run, a planted regression must fail with a per-metric diff naming the
// offending metric, and the baselines codec must be a to_json fixpoint.
#include <gtest/gtest.h>

#include <string>

#include "check/spec.h"
#include "harness/gate.h"
#include "harness/scenario.h"

namespace lifeguard::harness {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.name = "gate-under-test";
  s.summary = "gate test fixture";
  s.cluster_size = 8;
  s.config = swim::Config::lifeguard();
  s.anomaly = AnomalyPlan::threshold(2, sec(12));
  s.quiesce = sec(10);
  s.run_length = sec(30);
  s.checks = check::Spec::all();
  s.seed = 11;
  return s;
}

TEST(BaselineGate, RecordedRunPassesItsOwnGate) {
  const Scenario s = small_scenario();
  const RunResult r = run(s);

  BaselineSet baselines;
  baselines.entries.push_back(record_baseline(s, r));
  const GateReport report = gate_run(s, r, baselines);
  EXPECT_TRUE(report.passed) << report.describe();
  EXPECT_TRUE(report.diffs.empty());
  EXPECT_EQ(report.describe(), "gate OK gate-under-test");
}

TEST(BaselineGate, PlantedRegressionFailsNamingTheMetric) {
  const Scenario s = small_scenario();
  const RunResult r = run(s);

  BaselineSet baselines;
  baselines.entries.push_back(record_baseline(s, r));

  // Plant a load regression: double the message count pushes msgs_sent past
  // its +/-10% band while every other metric stays put.
  RunResult regressed = r;
  regressed.msgs_sent = r.msgs_sent * 2;
  const GateReport report = gate_run(s, regressed, baselines);
  ASSERT_FALSE(report.passed);
  ASSERT_EQ(report.diffs.size(), 1u) << report.describe();
  EXPECT_EQ(report.diffs[0].metric, "msgs_sent");
  EXPECT_NE(report.describe().find("gate FAIL gate-under-test"),
            std::string::npos);
  EXPECT_NE(report.describe().find("msgs_sent"), std::string::npos);
  EXPECT_NE(report.describe().find("outside ["), std::string::npos);

  // Detections are gated exactly — losing one is always a failure.
  {
    RunResult fewer = r;
    ASSERT_FALSE(fewer.first_detect.empty());
    fewer.first_detect.pop_back();
    const GateReport detect_report = gate_run(s, fewer, baselines);
    ASSERT_FALSE(detect_report.passed);
    bool named = false;
    for (const GateDiff& d : detect_report.diffs) {
      if (d.metric == "detections") named = true;
    }
    EXPECT_TRUE(named) << detect_report.describe();
  }
}

TEST(BaselineGate, SeedMismatchAndMissingScenarioAreExplicit) {
  const Scenario s = small_scenario();
  const RunResult r = run(s);

  BaselineSet baselines;
  baselines.entries.push_back(record_baseline(s, r));

  Scenario reseeded = s;
  reseeded.seed = 99;
  const GateReport seed_report = gate_run(reseeded, r, baselines);
  EXPECT_FALSE(seed_report.passed);
  EXPECT_NE(seed_report.error.find("seed mismatch"), std::string::npos);
  EXPECT_NE(seed_report.error.find("99"), std::string::npos);
  EXPECT_NE(seed_report.error.find("11"), std::string::npos);

  Scenario unknown = s;
  unknown.name = "never-recorded";
  const GateReport missing_report = gate_run(unknown, r, baselines);
  EXPECT_FALSE(missing_report.passed);
  EXPECT_NE(
      missing_report.error.find("no baseline recorded for scenario "
                                "'never-recorded'"),
      std::string::npos);
  EXPECT_NE(missing_report.error.find("tools/record-baselines.sh"),
            std::string::npos);
}

TEST(BaselineGate, BaselinesCodecIsAToJsonFixpoint) {
  const Scenario s = small_scenario();
  const RunResult r = run(s);

  BaselineSet set;
  set.entries.push_back(record_baseline(s, r));
  const std::string doc = baselines_to_json(set);

  std::string error;
  const auto loaded = baselines_from_json(doc, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(baselines_to_json(*loaded), doc);

  const ScenarioBaseline* entry = loaded->find(s.name);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->seed, s.seed);
  EXPECT_EQ(entry->bands.size(), set.entries[0].bands.size());
  // The recorded run still passes through the reloaded bands.
  EXPECT_TRUE(gate_run(s, r, *loaded).passed);
}

}  // namespace
}  // namespace lifeguard::harness
