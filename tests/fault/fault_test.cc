// fault:: value types — Fault factories, VictimSelector resolution,
// Timeline validation, the --fault entry grammar, and the injector's
// backend-agnostic drain planning.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fault/injector.h"

namespace lifeguard::fault {
namespace {

bool mentions(const std::vector<std::string>& errors,
              const std::string& needle) {
  return std::any_of(errors.begin(), errors.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

// ---------------------------------------------------------------------------
// Kinds

TEST(FaultKindNames, RoundTrip) {
  for (FaultKind k :
       {FaultKind::kBlock, FaultKind::kIntervalBlock, FaultKind::kStress,
        FaultKind::kFlapping, FaultKind::kChurn, FaultKind::kPartition,
        FaultKind::kLinkLoss, FaultKind::kLatency, FaultKind::kDuplicate,
        FaultKind::kReorder}) {
    const auto back = fault_kind_from_name(fault_kind_name(k));
    ASSERT_TRUE(back.has_value()) << fault_kind_name(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(fault_kind_from_name("no-such-kind").has_value());
}

TEST(FaultKindNames, NetworkKindsAreClassified) {
  EXPECT_TRUE(is_network_fault(FaultKind::kLinkLoss));
  EXPECT_TRUE(is_network_fault(FaultKind::kLatency));
  EXPECT_TRUE(is_network_fault(FaultKind::kDuplicate));
  EXPECT_TRUE(is_network_fault(FaultKind::kReorder));
  EXPECT_FALSE(is_network_fault(FaultKind::kBlock));
  EXPECT_FALSE(is_network_fault(FaultKind::kChurn));
}

// ---------------------------------------------------------------------------
// VictimSelector

TEST(VictimSelector, UniformMatchesLegacyPickVictims) {
  // The legacy draw: shuffle [0, n), truncate. Same seed → same set.
  Rng a(77), b(77);
  std::vector<int> legacy(16);
  for (int i = 0; i < 16; ++i) legacy[static_cast<std::size_t>(i)] = i;
  a.shuffle(legacy);
  legacy.resize(4);
  const auto got = VictimSelector::uniform(4).resolve(16, b, false);
  EXPECT_EQ(got, legacy);
}

TEST(VictimSelector, ExcludeSeedNodeMatchesLegacyChurnPick) {
  Rng a(78), b(78);
  std::vector<int> legacy;
  for (int i = 1; i < 12; ++i) legacy.push_back(i);
  a.shuffle(legacy);
  legacy.resize(3);
  const auto got = VictimSelector::uniform(3).resolve(12, b, true);
  EXPECT_EQ(got, legacy);
  EXPECT_FALSE(std::count(got.begin(), got.end(), 0));
}

TEST(VictimSelector, ExplicitAndIslandDrawNothing) {
  Rng r(1);
  const std::uint64_t before = r.next_u64();
  Rng probe(1);
  EXPECT_EQ(VictimSelector::nodes({5, 2, 9}).resolve(16, probe, false),
            (std::vector<int>{5, 2, 9}));
  EXPECT_EQ(VictimSelector::island(4, 2).resolve(16, probe, false),
            (std::vector<int>{2, 3, 4, 5}));
  // No Rng draws were consumed by either resolution.
  EXPECT_EQ(probe.next_u64(), before);
}

TEST(VictimSelector, FractionRoundsAndCaps) {
  EXPECT_EQ(VictimSelector::fraction_of(0.25).resolved_count(16), 4);
  EXPECT_EQ(VictimSelector::fraction_of(0.5).resolved_count(13), 7);  // round
  Rng r(9);
  EXPECT_EQ(VictimSelector::fraction_of(1.0).resolve(8, r, false).size(), 8u);
}

TEST(VictimSelector, OverlargeCountIsTruncatedToCluster) {
  Rng r(3);
  EXPECT_EQ(VictimSelector::uniform(99).resolve(6, r, false).size(), 6u);
}

// ---------------------------------------------------------------------------
// Timeline validation

TEST(TimelineValidation, ValidComposedTimelineHasNoErrors) {
  Timeline tl;
  tl.add(sec(0), sec(60), Fault::stressed(), VictimSelector::uniform(2));
  tl.add(sec(15), sec(20), Fault::partition(), VictimSelector::uniform(5));
  tl.add(sec(0), sec(60), Fault::link_loss(0.3, 0.1),
         VictimSelector::fraction_of(0.25));
  EXPECT_TRUE(tl.validate(16).empty());
}

TEST(TimelineValidation, EachDefectNamesItsEntry) {
  Timeline tl;
  tl.add(Duration{-1}, Duration{0}, Fault::block(),
         VictimSelector::uniform(0));
  tl.add(sec(0), sec(10), Fault::interval_block(Duration{0}, Duration{0}),
         VictimSelector::uniform(2));
  const auto errors = tl.validate(8);
  EXPECT_TRUE(mentions(errors, "timeline[0]"));
  EXPECT_TRUE(mentions(errors, "at must be >= 0"));
  EXPECT_TRUE(mentions(errors, "duration must be > 0"));
  EXPECT_TRUE(mentions(errors, "victims count must be >= 1"));
  EXPECT_TRUE(mentions(errors, "timeline[1]"));
  EXPECT_TRUE(mentions(errors, "period D > 0"));
}

TEST(TimelineValidation, ChurnProtectsTheRejoinSeed) {
  Timeline tl;
  tl.add(sec(0), sec(30), Fault::churn(sec(5), sec(10)),
         VictimSelector::nodes({0, 3}));
  EXPECT_TRUE(mentions(tl.validate(8), "node 0 is the rejoin seed"));
  Timeline island0;  // an island starting at 0 would silently skip node 0
  island0.add(sec(0), sec(30), Fault::churn(sec(5), sec(10)),
              VictimSelector::island(2, 0));
  EXPECT_TRUE(mentions(island0.validate(8), "node 0 is the rejoin seed"));
  Timeline island1;
  island1.add(sec(0), sec(30), Fault::churn(sec(5), sec(10)),
              VictimSelector::island(2, 1));
  EXPECT_TRUE(island1.validate(8).empty());
  Timeline too_many;
  too_many.add(sec(0), sec(30), Fault::churn(sec(5), sec(10)),
               VictimSelector::uniform(8));
  EXPECT_TRUE(mentions(too_many.validate(8), "cluster_size - 1"));
}

TEST(TimelineValidation, FractionRoundingToZeroVictimsIsRejected) {
  Timeline tl;
  tl.add(sec(0), sec(10), Fault::block(), VictimSelector::fraction_of(0.1));
  EXPECT_TRUE(mentions(tl.validate(4), "silent no-op"));
  EXPECT_TRUE(tl.validate(16).empty());  // 10% of 16 rounds to 2
}

TEST(TimelineValidation, PartitionNeedsBothSides) {
  Timeline tl;
  tl.add(sec(0), sec(10), Fault::partition(), VictimSelector::uniform(8));
  EXPECT_TRUE(mentions(tl.validate(8), "both sides"));
}

TEST(TimelineValidation, NetworkKindsCheckProbabilitiesAndSpans) {
  Timeline tl;
  tl.add(sec(0), sec(10), Fault::link_loss(0.0, 0.0),
         VictimSelector::uniform(1));
  tl.add(sec(0), sec(10), Fault::link_loss(1.5, 0.0),
         VictimSelector::uniform(1));
  tl.add(sec(0), sec(10), Fault::duplicate(0.0), VictimSelector::uniform(1));
  tl.add(sec(0), sec(10), Fault::reorder(0.5, Duration{0}),
         VictimSelector::uniform(1));
  tl.add(sec(0), sec(10), Fault::latency(Duration{0}, Duration{0}),
         VictimSelector::uniform(1));
  const auto errors = tl.validate(8);
  EXPECT_TRUE(mentions(errors, "at least one of egress/ingress"));
  EXPECT_TRUE(mentions(errors, "probabilities must be in [0, 1]"));
  EXPECT_TRUE(mentions(errors, "duplicate probability"));
  EXPECT_TRUE(mentions(errors, "reorder spread"));
  EXPECT_TRUE(mentions(errors, "at least one of extra/jitter"));
}

TEST(TimelineValidation, ExplicitIndicesMustBeInRange) {
  Timeline tl;
  tl.add(sec(0), sec(10), Fault::block(), VictimSelector::nodes({1, 12}));
  EXPECT_TRUE(mentions(tl.validate(8), "outside [0, 8)"));
}

TEST(Timeline, EntryAccessorThrowsOutOfRangeWithMessage) {
  Timeline tl;
  tl.add(sec(0), sec(10), Fault::block(), VictimSelector::uniform(1));
  EXPECT_NO_THROW(tl.entry(0));
  EXPECT_THROW(tl.entry(1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Descriptions

TEST(TimelineDescribe, SummaryIsStableAndReadable) {
  Timeline tl;
  tl.add(sec(0), sec(16), Fault::block(), VictimSelector::uniform(4));
  tl.add(sec(10), sec(30), Fault::link_loss(0.3, 0.1),
         VictimSelector::nodes({1, 3}));
  const std::string s = tl.summary();
  EXPECT_NE(s.find("block@0s+16s x4"), std::string::npos) << s;
  EXPECT_NE(s.find("loss@10s+30s nodes 1+3"), std::string::npos) << s;
  EXPECT_NE(s.find("egress=0.3"), std::string::npos) << s;
}

// ---------------------------------------------------------------------------
// Parsing (--fault grammar)

TEST(ParseTimelineEntry, FullSpecRoundTrips) {
  std::string error;
  const auto e = parse_timeline_entry(
      "interval@10s:60s,victims=8,d=16384,i=4", error);
  ASSERT_TRUE(e.has_value()) << error;
  EXPECT_EQ(e->fault.kind, FaultKind::kIntervalBlock);
  EXPECT_EQ(e->at, sec(10));
  EXPECT_EQ(e->duration, sec(60));
  EXPECT_EQ(e->fault.period, msec(16384));  // bare numbers are ms
  EXPECT_EQ(e->fault.gap, msec(4));
  EXPECT_EQ(e->victims.mode, VictimSelector::Mode::kUniform);
  EXPECT_EQ(e->victims.count, 8);
}

TEST(ParseTimelineEntry, SelectorsAndNetworkKeys) {
  std::string error;
  auto e = parse_timeline_entry("loss@0s:90s,pct=25,egress=0.3,ingress=0.1",
                                error);
  ASSERT_TRUE(e.has_value()) << error;
  EXPECT_EQ(e->victims.mode, VictimSelector::Mode::kFraction);
  EXPECT_DOUBLE_EQ(e->victims.fraction, 0.25);
  EXPECT_DOUBLE_EQ(e->fault.egress_loss, 0.3);
  EXPECT_DOUBLE_EQ(e->fault.ingress_loss, 0.1);

  e = parse_timeline_entry("latency@500ms:30s,nodes=1+3+5,extra=20,jitter=5",
                           error);
  ASSERT_TRUE(e.has_value()) << error;
  EXPECT_EQ(e->at, msec(500));
  EXPECT_EQ(e->victims.indices, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(e->fault.extra_latency, msec(20));

  e = parse_timeline_entry("reorder@0s:10s,island=4+2,p=0.5,spread=100ms",
                           error);
  ASSERT_TRUE(e.has_value()) << error;
  EXPECT_EQ(e->victims.mode, VictimSelector::Mode::kIsland);
  EXPECT_EQ(e->victims.count, 4);
  EXPECT_EQ(e->victims.first, 2);
  EXPECT_EQ(e->fault.spread, msec(100));
}

TEST(ParseTimelineEntry, ChurnAliases) {
  std::string error;
  const auto e =
      parse_timeline_entry("churn@0s:60s,victims=3,down=10s,up=20s", error);
  ASSERT_TRUE(e.has_value()) << error;
  EXPECT_EQ(e->fault.period, sec(10));
  EXPECT_EQ(e->fault.gap, sec(20));
}

TEST(ParseTimelineEntry, DefaultsToOneUniformVictim) {
  std::string error;
  const auto e = parse_timeline_entry("block@0s:16s", error);
  ASSERT_TRUE(e.has_value()) << error;
  EXPECT_EQ(e->victims.mode, VictimSelector::Mode::kUniform);
  EXPECT_EQ(e->victims.count, 1);
}

TEST(ParseTimelineEntry, MalformedInputsNameTheToken) {
  std::string error;
  EXPECT_FALSE(parse_timeline_entry("block", error).has_value());
  EXPECT_NE(error.find("KIND@AT:DUR"), std::string::npos);
  EXPECT_FALSE(parse_timeline_entry("wat@0s:10s", error).has_value());
  EXPECT_NE(error.find("unknown fault kind 'wat'"), std::string::npos);
  EXPECT_FALSE(parse_timeline_entry("block@zz:10s", error).has_value());
  EXPECT_NE(error.find("bad time"), std::string::npos);
  EXPECT_FALSE(parse_timeline_entry("block@0s:10s,victims=", error)
                   .has_value());
  EXPECT_FALSE(parse_timeline_entry("block@0s:10s,frob=3", error).has_value());
  EXPECT_NE(error.find("unknown key 'frob'"), std::string::npos);
  // An empty '+'-separated token must not silently parse as node 0.
  EXPECT_FALSE(parse_timeline_entry("block@0s:10s,nodes=1++3", error)
                   .has_value());
  // Non-finite probabilities would defeat range validation downstream.
  EXPECT_FALSE(parse_timeline_entry("duplicate@0s:10s,p=nan", error)
                   .has_value());
  EXPECT_FALSE(parse_timeline_entry("duplicate@0s:10s,p=inf", error)
                   .has_value());
  // Selector counts are strict integers — no silent truncation.
  EXPECT_FALSE(parse_timeline_entry("block@0s:10s,victims=2.9", error)
                   .has_value());
  EXPECT_FALSE(parse_timeline_entry("block@0s:10s,victims=1e1", error)
                   .has_value());
  // A duration that would overflow int64 microseconds is rejected, not
  // wrapped.
  EXPECT_FALSE(parse_timeline_entry("block@0s:9223372036856s", error)
                   .has_value());
  EXPECT_NE(error.find("bad time"), std::string::npos);
}

TEST(ParseTimelineEntry, KeysMustApplyToTheFaultKind) {
  std::string error;
  // Cycle-shape keys on a stress fault would silently configure nothing.
  EXPECT_FALSE(parse_timeline_entry("stress@0s:5s,d=2s,i=50ms,victims=2",
                                    error)
                   .has_value());
  EXPECT_NE(error.find("does not apply to fault kind 'stress'"),
            std::string::npos);
  EXPECT_FALSE(parse_timeline_entry("block@0s:5s,egress=0.5", error)
                   .has_value());
  EXPECT_FALSE(parse_timeline_entry("loss@0s:5s,p=0.5", error).has_value());
  EXPECT_FALSE(parse_timeline_entry("duplicate@0s:5s,spread=10ms", error)
                   .has_value());
  // ...while the kinds that do read them still accept them.
  EXPECT_TRUE(parse_timeline_entry("flapping@0s:30s,d=2s,i=50ms", error)
                  .has_value());
  EXPECT_TRUE(parse_timeline_entry("reorder@0s:5s,p=0.5,spread=10ms", error)
                  .has_value());
}

TEST(TimelineValidation, AbsurdSpansAreCappedBeforeClockOverflow) {
  Timeline tl;
  tl.add(sec(400000000), sec(400000000), Fault::block(),
         VictimSelector::uniform(1));
  EXPECT_TRUE(mentions(tl.validate(8), "capped at 10 years"));
}

// ---------------------------------------------------------------------------
// Drain planning (FaultInjector::plan_total_run)

TEST(PlanTotalRun, MatchesLegacyPerKindDrains) {
  const Duration rl = sec(40);
  {
    Timeline tl;  // threshold: exactly the observation window
    tl.add(Duration{}, sec(16), Fault::block(), VictimSelector::uniform(2));
    EXPECT_EQ(FaultInjector::plan_total_run(tl, rl), rl);
  }
  {
    Timeline tl;  // interval: whole cycles + 1 s drain
    tl.add(Duration{}, rl, Fault::interval_block(msec(8192), msec(64)),
           VictimSelector::uniform(2));
    EXPECT_EQ(FaultInjector::plan_total_run(tl, rl),
              cycle_aligned_length(rl, msec(8192), msec(64)) + sec(1));
  }
  {
    Timeline tl;  // stress: + 2 s
    tl.add(Duration{}, rl, Fault::stressed(), VictimSelector::uniform(2));
    EXPECT_EQ(FaultInjector::plan_total_run(tl, rl), rl + sec(2));
  }
  {
    Timeline tl;  // partition healing inside the window: + 1 s
    tl.add(Duration{}, sec(20), Fault::partition(),
           VictimSelector::uniform(4));
    EXPECT_EQ(FaultInjector::plan_total_run(tl, rl), rl + sec(1));
  }
  {
    Timeline tl;  // flapping: + one blocked period + 1 s
    tl.add(Duration{}, rl, Fault::flapping(sec(8), msec(50)),
           VictimSelector::uniform(2));
    EXPECT_EQ(FaultInjector::plan_total_run(tl, rl), rl + sec(8) + sec(1));
  }
  {
    Timeline tl;  // churn: + one downtime + 2 s
    tl.add(Duration{}, rl, Fault::churn(sec(12), sec(20)),
           VictimSelector::uniform(2));
    EXPECT_EQ(FaultInjector::plan_total_run(tl, rl), rl + sec(12) + sec(2));
  }
  EXPECT_EQ(FaultInjector::plan_total_run(Timeline{}, rl), rl);
}

TEST(PlanTotalRun, ComposedTimelineTakesTheMaxAcrossEntries) {
  Timeline tl;
  tl.add(Duration{}, sec(60), Fault::stressed(), VictimSelector::uniform(2));
  tl.add(sec(40), sec(50), Fault::churn(sec(10), sec(20)),
         VictimSelector::uniform(3));
  // churn entry quiet point: 40 + 50 + 10 = 100; slack max(2s, 2s) = 2s.
  EXPECT_EQ(FaultInjector::plan_total_run(tl, sec(60)), sec(102));
}

TEST(PlanTotalRun, LateEntryExtendsTheRunPastTheWindow) {
  Timeline tl;
  tl.add(sec(50), sec(30), Fault::link_loss(0.5, 0.0),
         VictimSelector::uniform(1));
  EXPECT_EQ(FaultInjector::plan_total_run(tl, sec(40)), sec(80));
}

}  // namespace
}  // namespace lifeguard::fault
