// FaultInjector end-to-end: golden-seed replay parity for the AnomalyPlan
// shim, AnomalyPlan↔Timeline equivalence, composed timelines, and the
// network-level fault kinds.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cluster/cluster.h"
#include "harness/scenario.h"
#include "sim/simulator.h"

namespace lifeguard::fault {
namespace {

using harness::AnomalyPlan;
using harness::RunResult;
using harness::Scenario;

Scenario base_scenario(const char* name, int nodes, std::uint64_t seed) {
  Scenario s;
  s.name = name;
  s.cluster_size = nodes;
  s.quiesce = sec(10);
  s.config = swim::Config::lifeguard();
  s.seed = seed;
  return s;
}

// ---------------------------------------------------------------------------
// Golden-seed replay: these exact values were captured from the pre-Timeline
// engine (the single-slot AnomalyPlan switch) at the seed of this PR. Every
// AnomalyPlan now executes through to_timeline() + FaultInjector, and must
// reproduce them bit-for-bit. If this test breaks, the shim has drifted —
// fix the engine, do not re-capture the numbers.

struct Golden {
  const char* tag;
  std::int64_t fp, fp_healthy, msgs, bytes;
  std::vector<int> victims;
  std::size_t first_detect, full_dissem;
};

void expect_golden(const Scenario& s, const Golden& g) {
  const RunResult r = harness::run(s);
  EXPECT_EQ(r.fp_events, g.fp) << g.tag;
  EXPECT_EQ(r.fp_healthy_events, g.fp_healthy) << g.tag;
  EXPECT_EQ(r.msgs_sent, g.msgs) << g.tag;
  EXPECT_EQ(r.bytes_sent, g.bytes) << g.tag;
  EXPECT_EQ(r.victims, g.victims) << g.tag;
  EXPECT_EQ(r.first_detect.size(), g.first_detect) << g.tag;
  EXPECT_EQ(r.full_dissem.size(), g.full_dissem) << g.tag;
}

TEST(GoldenSeedParity, ThresholdReplaysBitIdentically) {
  Scenario s = base_scenario("g-threshold", 16, 7101);
  s.anomaly = AnomalyPlan::threshold(3, sec(16));
  s.run_length = sec(40);
  expect_golden(s, {"threshold", 0, 0, 3148, 169245, {0, 15, 11}, 3, 3});
}

TEST(GoldenSeedParity, IntervalReplaysBitIdentically) {
  Scenario s = base_scenario("g-interval", 16, 7102);
  s.config = swim::Config::swim_baseline();
  s.anomaly = AnomalyPlan::cycling(3, msec(8192), msec(64));
  s.run_length = sec(40);
  expect_golden(s, {"interval", 3, 0, 5592, 307705, {14, 7, 12}, 3, 3});
}

TEST(GoldenSeedParity, StressReplaysBitIdentically) {
  Scenario s = base_scenario("g-stress", 16, 7103);
  s.anomaly = AnomalyPlan::stressed(2);
  s.run_length = sec(40);
  expect_golden(s, {"stress", 0, 0, 4954, 233631, {0, 8}, 2, 2});
}

TEST(GoldenSeedParity, PartitionReplaysBitIdentically) {
  Scenario s = base_scenario("g-partition", 12, 7104);
  s.anomaly = AnomalyPlan::partition(4, sec(20));
  s.run_length = sec(50);
  expect_golden(s, {"partition", 11, 0, 2756, 132148, {11, 7, 4, 0}, 4, 4});
}

TEST(GoldenSeedParity, FlappingReplaysBitIdentically) {
  Scenario s = base_scenario("g-flapping", 16, 7105);
  s.anomaly = AnomalyPlan::flapping(3, sec(8), msec(50));
  s.run_length = sec(40);
  expect_golden(s, {"flapping", 1, 0, 7974, 362765, {9, 8, 0}, 3, 3});
}

TEST(GoldenSeedParity, ChurnReplaysBitIdentically) {
  Scenario s = base_scenario("g-churn", 12, 7106);
  s.anomaly = AnomalyPlan::churn(2, sec(12), sec(20));
  s.run_length = sec(60);
  expect_golden(s, {"churn", 0, 0, 4139, 147992, {4, 6}, 2, 2});
}

TEST(GoldenSeedParity, HealthyBaselineReplaysBitIdentically) {
  Scenario s = base_scenario("g-none", 12, 7107);
  s.anomaly = AnomalyPlan::none();
  s.run_length = sec(30);
  expect_golden(s, {"none", 0, 0, 1231, 50863, {}, 0, 0});
}

// ---------------------------------------------------------------------------
// Shim equivalence: running the AnomalyPlan slot and running its
// to_timeline() explicitly are the same program.

TEST(ShimEquivalence, ExplicitTimelineMatchesAnomalyPlan) {
  Scenario via_plan = base_scenario("shim", 14, 991);
  via_plan.anomaly = AnomalyPlan::cycling(3, msec(4096), msec(128));
  via_plan.run_length = sec(30);

  Scenario via_timeline = via_plan;
  via_timeline.timeline =
      via_plan.anomaly.to_timeline(via_plan.run_length);
  via_timeline.anomaly = AnomalyPlan::none();

  const RunResult a = harness::run(via_plan);
  const RunResult b = harness::run(via_timeline);
  EXPECT_EQ(a.victims, b.victims);
  EXPECT_EQ(a.fp_events, b.fp_events);
  EXPECT_EQ(a.fp_healthy_events, b.fp_healthy_events);
  EXPECT_EQ(a.first_detect, b.first_detect);
  EXPECT_EQ(a.full_dissem, b.full_dissem);
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
}

// ---------------------------------------------------------------------------
// Composition

TEST(ComposedTimeline, AllEntriesExecuteAndVictimsUnion) {
  Scenario s = base_scenario("composed", 12, 4242);
  s.timeline.add(sec(0), sec(20), Fault::block(),
                 VictimSelector::nodes({3, 5}));
  s.timeline.add(sec(5), sec(10), Fault::partition(),
                 VictimSelector::nodes({5, 7, 9}));
  s.run_length = sec(40);
  ASSERT_TRUE(s.validate().empty());
  const RunResult r = harness::run(s);
  // Union, first-occurrence order, deduplicated (5 appears once).
  EXPECT_EQ(r.victims, (std::vector<int>{3, 5, 7, 9}));
  EXPECT_GT(r.msgs_sent, 0);
}

TEST(ComposedTimeline, SequencedFaultsBothLeaveTraces) {
  // A partition, then churn strictly after the heal: inexpressible as one
  // AnomalyPlan. The partition must drop cross-island packets and the churn
  // must produce real dead declarations later.
  Scenario s = base_scenario("seq", 12, 515);
  s.timeline.add(sec(0), sec(15), Fault::partition(),
                 VictimSelector::uniform(4));
  s.timeline.add(sec(25), sec(30), Fault::churn(sec(8), sec(15)),
                 VictimSelector::uniform(2));
  s.run_length = sec(60);
  const RunResult r = harness::run(s);
  // Independent uniform draws may overlap: the union holds 4..6 members.
  EXPECT_GE(r.victims.size(), 4u);
  EXPECT_LE(r.victims.size(), 6u);
  EXPECT_GT(r.metrics.counter_value("net.dropped.partition"), 0);
  EXPECT_FALSE(r.first_detect.empty());
}

TEST(ComposedTimeline, ReproducibleAcrossRunsDistinctAcrossSeeds) {
  Scenario s = base_scenario("repro", 12, 31337);
  s.timeline.add(sec(0), sec(30), Fault::stressed(),
                 VictimSelector::uniform(2));
  s.timeline.add(sec(10), sec(10), Fault::link_loss(0.4, 0.4),
                 VictimSelector::uniform(3));
  s.run_length = sec(30);
  const RunResult a = harness::run(s);
  const RunResult b = harness::run(s);
  EXPECT_EQ(a.victims, b.victims);
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.fp_events, b.fp_events);
  s.seed = 31338;
  const RunResult c = harness::run(s);
  EXPECT_NE(a.msgs_sent, c.msgs_sent);
}

TEST(ComposedTimeline, OverlappingPartitionsShareAVictimAndUnwindInOrder) {
  // Partition A holds {1,2} for [0s,20s); partition B holds {2,3} for
  // [10s,30s). When A ends, node 2 must stay isolated under B's claim, and
  // only re-merge when B ends.
  sim::SimParams params;
  params.seed = 321;
  sim::Simulator sim(6, swim::Config::lifeguard(), params);
  sim.start_all();
  sim.run_for(sec(10));

  Timeline tl;
  tl.add(sec(0), sec(20), Fault::partition(), VictimSelector::nodes({1, 2}));
  tl.add(sec(10), sec(20), Fault::partition(), VictimSelector::nodes({2, 3}));
  const TimePoint t0 = sim.now();
  FaultInjector().inject(sim, tl, t0, sec(40));

  sim.run_until(t0 + sec(5));  // A active: 1 and 2 split off together
  EXPECT_TRUE(sim.network().should_drop(2, 0, Channel::kReliable));
  EXPECT_FALSE(sim.network().should_drop(2, 1, Channel::kReliable));

  sim.run_until(t0 + sec(25));  // A ended, B active: 2 is with 3 now
  EXPECT_TRUE(sim.network().should_drop(2, 0, Channel::kReliable));
  EXPECT_FALSE(sim.network().should_drop(2, 3, Channel::kReliable));
  EXPECT_FALSE(sim.network().should_drop(1, 0, Channel::kReliable));

  sim.run_until(t0 + sec(35));  // B ended: everyone re-merged
  EXPECT_FALSE(sim.network().should_drop(2, 0, Channel::kReliable));
  EXPECT_FALSE(sim.network().should_drop(3, 0, Channel::kReliable));
}

// ---------------------------------------------------------------------------
// Network-level kinds, end to end

TEST(NetworkFaults, LinkLossDropsDatagramsAndUnwindsAtSpanEnd) {
  Scenario s = base_scenario("loss", 10, 616);
  s.timeline.add(sec(0), sec(20), Fault::link_loss(0.6, 0.6),
                 VictimSelector::uniform(2));
  s.run_length = sec(30);
  const RunResult r = harness::run(s);
  EXPECT_GT(r.metrics.counter_value("net.dropped.fault_loss"), 0);
}

TEST(NetworkFaults, DuplicationDeliversExtraCopies) {
  Scenario s = base_scenario("dup", 10, 617);
  s.timeline.add(sec(0), sec(20), Fault::duplicate(0.5),
                 VictimSelector::uniform(3));
  s.run_length = sec(30);
  const RunResult r = harness::run(s);
  EXPECT_GT(r.metrics.counter_value("net.duplicated"), 0);
  // Duplicated protocol traffic must not manufacture false positives.
  EXPECT_EQ(r.fp_events, 0);
}

TEST(NetworkFaults, ReorderingDelaysDatagrams) {
  Scenario s = base_scenario("reorder", 10, 618);
  s.timeline.add(sec(0), sec(20), Fault::reorder(0.5, msec(300)),
                 VictimSelector::uniform(3));
  s.run_length = sec(30);
  const RunResult r = harness::run(s);
  EXPECT_GT(r.metrics.counter_value("net.reordered"), 0);
  EXPECT_EQ(r.fp_events, 0);
}

TEST(NetworkFaults, AddedLatencyAloneKeepsTheClusterHealthy) {
  Scenario s = base_scenario("latency", 10, 619);
  s.timeline.add(sec(0), sec(20), Fault::latency(msec(20), msec(10)),
                 VictimSelector::fraction_of(0.5));
  s.run_length = sec(30);
  const RunResult r = harness::run(s);
  // +20–30 ms on loopback-scale links is far below probe timeouts.
  EXPECT_EQ(r.fp_events, 0);
  EXPECT_GT(r.msgs_sent, 0);
}

TEST(NetworkFaults, OverlaysAreRemovedWhenTheSpanEnds) {
  sim::SimParams params;
  params.seed = 99;
  sim::Simulator sim(6, swim::Config::lifeguard(), params);
  sim.start_all();
  sim.run_for(sec(10));

  Timeline tl;
  tl.add(sec(0), sec(5), Fault::link_loss(0.9, 0.0),
         VictimSelector::nodes({2}));
  const InjectionOutcome out =
      FaultInjector().inject(sim, tl, sim.now(), sec(10));
  EXPECT_EQ(out.victims, std::vector<int>{2});
  sim.run_for(sec(2));
  EXPECT_TRUE(sim.network().has_link_faults());
  EXPECT_GT(sim.network().effective_fault(2).egress_loss, 0.8);
  sim.run_for(sec(8));
  EXPECT_FALSE(sim.network().has_link_faults());
  EXPECT_DOUBLE_EQ(sim.network().effective_fault(2).egress_loss, 0.0);
}

// ---------------------------------------------------------------------------
// Cluster facade

TEST(ClusterInjection, SimBackendInjectsUdpBackendRefuses) {
  auto cluster = lifeguard::ClusterBuilder()
                     .size(8)
                     .config(swim::Config::lifeguard())
                     .seed(5)
                     .build();
  cluster->start();
  cluster->run_for(sec(10));
  Timeline tl;
  tl.add(sec(0), sec(5), Fault::block(), VictimSelector::uniform(2));
  const InjectionOutcome out = FaultInjector().inject(*cluster, tl, sec(10));
  EXPECT_EQ(out.victims.size(), 2u);
  cluster->run_for(out.total_run);

  auto udp = lifeguard::ClusterBuilder()
                 .size(2)
                 .backend(lifeguard::Cluster::Backend::kUdp)
                 .seed(5)
                 .build();
  EXPECT_THROW(FaultInjector().inject(*udp, tl, sec(10)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lifeguard::fault
