// The telemetry layer end to end: catalog stability, the typed registry
// facade, exporters, the snapshot sampler's determinism guarantees (metrics
// must never perturb a (scenario, seed) run), record/replay with snapshots
// and probe spans enabled, campaign band folding at every `jobs` level, and
// the paper's Fig. 1 shape (LHM rises under CPU exhaustion, decays after).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "check/replay.h"
#include "check/trace.h"
#include "harness/campaign.h"
#include "harness/report.h"
#include "harness/scenario.h"
#include "obs/catalog.h"
#include "obs/export.h"
#include "obs/registry.h"

namespace lifeguard::obs {
namespace {

// ---------------------------------------------------------------------------
// Catalog

TEST(Catalog, IdsRoundTripThroughNamesAndBack) {
  const auto all = all_metrics();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kMetricCount));
  for (int id = 0; id < kMetricCount; ++id) {
    const auto m = metric_from_id(id);
    ASSERT_TRUE(m.has_value()) << "id " << id;
    EXPECT_EQ(static_cast<int>(*m), id);
    const auto back = metric_from_name(metric_name(*m));
    ASSERT_TRUE(back.has_value()) << metric_name(*m);
    EXPECT_EQ(*back, *m);
  }
  EXPECT_FALSE(metric_from_id(-1).has_value());
  EXPECT_FALSE(metric_from_id(kMetricCount).has_value());
  EXPECT_FALSE(metric_from_name("no.such.metric").has_value());
}

TEST(Catalog, DetectionMetricIdsAndNamesArePinned) {
  // Append-only contract: these ids are wire/artifact identifiers. A failure
  // here means a recorded trace's samples silently changed meaning.
  EXPECT_EQ(kMetricCount, 19);
  EXPECT_EQ(static_cast<int>(Metric::kHeartbeatSentTotal), 16);
  EXPECT_EQ(static_cast<int>(Metric::kHeartbeatMissedTotal), 17);
  EXPECT_EQ(static_cast<int>(Metric::kCoordinatorRttMeanUs), 18);
  EXPECT_STREQ(metric_name(Metric::kHeartbeatSentTotal),
               "detect.heartbeat.sent.total");
  EXPECT_STREQ(metric_name(Metric::kHeartbeatMissedTotal),
               "detect.heartbeat.missed.total");
  EXPECT_STREQ(metric_name(Metric::kCoordinatorRttMeanUs),
               "detect.coordinator.rtt.mean_us");
  EXPECT_EQ(metric_from_name("detect.heartbeat.sent.total"),
            Metric::kHeartbeatSentTotal);
  EXPECT_EQ(metric_from_name("detect.heartbeat.missed.total"),
            Metric::kHeartbeatMissedTotal);
  EXPECT_EQ(metric_from_name("detect.coordinator.rtt.mean_us"),
            Metric::kCoordinatorRttMeanUs);
}

TEST(Catalog, NamesAreUniqueAndPrometheusSafe) {
  std::vector<std::string> names;
  for (Metric m : all_metrics()) {
    names.push_back(metric_name(m));
    const std::string prom = prometheus_metric_name(m);
    EXPECT_EQ(prom.rfind("lifeguard_", 0), 0u) << prom;
    EXPECT_EQ(prom.find('.'), std::string::npos) << prom;
  }
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
}

// ---------------------------------------------------------------------------
// Typed registry facade

TEST(NodeMetrics, FacadeWritesThroughToTheNamedRegistry) {
  Metrics m;
  NodeMetrics nm(m);
  nm.probe_started().add();
  nm.probe_started().add();
  nm.probe_rtt_us().record(1500.0);
  nm.count_sent("ping", 48, Channel::kUdp);
  EXPECT_EQ(m.counter_value("probe.started"), 2);
  EXPECT_EQ(m.counter_value("net.msgs_sent"), 1);
  EXPECT_EQ(m.counter_value("net.bytes_sent"), 48);
  EXPECT_EQ(m.counter_value("net.sent.ping"), 1);
  EXPECT_EQ(m.histogram("probe.rtt_us").count(), 1u);
}

TEST(NodeMetrics, EagerResolutionSurvivesUnrelatedInsertions) {
  // std::map nodes are stable: adding new names later must not invalidate
  // the facade's resolved pointers.
  Metrics m;
  NodeMetrics nm(m);
  Counter& started = nm.probe_started();
  for (int i = 0; i < 64; ++i) {
    m.counter("churn.extra." + std::to_string(i)).add();
  }
  started.add(7);
  EXPECT_EQ(m.counter_value("probe.started"), 7);
}

TEST(NodeMetrics, GaugesAreLevelsOutsideThePostRunRegistry) {
  Metrics m;
  NodeMetrics nm(m);
  nm.lhm().set(3.0);
  nm.gossip_pending().set(12.0);
  EXPECT_DOUBLE_EQ(nm.lhm().value(), 3.0);
  EXPECT_DOUBLE_EQ(nm.gossip_pending().value(), 12.0);
  EXPECT_EQ(m.counters().find("lhm"), m.counters().end());
}

// ---------------------------------------------------------------------------
// Exporters

Series tiny_series() {
  Series s;
  s.push_back({TimePoint{500000}, Metric::kMembersActive, -1, 8.0});
  s.push_back({TimePoint{500000}, Metric::kLhmMean, -1, 0.25});
  s.push_back({TimePoint{1000000}, Metric::kMembersActive, -1, 9.0});
  return s;
}

TEST(Export, SeriesJsonlEmitsOneSchemaConformingLinePerSample) {
  std::ostringstream os;
  write_series_jsonl(os, tiny_series());
  EXPECT_EQ(os.str(),
            "{\"t\":0.5,\"metric\":\"members.active\",\"id\":0,\"node\":-1,"
            "\"value\":8}\n"
            "{\"t\":0.5,\"metric\":\"lhm.mean\",\"id\":3,\"node\":-1,"
            "\"value\":0.25}\n"
            "{\"t\":1,\"metric\":\"members.active\",\"id\":0,\"node\":-1,"
            "\"value\":9}\n");
}

TEST(Export, PrometheusSnapshotKeepsTheLatestValuePerMetricAndNode) {
  Series s = tiny_series();
  s.push_back({TimePoint{1500000}, Metric::kMembersActive, 2, 7.0});
  std::ostringstream os;
  write_prometheus(os, s);
  const std::string out = os.str();
  // Latest cluster-aggregate value wins (9, not 8); per-node points get a
  // node label; one TYPE line per metric family.
  EXPECT_NE(out.find("# TYPE lifeguard_members_active gauge\n"
                     "lifeguard_members_active 9\n"
                     "lifeguard_members_active{node=\"2\"} 7\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("lifeguard_lhm_mean 0.25"), std::string::npos);
}

TEST(Export, FoldSeriesBandsGroupsByTimeMetricAndNode) {
  Series a = tiny_series();
  Series b = tiny_series();
  b[0].value = 10.0;  // t=0.5 members.active: {8, 10}
  const auto bands = fold_series_bands({&a, &b});
  ASSERT_EQ(bands.size(), 3u);
  EXPECT_EQ(bands[0].metric, Metric::kMembersActive);
  EXPECT_EQ(bands[0].at.us, 500000);
  EXPECT_EQ(bands[0].stats.count, 2u);
  EXPECT_DOUBLE_EQ(bands[0].stats.mean, 9.0);
  EXPECT_DOUBLE_EQ(bands[0].stats.min, 8.0);
  EXPECT_DOUBLE_EQ(bands[0].stats.max, 10.0);
  // Summary round-trips through both band serializations.
  std::ostringstream jsonl, csv;
  write_bands_jsonl(jsonl, bands);
  write_bands_csv(csv, bands);
  EXPECT_NE(jsonl.str().find("\"count\":2,\"mean\":9"), std::string::npos);
  EXPECT_EQ(csv.str().rfind("t,metric,id,node,count,mean,stddev,min,max,"
                            "p50,p99\n",
                            0),
            0u);
}

// ---------------------------------------------------------------------------
// Sampler through the sim engine

harness::Scenario small_scenario() {
  harness::Scenario s =
      *harness::ScenarioRegistry::builtin().find("steady-state");
  s.cluster_size = 12;
  s.quiesce = sec(5);
  s.run_length = sec(20);
  return s;
}

// Swim runs never emit the backend-generic detect.* tail (ids 16..18) — a
// swim tick is exactly the first 16 catalog ids, which keeps swim series
// byte-identical to recordings made before the membership seam existed.
constexpr int kSwimMetricsPerTick = 16;

TEST(Sampler, EmitsTheSwimCatalogEveryIntervalInIdOrder) {
  harness::Scenario s = small_scenario();
  s.metrics_interval = msec(500);
  const harness::RunResult r = harness::run(s);
  ASSERT_FALSE(r.series.empty());
  ASSERT_EQ(r.series.size() % kSwimMetricsPerTick, 0u);
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    const Sample& sample = r.series[i];
    EXPECT_EQ(static_cast<int>(sample.metric),
              static_cast<int>(i % kSwimMetricsPerTick));
    EXPECT_EQ(sample.node, -1);
    // First tick fires one interval after start; ticks stay on the grid.
    EXPECT_EQ(sample.at.us % 500000, 0);
    EXPECT_GT(sample.at.us, 0);
  }
  // A healthy steady-state cluster converges to everyone seeing everyone.
  const Sample& last_active = r.series[r.series.size() - kSwimMetricsPerTick];
  EXPECT_EQ(last_active.metric, Metric::kMembersActive);
  EXPECT_DOUBLE_EQ(last_active.value, 12.0);
}

TEST(Sampler, NonSwimBackendsEmitTheDetectionTail) {
  harness::Scenario s = small_scenario();
  s.membership = "central";
  s.metrics_interval = msec(500);
  const harness::RunResult r = harness::run(s);
  ASSERT_FALSE(r.series.empty());
  ASSERT_EQ(r.series.size() % kMetricCount, 0u);
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    EXPECT_EQ(static_cast<int>(r.series[i].metric),
              static_cast<int>(i % kMetricCount));
  }
  // Members heartbeat the coordinator, so the cumulative counter grows and
  // the RTT histogram sees acks on the loss-free steady-state fabric.
  const Sample& last_hb = r.series[r.series.size() - kMetricCount +
                                   static_cast<int>(Metric::kHeartbeatSentTotal)];
  EXPECT_EQ(last_hb.metric, Metric::kHeartbeatSentTotal);
  EXPECT_GT(last_hb.value, 0.0);
}

TEST(Sampler, MetricsDoNotPerturbTheRun) {
  // The PR 4 guard for checks, mirrored for telemetry: sampling on vs off
  // must leave every protocol-visible result bit-identical.
  harness::Scenario off = small_scenario();
  harness::Scenario on = small_scenario();
  on.metrics_interval = msec(250);
  const harness::RunResult a = harness::run(off);
  const harness::RunResult b = harness::run(on);
  EXPECT_TRUE(a.series.empty());
  EXPECT_FALSE(b.series.empty());
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.fp_events, b.fp_events);
  EXPECT_EQ(a.fp_healthy_events, b.fp_healthy_events);
  EXPECT_EQ(a.first_detect, b.first_detect);
  EXPECT_EQ(a.full_dissem, b.full_dissem);
  EXPECT_EQ(a.metrics.counters(), b.metrics.counters());
}

TEST(Sampler, SeriesIsBitIdenticalAcrossRepeatedRuns) {
  harness::Scenario s = small_scenario();
  s.metrics_interval = msec(500);
  const harness::RunResult a = harness::run(s);
  const harness::RunResult b = harness::run(s);
  EXPECT_EQ(a.series, b.series);
}

TEST(GoldenTrace, RecordReplayMatchesWithSnapshotsAndSpansEnabled) {
  harness::Scenario s = small_scenario();
  s.metrics_interval = msec(500);
  check::TraceRecorder recorder(s, /*include_datagrams=*/false,
                                /*include_probe_spans=*/true);
  harness::run(s, {&recorder});
  const check::Trace& t = recorder.trace();
  EXPECT_EQ(t.header.metrics_interval, msec(500));
  EXPECT_TRUE(t.header.probe_spans);
  const auto has_kind = [&](check::TraceEventKind k) {
    return std::any_of(t.events.begin(), t.events.end(),
                       [&](const check::TraceEvent& e) { return e.kind == k; });
  };
  EXPECT_TRUE(has_kind(check::TraceEventKind::kMetricSample));
  EXPECT_TRUE(has_kind(check::TraceEventKind::kProbeStart));
  EXPECT_TRUE(has_kind(check::TraceEventKind::kProbeAck));
  const check::ReplayResult r = check::replay(s, t);
  EXPECT_TRUE(r.matches) << r.divergence;
}

TEST(Fig1, LhmRisesUnderCpuExhaustionAndDecaysAfter) {
  // Scaled-down fig1-cpu-exhaustion with an explicit timeline: 40 s of
  // stochastic CPU starvation, then a 50 s recovery tail the legacy anomaly
  // window would not leave. Loose bounds on purpose — the shape, not the
  // values, is the paper's claim (§II, Fig. 1).
  harness::Scenario s;
  s.name = "fig1-lhm-shape";
  s.cluster_size = 24;
  s.quiesce = sec(15);
  s.config = swim::Config::lifeguard();
  s.timeline.add(Duration{}, sec(40), fault::Fault::stressed(),
                 fault::VictimSelector::uniform(3));
  s.run_length = sec(90);
  s.metrics_interval = msec(500);
  const harness::RunResult r = harness::run(s);
  ASSERT_FALSE(r.series.empty());

  double peak_during = 0.0, last = 0.0;
  TimePoint last_at{};
  const TimePoint inject{s.quiesce.us};
  const TimePoint stress_end{(s.quiesce + sec(40)).us};
  for (const Sample& sample : r.series) {
    if (sample.metric != Metric::kLhmMax) continue;
    if (sample.at > inject && sample.at <= stress_end) {
      peak_during = std::max(peak_during, sample.value);
    }
    if (sample.at > last_at) {
      last_at = sample.at;
      last = sample.value;
    }
  }
  EXPECT_GE(peak_during, 1.0);   // stress drove somebody's LHM up
  EXPECT_LT(last, peak_during);  // and the tail let it decay back down
}

// ---------------------------------------------------------------------------
// Campaign band folding

harness::Campaign tiny_campaign(int jobs) {
  harness::Campaign c;
  c.name = "obs-parity";
  c.base = small_scenario();
  c.base.run_length = sec(10);
  c.base.metrics_interval = msec(500);
  c.repetitions = 3;
  c.jobs = jobs;
  return c;
}

TEST(CampaignBands, FoldedSeriesAreIdenticalAtEveryJobsLevel) {
  std::ostringstream r1, r8;
  harness::JsonlReporter rep1(r1), rep8(r8);
  const harness::CampaignResult a = harness::run(tiny_campaign(1), {&rep1});
  const harness::CampaignResult b = harness::run(tiny_campaign(8), {&rep8});
  ASSERT_EQ(a.points.size(), 1u);
  ASSERT_FALSE(a.points[0].series.empty());
  // Exact fold equality, and byte-identical streamed artifacts.
  std::ostringstream ja, jb;
  write_bands_jsonl(ja, a.points[0].series);
  write_bands_jsonl(jb, b.points[0].series);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(r1.str(), r8.str());
}

TEST(CampaignBands, TrialSeriesSurviveTheMetricsReset) {
  // Campaigns drop each trial's bulky Metrics registry unless asked to keep
  // it; the telemetry series is its own field and must survive that reset.
  const harness::CampaignResult r = harness::run(tiny_campaign(2));
  ASSERT_EQ(r.trials.size(), 3u);
  for (const harness::TrialResult& t : r.trials) {
    EXPECT_TRUE(t.result.metrics.counters().empty());
    EXPECT_FALSE(t.result.series.empty());
  }
  // Every trial of one grid point samples the same virtual-time grid, so
  // each band folds exactly `repetitions` values.
  for (const SeriesBand& b : r.points[0].series) {
    EXPECT_EQ(b.stats.count, 3u);
  }
}

}  // namespace
}  // namespace lifeguard::obs
