// Determinism: identical (config, seed, schedule) must replay bit-identically
// across every configuration and anomaly shape — the property every
// debugging and experiment-pairing workflow in this repo rests on.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.h"

namespace lifeguard {
namespace {

struct Scenario {
  const char* config;
  const char* anomaly;
};

swim::Config config_of(const std::string& name) {
  if (name == "swim") return swim::Config::swim_baseline();
  if (name == "probe") return swim::Config::lha_probe_only();
  if (name == "susp") return swim::Config::lha_suspicion_only();
  if (name == "buddy") return swim::Config::buddy_only();
  return swim::Config::lifeguard();
}

class Determinism : public ::testing::TestWithParam<Scenario> {};

std::tuple<std::int64_t, std::int64_t, std::int64_t, std::size_t, std::size_t>
fingerprint(const Scenario& s) {
  const swim::Config cfg = config_of(s.config);
  harness::RunResult r;
  if (std::string(s.anomaly) == "interval") {
    harness::IntervalParams p;
    p.base.cluster_size = 48;
    p.base.config = cfg;
    p.base.seed = 4040;
    p.concurrent = 6;
    p.duration = msec(8192);
    p.interval = msec(16);
    p.test_length = sec(40);
    r = harness::run_interval(p);
  } else if (std::string(s.anomaly) == "threshold") {
    harness::ThresholdParams p;
    p.base.cluster_size = 48;
    p.base.config = cfg;
    p.base.seed = 4040;
    p.concurrent = 4;
    p.duration = msec(16384);
    p.observe = sec(40);
    r = harness::run_threshold(p);
  } else {
    harness::StressParams p;
    p.base.cluster_size = 48;
    p.base.config = cfg;
    p.base.seed = 4040;
    p.stressed = 4;
    p.test_length = sec(40);
    r = harness::run_stress(p);
  }
  return {r.msgs_sent, r.bytes_sent, r.fp_events, r.first_detect.size(),
          r.full_dissem.size()};
}

TEST_P(Determinism, IdenticalReplay) {
  const auto a = fingerprint(GetParam());
  const auto b = fingerprint(GetParam());
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Determinism,
    ::testing::Values(Scenario{"swim", "interval"},
                      Scenario{"lifeguard", "interval"},
                      Scenario{"probe", "interval"},
                      Scenario{"susp", "threshold"},
                      Scenario{"buddy", "threshold"},
                      Scenario{"lifeguard", "threshold"},
                      Scenario{"swim", "stress"},
                      Scenario{"lifeguard", "stress"}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return std::string(info.param.config) + "_" + info.param.anomaly;
    });

TEST(DeterminismExtra, DifferentSeedsDiverge) {
  harness::IntervalParams p;
  p.base.cluster_size = 32;
  p.base.config = swim::Config::lifeguard();
  p.concurrent = 4;
  p.duration = msec(4096);
  p.interval = msec(64);
  p.test_length = sec(30);
  p.base.seed = 1;
  const auto a = harness::run_interval(p);
  p.base.seed = 2;
  const auto b = harness::run_interval(p);
  // Message counts colliding across seeds would suggest the seed is unused.
  EXPECT_NE(a.msgs_sent, b.msgs_sent);
  EXPECT_NE(a.victims, b.victims);
}

}  // namespace
}  // namespace lifeguard
