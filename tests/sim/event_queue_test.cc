#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace lifeguard::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(TimePoint{300}, [&] { order.push_back(3); });
  q.push(TimePoint{100}, [&] { order.push_back(1); });
  q.push(TimePoint{200}, [&] { order.push_back(2); });
  TimePoint now{};
  while (q.run_next(now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, TimePoint{300});
}

TEST(EventQueue, SameTimestampIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(TimePoint{50}, [&order, i] { order.push_back(i); });
  }
  TimePoint now{};
  while (q.run_next(now)) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSuppressesEvent) {
  EventQueue q;
  int fired = 0;
  const auto id = q.push(TimePoint{10}, [&] { ++fired; });
  q.push(TimePoint{20}, [&] { fired += 10; });
  q.cancel(id);
  TimePoint now{};
  while (q.run_next(now)) {
  }
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, CancelUnknownOrFiredIsNoop) {
  EventQueue q;
  int fired = 0;
  const auto id = q.push(TimePoint{1}, [&] { ++fired; });
  TimePoint now{};
  q.run_next(now);
  q.cancel(id);      // already fired
  q.cancel(0);       // invalid handle
  q.cancel(999999);  // never issued
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandlerMayPushMoreEvents) {
  EventQueue q;
  std::vector<int> order;
  q.push(TimePoint{10}, [&] {
    order.push_back(1);
    q.push(TimePoint{10}, [&] { order.push_back(2); });  // same timestamp
    q.push(TimePoint{5}, [&] { order.push_back(3); });   // in the past
  });
  TimePoint now{};
  while (q.run_next(now)) {
  }
  // Events pushed for "now" or the past run after the current one, FIFO.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
}

TEST(EventQueue, PendingAndExecutedCounts) {
  EventQueue q;
  const auto a = q.push(TimePoint{1}, [] {});
  q.push(TimePoint{2}, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  TimePoint now{};
  while (q.run_next(now)) {
  }
  EXPECT_EQ(q.executed(), 1u);
  EXPECT_FALSE(q.run_next(now));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const auto a = q.push(TimePoint{5}, [] {});
  q.push(TimePoint{9}, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), TimePoint{9});
}

TEST(EventQueue, StressManyEvents) {
  EventQueue q;
  std::int64_t sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    q.push(TimePoint{(i * 7919) % 1000}, [&sum, i] { sum += i; });
  }
  TimePoint now{}, prev{};
  while (q.run_next(now)) {
    ASSERT_GE(now, prev);
    prev = now;
  }
  EXPECT_EQ(sum, 100'000LL * 99'999 / 2);
}

}  // namespace
}  // namespace lifeguard::sim
