#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace lifeguard::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(TimePoint{300}, [&] { order.push_back(3); });
  q.push(TimePoint{100}, [&] { order.push_back(1); });
  q.push(TimePoint{200}, [&] { order.push_back(2); });
  TimePoint now{};
  while (q.run_next(now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, TimePoint{300});
}

TEST(EventQueue, SameTimestampIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(TimePoint{50}, [&order, i] { order.push_back(i); });
  }
  TimePoint now{};
  while (q.run_next(now)) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSuppressesEvent) {
  EventQueue q;
  int fired = 0;
  const auto id = q.push(TimePoint{10}, [&] { ++fired; });
  q.push(TimePoint{20}, [&] { fired += 10; });
  q.cancel(id);
  TimePoint now{};
  while (q.run_next(now)) {
  }
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, CancelUnknownOrFiredIsNoop) {
  EventQueue q;
  int fired = 0;
  const auto id = q.push(TimePoint{1}, [&] { ++fired; });
  TimePoint now{};
  q.run_next(now);
  q.cancel(id);      // already fired
  q.cancel(0);       // invalid handle
  q.cancel(999999);  // never issued
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandlerMayPushMoreEvents) {
  EventQueue q;
  std::vector<int> order;
  q.push(TimePoint{10}, [&] {
    order.push_back(1);
    q.push(TimePoint{10}, [&] { order.push_back(2); });  // same timestamp
    q.push(TimePoint{5}, [&] { order.push_back(3); });   // in the past
  });
  TimePoint now{};
  while (q.run_next(now)) {
  }
  // Events pushed for "now" or the past run after the current one, FIFO.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
}

TEST(EventQueue, PendingAndExecutedCounts) {
  EventQueue q;
  const auto a = q.push(TimePoint{1}, [] {});
  q.push(TimePoint{2}, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  TimePoint now{};
  while (q.run_next(now)) {
  }
  EXPECT_EQ(q.executed(), 1u);
  EXPECT_FALSE(q.run_next(now));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const auto a = q.push(TimePoint{5}, [] {});
  q.push(TimePoint{9}, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), TimePoint{9});
}

// Regression: cancelling a handle after its event fired must be an exact
// no-op. The old tombstone-set design inserted the dead handle anyway and
// pending() (heap size minus tombstones) under-counted — with one live
// event left it reported 0, and further cancels wrapped the unsigned count.
TEST(EventQueue, CancelAfterFireKeepsPendingExact) {
  EventQueue q;
  const auto fired = q.push(TimePoint{1}, [] {});
  q.push(TimePoint{50}, [] {});
  TimePoint now{};
  ASSERT_TRUE(q.run_next(now));  // fires `fired`
  EXPECT_EQ(q.pending(), 1u);
  q.cancel(fired);  // already fired: must not disturb the accounting
  EXPECT_EQ(q.pending(), 1u);
  q.cancel(fired);  // idempotent
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
  ASSERT_TRUE(q.run_next(now));
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
}

// Regression: a handle whose slot has been reused by a newer event must not
// cancel the new occupant (generation check), and double-cancel is a no-op.
TEST(EventQueue, StaleHandleCannotCancelReusedSlot) {
  EventQueue q;
  const auto old_handle = q.push(TimePoint{10}, [] {});
  q.cancel(old_handle);  // frees the slot for reuse
  EXPECT_EQ(q.pending(), 0u);
  int fired = 0;
  // Reuses the freed slot with a fresh generation.
  q.push(TimePoint{20}, [&] { ++fired; });
  EXPECT_EQ(q.pending(), 1u);
  q.cancel(old_handle);  // stale: must not hit the new event
  q.cancel(old_handle);
  EXPECT_EQ(q.pending(), 1u);
  TimePoint now{};
  while (q.run_next(now)) {
  }
  EXPECT_EQ(fired, 1);
}

// Cancel releases the callable's captures immediately, not when the heap
// entry would have surfaced — the payload of a cancelled delivery must not
// linger until its timestamp.
TEST(EventQueue, CancelReleasesCapturesEagerly) {
  EventQueue q;
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> watch = payload;
  const auto id = q.push(TimePoint{1000}, [p = std::move(payload)] { (void)*p; });
  EXPECT_FALSE(watch.expired());
  q.cancel(id);
  EXPECT_TRUE(watch.expired());
}

// Golden ordering contract: a deterministic push/cancel/fire interleave must
// execute in exactly (time, insertion-sequence) order. Guards the slot-pool
// rewrite (and any future one) against ordering drift.
TEST(EventQueue, DeterministicInterleaveGolden) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<std::uint64_t> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(
        q.push(TimePoint{(i * 271) % 97}, [&fired, i] { fired.push_back(i); }));
    if (i % 3 == 0) q.cancel(handles[static_cast<std::size_t>((i * 7) % (i + 1))]);
  }
  TimePoint now{}, prev{};
  std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a over fired ids
  while (q.run_next(now)) {
    ASSERT_GE(now, prev);
    prev = now;
  }
  for (int i : fired) {
    digest ^= static_cast<std::uint64_t>(i);
    digest *= 1099511628211ULL;
  }
  // Captured from the pre-rewrite tombstone implementation; the slot-pool
  // queue must replay it bit for bit.
  EXPECT_EQ(fired.size(), 667u);
  EXPECT_EQ(digest, 0x1925ea0d9bd57afaULL);
}

TEST(EventQueue, StressManyEvents) {
  EventQueue q;
  std::int64_t sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    q.push(TimePoint{(i * 7919) % 1000}, [&sum, i] { sum += i; });
  }
  TimePoint now{}, prev{};
  while (q.run_next(now)) {
    ASSERT_GE(now, prev);
    prev = now;
  }
  EXPECT_EQ(sum, 100'000LL * 99'999 / 2);
}

}  // namespace
}  // namespace lifeguard::sim
