#include "sim/network.h"

#include <gtest/gtest.h>

namespace lifeguard::sim {
namespace {

TEST(Network, LatencyWithinConfiguredRange) {
  NetworkParams p;
  p.latency_min = msec(1);
  p.latency_max = msec(5);
  Network net(p, 4, Rng(1));
  for (int i = 0; i < 1000; ++i) {
    const Duration d = net.sample_latency();
    EXPECT_GE(d, msec(1));
    EXPECT_LE(d, msec(5));
  }
}

TEST(Network, DegenerateLatencyRange) {
  NetworkParams p;
  p.latency_min = msec(3);
  p.latency_max = msec(1);  // max < min: clamped to min
  Network net(p, 2, Rng(2));
  EXPECT_EQ(net.sample_latency(), msec(3));
}

TEST(Network, NoLossByDefault) {
  Network net(NetworkParams{}, 4, Rng(3));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(net.should_drop(0, 1, Channel::kUdp));
  }
}

TEST(Network, UdpLossRateApproximatelyHonored) {
  NetworkParams p;
  p.udp_loss = 0.2;
  Network net(p, 2, Rng(4));
  int dropped = 0;
  for (int i = 0; i < 10'000; ++i) {
    dropped += net.should_drop(0, 1, Channel::kUdp) ? 1 : 0;
  }
  EXPECT_NEAR(dropped, 2000, 250);
  EXPECT_EQ(net.metrics().counter_value("net.dropped.loss"), dropped);
}

TEST(Network, ReliableChannelNeverRandomlyDropped) {
  NetworkParams p;
  p.udp_loss = 1.0;  // drop all UDP
  Network net(p, 2, Rng(5));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(net.should_drop(0, 1, Channel::kUdp));
    EXPECT_FALSE(net.should_drop(0, 1, Channel::kReliable));
  }
}

TEST(Network, PartitionsBlockBothChannelsAndHeal) {
  Network net(NetworkParams{}, 4, Rng(6));
  net.set_partition(0, 1);
  net.set_partition(1, 1);
  // Within a partition: fine. Across: dropped, both channels.
  EXPECT_FALSE(net.should_drop(0, 1, Channel::kUdp));
  EXPECT_TRUE(net.should_drop(0, 2, Channel::kUdp));
  EXPECT_TRUE(net.should_drop(2, 0, Channel::kReliable));
  EXPECT_FALSE(net.should_drop(2, 3, Channel::kUdp));
  net.heal();
  EXPECT_FALSE(net.should_drop(0, 2, Channel::kUdp));
}

TEST(Network, OutOfRangeNodesDrop) {
  Network net(NetworkParams{}, 2, Rng(7));
  EXPECT_TRUE(net.should_drop(0, 5, Channel::kUdp));
  EXPECT_TRUE(net.should_drop(9, 0, Channel::kUdp));
}

// ---------------------------------------------------------------------------
// Deterministic sampling: same seed + same query sequence → same decisions.
// This is what lets campaign trials replay bit-identically.

TEST(NetworkDeterminism, LossAndLatencySequencesReplay) {
  NetworkParams p;
  p.latency_min = usec(200);
  p.latency_max = msec(2);
  p.udp_loss = 0.1;
  Network a(p, 8, Rng(42)), b(p, 8, Rng(42));
  a.set_partition(7, 1);
  b.set_partition(7, 1);
  for (int i = 0; i < 2000; ++i) {
    const int from = i % 8, to = (i * 3 + 1) % 8;
    EXPECT_EQ(a.should_drop(from, to, Channel::kUdp),
              b.should_drop(from, to, Channel::kUdp));
    EXPECT_EQ(a.sample_latency(), b.sample_latency());
  }
}

TEST(NetworkDeterminism, LinkFaultSequencesReplay) {
  Network a(NetworkParams{}, 6, Rng(43)), b(NetworkParams{}, 6, Rng(43));
  LinkFault f;
  f.egress_loss = 0.3;
  f.jitter = msec(5);
  f.reorder_p = 0.2;
  f.reorder_spread = msec(50);
  f.duplicate_p = 0.25;
  a.add_link_fault(2, f);
  b.add_link_fault(2, f);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.should_drop(2, 1, Channel::kUdp),
              b.should_drop(2, 1, Channel::kUdp));
    EXPECT_EQ(a.sample_link_latency(2, 1, Channel::kUdp),
              b.sample_link_latency(2, 1, Channel::kUdp));
    EXPECT_EQ(a.should_duplicate(0, 2), b.should_duplicate(0, 2));
  }
}

// ---------------------------------------------------------------------------
// Link-fault overlays

TEST(NetworkLinkFault, EgressAndIngressLossAreAsymmetric) {
  Network net(NetworkParams{}, 4, Rng(50));
  LinkFault f;
  f.egress_loss = 1.0;  // everything the victim sends dies
  net.add_link_fault(1, f);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(net.should_drop(1, 0, Channel::kUdp));   // victim egress
    EXPECT_FALSE(net.should_drop(0, 1, Channel::kUdp));  // victim ingress
    EXPECT_FALSE(net.should_drop(0, 2, Channel::kUdp));  // bystanders
  }
  EXPECT_GT(net.metrics().counter_value("net.dropped.fault_loss"), 0);
}

TEST(NetworkLinkFault, LossSparesTheReliableChannel) {
  Network net(NetworkParams{}, 4, Rng(51));
  LinkFault f;
  f.egress_loss = 1.0;
  f.ingress_loss = 1.0;
  net.add_link_fault(1, f);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(net.should_drop(1, 0, Channel::kReliable));
    EXPECT_FALSE(net.should_drop(0, 1, Channel::kReliable));
  }
}

TEST(NetworkLinkFault, LatencyOverlayDelaysBothChannels) {
  NetworkParams p;
  p.latency_min = msec(1);
  p.latency_max = msec(1);
  Network net(p, 4, Rng(52));
  LinkFault f;
  f.extra_latency = msec(30);
  net.add_link_fault(2, f);
  EXPECT_EQ(net.sample_link_latency(2, 0, Channel::kUdp), msec(31));
  EXPECT_EQ(net.sample_link_latency(0, 2, Channel::kReliable), msec(31));
  // Untouched links see the base sample only.
  EXPECT_EQ(net.sample_link_latency(0, 1, Channel::kUdp), msec(1));
  // Overlays on both endpoints add up.
  net.add_link_fault(0, f);
  EXPECT_EQ(net.sample_link_latency(0, 2, Channel::kUdp), msec(61));
}

TEST(NetworkLinkFault, JitterStaysInsideItsWindow) {
  NetworkParams p;
  p.latency_min = msec(1);
  p.latency_max = msec(1);
  Network net(p, 4, Rng(53));
  LinkFault f;
  f.jitter = msec(10);
  net.add_link_fault(1, f);
  for (int i = 0; i < 500; ++i) {
    const Duration d = net.sample_link_latency(1, 0, Channel::kUdp);
    EXPECT_GE(d, msec(1));
    EXPECT_LE(d, msec(11));
  }
}

TEST(NetworkLinkFault, DuplicationTriggersAtTheConfiguredRate) {
  Network net(NetworkParams{}, 4, Rng(54));
  LinkFault f;
  f.duplicate_p = 0.3;
  net.add_link_fault(1, f);
  int dups = 0;
  for (int i = 0; i < 10'000; ++i) dups += net.should_duplicate(1, 0) ? 1 : 0;
  EXPECT_NEAR(dups, 3000, 300);
  EXPECT_EQ(net.metrics().counter_value("net.duplicated"), dups);
  EXPECT_FALSE(net.should_duplicate(0, 2));  // bystanders never duplicate
}

TEST(NetworkLinkFault, ReorderPenaltyExtendsLatencyAndCounts) {
  NetworkParams p;
  p.latency_min = msec(1);
  p.latency_max = msec(1);
  Network net(p, 4, Rng(55));
  LinkFault f;
  f.reorder_p = 1.0;
  f.reorder_spread = msec(40);
  net.add_link_fault(1, f);
  for (int i = 0; i < 200; ++i) {
    const Duration d = net.sample_link_latency(1, 0, Channel::kUdp);
    EXPECT_GE(d, msec(1));
    EXPECT_LE(d, msec(41));
  }
  EXPECT_EQ(net.metrics().counter_value("net.reordered"), 200);
  // The reliable channel (TCP model) is never reordered.
  EXPECT_EQ(net.sample_link_latency(1, 0, Channel::kReliable), msec(1));
}

TEST(NetworkLinkFault, OverlaysStackAndUnwindByToken) {
  Network net(NetworkParams{}, 4, Rng(56));
  LinkFault a;
  a.egress_loss = 0.5;
  LinkFault b;
  b.egress_loss = 0.5;
  b.extra_latency = msec(10);
  const int ta = net.add_link_fault(1, a);
  const int tb = net.add_link_fault(1, b);
  // Independent composition: 1 - 0.5 * 0.5.
  EXPECT_DOUBLE_EQ(net.effective_fault(1).egress_loss, 0.75);
  EXPECT_EQ(net.effective_fault(1).extra_latency, msec(10));
  net.remove_link_fault(1, ta);
  EXPECT_DOUBLE_EQ(net.effective_fault(1).egress_loss, 0.5);
  net.remove_link_fault(1, tb);
  EXPECT_FALSE(net.has_link_faults());
  EXPECT_FALSE(net.effective_fault(1).any());
  net.remove_link_fault(1, tb);  // double-remove is a no-op
}

}  // namespace
}  // namespace lifeguard::sim
