#include "sim/network.h"

#include <gtest/gtest.h>

namespace lifeguard::sim {
namespace {

TEST(Network, LatencyWithinConfiguredRange) {
  NetworkParams p;
  p.latency_min = msec(1);
  p.latency_max = msec(5);
  Network net(p, 4, Rng(1));
  for (int i = 0; i < 1000; ++i) {
    const Duration d = net.sample_latency();
    EXPECT_GE(d, msec(1));
    EXPECT_LE(d, msec(5));
  }
}

TEST(Network, DegenerateLatencyRange) {
  NetworkParams p;
  p.latency_min = msec(3);
  p.latency_max = msec(1);  // max < min: clamped to min
  Network net(p, 2, Rng(2));
  EXPECT_EQ(net.sample_latency(), msec(3));
}

TEST(Network, NoLossByDefault) {
  Network net(NetworkParams{}, 4, Rng(3));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(net.should_drop(0, 1, Channel::kUdp));
  }
}

TEST(Network, UdpLossRateApproximatelyHonored) {
  NetworkParams p;
  p.udp_loss = 0.2;
  Network net(p, 2, Rng(4));
  int dropped = 0;
  for (int i = 0; i < 10'000; ++i) {
    dropped += net.should_drop(0, 1, Channel::kUdp) ? 1 : 0;
  }
  EXPECT_NEAR(dropped, 2000, 250);
  EXPECT_EQ(net.metrics().counter_value("net.dropped.loss"), dropped);
}

TEST(Network, ReliableChannelNeverRandomlyDropped) {
  NetworkParams p;
  p.udp_loss = 1.0;  // drop all UDP
  Network net(p, 2, Rng(5));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(net.should_drop(0, 1, Channel::kUdp));
    EXPECT_FALSE(net.should_drop(0, 1, Channel::kReliable));
  }
}

TEST(Network, PartitionsBlockBothChannelsAndHeal) {
  Network net(NetworkParams{}, 4, Rng(6));
  net.set_partition(0, 1);
  net.set_partition(1, 1);
  // Within a partition: fine. Across: dropped, both channels.
  EXPECT_FALSE(net.should_drop(0, 1, Channel::kUdp));
  EXPECT_TRUE(net.should_drop(0, 2, Channel::kUdp));
  EXPECT_TRUE(net.should_drop(2, 0, Channel::kReliable));
  EXPECT_FALSE(net.should_drop(2, 3, Channel::kUdp));
  net.heal();
  EXPECT_FALSE(net.should_drop(0, 2, Channel::kUdp));
}

TEST(Network, OutOfRangeNodesDrop) {
  Network net(NetworkParams{}, 2, Rng(7));
  EXPECT_TRUE(net.should_drop(0, 5, Channel::kUdp));
  EXPECT_TRUE(net.should_drop(9, 0, Channel::kUdp));
}

}  // namespace
}  // namespace lifeguard::sim
