// SimRuntime: timer semantics and the anomaly (blocked) I/O model the
// paper's experiments rely on.
#include "sim/sim_runtime.h"

#include <gtest/gtest.h>

#include "proto/wire.h"
#include "sim/simulator.h"

namespace lifeguard::sim {
namespace {

// A bare simulator gives us a queue, clock and runtimes; we talk to the
// runtimes directly (the swim nodes stay stopped).
struct Fixture {
  swim::Config cfg;
  SimParams params;
  Simulator sim{3, cfg, make_params()};
  static SimParams make_params() {
    SimParams p;
    p.seed = 11;
    p.network.latency_min = msec(1);
    p.network.latency_max = msec(1);
    return p;
  }
};

struct CapturingHandler : PacketHandler {
  struct Rx {
    Address from;
    std::vector<std::uint8_t> payload;
    Channel channel;
    TimePoint at;
  };
  Simulator* sim = nullptr;
  std::vector<Rx> received;
  void on_packet(const Address& from, std::span<const std::uint8_t> payload,
                 Channel channel) override {
    received.push_back(Rx{from,
                          {payload.begin(), payload.end()},
                          channel,
                          sim->now()});
  }
};

TEST(SimRuntime, TimersFireAtScheduledTime) {
  Fixture f;
  auto& rt = f.sim.runtime(0);
  TimePoint fired{};
  rt.schedule(msec(50), [&] { fired = f.sim.now(); });
  f.sim.run_for(msec(100));
  EXPECT_EQ(fired, TimePoint{} + msec(50));
}

TEST(SimRuntime, NegativeDelayClampsToNow) {
  Fixture f;
  auto& rt = f.sim.runtime(0);
  bool fired = false;
  rt.schedule(msec(-5), [&] { fired = true; });
  f.sim.run_for(usec(1));
  EXPECT_TRUE(fired);
}

TEST(SimRuntime, CancelPreventsFiring) {
  Fixture f;
  auto& rt = f.sim.runtime(0);
  bool fired = false;
  const TimerId id = rt.schedule(msec(10), [&] { fired = true; });
  rt.cancel(id);
  f.sim.run_for(msec(50));
  EXPECT_FALSE(fired);
}

TEST(SimRuntime, SendDeliversWithLatency) {
  Fixture f;
  CapturingHandler h;
  h.sim = &f.sim;
  f.sim.runtime(1).attach(&h, [] {});
  f.sim.runtime(0).send(sim_address(1), {1, 2, 3}, Channel::kUdp);
  f.sim.run_for(msec(10));
  ASSERT_EQ(h.received.size(), 1u);
  EXPECT_EQ(h.received[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(h.received[0].from, sim_address(0));
  EXPECT_EQ(h.received[0].at, TimePoint{} + msec(1));  // fixed 1 ms latency
}

TEST(SimRuntime, BlockedSendsQueueUntilUnblock) {
  Fixture f;
  CapturingHandler h;
  h.sim = &f.sim;
  f.sim.runtime(1).attach(&h, [] {});
  f.sim.block_node(0);
  f.sim.runtime(0).send(sim_address(1), {42}, Channel::kUdp);
  f.sim.run_for(msec(100));
  EXPECT_TRUE(h.received.empty());  // stuck in sendto()

  f.sim.unblock_node(0);
  f.sim.run_for(msec(10));
  ASSERT_EQ(h.received.size(), 1u);
  // Latency applies from the unblock instant.
  EXPECT_EQ(h.received[0].at, TimePoint{} + msec(101));
}

TEST(SimRuntime, BlockedReceiverQueuesAndDrainsInOrder) {
  Fixture f;
  CapturingHandler h;
  h.sim = &f.sim;
  f.sim.runtime(1).attach(&h, [] {});
  f.sim.block_node(1);
  for (std::uint8_t i = 0; i < 5; ++i) {
    f.sim.runtime(0).send(sim_address(1), {i}, Channel::kUdp);
    f.sim.run_for(msec(2));
  }
  f.sim.run_for(msec(50));
  EXPECT_TRUE(h.received.empty());
  EXPECT_EQ(f.sim.runtime(1).backlog(), 5u);

  f.sim.unblock_node(1);
  f.sim.run_for(msec(50));
  ASSERT_EQ(h.received.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(h.received[i].payload[0], i);  // FIFO
  }
}

TEST(SimRuntime, TimersStillFireWhileBlocked) {
  // The core of the paper's FP mechanism: a blocked member's timers run.
  Fixture f;
  f.sim.block_node(0);
  bool fired = false;
  f.sim.runtime(0).schedule(msec(20), [&] { fired = true; });
  f.sim.run_for(msec(100));
  EXPECT_TRUE(fired);
  EXPECT_TRUE(f.sim.runtime(0).blocked());
}

TEST(SimRuntime, UnblockCallbackRunsBeforeBacklogDrain) {
  Fixture f;
  CapturingHandler h;
  h.sim = &f.sim;
  std::vector<std::string> order;
  f.sim.runtime(1).attach(&h, [&] { order.push_back("unblock"); });
  f.sim.block_node(1);
  f.sim.runtime(0).send(sim_address(1), {7}, Channel::kUdp);
  f.sim.run_for(msec(50));
  f.sim.unblock_node(1);
  f.sim.run_for(msec(10));
  ASSERT_EQ(h.received.size(), 1u);
  ASSERT_EQ(order.size(), 1u);
  // The deferred probe evaluation must precede late-ack processing.
  EXPECT_LT(TimePoint{} + msec(50), h.received[0].at);
}

TEST(SimRuntime, BacklogDrainIsRateLimited) {
  Fixture f;
  // 5 µs per message (default): 100 messages take ~0.5 ms to drain.
  CapturingHandler h;
  h.sim = &f.sim;
  f.sim.runtime(1).attach(&h, [] {});
  f.sim.block_node(1);
  for (int i = 0; i < 100; ++i) {
    f.sim.runtime(0).send(sim_address(1), {static_cast<std::uint8_t>(i)},
                          Channel::kUdp);
  }
  f.sim.run_for(msec(10));
  f.sim.unblock_node(1);
  f.sim.run_for(usec(40 * 5));  // time for ~40 of the 100 messages
  // Drained count is bounded by elapsed / proc_cost: strictly between 0
  // and 100 at this point.
  EXPECT_GT(h.received.size(), 0u);
  EXPECT_LT(h.received.size(), 100u);
  f.sim.run_for(msec(10));
  EXPECT_EQ(h.received.size(), 100u);
}

TEST(SimRuntime, ReblockPausesDrain) {
  Fixture f;
  CapturingHandler h;
  h.sim = &f.sim;
  f.sim.runtime(1).attach(&h, [] {});
  f.sim.block_node(1);
  for (int i = 0; i < 1000; ++i) {
    f.sim.runtime(0).send(sim_address(1), {1}, Channel::kUdp);
  }
  f.sim.run_for(msec(10));
  // Open a 1 ms window: at 5 µs per message only ~200 can drain.
  f.sim.unblock_node(1);
  f.sim.run_for(msec(1));
  f.sim.block_node(1);
  const std::size_t after_window = h.received.size();
  EXPECT_GT(after_window, 0u);
  EXPECT_LT(after_window, 400u);
  f.sim.run_for(msec(100));
  EXPECT_EQ(h.received.size(), after_window);  // paused while blocked
  f.sim.unblock_node(1);
  f.sim.run_for(msec(20));
  EXPECT_EQ(h.received.size(), 1000u);
}

TEST(SimRuntime, UdpOverflowDropsButReliableSurvives) {
  Fixture f;
  CapturingHandler h;
  h.sim = &f.sim;
  auto& rt = f.sim.runtime(1);
  rt.attach(&h, [] {});
  rt.set_recv_buffer_limit(300);  // tiny kernel buffer
  f.sim.block_node(1);
  for (int i = 0; i < 10; ++i) {
    f.sim.runtime(0).send(sim_address(1),
                          std::vector<std::uint8_t>(100, 1), Channel::kUdp);
    f.sim.runtime(0).send(sim_address(1),
                          std::vector<std::uint8_t>(100, 2),
                          Channel::kReliable);
  }
  f.sim.run_for(msec(10));
  EXPECT_GT(rt.inbound_dropped(), 0);
  f.sim.unblock_node(1);
  f.sim.run_for(msec(50));
  int reliable = 0;
  for (const auto& rx : h.received) {
    if (rx.channel == Channel::kReliable) ++reliable;
  }
  EXPECT_EQ(reliable, 10);  // TCP flow control: nothing lost
  EXPECT_LT(h.received.size(), 20u);  // some UDP was dropped
}

TEST(SimRuntime, CrashedNodeReceivesNothing) {
  Fixture f;
  CapturingHandler h;
  h.sim = &f.sim;
  f.sim.runtime(1).attach(&h, [] {});
  f.sim.crash_node(1);
  f.sim.runtime(0).send(sim_address(1), {9}, Channel::kUdp);
  f.sim.run_for(msec(10));
  EXPECT_TRUE(h.received.empty());
}

TEST(SimRuntime, UnknownAddressIsDropped) {
  Fixture f;
  f.sim.runtime(0).send(Address{999, 7946}, {1}, Channel::kUdp);
  f.sim.runtime(0).send(Address{1, 1234}, {1}, Channel::kUdp);  // wrong port
  f.sim.run_for(msec(10));
  SUCCEED();  // no crash, nothing delivered
}

}  // namespace
}  // namespace lifeguard::sim
