// Anomaly schedules: threshold, interval and stress shapes.
#include "sim/anomaly.h"

#include <gtest/gtest.h>

#include <set>

namespace lifeguard::sim {
namespace {

Simulator make_sim(int n = 8) {
  SimParams p;
  p.seed = 21;
  return Simulator(n, swim::Config::lifeguard(), p);
}

TEST(Anomaly, PickVictimsDistinctAndInRange) {
  auto sim = make_sim(10);
  const auto v = pick_victims(sim, 4);
  EXPECT_EQ(v.size(), 4u);
  std::set<int> set(v.begin(), v.end());
  EXPECT_EQ(set.size(), 4u);
  for (int i : v) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 10);
  }
}

TEST(Anomaly, PickVictimsClampsToClusterSize) {
  auto sim = make_sim(3);
  EXPECT_EQ(pick_victims(sim, 99).size(), 3u);
}

TEST(Anomaly, ThresholdBlocksAndUnblocksOnSchedule) {
  auto sim = make_sim();
  const std::vector<int> victims{1, 3};
  schedule_threshold_anomaly(sim, victims, TimePoint{} + sec(1), sec(2));

  sim.run_for(msec(500));
  EXPECT_FALSE(sim.is_blocked(1));
  sim.run_for(sec(1));  // t = 1.5 s: inside the anomaly
  EXPECT_TRUE(sim.is_blocked(1));
  EXPECT_TRUE(sim.is_blocked(3));
  EXPECT_FALSE(sim.is_blocked(0));
  sim.run_for(sec(2));  // t = 3.5 s: past the end
  EXPECT_FALSE(sim.is_blocked(1));
  EXPECT_FALSE(sim.is_blocked(3));
}

TEST(Anomaly, IntervalCyclesInLockstep) {
  auto sim = make_sim();
  const std::vector<int> victims{0, 2};
  // 1 s blocked / 1 s open, for 5 s.
  schedule_interval_anomaly(sim, victims, TimePoint{} + sec(1), sec(1), sec(1),
                            TimePoint{} + sec(6));
  struct Sample {
    double t;
    bool expect_blocked;
  };
  const Sample samples[] = {{0.5, false}, {1.5, true}, {2.5, false},
                            {3.5, true},  {4.5, false}, {5.5, true},
                            {7.5, false}};
  TimePoint cursor{};
  for (const auto& s : samples) {
    sim.run_until(TimePoint{} + sec_f(s.t));
    EXPECT_EQ(sim.is_blocked(0), s.expect_blocked) << "t=" << s.t;
    EXPECT_EQ(sim.is_blocked(2), s.expect_blocked) << "t=" << s.t;
    cursor = TimePoint{} + sec_f(s.t);
  }
  (void)cursor;
}

TEST(Anomaly, IntervalFinishesLastCycleBeyondEnd) {
  auto sim = make_sim();
  // Cycle = 3 s blocked + 1 s open; end at t=5 : cycles start at 0 and 4,
  // the second one runs past `end` to completion (paper §V-D2).
  schedule_interval_anomaly(sim, {1}, TimePoint{}, sec(3), sec(1),
                            TimePoint{} + sec(5));
  sim.run_until(TimePoint{} + sec_f(6.5));
  EXPECT_TRUE(sim.is_blocked(1));  // second anomaly: 4 s .. 7 s
  sim.run_until(TimePoint{} + sec_f(7.5));
  EXPECT_FALSE(sim.is_blocked(1));
}

TEST(Anomaly, StressCyclesIndependentlyAndEndsUnblocked) {
  auto sim = make_sim();
  StressParams p;
  p.block_min = msec(100);
  p.block_max = msec(300);
  p.run_min = msec(10);
  p.run_max = msec(50);
  schedule_stress_anomaly(sim, {0, 1}, TimePoint{} + sec(1),
                          TimePoint{} + sec(10), p);

  // Sample densely: each victim must toggle multiple times, and the two
  // victims' schedules must not be identical (independent randomness).
  int blocked_samples_0 = 0, blocked_samples_1 = 0, divergent = 0;
  for (int i = 0; i < 800; ++i) {
    sim.run_for(msec(10));
    const bool b0 = sim.is_blocked(0);
    const bool b1 = sim.is_blocked(1);
    blocked_samples_0 += b0 ? 1 : 0;
    blocked_samples_1 += b1 ? 1 : 0;
    divergent += b0 != b1 ? 1 : 0;
  }
  EXPECT_GT(blocked_samples_0, 100);
  EXPECT_GT(blocked_samples_1, 100);
  EXPECT_GT(divergent, 20);
  sim.run_until(TimePoint{} + sec(12));
  EXPECT_FALSE(sim.is_blocked(0));
  EXPECT_FALSE(sim.is_blocked(1));
  EXPECT_FALSE(sim.is_blocked(2));  // never touched
}

}  // namespace
}  // namespace lifeguard::sim
