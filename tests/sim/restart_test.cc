// Simulator::restart_node edge cases: restarting a node that never crashed
// (a rolling restart), restarting twice, and metric retention across
// incarnations. Churn faults lean on these semantics.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "swim/config.h"

namespace lifeguard::sim {
namespace {

SimParams quiet_params(std::uint64_t seed) {
  SimParams p;
  p.seed = seed;
  return p;
}

TEST(SimulatorRestart, RestartOfNeverCrashedNodeIsARollingRestart) {
  Simulator sim(8, swim::Config::lifeguard(), quiet_params(11));
  sim.start_all();
  sim.run_for(sec(15));
  ASSERT_TRUE(sim.converged(8));

  // No crash first: the running node is torn down (its destructor stops it)
  // and replaced by a fresh incarnation that rejoins through node 0.
  sim.restart_node(3);
  EXPECT_TRUE(sim.node(3).running());
  sim.run_for(sec(30));
  EXPECT_TRUE(sim.converged(8));
  // The new incarnation starts from a clean slate and re-learned the view.
  EXPECT_EQ(sim.node(3).members().num_active(), 8);
}

TEST(SimulatorRestart, DoubleRestartConvergesAndKeepsRetiredMetrics) {
  Simulator sim(8, swim::Config::lifeguard(), quiet_params(12));
  sim.start_all();
  sim.run_for(sec(15));
  const std::int64_t msgs_before =
      sim.aggregate_metrics().counter_value("net.msgs_sent");
  ASSERT_GT(msgs_before, 0);

  sim.crash_node(5);
  sim.run_for(sec(5));
  sim.restart_node(5);
  sim.run_for(msec(100));
  sim.restart_node(5);  // restart the restarted node again, back to back
  sim.run_for(sec(30));
  EXPECT_TRUE(sim.converged(8));

  // Messages sent by the retired incarnations are not lost from the
  // aggregate.
  EXPECT_GT(sim.aggregate_metrics().counter_value("net.msgs_sent"),
            msgs_before);
}

TEST(SimulatorRestart, RestartedNodeIsUnblockedAndDeliverable) {
  Simulator sim(6, swim::Config::lifeguard(), quiet_params(13));
  sim.start_all();
  sim.run_for(sec(15));
  // A block that was active when the node died must not leak into the fresh
  // incarnation (fault spans and churn cycles can overlap).
  sim.block_node(2);
  sim.crash_node(2);
  sim.run_for(sec(10));
  sim.restart_node(2);
  EXPECT_FALSE(sim.is_blocked(2));
  sim.run_for(sec(30));
  EXPECT_TRUE(sim.converged(6));
}

TEST(SimulatorRestart, EventLogOfPreviousIncarnationIsRetained) {
  Simulator sim(6, swim::Config::lifeguard(), quiet_params(14));
  sim.start_all();
  sim.run_for(sec(15));
  const std::size_t events_before = sim.events(4).events().size();
  sim.crash_node(4);
  sim.run_for(sec(15));
  sim.restart_node(4);
  sim.run_for(sec(20));
  // The recorder survives the swap: it has at least everything it had.
  EXPECT_GE(sim.events(4).events().size(), events_before);
}

}  // namespace
}  // namespace lifeguard::sim
