// check::CoverageCollector unit tests.
//
// The coverage signal is the fuzzer's fitness function, so it has to be a
// pure deterministic function of the merged TraceEvent stream: identical
// streams produce identical key sets and digests, streams that differ in a
// state-transition edge produce different key sets, and a real scenario's
// digest is stable enough to pin as a golden value (any unintentional
// change to the key construction breaks the committed corpus' meaning).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/coverage.h"
#include "check/events.h"
#include "harness/scenario.h"

namespace lifeguard {
namespace {

using check::CoverageCollector;
using check::TraceEvent;
using check::TraceEventKind;

TraceEvent member_event(double at_s, TraceEventKind kind, int node, int peer,
                        bool originated = false) {
  TraceEvent e;
  e.at = TimePoint{static_cast<std::int64_t>(at_s * 1e6)};
  e.kind = kind;
  e.node = node;
  e.peer = peer;
  e.origin = originated ? node : -1;
  e.originated = originated;
  return e;
}

/// A small synthetic stream: node 0 watches node 1 go suspect -> failed.
std::vector<TraceEvent> suspect_then_failed() {
  return {member_event(1.0, TraceEventKind::kAlive, 0, 1),
          member_event(2.0, TraceEventKind::kSuspect, 0, 1, true),
          member_event(5.0, TraceEventKind::kFailed, 0, 1, true)};
}

TEST(Coverage, IdenticalStreamsProduceIdenticalKeysAndDigest) {
  CoverageCollector a, b;
  for (const TraceEvent& e : suspect_then_failed()) {
    a.on_trace_event(e);
    b.on_trace_event(e);
  }
  EXPECT_FALSE(a.keys().empty());
  EXPECT_EQ(a.keys(), b.keys());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Coverage, KeysAreSortedAndUnique) {
  CoverageCollector c;
  for (const TraceEvent& e : suspect_then_failed()) c.on_trace_event(e);
  const std::vector<std::uint64_t> keys = c.keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(Coverage, DistinctTransitionEdgesProduceDistinctKeys) {
  // suspect -> failed vs suspect -> alive (a refutation): different edges,
  // so the key sets must differ.
  CoverageCollector failed, refuted;
  for (const TraceEvent& e : suspect_then_failed()) failed.on_trace_event(e);
  refuted.on_trace_event(member_event(1.0, TraceEventKind::kAlive, 0, 1));
  refuted.on_trace_event(member_event(2.0, TraceEventKind::kSuspect, 0, 1,
                                      true));
  refuted.on_trace_event(member_event(5.0, TraceEventKind::kAlive, 0, 1));
  EXPECT_NE(failed.keys(), refuted.keys());
  EXPECT_NE(failed.digest(), refuted.digest());
}

TEST(Coverage, SuspicionWindowBucketsAreCoverage) {
  // The same edges with a 3 s vs a 100 s suspect->failed window land in
  // different log2 buckets — latency regimes are coverage, not noise.
  CoverageCollector fast, slow;
  fast.on_trace_event(member_event(2.0, TraceEventKind::kSuspect, 0, 1));
  fast.on_trace_event(member_event(5.0, TraceEventKind::kFailed, 0, 1));
  slow.on_trace_event(member_event(2.0, TraceEventKind::kSuspect, 0, 1));
  slow.on_trace_event(member_event(102.0, TraceEventKind::kFailed, 0, 1));
  EXPECT_NE(fast.keys(), slow.keys());
}

TEST(Coverage, EventVolumeBucketsAreCoverage) {
  // Identical edge sets at 2 vs 32 suspicion events: the log2 count bucket
  // separates them.
  CoverageCollector few, many;
  auto flap = [](CoverageCollector& c, int times) {
    for (int i = 0; i < times; ++i) {
      c.on_trace_event(member_event(i + 1.0, TraceEventKind::kSuspect, 0, 1));
      c.on_trace_event(member_event(i + 1.5, TraceEventKind::kAlive, 0, 1));
    }
  };
  flap(few, 2);
  flap(many, 32);
  EXPECT_NE(few.keys(), many.keys());
}

TEST(Coverage, FaultSpansContextualizeMemberEvents) {
  // The same suspect edge inside vs outside an active fault span yields
  // different coverage (the span x state feature), and the kind mapping
  // comes from the constructor's entry list.
  CoverageCollector bare, spanned({fault::FaultKind::kBlock});
  auto fault_edge = [](TraceEventKind kind, double at_s, int entry) {
    TraceEvent e;
    e.at = TimePoint{static_cast<std::int64_t>(at_s * 1e6)};
    e.kind = kind;
    e.node = -1;
    e.peer = entry;
    return e;
  };
  spanned.on_trace_event(fault_edge(TraceEventKind::kFaultStart, 1.0, 0));
  bare.on_trace_event(member_event(2.0, TraceEventKind::kSuspect, 0, 1));
  spanned.on_trace_event(member_event(2.0, TraceEventKind::kSuspect, 0, 1));
  spanned.on_trace_event(fault_edge(TraceEventKind::kFaultEnd, 3.0, 0));
  EXPECT_NE(bare.keys(), spanned.keys());
}

// The golden digest: coverage of the cataloged table4-false-positives
// scenario, pinned so any change to the key construction is a conscious,
// reviewed decision — the committed scenarios/fuzz-corpus/coverage.json
// digests mean nothing if this can drift silently.
TEST(Coverage, GoldenDigestForTable4FalsePositives) {
  const harness::Scenario* s =
      harness::ScenarioRegistry::builtin().find("table4-false-positives");
  ASSERT_NE(s, nullptr);
  std::vector<fault::FaultKind> kinds;
  const fault::Timeline tl = s->effective_timeline();
  for (const fault::TimelineEntry& e : tl.entries()) {
    kinds.push_back(e.fault.kind);
  }
  CoverageCollector c(kinds);
  (void)harness::run(*s, {&c});
  EXPECT_FALSE(c.keys().empty());
  EXPECT_EQ(c.digest(), 9387093213438253272ULL)
      << "keys: " << c.keys().size();
}

}  // namespace
}  // namespace lifeguard
