// fuzz::Mutator property tests.
//
// The mutator's contract is that every candidate it proposes is a
// first-class scenario: Timeline::validate()-clean against the target
// cluster and exactly serializable — each entry round-trips through
// check::entry_spec() / fault::parse_timeline_entry() to the identical spec
// string, so a finding can land as a committed scenarios/fuzz-*.json file
// with nothing lost. These tests hammer that contract over many seeds and
// long mutation chains, across the cluster sizes the fuzzer targets.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/trace.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "fuzz/mutator.h"

namespace lifeguard {
namespace {

/// One candidate's whole contract: validate-clean, within the size bounds,
/// and spec-exact through the committed-file serialization.
void expect_candidate_ok(const fault::Timeline& tl, int cluster_size,
                         int max_entries, const std::string& context) {
  EXPECT_FALSE(tl.empty()) << context;
  EXPECT_LE(tl.size(), static_cast<std::size_t>(max_entries)) << context;
  const std::vector<std::string> defects = tl.validate(cluster_size);
  EXPECT_TRUE(defects.empty())
      << context << ": " << (defects.empty() ? "" : defects.front());
  for (const fault::TimelineEntry& e : tl.entries()) {
    const std::string spec = check::entry_spec(e);
    std::string error;
    const auto parsed = fault::parse_timeline_entry(spec, error);
    ASSERT_TRUE(parsed.has_value()) << context << ": '" << spec
                                    << "' does not re-parse: " << error;
    EXPECT_EQ(check::entry_spec(*parsed), spec)
        << context << ": spec round trip is not exact";
  }
}

TEST(Mutator, RandomTimelinesValidateAndRoundTripExactly) {
  for (const int n : {3, 10, 64}) {
    const fuzz::Mutator mutator(n);
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
      Rng rng(seed);
      const fault::Timeline tl = mutator.random_timeline(rng);
      expect_candidate_ok(tl, n, mutator.options().max_entries,
                          "n=" + std::to_string(n) + " seed=" +
                              std::to_string(seed));
    }
  }
}

TEST(Mutator, EveryKindGeneratesValidEntries) {
  const fuzz::Mutator mutator(10);
  for (const fault::FaultKind kind : fault::all_fault_kinds()) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      Rng rng(seed * 977 + static_cast<std::uint64_t>(kind));
      const fault::TimelineEntry e = fault::random_timeline_entry(
          kind, 10, mutator.options().horizon, rng);
      EXPECT_EQ(e.fault.kind, kind);
      fault::Timeline tl;
      tl.add(e);
      expect_candidate_ok(tl, 10, 1,
                          std::string("kind ") + fault::fault_kind_name(kind) +
                              " seed " + std::to_string(seed));
    }
  }
}

TEST(Mutator, LongMutationChainsStayWithinTheGrammar) {
  for (const int n : {3, 12}) {
    const fuzz::Mutator mutator(n);
    Rng rng(42);
    fault::Timeline current = mutator.random_timeline(rng);
    fault::Timeline other = mutator.random_timeline(rng);
    for (int step = 0; step < 400; ++step) {
      fault::Timeline next = mutator.mutate(current, other, rng);
      expect_candidate_ok(next, n, mutator.options().max_entries,
                          "n=" + std::to_string(n) + " step=" +
                              std::to_string(step));
      other = std::move(current);
      current = std::move(next);
    }
  }
}

TEST(Mutator, MutationsAreDeterministicInTheRngChain) {
  const fuzz::Mutator mutator(10);
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    Rng a_rng(seed), b_rng(seed);
    const fault::Timeline pa = mutator.random_timeline(a_rng);
    const fault::Timeline pb = mutator.random_timeline(b_rng);
    EXPECT_EQ(check::timeline_specs(pa), check::timeline_specs(pb));
    const fault::Timeline ma = mutator.mutate(pa, pa, a_rng);
    const fault::Timeline mb = mutator.mutate(pb, pb, b_rng);
    EXPECT_EQ(check::timeline_specs(ma), check::timeline_specs(mb))
        << "seed " << seed;
  }
}

TEST(Mutator, PerturbKeepsEntriesInsideTheHorizon) {
  const Duration horizon = sec(20);
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const auto& kinds = fault::all_fault_kinds();
    fault::TimelineEntry e = fault::random_timeline_entry(
        kinds[static_cast<std::size_t>(rng.uniform(kinds.size()))], 10,
        horizon, rng);
    fault::perturb_timeline_entry(e, 10, horizon, rng);
    EXPECT_LE((e.at + e.duration).us, horizon.us);
    fault::Timeline tl;
    tl.add(e);
    EXPECT_TRUE(tl.validate(10).empty());
  }
}

}  // namespace
}  // namespace lifeguard
