// Found-and-fixed fuzzer regressions.
//
// Each test replays, entry for entry and at the original seed, a timeline
// the coverage-guided fuzzer found and check::shrink() minimized against an
// earlier revision of the simulator/protocol, together with the bug it
// exposed and the fix that closed it:
//
//   * no-send-from-crashed: a host crashed while anomaly-blocked kept its
//     queued outbound sends, and the anomaly's end flushed them onto the
//     network — datagrams from a dead node. Fixed by
//     SimRuntime::reset_on_crash(): a crash takes the kernel buffers (and
//     the block itself) with it.
//   * convergence via lost join: a restarted node whose join push-pull hit
//     a partitioned seed never retried, so it ended the run blind to any
//     quiet member (no circulating updates to learn it from). Fixed by the
//     join retry loop (Config::join_retry_interval).
//   * convergence via spurious retry cancel: the retry loop was ended by
//     *any* push-pull response — including a periodic sync answered by the
//     other member of a churn pair, whose two-entry view proves nothing.
//     Fixed by echoing the join flag on responses so only a seed's join
//     response ends the retries.
//
// The timelines stay pinned here so the bugs cannot regress silently; if
// one of these ever violates again, triage with
//   scenario_runner --scenario <spec...> --trace out.jsonl
// per docs/fuzzing.md.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/scenario.h"
#include "swim/config.h"

namespace lifeguard {
namespace {

/// Replays one fuzzer-found reproducer: the exact shrunk timeline at the
/// exact trial seed, checks on, expecting a clean verdict post-fix.
void expect_fixed(const std::vector<std::string>& specs, std::uint64_t seed,
                  Duration run_length) {
  harness::Scenario s;
  s.name = "found-fixed";
  s.summary = "fuzzer-found regression";
  s.cluster_size = 10;
  s.config = swim::Config::lifeguard();
  s.seed = seed;
  s.run_length = run_length;
  s.checks.enabled = true;
  for (const std::string& spec : specs) {
    std::string error;
    const auto entry = fault::parse_timeline_entry(spec, error);
    ASSERT_TRUE(entry.has_value()) << spec << ": " << error;
    s.timeline.add(*entry);
  }
  ASSERT_TRUE(s.timeline.validate(s.cluster_size).empty());
  const harness::RunResult result = harness::run(s);
  ASSERT_TRUE(result.checks.checked);
  EXPECT_TRUE(result.checks.passed())
      << "regressed: " << result.checks.violations.front().message;
}

TEST(FoundAndFixed, CrashWhileBlockedMustNotFlushQueuedSends) {
  // fuzz-no-send-from-crashed-6b52da96: stress blocks node 2, churn crashes
  // it inside the block, and the stress ends (unblock) while it is dead.
  expect_fixed(
      {"churn@14500000us:1625000us,island=2+1,down=8000000us,up=3750000us",
       "duplicate@12000000us:1625000us,nodes=1+3+9,p=0.9",
       "reorder@10500000us:9000000us,victims=4,p=0.75,spread=990000us",
       "stress@15500000us:500000us,island=1+2"},
      7533250717757204000ULL, sec(6));
}

TEST(FoundAndFixed, RestartThroughPartitionedSeedMustStillConverge) {
  // fuzz-convergence-7d3e9590: nodes 1 and 6 churn while the seed's island
  // is cut off; their rejoin push-pull dies in the partition.
  expect_fixed(
      {"partition@7500000us:11250000us,island=3+0",
       "partition@11000000us:8000000us,island=2+4",
       "churn@8750000us:7250000us,nodes=1+6,down=4500000us,up=5500000us"},
      16662444044975276195ULL, sec(45));
}

TEST(FoundAndFixed, PeriodicSyncWithAChurnPeerMustNotEndJoinRetries) {
  // fuzz-convergence-961c2299: node 4's periodic push-pull is answered by
  // node 9 — the other churner, two members in view — which used to cancel
  // the join retry that would have reached the healed seed moments later.
  expect_fixed(
      {"partition@7500000us:11250000us,island=3+0",
       "flapping@0us:140625us,nodes=8,d=3750000us,i=2000000us",
       "churn@3250000us:10750000us,nodes=4+9,down=500000us,up=1250000us",
       "flapping@8000000us:9500000us,victims=2,d=2250000us,i=1250000us"},
      15926790757865043124ULL, sec(45));
}

}  // namespace
}  // namespace lifeguard
