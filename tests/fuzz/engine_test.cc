// fuzz::Engine regression tests: the planted-bug suite and the
// determinism/artifact contracts.
//
// Three known-bad knobs are planted behind test-only hooks:
//   * check::Spec::suspicion_cap below the protocol's real floor
//     (suspicion-bounds violations — the shrinker's original plant);
//   * swim:plant=drop-refute — a swim node silently drops its own
//     refutation, so a healthy member stays dead in every view
//     (convergence violations);
//   * central:plant=refail — the coordinator re-announces already-failed
//     members on every sweep (kFailed -> kFailed, a legal-transitions
//     violation).
// At a fixed --fuzz-seed and a small bounded budget the fuzzer must find
// each plant and shrink it to a reproducer of at most 3 timeline entries
// whose replay carries the identical verdict. The artifact tests pin that
// every emitted byte is jobs-invariant and that coverage.json is
// machine-checked evidence: re-running the committed corpus reproduces the
// per-file digests and their union is exactly the reported coverage set.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "check/coverage.h"
#include "fuzz/engine.h"
#include "harness/gate.h"
#include "harness/scenariofile.h"

namespace lifeguard {
namespace {

namespace fs = std::filesystem;

/// The shared fuzz target: small cluster, short window — one trial runs in
/// milliseconds, so the whole planted-bug budget stays cheap.
harness::Scenario fuzz_base() {
  harness::Scenario s;
  s.name = "fuzz-base";
  s.summary = "planted-bug fuzz target";
  s.cluster_size = 10;
  s.config = swim::Config::lifeguard();
  s.run_length = sec(45);
  return s;
}

/// The fixed budget every planted bug must fall to: 30 trials at seed 7.
fuzz::EngineOptions budget() {
  fuzz::EngineOptions o;
  o.trials = 30;
  o.seed = 7;
  return o;
}

bool contains(const std::vector<std::string>& names,
              const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> listing(const fs::path& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

TEST(FuzzEngine, FindsAndShrinksEveryPlantedBug) {
  struct Plant {
    std::string label;
    std::function<void(harness::Scenario&)> apply;
    std::string invariant;
  };
  const std::vector<Plant> plants = {
      {"suspicion-cap below the protocol floor",
       [](harness::Scenario& s) {
         s.checks = check::Spec::all();
         s.checks.suspicion_cap = msec(500);
       },
       "suspicion-bounds"},
      {"swim drops its own refutations",
       [](harness::Scenario& s) { s.membership = "swim:plant=drop-refute"; },
       "convergence"},
      {"central re-fails already-failed members",
       [](harness::Scenario& s) { s.membership = "central:plant=refail"; },
       "legal-transitions"},
  };
  for (const Plant& p : plants) {
    harness::Scenario base = fuzz_base();
    p.apply(base);
    fuzz::Engine engine(base, budget());
    const fuzz::FuzzReport r = engine.run();
    ASSERT_FALSE(r.findings.empty()) << p.label;

    const fuzz::Finding* hit = nullptr;
    for (const fuzz::Finding& f : r.findings) {
      if (contains(f.invariants, p.invariant)) {
        hit = &f;
        break;
      }
    }
    ASSERT_NE(hit, nullptr)
        << p.label << ": no finding violates " << p.invariant;
    EXPECT_TRUE(hit->shrink.reproduced) << p.label;

    // Auto-shrunk to a human-readable reproducer: at most 3 entries.
    EXPECT_LE(hit->reproducer.effective_timeline().size(), 3u)
        << p.label << ": " << hit->reproducer.timeline.summary();
    EXPECT_TRUE(hit->reproducer.validate().empty()) << p.label;
    EXPECT_EQ(hit->reproducer.name.rfind("fuzz-" + p.invariant, 0), 0u)
        << p.label << ": name is " << hit->reproducer.name;

    // Replaying the reproducer carries the identical verdict bit for bit.
    const harness::RunResult replay = harness::run(hit->reproducer);
    EXPECT_EQ(replay.checks, hit->shrink.minimal_result.checks) << p.label;
    EXPECT_TRUE(contains(replay.checks.violated_invariants(), p.invariant))
        << p.label;
  }
}

TEST(FuzzEngine, RunsAreBitReproducibleAtAFixedSeed) {
  harness::Scenario base = fuzz_base();
  base.membership = "central:plant=refail";
  const fuzz::FuzzReport a = fuzz::Engine(base, budget()).run();
  const fuzz::FuzzReport b = fuzz::Engine(base, budget()).run();
  EXPECT_EQ(a.coverage_keys, b.coverage_keys);
  EXPECT_EQ(a.coverage_digest, b.coverage_digest);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].invariants, b.findings[i].invariants);
    EXPECT_EQ(a.findings[i].trial_index, b.findings[i].trial_index);
    EXPECT_EQ(a.findings[i].reproducer.name, b.findings[i].reproducer.name);
  }
}

TEST(FuzzEngine, EveryEmittedByteIsIdenticalAtEveryJobsLevel) {
  const fs::path root = fs::path(::testing::TempDir()) / "fuzz-jobs-parity";
  fs::remove_all(root);
  harness::Scenario base = fuzz_base();
  base.membership = "central:plant=refail";
  auto run_at = [&](int jobs, const char* sub) {
    fuzz::EngineOptions o = budget();
    o.jobs = jobs;
    o.out_dir = (root / sub).string();
    return fuzz::Engine(base, o).run();
  };
  const fuzz::FuzzReport a = run_at(1, "j1");
  const fuzz::FuzzReport b = run_at(8, "j8");
  EXPECT_EQ(a.coverage_digest, b.coverage_digest);
  EXPECT_EQ(a.corpus_files, b.corpus_files);
  const std::vector<std::string> names = listing(root / "j1");
  ASSERT_EQ(names, listing(root / "j8"));
  EXPECT_FALSE(names.empty());
  for (const std::string& name : names) {
    EXPECT_EQ(slurp(root / "j1" / name), slurp(root / "j8" / name)) << name;
  }
  fs::remove_all(root);
}

TEST(FuzzEngine, EmittedReproducersLoadValidateAndReplayTheirViolation) {
  const fs::path dir = fs::path(::testing::TempDir()) / "fuzz-reproducers";
  fs::remove_all(dir);
  harness::Scenario base = fuzz_base();
  base.membership = "swim:plant=drop-refute";
  fuzz::EngineOptions opts = budget();
  opts.out_dir = dir.string();
  const fuzz::FuzzReport r = fuzz::Engine(base, opts).run();
  ASSERT_FALSE(r.findings.empty());
  for (const fuzz::Finding& f : r.findings) {
    ASSERT_FALSE(f.file.empty());
    std::string error;
    const auto loaded = harness::ScenarioFile::load(f.file, error);
    ASSERT_TRUE(loaded.has_value()) << f.file << ": " << error;
    EXPECT_EQ(loaded->name, f.reproducer.name);
    EXPECT_TRUE(loaded->validate().empty()) << f.file;
    // The file round-trips the exact scenario: re-running it reproduces the
    // shrunk run's verdict, not just "some" violation.
    const harness::RunResult replay = harness::run(*loaded);
    EXPECT_EQ(replay.checks, f.shrink.minimal_result.checks) << f.file;
  }
  // Findings also carry baseline entries so the gate tier can hold them.
  std::string error;
  const auto baselines =
      harness::load_baselines_file((dir / "baselines.json").string(), error);
  ASSERT_TRUE(baselines.has_value()) << error;
  EXPECT_EQ(baselines->entries.size(), r.findings.size());
  fs::remove_all(dir);
}

TEST(FuzzEngine, CoverageReportIsMachineCheckedByReplayingTheCorpus) {
  const fs::path dir = fs::path(::testing::TempDir()) / "fuzz-corpus-check";
  fs::remove_all(dir);
  fuzz::EngineOptions opts = budget();
  opts.out_dir = dir.string();
  const fuzz::FuzzReport run_report = fuzz::Engine(fuzz_base(), opts).run();
  ASSERT_FALSE(run_report.report_file.empty());

  std::string error;
  const auto report = fuzz::load_coverage_report(run_report.report_file,
                                                 error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_EQ(report->fuzz_seed, budget().seed);
  EXPECT_EQ(report->trials, budget().trials);
  ASSERT_FALSE(report->corpus.empty());

  // Re-run every corpus scenario: its coverage digest must match the
  // report, its discovery-order merge must add exactly the recorded number
  // of new keys, and the union must be the reported coverage set. Trials
  // outside the corpus contributed nothing by construction.
  fuzz::CoverageMap map;
  for (const fuzz::CoverageReport::CorpusEntry& e : report->corpus) {
    const auto s = harness::ScenarioFile::load((dir / e.file).string(),
                                               error);
    ASSERT_TRUE(s.has_value()) << e.file << ": " << error;
    EXPECT_EQ(s->seed, e.seed) << e.file;
    std::vector<fault::FaultKind> kinds;
    const fault::Timeline tl = s->effective_timeline();
    for (const fault::TimelineEntry& te : tl.entries()) {
      kinds.push_back(te.fault.kind);
    }
    check::CoverageCollector collector(kinds);
    (void)harness::run(*s, {&collector});
    const std::vector<std::uint64_t> keys = collector.keys();
    EXPECT_EQ(check::CoverageCollector::digest_of(keys), e.digest) << e.file;
    EXPECT_EQ(map.merge(keys), e.new_keys) << e.file;
  }
  EXPECT_EQ(map.size(), report->coverage_keys);
  EXPECT_EQ(map.digest(), report->coverage_digest);
  fs::remove_all(dir);
}

TEST(FuzzCoverageReport, CodecRoundTripsExactly) {
  fuzz::CoverageReport r;
  r.fuzz_seed = 123456789012345ULL;
  r.trials = 400;
  r.generations = 16;
  r.cluster_size = 10;
  r.coverage_keys = 2;
  r.coverage_digest = 0xdeadbeefcafef00dULL;
  r.corpus = {{"fuzz-corpus-0000.json", 42, 57, 7ULL},
              {"fuzz-corpus-0001.json", 43, 1, 0xffffffffffffffffULL}};
  r.findings = {"fuzz-convergence-00000001.json"};

  std::string error;
  const auto parsed =
      fuzz::coverage_report_from_json(fuzz::coverage_report_to_json(r),
                                      error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->fuzz_seed, r.fuzz_seed);
  EXPECT_EQ(parsed->trials, r.trials);
  EXPECT_EQ(parsed->generations, r.generations);
  EXPECT_EQ(parsed->cluster_size, r.cluster_size);
  EXPECT_EQ(parsed->coverage_keys, r.coverage_keys);
  EXPECT_EQ(parsed->coverage_digest, r.coverage_digest);
  ASSERT_EQ(parsed->corpus.size(), r.corpus.size());
  for (std::size_t i = 0; i < r.corpus.size(); ++i) {
    EXPECT_EQ(parsed->corpus[i].file, r.corpus[i].file);
    EXPECT_EQ(parsed->corpus[i].seed, r.corpus[i].seed);
    EXPECT_EQ(parsed->corpus[i].new_keys, r.corpus[i].new_keys);
    EXPECT_EQ(parsed->corpus[i].digest, r.corpus[i].digest);
  }
  EXPECT_EQ(parsed->findings, r.findings);
}

TEST(FuzzCoverageReport, StrictParserRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(fuzz::coverage_report_from_json("not json", error));
  EXPECT_FALSE(fuzz::coverage_report_from_json(
      R"({"type": "scenario", "version": 1})", error));
  // Unknown keys are defects, not noise — committed artifacts stay clean.
  fuzz::CoverageReport r;
  std::string json = fuzz::coverage_report_to_json(r);
  json.replace(json.find("\"trials\""), 8, "\"trails\"");
  EXPECT_FALSE(fuzz::coverage_report_from_json(json, error));
  EXPECT_NE(error.find("trails"), std::string::npos);
}

}  // namespace
}  // namespace lifeguard
