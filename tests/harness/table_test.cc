#include "harness/table.h"

#include <gtest/gtest.h>

namespace lifeguard::harness {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"Config", "FP", "FP %"});
  t.add_row({"SWIM", "339002", "100.00"});
  t.add_row({"Lifeguard", "5193", "1.53"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Config"), std::string::npos);
  EXPECT_NE(out.find("Lifeguard"), std::string::npos);
  // Numeric columns right-aligned: "FP" header ends where values end.
  const auto header_end = out.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  // Every line has equal length (fixed-width rendering).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const auto nl = out.find('\n', start);
    if (nl == std::string::npos) break;
    const std::size_t len = nl - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = nl + 1;
  }
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW({ (void)t.render(); });
}

TEST(Formatting, Integers) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_int(339002), "339002");
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(fmt_double(12.4444, 2), "12.44");
  EXPECT_EQ(fmt_double(0.0, 2), "0.00");
  EXPECT_EQ(fmt_double(99.999, 1), "100.0");
}

TEST(Formatting, Percentages) {
  EXPECT_EQ(fmt_pct(50, 100), "50.00");
  EXPECT_EQ(fmt_pct(5193, 339002), "1.53");
  EXPECT_EQ(fmt_pct(0, 0), "100.00");
  EXPECT_EQ(fmt_pct(5, 0), "n/a");
}

TEST(Formatting, GiB) {
  EXPECT_EQ(fmt_bytes_gib(1024LL * 1024 * 1024), "1.000");
  EXPECT_EQ(fmt_bytes_gib(0), "0.000");
}

}  // namespace
}  // namespace lifeguard::harness
