#include "harness/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lifeguard::harness {
namespace {

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  OnlineStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);  // sample variance of 1..5
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, ParallelMergeEqualsSequential) {
  // The combine contract: any split of a stream across accumulators must
  // merge to the result of one accumulator that saw everything.
  OnlineStats all, a, b, empty;
  for (int i = 1; i <= 10; ++i) {
    const double v = i * 1.5 - 4.0;
    all.add(v);
    (i <= 3 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());

  // Merging an empty accumulator in either direction is the identity.
  OnlineStats c = a;
  c.merge(empty);
  EXPECT_EQ(c.count(), a.count());
  EXPECT_NEAR(c.mean(), a.mean(), 1e-12);
  empty.merge(a);
  EXPECT_EQ(empty.count(), a.count());
  EXPECT_NEAR(empty.variance(), a.variance(), 1e-12);
}

TEST(TCritical, MatchesTables) {
  // Two-sided 95% critical values from standard t tables.
  EXPECT_NEAR(t_critical(1, 0.95), 12.706, 0.01);
  EXPECT_NEAR(t_critical(2, 0.95), 4.303, 0.005);
  EXPECT_NEAR(t_critical(3, 0.95), 3.182, 0.01);
  EXPECT_NEAR(t_critical(5, 0.95), 2.571, 0.01);
  EXPECT_NEAR(t_critical(10, 0.95), 2.228, 0.01);
  EXPECT_NEAR(t_critical(30, 0.95), 2.042, 0.01);
  // Infinite-dof limit is the normal critical value.
  EXPECT_NEAR(t_critical(0, 0.95), 1.960, 0.001);
  EXPECT_NEAR(t_critical(1000000, 0.95), 1.960, 0.001);
  // Other confidence levels.
  EXPECT_NEAR(t_critical(10, 0.99), 3.169, 0.02);
  EXPECT_NEAR(t_critical(10, 0.90), 1.812, 0.01);
}

TEST(TInterval, WidthAndDegenerateCases) {
  // n = 4, sd = 2: half width = t(3, .95) * 2 / sqrt(4) = 3.182.
  const ConfInterval ci = t_interval(4, 10.0, 2.0);
  EXPECT_NEAR(ci.half_width, 3.182, 0.02);
  EXPECT_NEAR(ci.lo, 10.0 - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.hi, 10.0 + ci.half_width, 1e-12);

  // Fewer than two samples carries no spread information.
  const ConfInterval one = t_interval(1, 7.0, 0.0);
  EXPECT_DOUBLE_EQ(one.lo, 7.0);
  EXPECT_DOUBLE_EQ(one.hi, 7.0);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);

  // From an OnlineStats accumulator.
  OnlineStats s;
  for (double v : {9.0, 10.0, 11.0}) s.add(v);
  const ConfInterval c2 = t_interval(s);
  EXPECT_NEAR(c2.half_width, t_critical(2, 0.95) * 1.0 / std::sqrt(3.0),
              1e-9);
}

}  // namespace
}  // namespace lifeguard::harness
