// Scenario API: validation messages, the built-in registry, the run()
// engine, and parity between the legacy driver shims and run(Scenario).
#include "harness/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "harness/experiment.h"
#include "membership/backend.h"

namespace lifeguard::harness {
namespace {

/// True when some validation error mentions `needle`.
bool mentions(const std::vector<std::string>& errors,
              const std::string& needle) {
  return std::any_of(errors.begin(), errors.end(), [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

Scenario tiny_valid() {
  Scenario s;
  s.name = "tiny";
  s.cluster_size = 8;
  s.quiesce = sec(10);
  s.config = swim::Config::lifeguard();
  s.anomaly = AnomalyPlan::threshold(2, sec(16));
  s.run_length = sec(30);
  return s;
}

// ---------------------------------------------------------------------------
// Validation

TEST(ScenarioValidation, ValidDescriptorHasNoErrors) {
  EXPECT_TRUE(tiny_valid().validate().empty());
}

TEST(ScenarioValidation, MissingNameAndBadSizeAreBothReported) {
  Scenario s = tiny_valid();
  s.name.clear();
  s.cluster_size = 1;
  const auto errors = s.validate();
  EXPECT_GE(errors.size(), 2u);  // plus victims no longer fitting the cluster
  EXPECT_TRUE(mentions(errors, "name must be non-empty"));
  EXPECT_TRUE(mentions(errors, "cluster_size (1) must be >= 2"));
}

TEST(ScenarioValidation, VictimCountMustFitCluster) {
  Scenario s = tiny_valid();
  s.anomaly.victims = 12;
  EXPECT_TRUE(mentions(s.validate(), "must be <= cluster_size (8)"));
  s.anomaly.victims = 0;
  EXPECT_TRUE(mentions(s.validate(), "use AnomalyKind::kNone"));
}

TEST(ScenarioValidation, NoneKindRejectsVictims) {
  Scenario s = tiny_valid();
  s.anomaly = AnomalyPlan::none();
  s.anomaly.victims = 3;
  EXPECT_TRUE(mentions(s.validate(), "must be 0 for kind 'none'"));
}

TEST(ScenarioValidation, CyclingKindsNeedPositiveSpans) {
  Scenario s = tiny_valid();
  s.anomaly = AnomalyPlan::cycling(2, Duration{0}, Duration{0});
  const auto errors = s.validate();
  EXPECT_TRUE(mentions(errors, "anomaly.duration"));
  EXPECT_TRUE(mentions(errors, "anomaly.interval"));
  EXPECT_TRUE(mentions(errors, "blocked span D"));
}

TEST(ScenarioValidation, PartitionNeedsBothSidesAndInWindowHeal) {
  Scenario s = tiny_valid();
  s.anomaly = AnomalyPlan::partition(8, sec(10));
  EXPECT_TRUE(mentions(s.validate(), "members on both sides"));
  s.anomaly = AnomalyPlan::partition(4, sec(60));
  EXPECT_TRUE(mentions(s.validate(), "must be <= run_length"));
}

TEST(ScenarioValidation, ChurnReservesTheSeedNode) {
  Scenario s = tiny_valid();
  s.anomaly = AnomalyPlan::churn(8, sec(10), sec(10));
  EXPECT_TRUE(mentions(s.validate(), "rejoin seed"));
}

TEST(ScenarioValidation, StressRangesMustBeOrdered) {
  Scenario s = tiny_valid();
  sim::StressParams sp;
  sp.block_min = sec(10);
  sp.block_max = sec(2);
  s.anomaly = AnomalyPlan::stressed(2, sp);
  EXPECT_TRUE(mentions(s.validate(), "block_min <= block_max"));
}

TEST(ScenarioValidation, AnomalyAndTimelineAreMutuallyExclusive) {
  Scenario s = tiny_valid();  // carries a threshold AnomalyPlan
  s.timeline.add(sec(0), sec(5), fault::Fault::block(),
                 fault::VictimSelector::uniform(1));
  EXPECT_TRUE(mentions(s.validate(), "sets both anomaly"));
  s.anomaly = AnomalyPlan::none();
  EXPECT_TRUE(s.validate().empty());
}

TEST(ScenarioValidation, TimelineDefectsAreSurfaced) {
  Scenario s = tiny_valid();
  s.anomaly = AnomalyPlan::none();
  s.timeline.add(sec(0), sec(5), fault::Fault::partition(),
                 fault::VictimSelector::uniform(8));  // whole 8-node cluster
  EXPECT_TRUE(mentions(s.validate(), "timeline[0]"));
  EXPECT_TRUE(mentions(s.validate(), "both sides"));
}

TEST(ScenarioEffectiveTimeline, ShimProducesOneEntryPerPlan) {
  Scenario s = tiny_valid();
  const fault::Timeline tl = s.effective_timeline();
  ASSERT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl.entries()[0].fault.kind, fault::FaultKind::kBlock);
  EXPECT_EQ(tl.entries()[0].duration, sec(16));
  s.anomaly = AnomalyPlan::none();
  EXPECT_TRUE(s.effective_timeline().empty());
}

TEST(ScenarioValidation, NetworkLossMustBeProbability) {
  Scenario s = tiny_valid();
  s.network.udp_loss = 1.5;
  EXPECT_TRUE(mentions(s.validate(), "udp_loss"));
}

TEST(ScenarioValidation, RunRefusesInvalidDescriptorWithAllErrors) {
  Scenario s = tiny_valid();
  s.name.clear();
  s.run_length = Duration{0};
  try {
    run(s);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.errors().size(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid scenario"), std::string::npos);
    EXPECT_NE(what.find("run_length"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Registry

TEST(ScenarioRegistry, BuiltinCatalogCoversPaperAndNewKinds) {
  const auto& reg = ScenarioRegistry::builtin();
  EXPECT_GE(reg.all().size(), 10u);
  for (const char* name :
       {"fig1-cpu-exhaustion", "fig2-total-false-positives",
        "fig3-fp-at-healthy", "table4-false-positives", "table5-latency",
        "table6-message-load", "table7-alpha-beta", "partition-split-heal",
        "flapping-overload", "churn-rolling-restarts",
        "partition-under-stress", "lossy-flapping", "churn-after-heal",
        "packet-chaos"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  // The composed catalog entries carry multi-entry fault timelines.
  EXPECT_GE(reg.find("partition-under-stress")->timeline.size(), 2u);
  EXPECT_GE(reg.find("churn-after-heal")->timeline.size(), 2u);
  EXPECT_GE(reg.find("packet-chaos")->timeline.size(), 3u);
  std::set<AnomalyKind> kinds;
  for (const auto& s : reg.all()) {
    EXPECT_TRUE(s.validate().empty()) << s.name;
    kinds.insert(s.anomaly.kind);
  }
  // All paper kinds plus the three post-paper kinds.
  EXPECT_GE(kinds.size(), 6u);
  EXPECT_TRUE(kinds.contains(AnomalyKind::kPartition));
  EXPECT_TRUE(kinds.contains(AnomalyKind::kFlapping));
  EXPECT_TRUE(kinds.contains(AnomalyKind::kChurn));
}

TEST(ScenarioRegistry, RejectsDuplicatesAndInvalidEntries) {
  ScenarioRegistry reg;
  reg.add(tiny_valid());
  EXPECT_THROW(reg.add(tiny_valid()), ScenarioError);
  Scenario bad = tiny_valid();
  bad.name = "bad";
  bad.cluster_size = 0;
  EXPECT_THROW(reg.add(bad), ScenarioError);
  EXPECT_EQ(reg.all().size(), 1u);
}

TEST(ScenarioRegistry, FindAndNamesAgree) {
  const auto& reg = ScenarioRegistry::builtin();
  for (const auto& name : reg.names()) {
    const Scenario* s = reg.find(name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name, name);
  }
  EXPECT_EQ(reg.find("no-such-scenario"), nullptr);
}

// ---------------------------------------------------------------------------
// Engine: every cataloged scenario runs end-to-end at a tiny scale

TEST(ScenarioEngine, EveryBuiltinScenarioRunsAtTinyScale) {
  for (const Scenario& original : ScenarioRegistry::builtin().all()) {
    Scenario s = original;
    // Shrink to seconds of virtual time while keeping the anomaly shape.
    s.cluster_size = std::min(s.cluster_size, 12);
    s.anomaly.victims = std::min(s.anomaly.victims, 2);
    s.quiesce = sec(10);
    s.run_length = std::min(s.run_length, sec(40));
    if (s.anomaly.kind == AnomalyKind::kPartition) {
      s.anomaly.duration = std::min(s.anomaly.duration, sec(20));
      s.anomaly.victims = 4;  // keep a real island out of 12
    }
    ASSERT_TRUE(s.validate().empty()) << s.name;

    const RunResult r = run(s);
    EXPECT_EQ(r.scenario_name, s.name);
    EXPECT_EQ(r.cluster_size, s.cluster_size) << s.name;
    if (s.timeline.empty()) {
      EXPECT_EQ(r.victims.size(),
                static_cast<std::size_t>(s.anomaly.victims))
          << s.name;
    } else {
      // Composed scenarios: victims are the union across timeline entries.
      EXPECT_FALSE(r.victims.empty()) << s.name;
      EXPECT_LE(r.victims.size(), static_cast<std::size_t>(s.cluster_size))
          << s.name;
    }
    // The static control backend is a deliberate zero-message floor; every
    // real protocol must put datagrams on the wire.
    if (membership::base_name(s.membership) == "static") {
      EXPECT_EQ(r.msgs_sent, 0) << s.name;
      EXPECT_EQ(r.bytes_sent, 0) << s.name;
    } else {
      EXPECT_GT(r.msgs_sent, 0) << s.name;
      EXPECT_GT(r.bytes_sent, 0) << s.name;
    }
  }
}

TEST(ScenarioEngine, ReproducibleForSameSeedDistinctAcrossSeeds) {
  Scenario s = tiny_valid();
  const RunResult a = run(s);
  const RunResult b = run(s);
  EXPECT_EQ(a.victims, b.victims);
  EXPECT_EQ(a.fp_events, b.fp_events);
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  s.seed = 999;
  const RunResult c = run(s);
  EXPECT_NE(a.msgs_sent, c.msgs_sent);
}

TEST(ScenarioEngine, ChurnVictimsRejoinByTheEnd) {
  Scenario s;
  s.name = "churn-tiny";
  s.cluster_size = 10;
  s.quiesce = sec(10);
  s.config = swim::Config::lifeguard();
  s.anomaly = AnomalyPlan::churn(2, sec(15), sec(25));
  s.run_length = sec(80);
  s.seed = 51;
  const RunResult r = run(s);
  ASSERT_EQ(r.victims.size(), 2u);
  // Node 0 is the rejoin seed and must never be churned.
  EXPECT_FALSE(std::count(r.victims.begin(), r.victims.end(), 0));
  // Crashes were real: survivors declared the churned members dead.
  EXPECT_FALSE(r.first_detect.empty());
}

// ---------------------------------------------------------------------------
// Legacy shims: identical results to the declarative path

TEST(LegacyShims, ThresholdMatchesScenarioRun) {
  ThresholdParams p;
  p.base.cluster_size = 32;
  p.base.config = swim::Config::swim_baseline();
  p.base.seed = 401;
  p.concurrent = 3;
  p.duration = msec(32768);
  p.observe = sec(50);
  const RunResult via_shim = run_threshold(p);
  const RunResult via_scenario = run(to_scenario(p));
  EXPECT_EQ(via_shim.victims, via_scenario.victims);
  EXPECT_EQ(via_shim.fp_events, via_scenario.fp_events);
  EXPECT_EQ(via_shim.first_detect, via_scenario.first_detect);
  EXPECT_EQ(via_shim.full_dissem, via_scenario.full_dissem);
  EXPECT_EQ(via_shim.msgs_sent, via_scenario.msgs_sent);
  EXPECT_EQ(via_shim.bytes_sent, via_scenario.bytes_sent);
}

TEST(LegacyShims, IntervalMatchesScenarioRun) {
  IntervalParams p;
  p.base.cluster_size = 32;
  p.base.config = swim::Config::lifeguard();
  p.base.seed = 403;
  p.concurrent = 4;
  p.duration = msec(8192);
  p.interval = msec(128);
  p.test_length = sec(40);
  const RunResult via_shim = run_interval(p);
  const RunResult via_scenario = run(to_scenario(p));
  EXPECT_EQ(via_shim.victims, via_scenario.victims);
  EXPECT_EQ(via_shim.fp_events, via_scenario.fp_events);
  EXPECT_EQ(via_shim.msgs_sent, via_scenario.msgs_sent);
  EXPECT_EQ(via_shim.bytes_sent, via_scenario.bytes_sent);
}

TEST(LegacyShims, StressMatchesScenarioRun) {
  StressParams p;
  p.base.cluster_size = 24;
  p.base.config = swim::Config::lifeguard();
  p.base.seed = 405;
  p.stressed = 2;
  p.test_length = sec(40);
  const RunResult via_shim = run_stress(p);
  const RunResult via_scenario = run(to_scenario(p));
  EXPECT_EQ(via_shim.victims, via_scenario.victims);
  EXPECT_EQ(via_shim.fp_events, via_scenario.fp_events);
  EXPECT_EQ(via_shim.msgs_sent, via_scenario.msgs_sent);
}

TEST(LegacyShims, IntervalWithZeroVictimsIsAHealthyBaseline) {
  IntervalParams p;
  p.base.cluster_size = 16;
  p.base.config = swim::Config::swim_baseline();
  p.base.seed = 407;
  p.concurrent = 0;
  p.test_length = sec(30);
  const Scenario s = to_scenario(p);
  EXPECT_EQ(s.anomaly.kind, AnomalyKind::kNone);
  const RunResult r = run_interval(p);
  EXPECT_EQ(r.fp_events, 0);
  EXPECT_TRUE(r.victims.empty());
}

}  // namespace
}  // namespace lifeguard::harness
