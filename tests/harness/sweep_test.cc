#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace lifeguard::harness {
namespace {

TEST(Sweep, QuickGridsAreSubsetsOfPaperGrids) {
  ReproOptions quick;  // default: full = false
  ReproOptions full;
  full.full = true;

  const Grid qi = interval_grid(quick);
  const Grid fi = interval_grid(full);
  // Paper Table III values, verbatim, in the full grid.
  EXPECT_EQ(fi.concurrency,
            (std::vector<int>{1, 4, 8, 12, 16, 20, 24, 28, 32}));
  EXPECT_EQ(fi.durations.size(), 6u);
  EXPECT_EQ(fi.intervals.size(), 8u);
  EXPECT_EQ(fi.repetitions, 10);
  EXPECT_EQ(fi.test_length, sec(120));

  // Quick values must all appear in the paper grid.
  for (int c : qi.concurrency) {
    EXPECT_NE(std::find(fi.concurrency.begin(), fi.concurrency.end(), c),
              fi.concurrency.end());
  }
  for (Duration d : qi.durations) {
    EXPECT_NE(std::find(fi.durations.begin(), fi.durations.end(), d),
              fi.durations.end());
  }
  for (Duration i : qi.intervals) {
    EXPECT_NE(std::find(fi.intervals.begin(), fi.intervals.end(), i),
              fi.intervals.end());
  }

  const Grid qt = threshold_grid(quick);
  const Grid ft = threshold_grid(full);
  EXPECT_EQ(ft.durations.size(), 6u);
  for (Duration d : qt.durations) {
    EXPECT_NE(std::find(ft.durations.begin(), ft.durations.end(), d),
              ft.durations.end());
  }
}

TEST(Sweep, RepsOverrideApplies) {
  ReproOptions opt;
  opt.reps_override = 7;
  EXPECT_EQ(interval_grid(opt).repetitions, 7);
  EXPECT_EQ(threshold_grid(opt).repetitions, 7);
}

TEST(Sweep, RunSeedsArePairedAndDistinct) {
  // Same grid point -> same seed (paired across configs); different points
  // -> different seeds.
  EXPECT_EQ(run_seed(42, 8, 1000, 4, 0), run_seed(42, 8, 1000, 4, 0));
  EXPECT_NE(run_seed(42, 8, 1000, 4, 0), run_seed(42, 8, 1000, 4, 1));
  EXPECT_NE(run_seed(42, 8, 1000, 4, 0), run_seed(42, 9, 1000, 4, 0));
  EXPECT_NE(run_seed(42, 8, 1000, 4, 0), run_seed(42, 8, 2000, 4, 0));
  EXPECT_NE(run_seed(42, 8, 1000, 4, 0), run_seed(43, 8, 1000, 4, 0));
}

TEST(Sweep, TinySweepAggregates) {
  Grid g;
  g.concurrency = {2};
  g.durations = {msec(512)};
  g.intervals = {msec(256)};
  g.repetitions = 1;
  g.cluster_size = 24;
  g.quiesce = sec(10);
  g.test_length = sec(15);
  int calls = 0;
  const auto r = sweep_interval(swim::Config::lifeguard(), g, 7,
                                [&](int done, int total) {
                                  ++calls;
                                  EXPECT_LE(done, total);
                                });
  EXPECT_EQ(r.runs, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_GT(r.msgs, 0);
  EXPECT_EQ(r.fp_by_c.size(), 1u);
  ASSERT_TRUE(r.fp_by_c.contains(2));
}

TEST(Sweep, ThresholdSweepCollectsLatencySamples) {
  Grid g;
  g.concurrency = {2};
  g.durations = {msec(32768)};
  g.repetitions = 1;
  g.cluster_size = 32;
  g.quiesce = sec(10);
  g.observe = sec(50);
  const auto r = sweep_threshold(swim::Config::swim_baseline(), g, 11);
  EXPECT_EQ(r.runs, 1);
  EXPECT_EQ(r.first_detect.count(), 2u);  // both victims detected
}

TEST(Sweep, EnvParsing) {
  ::setenv("REPRO_FULL", "1", 1);
  ::setenv("REPRO_REPS", "3", 1);
  ::setenv("REPRO_SEED", "777", 1);
  const auto opt = ReproOptions::from_env();
  EXPECT_TRUE(opt.full);
  EXPECT_EQ(opt.reps_override, 3);
  EXPECT_EQ(opt.seed, 777u);
  ::unsetenv("REPRO_FULL");
  ::unsetenv("REPRO_REPS");
  ::unsetenv("REPRO_SEED");
  const auto def = ReproOptions::from_env();
  EXPECT_FALSE(def.full);
  EXPECT_EQ(def.reps_override, 0);
  EXPECT_EQ(def.seed, 42u);
}

}  // namespace
}  // namespace lifeguard::harness
