// Harness: experiment drivers produce sane, reproducible measurements.
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <set>

namespace lifeguard::harness {
namespace {

TEST(Experiment, ThresholdDetectsLongAnomalies) {
  ThresholdParams p;
  p.base.cluster_size = 64;
  p.base.config = swim::Config::swim_baseline();
  p.base.seed = 301;
  p.concurrent = 4;
  p.duration = msec(32768);
  p.observe = sec(60);
  const RunResult r = run_threshold(p);
  ASSERT_EQ(r.victims.size(), 4u);
  // All four victims detected; latency ≈ probe (1-2 s) + timeout
  // (5·log10(64) ≈ 9 s).
  ASSERT_EQ(r.first_detect.size(), 4u);
  for (double t : r.first_detect) {
    EXPECT_GT(t, 8.0);
    EXPECT_LT(t, 20.0);
  }
  // Dissemination completes shortly after detection.
  ASSERT_FALSE(r.full_dissem.empty());
  for (std::size_t i = 0; i < r.full_dissem.size(); ++i) {
    EXPECT_GE(r.full_dissem[i], r.first_detect[i] - 1e-9);
  }
}

TEST(Experiment, ThresholdShortAnomalyYieldsNoDetections) {
  ThresholdParams p;
  p.base.cluster_size = 64;
  p.base.config = swim::Config::swim_baseline();
  p.base.seed = 303;
  p.concurrent = 4;
  p.duration = msec(128);  // far below the suspicion timeout
  p.observe = sec(40);
  const RunResult r = run_threshold(p);
  EXPECT_TRUE(r.first_detect.empty());
  EXPECT_EQ(r.fp_events, 0);
}

TEST(Experiment, ReproducibleForSameSeed) {
  IntervalParams p;
  p.base.cluster_size = 48;
  p.base.config = swim::Config::swim_baseline();
  p.base.seed = 305;
  p.concurrent = 8;
  p.duration = msec(16384);
  p.interval = msec(4);
  p.test_length = sec(60);
  const RunResult a = run_interval(p);
  const RunResult b = run_interval(p);
  EXPECT_EQ(a.fp_events, b.fp_events);
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.victims, b.victims);
}

TEST(Experiment, VictimCountMatchesRequest) {
  IntervalParams p;
  p.base.cluster_size = 32;
  p.base.config = swim::Config::lifeguard();
  p.base.seed = 307;
  p.concurrent = 5;
  p.duration = msec(512);
  p.interval = msec(256);
  p.test_length = sec(20);
  const RunResult r = run_interval(p);
  EXPECT_EQ(r.victims.size(), 5u);
  std::set<int> distinct(r.victims.begin(), r.victims.end());
  EXPECT_EQ(distinct.size(), 5u);
  EXPECT_GT(r.msgs_sent, 0);
  EXPECT_GT(r.bytes_sent, 0);
}

TEST(Experiment, StressRunsAndReportsLoad) {
  StressParams p;
  p.base.cluster_size = 32;
  p.base.config = swim::Config::lifeguard();
  p.base.seed = 309;
  p.stressed = 3;
  p.test_length = sec(60);
  const RunResult r = run_stress(p);
  EXPECT_EQ(r.victims.size(), 3u);
  EXPECT_GT(r.msgs_sent, 0);
}

TEST(Experiment, Table1ConfigsMatchPaperOrder) {
  const auto configs = table1_configs(5.0, 6.0);
  ASSERT_EQ(configs.size(), 5u);
  EXPECT_EQ(configs[0].name, "SWIM");
  EXPECT_EQ(configs[1].name, "LHA-Probe");
  EXPECT_EQ(configs[2].name, "LHA-Suspicion");
  EXPECT_EQ(configs[3].name, "Buddy System");
  EXPECT_EQ(configs[4].name, "Lifeguard");
  // Tuning applies only to LHA-Suspicion configs.
  const auto tuned = table1_configs(2.0, 4.0);
  EXPECT_DOUBLE_EQ(tuned[4].config.suspicion_alpha, 2.0);
  EXPECT_DOUBLE_EQ(tuned[4].config.suspicion_beta, 4.0);
  EXPECT_DOUBLE_EQ(tuned[0].config.suspicion_alpha, 5.0);  // SWIM fixed
  EXPECT_DOUBLE_EQ(tuned[0].config.suspicion_beta, 1.0);
}

}  // namespace
}  // namespace lifeguard::harness
