// Integration: the real-socket runtime — the same protocol code over
// loopback UDP. Uses generous timeouts; wall-clock test.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "net/udp_runtime.h"
#include "swim/node.h"

namespace lifeguard {
namespace {

struct LiveNode {
  std::unique_ptr<net::UdpRuntime> rt;
  std::unique_ptr<swim::RecordingListener> listener;
  std::unique_ptr<swim::Node> node;

  LiveNode(const std::string& name, std::uint64_t seed,
           const swim::Config& cfg) {
    rt = std::make_unique<net::UdpRuntime>(0, seed);
    listener = std::make_unique<swim::RecordingListener>();
    node = std::make_unique<swim::Node>(name, rt->local_address(), cfg, *rt,
                                        listener.get());
    rt->start(node.get());
    rt->post([this] { node->start(); });
  }

  ~LiveNode() {
    rt->post([this] { node->stop(); });
    rt->shutdown();
  }
};

swim::Config fast_config() {
  // Accelerated timings keep the wall-clock test short.
  swim::Config cfg = swim::Config::lifeguard();
  cfg.probe_interval = msec(100);
  cfg.probe_timeout = msec(50);
  cfg.gossip_interval = msec(40);
  cfg.push_pull_interval = sec(2);
  return cfg;
}

int active_count(LiveNode& n) {
  // Snapshot through a posted task to stay on the loop thread.
  std::atomic<int> result{-1};
  n.rt->post([&] { result = n.node->members().num_active(); });
  for (int i = 0; i < 200 && result < 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return result;
}

TEST(UdpRuntime, ThreeNodeClusterConvergesOverRealSockets) {
  const auto cfg = fast_config();
  LiveNode a("alpha", 1, cfg), b("beta", 2, cfg), c("gamma", 3, cfg);

  const Address seed_addr = a.rt->local_address();
  b.rt->post([&b, seed_addr] { b.node->join({seed_addr}); });
  c.rt->post([&c, seed_addr] { c.node->join({seed_addr}); });

  bool converged = false;
  for (int i = 0; i < 100 && !converged; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    converged = active_count(a) == 3 && active_count(b) == 3 &&
                active_count(c) == 3;
  }
  EXPECT_TRUE(converged) << "UDP cluster failed to converge within 10 s";
}

TEST(UdpRuntime, DeadPeerIsDetectedOverRealSockets) {
  const auto cfg = fast_config();
  auto a = std::make_unique<LiveNode>("alpha", 11, cfg);
  auto b = std::make_unique<LiveNode>("beta", 12, cfg);
  const Address seed_addr = a->rt->local_address();
  b->rt->post([&b, seed_addr] { b->node->join({seed_addr}); });

  for (int i = 0; i < 150 && active_count(*a) != 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_EQ(active_count(*a), 2);

  b.reset();  // hard-kill beta

  // Suspicion Min with accelerated interval: 5·1·0.1 s = 0.5 s, Max = 3 s.
  bool detected = false;
  for (int i = 0; i < 300 && !detected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    detected = active_count(*a) == 1;
  }
  EXPECT_TRUE(detected) << "alpha never declared beta dead";
}

TEST(UdpRuntime, PostRunsOnLoopThreadAndTimersFire) {
  net::UdpRuntime rt(0, 99);
  struct NullHandler : PacketHandler {
    void on_packet(const Address&, std::span<const std::uint8_t>,
                   Channel) override {}
  } handler;
  rt.start(&handler);

  std::atomic<bool> timer_fired{false};
  std::atomic<bool> cancelled_fired{false};
  rt.post([&] {
    rt.schedule(msec(50), [&] { timer_fired = true; });
    const TimerId id = rt.schedule(msec(50), [&] { cancelled_fired = true; });
    rt.cancel(id);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(timer_fired);
  EXPECT_FALSE(cancelled_fired);
  rt.shutdown();
}

}  // namespace
}  // namespace lifeguard
