// Integration: network partitions — both halves keep operating, and
// push-pull anti-entropy re-merges the views after healing (the SWIM/
// memberlist robustness property the paper's §II relies on).
#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace lifeguard {
namespace {

sim::Simulator make(int n, std::uint64_t seed) {
  sim::SimParams p;
  p.seed = seed;
  return sim::Simulator(n, swim::Config::lifeguard(), p);
}

TEST(Partition, HalvesDeclareEachOtherDeadThenMerge) {
  auto sim = make(16, 201);
  sim.start_all();
  sim.run_for(sec(15));
  ASSERT_TRUE(sim.converged(16));

  // Split 0-7 | 8-15.
  for (int i = 0; i < 16; ++i) {
    sim.network().set_partition(i, i < 8 ? 1 : 2);
  }
  // Long enough for suspicion (~Max = 6·5·log10(16) ≈ 36 s) to expire.
  sim.run_for(sec(60));
  // Each side sees only its half alive.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(sim.node(i).members().num_active(), 8) << "node " << i;
  }

  sim.network().heal();
  // Healing relies on push-pull (30 s period) plus refutation gossip.
  sim.run_for(sec(90));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(sim.node(i).members().num_active(), 16)
        << "node " << i << " did not re-merge";
  }
}

TEST(Partition, MinorityIslandRejoins) {
  auto sim = make(12, 203);
  sim.start_all();
  sim.run_for(sec(15));
  ASSERT_TRUE(sim.converged(12));

  // Isolate four nodes. Their probes of the majority all fail, so LHA-Probe
  // backs their probe rate off up to 9x; with four island members the
  // independent suspicions still collapse the timeouts to Min. Give the
  // island time to work through declaring all eight unreachable members.
  for (int i = 8; i < 12; ++i) sim.network().set_partition(i, 7);
  sim.run_for(sec(120));
  EXPECT_EQ(sim.node(10).members().num_active(), 4);
  EXPECT_EQ(sim.node(0).members().num_active(), 8);

  sim.network().heal();
  sim.run_for(sec(90));
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(sim.node(i).members().num_active(), 12) << "node " << i;
  }
}

TEST(Partition, IncarnationsAdvanceAcrossHeal) {
  // Members declared dead by the other side must refute with higher
  // incarnations on heal; nobody may end up permanently dead.
  auto sim = make(10, 207);
  sim.start_all();
  sim.run_for(sec(15));
  ASSERT_TRUE(sim.converged(10));
  sim.network().set_partition(9, 3);
  sim.run_for(sec(60));
  sim.network().heal();
  sim.run_for(sec(90));
  EXPECT_GE(sim.node(9).incarnation(), 1u);
  for (int i = 0; i < 10; ++i) {
    const auto st = sim.node(i).state_of("node-9");
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(*st, swim::MemberState::kAlive) << "node " << i;
  }
}

}  // namespace
}  // namespace lifeguard
