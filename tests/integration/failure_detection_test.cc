// Integration: true-positive failure detection — crash a node, verify the
// suspicion pipeline detects and disseminates within the analytical bounds,
// and that recovery (refutation) works for survivable anomalies.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.h"
#include "swim/suspicion.h"

namespace lifeguard {
namespace {

sim::SimParams params(std::uint64_t seed) {
  sim::SimParams p;
  p.seed = seed;
  return p;
}

double detect_time(sim::Simulator& sim, const std::string& member,
                   TimePoint after) {
  double first = -1;
  for (int i = 0; i < sim.size(); ++i) {
    for (const auto& e : sim.events(i).events()) {
      if (e.type != swim::EventType::kFailed || e.member != member) continue;
      if (!e.originated || e.at < after) continue;
      const double t = (e.at - after).seconds();
      if (first < 0 || t < first) first = t;
    }
  }
  return first;
}

int nodes_seeing_dead(sim::Simulator& sim, const std::string& member,
                      int skip) {
  int count = 0;
  for (int i = 0; i < sim.size(); ++i) {
    if (i == skip) continue;
    const auto st = sim.node(i).state_of(member);
    if (st.has_value() && *st == swim::MemberState::kDead) ++count;
  }
  return count;
}

class FailureDetection : public ::testing::TestWithParam<bool> {};

TEST_P(FailureDetection, CrashIsDetectedWithinBound) {
  const bool use_lifeguard = GetParam();
  const swim::Config cfg = use_lifeguard ? swim::Config::lifeguard()
                                         : swim::Config::swim_baseline();
  sim::Simulator sim(32, cfg, params(31));
  sim.start_all();
  sim.run_for(sec(15));
  ASSERT_TRUE(sim.converged(32));

  const TimePoint crash_at = sim.now();
  sim.crash_node(9);
  sim.run_for(sec(60));

  const double t = detect_time(sim, "node-9", crash_at);
  ASSERT_GT(t, 0.0) << "crash never detected";
  // Analytical expectation: probe selection (~seconds) + protocol period
  // (1 s) + suspicion timeout (α·log10(32) ≈ 7.5 s at α=5). Lifeguard's
  // timeout starts at β·Min but decays back to Min via independent
  // confirmations, so both configurations land in the same window.
  const double min_bound =
      swim::suspicion_min(cfg.suspicion_alpha, 32, cfg.probe_interval)
          .seconds();
  EXPECT_GT(t, min_bound) << "detection cannot precede the suspicion timeout";
  EXPECT_LT(t, min_bound + 35.0);

  // Full dissemination: everyone (except the corpse) sees node-9 dead.
  EXPECT_EQ(nodes_seeing_dead(sim, "node-9", 9), 31);
}

INSTANTIATE_TEST_SUITE_P(Configs, FailureDetection, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Lifeguard" : "SWIM";
                         });

TEST(FailureDetectionExtra, ShortAnomalySurvivesWithoutFailureEvents) {
  // A 3-second blip is far below the suspicion timeout: the member may be
  // suspected but must never be declared failed.
  sim::Simulator sim(32, swim::Config::lifeguard(), params(37));
  sim.start_all();
  sim.run_for(sec(15));
  ASSERT_TRUE(sim.converged(32));

  sim.block_node(5);
  sim.run_for(sec(3));
  sim.unblock_node(5);
  sim.run_for(sec(30));

  for (int i = 0; i < sim.size(); ++i) {
    for (const auto& e : sim.events(i).events()) {
      EXPECT_NE(e.type, swim::EventType::kFailed)
          << "node " << i << " declared " << e.member << " failed";
    }
    EXPECT_EQ(sim.node(i).members().num_active(), 32);
  }
}

TEST(FailureDetectionExtra, RecoveredNodeIsResurrectedEverywhere) {
  // Block long enough to be declared dead, then return: the refutation must
  // resurrect the member in every view (gossip-to-the-dead + incarnation).
  sim::Simulator sim(32, swim::Config::swim_baseline(), params(41));
  sim.start_all();
  sim.run_for(sec(15));
  ASSERT_TRUE(sim.converged(32));

  sim.block_node(7);
  sim.run_for(sec(25));  // > probe + suspicion timeout (~9 s at n=32)
  EXPECT_GT(nodes_seeing_dead(sim, "node-7", 7), 0)
      << "long anomaly should have been declared";
  sim.unblock_node(7);
  sim.run_for(sec(30));

  for (int i = 0; i < sim.size(); ++i) {
    EXPECT_EQ(sim.node(i).members().num_active(), 32) << "node " << i;
  }
}

TEST(FailureDetectionExtra, MultipleSimultaneousCrashes) {
  sim::Simulator sim(48, swim::Config::lifeguard(), params(43));
  sim.start_all();
  sim.run_for(sec(15));
  ASSERT_TRUE(sim.converged(48));

  const TimePoint crash_at = sim.now();
  sim.crash_node(1);
  sim.crash_node(2);
  sim.crash_node(3);
  sim.run_for(sec(90));

  for (const char* name : {"node-1", "node-2", "node-3"}) {
    EXPECT_GT(detect_time(sim, name, crash_at), 0.0) << name;
  }
  for (int i = 4; i < sim.size(); ++i) {
    EXPECT_EQ(sim.node(i).members().num_active(), 45) << "node " << i;
  }
}

}  // namespace
}  // namespace lifeguard
