// Integration: cluster formation, convergence and steady-state behaviour on
// the simulated substrate.
#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace lifeguard {
namespace {

sim::SimParams params(std::uint64_t seed) {
  sim::SimParams p;
  p.seed = seed;
  return p;
}

TEST(Cluster, SmallClusterConverges) {
  sim::Simulator sim(8, swim::Config::lifeguard(), params(7));
  sim.start_all();
  sim.run_for(sec(10));
  EXPECT_TRUE(sim.converged(8));
  for (int i = 0; i < sim.size(); ++i) {
    EXPECT_EQ(sim.node(i).members().num_active(), 8) << "node " << i;
  }
}

TEST(Cluster, MediumClusterConvergesWithinQuiesce) {
  // The paper allows 15 s of quiesce for 128 agents; we require the same.
  sim::Simulator sim(64, swim::Config::swim_baseline(), params(11));
  sim.start_all();
  sim.run_for(sec(15));
  EXPECT_TRUE(sim.converged(64));
}

TEST(Cluster, LargeClusterConverges) {
  sim::Simulator sim(128, swim::Config::lifeguard(), params(13));
  sim.start_all();
  sim.run_for(sec(15));
  EXPECT_TRUE(sim.converged(128));
}

TEST(Cluster, SteadyStateProducesNoEvents) {
  sim::Simulator sim(32, swim::Config::lifeguard(), params(17));
  sim.start_all();
  sim.run_for(sec(15));
  // After convergence, run 60 quiet seconds: no suspicions, no failures.
  for (int i = 0; i < sim.size(); ++i) {
    const_cast<swim::RecordingListener&>(sim.events(i)).clear();
  }
  sim.run_for(sec(60));
  for (int i = 0; i < sim.size(); ++i) {
    for (const auto& e : sim.events(i).events()) {
      EXPECT_NE(e.type, swim::EventType::kSuspect)
          << "spurious suspicion at node " << i << " about " << e.member;
      EXPECT_NE(e.type, swim::EventType::kFailed)
          << "spurious failure at node " << i << " about " << e.member;
    }
  }
}

TEST(Cluster, DeterministicReplay) {
  auto fingerprint = [](std::uint64_t seed) {
    sim::Simulator sim(24, swim::Config::lifeguard(), params(seed));
    sim.start_all();
    sim.run_for(sec(30));
    const Metrics m = sim.aggregate_metrics();
    return std::make_tuple(m.counter_value("net.msgs_sent"),
                           m.counter_value("net.bytes_sent"),
                           sim.queue().executed());
  };
  EXPECT_EQ(fingerprint(5), fingerprint(5));
  EXPECT_NE(fingerprint(5), fingerprint(6));
}

TEST(Cluster, GracefulLeaveDisseminates) {
  sim::Simulator sim(16, swim::Config::lifeguard(), params(23));
  sim.start_all();
  sim.run_for(sec(12));
  ASSERT_TRUE(sim.converged(16));

  sim.node(3).leave();
  sim.run_for(sec(5));
  int left_views = 0;
  for (int i = 0; i < sim.size(); ++i) {
    if (i == 3) continue;
    const auto st = sim.node(i).state_of("node-3");
    ASSERT_TRUE(st.has_value());
    if (*st == swim::MemberState::kLeft) ++left_views;
  }
  EXPECT_EQ(left_views, 15);
  // A graceful leave is NOT a failure event anywhere.
  for (int i = 0; i < sim.size(); ++i) {
    for (const auto& e : sim.events(i).events()) {
      EXPECT_NE(e.type, swim::EventType::kFailed);
    }
  }
}

TEST(Cluster, LateJoinerIsAbsorbed) {
  sim::Simulator sim(12, swim::Config::lifeguard(), params(29));
  // Start everyone but node 11; it joins late.
  for (int i = 0; i < 11; ++i) sim.node(i).start();
  for (int i = 1; i < 11; ++i) {
    sim.node(i).join({sim::sim_address(0)});
  }
  sim.run_for(sec(10));
  EXPECT_EQ(sim.node(0).members().num_active(), 11);

  sim.node(11).start();
  sim.node(11).join({sim::sim_address(4)});  // any member works as seed
  sim.run_for(sec(8));
  EXPECT_TRUE(sim.converged(12));
}

}  // namespace
}  // namespace lifeguard
