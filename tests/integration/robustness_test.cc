// Parameterized robustness sweep: across cluster sizes, configurations and
// network conditions, the cluster must converge and stay stable — the
// blanket invariants a membership library owes its users.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.h"

namespace lifeguard {
namespace {

struct Case {
  int cluster;
  bool lifeguard;
  double loss;
};

class Robustness : public ::testing::TestWithParam<Case> {};

TEST_P(Robustness, ConvergesAndStaysStable) {
  const Case c = GetParam();
  sim::SimParams p;
  p.seed = 600 + static_cast<std::uint64_t>(c.cluster) +
           static_cast<std::uint64_t>(c.loss * 100);
  p.network.udp_loss = c.loss;
  sim::Simulator sim(c.cluster,
                     c.lifeguard ? swim::Config::lifeguard()
                                 : swim::Config::swim_baseline(),
                     p);
  sim.start_all();
  sim.run_for(sec(20));
  EXPECT_TRUE(sim.converged(c.cluster))
      << "n=" << c.cluster << " loss=" << c.loss;

  // 60 quiet seconds: nobody may be declared failed.
  sim.run_for(sec(60));
  for (int i = 0; i < sim.size(); ++i) {
    EXPECT_EQ(sim.node(i).members().num_active(), c.cluster) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Robustness,
    ::testing::Values(Case{4, true, 0.0}, Case{4, false, 0.0},
                      Case{16, true, 0.0}, Case{16, false, 0.05},
                      Case{48, true, 0.02}, Case{48, false, 0.0},
                      Case{96, true, 0.0}, Case{96, true, 0.05},
                      Case{128, false, 0.02}),
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      return "n" + std::to_string(c.cluster) +
             (c.lifeguard ? "_lifeguard" : "_swim") + "_loss" +
             std::to_string(static_cast<int>(c.loss * 100));
    });

TEST(RobustnessExtra, SurvivesAnomalyStorm) {
  // Half the cluster cycles through randomized anomalies for two minutes;
  // afterwards every healthy view must fully heal.
  sim::SimParams p;
  p.seed = 777;
  sim::Simulator sim(32, swim::Config::lifeguard(), p);
  sim.start_all();
  sim.run_for(sec(15));
  ASSERT_TRUE(sim.converged(32));

  Rng storm(9);
  for (int v = 0; v < 16; ++v) {
    TimePoint t = sim.now() + msec(storm.uniform_range(0, 5000));
    const TimePoint end = sim.now() + sec(120);
    while (t < end) {
      const Duration block{storm.uniform_range(500'000, 20'000'000)};
      const TimePoint unblock_at = t + block;
      sim.at(t, [&sim, v] { sim.block_node(v); });
      sim.at(unblock_at, [&sim, v] { sim.unblock_node(v); });
      t = unblock_at + Duration{storm.uniform_range(100'000, 3'000'000)};
    }
  }
  sim.run_for(sec(120));
  // Storm over; allow recovery (refutations + reconnect + push-pull).
  sim.run_for(sec(90));
  for (int i = 0; i < sim.size(); ++i) {
    EXPECT_EQ(sim.node(i).members().num_active(), 32) << "node " << i;
  }
}

TEST(RobustnessExtra, ChurnJoinLeaveUnderLoss) {
  // Nodes join late and leave gracefully while 5% of UDP drops; views must
  // track the true membership.
  sim::SimParams p;
  p.seed = 88;
  p.network.udp_loss = 0.05;
  sim::Simulator sim(24, swim::Config::lifeguard(), p);
  for (int i = 0; i < 16; ++i) sim.node(i).start();
  for (int i = 1; i < 16; ++i) sim.node(i).join({sim::sim_address(0)});
  sim.run_for(sec(15));
  EXPECT_EQ(sim.node(0).members().num_active(), 16);

  // Eight more join through random seeds.
  for (int i = 16; i < 24; ++i) {
    sim.node(i).start();
    sim.node(i).join({sim::sim_address(i % 16)});
  }
  sim.run_for(sec(15));
  EXPECT_TRUE(sim.converged(24));

  // Four leave gracefully.
  for (int i = 4; i < 8; ++i) sim.node(i).leave();
  sim.run_for(sec(15));
  for (int i : {0, 10, 20}) {
    EXPECT_EQ(sim.node(i).members().num_active(), 20) << "node " << i;
  }
}

}  // namespace
}  // namespace lifeguard
