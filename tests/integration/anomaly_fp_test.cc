// Integration: the paper's headline claim at test scale — under intermittent
// anomalies, baseline SWIM originates false positives about healthy members
// while full Lifeguard suppresses (nearly all of) them.
#include <gtest/gtest.h>

#include <set>

#include "harness/experiment.h"

namespace lifeguard {
namespace {

harness::RunResult run(const swim::Config& cfg, int concurrent,
                       Duration duration, Duration interval,
                       std::uint64_t seed) {
  harness::IntervalParams p;
  p.base.cluster_size = 64;
  p.base.config = cfg;
  p.base.seed = seed;
  p.concurrent = concurrent;
  p.duration = duration;
  p.interval = interval;
  p.test_length = sec(120);
  return harness::run_interval(p);
}

TEST(AnomalyFalsePositives, SwimProducesThemLifeguardSuppressesThem) {
  std::int64_t swim_fp = 0, lifeguard_fp = 0;
  for (std::uint64_t seed : {101u, 102u, 103u}) {
    swim_fp += run(swim::Config::swim_baseline(), 12, msec(16384), msec(4),
                   seed)
                   .fp_events;
    lifeguard_fp +=
        run(swim::Config::lifeguard(), 12, msec(16384), msec(4), seed)
            .fp_events;
  }
  EXPECT_GT(swim_fp, 0) << "baseline should flap under these anomalies";
  // The paper reports 50-100x; at this scale we insist on at least 3x and
  // strictly fewer events.
  EXPECT_LT(lifeguard_fp * 3, swim_fp)
      << "SWIM=" << swim_fp << " Lifeguard=" << lifeguard_fp;
}

TEST(AnomalyFalsePositives, LhaSuspicionIsTheBiggestContributor) {
  // Paper Table IV: LHA-Suspicion alone removes most false positives.
  std::int64_t swim_fp = 0, lhas_fp = 0;
  for (std::uint64_t seed : {111u, 112u, 113u}) {
    swim_fp += run(swim::Config::swim_baseline(), 12, msec(16384), msec(4),
                   seed)
                   .fp_events;
    lhas_fp += run(swim::Config::lha_suspicion_only(), 12, msec(16384),
                   msec(4), seed)
                   .fp_events;
  }
  EXPECT_GT(swim_fp, 0);
  EXPECT_LT(lhas_fp * 2, swim_fp);
}

TEST(AnomalyFalsePositives, FalsePositivesConcentrateAtSlowMembers) {
  // Paper: FP- (healthy reporters) is a small fraction of FP — the slow
  // members themselves originate almost all false accusations.
  std::int64_t fp = 0, fpm = 0;
  for (std::uint64_t seed : {121u, 122u, 123u, 124u}) {
    const auto r =
        run(swim::Config::swim_baseline(), 16, msec(32768), msec(4), seed);
    fp += r.fp_events;
    fpm += r.fp_healthy_events;
  }
  ASSERT_GT(fp, 0);
  EXPECT_LT(fpm * 2, fp) << "FP=" << fp << " FP-=" << fpm;
}

TEST(AnomalyFalsePositives, NoAnomaliesNoFalsePositives) {
  const auto r = run(swim::Config::swim_baseline(), 0, msec(1000), msec(1000),
                     131);
  EXPECT_EQ(r.fp_events, 0);
  EXPECT_EQ(r.fp_healthy_events, 0);
}

TEST(AnomalyFalsePositives, VictimsRecoverAfterExperiment) {
  harness::IntervalParams p;
  p.base.cluster_size = 48;
  p.base.config = swim::Config::lifeguard();
  p.base.seed = 141;
  p.concurrent = 8;
  p.duration = msec(8192);
  p.interval = msec(256);
  p.test_length = sec(60);
  // run_interval drains briefly after the last cycle; afterwards the cluster
  // must heal completely given a little more time. Re-run manually here.
  const auto r = harness::run_interval(p);
  EXPECT_EQ(r.cluster_size, 48);
  EXPECT_EQ(r.victims.size(), 8u);
}

}  // namespace
}  // namespace lifeguard
