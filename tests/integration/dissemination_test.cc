// Dissemination properties of the gossip component at cluster level:
// SWIM's O(log n) spread, refutation superseding queued suspicions, and the
// piggyback MTU discipline.
#include <gtest/gtest.h>

#include "proto/wire.h"
#include "sim/simulator.h"

namespace lifeguard {
namespace {

sim::Simulator make(int n, std::uint64_t seed) {
  sim::SimParams p;
  p.seed = seed;
  return sim::Simulator(n, swim::Config::lifeguard(), p);
}

/// Time for a fresh update (graceful leave) to reach every member.
double dissemination_time(int n, std::uint64_t seed) {
  auto sim = make(n, seed);
  sim.start_all();
  sim.run_for(sec(15));
  EXPECT_TRUE(sim.converged(n));

  sim.node(1).leave();
  const TimePoint start = sim.now();
  double last = -1;
  // Poll in 100 ms steps until all views show the leave.
  for (int step = 0; step < 600; ++step) {
    sim.run_for(msec(100));
    bool all = true;
    for (int i = 0; i < n; ++i) {
      if (i == 1) continue;
      const auto st = sim.node(i).state_of("node-1");
      all = all && st.has_value() && *st == swim::MemberState::kLeft;
    }
    if (all) {
      last = (sim.now() - start).seconds();
      break;
    }
  }
  EXPECT_GE(last, 0.0) << "leave never fully disseminated at n=" << n;
  return last;
}

TEST(Dissemination, CompletesWithinSecondsAndScalesGently) {
  // SWIM's promise: full dissemination grows ~logarithmically with n. We
  // check the practical corollary: even 8x more members costs only a small
  // constant factor, and everything finishes within a few seconds.
  const double t16 = dissemination_time(16, 901);
  const double t128 = dissemination_time(128, 907);
  EXPECT_LT(t16, 5.0);
  EXPECT_LT(t128, 8.0);
  EXPECT_LT(t128, t16 * 6.0 + 2.0) << "dissemination scaling is not gentle";
}

TEST(Dissemination, RefutationSupersedesQueuedSuspicion) {
  // A node holding a queued suspect broadcast about m must replace it when
  // the refutation (higher-incarnation alive) arrives: the broadcast queue
  // keys by member.
  auto sim = make(2, 911);
  sim.node(0).start();
  sim.run_for(msec(10));
  auto& node = sim.node(0);

  auto inject = [&](const proto::Message& m) {
    const auto bytes = proto::encode_datagram(m);
    node.on_packet(sim::sim_address(1), bytes, Channel::kUdp);
  };
  inject(proto::Alive{"m", 0, Address{90, 1}});
  // The join enqueued one broadcast about "m"; all later updates about "m"
  // must REPLACE it (queue keys by member), never accumulate.
  const auto before = node.pending_broadcasts();
  inject(proto::Suspect{"m", 0, "accuser"});
  EXPECT_EQ(node.pending_broadcasts(), before);  // suspect replaced the alive
  EXPECT_EQ(node.state_of("m"), swim::MemberState::kSuspect);
  inject(proto::Alive{"m", 1, Address{90, 1}});
  EXPECT_EQ(node.pending_broadcasts(), before);  // refutation replaced it
  EXPECT_EQ(node.state_of("m"), swim::MemberState::kAlive);
}

TEST(Dissemination, PacketsRespectMtu) {
  // Generate heavy churn and verify no datagram ever exceeds the configured
  // packet size (the piggyback budget discipline).
  swim::Config cfg = swim::Config::lifeguard();
  cfg.max_packet_bytes = 512;
  sim::SimParams p;
  p.seed = 913;
  sim::Simulator sim(32, cfg, p);
  sim.start_all();
  sim.run_for(sec(10));
  // Churn: crash a few nodes to flood the gossip queues.
  sim.crash_node(3);
  sim.crash_node(4);
  sim.run_for(sec(20));
  // UDP bytes/messages ratio bounds the average; the real assertion is the
  // per-send cap, which we verify via the compound builder going through
  // max_packet_bytes — here we sanity-check the aggregate ratio.
  const Metrics m = sim.aggregate_metrics();
  const auto msgs = m.counter_value("net.msgs_sent");
  const auto bytes = m.counter_value("net.bytes_sent");
  ASSERT_GT(msgs, 0);
  // Push-pull state syncs ride the reliable channel and may exceed the UDP
  // MTU; exclude them via the type counters.
  const auto pp = m.counter_value("net.sent.push-pull-req") +
                  m.counter_value("net.sent.push-pull-resp");
  EXPECT_LT(static_cast<double>(bytes) / static_cast<double>(msgs),
            512.0 + static_cast<double>(pp * 4096) / static_cast<double>(msgs))
      << "average datagram size implies MTU violations";
}

TEST(Dissemination, JoinFloodsThroughGossipNotJustSeed) {
  // A join learned by the seed must reach members that never talked to the
  // joiner, via alive re-gossip.
  auto sim = make(24, 917);
  for (int i = 0; i < 23; ++i) sim.node(i).start();
  for (int i = 1; i < 23; ++i) sim.node(i).join({sim::sim_address(0)});
  sim.run_for(sec(12));
  ASSERT_EQ(sim.node(7).members().num_active(), 23);

  sim.node(23).start();
  sim.node(23).join({sim::sim_address(0)});  // only node-0 is contacted
  sim.run_for(sec(5));
  int know_it = 0;
  for (int i = 0; i < 23; ++i) {
    const auto st = sim.node(i).state_of("node-23");
    know_it += st.has_value() && *st == swim::MemberState::kAlive ? 1 : 0;
  }
  EXPECT_EQ(know_it, 23) << "join did not flood via gossip";
}

}  // namespace
}  // namespace lifeguard
