// Golden-seed bit-parity for the swim backend behind the membership seam.
//
// The expected values below were captured by running these exact scenarios
// BEFORE swim::Node moved behind membership::Backend (when the simulator
// constructed Nodes directly). The refactor's contract is bit-parity: the
// same Rng draw order, the same event stream, the same trace bytes. Any
// drift here — one extra Rng draw in a constructor, a reordered fork, an
// extra sampler emission — changes these numbers and fails loudly.
//
// The trace digest is FNV-1a 64 over the full save_trace() output, so it
// covers the header (config echo, checks, membership), every membership
// transition, every fault marker and every metric sample byte for byte.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "check/spec.h"
#include "check/trace.h"
#include "harness/scenario.h"

namespace lifeguard::membership {
namespace {

using harness::RunResult;
using harness::Scenario;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct Captured {
  RunResult result;
  std::uint64_t trace_digest = 0;
  std::size_t trace_events = 0;
};

Captured capture(const Scenario& s) {
  check::TraceRecorder rec(s, /*include_datagrams=*/false,
                           /*include_probe_spans=*/false);
  Captured c;
  c.result = harness::run(s, {&rec});
  std::ostringstream os;
  check::save_trace(rec.trace(), os);
  c.trace_digest = fnv1a(os.str());
  c.trace_events = rec.trace().events.size();
  return c;
}

TEST(GoldenParity, PartitionSplitHealRegistryScenario) {
  const Scenario* s =
      harness::ScenarioRegistry::builtin().find("partition-split-heal");
  ASSERT_NE(s, nullptr);
  const Captured c = capture(*s);
  EXPECT_EQ(c.result.fp_events, 18);
  EXPECT_EQ(c.result.fp_healthy_events, 0);
  EXPECT_EQ(c.result.msgs_sent, 7660);
  EXPECT_EQ(c.result.bytes_sent, 386362);
  const std::vector<double> first_detect = {
      26.433776999999999, 8.5650370000000002, 8.2032600000000002,
      16.513822999999999, 7.5465400000000002, 7.7139879999999996,
      14.750838,          16.513822999999999};
  const std::vector<double> full_dissem = {
      29.930029000000001, 8.8576709999999999, 8.683249,
      25.420369000000001, 7.8827210000000001, 8.1143839999999994,
      15.018610000000001, 26.407181999999999};
  EXPECT_EQ(c.result.first_detect, first_detect);
  EXPECT_EQ(c.result.full_dissem, full_dissem);
  EXPECT_EQ(c.trace_events, 774u);
  EXPECT_EQ(c.trace_digest, 16283597949118844276ull);
}

TEST(GoldenParity, CheckedRunWithMetricsSampling) {
  // Invariants on, 500 ms sampling: the digest covers every kMetricSample
  // the swim sampler path emits — the sampler refactor onto Agent virtuals
  // must not move a single byte.
  Scenario s;
  s.name = "golden-checked";
  s.summary = "golden";
  s.cluster_size = 12;
  s.config = swim::Config::lifeguard();
  s.anomaly = harness::AnomalyPlan::threshold(2, sec(16));
  s.quiesce = sec(15);
  s.run_length = sec(60);
  s.checks = check::Spec::all();
  s.metrics_interval = msec(500);
  s.seed = 7;
  const Captured c = capture(s);
  EXPECT_EQ(c.result.fp_events, 0);
  EXPECT_EQ(c.result.fp_healthy_events, 0);
  EXPECT_EQ(c.result.msgs_sent, 2883);
  EXPECT_EQ(c.result.bytes_sent, 111146);
  const std::vector<double> first_detect = {7.0122790000000004,
                                            8.9703130000000009};
  const std::vector<double> full_dissem = {7.2458640000000001,
                                           9.1145209999999999};
  EXPECT_EQ(c.result.first_detect, first_detect);
  EXPECT_EQ(c.result.full_dissem, full_dissem);
  EXPECT_EQ(c.result.checks.total_violations, 0);
  EXPECT_EQ(c.result.series.size(), 2400u);
  EXPECT_EQ(c.trace_events, 2648u);
  EXPECT_EQ(c.trace_digest, 13680031495120145778ull);
}

TEST(GoldenParity, ChurnRestartsRebuildNodesThroughTheBackend) {
  // Churn exercises restart_node — post-refactor the replacement agent comes
  // from Backend::create, which must draw nothing the old direct
  // construction didn't.
  Scenario s;
  s.name = "golden-churn";
  s.summary = "golden";
  s.cluster_size = 16;
  s.config = swim::Config::lifeguard();
  s.anomaly = harness::AnomalyPlan::churn(3, sec(10), sec(20));
  s.quiesce = sec(15);
  s.run_length = sec(60);
  s.seed = 3;
  const Captured c = capture(s);
  EXPECT_EQ(c.result.fp_events, 0);
  EXPECT_EQ(c.result.fp_healthy_events, 0);
  EXPECT_EQ(c.result.msgs_sent, 6280);
  EXPECT_EQ(c.result.bytes_sent, 256276);
  const std::vector<double> first_detect = {27.705603, 16.823867,
                                            21.572320000000001};
  const std::vector<double> full_dissem = {27.86046, 17.005338999999999,
                                           21.673715999999999};
  EXPECT_EQ(c.result.first_detect, first_detect);
  EXPECT_EQ(c.result.full_dissem, full_dissem);
  EXPECT_EQ(c.trace_events, 619u);
  EXPECT_EQ(c.trace_digest, 7732788344126815014ull);
}

}  // namespace
}  // namespace lifeguard::membership
