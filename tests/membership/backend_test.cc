// The membership seam itself: spec parsing, the backend registry, the static
// control backend's floor guarantees, per-backend invariant applicability,
// and the trace-header round trip for the `membership` field.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "check/invariant.h"
#include "check/replay.h"
#include "check/spec.h"
#include "check/trace.h"
#include "harness/scenario.h"
#include "membership/backend.h"

namespace lifeguard::membership {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing

TEST(BackendSpecParse, AcceptsTheThreeBackendsAndCentralParameters) {
  std::string error;
  auto swim = parse_spec("swim", &error);
  ASSERT_TRUE(swim.has_value()) << error;
  EXPECT_EQ(swim->base, "swim");
  EXPECT_EQ(swim->spec, "swim");

  auto central = parse_spec("central", &error);
  ASSERT_TRUE(central.has_value()) << error;
  EXPECT_EQ(central->base, "central");
  EXPECT_EQ(central->miss_threshold, 3);  // documented default

  auto tuned = parse_spec("central:miss=5", &error);
  ASSERT_TRUE(tuned.has_value()) << error;
  EXPECT_EQ(tuned->base, "central");
  EXPECT_EQ(tuned->miss_threshold, 5);
  EXPECT_EQ(tuned->spec, "central:miss=5");  // verbatim, for trace headers

  auto fixed = parse_spec("static", &error);
  ASSERT_TRUE(fixed.has_value()) << error;
  EXPECT_EQ(fixed->base, "static");
}

TEST(BackendSpecParse, RejectsMalformedSpecsWithActionableMessages) {
  const auto fails = [](std::string_view spec) {
    std::string error;
    const auto parsed = parse_spec(spec, &error);
    EXPECT_FALSE(parsed.has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    return error;
  };
  fails("bogus");
  fails("");
  fails("swim:miss=2");     // only central takes parameters
  fails("static:miss=2");
  fails("central:miss=0");  // documented range [1, 100]
  fails("central:miss=101");
  fails("central:miss=abc");
  fails("central:miss=");
  fails("central:woof=3");  // unknown key
  fails("central:");
}

TEST(BackendSpecParse, BaseNameStripsParametersWithoutValidating) {
  EXPECT_EQ(base_name("swim"), "swim");
  EXPECT_EQ(base_name("central:miss=5"), "central");
  EXPECT_EQ(base_name("anything:with=params"), "anything");
}

// ---------------------------------------------------------------------------
// Registry

TEST(BackendRegistry, HoldsTheThreeBuiltinsInCatalogOrder) {
  const auto names = BackendRegistry::builtin().names();
  const std::vector<std::string> expected = {"swim", "central", "static"};
  EXPECT_EQ(names, expected);
  for (const Backend* b : BackendRegistry::builtin().all()) {
    EXPECT_FALSE(b->summary().empty()) << b->name();
  }
}

TEST(BackendRegistry, FindAcceptsBareNamesAndFullSpecs) {
  const BackendRegistry& reg = BackendRegistry::builtin();
  ASSERT_NE(reg.find("swim"), nullptr);
  ASSERT_NE(reg.find("central"), nullptr);
  ASSERT_NE(reg.find("central:miss=5"), nullptr);
  EXPECT_EQ(reg.find("central:miss=5"), reg.find("central"));
  EXPECT_EQ(reg.find("bogus"), nullptr);
  EXPECT_EQ(reg.find(""), nullptr);
  EXPECT_TRUE(reg.find("swim")->detects_failures());
  EXPECT_TRUE(reg.find("central")->detects_failures());
  EXPECT_FALSE(reg.find("static")->detects_failures());
}

// ---------------------------------------------------------------------------
// Scenario validation

TEST(ScenarioMembership, ValidateRejectsUnknownBackends) {
  harness::Scenario s;
  s.name = "bad-membership";
  s.summary = "x";
  s.cluster_size = 8;
  s.run_length = sec(10);
  s.membership = "raft";
  const auto errors = s.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("membership"), std::string::npos);
  EXPECT_NE(errors.front().find("raft"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The static control backend

TEST(StaticBackend, IsAZeroMessageZeroDetectionFloor) {
  const harness::Scenario* s =
      harness::ScenarioRegistry::builtin().find("static-floor");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->membership, "static");
  const harness::RunResult r = harness::run(*s);
  EXPECT_EQ(r.msgs_sent, 0);
  EXPECT_EQ(r.bytes_sent, 0);
  EXPECT_EQ(r.fp_events, 0);
  EXPECT_EQ(r.fp_healthy_events, 0);
  // No detector: the blocked members are never declared failed.
  EXPECT_TRUE(r.first_detect.empty());
  EXPECT_TRUE(r.full_dissem.empty());
  // The generic invariant suite still runs — and holds — over the
  // fixed-roster event stream.
  EXPECT_TRUE(r.checks.checked);
  EXPECT_TRUE(r.checks.passed());
}

// ---------------------------------------------------------------------------
// Invariant applicability

TEST(InvariantApplicability, SwimOnlyInvariantsAutoDisableOffSwim) {
  const check::Spec all = check::Spec::all();
  const swim::Config cfg = swim::Config::lifeguard();

  const check::Checker swim_checker(all, cfg, 8, "swim");
  const auto swim_names = swim_checker.report().invariants;
  EXPECT_EQ(swim_names.size(), 8u);

  const std::vector<std::string> generic = {
      "legal-transitions", "convergence", "no-send-from-crashed",
      "partition-containment"};
  for (const char* backend : {"central", "central:miss=5", "static"}) {
    const check::Checker c(all, cfg, 8, backend);
    EXPECT_EQ(c.report().invariants, generic) << backend;
  }

  // Auto-disable is silent even when the Spec requests a swim-only invariant
  // by name — the same Spec must be runnable against every backend.
  check::Spec named = check::Spec::all();
  named.invariants = {"suspicion-bounds", "convergence"};
  const check::Checker named_central(named, cfg, 8, "central");
  const std::vector<std::string> only_convergence = {"convergence"};
  EXPECT_EQ(named_central.report().invariants, only_convergence);

  // ...but a misspelled name is still an error on any backend.
  check::Spec typo = check::Spec::all();
  typo.invariants = {"suspicion-bonds"};
  EXPECT_THROW(check::Checker(typo, cfg, 8, "central"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Trace-header round trip

TEST(TraceHeader, MembershipFieldRoundTripsThroughSaveAndLoad) {
  const harness::Scenario* central =
      harness::ScenarioRegistry::builtin().find("central-coordinator-crash");
  ASSERT_NE(central, nullptr);
  ASSERT_EQ(central->membership, "central:miss=4");

  check::TraceRecorder rec(*central, false, false);
  harness::run(*central, {&rec});
  std::ostringstream os;
  check::save_trace(rec.trace(), os);

  std::istringstream is(os.str());
  std::string error;
  const auto loaded = check::load_trace(is, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->header.membership, "central:miss=4");

  // scenario_from_header rebuilds a runnable scenario on the same backend;
  // replaying it reproduces the recorded stream bit for bit.
  const auto rebuilt = check::scenario_from_header(loaded->header, error);
  ASSERT_TRUE(rebuilt.has_value()) << error;
  EXPECT_EQ(rebuilt->membership, "central:miss=4");
  const check::ReplayResult replayed = check::replay(*rebuilt, *loaded);
  EXPECT_TRUE(replayed.matches) << replayed.divergence;
}

TEST(TraceHeader, SwimTracesStayByteIdenticalToPreBackendFormat) {
  // The header emits the membership key only when it differs from "swim", so
  // pre-existing recordings (and their digests) remain valid.
  harness::Scenario s;
  s.name = "swim-header";
  s.summary = "x";
  s.cluster_size = 4;
  s.quiesce = sec(2);
  s.run_length = sec(5);
  check::TraceRecorder rec(s, false, false);
  harness::run(s, {&rec});
  std::ostringstream os;
  check::save_trace(rec.trace(), os);
  EXPECT_EQ(os.str().find("membership"), std::string::npos);

  std::istringstream is(os.str());
  std::string error;
  const auto loaded = check::load_trace(is, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->header.membership, "swim");  // parse default
}

}  // namespace
}  // namespace lifeguard::membership
