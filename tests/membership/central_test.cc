// The central (coordinator-based heartbeat) backend: detection under member
// crashes, the coordinator's single-point-of-failure behavior, resilience
// under datagram loss, and the three-backend comparative campaign with
// jobs-level byte parity.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/spec.h"
#include "fault/fault.h"
#include "harness/campaign.h"
#include "harness/report.h"
#include "harness/scenario.h"

namespace lifeguard::membership {
namespace {

using harness::RunResult;
using harness::Scenario;

TEST(CentralBackend, DetectsBlockedMembersAndReAdmitsThem) {
  const Scenario* s =
      harness::ScenarioRegistry::builtin().find("central-crash-detect");
  ASSERT_NE(s, nullptr);
  const RunResult r = harness::run(*s);
  // All three blocked members are declared failed by the coordinator.
  // Latencies are measured from the post-quiesce timeline origin: the block
  // lands at +10 s, and with heartbeat interval = probe_interval (1 s) and
  // miss threshold 3 the verdict follows within a few heartbeats of +13 s.
  ASSERT_EQ(r.first_detect.size(), 3u);
  for (double d : r.first_detect) {
    EXPECT_GT(d, 12.0) << "declared before the miss deadline could elapse";
    EXPECT_LT(d, 16.0) << "detection took longer than the miss deadline";
  }
  // Each blocked member, unable to reach the coordinator, symmetrically
  // declares IT failed — an originated kFailed about a healthy node. These
  // are real FPs of the centralized design, reported by victims only.
  EXPECT_EQ(r.fp_events, 3);
  EXPECT_EQ(r.fp_healthy_events, 0);
  // The generic invariant suite holds across failure and re-admission.
  EXPECT_TRUE(r.checks.checked);
  EXPECT_TRUE(r.checks.passed());
}

TEST(CentralBackend, CoordinatorCrashHasAClusterWideBlastRadius) {
  const Scenario* s =
      harness::ScenarioRegistry::builtin().find("central-coordinator-crash");
  ASSERT_NE(s, nullptr);
  const RunResult r = harness::run(*s);
  // Members reach their miss threshold (4 × 1 s heartbeats past the +10 s
  // block) and declare the coordinator failed: one detection latency for the
  // single victim, measured from the post-quiesce timeline origin.
  ASSERT_EQ(r.first_detect.size(), 1u);
  EXPECT_GT(r.first_detect.front(), 13.0);
  EXPECT_LT(r.first_detect.front(), 18.0);
  // Meanwhile the isolated coordinator hears nobody and declares all 15
  // members failed — the centralized design's blast radius, visible as FP
  // events at the (victim) coordinator and nowhere else.
  EXPECT_EQ(r.fp_events, 15);
  EXPECT_EQ(r.fp_healthy_events, 0);
  EXPECT_TRUE(r.checks.checked);
  EXPECT_TRUE(r.checks.passed());
}

TEST(CentralBackend, InvariantsHoldUnderDatagramLoss) {
  // 25% loss both ways on a third of the cluster: heartbeats, acks and view
  // pushes all drop. Detection verdicts may flap — the invariant contract
  // (legal transitions, convergence once the loss clears) must not.
  Scenario s;
  s.name = "central-lossy";
  s.summary = "central under loss";
  s.cluster_size = 12;
  s.config = swim::Config::lifeguard();
  s.membership = "central";
  s.timeline.add(sec(5), sec(25), fault::Fault::link_loss(0.25, 0.25),
                 fault::VictimSelector::nodes({1, 4, 7, 10}));
  s.quiesce = sec(10);
  s.run_length = sec(60);
  s.checks = check::Spec::all();
  s.seed = 21;
  const RunResult r = harness::run(s);
  EXPECT_TRUE(r.checks.checked);
  EXPECT_TRUE(r.checks.passed())
      << (r.checks.violations.empty() ? std::string()
                                      : r.checks.violations.front().describe());
  EXPECT_GT(r.msgs_sent, 0);
}

TEST(CentralBackend, RunsAreBitIdenticalForAScenarioSeedPair) {
  const Scenario* s =
      harness::ScenarioRegistry::builtin().find("central-crash-detect");
  ASSERT_NE(s, nullptr);
  const RunResult a = harness::run(*s);
  const RunResult b = harness::run(*s);
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.fp_events, b.fp_events);
  EXPECT_EQ(a.first_detect, b.first_detect);
  EXPECT_EQ(a.full_dissem, b.full_dissem);
}

// ---------------------------------------------------------------------------
// The three-backend comparative campaign

harness::Campaign comparative_campaign(int jobs) {
  harness::Campaign c;
  c.name = "backend-compare";
  Scenario base;
  base.name = "backend-compare-base";
  base.summary = "one fault schedule, three detectors";
  base.cluster_size = 12;
  base.config = swim::Config::lifeguard();
  base.timeline.add(sec(5), sec(15), fault::Fault::block(),
                    fault::VictimSelector::nodes({3, 8}));
  base.quiesce = sec(10);
  base.run_length = sec(40);
  base.checks = check::Spec::all();
  c.base = base;
  c.axes = {harness::Axis::backend({"swim", "central", "static"})};
  c.repetitions = 2;
  c.jobs = jobs;
  c.base_seed = 99;
  return c;
}

TEST(ComparativeCampaign, BackendAxisPairsRunsAndSeparatesTheBackends) {
  const harness::CampaignResult r = harness::run(comparative_campaign(2));
  ASSERT_EQ(r.points.size(), 3u);
  ASSERT_EQ(r.trials.size(), 6u);
  EXPECT_EQ(r.axis_names, std::vector<std::string>{"membership"});

  const harness::PointStats& swim = r.points[0];
  const harness::PointStats& central = r.points[1];
  const harness::PointStats& fixed = r.points[2];
  EXPECT_EQ(swim.labels, std::vector<std::string>{"swim"});
  EXPECT_EQ(central.labels, std::vector<std::string>{"central"});
  EXPECT_EQ(fixed.labels, std::vector<std::string>{"static"});

  // Axis::backend uses salt 0 for every point (paired runs): each backend
  // faces the identical derived seed at each repetition.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(r.trials[0 * 2 + i].seed, r.trials[1 * 2 + i].seed);
    EXPECT_EQ(r.trials[1 * 2 + i].seed, r.trials[2 * 2 + i].seed);
  }

  // Both detectors find the two blocked members in every trial...
  EXPECT_EQ(swim.first_detect.count(), 4u);
  EXPECT_EQ(central.first_detect.count(), 4u);
  // ...the control detects nothing and sends nothing...
  EXPECT_EQ(fixed.first_detect.count(), 0u);
  EXPECT_DOUBLE_EQ(fixed.msgs.mean, 0.0);
  EXPECT_DOUBLE_EQ(fixed.fp.mean, 0.0);
  // ...and both real protocols carry nonzero message load.
  EXPECT_GT(swim.msgs.mean, 0.0);
  EXPECT_GT(central.msgs.mean, 0.0);
  // Every checked trial is invariant-clean on every backend.
  for (const harness::PointStats& p : r.points) {
    EXPECT_EQ(p.checked_trials, 2);
    EXPECT_EQ(p.violating_trials, 0) << p.labels.front();
  }
}

TEST(ComparativeCampaign, ArtifactsAreByteIdenticalAcrossJobsLevels) {
  auto execute = [](int jobs, std::string& jsonl_text, std::string& csv_text) {
    std::ostringstream jsonl_out, csv_out;
    harness::JsonlReporter jsonl(jsonl_out);
    harness::CsvReporter csv(csv_out);
    const harness::CampaignResult r =
        harness::run(comparative_campaign(jobs), {&jsonl, &csv});
    jsonl_text = jsonl_out.str();
    csv_text = csv_out.str();
    return r;
  };
  std::string jsonl1, csv1, jsonl8, csv8;
  const harness::CampaignResult seq = execute(1, jsonl1, csv1);
  const harness::CampaignResult par = execute(8, jsonl8, csv8);
  EXPECT_EQ(jsonl1, jsonl8);
  EXPECT_EQ(csv1, csv8);
  ASSERT_EQ(seq.trials.size(), par.trials.size());
  for (std::size_t i = 0; i < seq.trials.size(); ++i) {
    EXPECT_EQ(seq.trials[i].seed, par.trials[i].seed);
    EXPECT_EQ(seq.trials[i].result.msgs_sent, par.trials[i].result.msgs_sent);
    EXPECT_EQ(seq.trials[i].result.first_detect,
              par.trials[i].result.first_detect);
  }
}

}  // namespace
}  // namespace lifeguard::membership
