// Trace record–replay: golden equality between a live run and its replay,
// the JSONL round-trip, and the --fault-grammar entry specs the header is
// serialized with.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "check/replay.h"
#include "check/trace.h"
#include "fault/fault.h"
#include "harness/scenario.h"

namespace lifeguard {
namespace {

using harness::RunResult;
using harness::Scenario;
using harness::ScenarioRegistry;

void expect_same_metrics(const RunResult& live, const RunResult& replayed) {
  EXPECT_EQ(live.scenario_name, replayed.scenario_name);
  EXPECT_EQ(live.cluster_size, replayed.cluster_size);
  EXPECT_EQ(live.victims, replayed.victims);
  EXPECT_EQ(live.fp_events, replayed.fp_events);
  EXPECT_EQ(live.fp_healthy_events, replayed.fp_healthy_events);
  EXPECT_EQ(live.msgs_sent, replayed.msgs_sent);
  EXPECT_EQ(live.bytes_sent, replayed.bytes_sent);
  EXPECT_EQ(live.first_detect, replayed.first_detect);
  EXPECT_EQ(live.full_dissem, replayed.full_dissem);
}

/// Record `name`, persist the trace to disk, reload it, rebuild the
/// scenario from the header alone, replay, and pin bit-for-bit equality of
/// both the event stream and the paper metrics.
void golden_roundtrip(const std::string& name) {
  const Scenario* base = ScenarioRegistry::builtin().find(name);
  ASSERT_NE(base, nullptr) << name;
  Scenario s = *base;
  s.checks = check::Spec::all();

  check::TraceRecorder recorder(s);
  const RunResult live = harness::run(s, {&recorder});
  ASSERT_TRUE(live.checks.passed()) << name;

  std::filesystem::create_directories("traces");
  const std::string path = "traces/golden-" + name + ".trace.jsonl";
  std::string error;
  ASSERT_TRUE(check::save_trace_file(recorder.trace(), path, error)) << error;

  const auto loaded = check::load_trace_file(path, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->events, recorder.trace().events);
  EXPECT_EQ(loaded->header.timeline, recorder.trace().header.timeline);

  const auto rebuilt = check::scenario_from_header(loaded->header, error);
  ASSERT_TRUE(rebuilt.has_value()) << error;
  const check::ReplayResult r = check::replay(*rebuilt, *loaded);
  EXPECT_TRUE(r.matches) << r.divergence;
  expect_same_metrics(live, r.result);
  EXPECT_TRUE(r.result.checks.passed());
  std::remove(path.c_str());
}

// The paper's interval workload (Table IV grid point) and the heaviest
// composed network-fault scenario — one process-level, one network-level.
TEST(GoldenTrace, PaperIntervalScenarioReplaysBitForBit) {
  golden_roundtrip("table4-false-positives");
}

TEST(GoldenTrace, PacketChaosScenarioReplaysBitForBit) {
  golden_roundtrip("packet-chaos");
}

// A perturbed seed must be caught — the stream comparison is the whole
// point of replay verification.
TEST(GoldenTrace, SeedPerturbationDiverges) {
  Scenario s = *ScenarioRegistry::builtin().find("partition-split-heal");
  s.cluster_size = 10;
  s.anomaly.victims = 4;
  s.run_length = sec(80);

  check::TraceRecorder recorder(s);
  harness::run(s, {&recorder});

  Scenario other = s;
  other.seed = s.seed + 1;
  const check::ReplayResult r = check::replay(other, recorder.trace());
  EXPECT_FALSE(r.matches);
  EXPECT_FALSE(r.divergence.empty());
}

TEST(TraceFormat, SaveLoadRoundTripsHeaderAndEvents) {
  Scenario s = *ScenarioRegistry::builtin().find("lossy-flapping");
  s.checks = check::Spec::all();
  s.checks.suspicion_cap = msec(123);
  s.checks.invariants = {"suspicion-bounds", "convergence"};
  check::Trace t;
  t.header = check::make_header(s);
  check::TraceEvent e;
  e.at = TimePoint{1234567};
  e.kind = check::TraceEventKind::kSuspect;
  e.node = 3;
  e.peer = 7;
  e.origin = 3;
  e.incarnation = 2;
  e.originated = true;
  t.events.push_back(e);
  e.kind = check::TraceEventKind::kFaultStart;
  e.node = -1;
  e.peer = 1;
  e.origin = -1;
  e.incarnation = 0;
  e.originated = false;
  t.events.push_back(e);

  std::stringstream buf;
  check::save_trace(t, buf);
  std::string error;
  const auto loaded = check::load_trace(buf, error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->events, t.events);
  EXPECT_EQ(loaded->header.scenario, s.name);
  EXPECT_EQ(loaded->header.seed, s.seed);
  EXPECT_EQ(loaded->header.cluster_size, s.cluster_size);
  EXPECT_EQ(loaded->header.config_name, "Lifeguard");
  EXPECT_EQ(loaded->header.timeline,
            check::timeline_specs(s.effective_timeline()));
  EXPECT_TRUE(loaded->header.checks.enabled);
  EXPECT_EQ(loaded->header.checks.suspicion_cap, msec(123));
  EXPECT_EQ(loaded->header.checks.invariants,
            (std::vector<std::string>{"suspicion-bounds", "convergence"}));
}

TEST(TraceFormat, TruncatedTraceIsRejected) {
  Scenario s = *ScenarioRegistry::builtin().find("steady-state");
  check::Trace t;
  t.header = check::make_header(s);
  std::stringstream buf;
  check::save_trace(t, buf);
  std::string full = buf.str();
  // Drop the footer line.
  full.erase(full.rfind("{\"type\":\"end\""));
  std::stringstream cut(full);
  std::string error;
  EXPECT_FALSE(check::load_trace(cut, error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

// Every fault kind's entry spec must reconstruct the entry exactly through
// the public --fault grammar.
TEST(TraceFormat, EntrySpecsRoundTripEveryFaultKind) {
  sim::StressParams stress;
  stress.block_min = msec(1500);
  stress.block_max = sec(30);
  stress.run_min = msec(2);
  stress.run_max = msec(70);
  fault::Timeline tl;
  tl.add(sec(1), sec(16), fault::Fault::block(),
         fault::VictimSelector::uniform(4));
  tl.add(sec(2), sec(60), fault::Fault::interval_block(msec(16384), msec(4)),
         fault::VictimSelector::nodes({1, 3, 5}));
  tl.add(sec(3), sec(45), fault::Fault::stressed(stress),
         fault::VictimSelector::fraction_of(0.25));
  tl.add(sec(4), sec(30), fault::Fault::flapping(sec(8), msec(100)),
         fault::VictimSelector::island(4, 2));
  tl.add(sec(5), sec(50), fault::Fault::churn(sec(10), sec(20)),
         fault::VictimSelector::uniform(3));
  tl.add(sec(6), sec(20), fault::Fault::partition(),
         fault::VictimSelector::uniform(5));
  tl.add(sec(7), sec(40), fault::Fault::link_loss(0.3, 0.15),
         fault::VictimSelector::fraction_of(0.5));
  tl.add(sec(8), sec(35), fault::Fault::latency(msec(30), msec(20)),
         fault::VictimSelector::uniform(6));
  tl.add(sec(9), sec(25), fault::Fault::duplicate(0.25),
         fault::VictimSelector::uniform(2));
  tl.add(sec(10), sec(15), fault::Fault::reorder(0.3, msec(200)),
         fault::VictimSelector::uniform(2));

  const std::vector<std::string> specs = check::timeline_specs(tl);
  std::string error;
  const auto back = check::timeline_from_specs(specs, error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->size(), tl.size());
  // Round-trip fidelity: re-rendering the parsed entries must reproduce the
  // specs byte for byte (the entry fields have no independent operator==).
  EXPECT_EQ(check::timeline_specs(*back), specs);
  EXPECT_EQ(back->summary(), tl.summary());
}

// A config that deviates from its preset beyond the suspicion tuning must
// be recorded as "Custom" — replay-from-file would otherwise silently
// rebuild the wrong run and blame the divergence on the engine.
TEST(TraceFormat, HandTunedConfigIsRecordedAsCustomAndRejectedByReplay) {
  Scenario s = *ScenarioRegistry::builtin().find("steady-state");
  s.config.probe_interval = msec(500);  // not representable in the header
  const check::TraceHeader header = check::make_header(s);
  EXPECT_EQ(header.config_name, "Custom");
  std::string error;
  EXPECT_FALSE(check::scenario_from_header(header, error).has_value());
  EXPECT_NE(error.find("Custom"), std::string::npos);

  // table7's alpha/beta tuning IS representable: stays a preset.
  const Scenario* t7 = ScenarioRegistry::builtin().find("table7-alpha-beta");
  ASSERT_NE(t7, nullptr);
  EXPECT_EQ(check::make_header(*t7).config_name, "Lifeguard");
}

TEST(TraceFormat, NodeIndexParsing) {
  EXPECT_EQ(check::node_index_of("node-0"), 0);
  EXPECT_EQ(check::node_index_of("node-128"), 128);
  EXPECT_EQ(check::node_index_of("node-"), -1);
  EXPECT_EQ(check::node_index_of("peer-3"), -1);
  EXPECT_EQ(check::node_index_of("node-12x"), -1);
}

TEST(TraceFormat, SpecValidationCatchesBadKnobs) {
  check::Spec spec = check::Spec::all();
  spec.timeout_slack = 1.5;
  spec.max_violations = 0;
  spec.invariants = {"convergence", "convergence"};
  const auto errors = spec.validate();
  EXPECT_EQ(errors.size(), 3u);
}

}  // namespace
}  // namespace lifeguard
