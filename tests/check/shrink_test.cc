// Delta-debugging shrinker property tests.
//
// The plant: a check::Spec whose suspicion_cap sits far below the
// protocol's real timeout floor, so any suspicion that runs to completion
// violates suspicion-bounds. Random valid fault timelines around one
// guaranteed block entry then reproduce the violation, and shrink() must
// strip the noise down to a seed-stable reproducer of at most two entries —
// identically at jobs=1 and jobs=8 — whose trace replays the violation bit
// for bit.
#include <gtest/gtest.h>

#include "check/replay.h"
#include "check/shrink.h"
#include "check/trace.h"
#include "common/rng.h"
#include "harness/scenario.h"

namespace lifeguard {
namespace {

using harness::Scenario;

/// A scenario whose run must violate suspicion-bounds: a 20 s block of 3
/// members makes healthy peers' suspicions run to completion (~5.4 s at
/// n=12), and the planted 1 ms cap flags every one of them.
Scenario planted_scenario(std::uint64_t seed) {
  Scenario s;
  s.name = "planted-violation";
  s.summary = "seeded random timeline with an unsatisfiable suspicion cap";
  s.cluster_size = 12;
  s.config = swim::Config::lifeguard();
  s.quiesce = sec(10);
  s.run_length = sec(30);
  s.seed = seed;
  s.checks = check::Spec::all();
  s.checks.suspicion_cap = msec(1);  // the planted defect: cap below spec
  s.timeline.add(sec(2), sec(20), fault::Fault::block(),
                 fault::VictimSelector::uniform(3));
  return s;
}

/// Pad the guaranteed reproducer with random-but-valid noise entries the
/// shrinker should strip away.
Scenario random_padded_scenario(std::uint64_t seed) {
  Scenario s = planted_scenario(seed);
  Rng rng(seed * 1000003 + 17);
  const int extras = 2 + static_cast<int>(rng.uniform_range(0, 3));  // 2..4
  for (int i = 0; i < extras; ++i) {
    const Duration at = msec(rng.uniform_range(0, 10000));
    const Duration dur = msec(1000 + rng.uniform_range(0, 20000));
    const int victims = 1 + static_cast<int>(rng.uniform_range(0, 4));
    switch (rng.uniform_range(0, 4)) {
      case 0:
        s.timeline.add(at, dur, fault::Fault::link_loss(0.2, 0.2),
                       fault::VictimSelector::uniform(victims));
        break;
      case 1:
        s.timeline.add(at, dur, fault::Fault::latency(msec(20), msec(10)),
                       fault::VictimSelector::uniform(victims));
        break;
      case 2:
        s.timeline.add(at, dur, fault::Fault::duplicate(0.2),
                       fault::VictimSelector::uniform(victims));
        break;
      default:
        s.timeline.add(at, dur,
                       fault::Fault::interval_block(sec(4), msec(500)),
                       fault::VictimSelector::uniform(victims));
        break;
    }
  }
  EXPECT_TRUE(s.validate().empty());
  return s;
}

TEST(Shrink, PlantedViolationIsDetected) {
  const Scenario s = planted_scenario(7);
  const harness::RunResult r = harness::run(s);
  ASSERT_TRUE(r.checks.checked);
  EXPECT_GT(r.checks.total_violations, 0);
  const auto violated = r.checks.violated_invariants();
  EXPECT_NE(std::find(violated.begin(), violated.end(), "suspicion-bounds"),
            violated.end());
}

TEST(Shrink, ConvergesToAMinimalSeedStableReproducerAtAnyJobsLevel) {
  for (const std::uint64_t seed : {11u, 29u}) {
    const Scenario padded = random_padded_scenario(seed);
    ASSERT_GE(padded.timeline.size(), 3u);

    check::ShrinkOptions seq;
    seq.jobs = 1;
    check::ShrinkOptions par;
    par.jobs = 8;
    const check::ShrinkResult a = check::shrink(padded, seq);
    const check::ShrinkResult b = check::shrink(padded, par);

    ASSERT_TRUE(a.reproduced) << "seed " << seed;
    ASSERT_TRUE(b.reproduced) << "seed " << seed;

    // jobs-invariance: the accepted reduction chain — and therefore the
    // minimal scenario — is identical.
    EXPECT_EQ(a.log, b.log) << "seed " << seed;
    EXPECT_EQ(check::timeline_specs(a.minimal.timeline),
              check::timeline_specs(b.minimal.timeline))
        << "seed " << seed;
    EXPECT_EQ(a.minimal.run_length, b.minimal.run_length);

    // Minimality: the noise entries are gone.
    EXPECT_LE(a.minimal.timeline.size(), 2u)
        << "seed " << seed << ": " << a.minimal.timeline.summary();
    EXPECT_GE(a.minimal.timeline.size(), 1u);

    // The reproducer still fails the same invariant.
    const auto violated = a.minimal_result.checks.violated_invariants();
    EXPECT_NE(
        std::find(violated.begin(), violated.end(), "suspicion-bounds"),
        violated.end());

    // And its trace replays the violation bit for bit.
    check::TraceRecorder recorder(a.minimal);
    const harness::RunResult live = harness::run(a.minimal, {&recorder});
    EXPECT_EQ(live.checks, a.minimal_result.checks);
    const check::ReplayResult replayed =
        check::replay(a.minimal, recorder.trace());
    EXPECT_TRUE(replayed.matches) << replayed.divergence;
    EXPECT_EQ(replayed.result.checks, live.checks);
    EXPECT_GT(replayed.result.checks.total_violations, 0);
  }
}

TEST(Shrink, HealthyScenarioHasNothingToShrink) {
  Scenario s = planted_scenario(3);
  s.checks.suspicion_cap = Duration{};  // no plant: the run is clean
  const check::ShrinkResult r = check::shrink(s);
  EXPECT_FALSE(r.reproduced);
  EXPECT_TRUE(r.target_invariants.empty());
  EXPECT_EQ(r.runs, 1);
}

// An AnomalyPlan scenario is materialized into an explicit timeline before
// shrinking, so the legacy single-slot shape shrinks too.
TEST(Shrink, AnomalyPlanScenariosAreMaterialized) {
  Scenario s;
  s.name = "legacy-shape";
  s.cluster_size = 12;
  s.config = swim::Config::lifeguard();
  s.quiesce = sec(10);
  s.run_length = sec(30);
  s.anomaly = harness::AnomalyPlan::threshold(3, sec(20));
  s.checks = check::Spec::all();
  s.checks.suspicion_cap = msec(1);
  const check::ShrinkResult r = check::shrink(s);
  ASSERT_TRUE(r.reproduced);
  EXPECT_TRUE(r.minimal.timeline.size() >= 1);
  EXPECT_EQ(r.minimal.anomaly.kind, harness::AnomalyKind::kNone);
}

}  // namespace
}  // namespace lifeguard
