// Every cataloged scenario is a property test: the full built-in invariant
// suite must hold over its entire run. This is the net that catches protocol
// bugs the end-of-run metric assertions cannot see (a mid-run safety
// violation that later self-corrects still fails here). A violating scenario
// writes a replayable trace under traces/ so CI can attach the reproducer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "check/spec.h"
#include "check/trace.h"
#include "harness/campaign.h"
#include "harness/report.h"
#include "harness/scenario.h"
#include "membership/backend.h"

namespace lifeguard {
namespace {

using harness::RunResult;
using harness::Scenario;
using harness::ScenarioRegistry;

TEST(RegistryInvariants, AllScenariosPassTheFullSuite) {
  const auto& catalog = ScenarioRegistry::builtin().all();
  ASSERT_EQ(catalog.size(), 26u) << "catalog drifted — update this suite";

  // The big-* tier (n >= 1000) runs minutes of wall time per scenario; it
  // has its own coverage (tests/big/big_scenario_test.cc runs one big
  // scenario under the full suite) and is exercised at full scale out of
  // band. Everything else — including the live-* entries, which are
  // backend-agnostic descriptors and must hold in-sim too — runs here.
  std::vector<Scenario> all;
  for (const Scenario& s : catalog) {
    if (s.cluster_size < 1000) all.push_back(s);
  }
  ASSERT_EQ(all.size(), 22u);

  struct Outcome {
    std::string name;
    std::string membership;
    check::RunReport report;
    check::Trace trace;
  };
  std::vector<Outcome> outcomes(all.size());

  // Scenarios are independent deterministic runs; spread them over the
  // machine exactly like campaign trials.
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned w = 0; w < hw; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= all.size()) return;
        Scenario s = all[i];
        s.checks = check::Spec::all();
        check::TraceRecorder recorder(s);
        const RunResult r = harness::run(s, {&recorder});
        outcomes[i] = {s.name, s.membership, r.checks, recorder.take()};
      }
    });
  }
  for (auto& th : pool) th.join();

  for (const Outcome& o : outcomes) {
    EXPECT_TRUE(o.report.checked) << o.name;
    // Swim scenarios run the full suite; non-swim backends run the four
    // protocol-generic invariants (swim-only ones auto-disable — see
    // docs/membership.md).
    const std::size_t expected =
        membership::base_name(o.membership) == "swim"
            ? check::builtin_invariant_names().size()
            : 4u;
    EXPECT_EQ(o.report.invariants.size(), expected) << o.name;
    if (o.report.total_violations == 0) continue;
    std::filesystem::create_directories("traces");
    const std::string path = "traces/" + o.name + ".trace.jsonl";
    std::string error;
    check::save_trace_file(o.trace, path, error);
    std::ostringstream detail;
    for (const check::Violation& v : o.report.violations) {
      detail << "\n  " << v.describe();
    }
    ADD_FAILURE() << o.name << " violated "
                  << o.report.total_violations
                  << " invariant(s); trace saved to " << path << detail.str();
  }
}

// Checking is a pure observation: enabling the suite must not change a
// single metric of the run (no Rng draws, no protocol interference).
TEST(RegistryInvariants, CheckingDoesNotPerturbTheRun) {
  const Scenario* base = ScenarioRegistry::builtin().find("table5-latency");
  ASSERT_NE(base, nullptr);

  const RunResult plain = harness::run(*base);
  Scenario checked = *base;
  checked.checks = check::Spec::all();
  const RunResult observed = harness::run(checked);

  EXPECT_EQ(plain.fp_events, observed.fp_events);
  EXPECT_EQ(plain.fp_healthy_events, observed.fp_healthy_events);
  EXPECT_EQ(plain.msgs_sent, observed.msgs_sent);
  EXPECT_EQ(plain.bytes_sent, observed.bytes_sent);
  EXPECT_EQ(plain.victims, observed.victims);
  EXPECT_EQ(plain.first_detect, observed.first_detect);
  EXPECT_EQ(plain.full_dissem, observed.full_dissem);
  EXPECT_FALSE(plain.checks.checked);
  EXPECT_TRUE(observed.checks.checked);
  EXPECT_TRUE(observed.checks.passed());
}

// Spec validation is wired through Scenario::validate — an unknown
// invariant name is rejected before the engine runs.
TEST(RegistryInvariants, UnknownInvariantNameFailsValidation) {
  Scenario s = *ScenarioRegistry::builtin().find("steady-state");
  s.checks.enabled = true;
  s.checks.invariants = {"convergence", "no-such-invariant"};
  const auto errors = s.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("no-such-invariant"), std::string::npos);
  EXPECT_THROW(harness::run(s), harness::ScenarioError);
}

TEST(RegistryInvariants, NarrowedSpecRunsOnlyTheNamedInvariants) {
  Scenario s = *ScenarioRegistry::builtin().find("steady-state");
  s.run_length = sec(30);
  s.checks.enabled = true;
  s.checks.invariants = {"incarnation-monotonic", "legal-transitions"};
  const RunResult r = harness::run(s);
  ASSERT_TRUE(r.checks.checked);
  EXPECT_EQ(r.checks.invariants,
            (std::vector<std::string>{"incarnation-monotonic",
                                      "legal-transitions"}));
  EXPECT_TRUE(r.checks.passed());
}

// Campaigns carry per-trial verdicts into the JSONL/CSV artifacts, and the
// artifacts stay byte-identical at every jobs level.
TEST(RegistryInvariants, CampaignVerdictArtifactsAreJobsInvariant) {
  harness::Campaign c;
  c.name = "checked-campaign";
  c.base = *ScenarioRegistry::builtin().find("partition-split-heal");
  c.base.cluster_size = 12;
  c.base.anomaly.victims = 4;
  c.base.run_length = sec(90);
  c.base.checks = check::Spec::all();
  c.repetitions = 4;

  auto artifacts = [&](int jobs) {
    harness::Campaign run_c = c;
    run_c.jobs = jobs;
    std::ostringstream jsonl, csv;
    harness::JsonlReporter jr(jsonl);
    harness::CsvReporter cr(csv);
    const harness::CampaignResult r =
        harness::run(run_c, {&jr, &cr});
    EXPECT_EQ(r.points.front().checked_trials, 4);
    EXPECT_EQ(r.points.front().violating_trials, 0);
    EXPECT_EQ(r.points.front().violations.count, 4);
    EXPECT_EQ(r.points.front().violations.mean, 0.0);
    return std::pair{jsonl.str(), csv.str()};
  };

  const auto seq = artifacts(1);
  const auto par = artifacts(4);
  EXPECT_EQ(seq.first, par.first);
  EXPECT_EQ(seq.second, par.second);
  EXPECT_NE(seq.first.find("\"checked\":true"), std::string::npos);
  EXPECT_NE(seq.first.find("\"violations\":0"), std::string::npos);
  EXPECT_NE(seq.second.find(",checked,violations"), std::string::npos);
}

}  // namespace
}  // namespace lifeguard
