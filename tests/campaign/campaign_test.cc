#include "harness/campaign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/sweep.h"

namespace lifeguard::harness {
namespace {

// A deliberately small campaign: 4 grid points x 2 reps of a 12-node
// cluster, seconds of virtual time — fast enough for TSan yet exercising
// the full grid/seed/aggregation path.
Campaign tiny_campaign() {
  Campaign c;
  c.name = "tiny";
  Scenario s;
  s.name = "tiny-base";
  s.summary = "campaign test fixture";
  s.cluster_size = 12;
  s.quiesce = sec(5);
  s.config = swim::Config::lifeguard();
  s.anomaly = AnomalyPlan::cycling(2, msec(2000), msec(500));
  s.run_length = sec(8);
  c.base = s;
  c.axes = {Axis::victims({1, 2}),
            Axis::duration({msec(1000), msec(3000)})};
  c.repetitions = 2;
  c.base_seed = 99;
  return c;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

void expect_same_metrics(const Metrics& a, const Metrics& b) {
  ASSERT_EQ(a.counters().size(), b.counters().size());
  for (const auto& [k, c] : a.counters()) {
    EXPECT_EQ(c.value(), b.counter_value(k)) << "counter " << k;
  }
  ASSERT_EQ(a.histograms().size(), b.histograms().size());
  for (const auto& [k, h] : a.histograms()) {
    const auto it = b.histograms().find(k);
    ASSERT_NE(it, b.histograms().end()) << "histogram " << k;
    EXPECT_EQ(h.samples(), it->second.samples()) << "histogram " << k;
  }
}

void expect_same_trial(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.trial_index, b.trial_index);
  EXPECT_EQ(a.point_index, b.point_index);
  EXPECT_EQ(a.rep, b.rep);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.result.scenario_name, b.result.scenario_name);
  EXPECT_EQ(a.result.cluster_size, b.result.cluster_size);
  EXPECT_EQ(a.result.victims, b.result.victims);
  EXPECT_EQ(a.result.fp_events, b.result.fp_events);
  EXPECT_EQ(a.result.fp_healthy_events, b.result.fp_healthy_events);
  EXPECT_EQ(a.result.first_detect, b.result.first_detect);
  EXPECT_EQ(a.result.full_dissem, b.result.full_dissem);
  EXPECT_EQ(a.result.msgs_sent, b.result.msgs_sent);
  EXPECT_EQ(a.result.bytes_sent, b.result.bytes_sent);
  expect_same_metrics(a.result.metrics, b.result.metrics);
}

TEST(TrialSeed, MatchesLegacyRunSeed) {
  // Golden values captured from the pre-campaign run_seed() implementation
  // (an independent build of the old SplitMix64 chain, not this code): they
  // pin the seed derivation so paper-grid trials stay bit-identical to the
  // historical sequential loops. run_seed() itself now delegates to
  // trial_seed(), so comparing the two functions alone would be vacuous.
  EXPECT_EQ(trial_seed(42, {8, 16384000, 4000}, 3), 2716496835168647550ULL);
  EXPECT_EQ(trial_seed(7, {1, 512000, 256000}, 0), 13209086244567694092ULL);
  EXPECT_EQ(run_seed(42, 8, 16384000, 4000, 3), 2716496835168647550ULL);
  // The threshold sweep keeps the legacy i = 0 coordinate via a constant
  // single-point axis, so its chain is run_seed(base, c, d, 0, rep) too.
  EXPECT_EQ(trial_seed(42, {4, 16384000, 0}, 2), 7500441873338434338ULL);
}

TEST(TrialSeed, SensitiveToEveryCoordinate) {
  const std::uint64_t base = trial_seed(42, {1, 2}, 0);
  EXPECT_NE(base, trial_seed(43, {1, 2}, 0));   // base seed
  EXPECT_NE(base, trial_seed(42, {2, 2}, 0));   // first salt
  EXPECT_NE(base, trial_seed(42, {1, 3}, 0));   // second salt
  EXPECT_NE(base, trial_seed(42, {1, 2}, 1));   // repetition
  EXPECT_NE(base, trial_seed(42, {2, 1}, 0));   // salt order matters
  // Deterministic: same inputs, same seed.
  EXPECT_EQ(base, trial_seed(42, {1, 2}, 0));
}

TEST(ExpandGrid, CartesianProductLastAxisFastest) {
  Campaign c = tiny_campaign();
  const auto grid = expand_grid(c);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].labels, (std::vector<std::string>{"1", "1000ms"}));
  EXPECT_EQ(grid[1].labels, (std::vector<std::string>{"1", "3000ms"}));
  EXPECT_EQ(grid[2].labels, (std::vector<std::string>{"2", "1000ms"}));
  EXPECT_EQ(grid[3].labels, (std::vector<std::string>{"2", "3000ms"}));
  EXPECT_EQ(grid[2].scenario.anomaly.victims, 2);
  EXPECT_EQ(grid[1].scenario.anomaly.duration, msec(3000));
  EXPECT_EQ(grid[3].salts,
            (std::vector<std::uint64_t>{2, 3000000}));
  for (const auto& p : grid) EXPECT_TRUE(p.scenario.validate().empty());
}

TEST(ExpandGrid, NoAxesYieldsSingleBasePoint) {
  Campaign c = tiny_campaign();
  c.axes.clear();
  const auto grid = expand_grid(c);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid[0].labels.empty());
  EXPECT_EQ(grid[0].scenario.anomaly.victims, 2);  // untouched base
}

TEST(ExpandGrid, ConfigAxisIsSeedPaired) {
  Campaign c = tiny_campaign();
  c.axes = {Axis::victims({2}),
            Axis::configs({{"SWIM", swim::Config::swim_baseline()},
                           {"Lifeguard", swim::Config::lifeguard()}})};
  const auto grid = expand_grid(c);
  ASSERT_EQ(grid.size(), 2u);
  // Same salts -> both configurations face the same derived trial seed.
  EXPECT_EQ(grid[0].salts, grid[1].salts);
  EXPECT_EQ(trial_seed(c.base_seed, grid[0].salts, 1),
            trial_seed(c.base_seed, grid[1].salts, 1));
  EXPECT_FALSE(grid[0].scenario.config.lha_probe);
  EXPECT_TRUE(grid[1].scenario.config.lha_probe);
}

TEST(Campaign, ValidateReportsActionableDefects) {
  Campaign c = tiny_campaign();
  c.repetitions = 0;
  c.axes.push_back(Axis::custom("victims", {{"x", 0, {}}}));  // dup name
  c.axes.push_back(Axis::custom("empty", {}));
  auto errors = c.validate();
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_NE(errors[0].find("repetitions"), std::string::npos);
  EXPECT_NE(errors[1].find("duplicate axis name 'victims'"),
            std::string::npos);
  EXPECT_NE(errors[2].find("'empty' has no points"), std::string::npos);

  // Per-grid-point scenario defects name the offending coordinates.
  Campaign bad = tiny_campaign();
  bad.axes = {Axis::victims({2, 64})};  // 64 > cluster_size 12
  errors = bad.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("grid point 1 (victims=64)"), std::string::npos);
  EXPECT_NE(errors[0].find("anomaly.victims (64)"), std::string::npos);

  EXPECT_THROW(run(bad), ScenarioError);
}

TEST(CampaignDeterminism, ResultsAndArtifactsIdenticalAcrossJobs) {
  Campaign c = tiny_campaign();
  c.keep_trial_metrics = true;

  auto execute = [&](int jobs, std::string& jsonl_text, std::string& csv_text) {
    Campaign run_c = c;
    run_c.jobs = jobs;
    std::ostringstream jsonl_out, csv_out;
    JsonlReporter jsonl(jsonl_out);
    CsvReporter csv(csv_out);
    const CampaignResult r = run(run_c, {&jsonl, &csv});
    jsonl_text = jsonl_out.str();
    csv_text = csv_out.str();
    return r;
  };

  std::string jsonl1, csv1, jsonl8, csv8;
  const CampaignResult seq = execute(1, jsonl1, csv1);
  const CampaignResult par = execute(8, jsonl8, csv8);

  ASSERT_EQ(seq.trials.size(), 8u);
  ASSERT_EQ(par.trials.size(), seq.trials.size());
  for (std::size_t i = 0; i < seq.trials.size(); ++i) {
    expect_same_trial(seq.trials[i], par.trials[i]);
  }

  // Aggregates fold in trial-index order, so they match exactly too.
  ASSERT_EQ(par.points.size(), seq.points.size());
  for (std::size_t p = 0; p < seq.points.size(); ++p) {
    EXPECT_EQ(seq.points[p].labels, par.points[p].labels);
    EXPECT_EQ(seq.points[p].trials, par.points[p].trials);
    EXPECT_DOUBLE_EQ(seq.points[p].fp.mean, par.points[p].fp.mean);
    EXPECT_DOUBLE_EQ(seq.points[p].fp.stddev, par.points[p].fp.stddev);
    EXPECT_DOUBLE_EQ(seq.points[p].msgs.mean, par.points[p].msgs.mean);
    EXPECT_EQ(seq.points[p].first_detect.samples(),
              par.points[p].first_detect.samples());
  }

  // Streamed artifacts are byte-identical regardless of parallelism.
  EXPECT_EQ(jsonl1, jsonl8);
  EXPECT_EQ(csv1, csv8);
}

TEST(CampaignReporters, JsonlAndCsvShape) {
  Campaign c = tiny_campaign();
  c.jobs = 2;
  std::ostringstream jsonl_out, csv_out;
  JsonlReporter jsonl(jsonl_out);
  CsvReporter csv(csv_out);
  const CampaignResult r = run(c, {&jsonl, &csv});

  // JSONL: one campaign header, one line per trial, one aggregate per point.
  const auto jl = lines_of(jsonl_out.str());
  ASSERT_EQ(jl.size(), 1u + r.trials.size() + r.points.size());
  EXPECT_NE(jl[0].find("\"type\":\"campaign\""), std::string::npos);
  EXPECT_NE(jl[0].find("\"name\":\"tiny\""), std::string::npos);
  EXPECT_NE(jl[0].find("\"axes\":[\"victims\",\"duration\"]"),
            std::string::npos);
  EXPECT_NE(jl[0].find("\"trials\":8"), std::string::npos);
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    const std::string& line = jl[1 + i];
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\"trial\""), std::string::npos);
    // on_trial() is index-ordered, so line i reports trial i.
    EXPECT_NE(line.find("\"trial\":" + std::to_string(i) + ","),
              std::string::npos);
    EXPECT_NE(line.find("\"coords\":{\"victims\":\""), std::string::npos);
    EXPECT_NE(line.find("\"seed\":\"" + std::to_string(r.trials[i].seed) +
                        "\""),
              std::string::npos);
  }
  for (std::size_t p = 0; p < r.points.size(); ++p) {
    const std::string& line = jl[1 + r.trials.size() + p];
    EXPECT_NE(line.find("\"type\":\"aggregate\""), std::string::npos);
    EXPECT_NE(line.find("\"ci95\":"), std::string::npos);
    EXPECT_NE(line.find("\"p99\":"), std::string::npos);
  }

  // CSV: header plus one row per trial, all with the same column count.
  const auto cl = lines_of(csv_out.str());
  ASSERT_EQ(cl.size(), 1u + r.trials.size());
  EXPECT_NE(cl[0].find("trial,point,rep,seed,victims,duration,scenario"),
            std::string::npos);
  const auto columns = [](const std::string& line) {
    return 1 + std::count(line.begin(), line.end(), ',');
  };
  for (const std::string& line : cl) {
    EXPECT_EQ(columns(line), columns(cl[0])) << line;
  }
}

// The ThreadSanitizer CI job runs exactly this: a parallel campaign with
// jobs=4 over shared-nothing trials.
TEST(CampaignSmoke, ParallelJobs4) {
  Campaign c;
  c.name = "smoke";
  Scenario s;
  s.name = "smoke-base";
  s.cluster_size = 10;
  s.quiesce = sec(3);
  s.config = swim::Config::lifeguard();
  s.anomaly = AnomalyPlan::threshold(1, msec(1500));
  s.run_length = sec(5);
  c.base = s;
  c.repetitions = 4;
  c.base_seed = 5;
  c.jobs = 4;
  const CampaignResult r = run(c);
  ASSERT_EQ(r.trials.size(), 4u);
  for (std::size_t i = 1; i < r.trials.size(); ++i) {
    EXPECT_NE(r.trials[i].seed, r.trials[0].seed);
  }
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_EQ(r.points[0].trials, 4);
  EXPECT_GT(r.points[0].msgs.mean, 0.0);
}

// Per-trial Counter/Histogram isolation: every trial builds its own cluster
// and registry, so no counter value or latency sample may leak between
// repetitions. The pinning check: a trial's retained registry must agree
// exactly with its own scalar fields (an accumulation bug would inflate
// later repetitions' counters past their scalars), and re-running the same
// campaign must reproduce every trial's registry bit for bit.
TEST(CampaignIsolation, TrialRegistriesNeverLeakAcrossRepetitions) {
  Campaign c;
  c.name = "isolation";
  Scenario s;
  s.name = "isolation-base";
  s.cluster_size = 10;
  s.quiesce = sec(3);
  s.config = swim::Config::lifeguard();
  s.anomaly = AnomalyPlan::threshold(1, msec(1500));
  s.run_length = sec(5);
  c.base = s;
  c.repetitions = 3;
  c.base_seed = 7;
  c.keep_trial_metrics = true;
  const CampaignResult a = run(c);
  const CampaignResult b = run(c);
  ASSERT_EQ(a.trials.size(), 3u);
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    const RunResult& r = a.trials[i].result;
    EXPECT_EQ(r.metrics.counter_value("net.msgs_sent"), r.msgs_sent);
    EXPECT_EQ(r.metrics.counter_value("net.bytes_sent"), r.bytes_sent);
    // Same seed -> same registry on the rerun; accumulated state anywhere
    // in the engine would break this equality for i > 0.
    EXPECT_EQ(r.metrics.counters(), b.trials[i].result.metrics.counters())
        << "trial " << i;
  }
  // Repetitions use distinct seeds, so identical registries across trials
  // would themselves be suspicious: spot-check that messages differ.
  EXPECT_NE(a.trials[0].result.msgs_sent, a.trials[1].result.msgs_sent);
}

// ---------------------------------------------------------------------------
// fault::Timeline sweeps

Campaign timeline_campaign() {
  Campaign c;
  c.name = "timeline-sweep";
  Scenario s;
  s.name = "timeline-base";
  s.summary = "composed timeline fixture";
  s.cluster_size = 10;
  s.quiesce = sec(5);
  s.config = swim::Config::lifeguard();
  s.timeline.add(sec(0), sec(4), fault::Fault::block(),
                 fault::VictimSelector::uniform(2));
  s.timeline.add(sec(1), sec(3), fault::Fault::link_loss(0.4, 0.2),
                 fault::VictimSelector::uniform(2));
  s.run_length = sec(8);
  c.base = s;
  c.axes = {Axis::timeline_duration(0, {sec(2), sec(4)}),
            Axis::timeline_at(1, {sec(0), sec(2)})};
  c.repetitions = 2;
  c.base_seed = 424;
  return c;
}

TEST(CampaignTimelineSweep, AxesMutateTheNamedEntry) {
  const auto grid = expand_grid(timeline_campaign());
  ASSERT_EQ(grid.size(), 4u);
  // Last axis fastest: points 0/1 share entry-0 duration 2 s.
  EXPECT_EQ(grid[0].scenario.timeline.entries()[0].duration, sec(2));
  EXPECT_EQ(grid[0].scenario.timeline.entries()[1].at, sec(0));
  EXPECT_EQ(grid[1].scenario.timeline.entries()[1].at, sec(2));
  EXPECT_EQ(grid[3].scenario.timeline.entries()[0].duration, sec(4));
  EXPECT_EQ(grid[0].labels, (std::vector<std::string>{"e0+2000ms", "e1@0ms"}));
  // Distinct salts per point (workload axis semantics).
  EXPECT_NE(grid[0].salts, grid[1].salts);
}

TEST(CampaignTimelineSweep, SweepingAMissingEntryThrows) {
  Campaign c = timeline_campaign();
  c.axes = {Axis::timeline_at(7, {sec(1)})};
  EXPECT_THROW(expand_grid(c), std::out_of_range);
}

TEST(CampaignTimelineSweep, TimelineParameterSweepIsJobsInvariant) {
  Campaign c = timeline_campaign();
  c.keep_trial_metrics = true;
  c.jobs = 1;
  const CampaignResult seq = run(c);
  c.jobs = 8;
  const CampaignResult par = run(c);
  ASSERT_EQ(seq.trials.size(), 8u);
  ASSERT_EQ(par.trials.size(), seq.trials.size());
  for (std::size_t i = 0; i < seq.trials.size(); ++i) {
    expect_same_trial(seq.trials[i], par.trials[i]);
  }
  // The injected faults left traces in at least some grid cells.
  std::int64_t fault_drops = 0;
  for (const TrialResult& t : seq.trials) {
    fault_drops += t.result.metrics.counter_value("net.dropped.fault_loss");
  }
  EXPECT_GT(fault_drops, 0);
}

}  // namespace
}  // namespace lifeguard::harness
