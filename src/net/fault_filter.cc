#include "net/fault_filter.h"

#include <algorithm>

namespace lifeguard::net {

NetemFilter::Overlay NetemFilter::overlay_from_fault(const fault::Fault& f) {
  Overlay o;
  switch (f.kind) {
    case fault::FaultKind::kLinkLoss:
      o.egress_loss = f.egress_loss;
      o.ingress_loss = f.ingress_loss;
      break;
    case fault::FaultKind::kLatency:
      o.extra_latency = f.extra_latency;
      o.jitter = f.jitter;
      break;
    case fault::FaultKind::kDuplicate:
      o.duplicate_p = f.probability;
      break;
    case fault::FaultKind::kReorder:
      o.reorder_p = f.probability;
      o.reorder_spread = f.spread;
      break;
    default:
      break;  // process-level kinds carry no packet math
  }
  return o;
}

void NetemFilter::add_overlay(int token, const Overlay& o) {
  remove(token);
  overlays_.emplace_back(token, o);
}

void NetemFilter::add_block_set(int token, std::vector<Address> peers) {
  remove(token);
  blocks_.emplace_back(token, std::move(peers));
}

void NetemFilter::remove(int token) {
  std::erase_if(overlays_, [token](const auto& p) { return p.first == token; });
  std::erase_if(blocks_, [token](const auto& p) { return p.first == token; });
}

bool NetemFilter::blocked(const Address& peer) const {
  for (const auto& [token, peers] : blocks_) {
    if (std::find(peers.begin(), peers.end(), peer) != peers.end()) {
      return true;
    }
  }
  return false;
}

namespace {

/// Shared overlay math for one direction: drop probability `loss_of(o)`,
/// summed latency + per-overlay jitter, composed reorder delay and composed
/// duplication. Both plan shapes have the same four fields.
template <typename Plan, typename LossOf>
Plan apply_overlays(const std::vector<std::pair<int, NetemFilter::Overlay>>&
                        overlays,
                    Channel channel, Rng& rng, LossOf loss_of) {
  Plan plan;
  const bool udp = channel == Channel::kUdp;
  Duration reorder_spread{};
  double reorder_keep = 1.0;
  double dup_keep = 1.0;
  for (const auto& [token, o] : overlays) {
    // Latency delays both channels; each overlay draws its own jitter and
    // the delays sum, like stacked qdiscs (and like sim::Network).
    plan.delay += o.extra_latency;
    if (o.jitter > Duration{0}) {
      plan.delay += Duration{static_cast<std::int64_t>(
          rng.uniform(static_cast<std::uint64_t>(o.jitter.us) + 1))};
    }
    if (!udp) continue;
    const double loss = loss_of(o);
    if (loss > 0.0 && rng.chance(loss)) plan.drop = true;
    reorder_keep *= 1.0 - o.reorder_p;
    reorder_spread = std::max(reorder_spread, o.reorder_spread);
    dup_keep *= 1.0 - o.duplicate_p;
  }
  if (plan.drop) return plan;
  if (udp && reorder_keep < 1.0 && rng.chance(1.0 - reorder_keep) &&
      reorder_spread > Duration{0}) {
    plan.delay += Duration{static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(reorder_spread.us) + 1))};
  }
  if (udp && dup_keep < 1.0 && rng.chance(1.0 - dup_keep)) {
    plan.duplicate = true;
    // A tight trailing copy: real duplication delivers near-back-to-back.
    plan.duplicate_delay = Duration{static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(msec(1).us) + 1))};
  }
  return plan;
}

}  // namespace

EgressPlan NetemFilter::on_egress(const Address& to, Channel channel,
                                  std::size_t bytes, Rng& rng) {
  (void)bytes;
  if (blocked(to)) return EgressPlan{.drop = true};
  return apply_overlays<EgressPlan>(
      overlays_, channel, rng, [](const Overlay& o) { return o.egress_loss; });
}

IngressPlan NetemFilter::on_ingress(const Address& from, Channel channel,
                                    std::size_t bytes, Rng& rng) {
  (void)bytes;
  if (blocked(from)) return IngressPlan{.drop = true};
  return apply_overlays<IngressPlan>(
      overlays_, channel, rng, [](const Overlay& o) { return o.ingress_loss; });
}

}  // namespace lifeguard::net
