// Real-socket Runtime: one thread per node, a POSIX UDP socket and a timer
// heap. Used by the examples to run a live cluster on localhost.
//
// Substitution note (documented in DESIGN.md): memberlist's TCP channel
// (push-pull sync, fallback probe) is carried over the same UDP socket with
// a one-byte channel prefix. On loopback this preserves the semantics that
// matter to the protocol — a distinct lossless-ish channel with its own
// message types — without a TCP listener per node. Datagram size is capped
// at 60 KiB, ample for push-pull state of thousands of members.
//
// Threading model: the protocol node runs entirely on the runtime's loop
// thread. External control (start/join/leave/stop) must be injected with
// post(). schedule()/cancel()/send() may only be called from the loop thread
// (i.e. from node code or posted tasks).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "runtime/runtime.h"

namespace lifeguard::net {

class FaultFilter;

/// Current CLOCK_MONOTONIC-style reading in nanoseconds — the raw value
/// now() is derived from. Exposed so a parent process can capture one epoch
/// and hand it to every worker (set_epoch_ns), putting a whole multi-process
/// cluster on a single comparable time base.
std::int64_t steady_now_ns();

class UdpRuntime final : public Runtime {
 public:
  /// Binds a UDP socket on 127.0.0.1:`port` (port 0 picks a free port).
  /// Throws std::runtime_error on socket errors.
  UdpRuntime(std::uint16_t port, std::uint64_t seed);
  ~UdpRuntime() override;

  UdpRuntime(const UdpRuntime&) = delete;
  UdpRuntime& operator=(const UdpRuntime&) = delete;

  /// The address the socket actually bound (loopback ip + resolved port).
  Address local_address() const { return local_; }

  /// Rebase now()'s origin to a steady_now_ns() reading captured elsewhere
  /// (e.g. by the live tier's parent process), so timestamps from several
  /// runtimes — across processes — are directly comparable. Call before
  /// start().
  void set_epoch_ns(std::int64_t epoch_ns) { epoch_ns_ = epoch_ns; }

  /// Install (or clear, with nullptr) the per-datagram netem shim consulted
  /// by send() and the receive path. The filter must outlive the runtime (or
  /// be cleared first) and is invoked on the loop thread only. Install
  /// before start(), or from a posted task.
  void set_fault_filter(FaultFilter* filter) { filter_ = filter; }

  /// Attach the packet handler, then start the loop thread.
  void start(PacketHandler* handler);
  /// Run `fn` on the loop thread (thread-safe; may be called from anywhere).
  void post(std::function<void()> fn);
  /// Stop the loop thread and join it. Idempotent.
  void shutdown();

  // Runtime interface (loop thread only).
  TimePoint now() const override;
  TimerId schedule(Duration delay, Task fn) override;
  void cancel(TimerId id) override;
  void send(const Address& to, std::vector<std::uint8_t> payload,
            Channel channel) override;
  Rng& rng() override { return rng_; }

 private:
  struct Timer {
    TimePoint at;
    TimerId id;
    Task fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  void loop();
  void drain_socket();
  void run_due_timers();
  Duration time_to_next_timer() const;
  void raw_send(const Address& to, const std::vector<std::uint8_t>& framed);
  void deliver(const Address& from, std::vector<std::uint8_t> payload,
               Channel channel);

  int fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  Address local_;
  Rng rng_;
  PacketHandler* handler_ = nullptr;
  FaultFilter* filter_ = nullptr;

  std::thread thread_;
  std::atomic<bool> stopping_{false};

  std::mutex task_mu_;
  std::deque<std::function<void()>> tasks_;

  // Loop-thread-only state.
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::unordered_set<TimerId> cancelled_;
  TimerId next_timer_id_ = 1;
  std::int64_t epoch_ns_ = 0;  ///< steady-clock origin for now()
};

}  // namespace lifeguard::net
