// Userspace netem shim for the real-socket runtime — the live tier's
// counterpart of the simulator's link-fault overlays.
//
// net::UdpRuntime consults an optional FaultFilter for every datagram it
// sends (egress) and receives (ingress). The filter returns a small plan —
// drop, delay, duplicate — which the runtime executes with its own timer
// heap, so loss / latency / jitter / duplication / reordering behave like a
// kernel netem qdisc without privileges or root. Reordering is realized as
// probability-gated extra delay: a held-back datagram is overtaken by later
// traffic, which is exactly what a reorder qdisc produces on the wire.
//
// NetemFilter mirrors sim::Network's overlay composition rules so the same
// fault::Timeline means the same thing on both backends:
//   * stacked overlays compose loss/duplication probabilities as
//     1 - prod(1 - p_i),
//   * added latencies sum and each overlay draws its own jitter,
//   * reorder spreads take the max,
//   * loss/duplication/reordering afflict the kUdp channel only, while
//     added latency delays both channels,
//   * partition entries become peer-address block sets (both channels,
//     both directions).
// In the simulator a victim's overlay afflicts packets the victim sends
// *and* receives; the live tier mirrors that with per-endpoint filters —
// each node applies its own overlays to its egress and ingress paths, so a
// packet between two afflicted nodes passes each side's overlays exactly
// once, as it would through the one shared sim::Network.
// Overlays are keyed by caller-supplied tokens so the live fault driver can
// install and remove timeline entries independently, exactly like
// sim::Network::add_link_fault / remove_link_fault.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault.h"

namespace lifeguard::net {

/// What to do with one egress datagram.
struct EgressPlan {
  bool drop = false;
  Duration delay{};            ///< hold the datagram this long before sendto
  bool duplicate = false;      ///< transmit a second copy
  Duration duplicate_delay{};  ///< extra delay on the duplicate, after `delay`
};

/// What to do with one ingress datagram.
struct IngressPlan {
  bool drop = false;
  Duration delay{};            ///< hold delivery to the handler this long
  bool duplicate = false;      ///< deliver a second copy
  Duration duplicate_delay{};  ///< extra delay on the duplicate, after `delay`
};

/// Pluggable per-datagram fault seam. Called on the runtime's loop thread
/// only; implementations draw randomness from the runtime's Rng (passed in)
/// so decisions stay attributable to the run's seed.
class FaultFilter {
 public:
  virtual ~FaultFilter() = default;
  virtual EgressPlan on_egress(const Address& to, Channel channel,
                               std::size_t bytes, Rng& rng) = 0;
  virtual IngressPlan on_ingress(const Address& from, Channel channel,
                                 std::size_t bytes, Rng& rng) = 0;
};

/// Token-stacked netem overlays plus partition block sets (see file header
/// for the composition rules). All methods are loop-thread-only, matching
/// the runtime's threading model — mutate via UdpRuntime::post.
class NetemFilter : public FaultFilter {
 public:
  /// One installed network-fault overlay (a link_loss / latency / duplicate
  /// / reorder timeline entry, lowered).
  struct Overlay {
    double egress_loss = 0.0;
    double ingress_loss = 0.0;
    Duration extra_latency{};
    Duration jitter{};
    double duplicate_p = 0.0;
    double reorder_p = 0.0;
    Duration reorder_spread{};
  };

  /// Lower one network-level fault::Fault into an overlay. Process-level
  /// kinds produce an empty overlay (they are signals, not packet math).
  static Overlay overlay_from_fault(const fault::Fault& f);

  /// Install an overlay under `token`; replaces an existing same-token one.
  void add_overlay(int token, const Overlay& o);
  /// Install a partition block set: datagrams to or from any of `peers` are
  /// dropped on both channels until the token is removed.
  void add_block_set(int token, std::vector<Address> peers);
  /// Remove whatever `token` installed; unknown tokens are a no-op.
  void remove(int token);

  std::size_t active_overlays() const { return overlays_.size(); }
  std::size_t active_block_sets() const { return blocks_.size(); }

  EgressPlan on_egress(const Address& to, Channel channel, std::size_t bytes,
                       Rng& rng) override;
  IngressPlan on_ingress(const Address& from, Channel channel,
                         std::size_t bytes, Rng& rng) override;

 private:
  bool blocked(const Address& peer) const;

  std::vector<std::pair<int, Overlay>> overlays_;
  std::vector<std::pair<int, std::vector<Address>>> blocks_;
};

}  // namespace lifeguard::net
