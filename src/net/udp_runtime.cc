#include "net/udp_runtime.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "net/fault_filter.h"

namespace lifeguard::net {

namespace {

constexpr std::size_t kMaxDatagram = 60 * 1024;

sockaddr_in to_sockaddr(const Address& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(a.ip);
  sa.sin_port = htons(a.port);
  return sa;
}

}  // namespace

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

UdpRuntime::UdpRuntime(std::uint16_t port, std::uint64_t seed) : rng_(seed) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  bind_addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&bind_addr),
             sizeof(bind_addr)) != 0) {
    ::close(fd_);
    throw std::runtime_error("bind() failed");
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len);
  local_ = Address{ntohl(actual.sin_addr.s_addr), ntohs(actual.sin_port)};

  if (::pipe(wake_pipe_) != 0) {
    ::close(fd_);
    throw std::runtime_error("pipe() failed");
  }
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
  epoch_ns_ = steady_now_ns();
}

UdpRuntime::~UdpRuntime() {
  shutdown();
  if (fd_ >= 0) ::close(fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void UdpRuntime::start(PacketHandler* handler) {
  handler_ = handler;
  thread_ = std::thread([this] { loop(); });
}

void UdpRuntime::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(task_mu_);
    tasks_.push_back(std::move(fn));
  }
  const char byte = 1;
  // Best-effort wakeup; a full pipe already guarantees a pending wake.
  [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &byte, 1);
}

void UdpRuntime::shutdown() {
  if (!thread_.joinable()) return;
  stopping_.store(true);
  post([] {});  // wake the loop
  thread_.join();
}

TimePoint UdpRuntime::now() const {
  return TimePoint{(steady_now_ns() - epoch_ns_) / 1000};
}

TimerId UdpRuntime::schedule(Duration delay, Task fn) {
  if (delay < Duration{0}) delay = Duration{0};
  const TimerId id = next_timer_id_++;
  timers_.push(Timer{now() + delay, id, std::move(fn)});
  return id;
}

void UdpRuntime::cancel(TimerId id) {
  if (id != kInvalidTimer) cancelled_.insert(id);
}

void UdpRuntime::raw_send(const Address& to,
                          const std::vector<std::uint8_t>& framed) {
  const sockaddr_in sa = to_sockaddr(to);
  ::sendto(fd_, framed.data(), framed.size(), 0,
           reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
}

void UdpRuntime::send(const Address& to, std::vector<std::uint8_t> payload,
                      Channel channel) {
  if (payload.size() + 1 > kMaxDatagram) return;
  // One-byte channel prefix multiplexes both logical channels onto the one
  // socket (see header).
  std::vector<std::uint8_t> framed;
  framed.reserve(payload.size() + 1);
  framed.push_back(static_cast<std::uint8_t>(channel));
  framed.insert(framed.end(), payload.begin(), payload.end());

  if (filter_ != nullptr) {
    const EgressPlan plan =
        filter_->on_egress(to, channel, payload.size(), rng_);
    if (plan.drop) return;
    if (plan.duplicate) {
      // The copy rides the timer heap even at zero extra delay, so the
      // original always hits the wire first.
      schedule(plan.delay + plan.duplicate_delay,
               [this, to, copy = framed] { raw_send(to, copy); });
    }
    if (plan.delay > Duration{0}) {
      schedule(plan.delay,
               [this, to, framed = std::move(framed)] { raw_send(to, framed); });
      return;
    }
  }
  raw_send(to, framed);
}

Duration UdpRuntime::time_to_next_timer() const {
  if (timers_.empty()) return msec(100);
  const Duration d = timers_.top().at - now();
  if (d < Duration{0}) return Duration{0};
  return d < msec(100) ? d : msec(100);
}

void UdpRuntime::run_due_timers() {
  while (!timers_.empty()) {
    const Timer& top = timers_.top();
    if (cancelled_.erase(top.id) > 0) {
      timers_.pop();
      continue;
    }
    if (top.at > now()) break;
    auto fn = std::move(const_cast<Timer&>(top).fn);
    timers_.pop();
    fn();
  }
}

void UdpRuntime::deliver(const Address& from, std::vector<std::uint8_t> payload,
                         Channel channel) {
  if (handler_ != nullptr && !payload.empty()) {
    handler_->on_packet(
        from, std::span<const std::uint8_t>(payload.data(), payload.size()),
        channel);
  }
}

void UdpRuntime::drain_socket() {
  std::uint8_t buf[kMaxDatagram];
  while (true) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n =
        ::recvfrom(fd_, buf, sizeof(buf), MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n <= 0) break;
    const Address peer{ntohl(from.sin_addr.s_addr), ntohs(from.sin_port)};
    const auto ch = static_cast<Channel>(buf[0]);
    if (handler_ == nullptr || n <= 1) continue;
    const std::size_t len = static_cast<std::size_t>(n - 1);

    if (filter_ != nullptr) {
      const IngressPlan plan = filter_->on_ingress(peer, ch, len, rng_);
      if (plan.drop) continue;
      if (plan.duplicate || plan.delay > Duration{0}) {
        std::vector<std::uint8_t> payload(buf + 1, buf + 1 + len);
        if (plan.duplicate) {
          schedule(plan.delay + plan.duplicate_delay,
                   [this, peer, copy = payload, ch] { deliver(peer, copy, ch); });
        }
        if (plan.delay > Duration{0}) {
          schedule(plan.delay, [this, peer, payload = std::move(payload), ch] {
            deliver(peer, payload, ch);
          });
          continue;
        }
      }
    }
    handler_->on_packet(peer, std::span<const std::uint8_t>(buf + 1, len), ch);
  }
}

void UdpRuntime::loop() {
  while (!stopping_.load()) {
    // Tasks first (they may schedule timers or send packets).
    std::deque<std::function<void()>> tasks;
    {
      const std::lock_guard<std::mutex> lock(task_mu_);
      tasks.swap(tasks_);
    }
    for (auto& t : tasks) t();

    run_due_timers();

    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const Duration wait = time_to_next_timer();
    const int timeout_ms = static_cast<int>((wait.us + 999) / 1000);
    const int rv = ::poll(fds, 2, timeout_ms);
    if (rv > 0) {
      if ((fds[1].revents & POLLIN) != 0) {
        char sink[64];
        while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
        }
      }
      if ((fds[0].revents & POLLIN) != 0) drain_socket();
    }
  }
}

}  // namespace lifeguard::net
