// Parameter sweeps over the experiment grids (paper Tables II & III) and
// their aggregation into the evaluation's tables and figures.
//
// Both sweeps are thin shims over the parallel Campaign engine (see
// campaign.h): the grid becomes campaign axes, repetitions become trials,
// and trials execute on a worker pool. Results are bit-identical at every
// parallelism level.
//
// Scope control (environment):
//   REPRO_FULL=1   use the paper's full grid (Tables II/III, 10 repetitions,
//                  120 s interval runs) — hours of compute on one core.
//   REPRO_REPS=n   override repetitions.
//   REPRO_SEED=n   base seed (default 42).
//   REPRO_JOBS=n   worker threads (default 0 = one per hardware thread;
//                  1 = sequential).
// The default ("quick") grids subsample each dimension so every bench binary
// finishes in tens of seconds while preserving the paper's qualitative
// shape. Run seeds are paired across configurations: the same grid point and
// repetition sees the same anomaly victims and schedule under every config,
// which sharpens the %-of-SWIM comparisons at low repetition counts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "harness/experiment.h"

namespace lifeguard::harness {

struct ReproOptions {
  bool full = false;
  int reps_override = 0;  ///< 0 = grid default
  std::uint64_t seed = 42;
  /// Campaign worker threads: 0 = one per hardware thread, 1 = sequential.
  int jobs = 0;
  /// Read REPRO_FULL / REPRO_REPS / REPRO_SEED / REPRO_JOBS from the
  /// environment.
  static ReproOptions from_env();
};

struct Grid {
  std::vector<int> concurrency;      ///< C values
  std::vector<Duration> durations;   ///< D values
  std::vector<Duration> intervals;   ///< I values (interval experiment only)
  int repetitions = 1;
  int cluster_size = 128;
  Duration quiesce = sec(15);
  Duration test_length = sec(60);    ///< interval experiment length
  Duration observe = sec(70);        ///< threshold observation window
};

/// Paper Table III (full) or a representative subsample (quick).
Grid interval_grid(const ReproOptions& opt);
/// Paper Table II (full) or a representative subsample (quick).
Grid threshold_grid(const ReproOptions& opt);

/// Aggregate of an interval-experiment sweep for one configuration.
struct IntervalSweepResult {
  std::int64_t fp = 0;    ///< FP Events
  std::int64_t fpm = 0;   ///< FP- Events (at healthy members)
  std::int64_t msgs = 0;  ///< compound messages sent
  std::int64_t bytes = 0;
  std::map<int, std::int64_t> fp_by_c;   ///< per concurrency level (Fig. 2)
  std::map<int, std::int64_t> fpm_by_c;  ///< per concurrency level (Fig. 3)
  int runs = 0;
};

/// Aggregate of a threshold-experiment sweep for one configuration.
struct ThresholdSweepResult {
  Histogram first_detect;  ///< seconds
  Histogram full_dissem;   ///< seconds
  int runs = 0;
};

using ProgressFn = std::function<void(int done, int total)>;

/// Runs the grid on the Campaign worker pool. `jobs` < 0 reads REPRO_JOBS
/// (then 0 = one worker per hardware thread, 1 = sequential). `progress`
/// fires in completion order.
IntervalSweepResult sweep_interval(const swim::Config& cfg, const Grid& grid,
                                   std::uint64_t seed_base,
                                   const ProgressFn& progress = {},
                                   int jobs = -1);

ThresholdSweepResult sweep_threshold(const swim::Config& cfg, const Grid& grid,
                                     std::uint64_t seed_base,
                                     const ProgressFn& progress = {},
                                     int jobs = -1);

/// Stderr progress meter ("label: 12/36 runs") for bench binaries.
ProgressFn stderr_progress(std::string label);

/// Per-run seed derivation, stable across configurations (paired runs).
/// Equals campaign trial_seed(base, {c, d_us, i_us}, rep).
std::uint64_t run_seed(std::uint64_t base, int c, std::int64_t d_us,
                       std::int64_t i_us, int rep);

}  // namespace lifeguard::harness
