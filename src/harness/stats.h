// Statistics utilities for campaign results.
//
// t_interval() turns (count, mean, stddev) into a Student-t confidence
// interval — the honest error bar for the small repetition counts the quick
// grids use (n = 1..10), where a normal interval would be far too tight.
// The reporters and scenario_runner derive their "± 95% CI" columns from it.
//
// OnlineStats is a Welford accumulator with the parallel combine of Chan,
// Golub & LeVeque, for callers that fold results beyond what the engine
// retains — across grid points, campaigns, or streams too large to keep
// samples for. (The engine's own per-point aggregation keeps raw samples in
// Histograms because its artifacts need p50/p99.)
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/metrics.h"

namespace lifeguard::harness {

/// Streaming mean/variance/extrema accumulator. No samples are retained, so
/// it is O(1) memory per aggregated series; percentiles need a Histogram.
class OnlineStats {
 public:
  void add(double x);
  /// Parallel combine: after a.merge(b), `a` equals the accumulator that saw
  /// both input streams (any interleaving — the result is order-free up to
  /// floating-point rounding).
  void merge(const OnlineStats& o);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Summary view (p50/p99 unavailable without samples — left at mean).
  Summary summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A two-sided confidence interval around a mean.
struct ConfInterval {
  double lo = 0.0;
  double hi = 0.0;
  double half_width = 0.0;
};

/// Two-sided Student-t critical value for `dof` degrees of freedom at the
/// given confidence level (e.g. 0.95 -> t such that P(|T| <= t) = 0.95).
/// Exact for dof 1 and 2; Abramowitz & Stegun 26.7.5 expansion (via the
/// inverse normal) otherwise — within ~0.005 of tables for dof >= 3.
/// dof <= 0 returns the normal critical value (infinite-dof limit).
double t_critical(std::int64_t dof, double confidence = 0.95);

/// Student-t confidence interval for the mean of `count` samples with the
/// given sample standard deviation. count < 2 yields a degenerate interval
/// [mean, mean] with half_width 0 (one sample carries no spread information).
ConfInterval t_interval(std::size_t count, double mean, double stddev,
                        double confidence = 0.95);
ConfInterval t_interval(const OnlineStats& s, double confidence = 0.95);
ConfInterval t_interval(const Summary& s, double confidence = 0.95);

}  // namespace lifeguard::harness
