// Scenarios as versioned data — the JSON scenario-file codec.
//
// A scenario file is one pretty-printed JSON object carrying everything a
// harness::Scenario holds: cluster shape, seed, network model, protocol
// config (a Table I preset name plus explicit per-field overrides, so
// hand-tuned configs round-trip exactly), the fault timeline as `--fault`
// grammar strings (check::entry_spec — the same rendering the trace header
// uses), the membership backend spec, and the invariant-checking knobs.
// ScenarioRegistry entries exported with save() and committed under
// scenarios/*.json are the reviewable form of the catalog; scenario_runner
// --scenario-file runs them on either backend without recompiling, and the
// fuzzer can commit shrunk reproducers in the same format.
//
// Loading is strict where it protects the user and lenient where it helps
// them: unknown keys, malformed values, bad fault/membership specs and
// out-of-range fields all fail fast with a message naming the offending
// key/value (the membership::parse_spec error discipline), while every key
// except `type`, `version` and `name` is optional and defaults to the
// Scenario{} value — a hand-authored file states only what it changes.
//
// Round-trip contract: save() writes the *effective* timeline (the
// AnomalyPlan shim is rendered through its one-entry Timeline equivalent,
// which replays bit-identically by the shim contract), so for every
// registry scenario export -> load -> run reproduces the original run's
// metrics and trace digest bit-for-bit. tests/scenariofile pins this.
#pragma once

#include <optional>
#include <string>

#include "harness/scenario.h"

namespace lifeguard::harness {

struct ScenarioFile {
  /// The committed-file format version this build reads and writes.
  static constexpr int kVersion = 1;

  /// Pretty-printed JSON document for `s` (assumed valid — export callers
  /// hold registry scenarios, which are validated on insertion).
  static std::string to_json(const Scenario& s);

  /// Parse + validate one scenario document. Returns std::nullopt and sets
  /// `error` (one actionable message; multiple validation defects are
  /// joined with "; ") on any malformed, unknown or out-of-range input.
  /// The loaded scenario carries the file's timeline in Scenario::timeline
  /// with an empty AnomalyPlan, and passes Scenario::validate().
  static std::optional<Scenario> from_json(const std::string& text,
                                           std::string& error);

  static bool save(const Scenario& s, const std::string& path,
                   std::string& error);
  static std::optional<Scenario> load(const std::string& path,
                                      std::string& error);

  /// The canonical committed filename for a scenario ("<name>.json").
  static std::string filename(const Scenario& s) { return s.name + ".json"; }
};

}  // namespace lifeguard::harness
