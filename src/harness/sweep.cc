#include "harness/sweep.h"

#include <cstdio>
#include <cstdlib>

#include "harness/campaign.h"
#include "harness/report.h"

namespace lifeguard::harness {

ReproOptions ReproOptions::from_env() {
  ReproOptions opt;
  if (const char* f = std::getenv("REPRO_FULL")) {
    opt.full = std::atoi(f) != 0;
  }
  if (const char* r = std::getenv("REPRO_REPS")) {
    opt.reps_override = std::atoi(r);
  }
  if (const char* s = std::getenv("REPRO_SEED")) {
    opt.seed = static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  if (const char* j = std::getenv("REPRO_JOBS")) {
    opt.jobs = std::atoi(j);
    if (opt.jobs < 0) opt.jobs = 0;
  }
  return opt;
}

Grid interval_grid(const ReproOptions& opt) {
  Grid g;
  if (opt.full) {
    // Paper Table III, verbatim.
    g.concurrency = {1, 4, 8, 12, 16, 20, 24, 28, 32};
    g.durations = {msec(128), msec(512),   msec(2048),
                   msec(8192), msec(16384), msec(32768)};
    g.intervals = {msec(1),   msec(4),    msec(16),  msec(64),
                   msec(256), msec(1024), msec(4096), msec(16384)};
    g.repetitions = 10;
    g.test_length = sec(120);
  } else {
    // A representative slice of Table III: one sub-timeout duration (512 ms,
    // no FPs expected), the two durations that straddle the SWIM suspicion
    // timeout from above, and intervals spanning tight flapping to long
    // recovery windows.
    g.concurrency = {1, 8, 16, 32};
    g.durations = {msec(512), msec(16384), msec(32768)};
    g.intervals = {msec(4), msec(256), msec(4096)};
    g.repetitions = 1;
    g.test_length = sec(120);
  }
  if (opt.reps_override > 0) g.repetitions = opt.reps_override;
  return g;
}

Grid threshold_grid(const ReproOptions& opt) {
  Grid g;
  if (opt.full) {
    // Paper Table II, verbatim.
    g.concurrency = {1, 4, 8, 12, 16, 20, 24, 28, 32};
    g.durations = {msec(128), msec(512),   msec(2048),
                   msec(8192), msec(16384), msec(32768)};
    g.repetitions = 10;
    g.observe = sec(105);  // anomaly + detection + recovery within 120 s
  } else {
    g.concurrency = {1, 8, 16, 32};
    // Only D > the suspicion timeout yields completed true detections; the
    // smaller D values exist to confirm no detection happens (kept in the
    // full grid). The quick grid spends its runs where samples come from.
    g.durations = {msec(16384), msec(32768)};
    g.repetitions = 2;
    g.observe = sec(70);
  }
  if (opt.reps_override > 0) g.repetitions = opt.reps_override;
  return g;
}

std::uint64_t run_seed(std::uint64_t base, int c, std::int64_t d_us,
                       std::int64_t i_us, int rep) {
  return trial_seed(base,
                    {static_cast<std::uint64_t>(c),
                     static_cast<std::uint64_t>(d_us),
                     static_cast<std::uint64_t>(i_us)},
                    rep);
}

namespace {

/// Adapts the legacy ProgressFn callback onto the Reporter interface.
class FnProgress : public Reporter {
 public:
  explicit FnProgress(const ProgressFn& fn) : fn_(fn) {}
  void progress(int done, int total) override {
    if (fn_) fn_(done, total);
  }

 private:
  const ProgressFn& fn_;
};

int resolve_jobs(int jobs) {
  return jobs < 0 ? ReproOptions::from_env().jobs : jobs;
}

}  // namespace

IntervalSweepResult sweep_interval(const swim::Config& cfg, const Grid& grid,
                                   std::uint64_t seed_base,
                                   const ProgressFn& progress, int jobs) {
  // The grid as a campaign: victims/duration/interval axes whose salts are
  // exactly the legacy run_seed() coordinates, so per-trial seeds (and thus
  // results) are bit-identical to the old sequential loop.
  Campaign camp;
  camp.name = "sweep-interval";
  IntervalParams base;
  base.base.cluster_size = grid.cluster_size;
  base.base.quiesce = grid.quiesce;
  base.base.config = cfg;
  base.concurrent = 1;  // placeholder; the victims axis overwrites it
  base.test_length = grid.test_length;
  camp.base = to_scenario(base);
  camp.base.name = "sweep-interval";
  camp.axes = {Axis::victims(grid.concurrency), Axis::duration(grid.durations),
               Axis::interval(grid.intervals)};
  // Legacy semantics for c == 0: a healthy baseline whose end time still
  // follows the cycle-aligned clock of its grid point (see to_scenario).
  camp.finalize = [test_length = grid.test_length](Scenario& s) {
    if (s.anomaly.kind == AnomalyKind::kInterval && s.anomaly.victims == 0) {
      const Duration d = s.anomaly.duration;
      const Duration i = s.anomaly.interval;
      s.anomaly = AnomalyPlan::none();
      s.run_length = cycle_aligned_length(test_length, d, i) + sec(1);
    }
  };
  camp.repetitions = grid.repetitions;
  camp.base_seed = seed_base;
  camp.jobs = resolve_jobs(jobs);

  FnProgress meter(progress);
  const CampaignResult res = run(camp, {&meter});

  IntervalSweepResult agg;
  const std::size_t points_per_c =
      grid.durations.size() * grid.intervals.size();
  for (const TrialResult& t : res.trials) {
    const int c =
        grid.concurrency[static_cast<std::size_t>(t.point_index) /
                         points_per_c];
    agg.fp += t.result.fp_events;
    agg.fpm += t.result.fp_healthy_events;
    agg.msgs += t.result.msgs_sent;
    agg.bytes += t.result.bytes_sent;
    agg.fp_by_c[c] += t.result.fp_events;
    agg.fpm_by_c[c] += t.result.fp_healthy_events;
    ++agg.runs;
  }
  return agg;
}

ThresholdSweepResult sweep_threshold(const swim::Config& cfg, const Grid& grid,
                                     std::uint64_t seed_base,
                                     const ProgressFn& progress, int jobs) {
  Campaign camp;
  camp.name = "sweep-threshold";
  ThresholdParams base;
  base.base.cluster_size = grid.cluster_size;
  base.base.quiesce = grid.quiesce;
  base.base.config = cfg;
  base.concurrent = 1;  // placeholder; the victims axis overwrites it
  base.observe = grid.observe;
  camp.base = to_scenario(base);
  camp.base.name = "sweep-threshold";
  // The trailing single-point axis contributes nothing to the scenario but
  // keeps the salt chain {c, d_us, 0} — the exact legacy
  // run_seed(base, c, d_us, 0, rep) coordinates, so threshold trials stay
  // bit-identical to the pre-campaign sequential loop.
  camp.axes = {Axis::victims(grid.concurrency), Axis::duration(grid.durations),
               Axis::custom("interval", {{"0ms", 0, {}}})};
  camp.repetitions = grid.repetitions;
  camp.base_seed = seed_base;
  camp.jobs = resolve_jobs(jobs);

  FnProgress meter(progress);
  const CampaignResult res = run(camp, {&meter});

  ThresholdSweepResult agg;
  agg.runs = static_cast<int>(res.trials.size());
  for (const TrialResult& t : res.trials) {
    agg.first_detect.reserve(agg.first_detect.count() +
                             t.result.first_detect.size());
    for (double s : t.result.first_detect) agg.first_detect.record(s);
    agg.full_dissem.reserve(agg.full_dissem.count() +
                            t.result.full_dissem.size());
    for (double s : t.result.full_dissem) agg.full_dissem.record(s);
  }
  return agg;
}

ProgressFn stderr_progress(std::string label) {
  return [label](int done, int total) {
    std::fprintf(stderr, "\r%s: %d/%d runs", label.c_str(), done, total);
    if (done == total) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  };
}

}  // namespace lifeguard::harness
