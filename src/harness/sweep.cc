#include "harness/sweep.h"

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"

namespace lifeguard::harness {

ReproOptions ReproOptions::from_env() {
  ReproOptions opt;
  if (const char* f = std::getenv("REPRO_FULL")) {
    opt.full = std::atoi(f) != 0;
  }
  if (const char* r = std::getenv("REPRO_REPS")) {
    opt.reps_override = std::atoi(r);
  }
  if (const char* s = std::getenv("REPRO_SEED")) {
    opt.seed = static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return opt;
}

Grid interval_grid(const ReproOptions& opt) {
  Grid g;
  if (opt.full) {
    // Paper Table III, verbatim.
    g.concurrency = {1, 4, 8, 12, 16, 20, 24, 28, 32};
    g.durations = {msec(128), msec(512),   msec(2048),
                   msec(8192), msec(16384), msec(32768)};
    g.intervals = {msec(1),   msec(4),    msec(16),  msec(64),
                   msec(256), msec(1024), msec(4096), msec(16384)};
    g.repetitions = 10;
    g.test_length = sec(120);
  } else {
    // A representative slice of Table III: one sub-timeout duration (512 ms,
    // no FPs expected), the two durations that straddle the SWIM suspicion
    // timeout from above, and intervals spanning tight flapping to long
    // recovery windows.
    g.concurrency = {1, 8, 16, 32};
    g.durations = {msec(512), msec(16384), msec(32768)};
    g.intervals = {msec(4), msec(256), msec(4096)};
    g.repetitions = 1;
    g.test_length = sec(120);
  }
  if (opt.reps_override > 0) g.repetitions = opt.reps_override;
  return g;
}

Grid threshold_grid(const ReproOptions& opt) {
  Grid g;
  if (opt.full) {
    // Paper Table II, verbatim.
    g.concurrency = {1, 4, 8, 12, 16, 20, 24, 28, 32};
    g.durations = {msec(128), msec(512),   msec(2048),
                   msec(8192), msec(16384), msec(32768)};
    g.repetitions = 10;
    g.observe = sec(105);  // anomaly + detection + recovery within 120 s
  } else {
    g.concurrency = {1, 8, 16, 32};
    // Only D > the suspicion timeout yields completed true detections; the
    // smaller D values exist to confirm no detection happens (kept in the
    // full grid). The quick grid spends its runs where samples come from.
    g.durations = {msec(16384), msec(32768)};
    g.repetitions = 2;
    g.observe = sec(70);
  }
  if (opt.reps_override > 0) g.repetitions = opt.reps_override;
  return g;
}

std::uint64_t run_seed(std::uint64_t base, int c, std::int64_t d_us,
                       std::int64_t i_us, int rep) {
  std::uint64_t s = base;
  // Mix each coordinate through SplitMix64 — cheap, well distributed, and
  // identical for every configuration at the same grid point (paired runs).
  s ^= splitmix64(s) + static_cast<std::uint64_t>(c);
  s ^= splitmix64(s) + static_cast<std::uint64_t>(d_us);
  s ^= splitmix64(s) + static_cast<std::uint64_t>(i_us);
  s ^= splitmix64(s) + static_cast<std::uint64_t>(rep);
  return splitmix64(s);
}

IntervalSweepResult sweep_interval(const swim::Config& cfg, const Grid& grid,
                                   std::uint64_t seed_base,
                                   const ProgressFn& progress) {
  IntervalSweepResult agg;
  const int total = static_cast<int>(grid.concurrency.size() *
                                     grid.durations.size() *
                                     grid.intervals.size()) *
                    grid.repetitions;
  int done = 0;
  for (int c : grid.concurrency) {
    for (Duration d : grid.durations) {
      for (Duration i : grid.intervals) {
        for (int rep = 0; rep < grid.repetitions; ++rep) {
          // Build through the shim mapping so c == 0 (healthy baseline)
          // keeps its legacy meaning.
          IntervalParams p;
          p.base.cluster_size = grid.cluster_size;
          p.base.quiesce = grid.quiesce;
          p.base.config = cfg;
          p.base.seed = run_seed(seed_base, c, d.us, i.us, rep);
          p.concurrent = c;
          p.duration = d;
          p.interval = i;
          p.test_length = grid.test_length;
          Scenario sc = to_scenario(p);
          sc.name = "sweep-interval";
          const RunResult r = run(sc);
          agg.fp += r.fp_events;
          agg.fpm += r.fp_healthy_events;
          agg.msgs += r.msgs_sent;
          agg.bytes += r.bytes_sent;
          agg.fp_by_c[c] += r.fp_events;
          agg.fpm_by_c[c] += r.fp_healthy_events;
          ++agg.runs;
          if (progress) progress(++done, total);
        }
      }
    }
  }
  return agg;
}

ThresholdSweepResult sweep_threshold(const swim::Config& cfg, const Grid& grid,
                                     std::uint64_t seed_base,
                                     const ProgressFn& progress) {
  ThresholdSweepResult agg;
  const int total =
      static_cast<int>(grid.concurrency.size() * grid.durations.size()) *
      grid.repetitions;
  int done = 0;
  for (int c : grid.concurrency) {
    for (Duration d : grid.durations) {
      for (int rep = 0; rep < grid.repetitions; ++rep) {
        ThresholdParams p;
        p.base.cluster_size = grid.cluster_size;
        p.base.quiesce = grid.quiesce;
        p.base.config = cfg;
        p.base.seed = run_seed(seed_base, c, d.us, 0, rep);
        p.concurrent = c;
        p.duration = d;
        p.observe = grid.observe;
        Scenario sc = to_scenario(p);
        sc.name = "sweep-threshold";
        const RunResult r = run(sc);
        for (double s : r.first_detect) agg.first_detect.record(s);
        for (double s : r.full_dissem) agg.full_dissem.record(s);
        ++agg.runs;
        if (progress) progress(++done, total);
      }
    }
  }
  return agg;
}

ProgressFn stderr_progress(std::string label) {
  return [label](int done, int total) {
    std::fprintf(stderr, "\r%s: %d/%d runs", label.c_str(), done, total);
    if (done == total) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  };
}

}  // namespace lifeguard::harness
