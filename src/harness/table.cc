#include "harness/table.h"

#include <cstdio>
#include <utility>

namespace lifeguard::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto pad = [](const std::string& s, std::size_t w, bool left) {
    std::string out;
    if (left) {
      out = s + std::string(w - s.size(), ' ');
    } else {
      out = std::string(w - s.size(), ' ') + s;
    }
    return out;
  };
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += pad(cells[c], width[c], c == 0);
      out += c + 1 == cells.size() ? "\n" : "  ";
    }
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out += std::string(total > 2 ? total - 2 : 0, '-') + "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string fmt_int(std::int64_t v) { return std::to_string(v); }

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double value, double base) {
  if (base == 0.0) return value == 0.0 ? "100.00" : "n/a";
  return fmt_double(100.0 * value / base, 2);
}

std::string fmt_bytes_gib(std::int64_t bytes) {
  return fmt_double(static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0), 3);
}

}  // namespace lifeguard::harness
