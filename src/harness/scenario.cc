#include "harness/scenario.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "check/invariant.h"
#include "check/tap.h"
#include "cluster/cluster.h"
#include "fault/injector.h"
#include "membership/backend.h"
#include "obs/sampler.h"
#include "sim/simulator.h"
#include "swim/events.h"

namespace lifeguard::harness {

// ---------------------------------------------------------------------------
// Anomaly plan

const char* anomaly_kind_name(AnomalyKind k) {
  switch (k) {
    case AnomalyKind::kNone:
      return "none";
    case AnomalyKind::kThreshold:
      return "threshold";
    case AnomalyKind::kInterval:
      return "interval";
    case AnomalyKind::kStress:
      return "stress";
    case AnomalyKind::kPartition:
      return "partition";
    case AnomalyKind::kFlapping:
      return "flapping";
    case AnomalyKind::kChurn:
      return "churn";
  }
  return "?";
}

std::optional<AnomalyKind> anomaly_kind_from_name(std::string_view name) {
  for (AnomalyKind k :
       {AnomalyKind::kNone, AnomalyKind::kThreshold, AnomalyKind::kInterval,
        AnomalyKind::kStress, AnomalyKind::kPartition, AnomalyKind::kFlapping,
        AnomalyKind::kChurn}) {
    if (name == anomaly_kind_name(k)) return k;
  }
  return std::nullopt;
}

AnomalyPlan AnomalyPlan::none() { return {}; }

AnomalyPlan AnomalyPlan::threshold(int victims, Duration duration) {
  AnomalyPlan p;
  p.kind = AnomalyKind::kThreshold;
  p.victims = victims;
  p.duration = duration;
  return p;
}

AnomalyPlan AnomalyPlan::cycling(int victims, Duration duration,
                                 Duration interval) {
  AnomalyPlan p;
  p.kind = AnomalyKind::kInterval;
  p.victims = victims;
  p.duration = duration;
  p.interval = interval;
  return p;
}

AnomalyPlan AnomalyPlan::stressed(int victims, sim::StressParams params) {
  AnomalyPlan p;
  p.kind = AnomalyKind::kStress;
  p.victims = victims;
  p.stress = params;
  return p;
}

AnomalyPlan AnomalyPlan::partition(int island_size, Duration heal_after) {
  AnomalyPlan p;
  p.kind = AnomalyKind::kPartition;
  p.victims = island_size;
  p.duration = heal_after;
  return p;
}

AnomalyPlan AnomalyPlan::flapping(int victims, Duration duration,
                                  Duration interval) {
  AnomalyPlan p;
  p.kind = AnomalyKind::kFlapping;
  p.victims = victims;
  p.duration = duration;
  p.interval = interval;
  return p;
}

AnomalyPlan AnomalyPlan::churn(int victims, Duration downtime,
                               Duration uptime) {
  AnomalyPlan p;
  p.kind = AnomalyKind::kChurn;
  p.victims = victims;
  p.duration = downtime;
  p.interval = uptime;
  return p;
}

fault::Timeline AnomalyPlan::to_timeline(Duration run_length) const {
  // The one-entry mapping the engine executes. Entry spans: one-shot kinds
  // (threshold, partition) are active for their own duration; cycling kinds
  // (interval, stress, flapping, churn) keep injecting until the observation
  // window closes, so their span is run_length itself.
  fault::Timeline tl;
  const fault::VictimSelector who = fault::VictimSelector::uniform(victims);
  switch (kind) {
    case AnomalyKind::kNone:
      break;
    case AnomalyKind::kThreshold:
      tl.add(Duration{}, duration, fault::Fault::block(), who);
      break;
    case AnomalyKind::kInterval:
      tl.add(Duration{}, run_length,
             fault::Fault::interval_block(duration, interval), who);
      break;
    case AnomalyKind::kStress:
      tl.add(Duration{}, run_length, fault::Fault::stressed(stress), who);
      break;
    case AnomalyKind::kPartition:
      tl.add(Duration{}, duration, fault::Fault::partition(), who);
      break;
    case AnomalyKind::kFlapping:
      tl.add(Duration{}, run_length, fault::Fault::flapping(duration, interval),
             who);
      break;
    case AnomalyKind::kChurn:
      tl.add(Duration{}, run_length, fault::Fault::churn(duration, interval),
             who);
      break;
  }
  return tl;
}

// ---------------------------------------------------------------------------
// Validation

namespace {

std::string secs(Duration d) {
  std::ostringstream os;
  os << d.seconds() << " s";
  return os.str();
}

}  // namespace

std::vector<std::string> Scenario::validate() const {
  std::vector<std::string> errors;
  auto fail = [&errors](const std::string& msg) { errors.push_back(msg); };

  if (name.empty()) {
    fail("name must be non-empty — it is the registry key and the "
         "--scenario identifier");
  }
  if (cluster_size < 2) {
    fail("cluster_size (" + std::to_string(cluster_size) +
         ") must be >= 2 — a failure detector needs at least one peer to "
         "probe");
  }
  if (cluster_size > 4096) {
    fail("cluster_size (" + std::to_string(cluster_size) +
         ") is above the supported 4096 — the simulator allocates per-node "
         "state eagerly; shard the experiment instead");
  }
  if (quiesce.is_negative()) {
    fail("quiesce (" + secs(quiesce) + ") must be >= 0");
  }
  if (run_length <= Duration{0}) {
    fail("run_length (" + secs(run_length) +
         ") must be > 0 — it is the observation window after anomaly start");
  }
  if (msg_proc_cost.is_negative()) {
    fail("msg_proc_cost (" + secs(msg_proc_cost) + ") must be >= 0");
  }
  if (metrics_interval.is_negative()) {
    fail("metrics_interval (" + secs(metrics_interval) +
         ") must be >= 0 — zero disables telemetry sampling");
  }
  if (network.udp_loss < 0.0 || network.udp_loss > 1.0) {
    fail("network.udp_loss (" + std::to_string(network.udp_loss) +
         ") must be a probability in [0, 1]");
  }
  if (network.latency_min.is_negative() ||
      network.latency_min > network.latency_max) {
    fail("network latency range [" + secs(network.latency_min) + ", " +
         secs(network.latency_max) +
         "] must satisfy 0 <= latency_min <= latency_max");
  }

  for (std::string& e : checks.validate()) fail(std::move(e));

  {
    std::string spec_error;
    if (!membership::parse_spec(membership, &spec_error)) {
      fail("membership '" + membership + "': " + spec_error);
    }
  }

  if (!timeline.empty()) {
    if (anomaly.kind != AnomalyKind::kNone) {
      fail(std::string("scenario sets both anomaly (kind '") +
           anomaly_kind_name(anomaly.kind) +
           "') and a fault timeline — migrate the AnomalyPlan entry into the "
           "timeline (AnomalyPlan::to_timeline) or clear one of them");
    }
    for (std::string& e : timeline.validate(cluster_size)) {
      fail(std::move(e));
    }
  }

  const AnomalyPlan& a = anomaly;
  const std::string kind = anomaly_kind_name(a.kind);
  if (a.victims < 0) {
    fail("anomaly.victims (" + std::to_string(a.victims) + ") must be >= 0");
  }
  if (a.kind == AnomalyKind::kNone) {
    if (a.victims != 0) {
      fail("anomaly.victims (" + std::to_string(a.victims) +
           ") must be 0 for kind 'none' — pick an anomaly kind to afflict "
           "members");
    }
    return errors;
  }

  if (a.victims == 0) {
    fail("anomaly.victims must be >= 1 for kind '" + kind +
         "' — use AnomalyKind::kNone for a healthy baseline run");
  }
  if (a.victims > cluster_size) {
    fail("anomaly.victims (" + std::to_string(a.victims) +
         ") must be <= cluster_size (" + std::to_string(cluster_size) + ")");
  }

  switch (a.kind) {
    case AnomalyKind::kThreshold:
      if (a.duration <= Duration{0}) {
        fail("anomaly.duration (" + secs(a.duration) +
             ") must be > 0 for kind 'threshold' — it is the length D of "
             "the synchronized block");
      }
      break;
    case AnomalyKind::kInterval:
    case AnomalyKind::kFlapping:
      if (a.duration <= Duration{0}) {
        fail("anomaly.duration (" + secs(a.duration) +
             ") must be > 0 for kind '" + kind +
             "' — it is the blocked span D of each cycle");
      }
      if (a.interval <= Duration{0}) {
        fail("anomaly.interval (" + secs(a.interval) +
             ") must be > 0 for kind '" + kind +
             "' — it is the open window I between blocks; use 'threshold' "
             "for one uninterrupted block");
      }
      break;
    case AnomalyKind::kStress:
      if (a.stress.block_min <= Duration{0} ||
          a.stress.block_min > a.stress.block_max) {
        fail("anomaly.stress block range [" + secs(a.stress.block_min) +
             ", " + secs(a.stress.block_max) +
             "] must satisfy 0 < block_min <= block_max (spans are drawn "
             "log-uniform)");
      }
      if (a.stress.run_min <= Duration{0} ||
          a.stress.run_min > a.stress.run_max) {
        fail("anomaly.stress run range [" + secs(a.stress.run_min) + ", " +
             secs(a.stress.run_max) +
             "] must satisfy 0 < run_min <= run_max (spans are drawn "
             "log-uniform)");
      }
      break;
    case AnomalyKind::kPartition:
      if (a.victims >= cluster_size) {
        fail("anomaly.victims (" + std::to_string(a.victims) +
             ") is the island size and must be <= cluster_size - 1 (" +
             std::to_string(cluster_size - 1) +
             ") — a partition needs members on both sides");
      }
      if (a.duration <= Duration{0}) {
        fail("anomaly.duration (" + secs(a.duration) +
             ") must be > 0 for kind 'partition' — it is how long the "
             "split lasts before healing");
      } else if (a.duration > run_length) {
        fail("anomaly.duration (" + secs(a.duration) +
             ") must be <= run_length (" + secs(run_length) +
             ") for kind 'partition' — the heal and re-merge must fall "
             "inside the observation window");
      }
      break;
    case AnomalyKind::kChurn:
      if (a.victims >= cluster_size) {
        fail("anomaly.victims (" + std::to_string(a.victims) +
             ") must be <= cluster_size - 1 (" +
             std::to_string(cluster_size - 1) +
             ") for kind 'churn' — node 0 is the rejoin seed and is never "
             "churned");
      }
      if (a.duration <= Duration{0} || a.interval <= Duration{0}) {
        fail("anomaly.duration (" + secs(a.duration) +
             ") and anomaly.interval (" + secs(a.interval) +
             ") must both be > 0 for kind 'churn' — downtime after a crash "
             "and uptime after the restart");
      }
      break;
    case AnomalyKind::kNone:
      break;  // handled above
  }
  return errors;
}

namespace {

std::string join_errors(const std::vector<std::string>& errors) {
  std::string out = "invalid scenario:";
  for (const auto& e : errors) out += "\n  - " + e;
  return out;
}

}  // namespace

ScenarioError::ScenarioError(std::vector<std::string> errors)
    : std::runtime_error(join_errors(errors)), errors_(std::move(errors)) {}

// ---------------------------------------------------------------------------
// Engine

namespace {

/// Collect FP / FP⁻ counts and latency samples from the per-node event logs
/// (accounting per §V-F1/F2; see experiment.h for definitions).
void extract_results(sim::Simulator& sim, const std::vector<int>& victims,
                     TimePoint anomaly_start, RunResult& out) {
  std::set<std::string> victim_names;
  std::set<int> victim_set(victims.begin(), victims.end());
  for (int v : victims) victim_names.insert("node-" + std::to_string(v));

  // --- false positives ---
  for (int i = 0; i < sim.size(); ++i) {
    const bool reporter_is_victim = victim_set.contains(i);
    for (const auto& e : sim.events(i).events()) {
      if (e.type != swim::EventType::kFailed || !e.originated) continue;
      if (e.at < anomaly_start) continue;
      if (victim_names.contains(e.member)) continue;  // true-ish positive
      ++out.fp_events;
      if (!reporter_is_victim) ++out.fp_healthy_events;
    }
  }

  // --- detection / dissemination latency for the anomalous members ---
  for (int v : victims) {
    const std::string name = "node-" + std::to_string(v);
    double first = -1.0;
    bool all_healthy_marked = true;
    double last_healthy_mark = -1.0;
    for (int i = 0; i < sim.size(); ++i) {
      if (i == v) continue;
      double mark = -1.0;  // first time node i marked `name` failed
      for (const auto& e : sim.events(i).events()) {
        if (e.type != swim::EventType::kFailed || e.member != name) continue;
        if (e.at < anomaly_start) continue;
        const double t = (e.at - anomaly_start).seconds();
        if (mark < 0) mark = t;
        if (e.originated && (first < 0 || t < first)) first = t;
      }
      if (!victim_set.contains(i)) {
        if (mark < 0) {
          all_healthy_marked = false;
        } else {
          last_healthy_mark = std::max(last_healthy_mark, mark);
        }
      }
    }
    if (first >= 0) out.first_detect.push_back(first);
    if (first >= 0 && all_healthy_marked && last_healthy_mark >= 0) {
      out.full_dissem.push_back(last_healthy_mark);
    }
  }

  // --- load ---
  out.metrics = sim.aggregate_metrics();
  out.msgs_sent = out.metrics.counter_value("net.msgs_sent");
  out.bytes_sent = out.metrics.counter_value("net.bytes_sent");
}

}  // namespace

fault::Timeline Scenario::effective_timeline() const {
  if (!timeline.empty()) return timeline;
  return anomaly.to_timeline(run_length);
}

RunResult run(const Scenario& s, const std::vector<check::TraceSink*>& sinks) {
  if (auto errors = s.validate(); !errors.empty()) {
    throw ScenarioError(std::move(errors));
  }

  // Failure-only recording: extract_results reads nothing but kFailed
  // events, so this is metric-identical — and it keeps a big-* scenario's
  // O(n²) join storm out of memory. Checks and traces ride the EventBus and
  // see the full stream either way.
  auto cluster = ClusterBuilder()
                     .size(s.cluster_size)
                     .config(s.config)
                     .seed(s.seed)
                     .network(s.network)
                     .msg_proc_cost(s.msg_proc_cost)
                     .recv_buffer_bytes(s.recv_buffer_bytes)
                     .record_failures_only(true)
                     .membership(s.membership)
                     .build();
  sim::Simulator& sim = *cluster->simulator();

  // The checking layer observes the whole run (including the quiesce — a
  // trace replays from virtual time zero), so the tap attaches before
  // start(). Observers never perturb the run: no Rng draws, no mutation.
  std::optional<check::Checker> checker;
  std::vector<check::TraceSink*> all_sinks = sinks;
  if (s.checks.enabled) {
    checker.emplace(s.checks, s.config, s.cluster_size, s.membership);
    checker->bind(&sim);
    all_sinks.push_back(&*checker);
  }
  std::optional<check::EventTap> tap;
  if (!all_sinks.empty()) tap.emplace(sim, all_sinks);

  // Telemetry snapshots (obs::Sampler): scheduled before start() so the first
  // tick lands exactly one interval into virtual time — a replayed run's
  // sampler starts the same way, keeping the recorded series bit-identical.
  std::optional<obs::Sampler> sampler;
  if (s.metrics_interval > Duration{0}) {
    sampler.emplace(sim, s.metrics_interval, all_sinks);
    sampler->start();
  }

  cluster->start();
  cluster->run_for(s.quiesce);

  // One path for every scenario: compile the effective timeline (the
  // explicit one, or the AnomalyPlan shim's one-entry equivalent) onto the
  // event queue and run until every entry has completed and settled.
  const fault::Timeline tl = s.effective_timeline();
  const TimePoint start = sim.now();
  const fault::InjectionOutcome outcome =
      fault::FaultInjector().inject(sim, tl, start, s.run_length);
  sim.run_until(start + outcome.total_run);

  RunResult out;
  out.scenario_name = s.name;
  out.cluster_size = s.cluster_size;
  out.victims = outcome.victims;
  extract_results(sim, outcome.victims, start, out);
  if (sampler) out.series = sampler->take_series();
  if (checker) {
    checker->finish(sim.now());
    out.checks = checker->report();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry

void ScenarioRegistry::add(Scenario s) {
  if (auto errors = s.validate(); !errors.empty()) {
    throw ScenarioError(std::move(errors));
  }
  if (find(s.name) != nullptr) {
    throw ScenarioError({"a scenario named '" + s.name +
                         "' is already registered — scenario names are "
                         "unique registry keys"});
  }
  scenarios_.push_back(std::move(s));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.name);
  return out;
}

namespace {

ScenarioRegistry make_builtin() {
  ScenarioRegistry reg;
  auto base = [](std::string name, std::string summary, std::string ref) {
    Scenario s;
    s.name = std::move(name);
    s.summary = std::move(summary);
    s.paper_ref = std::move(ref);
    return s;
  };

  // ---- the paper's evaluation setups ----
  {
    Scenario s = base("fig1-cpu-exhaustion",
                      "100 members, 4 under stochastic CPU starvation for "
                      "5 minutes; count FP and FP- declarations",
                      "Fig. 1");
    s.cluster_size = 100;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::stressed(4);
    s.run_length = sec(300);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("fig2-total-false-positives",
                      "Interval anomalies (C=8, D=16.384 s, I=4 ms) under "
                      "the SWIM baseline; total FP events",
                      "Fig. 2");
    s.cluster_size = 128;
    s.config = swim::Config::swim_baseline();
    s.anomaly = AnomalyPlan::cycling(8, msec(16384), msec(4));
    s.run_length = sec(120);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("fig3-fp-at-healthy",
                      "Same interval workload under full Lifeguard; FP- "
                      "events at healthy members",
                      "Fig. 3");
    s.cluster_size = 128;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::cycling(8, msec(16384), msec(4));
    s.run_length = sec(120);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("table4-false-positives",
                      "Representative interval grid point (C=4, D=8 s, "
                      "I=64 ms) for the FP aggregation",
                      "Table IV");
    s.cluster_size = 128;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::cycling(4, sec(8), msec(64));
    s.run_length = sec(120);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("table5-latency",
                      "Threshold anomaly (C=4, D=16 s): first-detection and "
                      "full-dissemination latency",
                      "Table V");
    s.cluster_size = 128;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::threshold(4, sec(16));
    s.run_length = sec(70);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("table6-message-load",
                      "Low-intensity interval workload; compound message "
                      "and byte counts",
                      "Table VI");
    s.cluster_size = 128;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::cycling(4, sec(8), msec(64));
    s.run_length = sec(120);
    s.seed = 2;
    reg.add(std::move(s));
  }
  {
    Scenario s = base("table7-alpha-beta",
                      "Aggressive suspicion tuning (alpha=2, beta=6): the "
                      "latency/FP trade-off point",
                      "Table VII");
    s.cluster_size = 128;
    swim::Config cfg = swim::Config::lifeguard();
    cfg.suspicion_alpha = 2.0;
    cfg.suspicion_beta = 6.0;
    s.config = cfg;
    s.anomaly = AnomalyPlan::threshold(4, sec(16));
    s.run_length = sec(70);
    reg.add(std::move(s));
  }

  // ---- beyond the paper ----
  {
    Scenario s = base("steady-state",
                      "Healthy 64-member cluster for one minute; baseline "
                      "message load and zero-FP check",
                      "");
    s.cluster_size = 64;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::none();
    s.run_length = sec(60);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("partition-split-heal",
                      "8 of 16 members split off for 60 s, then the "
                      "partition heals and the views re-merge",
                      "");
    s.cluster_size = 16;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::partition(8, sec(60));
    s.run_length = sec(150);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("flapping-overload",
                      "4 of 64 members flap with unsynchronized 16 s stalls "
                      "and 5 ms open windows for two minutes",
                      "");
    s.cluster_size = 64;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::flapping(4, sec(16), msec(5));
    s.run_length = sec(120);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("churn-rolling-restarts",
                      "4 of 32 members crash and rejoin in staggered "
                      "20 s-down / 40 s-up cycles for two minutes",
                      "");
    s.cluster_size = 32;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::churn(4, sec(20), sec(40));
    s.run_length = sec(120);
    reg.add(std::move(s));
  }

  // ---- composed fault timelines (inexpressible as a single AnomalyPlan) --
  {
    Scenario s = base("partition-under-stress",
                      "2 members CPU-starved the whole minute while 5 others "
                      "split off mid-run and re-merge 20 s later",
                      "");
    s.cluster_size = 16;
    s.config = swim::Config::lifeguard();
    s.timeline.add(sec(0), sec(60), fault::Fault::stressed(),
                   fault::VictimSelector::uniform(2));
    s.timeline.add(sec(15), sec(20), fault::Fault::partition(),
                   fault::VictimSelector::uniform(5));
    s.run_length = sec(60);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("lossy-flapping",
                      "3 members flap (8 s stalls, 100 ms windows) while a "
                      "quarter of the cluster sits behind 30% lossy links",
                      "");
    s.cluster_size = 32;
    s.config = swim::Config::lifeguard();
    s.timeline.add(sec(0), sec(90), fault::Fault::flapping(sec(8), msec(100)),
                   fault::VictimSelector::uniform(3));
    s.timeline.add(sec(0), sec(90), fault::Fault::link_loss(0.3, 0.3),
                   fault::VictimSelector::fraction_of(0.25));
    s.run_length = sec(90);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("churn-after-heal",
                      "a 5-member island splits off for 30 s; 10 s after the "
                      "heal, 3 members churn in 10 s-down / 20 s-up cycles",
                      "");
    s.cluster_size = 16;
    s.config = swim::Config::lifeguard();
    s.timeline.add(sec(0), sec(30), fault::Fault::partition(),
                   fault::VictimSelector::uniform(5));
    s.timeline.add(sec(40), sec(50), fault::Fault::churn(sec(10), sec(20)),
                   fault::VictimSelector::uniform(3));
    s.run_length = sec(100);
    reg.add(std::move(s));
  }
  {
    Scenario s = base("packet-chaos",
                      "half the cluster behind jittery +30 ms links while 6 "
                      "members duplicate and 6 reorder their UDP traffic",
                      "");
    s.cluster_size = 24;
    s.config = swim::Config::lifeguard();
    s.timeline.add(sec(0), sec(60), fault::Fault::latency(msec(30), msec(20)),
                   fault::VictimSelector::fraction_of(0.5));
    s.timeline.add(sec(10), sec(40), fault::Fault::duplicate(0.25),
                   fault::VictimSelector::uniform(6));
    s.timeline.add(sec(20), sec(30), fault::Fault::reorder(0.3, msec(200)),
                   fault::VictimSelector::uniform(6));
    s.run_length = sec(60);
    reg.add(std::move(s));
  }

  // ---- membership-backend scenarios (src/membership) ----
  // The registry's checked entries for the non-swim backends: the central
  // heartbeat detector under member and coordinator failures, and the static
  // no-detection control. All run the full invariant suite — the SWIM-only
  // invariants auto-disable, the generic ones (legal-transitions,
  // convergence, no-send-from-crashed, partition-containment) stay on.
  {
    Scenario s = base("central-crash-detect",
                      "central heartbeat detector: 3 of 16 members blocked "
                      "for 20 s; the coordinator declares them failed and "
                      "re-admits them on recovery",
                      "");
    s.cluster_size = 16;
    s.config = swim::Config::lifeguard();
    s.membership = "central";
    s.timeline.add(sec(10), sec(20), fault::Fault::block(),
                   fault::VictimSelector::nodes({3, 7, 11}));
    s.run_length = sec(60);
    s.checks = check::Spec::all();
    reg.add(std::move(s));
  }
  {
    Scenario s = base("central-coordinator-crash",
                      "the central detector's single point of failure: the "
                      "coordinator (node 0) blocked for 15 s; members reach "
                      "their miss threshold and declare it failed",
                      "");
    s.cluster_size = 16;
    s.config = swim::Config::lifeguard();
    s.membership = "central:miss=4";
    s.timeline.add(sec(10), sec(15), fault::Fault::block(),
                   fault::VictimSelector::nodes({0}));
    s.run_length = sec(60);
    s.checks = check::Spec::all();
    reg.add(std::move(s));
  }
  {
    Scenario s = base("static-floor",
                      "static membership control: 2 members blocked for 10 s "
                      "with no detector running — the zero-FP, zero-message "
                      "noise floor for backend comparisons",
                      "");
    s.cluster_size = 16;
    s.config = swim::Config::lifeguard();
    s.membership = "static";
    s.timeline.add(sec(10), sec(10), fault::Fault::block(),
                   fault::VictimSelector::nodes({5, 9}));
    s.run_length = sec(30);
    s.checks = check::Spec::all();
    reg.add(std::move(s));
  }
  // ---- the live tier (src/live): real processes, real UDP on loopback ----
  // Every scenario here runs on both backends (the registry validates them
  // like any other entry, and the parity smoke test exercises that), but
  // their shape is chosen for wall-clock viability: small clusters, fast
  // protocol intervals, explicit victim sets so sim and live agree on who is
  // faulted, and a generous timeout_slack because real schedulers jitter.
  auto live_config = [] {
    swim::Config c = swim::Config::lifeguard();
    c.probe_interval = msec(200);
    c.probe_timeout = msec(100);
    c.gossip_interval = msec(100);
    c.push_pull_interval = sec(5);
    c.reconnect_interval = sec(3);
    return c;
  };
  auto live_checks = [] {
    check::Spec spec = check::Spec::all();
    spec.timeout_slack = 0.25;
    spec.convergence_settle = sec(6);
    return spec;
  };
  {
    Scenario s = base("live-healthy",
                      "8 real processes over loopback UDP, no faults: join "
                      "storm, convergence and steady gossip under a wall "
                      "clock",
                      "");
    s.cluster_size = 8;
    s.config = live_config();
    s.anomaly = AnomalyPlan::none();
    s.quiesce = sec(5);
    s.run_length = sec(8);
    s.checks = live_checks();
    reg.add(std::move(s));
  }
  {
    Scenario s = base("live-lossy",
                      "8 live members; two sit behind 25% lossy links (both "
                      "directions) applied by the userspace netem shim",
                      "");
    s.cluster_size = 8;
    s.config = live_config();
    s.timeline.add(sec(0), sec(10), fault::Fault::link_loss(0.25, 0.25),
                   fault::VictimSelector::nodes({2, 5}));
    s.quiesce = sec(5);
    s.run_length = sec(10);
    s.checks = live_checks();
    reg.add(std::move(s));
  }
  {
    Scenario s = base("live-crash-restart",
                      "a live member is SIGKILLed and respawned on its old "
                      "port in 4 s-down / 3 s-up cycles",
                      "");
    s.cluster_size = 8;
    s.config = live_config();
    // Cycle (4s + 3s) <= the 8s span, so the random phase cannot push the
    // first kill past the span — every run really crashes the victim.
    s.timeline.add(sec(0), sec(8), fault::Fault::churn(sec(4), sec(3)),
                   fault::VictimSelector::nodes({3}));
    s.quiesce = sec(5);
    s.run_length = sec(12);
    s.checks = live_checks();
    reg.add(std::move(s));
  }
  {
    Scenario s = base("live-partition-under-stress",
                      "one live member SIGSTOPped in random bursts while a "
                      "3-member island is blocked off for 4 s mid-run",
                      "");
    s.cluster_size = 10;
    s.config = live_config();
    {
      sim::StressParams stress;
      stress.block_min = msec(500);
      stress.block_max = sec(2);
      stress.run_min = msec(100);
      stress.run_max = msec(500);
      s.timeline.add(sec(0), sec(8), fault::Fault::stressed(stress),
                     fault::VictimSelector::nodes({7}));
    }
    s.timeline.add(sec(2), sec(4), fault::Fault::partition(),
                   fault::VictimSelector::island(3, 4));
    s.quiesce = sec(5);
    s.run_length = sec(10);
    s.checks = live_checks();
    reg.add(std::move(s));
  }

  // ---- the large-cluster tier (enabled by the perf:: optimization pass) --
  // Protocol invariants are on by default for this tier: at these sizes the
  // interesting failures are emergent (join storms, dissemination backlogs),
  // and a metric assertion alone would miss a mid-run safety violation.
  // Budget note: these run minutes of wall time on one core (the 4k
  // scenario tens of minutes) — CI runs them out of band, not in ctest.
  {
    Scenario s = base("big-healthy-2k",
                      "2000-member healthy cluster: the large-cluster "
                      "baseline (join storm, convergence, steady gossip)",
                      "");
    s.cluster_size = 2000;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::none();
    s.quiesce = sec(30);
    s.run_length = sec(20);
    s.checks = check::Spec::all();
    reg.add(std::move(s));
  }
  {
    Scenario s = base("big-flapping-1k",
                      "8 of 1000 members flap with 25 s stalls and 50 ms "
                      "open windows (past the n=1000 suspicion floor of "
                      "alpha*log10(n) ~ 15 s, so victims are detected)",
                      "");
    s.cluster_size = 1000;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::flapping(8, sec(25), msec(50));
    s.quiesce = sec(25);
    s.run_length = sec(50);
    s.checks = check::Spec::all();
    reg.add(std::move(s));
  }
  {
    Scenario s = base("big-churn-2k",
                      "4 of 2000 members crash and rejoin in 15 s-down / "
                      "30 s-up cycles",
                      "");
    s.cluster_size = 2000;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::churn(4, sec(15), sec(30));
    s.quiesce = sec(30);
    s.run_length = sec(45);
    s.checks = check::Spec::all();
    reg.add(std::move(s));
  }
  {
    Scenario s = base("big-partition-4k",
                      "a 48-member island splits from a 4000-member cluster "
                      "for 30 s, then heals",
                      "");
    s.cluster_size = 4000;
    s.config = swim::Config::lifeguard();
    s.anomaly = AnomalyPlan::partition(48, sec(30));
    s.quiesce = sec(40);
    s.run_length = sec(60);
    s.checks = check::Spec::all();
    reg.add(std::move(s));
  }

  return reg;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  // Meyers singleton: C++11 guarantees race-free one-time initialization,
  // and the registry is immutable afterwards — safe to call from concurrent
  // campaign workers.
  static const ScenarioRegistry reg = make_builtin();
  return reg;
}

}  // namespace lifeguard::harness
