// Baseline metric gates — scenarios/baselines.json and the --gate verdict.
//
// A ScenarioBaseline pins one (scenario, seed) run's behavioral envelope:
// per-metric [lo, hi] bands over the paper's §V metrics (false-positive
// counts, detection/dissemination latency, message and byte load) plus the
// invariant-violation count. record_baseline() derives the bands from one
// run with a fixed policy — counts that must not move (detections,
// violations) get exact bands; noisy counts (FPs) get ±25% + 2 absolute;
// load gets ±10%; latency seconds get ±25% + 0.25 s — so an intentional
// behavior change re-records (tools/record-baselines.sh), while a drive-by
// regression that shifts detection latency or FP counts without tripping an
// invariant now fails CI with a per-metric diff.
//
// The committed artifact (scenarios/baselines.json) is deterministic data:
// bands derive only from the (scenario, seed) run, no timestamps or host
// fingerprints, so re-recording on an unchanged tree is byte-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/scenario.h"

namespace lifeguard::harness {

/// One gated metric's allowed range (inclusive on both ends).
struct MetricBand {
  std::string metric;
  double lo = 0.0;
  double hi = 0.0;

  bool operator==(const MetricBand&) const = default;
};

/// One scenario's recorded envelope. Bands gate the recorded seed only —
/// a different seed is a different run, reported as a gate failure rather
/// than silently compared against the wrong envelope.
struct ScenarioBaseline {
  std::string scenario;
  std::uint64_t seed = 1;
  std::vector<MetricBand> bands;

  const MetricBand* find(const std::string& metric) const;

  bool operator==(const ScenarioBaseline&) const = default;
};

/// The scenarios/baselines.json document: one entry per gated scenario.
struct BaselineSet {
  std::vector<ScenarioBaseline> entries;

  const ScenarioBaseline* find(const std::string& scenario) const;
};

/// One observed metric value. Latency metrics are emitted only when the run
/// produced samples (a healthy-baseline scenario has no detections), so a
/// baseline recorded with them present also asserts they stay present.
struct GateMetric {
  std::string name;
  double value = 0.0;
};

/// The §V metric vector of one finished run, in stable order: fp_events,
/// fp_healthy_events, detections, detect_p50_s / detect_max_s /
/// dissem_p50_s (when sampled), msgs_sent, bytes_sent, and violations
/// (when the scenario checks invariants).
std::vector<GateMetric> gate_metrics(const Scenario& s, const RunResult& r);

/// Derive a baseline from one run under the fixed band policy above.
ScenarioBaseline record_baseline(const Scenario& s, const RunResult& r);

/// One out-of-band metric in a gate verdict.
struct GateDiff {
  std::string metric;
  double value = 0.0;  ///< NaN when the metric is missing from the run
  double lo = 0.0;
  double hi = 0.0;
  bool missing = false;

  /// "fp_events = 12 outside [0, 6.5]" / "detect_p50_s missing from run
  /// (expected within [1.1, 1.9])".
  std::string describe() const;
};

/// Gate verdict for one run: passed, or an `error` (no baseline entry /
/// seed mismatch) plus the per-metric `diffs`.
struct GateReport {
  std::string scenario;
  bool passed = true;
  std::string error;  ///< non-metric failure reason; empty otherwise
  std::vector<GateDiff> diffs;

  /// Multi-line human verdict ("gate OK ..." / "gate FAIL ..." with one
  /// indented line per out-of-band metric).
  std::string describe() const;
};

GateReport gate_run(const Scenario& s, const RunResult& r,
                    const BaselineSet& baselines);

/// Pretty-printed scenarios/baselines.json document.
std::string baselines_to_json(const BaselineSet& set);
/// Strict parse — unknown keys and malformed values fail with a message
/// naming the offending key (the document is machine-written; anything
/// unexpected is a hand-edit gone wrong).
std::optional<BaselineSet> baselines_from_json(const std::string& text,
                                               std::string& error);

bool save_baselines_file(const BaselineSet& set, const std::string& path,
                         std::string& error);
std::optional<BaselineSet> load_baselines_file(const std::string& path,
                                               std::string& error);

}  // namespace lifeguard::harness
