// Campaign reporters: structured artifacts and live progress.
//
// A Reporter observes a campaign run. The engine calls begin() once,
// progress() after every completed trial (completion order — suitable for a
// live meter), on_trial() once per trial strictly in trial-index order, and
// end() once with the folded result. All callbacks arrive under the engine's
// lock, so reporter implementations need no synchronization; artifacts
// written from on_trial()/end() are byte-identical for every `jobs` level
// because nothing execution-dependent (wall time, thread ids, job count) is
// ever emitted.
//
//   JsonlReporter — one JSON object per line: a campaign header, one
//     "trial" line per trial, one "aggregate" line per grid point.
//   CsvReporter   — a header row plus one row per trial (axis labels as
//     leading columns after the trial coordinates).
//   ProgressReporter — "\rname: done/total trials" on a stream (stderr for
//     bench binaries); prints a newline when the run completes.
#pragma once

#include <iosfwd>
#include <string>

#include "harness/campaign.h"

namespace lifeguard::harness {

class Reporter {
 public:
  virtual ~Reporter() = default;

  /// Once, before any trial runs. `grid` is the expanded cartesian product;
  /// `total_trials` = grid size × repetitions.
  virtual void begin(const Campaign& c, const std::vector<GridPoint>& grid,
                     int total_trials);
  /// After each trial completes, in completion order.
  virtual void progress(int done, int total);
  /// Once per trial, strictly in trial-index order (the engine holds back
  /// out-of-order completions until their predecessors are emitted).
  virtual void on_trial(const TrialResult& t);
  /// Once, after every trial has been emitted.
  virtual void end(const CampaignResult& r);
};

/// JSON-Lines artifact writer. The stream must outlive the reporter.
class JsonlReporter : public Reporter {
 public:
  explicit JsonlReporter(std::ostream& out) : out_(out) {}
  void begin(const Campaign& c, const std::vector<GridPoint>& grid,
             int total_trials) override;
  void on_trial(const TrialResult& t) override;
  void end(const CampaignResult& r) override;

 private:
  std::ostream& out_;
  std::vector<std::string> axis_names_;
  /// Per-point axis labels only — the full GridPoint Scenarios stay with
  /// the engine.
  std::vector<std::vector<std::string>> labels_;
};

/// Per-trial CSV writer. The stream must outlive the reporter.
class CsvReporter : public Reporter {
 public:
  explicit CsvReporter(std::ostream& out) : out_(out) {}
  void begin(const Campaign& c, const std::vector<GridPoint>& grid,
             int total_trials) override;
  void on_trial(const TrialResult& t) override;

 private:
  std::ostream& out_;
  std::vector<std::vector<std::string>> labels_;
};

/// Live one-line progress meter ("name: 12/36 trials").
class ProgressReporter : public Reporter {
 public:
  /// Writes to `out` (pass stderr-backed streams for bench binaries).
  explicit ProgressReporter(std::string label, std::ostream& out);
  /// Convenience: writes to std::clog (stderr).
  explicit ProgressReporter(std::string label);
  void progress(int done, int total) override;

 private:
  std::string label_;
  std::ostream& out_;
};

/// Escape a string for embedding in a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);
/// Shortest round-trip decimal rendering of a double ("%.17g", trimmed).
std::string json_double(double v);
/// Quote a CSV field iff it contains a comma, quote, or newline.
std::string csv_field(const std::string& s);

}  // namespace lifeguard::harness
