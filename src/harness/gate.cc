#include "harness/gate.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "check/flatjson.h"
#include "harness/report.h"

namespace lifeguard::harness {

namespace flatjson = check::flatjson;

using flatjson::Value;

const MetricBand* ScenarioBaseline::find(const std::string& metric) const {
  for (const MetricBand& b : bands) {
    if (b.metric == metric) return &b;
  }
  return nullptr;
}

const ScenarioBaseline* BaselineSet::find(const std::string& scenario) const {
  for (const ScenarioBaseline& e : entries) {
    if (e.scenario == scenario) return &e;
  }
  return nullptr;
}

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

/// Short human form for values and bounds ("12", "1.34", "2.6e+06").
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// ---- band policy (see the header comment) ----

MetricBand exact_band(const char* metric, double v) {
  return {metric, v, v};
}

MetricBand count_band(const char* metric, double v) {
  const double slack = 0.25 * v + 2.0;
  return {metric, std::max(0.0, v - slack), v + slack};
}

MetricBand load_band(const char* metric, double v) {
  return {metric, 0.90 * v, 1.10 * v};
}

MetricBand latency_band(const char* metric, double v) {
  const double slack = 0.25 * v + 0.25;
  return {metric, std::max(0.0, v - slack), v + slack};
}

}  // namespace

std::vector<GateMetric> gate_metrics(const Scenario& s, const RunResult& r) {
  std::vector<GateMetric> out;
  out.push_back({"fp_events", static_cast<double>(r.fp_events)});
  out.push_back({"fp_healthy_events",
                 static_cast<double>(r.fp_healthy_events)});
  out.push_back({"detections", static_cast<double>(r.first_detect.size())});
  if (!r.first_detect.empty()) {
    out.push_back({"detect_p50_s", median(r.first_detect)});
    out.push_back({"detect_max_s", *std::max_element(r.first_detect.begin(),
                                                     r.first_detect.end())});
  }
  if (!r.full_dissem.empty()) {
    out.push_back({"dissem_p50_s", median(r.full_dissem)});
  }
  out.push_back({"msgs_sent", static_cast<double>(r.msgs_sent)});
  out.push_back({"bytes_sent", static_cast<double>(r.bytes_sent)});
  if (s.checks.enabled) {
    out.push_back({"violations",
                   static_cast<double>(r.checks.total_violations)});
  }
  return out;
}

ScenarioBaseline record_baseline(const Scenario& s, const RunResult& r) {
  ScenarioBaseline b;
  b.scenario = s.name;
  b.seed = s.seed;
  for (const GateMetric& m : gate_metrics(s, r)) {
    if (m.name == "detections" || m.name == "violations") {
      b.bands.push_back(exact_band(m.name.c_str(), m.value));
    } else if (m.name == "fp_events" || m.name == "fp_healthy_events") {
      b.bands.push_back(count_band(m.name.c_str(), m.value));
    } else if (m.name == "msgs_sent" || m.name == "bytes_sent") {
      b.bands.push_back(load_band(m.name.c_str(), m.value));
    } else {  // latency seconds
      b.bands.push_back(latency_band(m.name.c_str(), m.value));
    }
  }
  return b;
}

std::string GateDiff::describe() const {
  if (missing) {
    return metric + " missing from run (expected within [" + fmt(lo) + ", " +
           fmt(hi) + "])";
  }
  return metric + " = " + fmt(value) + " outside [" + fmt(lo) + ", " +
         fmt(hi) + "]";
}

std::string GateReport::describe() const {
  if (passed) {
    return "gate OK " + scenario;
  }
  std::string out = "gate FAIL " + scenario;
  if (!error.empty()) {
    out += ": " + error;
  }
  for (const GateDiff& d : diffs) {
    out += "\n  " + d.describe();
  }
  return out;
}

GateReport gate_run(const Scenario& s, const RunResult& r,
                    const BaselineSet& baselines) {
  GateReport report;
  report.scenario = s.name;
  const ScenarioBaseline* base = baselines.find(s.name);
  if (base == nullptr) {
    report.passed = false;
    report.error = "no baseline recorded for scenario '" + s.name +
                   "' (re-record with tools/record-baselines.sh)";
    return report;
  }
  if (base->seed != s.seed) {
    report.passed = false;
    report.error = "seed mismatch: run used " + std::to_string(s.seed) +
                   " but the baseline was recorded at seed " +
                   std::to_string(base->seed) +
                   " (bands gate the recorded seed only)";
    return report;
  }
  const std::vector<GateMetric> metrics = gate_metrics(s, r);
  for (const MetricBand& band : base->bands) {
    const GateMetric* m = nullptr;
    for (const GateMetric& candidate : metrics) {
      if (candidate.name == band.metric) {
        m = &candidate;
        break;
      }
    }
    if (m == nullptr) {
      report.diffs.push_back({band.metric,
                              std::numeric_limits<double>::quiet_NaN(),
                              band.lo, band.hi, /*missing=*/true});
      continue;
    }
    if (m->value < band.lo || m->value > band.hi) {
      report.diffs.push_back({band.metric, m->value, band.lo, band.hi,
                              /*missing=*/false});
    }
  }
  report.passed = report.diffs.empty();
  return report;
}

// ---------------------------------------------------------------------------
// Codec

std::string baselines_to_json(const BaselineSet& set) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"type\": \"scenario-baselines\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"entries\": [\n";
  for (std::size_t i = 0; i < set.entries.size(); ++i) {
    const ScenarioBaseline& e = set.entries[i];
    os << "    {\n";
    os << "      \"scenario\": \"" << json_escape(e.scenario) << "\",\n";
    os << "      \"seed\": \"" << e.seed << "\",\n";
    os << "      \"bands\": [\n";
    for (std::size_t j = 0; j < e.bands.size(); ++j) {
      const MetricBand& b = e.bands[j];
      os << "        {\"metric\": \"" << json_escape(b.metric)
         << "\", \"lo\": " << json_double(b.lo)
         << ", \"hi\": " << json_double(b.hi) << "}"
         << (j + 1 < e.bands.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (i + 1 < set.entries.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

namespace {

bool check_keys(const Value& o, std::initializer_list<const char*> known,
                const char* where, std::string& error) {
  for (const auto& member : o.members) {
    bool ok = false;
    for (const char* k : known) {
      if (member.first == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      error = std::string("unknown key '") + member.first + "' in " + where;
      return false;
    }
  }
  return true;
}

bool parse_band(const Value& o, MetricBand& band, std::string& error) {
  if (o.kind != Value::Kind::kObject) {
    error = "array 'bands' holds a non-object element";
    return false;
  }
  if (!check_keys(o, {"metric", "lo", "hi"}, "a baseline band", error)) {
    return false;
  }
  return flatjson::get_str(o, "metric", band.metric, error) &&
         flatjson::get_dbl(o, "lo", band.lo, error) &&
         flatjson::get_dbl(o, "hi", band.hi, error);
}

bool parse_entry(const Value& o, ScenarioBaseline& entry,
                 std::string& error) {
  if (o.kind != Value::Kind::kObject) {
    error = "array 'entries' holds a non-object element";
    return false;
  }
  if (!check_keys(o, {"scenario", "seed", "bands"}, "a baseline entry",
                  error)) {
    return false;
  }
  if (!flatjson::get_str(o, "scenario", entry.scenario, error) ||
      !flatjson::get_u64(o, "seed", entry.seed, error)) {
    return false;
  }
  const Value* bands = o.find("bands");
  if (bands == nullptr || bands->kind != Value::Kind::kArray) {
    error = "missing array field 'bands' in baseline entry '" +
            entry.scenario + "'";
    return false;
  }
  for (const Value& b : bands->array) {
    MetricBand band;
    if (!parse_band(b, band, error)) {
      error = "baseline entry '" + entry.scenario + "': " + error;
      return false;
    }
    entry.bands.push_back(std::move(band));
  }
  return true;
}

}  // namespace

std::optional<BaselineSet> baselines_from_json(const std::string& text,
                                               std::string& error) {
  Value doc;
  if (!flatjson::parse(text, doc, error)) return std::nullopt;
  if (!check_keys(doc, {"type", "version", "entries"}, "a baselines file",
                  error)) {
    return std::nullopt;
  }
  std::string type;
  if (!flatjson::get_str(doc, "type", type, error)) return std::nullopt;
  if (type != "scenario-baselines") {
    error = "not a baselines file: type is '" + type +
            "' (expected 'scenario-baselines')";
    return std::nullopt;
  }
  std::int64_t version = 0;
  if (!flatjson::get_i64(doc, "version", version, error)) return std::nullopt;
  if (version != 1) {
    error = "unsupported baselines version " + std::to_string(version) +
            " (this build reads version 1)";
    return std::nullopt;
  }
  const Value* entries = doc.find("entries");
  if (entries == nullptr || entries->kind != Value::Kind::kArray) {
    error = "missing array field 'entries'";
    return std::nullopt;
  }
  BaselineSet set;
  for (const Value& e : entries->array) {
    ScenarioBaseline entry;
    if (!parse_entry(e, entry, error)) return std::nullopt;
    if (set.find(entry.scenario) != nullptr) {
      error = "duplicate baseline entry '" + entry.scenario + "'";
      return std::nullopt;
    }
    set.entries.push_back(std::move(entry));
  }
  return set;
}

bool save_baselines_file(const BaselineSet& set, const std::string& path,
                         std::string& error) {
  std::ofstream out(path);
  if (!out) {
    error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << baselines_to_json(set);
  out.flush();
  if (!out) {
    error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::optional<BaselineSet> load_baselines_file(const std::string& path,
                                               std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = baselines_from_json(buf.str(), error);
  if (!parsed) error = path + ": " + error;
  return parsed;
}

}  // namespace lifeguard::harness
