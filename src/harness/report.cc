#include "harness/report.h"

#include <charconv>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "harness/stats.h"

namespace lifeguard::harness {

void Reporter::begin(const Campaign&, const std::vector<GridPoint>&, int) {}
void Reporter::progress(int, int) {}
void Reporter::on_trial(const TrialResult&) {}
void Reporter::end(const CampaignResult&) {}

// ---------------------------------------------------------------------------
// Encoding helpers

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec == std::errc{}) return std::string(buf, res.ptr);
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

namespace {

std::string coords_json(const std::vector<std::string>& axis_names,
                        const std::vector<std::string>& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(axis_names[i]) + "\":\"" +
           json_escape(labels[i]) + "\"";
  }
  out += "}";
  return out;
}

std::string samples_json(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += json_double(v[i]);
  }
  out += "]";
  return out;
}

std::string summary_json(const Summary& s) {
  const ConfInterval ci = t_interval(s);
  std::string out = "{";
  out += "\"count\":" + std::to_string(s.count);
  out += ",\"mean\":" + json_double(s.mean);
  out += ",\"stddev\":" + json_double(s.stddev);
  out += ",\"min\":" + json_double(s.min);
  out += ",\"max\":" + json_double(s.max);
  out += ",\"p50\":" + json_double(s.p50);
  out += ",\"p99\":" + json_double(s.p99);
  out += ",\"ci95\":" + json_double(ci.half_width);
  out += "}";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// JsonlReporter

void JsonlReporter::begin(const Campaign& c, const std::vector<GridPoint>& grid,
                          int total_trials) {
  axis_names_.clear();
  for (const Axis& a : c.axes) axis_names_.push_back(a.name);
  labels_.clear();
  labels_.reserve(grid.size());
  for (const GridPoint& p : grid) labels_.push_back(p.labels);
  out_ << "{\"type\":\"campaign\",\"name\":\"" << json_escape(c.name)
       << "\",\"axes\":[";
  for (std::size_t i = 0; i < axis_names_.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << "\"" << json_escape(axis_names_[i]) << "\"";
  }
  // base_seed as a string: 64-bit values overflow the doubles most JSON
  // consumers parse numbers into.
  out_ << "],\"points\":" << grid.size() << ",\"repetitions\":" << c.repetitions
       << ",\"trials\":" << total_trials << ",\"base_seed\":\"" << c.base_seed
       << "\"}\n";
}

void JsonlReporter::on_trial(const TrialResult& t) {
  const auto& labels = labels_[static_cast<std::size_t>(t.point_index)];
  out_ << "{\"type\":\"trial\",\"trial\":" << t.trial_index
       << ",\"point\":" << t.point_index << ",\"rep\":" << t.rep
       << ",\"seed\":\"" << t.seed << "\",\"coords\":"
       << coords_json(axis_names_, labels) << ",\"scenario\":\""
       << json_escape(t.result.scenario_name)
       << "\",\"cluster_size\":" << t.result.cluster_size
       << ",\"fp\":" << t.result.fp_events
       << ",\"fp_healthy\":" << t.result.fp_healthy_events
       << ",\"msgs\":" << t.result.msgs_sent
       << ",\"bytes\":" << t.result.bytes_sent << ",\"first_detect\":"
       << samples_json(t.result.first_detect) << ",\"full_dissem\":"
       << samples_json(t.result.full_dissem)
       << ",\"checked\":" << (t.result.checks.checked ? "true" : "false")
       << ",\"violations\":" << t.result.checks.total_violations;
  if (t.result.checks.total_violations > 0) {
    out_ << ",\"violated\":[";
    const auto names = t.result.checks.violated_invariants();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out_ << ",";
      out_ << "\"" << json_escape(names[i]) << "\"";
    }
    out_ << "]";
  }
  out_ << "}\n";
}

void JsonlReporter::end(const CampaignResult& r) {
  for (const PointStats& ps : r.points) {
    out_ << "{\"type\":\"aggregate\",\"point\":" << ps.point_index
         << ",\"coords\":" << coords_json(r.axis_names, ps.labels)
         << ",\"trials\":" << ps.trials << ",\"fp\":" << summary_json(ps.fp)
         << ",\"fp_healthy\":" << summary_json(ps.fp_healthy)
         << ",\"msgs\":" << summary_json(ps.msgs)
         << ",\"bytes\":" << summary_json(ps.bytes) << ",\"first_detect\":"
         << summary_json(ps.first_detect.summary()) << ",\"full_dissem\":"
         << summary_json(ps.full_dissem.summary())
         << ",\"checked_trials\":" << ps.checked_trials
         << ",\"violating_trials\":" << ps.violating_trials
         << ",\"violations\":" << summary_json(ps.violations) << "}\n";
    for (const obs::SeriesBand& b : ps.series) {
      out_ << "{\"type\":\"series-band\",\"point\":" << ps.point_index
           << ",\"t\":" << json_double(static_cast<double>(b.at.us) / 1e6)
           << ",\"metric\":\"" << obs::metric_name(b.metric)
           << "\",\"id\":" << static_cast<int>(b.metric)
           << ",\"node\":" << b.node << ",\"band\":" << summary_json(b.stats)
           << "}\n";
    }
  }
  out_.flush();
}

// ---------------------------------------------------------------------------
// CsvReporter

void CsvReporter::begin(const Campaign& c, const std::vector<GridPoint>& grid,
                        int) {
  labels_.clear();
  labels_.reserve(grid.size());
  for (const GridPoint& p : grid) labels_.push_back(p.labels);
  out_ << "trial,point,rep,seed";
  for (const Axis& a : c.axes) out_ << "," << csv_field(a.name);
  out_ << ",scenario,cluster_size,fp,fp_healthy,msgs,bytes,detections,"
          "first_detect_p50,first_detect_p99,full_dissem_p50,checked,"
          "violations\n";
}

void CsvReporter::on_trial(const TrialResult& t) {
  const auto& labels = labels_[static_cast<std::size_t>(t.point_index)];
  Histogram fd, dd;
  fd.reserve(t.result.first_detect.size());
  for (double s : t.result.first_detect) fd.record(s);
  dd.reserve(t.result.full_dissem.size());
  for (double s : t.result.full_dissem) dd.record(s);
  out_ << t.trial_index << "," << t.point_index << "," << t.rep << ","
       << t.seed;
  for (const std::string& label : labels) out_ << "," << csv_field(label);
  out_ << "," << csv_field(t.result.scenario_name) << ","
       << t.result.cluster_size << "," << t.result.fp_events << ","
       << t.result.fp_healthy_events << "," << t.result.msgs_sent << ","
       << t.result.bytes_sent << "," << fd.count() << ","
       << json_double(fd.percentile(0.5)) << ","
       << json_double(fd.percentile(0.99)) << ","
       << json_double(dd.percentile(0.5)) << ","
       << (t.result.checks.checked ? 1 : 0) << ","
       << t.result.checks.total_violations << "\n";
}

// ---------------------------------------------------------------------------
// ProgressReporter

ProgressReporter::ProgressReporter(std::string label, std::ostream& out)
    : label_(std::move(label)), out_(out) {}

ProgressReporter::ProgressReporter(std::string label)
    : ProgressReporter(std::move(label), std::cerr) {}

void ProgressReporter::progress(int done, int total) {
  out_ << "\r" << label_ << ": " << done << "/" << total << " trials";
  if (done == total) out_ << "\n";
  out_.flush();
}

}  // namespace lifeguard::harness
