// Fixed-width table rendering for bench output, mirroring the paper's table
// layout (configurations as rows, metrics as columns, plus %-of-SWIM
// columns).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lifeguard::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render with column widths fitted to content; header separator included.
  std::string render() const;
  /// Render + print to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
std::string fmt_int(std::int64_t v);
std::string fmt_double(double v, int decimals);
/// value as a percentage of base ("100.00" when base == 0 and value == 0;
/// "n/a" when base == 0 and value != 0).
std::string fmt_pct(double value, double base);
std::string fmt_bytes_gib(std::int64_t bytes);

}  // namespace lifeguard::harness
