// Legacy experiment drivers (DEPRECATED — kept as thin shims for one
// release; new code should build a harness::Scenario and call
// harness::run(), see scenario.h).
//
// The three drivers reproduce the paper's evaluation methodology (§V):
//   * run_threshold — §V-D1: one synchronized set of C anomalies of duration
//     D; measures first-detection and full-dissemination latency.
//   * run_interval  — §V-D2: anomalies cycle (D blocked, I open) for the
//     test duration; measures false positives and message load.
//   * run_stress    — §II / Fig. 1: stochastic CPU-starvation cycles on a
//     subset of members for several minutes; measures false positives.
//
// Each driver is exactly `run(to_scenario(params))`, so results are
// bit-identical to the declarative path for the same parameters and seed.
//
// False-positive accounting follows §V-F1: an FP event is a node
// *originating* a dead declaration (its own suspicion timeout) about a
// member outside the anomaly set; FP⁻ additionally requires the originator
// itself to be outside the anomaly set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "harness/scenario.h"
#include "sim/anomaly.h"
#include "sim/network.h"
#include "swim/config.h"

namespace lifeguard::harness {

/// Parameters shared by every experiment type.
struct ExperimentParams {
  int cluster_size = 128;
  /// Settling time before anomalies are injected (paper: 15 s).
  Duration quiesce = sec(15);
  swim::Config config;
  /// Loopback-like latency plus a small datagram loss rate: the paper's
  /// testbed packs 128 logging agents onto one VM, where bursty UDP traffic
  /// sees occasional socket-buffer drops. This is what makes the (rare)
  /// refutation-race losses behind FP⁻ possible at all.
  sim::NetworkParams network{usec(200), msec(2), 0.01};
  /// Per-message processing cost once a backlog exists (see SimParams).
  Duration msg_proc_cost = usec(5);
  std::uint64_t seed = 1;
};

struct ThresholdParams {
  ExperimentParams base;
  int concurrent = 4;          ///< C
  Duration duration = sec(16); ///< D
  /// Observation window after anomaly start (paper caps runs at 120 s).
  Duration observe = sec(70);
};

struct IntervalParams {
  ExperimentParams base;
  int concurrent = 4;           ///< C
  Duration duration = sec(8);   ///< D
  Duration interval = msec(64); ///< I
  /// Cycles repeat until at least this much time has passed (paper: 120 s).
  Duration test_length = sec(120);
};

struct StressParams {
  ExperimentParams base;
  int stressed = 4;
  Duration test_length = sec(300);  ///< paper: 5-minute stress run
  sim::StressParams stress;
};

/// Mappings onto the declarative API — public so callers can migrate a
/// param struct wholesale and so tests can assert shim parity.
Scenario to_scenario(const ThresholdParams& p);
Scenario to_scenario(const IntervalParams& p);
Scenario to_scenario(const StressParams& p);

/// DEPRECATED: call run(to_scenario(p)) — these shims do exactly that.
RunResult run_threshold(const ThresholdParams& p);
RunResult run_interval(const IntervalParams& p);
RunResult run_stress(const StressParams& p);

/// The five Table I configurations in paper order, with the given suspicion
/// tuning applied (α/β only affect configs with LHA-Suspicion; the SWIM
/// baseline's fixed timeout is always α = 5, β = 1).
struct NamedConfig {
  std::string name;
  swim::Config config;
};
std::vector<NamedConfig> table1_configs(double alpha = 5.0, double beta = 6.0);

}  // namespace lifeguard::harness
