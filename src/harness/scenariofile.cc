#include "harness/scenariofile.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

#include "check/flatjson.h"
#include "check/trace.h"  // entry_spec / timeline_from_specs — one grammar
#include "harness/report.h"
#include "membership/backend.h"

namespace lifeguard::harness {

namespace flatjson = check::flatjson;

using flatjson::Value;

namespace {

/// The config a preset name denotes; "Custom" (and only "Custom" — loaders
/// validate the name first) means a default-constructed Config, with every
/// differing field spelled out in config_overrides.
swim::Config preset_config(const std::string& name) {
  if (auto p = swim::Config::from_table1_name(name)) return *p;
  return swim::Config{};
}

std::string strings_block(const std::vector<std::string>& v,
                          const char* indent) {
  if (v.empty()) return "[]";
  std::string out = "[\n";
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += std::string(indent) + "  \"" + json_escape(v[i]) + "\"";
    out += i + 1 < v.size() ? ",\n" : "\n";
  }
  out += std::string(indent) + "]";
  return out;
}

/// "config_overrides" body: one line per Config field that differs from the
/// named preset (suspicion alpha/beta/k live at the top level, like the
/// trace header). Empty string when the config *is* the preset.
std::string config_overrides_json(const swim::Config& cfg,
                                  const swim::Config& base) {
  std::ostringstream os;
  bool any = false;
  const auto put = [&](const char* key, const std::string& value) {
    os << (any ? ",\n" : "\n") << "    \"" << key << "\": " << value;
    any = true;
  };
  const auto put_us = [&](const char* key, Duration cur, Duration def) {
    if (cur.us != def.us) put(key, std::to_string(cur.us));
  };
  const auto put_int = [&](const char* key, std::int64_t cur,
                           std::int64_t def) {
    if (cur != def) put(key, std::to_string(cur));
  };
  const auto put_bool = [&](const char* key, bool cur, bool def) {
    if (cur != def) put(key, cur ? "true" : "false");
  };
  put_us("probe_interval_us", cfg.probe_interval, base.probe_interval);
  put_us("probe_timeout_us", cfg.probe_timeout, base.probe_timeout);
  put_int("indirect_checks", cfg.indirect_checks, base.indirect_checks);
  put_bool("reliable_fallback_probe", cfg.reliable_fallback_probe,
           base.reliable_fallback_probe);
  put_int("retransmit_mult", cfg.retransmit_mult, base.retransmit_mult);
  put_us("gossip_interval_us", cfg.gossip_interval, base.gossip_interval);
  put_int("gossip_fanout", cfg.gossip_fanout, base.gossip_fanout);
  put_us("gossip_to_dead_us", cfg.gossip_to_dead, base.gossip_to_dead);
  put_int("max_packet_bytes",
          static_cast<std::int64_t>(cfg.max_packet_bytes),
          static_cast<std::int64_t>(base.max_packet_bytes));
  put_us("push_pull_interval_us", cfg.push_pull_interval,
         base.push_pull_interval);
  put_us("reconnect_interval_us", cfg.reconnect_interval,
         base.reconnect_interval);
  put_us("join_retry_interval_us", cfg.join_retry_interval,
         base.join_retry_interval);
  put_bool("lha_probe", cfg.lha_probe, base.lha_probe);
  put_bool("lha_suspicion", cfg.lha_suspicion, base.lha_suspicion);
  put_bool("buddy_system", cfg.buddy_system, base.buddy_system);
  put_int("lhm_max", cfg.lhm_max, base.lhm_max);
  if (cfg.nack_fraction != base.nack_fraction) {
    put("nack_fraction", json_double(cfg.nack_fraction));
  }
  put_bool("nack_enabled", cfg.nack_enabled, base.nack_enabled);
  put_us("dead_reclaim_after_us", cfg.dead_reclaim_after,
         base.dead_reclaim_after);
  if (!any) return {};
  return os.str() + "\n  ";
}

bool apply_config_overrides(const Value& o, swim::Config& cfg,
                            std::string& error) {
  static const char* const kKnown[] = {
      "probe_interval_us",   "probe_timeout_us",
      "indirect_checks",     "reliable_fallback_probe",
      "retransmit_mult",     "gossip_interval_us",
      "gossip_fanout",       "gossip_to_dead_us",
      "max_packet_bytes",    "push_pull_interval_us",
      "reconnect_interval_us", "join_retry_interval_us",
      "lha_probe",           "lha_suspicion",
      "buddy_system",
      "lhm_max",             "nack_fraction",
      "nack_enabled",        "dead_reclaim_after_us",
  };
  for (const auto& member : o.members) {
    const std::string& key = member.first;
    bool known = false;
    for (const char* k : kKnown) {
      if (key == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      error = "unknown config override '" + key +
              "' (config_overrides holds swim::Config fields; see "
              "docs/scenario-files.md)";
      return false;
    }
  }
  std::int64_t i64 = 0;
  std::uint64_t u64 = 0;
  constexpr bool opt = false;  // required=false: every override is optional
  if (!flatjson::get_i64(o, "probe_interval_us", cfg.probe_interval.us, error,
                         opt) ||
      !flatjson::get_i64(o, "probe_timeout_us", cfg.probe_timeout.us, error,
                         opt) ||
      !flatjson::get_i64(o, "gossip_interval_us", cfg.gossip_interval.us,
                         error, opt) ||
      !flatjson::get_i64(o, "gossip_to_dead_us", cfg.gossip_to_dead.us, error,
                         opt) ||
      !flatjson::get_i64(o, "push_pull_interval_us",
                         cfg.push_pull_interval.us, error, opt) ||
      !flatjson::get_i64(o, "reconnect_interval_us",
                         cfg.reconnect_interval.us, error, opt) ||
      !flatjson::get_i64(o, "join_retry_interval_us",
                         cfg.join_retry_interval.us, error, opt) ||
      !flatjson::get_i64(o, "dead_reclaim_after_us",
                         cfg.dead_reclaim_after.us, error, opt)) {
    return false;
  }
  if (o.find("indirect_checks") != nullptr) {
    if (!flatjson::get_i64(o, "indirect_checks", i64, error)) return false;
    cfg.indirect_checks = static_cast<int>(i64);
  }
  if (o.find("retransmit_mult") != nullptr) {
    if (!flatjson::get_i64(o, "retransmit_mult", i64, error)) return false;
    cfg.retransmit_mult = static_cast<int>(i64);
  }
  if (o.find("gossip_fanout") != nullptr) {
    if (!flatjson::get_i64(o, "gossip_fanout", i64, error)) return false;
    cfg.gossip_fanout = static_cast<int>(i64);
  }
  if (o.find("lhm_max") != nullptr) {
    if (!flatjson::get_i64(o, "lhm_max", i64, error)) return false;
    cfg.lhm_max = static_cast<int>(i64);
  }
  if (o.find("max_packet_bytes") != nullptr) {
    if (!flatjson::get_u64(o, "max_packet_bytes", u64, error)) return false;
    cfg.max_packet_bytes = static_cast<std::size_t>(u64);
  }
  if (!flatjson::get_bool(o, "reliable_fallback_probe",
                          cfg.reliable_fallback_probe, error, opt) ||
      !flatjson::get_bool(o, "lha_probe", cfg.lha_probe, error, opt) ||
      !flatjson::get_bool(o, "lha_suspicion", cfg.lha_suspicion, error,
                          opt) ||
      !flatjson::get_bool(o, "buddy_system", cfg.buddy_system, error, opt) ||
      !flatjson::get_bool(o, "nack_enabled", cfg.nack_enabled, error, opt)) {
    return false;
  }
  if (!flatjson::get_dbl(o, "nack_fraction", cfg.nack_fraction, error, opt)) {
    return false;
  }
  return true;
}

}  // namespace

std::string ScenarioFile::to_json(const Scenario& s) {
  const std::string config_name = s.config.table1_name();
  swim::Config base = preset_config(config_name);
  base.suspicion_alpha = s.config.suspicion_alpha;
  base.suspicion_beta = s.config.suspicion_beta;
  base.suspicion_k = s.config.suspicion_k;
  const std::string overrides = config_overrides_json(s.config, base);

  std::ostringstream os;
  os << "{\n";
  os << "  \"type\": \"scenario\",\n";
  os << "  \"version\": " << kVersion << ",\n";
  os << "  \"name\": \"" << json_escape(s.name) << "\",\n";
  os << "  \"summary\": \"" << json_escape(s.summary) << "\",\n";
  os << "  \"paper_ref\": \"" << json_escape(s.paper_ref) << "\",\n";
  os << "  \"nodes\": " << s.cluster_size << ",\n";
  os << "  \"seed\": \"" << s.seed << "\",\n";
  os << "  \"quiesce_us\": " << s.quiesce.us << ",\n";
  os << "  \"run_length_us\": " << s.run_length.us << ",\n";
  os << "  \"config\": \"" << json_escape(config_name) << "\",\n";
  os << "  \"alpha\": " << json_double(s.config.suspicion_alpha) << ",\n";
  os << "  \"beta\": " << json_double(s.config.suspicion_beta) << ",\n";
  os << "  \"k\": " << s.config.suspicion_k << ",\n";
  if (!overrides.empty()) {
    os << "  \"config_overrides\": {" << overrides << "},\n";
  }
  os << "  \"loss\": " << json_double(s.network.udp_loss) << ",\n";
  os << "  \"lat_min_us\": " << s.network.latency_min.us << ",\n";
  os << "  \"lat_max_us\": " << s.network.latency_max.us << ",\n";
  os << "  \"proc_us\": " << s.msg_proc_cost.us << ",\n";
  os << "  \"rbuf\": " << s.recv_buffer_bytes << ",\n";
  os << "  \"membership\": \"" << json_escape(s.membership) << "\",\n";
  os << "  \"timeline\": "
     << strings_block(check::timeline_specs(s.effective_timeline()), "  ")
     << ",\n";
  os << "  \"checked\": " << (s.checks.enabled ? "true" : "false") << ",\n";
  os << "  \"invariants\": " << strings_block(s.checks.invariants, "  ")
     << ",\n";
  os << "  \"slack\": " << json_double(s.checks.timeout_slack) << ",\n";
  os << "  \"settle_us\": " << s.checks.convergence_settle.us << ",\n";
  os << "  \"cap_us\": " << s.checks.suspicion_cap.us << ",\n";
  os << "  \"max_violations\": " << s.checks.max_violations << ",\n";
  os << "  \"metrics_us\": " << s.metrics_interval.us << "\n";
  os << "}\n";
  return os.str();
}

std::optional<Scenario> ScenarioFile::from_json(const std::string& text,
                                                std::string& error) {
  Value doc;
  if (!flatjson::parse(text, doc, error)) return std::nullopt;

  static const char* const kKnown[] = {
      "type",        "version",     "name",
      "summary",     "paper_ref",   "nodes",
      "seed",        "quiesce_us",  "run_length_us",
      "config",      "alpha",       "beta",
      "k",           "config_overrides", "loss",
      "lat_min_us",  "lat_max_us",  "proc_us",
      "rbuf",        "membership",  "timeline",
      "checked",     "invariants",  "slack",
      "settle_us",   "cap_us",      "max_violations",
      "metrics_us",
  };
  for (const auto& member : doc.members) {
    const std::string& key = member.first;
    bool known = false;
    for (const char* k : kKnown) {
      if (key == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      error = "unknown key '" + key +
              "' in scenario file (the format is documented in "
              "docs/scenario-files.md)";
      return std::nullopt;
    }
  }

  std::string type;
  if (!flatjson::get_str(doc, "type", type, error)) return std::nullopt;
  if (type != "scenario") {
    error = "not a scenario file: type is '" + type +
            "' (expected 'scenario')";
    return std::nullopt;
  }
  std::int64_t version = 0;
  if (!flatjson::get_i64(doc, "version", version, error)) return std::nullopt;
  if (version != kVersion) {
    error = "unsupported scenario-file version " + std::to_string(version) +
            " (this build reads version " + std::to_string(kVersion) + ")";
    return std::nullopt;
  }

  Scenario s;
  if (!flatjson::get_str(doc, "name", s.name, error)) return std::nullopt;
  if (!flatjson::get_str(doc, "summary", s.summary, error,
                         /*required=*/false) ||
      !flatjson::get_str(doc, "paper_ref", s.paper_ref, error,
                         /*required=*/false)) {
    return std::nullopt;
  }
  std::int64_t i64 = 0;
  if (doc.find("nodes") != nullptr) {
    if (!flatjson::get_i64(doc, "nodes", i64, error)) return std::nullopt;
    s.cluster_size = static_cast<int>(i64);
  }
  if (!flatjson::get_u64(doc, "seed", s.seed, error, /*required=*/false) ||
      !flatjson::get_i64(doc, "quiesce_us", s.quiesce.us, error,
                         /*required=*/false) ||
      !flatjson::get_i64(doc, "run_length_us", s.run_length.us, error,
                         /*required=*/false)) {
    return std::nullopt;
  }

  // Config: preset base, then the suspicion tuning, then field overrides —
  // the same decomposition the trace header uses, extended so hand-tuned
  // ("Custom") configurations round-trip field-for-field.
  std::string config_name;
  if (!flatjson::get_str(doc, "config", config_name, error,
                         /*required=*/false)) {
    return std::nullopt;
  }
  if (!config_name.empty()) {
    if (config_name != "Custom" &&
        !swim::Config::from_table1_name(config_name)) {
      error = "unknown config '" + config_name +
              "' (known: SWIM, LHA-Probe, LHA-Suspicion, Buddy System, "
              "Lifeguard, Custom)";
      return std::nullopt;
    }
    s.config = preset_config(config_name);
  }
  if (!flatjson::get_dbl(doc, "alpha", s.config.suspicion_alpha, error,
                         /*required=*/false) ||
      !flatjson::get_dbl(doc, "beta", s.config.suspicion_beta, error,
                         /*required=*/false)) {
    return std::nullopt;
  }
  if (doc.find("k") != nullptr) {
    if (!flatjson::get_i64(doc, "k", i64, error)) return std::nullopt;
    s.config.suspicion_k = static_cast<int>(i64);
  }
  if (const Value* overrides = doc.find("config_overrides")) {
    if (overrides->kind != Value::Kind::kObject) {
      error = "field 'config_overrides' is not an object";
      return std::nullopt;
    }
    if (!apply_config_overrides(*overrides, s.config, error)) {
      return std::nullopt;
    }
  }

  if (!flatjson::get_dbl(doc, "loss", s.network.udp_loss, error,
                         /*required=*/false) ||
      !flatjson::get_i64(doc, "lat_min_us", s.network.latency_min.us, error,
                         /*required=*/false) ||
      !flatjson::get_i64(doc, "lat_max_us", s.network.latency_max.us, error,
                         /*required=*/false) ||
      !flatjson::get_i64(doc, "proc_us", s.msg_proc_cost.us, error,
                         /*required=*/false)) {
    return std::nullopt;
  }
  std::uint64_t u64 = 0;
  if (doc.find("rbuf") != nullptr) {
    if (!flatjson::get_u64(doc, "rbuf", u64, error)) return std::nullopt;
    s.recv_buffer_bytes = static_cast<std::size_t>(u64);
  }

  if (!flatjson::get_str(doc, "membership", s.membership, error,
                         /*required=*/false)) {
    return std::nullopt;
  }
  std::string spec_error;
  if (!membership::parse_spec(s.membership, &spec_error)) {
    error = "bad membership spec '" + s.membership + "': " + spec_error;
    return std::nullopt;
  }

  std::vector<std::string> specs;
  if (!flatjson::get_string_array(doc, "timeline", specs, error,
                                  /*required=*/false)) {
    return std::nullopt;
  }
  if (!specs.empty()) {
    auto tl = check::timeline_from_specs(specs, error);
    if (!tl) return std::nullopt;
    s.timeline = std::move(*tl);
  }

  if (!flatjson::get_bool(doc, "checked", s.checks.enabled, error,
                          /*required=*/false) ||
      !flatjson::get_string_array(doc, "invariants", s.checks.invariants,
                                  error, /*required=*/false) ||
      !flatjson::get_dbl(doc, "slack", s.checks.timeout_slack, error,
                         /*required=*/false) ||
      !flatjson::get_i64(doc, "settle_us", s.checks.convergence_settle.us,
                         error, /*required=*/false) ||
      !flatjson::get_i64(doc, "cap_us", s.checks.suspicion_cap.us, error,
                         /*required=*/false)) {
    return std::nullopt;
  }
  if (doc.find("max_violations") != nullptr) {
    if (!flatjson::get_u64(doc, "max_violations", u64, error)) {
      return std::nullopt;
    }
    s.checks.max_violations = static_cast<std::size_t>(u64);
  }
  if (!flatjson::get_i64(doc, "metrics_us", s.metrics_interval.us, error,
                         /*required=*/false)) {
    return std::nullopt;
  }

  const std::vector<std::string> defects = s.validate();
  if (!defects.empty()) {
    error.clear();
    for (std::size_t i = 0; i < defects.size(); ++i) {
      if (i > 0) error += "; ";
      error += defects[i];
    }
    return std::nullopt;
  }
  return s;
}

bool ScenarioFile::save(const Scenario& s, const std::string& path,
                        std::string& error) {
  std::ofstream out(path);
  if (!out) {
    error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << to_json(s);
  out.flush();
  if (!out) {
    error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::optional<Scenario> ScenarioFile::load(const std::string& path,
                                           std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = from_json(buf.str(), error);
  if (!parsed) error = path + ": " + error;
  return parsed;
}

}  // namespace lifeguard::harness
