#include "harness/stats.h"

#include <algorithm>
#include <cmath>

namespace lifeguard::harness {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& o) {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(o.count_);
  const double delta = o.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += o.m2_ + delta * delta * (na * nb / n);
  count_ += o.count_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Summary OnlineStats::summary() const {
  Summary s;
  s.count = count_;
  s.mean = mean();
  s.stddev = stddev();
  s.min = min();
  s.max = max();
  s.p50 = mean();
  s.p99 = mean();
  return s;
}

namespace {

/// Acklam's rational approximation to the inverse standard normal CDF
/// (absolute error < 1.2e-9 over (0, 1)).
double inverse_normal(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double t_critical(std::int64_t dof, double confidence) {
  confidence = std::clamp(confidence, 0.0, 1.0 - 1e-12);
  const double p = 1.0 - (1.0 - confidence) / 2.0;  // two-sided -> upper tail
  if (dof == 1) {
    // Cauchy quantile.
    return std::tan(3.14159265358979323846 * (p - 0.5));
  }
  if (dof == 2) {
    const double a = 2.0 * p - 1.0;
    return a * std::sqrt(2.0 / (1.0 - a * a));
  }
  const double z = inverse_normal(p);
  if (dof <= 0) return z;  // infinite-dof limit
  const double v = static_cast<double>(dof);
  const double z2 = z * z;
  const double z3 = z2 * z;
  const double z5 = z3 * z2;
  const double z7 = z5 * z2;
  const double z9 = z7 * z2;
  // Abramowitz & Stegun 26.7.5: t as an asymptotic series in 1/dof.
  double t = z;
  t += (z3 + z) / (4.0 * v);
  t += (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v);
  t += (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * v * v * v);
  t += (79.0 * z9 + 776.0 * z7 + 1482.0 * z5 - 1920.0 * z3 - 945.0 * z) /
       (92160.0 * v * v * v * v);
  return t;
}

ConfInterval t_interval(std::size_t count, double mean, double stddev,
                        double confidence) {
  ConfInterval ci;
  ci.lo = ci.hi = mean;
  if (count < 2) return ci;
  const double t = t_critical(static_cast<std::int64_t>(count) - 1, confidence);
  ci.half_width = t * stddev / std::sqrt(static_cast<double>(count));
  ci.lo = mean - ci.half_width;
  ci.hi = mean + ci.half_width;
  return ci;
}

ConfInterval t_interval(const OnlineStats& s, double confidence) {
  return t_interval(s.count(), s.mean(), s.stddev(), confidence);
}

ConfInterval t_interval(const Summary& s, double confidence) {
  return t_interval(s.count, s.mean, s.stddev, confidence);
}

}  // namespace lifeguard::harness
