#include "harness/campaign.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "harness/report.h"

namespace lifeguard::harness {

// ---------------------------------------------------------------------------
// Axis factories

namespace {

std::string ms_label(Duration d) {
  // Whole milliseconds when exact, else microseconds — labels are registry
  // keys in artifacts, so they must be unambiguous.
  if (d.us % 1000 == 0) return std::to_string(d.us / 1000) + "ms";
  return std::to_string(d.us) + "us";
}

}  // namespace

Axis Axis::victims(const std::vector<int>& counts) {
  Axis a;
  a.name = "victims";
  for (int c : counts) {
    a.points.push_back({std::to_string(c), static_cast<std::uint64_t>(c),
                        [c](Scenario& s) { s.anomaly.victims = c; }});
  }
  return a;
}

Axis Axis::duration(const std::vector<Duration>& values) {
  Axis a;
  a.name = "duration";
  for (Duration d : values) {
    a.points.push_back({ms_label(d), static_cast<std::uint64_t>(d.us),
                        [d](Scenario& s) { s.anomaly.duration = d; }});
  }
  return a;
}

Axis Axis::interval(const std::vector<Duration>& values) {
  Axis a;
  a.name = "interval";
  for (Duration i : values) {
    a.points.push_back({ms_label(i), static_cast<std::uint64_t>(i.us),
                        [i](Scenario& s) { s.anomaly.interval = i; }});
  }
  return a;
}

Axis Axis::cluster_size(const std::vector<int>& sizes) {
  Axis a;
  a.name = "cluster_size";
  for (int n : sizes) {
    a.points.push_back({std::to_string(n), static_cast<std::uint64_t>(n),
                        [n](Scenario& s) { s.cluster_size = n; }});
  }
  return a;
}

Axis Axis::configs(const std::vector<NamedConfig>& cfgs) {
  Axis a;
  a.name = "config";
  for (const NamedConfig& nc : cfgs) {
    const swim::Config cfg = nc.config;
    a.points.push_back({nc.name, 0, [cfg](Scenario& s) { s.config = cfg; }});
  }
  return a;
}

Axis Axis::backend(const std::vector<std::string>& names) {
  Axis a;
  a.name = "membership";
  for (const std::string& name : names) {
    a.points.push_back({name, 0, [name](Scenario& s) { s.membership = name; }});
  }
  return a;
}

Axis Axis::timeline_at(std::size_t entry, const std::vector<Duration>& values) {
  Axis a;
  a.name = "timeline[" + std::to_string(entry) + "].at";
  for (Duration d : values) {
    a.points.push_back({"e" + std::to_string(entry) + "@" + ms_label(d),
                        static_cast<std::uint64_t>(d.us),
                        [entry, d](Scenario& s) { s.timeline.entry(entry).at = d; }});
  }
  return a;
}

Axis Axis::timeline_duration(std::size_t entry,
                             const std::vector<Duration>& values) {
  Axis a;
  a.name = "timeline[" + std::to_string(entry) + "].duration";
  for (Duration d : values) {
    a.points.push_back(
        {"e" + std::to_string(entry) + "+" + ms_label(d),
         static_cast<std::uint64_t>(d.us),
         [entry, d](Scenario& s) { s.timeline.entry(entry).duration = d; }});
  }
  return a;
}

Axis Axis::custom(std::string name, std::vector<AxisPoint> points) {
  Axis a;
  a.name = std::move(name);
  a.points = std::move(points);
  return a;
}

// ---------------------------------------------------------------------------
// Grid expansion & seeds

std::vector<GridPoint> expand_grid(const Campaign& c) {
  std::vector<GridPoint> grid;
  std::size_t total = 1;
  for (const Axis& a : c.axes) total *= a.points.size();
  if (total == 0) return grid;
  grid.reserve(total);

  // Mixed-radix counter over the axes; last axis varies fastest.
  std::vector<std::size_t> idx(c.axes.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    GridPoint p;
    p.index = static_cast<int>(n);
    p.scenario = c.base;
    for (std::size_t ai = 0; ai < c.axes.size(); ++ai) {
      const AxisPoint& pt = c.axes[ai].points[idx[ai]];
      p.labels.push_back(pt.label);
      p.salts.push_back(pt.seed_salt);
      if (pt.apply) pt.apply(p.scenario);
    }
    if (c.finalize) c.finalize(p.scenario);
    grid.push_back(std::move(p));
    for (std::size_t ai = c.axes.size(); ai-- > 0;) {
      if (++idx[ai] < c.axes[ai].points.size()) break;
      idx[ai] = 0;
    }
  }
  return grid;
}

std::uint64_t trial_seed(std::uint64_t base,
                         const std::vector<std::uint64_t>& salts, int rep) {
  std::uint64_t s = base;
  for (std::uint64_t salt : salts) s ^= splitmix64(s) + salt;
  s ^= splitmix64(s) + static_cast<std::uint64_t>(rep);
  return splitmix64(s);
}

// ---------------------------------------------------------------------------
// Validation

namespace {

/// Structural checks that must hold before the grid can be expanded.
std::vector<std::string> validate_shape(const Campaign& c) {
  std::vector<std::string> errors;
  if (c.repetitions < 1) {
    errors.push_back("repetitions (" + std::to_string(c.repetitions) +
                     ") must be >= 1");
  }
  if (c.jobs < 0) {
    errors.push_back("jobs (" + std::to_string(c.jobs) +
                     ") must be >= 0 (0 = one worker per hardware thread)");
  }
  std::set<std::string> axis_names;
  for (const Axis& a : c.axes) {
    if (a.name.empty()) {
      errors.push_back("every axis needs a name — it becomes the artifact "
                       "column / coordinate key");
    } else if (!axis_names.insert(a.name).second) {
      errors.push_back("duplicate axis name '" + a.name +
                       "' — coordinates must be unambiguous");
    }
    if (a.points.empty()) {
      errors.push_back("axis '" + a.name +
                       "' has no points — a sweep needs at least one value");
    }
  }
  return errors;
}

/// Per-cell Scenario validation over an already-expanded grid.
std::vector<std::string> validate_points(const Campaign& c,
                                         const std::vector<GridPoint>& grid) {
  std::vector<std::string> errors;
  for (const GridPoint& p : grid) {
    for (const std::string& e : p.scenario.validate()) {
      std::string where = "grid point " + std::to_string(p.index) + " (";
      for (std::size_t i = 0; i < p.labels.size(); ++i) {
        if (i > 0) where += ", ";
        where += c.axes[i].name + "=" + p.labels[i];
      }
      errors.push_back(where + "): " + e);
    }
  }
  return errors;
}

}  // namespace

std::vector<std::string> Campaign::validate() const {
  std::vector<std::string> errors = validate_shape(*this);
  if (!errors.empty()) return errors;  // grid expansion needs sane axes
  return validate_points(*this, expand_grid(*this));
}

// ---------------------------------------------------------------------------
// Execution

namespace {

void fold_point_stats(const std::vector<GridPoint>& grid,
                      const std::vector<TrialResult>& trials, int reps,
                      std::vector<PointStats>& out) {
  out.resize(grid.size());
  for (std::size_t p = 0; p < grid.size(); ++p) {
    out[p].point_index = static_cast<int>(p);
    out[p].labels = grid[p].labels;
  }
  std::vector<Histogram> fp(grid.size()), fpm(grid.size()), msgs(grid.size()),
      bytes(grid.size()), viols(grid.size());
  for (auto& h : fp) h.reserve(static_cast<std::size_t>(reps));
  for (auto& h : fpm) h.reserve(static_cast<std::size_t>(reps));
  for (auto& h : msgs) h.reserve(static_cast<std::size_t>(reps));
  for (auto& h : bytes) h.reserve(static_cast<std::size_t>(reps));
  for (auto& h : viols) h.reserve(static_cast<std::size_t>(reps));
  for (const TrialResult& t : trials) {
    PointStats& ps = out[static_cast<std::size_t>(t.point_index)];
    ++ps.trials;
    const auto pi = static_cast<std::size_t>(t.point_index);
    fp[pi].record(static_cast<double>(t.result.fp_events));
    fpm[pi].record(static_cast<double>(t.result.fp_healthy_events));
    msgs[pi].record(static_cast<double>(t.result.msgs_sent));
    bytes[pi].record(static_cast<double>(t.result.bytes_sent));
    viols[pi].record(static_cast<double>(t.result.checks.total_violations));
    if (t.result.checks.checked) {
      ++ps.checked_trials;
      if (t.result.checks.total_violations > 0) ++ps.violating_trials;
    }
    ps.first_detect.reserve(ps.first_detect.count() +
                            t.result.first_detect.size());
    for (double s : t.result.first_detect) ps.first_detect.record(s);
    ps.full_dissem.reserve(ps.full_dissem.count() +
                           t.result.full_dissem.size());
    for (double s : t.result.full_dissem) ps.full_dissem.record(s);
  }
  for (std::size_t p = 0; p < grid.size(); ++p) {
    out[p].fp = fp[p].summary();
    out[p].fp_healthy = fpm[p].summary();
    out[p].msgs = msgs[p].summary();
    out[p].bytes = bytes[p].summary();
    out[p].violations = viols[p].summary();
  }

  // Telemetry bands: fold each point's per-trial series (trials is already
  // in trial-index order, so the fold is jobs-invariant).
  std::vector<std::vector<const obs::Series*>> per_point(grid.size());
  bool any_series = false;
  for (const TrialResult& t : trials) {
    if (t.result.series.empty()) continue;
    any_series = true;
    per_point[static_cast<std::size_t>(t.point_index)].push_back(
        &t.result.series);
  }
  if (any_series) {
    for (std::size_t p = 0; p < grid.size(); ++p) {
      out[p].series = obs::fold_series_bands(per_point[p]);
    }
  }
}

}  // namespace

CampaignResult run(const Campaign& c, const std::vector<Reporter*>& reporters) {
  // Split validation so the grid is expanded exactly once (a full Table
  // II/III campaign has hundreds of points, each a Scenario copy plus axis
  // closures — and user-supplied apply/finalize hooks should fire once).
  std::vector<GridPoint> grid;
  {
    std::vector<std::string> errors = validate_shape(c);
    if (errors.empty()) {
      grid = expand_grid(c);
      errors = validate_points(c, grid);
    }
    if (!errors.empty()) throw ScenarioError(std::move(errors));
  }
  const int total =
      static_cast<int>(grid.size()) * c.repetitions;

  CampaignResult result;
  result.campaign_name = c.name;
  for (const Axis& a : c.axes) result.axis_names.push_back(a.name);
  result.trials.resize(static_cast<std::size_t>(total));

  // Pre-derive every trial's coordinates and seed up front: the work list is
  // a pure function of the descriptor, so execution order cannot leak in.
  for (int p = 0; p < static_cast<int>(grid.size()); ++p) {
    for (int rep = 0; rep < c.repetitions; ++rep) {
      const int ti = p * c.repetitions + rep;
      TrialResult& t = result.trials[static_cast<std::size_t>(ti)];
      t.trial_index = ti;
      t.point_index = p;
      t.rep = rep;
      t.seed = trial_seed(c.base_seed, grid[p].salts, rep);
    }
  }

  std::mutex mu;
  for (Reporter* r : reporters) r->begin(c, grid, total);

  int jobs = c.jobs;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 1 : static_cast<int>(hw);
  }
  jobs = std::min(jobs, std::max(total, 1));

  std::atomic<int> next{0};
  std::atomic<bool> aborted{false};
  std::exception_ptr first_error;
  std::vector<bool> done(static_cast<std::size_t>(total), false);
  int completed = 0;
  int emitted = 0;

  auto worker = [&] {
    for (;;) {
      const int ti = next.fetch_add(1, std::memory_order_relaxed);
      if (ti >= total || aborted.load(std::memory_order_relaxed)) return;
      TrialResult& t = result.trials[static_cast<std::size_t>(ti)];
      const GridPoint& point = grid[static_cast<std::size_t>(t.point_index)];
      try {
        Scenario s = point.scenario;
        s.seed = t.seed;
        const std::vector<check::TraceSink*> sinks =
            c.trial_sinks ? c.trial_sinks(t)
                          : std::vector<check::TraceSink*>{};
        t.result = harness::run(s, sinks);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
      std::lock_guard<std::mutex> lock(mu);
      done[static_cast<std::size_t>(ti)] = true;
      ++completed;
      // Reporters are an extension point — a throwing callback must follow
      // the same abort-and-rethrow contract as a throwing trial, not
      // std::terminate the worker thread.
      try {
        for (Reporter* r : reporters) r->progress(completed, total);
        // Emit in trial-index order: flush the contiguous completed prefix.
        while (emitted < total && done[static_cast<std::size_t>(emitted)]) {
          TrialResult& e = result.trials[static_cast<std::size_t>(emitted)];
          for (Reporter* r : reporters) r->on_trial(e);
          if (!c.keep_trial_metrics) e.result.metrics.reset();
          ++emitted;
        }
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  fold_point_stats(grid, result.trials, c.repetitions, result.points);
  for (Reporter* r : reporters) r->end(result);
  return result;
}

}  // namespace lifeguard::harness
