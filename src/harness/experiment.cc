#include "harness/experiment.h"

namespace lifeguard::harness {

namespace {

Scenario base_scenario(const ExperimentParams& p, std::string name) {
  Scenario s;
  s.name = std::move(name);
  s.cluster_size = p.cluster_size;
  s.quiesce = p.quiesce;
  s.config = p.config;
  s.network = p.network;
  s.msg_proc_cost = p.msg_proc_cost;
  s.seed = p.seed;
  return s;
}

}  // namespace

Scenario to_scenario(const ThresholdParams& p) {
  Scenario s = base_scenario(p.base, "legacy-threshold");
  s.summary = "run_threshold shim";
  s.anomaly = AnomalyPlan::threshold(p.concurrent, p.duration);
  s.run_length = p.observe;
  return s;
}

Scenario to_scenario(const IntervalParams& p) {
  Scenario s = base_scenario(p.base, "legacy-interval");
  s.summary = "run_interval shim";
  // The legacy driver accepted concurrent == 0 as a healthy baseline run;
  // the declarative API spells that AnomalyKind::kNone. To keep the shim's
  // load metrics bit-identical, reproduce the legacy end time: whole
  // (duration + interval) cycles covering test_length, plus the 1 s drain
  // (the kNone engine runs exactly run_length, with no cycle rounding).
  if (p.concurrent == 0) {
    s.anomaly = AnomalyPlan::none();
    s.run_length =
        cycle_aligned_length(p.test_length, p.duration, p.interval) + sec(1);
  } else {
    s.anomaly = AnomalyPlan::cycling(p.concurrent, p.duration, p.interval);
    s.run_length = p.test_length;
  }
  return s;
}

Scenario to_scenario(const StressParams& p) {
  Scenario s = base_scenario(p.base, "legacy-stress");
  s.summary = "run_stress shim";
  s.anomaly = AnomalyPlan::stressed(p.stressed, p.stress);
  s.run_length = p.test_length;
  return s;
}

RunResult run_threshold(const ThresholdParams& p) {
  return run(to_scenario(p));
}

RunResult run_interval(const IntervalParams& p) { return run(to_scenario(p)); }

RunResult run_stress(const StressParams& p) { return run(to_scenario(p)); }

std::vector<NamedConfig> table1_configs(double alpha, double beta) {
  auto tune = [&](swim::Config c) {
    if (c.lha_suspicion) {
      c.suspicion_alpha = alpha;
      c.suspicion_beta = beta;
    }
    return c;
  };
  return {
      {"SWIM", swim::Config::swim_baseline()},
      {"LHA-Probe", swim::Config::lha_probe_only()},
      {"LHA-Suspicion", tune(swim::Config::lha_suspicion_only())},
      {"Buddy System", swim::Config::buddy_only()},
      {"Lifeguard", tune(swim::Config::lifeguard())},
  };
}

}  // namespace lifeguard::harness
