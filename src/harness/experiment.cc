#include "harness/experiment.h"

#include <algorithm>
#include <unordered_map>

#include "sim/simulator.h"
#include "swim/events.h"

namespace lifeguard::harness {

namespace {

sim::Simulator make_cluster(const ExperimentParams& p) {
  sim::SimParams sp;
  sp.network = p.network;
  sp.seed = p.seed;
  sp.msg_proc_cost = p.msg_proc_cost;
  return sim::Simulator(p.cluster_size, p.config, sp);
}

/// Collect FP / FP⁻ counts and latency samples from the per-node event logs.
void extract_results(sim::Simulator& sim, const std::vector<int>& victims,
                     TimePoint anomaly_start, RunResult& out) {
  std::set<std::string> victim_names;
  std::set<int> victim_set(victims.begin(), victims.end());
  for (int v : victims) victim_names.insert("node-" + std::to_string(v));

  // --- false positives ---
  for (int i = 0; i < sim.size(); ++i) {
    const bool reporter_is_victim = victim_set.contains(i);
    for (const auto& e : sim.events(i).events()) {
      if (e.type != swim::EventType::kFailed || !e.originated) continue;
      if (e.at < anomaly_start) continue;
      if (victim_names.contains(e.member)) continue;  // true-ish positive
      ++out.fp_events;
      if (!reporter_is_victim) ++out.fp_healthy_events;
    }
  }

  // --- detection / dissemination latency for the anomalous members ---
  for (int v : victims) {
    const std::string name = "node-" + std::to_string(v);
    double first = -1.0;
    bool all_healthy_marked = true;
    double last_healthy_mark = -1.0;
    for (int i = 0; i < sim.size(); ++i) {
      if (i == v) continue;
      double mark = -1.0;  // first time node i marked `name` failed
      for (const auto& e : sim.events(i).events()) {
        if (e.type != swim::EventType::kFailed || e.member != name) continue;
        if (e.at < anomaly_start) continue;
        const double t = (e.at - anomaly_start).seconds();
        if (mark < 0) mark = t;
        if (e.originated && (first < 0 || t < first)) first = t;
      }
      if (!victim_set.contains(i)) {
        if (mark < 0) {
          all_healthy_marked = false;
        } else {
          last_healthy_mark = std::max(last_healthy_mark, mark);
        }
      }
    }
    if (first >= 0) out.first_detect.push_back(first);
    if (first >= 0 && all_healthy_marked && last_healthy_mark >= 0) {
      out.full_dissem.push_back(last_healthy_mark);
    }
  }

  // --- load ---
  out.metrics = sim.aggregate_metrics();
  out.msgs_sent = out.metrics.counter_value("net.msgs_sent");
  out.bytes_sent = out.metrics.counter_value("net.bytes_sent");
}

}  // namespace

RunResult run_threshold(const ThresholdParams& p) {
  sim::Simulator sim = make_cluster(p.base);
  sim.start_all();
  sim.run_for(p.base.quiesce);

  const auto victims = sim::pick_victims(sim, p.concurrent);
  const TimePoint start = sim.now();
  sim::schedule_threshold_anomaly(sim, victims, start, p.duration);
  sim.run_for(p.observe);

  RunResult out;
  out.cluster_size = p.base.cluster_size;
  out.victims = victims;
  extract_results(sim, victims, start, out);
  return out;
}

RunResult run_interval(const IntervalParams& p) {
  sim::Simulator sim = make_cluster(p.base);
  sim.start_all();
  sim.run_for(p.base.quiesce);

  const auto victims = sim::pick_victims(sim, p.concurrent);
  const TimePoint start = sim.now();
  const TimePoint test_end = start + p.test_length;
  sim::schedule_interval_anomaly(sim, victims, start, p.duration, p.interval,
                                 test_end);
  // "The test ends at the end of the next anomalous period": run to the end
  // of the final scheduled cycle plus a short drain.
  Duration total = p.test_length;
  const Duration cycle = p.duration + p.interval;
  if (cycle > Duration{0}) {
    const std::int64_t cycles = (p.test_length.us + cycle.us - 1) / cycle.us;
    total = cycle * cycles;
  }
  sim.run_until(start + total + sec(1));

  RunResult out;
  out.cluster_size = p.base.cluster_size;
  out.victims = victims;
  extract_results(sim, victims, start, out);
  return out;
}

RunResult run_stress(const StressParams& p) {
  sim::Simulator sim = make_cluster(p.base);
  sim.start_all();
  sim.run_for(p.base.quiesce);

  const auto victims = sim::pick_victims(sim, p.stressed);
  const TimePoint start = sim.now();
  sim::schedule_stress_anomaly(sim, victims, start, start + p.test_length,
                               p.stress);
  sim.run_until(start + p.test_length + sec(2));

  RunResult out;
  out.cluster_size = p.base.cluster_size;
  out.victims = victims;
  extract_results(sim, victims, start, out);
  return out;
}

std::vector<NamedConfig> table1_configs(double alpha, double beta) {
  auto tune = [&](swim::Config c) {
    if (c.lha_suspicion) {
      c.suspicion_alpha = alpha;
      c.suspicion_beta = beta;
    }
    return c;
  };
  return {
      {"SWIM", swim::Config::swim_baseline()},
      {"LHA-Probe", swim::Config::lha_probe_only()},
      {"LHA-Suspicion", tune(swim::Config::lha_suspicion_only())},
      {"Buddy System", swim::Config::buddy_only()},
      {"Lifeguard", tune(swim::Config::lifeguard())},
  };
}

}  // namespace lifeguard::harness
