// Declarative scenario API — the single entry point to the paper's
// evaluation methodology (§V) and beyond.
//
// A Scenario is a plain, reviewable value: cluster shape, protocol
// configuration, network model, seed, and a composable anomaly plan. One
// engine, harness::run(Scenario), executes every kind — it subsumes the
// legacy run_threshold / run_interval / run_stress drivers (now thin shims
// over it, see experiment.h) and adds partition, flapping and churn
// workloads that the bespoke drivers could never express.
//
// ScenarioRegistry::builtin() catalogs the paper's Fig. 1–3 and Table IV–VII
// setups plus the new scenario kinds under stable names, so tools
// (examples/scenario_runner --list / --scenario NAME) and tests run the
// exact same descriptors.
//
// Validation is explicit and actionable: Scenario::validate() returns one
// message per defect ("anomaly.victims (12) must be <= cluster_size (8)...")
// and run() refuses invalid descriptors with a ScenarioError carrying all of
// them.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "check/events.h"
#include "check/spec.h"
#include "common/metrics.h"
#include "common/types.h"
#include "fault/fault.h"
#include "obs/catalog.h"
#include "sim/anomaly.h"
#include "sim/network.h"
#include "swim/config.h"

namespace lifeguard::harness {

// ---------------------------------------------------------------------------
// Anomaly plan (legacy shim over fault::Timeline)

enum class AnomalyKind : std::uint8_t {
  kNone = 0,       ///< healthy steady state (load / convergence baselines)
  kThreshold,      ///< one synchronized block of duration D (§V-D1)
  kInterval,       ///< lock-step D-blocked / I-open cycles (§V-D2)
  kStress,         ///< randomized CPU-starvation cycles (§II, Fig. 1)
  kPartition,      ///< an island splits off, then the partition heals
  kFlapping,       ///< per-victim unsynchronized D/I cycles
  kChurn,          ///< victims crash and rejoin in cycles
};

const char* anomaly_kind_name(AnomalyKind k);
std::optional<AnomalyKind> anomaly_kind_from_name(std::string_view name);

/// What goes wrong during a run — the original single-slot plan, now a thin
/// shim over the composable fault layer: the engine executes
/// to_timeline(run_length), a one-entry fault::Timeline, and replays
/// bit-identically to the pre-Timeline engine. New code (and anything that
/// needs composition, network-level faults, or non-uniform victim selection)
/// should populate Scenario::timeline directly. The meaning of `duration` /
/// `interval` depends on `kind`; the factory helpers document each shape.
struct AnomalyPlan {
  AnomalyKind kind = AnomalyKind::kNone;
  /// How many members are afflicted (the anomaly set; C in the paper).
  int victims = 0;
  /// kThreshold/kInterval/kFlapping: blocked span D. kPartition: how long
  /// the split lasts. kChurn: downtime between crash and restart.
  Duration duration{};
  /// kInterval/kFlapping: open window I between blocks. kChurn: uptime
  /// between restart and the next crash. Unused otherwise.
  Duration interval{};
  /// kStress only: block/run span distributions.
  sim::StressParams stress;

  static AnomalyPlan none();
  static AnomalyPlan threshold(int victims, Duration duration);
  static AnomalyPlan cycling(int victims, Duration duration,
                             Duration interval);
  static AnomalyPlan stressed(int victims, sim::StressParams params = {});
  static AnomalyPlan partition(int island_size, Duration heal_after);
  static AnomalyPlan flapping(int victims, Duration duration,
                              Duration interval);
  static AnomalyPlan churn(int victims, Duration downtime, Duration uptime);

  /// The shim: this plan as a one-entry fault::Timeline (empty for kNone).
  /// `run_length` bounds the cycling kinds, which inject until the
  /// observation window closes.
  fault::Timeline to_timeline(Duration run_length) const;
};

// ---------------------------------------------------------------------------
// Scenario descriptor

struct Scenario {
  /// Stable identifier (registry key, --scenario flag). Lowercase kebab-case.
  std::string name;
  /// One-line human description.
  std::string summary;
  /// Paper anchor ("Fig. 1", "Table V", ...); empty for post-paper kinds.
  std::string paper_ref;

  int cluster_size = 64;
  /// Settling time before the anomaly begins (paper: 15 s).
  Duration quiesce = sec(15);
  swim::Config config;
  /// Paper-testbed-like loopback latency and a small datagram loss rate.
  sim::NetworkParams network{usec(200), msec(2), 0.01};
  /// Virtual CPU cost per inbound message once a backlog exists.
  Duration msg_proc_cost = usec(5);
  /// Simulated kernel receive-buffer bound per node.
  std::size_t recv_buffer_bytes = 256 * 1024;
  /// Root of every random decision in the run: the cluster's Rng forks from
  /// it, so (scenario, seed) replays bit-identically.
  ///
  /// Seed-derivation contract (campaign.h): multi-trial engines derive each
  /// trial's seed as trial_seed(base_seed, axis_salts, rep) — a SplitMix64
  /// chain over descriptor coordinates only, never over execution state
  /// (thread ids, completion order, wall time). Trials share no mutable
  /// state (each run() builds its own cluster; Rng, Metrics and Config are
  /// instance-owned; ScenarioRegistry::builtin() is an immutable magic
  /// static), so concurrent trials are bit-identical to sequential ones.
  std::uint64_t seed = 1;

  /// Legacy single-fault slot (a shim over `timeline`; see AnomalyPlan).
  /// Mutually exclusive with a non-empty `timeline`.
  AnomalyPlan anomaly;
  /// The composable fault plan: an ordered list of phased entries, each a
  /// Fault + VictimSelector active over [at, at + duration) after the
  /// quiesce. Overlap is allowed ("partition during CPU exhaustion"). When
  /// empty, the engine runs anomaly.to_timeline(run_length) instead.
  fault::Timeline timeline;
  /// Observation window measured from anomaly start (the cycling kinds keep
  /// injecting until it closes; see fault::FaultInjector::plan_total_run for
  /// per-kind drain details).
  Duration run_length = sec(60);

  /// Live protocol invariant checking (src/check). Disabled by default;
  /// enable with `checks = check::Spec::all()` (or a narrowed Spec) and the
  /// engine evaluates every invariant against the merged event stream,
  /// reporting verdicts in RunResult::checks. Checking is a pure
  /// observation: metrics are bit-identical with checks on or off.
  check::Spec checks;

  /// Telemetry snapshot cadence (obs::Sampler): every `metrics_interval` of
  /// virtual time the engine emits one cluster-wide set of kMetricSample
  /// trace events and appends them to RunResult::series. Zero (the default)
  /// disables sampling. Sampling is a pure observation: protocol Rng draws
  /// and RunResult metrics are bit-identical with sampling on or off.
  Duration metrics_interval{};

  /// Membership backend spec (membership::BackendRegistry): "swim" (the
  /// default — SWIM + Lifeguard), "central" / "central:miss=N" (coordinator
  /// heartbeats), "static" (fixed roster, no detection). Every part of the
  /// harness — fault timelines, campaigns, invariant checking, telemetry,
  /// trace record/replay — drives whichever backend is named here.
  /// SWIM-specific invariants auto-disable for non-swim backends; the sim
  /// tier only (live runs reject non-swim).
  std::string membership = "swim";

  /// The timeline the engine will execute: `timeline` when non-empty,
  /// otherwise the AnomalyPlan shim's one-entry equivalent.
  fault::Timeline effective_timeline() const;

  /// Empty when the descriptor is runnable; otherwise one actionable message
  /// per defect.
  std::vector<std::string> validate() const;
};

/// Thrown by run() / ScenarioRegistry::add() on invalid descriptors.
/// what() joins all messages; errors() has them individually.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(std::vector<std::string> errors);
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::vector<std::string> errors_;
};

// ---------------------------------------------------------------------------
// Results

struct RunResult {
  std::string scenario_name;
  int cluster_size = 0;
  /// Union of every timeline entry's victim set (node indices,
  /// first-occurrence order). Detection/dissemination latency and the FP
  /// accounting treat all of them as "anomalous" members.
  std::vector<int> victims;

  // -- false positives (§V-F1) --
  std::int64_t fp_events = 0;          ///< FP: originated, healthy subject
  std::int64_t fp_healthy_events = 0;  ///< FP⁻: and healthy originator

  // -- true-positive latency, seconds (§V-F2) --
  std::vector<double> first_detect;  ///< one sample per detected victim
  std::vector<double> full_dissem;   ///< one sample per fully disseminated

  // -- message load (§V-F3) --
  std::int64_t msgs_sent = 0;
  std::int64_t bytes_sent = 0;

  /// Full aggregated metrics for deeper inspection.
  Metrics metrics;

  /// Invariant verdicts (checked == false unless Scenario::checks.enabled).
  check::RunReport checks;

  /// Telemetry time series (empty unless Scenario::metrics_interval > 0).
  /// Campaigns keep the series even when per-trial metrics are reset.
  obs::Series series;
};

/// The engine: validate, build a simulated cluster through ClusterBuilder,
/// quiesce, inject the anomaly plan, observe, and extract the paper's
/// metrics. Throws ScenarioError when validate() is non-empty.
///
/// `sinks` observe the merged simulator + membership event stream (see
/// check/events.h) for the whole run — pass a check::TraceRecorder to
/// capture a replayable trace. Sinks are pure observers: results are
/// identical with or without them.
RunResult run(const Scenario& s,
              const std::vector<check::TraceSink*>& sinks = {});

// ---------------------------------------------------------------------------
// Backend dispatch

/// Where a scenario executes: the deterministic simulator (default) or the
/// live tier — real OS processes over real UDP (src/live). One descriptor,
/// two backends, one RunResult shape.
enum class Backend : std::uint8_t { kSim, kLive };

const char* backend_name(Backend b);
std::optional<Backend> backend_from_name(std::string_view name);

/// Cross-backend run options. The sim backend ignores everything but
/// `backend`; the live fields mirror live::RunOptions.
struct RunOptions {
  Backend backend = Backend::kSim;
  /// Live only: wall-clock ceiling (zero = derived from the scenario).
  Duration timeout{};
  /// Live only: worker binary override (empty = auto-discover).
  std::string node_binary;
  /// Live only: per-node stderr log directory (empty = no logs).
  std::string log_dir;
};

/// Backend-dispatching entry point: runs `s` on the simulator or the live
/// tier per `opts.backend`. Defined in src/live/runner.cc (the only place
/// that links both engines).
RunResult run(const Scenario& s, const RunOptions& opts,
              const std::vector<check::TraceSink*>& sinks = {});

/// "The test ends at the end of the next anomalous period" (§V-D2):
/// `run_length` rounded up to whole (duration + interval) cycles. Forwards
/// to fault::cycle_aligned_length — one definition (shared with the
/// injector's drain computation) so shim parity cannot drift.
inline Duration cycle_aligned_length(Duration run_length, Duration duration,
                                     Duration interval) {
  return fault::cycle_aligned_length(run_length, duration, interval);
}

// ---------------------------------------------------------------------------
// Registry

class ScenarioRegistry {
 public:
  /// The built-in catalog: every paper figure/table setup plus the new
  /// partition / flapping / churn kinds. Names are stable public API.
  static const ScenarioRegistry& builtin();

  ScenarioRegistry() = default;

  /// Validates and inserts; throws ScenarioError on an invalid descriptor or
  /// a duplicate name.
  void add(Scenario s);
  /// nullptr when unknown.
  const Scenario* find(std::string_view name) const;
  std::vector<std::string> names() const;
  const std::vector<Scenario>& all() const { return scenarios_; }

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace lifeguard::harness
