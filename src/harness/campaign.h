// Parallel campaign engine: many trials of one declarative experiment.
//
// A Campaign is a value, like the Scenario it wraps: a base Scenario, a list
// of Axis sweeps (any Scenario field can be swept through an AxisPoint's
// apply function), a repetition count, a base seed, and a `jobs` parallelism
// level. run() expands the cartesian grid, derives one seed per trial with
// trial_seed() (SplitMix64 over the base seed, the grid point's axis salts
// and the repetition index — NOT over anything execution-dependent), and
// executes trials on a fixed-size worker pool. Trials share nothing: each
// builds its own simulated cluster, so results are bit-identical for every
// `jobs` value and independent of scheduling order.
//
// Reporters (see report.h) observe the run: progress() fires in completion
// order for live feedback; on_trial() fires strictly in trial-index order so
// streamed JSONL/CSV artifacts are byte-identical across jobs levels.
//
// Aggregation folds per-trial RunResults into per-grid-point statistics:
// Summary (count/mean/stddev/min/max/p50/p99) of the scalar metrics plus
// merged latency histograms — Student-t confidence intervals come from
// harness/stats.h.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "harness/experiment.h"
#include "harness/scenario.h"
#include "obs/export.h"

namespace lifeguard::harness {

class Reporter;       // report.h
struct TrialResult;   // below — Campaign::trial_sinks names it

// ---------------------------------------------------------------------------
// Axes

/// One value on a sweep axis: a display label, a seed salt, and a mutation
/// applied to the base Scenario when the grid is expanded.
struct AxisPoint {
  std::string label;
  /// Folded into trial_seed(). Give points of a *workload* axis distinct
  /// salts (different schedules per point) and points of a *configuration*
  /// axis identical salts (paired runs: every config sees the same anomaly
  /// schedule at the same grid point, sharpening %-of-baseline comparisons).
  std::uint64_t seed_salt = 0;
  std::function<void(Scenario&)> apply;
};

/// A named sweep dimension. Factories cover the common Scenario fields; use
/// custom() to sweep anything else.
struct Axis {
  std::string name;
  std::vector<AxisPoint> points;

  /// anomaly.victims sweep (salt = count).
  static Axis victims(const std::vector<int>& counts);
  /// anomaly.duration sweep (salt = microseconds; labels in ms).
  static Axis duration(const std::vector<Duration>& values);
  /// anomaly.interval sweep (salt = microseconds; labels in ms).
  static Axis interval(const std::vector<Duration>& values);
  /// cluster_size sweep (salt = size).
  static Axis cluster_size(const std::vector<int>& sizes);
  /// Protocol-configuration sweep. All points share salt 0: runs are paired
  /// across configurations by construction.
  static Axis configs(const std::vector<NamedConfig>& cfgs);
  /// Membership-backend sweep ("swim", "central", "central:miss=5",
  /// "static"). All points share salt 0, like configs(): every backend sees
  /// the same fault schedule at the same grid point, so detection-latency and
  /// message-load deltas are backend effects, not schedule noise.
  static Axis backend(const std::vector<std::string>& names);
  /// fault::Timeline sweeps over entry `entry` of the base scenario's
  /// timeline (salt = microseconds; labels in ms, prefixed with the entry
  /// index). Applying a point to a scenario whose timeline lacks that entry
  /// throws std::out_of_range — sweep axes name real entries.
  static Axis timeline_at(std::size_t entry,
                          const std::vector<Duration>& values);
  static Axis timeline_duration(std::size_t entry,
                                const std::vector<Duration>& values);
  static Axis custom(std::string name, std::vector<AxisPoint> points);
};

// ---------------------------------------------------------------------------
// Campaign descriptor

struct Campaign {
  std::string name;
  Scenario base;
  /// Cartesian product; empty means a single grid point (the base Scenario).
  std::vector<Axis> axes;
  /// Trials per grid point, each with an independently derived seed.
  int repetitions = 1;
  std::uint64_t base_seed = 42;
  /// Worker threads. 0 = one per hardware thread; 1 = sequential. Results
  /// never depend on this value.
  int jobs = 0;
  /// Optional post-processing applied after every axis, before validation
  /// (e.g. legacy grid semantics that couple several swept fields).
  std::function<void(Scenario&)> finalize;
  /// Retain each trial's full Metrics registry in the CampaignResult. Off by
  /// default: the registry is the bulky part of a RunResult and aggregation
  /// only needs the scalar fields. Reporters always see the full result.
  bool keep_trial_metrics = false;
  /// Optional per-trial TraceSink factory: called on the worker thread just
  /// before the trial runs, with the trial's coordinates already filled in;
  /// the returned sinks observe that trial's merged event stream (the
  /// fuzzer's coverage seam). The factory must be thread-safe and the sinks
  /// it returns must not be shared across concurrent trials — hand out one
  /// pre-allocated sink per trial_index and determinism is preserved.
  std::function<std::vector<check::TraceSink*>(const TrialResult&)>
      trial_sinks;

  /// Empty when runnable; otherwise one actionable message per defect
  /// (including per-grid-point Scenario validation failures).
  std::vector<std::string> validate() const;
};

// ---------------------------------------------------------------------------
// Grid expansion & seeds

/// One cell of the expanded cartesian grid.
struct GridPoint {
  int index = 0;
  /// Axis point labels, parallel to Campaign::axes.
  std::vector<std::string> labels;
  /// Axis point salts, parallel to Campaign::axes (trial_seed input).
  std::vector<std::uint64_t> salts;
  /// Base scenario with every axis point (and finalize) applied.
  Scenario scenario;
};

/// Expand the cartesian product of `c.axes` over `c.base`. Last axis varies
/// fastest. Does not validate — run() and Campaign::validate() do.
std::vector<GridPoint> expand_grid(const Campaign& c);

/// Per-trial seed derivation: a SplitMix64 chain over the base seed, each
/// axis salt in axis order, and the repetition index. Depends only on the
/// campaign descriptor — never on thread scheduling — so every trial replays
/// bit-identically at any `jobs` level. sweep.h's legacy run_seed() is this
/// chain with salts {c, d_us, i_us}.
std::uint64_t trial_seed(std::uint64_t base,
                         const std::vector<std::uint64_t>& salts, int rep);

// ---------------------------------------------------------------------------
// Results

/// One executed trial: grid coordinates plus the engine's RunResult.
struct TrialResult {
  int trial_index = 0;  ///< dense [0, total); point_index * reps + rep
  int point_index = 0;
  int rep = 0;
  std::uint64_t seed = 0;
  RunResult result;
};

/// Folded statistics for one grid point across its repetitions.
struct PointStats {
  int point_index = 0;
  std::vector<std::string> labels;  ///< parallel to axis_names
  int trials = 0;
  Summary fp;          ///< FP events per trial
  Summary fp_healthy;  ///< FP⁻ events per trial
  Summary msgs;        ///< messages sent per trial
  Summary bytes;       ///< bytes sent per trial
  /// Invariant violations per trial (all-zero when checks are disabled).
  Summary violations;
  /// Trials whose invariant suite ran (Scenario::checks.enabled).
  int checked_trials = 0;
  /// Trials with at least one invariant violation.
  int violating_trials = 0;
  Histogram first_detect;  ///< merged latency samples, seconds
  Histogram full_dissem;   ///< merged latency samples, seconds
  /// Telemetry series folded across repetitions into per-(time, metric)
  /// percentile bands (empty unless base.metrics_interval > 0). Folded
  /// post-join in trial-index order, so jobs-invariant like everything else.
  std::vector<obs::SeriesBand> series;
};

struct CampaignResult {
  std::string campaign_name;
  std::vector<std::string> axis_names;
  /// Trial-index order (grid order × repetitions) — identical for every
  /// `jobs` level.
  std::vector<TrialResult> trials;
  /// Grid order, parallel to expand_grid().
  std::vector<PointStats> points;
};

/// Execute the campaign. Throws ScenarioError when validate() is non-empty;
/// a trial that throws aborts the campaign and rethrows on the caller
/// thread. Reporters may be empty; they are invoked under an internal lock
/// (begin / progress / on_trial / end) and need no synchronization of their
/// own.
CampaignResult run(const Campaign& c,
                   const std::vector<Reporter*>& reporters = {});

}  // namespace lifeguard::harness
