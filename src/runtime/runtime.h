// The sans-I/O seam between the protocol and its environment.
//
// swim::Node is written entirely against this interface, so the identical
// protocol code runs (a) deterministically inside the discrete-event
// simulator and (b) over real UDP sockets. A Runtime is single-threaded from
// the node's point of view: all callbacks (timers, packets, unblock
// notifications) are delivered serially.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/task.h"
#include "common/types.h"

namespace lifeguard {

/// Opaque timer handle. kInvalidTimer is never returned by schedule().
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Current time on this runtime's monotonic clock.
  virtual TimePoint now() const = 0;

  /// Run `fn` once after `delay`. Returns a handle usable with cancel().
  /// Scheduling with a non-positive delay fires on the next dispatch step,
  /// never synchronously (re-entrancy safety). Task (common/task.h) accepts
  /// any void() callable, move-only ones included, and keeps typical timer
  /// captures inline — the simulator schedules millions of these.
  virtual TimerId schedule(Duration delay, Task fn) = 0;

  /// Cancel a pending timer. Cancelling an already-fired or invalid handle is
  /// a no-op.
  virtual void cancel(TimerId id) = 0;

  /// Transmit a datagram. Ownership of the bytes transfers to the runtime.
  /// When this runtime is blocked by an anomaly, the send is queued and
  /// flushed on unblock (modelling a process stuck in sendto()).
  virtual void send(const Address& to, std::vector<std::uint8_t> payload,
                    Channel channel) = 0;

  /// Deterministic per-node random source.
  virtual Rng& rng() = 0;

  /// An empty byte buffer to build the next outbound datagram in. Runtimes
  /// with a recycling pool (the simulator) return spent delivery buffers
  /// here so steady-state messaging allocates nothing; the default is a
  /// fresh vector. Purely a capacity hint — contents and semantics of the
  /// buffer are the caller's.
  virtual std::vector<std::uint8_t> acquire_buffer() { return {}; }

  /// True while an injected anomaly is blocking this node's message I/O.
  /// The simulator uses this to model the paper's blocked send/recv
  /// instrumentation; real runtimes always return false.
  virtual bool blocked() const { return false; }
};

/// Receiver side of the seam: the node implements this, the runtime calls it.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void on_packet(const Address& from,
                         std::span<const std::uint8_t> payload,
                         Channel channel) = 0;
};

}  // namespace lifeguard
