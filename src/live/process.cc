#include "live/process.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <vector>

#include "net/udp_runtime.h"

namespace lifeguard::live {

namespace {

std::mutex g_pids_mu;
std::vector<pid_t> g_pids;

}  // namespace

void register_live_pid(pid_t pid) {
  const std::lock_guard<std::mutex> lock(g_pids_mu);
  g_pids.push_back(pid);
}

void unregister_live_pid(pid_t pid) {
  const std::lock_guard<std::mutex> lock(g_pids_mu);
  std::erase(g_pids, pid);
}

void emergency_teardown() {
  const std::lock_guard<std::mutex> lock(g_pids_mu);
  for (const pid_t pid : g_pids) {
    ::kill(pid, SIGKILL);
    // A SIGSTOPped process would otherwise sit on the pending SIGKILL.
    ::kill(pid, SIGCONT);
  }
}

NodeProcess::~NodeProcess() { kill_and_reap(); }

NodeProcess::NodeProcess(NodeProcess&& o) noexcept { *this = std::move(o); }

NodeProcess& NodeProcess::operator=(NodeProcess&& o) noexcept {
  if (this == &o) return *this;
  kill_and_reap();
  pid_ = o.pid_;
  reaped_ = o.reaped_;
  index_ = o.index_;
  control_fd_ = o.control_fd_;
  udp_port_ = o.udp_port_;
  writer_ = std::move(o.writer_);
  lines_ = std::move(o.lines_);
  o.pid_ = -1;
  o.reaped_ = true;
  o.control_fd_ = -1;
  o.writer_.reset();
  return *this;
}

bool NodeProcess::spawn(const Options& opts, std::string& error) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    error = "socketpair() failed: " + std::string(std::strerror(errno));
    return false;
  }

  const std::string index_s = std::to_string(opts.index);
  const std::string port_s = std::to_string(opts.udp_port);
  const std::string seed_s = std::to_string(opts.seed);
  const std::string epoch_s = std::to_string(opts.epoch_ns);
  const std::string tick_ms_s = std::to_string(opts.tick.us / 1000);
  const std::string metrics_us_s = std::to_string(opts.metrics_interval.us);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    error = "fork() failed: " + std::string(std::strerror(errno));
    return false;
  }

  if (pid == 0) {
    // Child. Die with the parent even if it is SIGKILLed.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    ::close(sv[0]);
    // The worker finds its control channel on a fixed fd.
    if (sv[1] != 3) {
      ::dup2(sv[1], 3);
      ::close(sv[1]);
    }
    if (!opts.log_path.empty()) {
      const int log_fd =
          ::open(opts.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDERR_FILENO);
        if (log_fd != STDERR_FILENO) ::close(log_fd);
      }
    }
    const char* argv[] = {opts.binary.c_str(),
                          "--index", index_s.c_str(),
                          "--port", port_s.c_str(),
                          "--seed", seed_s.c_str(),
                          "--epoch-ns", epoch_s.c_str(),
                          "--control-fd", "3",
                          "--tick-ms", tick_ms_s.c_str(),
                          "--metrics-interval-us", metrics_us_s.c_str(),
                          "--config", opts.config_spec.c_str(),
                          nullptr};
    ::execv(opts.binary.c_str(), const_cast<char* const*>(argv));
    ::_exit(127);
  }

  // Parent.
  ::close(sv[1]);
  pid_ = pid;
  reaped_ = false;
  index_ = opts.index;
  control_fd_ = sv[0];
  udp_port_ = opts.udp_port;
  writer_ = std::make_unique<LineWriter>(control_fd_);
  register_live_pid(pid_);
  return true;
}

bool NodeProcess::handshake(Duration timeout, std::string& error) {
  const std::int64_t deadline = net::steady_now_ns() + timeout.us * 1000;
  char buf[512];
  while (true) {
    if (auto line = lines_.next_line()) {
      std::string parse_error;
      const auto msg = parse_worker_msg(*line, parse_error);
      if (!msg || msg->kind != WorkerMsg::Kind::kHello) {
        error = "node " + std::to_string(index_) +
                ": expected HELLO, got '" + *line + "'";
        return false;
      }
      udp_port_ = msg->udp_port;
      return true;
    }
    const std::int64_t now = net::steady_now_ns();
    if (now >= deadline) {
      error = "node " + std::to_string(index_) + ": handshake timed out";
      return false;
    }
    pollfd pfd{control_fd_, POLLIN, 0};
    const int wait_ms = static_cast<int>((deadline - now) / 1000000 + 1);
    const int rv = ::poll(&pfd, 1, wait_ms);
    if (rv <= 0) continue;
    const ssize_t n = ::read(control_fd_, buf, sizeof(buf));
    if (n <= 0) {
      error = "node " + std::to_string(index_) +
              ": control channel closed before HELLO (worker exited?)";
      return false;
    }
    lines_.append(buf, static_cast<std::size_t>(n));
  }
}

bool NodeProcess::send_line(std::string_view line) {
  return writer_ && writer_->write_line(line);
}

void NodeProcess::sigstop() {
  if (running()) ::kill(pid_, SIGSTOP);
}

void NodeProcess::sigcont() {
  if (running()) ::kill(pid_, SIGCONT);
}

void NodeProcess::kill_hard() {
  if (running()) {
    ::kill(pid_, SIGKILL);
    ::kill(pid_, SIGCONT);  // deliver the SIGKILL to a stopped process too
  }
}

bool NodeProcess::try_reap() {
  if (pid_ <= 0 || reaped_) return true;
  const pid_t rv = ::waitpid(pid_, nullptr, WNOHANG);
  if (rv == pid_) {
    reaped_ = true;
    unregister_live_pid(pid_);
    close_control();
  }
  return reaped_;
}

void NodeProcess::kill_and_reap() {
  if (pid_ <= 0) {
    close_control();
    return;
  }
  if (!reaped_) {
    kill_hard();
    ::waitpid(pid_, nullptr, 0);
    reaped_ = true;
    unregister_live_pid(pid_);
  }
  close_control();
}

Address NodeProcess::address() const {
  return Address{(127u << 24) | 1u, udp_port_};
}

void NodeProcess::close_control() {
  if (control_fd_ >= 0) {
    ::close(control_fd_);
    control_fd_ = -1;
  }
  writer_.reset();
}

}  // namespace lifeguard::live
