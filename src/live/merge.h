// Watermark K-way merge of per-process trace streams.
//
// Each live worker emits its check::TraceEvents over its control channel in
// its own timestamp order, but the parent reads the channels whenever poll()
// wakes it — so events from different workers arrive interleaved out of
// order. Sinks (check::Checker, check::TraceRecorder) require the one
// globally time-ordered stream the simulator's EventTap produces.
//
// TraceMerger restores that order with stream watermarks: every stream
// carries a promise "nothing earlier than W will ever arrive here" — raised
// by each event it delivers and by explicit TICK keep-alives (advance()).
// Buffered events are released, globally ordered, up to the *minimum*
// watermark across open streams. A closed stream (worker exited or was
// SIGKILLed mid-stream) stops bounding the merge: whatever it managed to
// emit is still released in order, and the survivors' streams flow on — a
// truncated stream delays nothing and loses nothing that arrived.
//
// Ties on the timestamp break by (stream, arrival sequence), so a given set
// of pushes always yields one deterministic output order.
//
// Single-threaded by design: the parent's poll loop owns it.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "check/events.h"
#include "common/types.h"

namespace lifeguard::live {

class TraceMerger {
 public:
  /// Sinks receive the merged stream; kDatagram records are withheld from
  /// sinks whose wants_datagrams() is false, matching sim::EventTap.
  explicit TraceMerger(std::vector<check::TraceSink*> sinks)
      : sinks_(std::move(sinks)) {}

  /// Register a stream; returns its id. All streams start at watermark 0.
  int open_stream();

  /// Buffer one event from `stream` and raise its watermark to e.at. An
  /// event timestamped before the stream's own watermark (cross-process
  /// clock skew) is clamped up to it — per-stream order is a merge
  /// invariant, and the skew this hides is bounded by the shared epoch.
  void push(int stream, check::TraceEvent e);

  /// Raise `stream`'s watermark to `t` without an event (TICK keep-alive).
  /// Regressions are ignored.
  void advance(int stream, TimePoint t);

  /// Mark `stream` finished: it stops bounding the global watermark and
  /// accepts no further pushes. Idempotent.
  void close_stream(int stream);

  /// Close every stream and flush all buffered events. Call once at run end.
  void finish();

  /// Events delivered to sinks so far.
  std::size_t emitted() const { return emitted_; }
  /// Events buffered, waiting for lagging watermarks.
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    check::TraceEvent event;
    int stream;
    std::uint64_t seq;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.event.at != b.event.at) return a.event.at > b.event.at;
      if (a.stream != b.stream) return a.stream > b.stream;
      return a.seq > b.seq;
    }
  };

  TimePoint global_watermark() const;
  void flush();
  void emit(const check::TraceEvent& e);

  std::vector<check::TraceSink*> sinks_;
  std::vector<TimePoint> watermarks_;
  std::vector<bool> open_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t emitted_ = 0;
};

}  // namespace lifeguard::live
