// live::run — the multi-process counterpart of harness::run.
//
// Takes the exact same harness::Scenario descriptor and executes it against
// a cluster of real OS processes (live/process.h) exchanging real UDP
// datagrams on loopback, with the fault timeline lowered to wall-clock
// actions (live/fault_plan.h), every worker's trace stream merged
// time-ordered (live/merge.h), and the same check::Checker / TraceSink
// observers the simulator path uses. Returns the same harness::RunResult,
// so tools and tests compare backends directly (docs/live-tier.md spells
// out which knobs and invariants apply on which backend).
//
// All wall-clock phases run on one shared CLOCK_MONOTONIC epoch captured at
// run start and handed to every worker, so "timestamp" means the same thing
// in all N+1 processes.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "check/events.h"
#include "common/types.h"
#include "harness/scenario.h"

namespace lifeguard::live {

struct RunOptions {
  /// Hard wall-clock ceiling for the whole run. Zero derives one from the
  /// scenario (spawn + quiesce + planned run + grace). On expiry every
  /// worker is SIGKILLed and TimeoutError is thrown — no orphans.
  Duration timeout{};
  /// Path to the live_node worker binary; empty uses find_live_node_binary().
  std::string node_binary;
  /// Directory for per-node stderr logs (created if missing); empty disables.
  std::string log_dir;
  /// How long one worker may take to report HELLO after fork/exec.
  Duration handshake_timeout = sec(10);
};

/// The run blew its wall-clock ceiling (workers wedged, host overloaded).
/// All workers have already been torn down when this is thrown.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

/// Locate the live_node worker binary: $LIFEGUARD_LIVE_NODE, then next to
/// the running executable, then ./live_node. Empty string when not found.
std::string find_live_node_binary();

/// Execute `s` against a real-process cluster. Throws harness::ScenarioError
/// on an invalid descriptor, std::runtime_error on spawn/handshake failure,
/// TimeoutError on the wall-clock ceiling.
harness::RunResult run(const harness::Scenario& s, const RunOptions& opts = {},
                       const std::vector<check::TraceSink*>& sinks = {});

}  // namespace lifeguard::live
