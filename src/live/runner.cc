#include "live/runner.h"

#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <memory>
#include <optional>

#include "check/invariant.h"
#include "common/rng.h"
#include "live/control.h"
#include "live/fault_plan.h"
#include "live/merge.h"
#include "live/process.h"
#include "membership/backend.h"
#include "net/udp_runtime.h"
#include "obs/catalog.h"

namespace lifeguard::live {

namespace {

/// Live runs cap cluster size well below the sim's 4096: each member is a
/// real process with a real socket, and loopback scheduling noise past this
/// size drowns the protocol timings the checks reason about.
constexpr int kMaxLiveCluster = 128;

/// Reserved netem token for the runner-managed partition block sets (fault
/// timeline entry tokens are small indices; this cannot collide).
constexpr int kPartitionToken = 1 << 20;

/// Replicates the sim engine's extract_results accounting (§V-F1/F2) off
/// the merged trace stream: FP / FP⁻ counts and per-victim detection /
/// dissemination latency, identical definitions, different event source.
class StreamMetrics final : public check::TraceSink {
 public:
  StreamMetrics(int cluster_size, const std::vector<int>& victims)
      : n_(cluster_size),
        victim_set_(static_cast<std::size_t>(cluster_size), false),
        first_mark_(static_cast<std::size_t>(cluster_size) *
                        static_cast<std::size_t>(cluster_size),
                    -1) {
    for (int v : victims) {
      if (v >= 0 && v < n_) victim_set_[static_cast<std::size_t>(v)] = true;
    }
  }

  /// Events before this instant (the quiesce) don't count, matching the
  /// sim's anomaly_start cutoff.
  void set_anomaly_start(TimePoint t) { start_ = t; }

  void on_trace_event(const check::TraceEvent& e) override {
    if (e.kind != check::TraceEventKind::kFailed || e.at < start_) return;
    const int reporter = e.node;
    const int subject = e.peer;
    if (reporter < 0 || reporter >= n_ || subject < 0 || subject >= n_) return;
    if (!victim_set_[static_cast<std::size_t>(subject)]) {
      if (e.originated) {
        ++fp_events_;
        if (!victim_set_[static_cast<std::size_t>(reporter)]) {
          ++fp_healthy_events_;
        }
      }
      return;
    }
    if (reporter == subject) return;
    std::int64_t& mark = first_mark_[static_cast<std::size_t>(reporter) *
                                         static_cast<std::size_t>(n_) +
                                     static_cast<std::size_t>(subject)];
    if (mark < 0) mark = e.at.us;
    if (e.originated) {
      auto [it, inserted] = first_originated_.try_emplace(subject, e.at.us);
      if (!inserted && e.at.us < it->second) it->second = e.at.us;
    }
  }

  void finalize(const std::vector<int>& victims,
                harness::RunResult& out) const {
    out.fp_events = fp_events_;
    out.fp_healthy_events = fp_healthy_events_;
    for (int v : victims) {
      const auto orig = first_originated_.find(v);
      if (orig == first_originated_.end()) continue;
      out.first_detect.push_back(
          (TimePoint{orig->second} - start_).seconds());
      bool all_healthy_marked = true;
      std::int64_t last_healthy_mark = -1;
      for (int i = 0; i < n_; ++i) {
        if (i == v || victim_set_[static_cast<std::size_t>(i)]) continue;
        const std::int64_t mark =
            first_mark_[static_cast<std::size_t>(i) *
                            static_cast<std::size_t>(n_) +
                        static_cast<std::size_t>(v)];
        if (mark < 0) {
          all_healthy_marked = false;
        } else {
          last_healthy_mark = std::max(last_healthy_mark, mark);
        }
      }
      if (all_healthy_marked && last_healthy_mark >= 0) {
        out.full_dissem.push_back(
            (TimePoint{last_healthy_mark} - start_).seconds());
      }
    }
  }

 private:
  int n_;
  TimePoint start_{};
  std::vector<bool> victim_set_;
  /// first_mark_[reporter * n + victim]: when `reporter` first marked
  /// `victim` failed (us; -1 = never).
  std::vector<std::int64_t> first_mark_;
  std::map<int, std::int64_t> first_originated_;  ///< victim -> earliest us
  std::int64_t fp_events_ = 0;
  std::int64_t fp_healthy_events_ = 0;
};

/// Collects the workers' kMetricSample EV lines off the merged stream into
/// an obs::Series, so a live RunResult carries the same telemetry shape as a
/// sim one (per-node samples instead of cluster aggregates: node >= 0).
class SeriesCollector final : public check::TraceSink {
 public:
  void on_trace_event(const check::TraceEvent& e) override {
    if (e.kind != check::TraceEventKind::kMetricSample) return;
    const auto metric = obs::metric_from_id(e.peer);
    if (!metric) return;
    series_.push_back({e.at, *metric, e.node, e.value});
  }

  obs::Series take() { return std::move(series_); }

 private:
  obs::Series series_;
};

/// One cluster member slot: the (current) process behind index i, its
/// merger stream, and end-of-run stats. Respawns replace `proc` and open a
/// fresh stream; the old stream closes at its EOF.
struct Slot {
  std::unique_ptr<NodeProcess> proc;
  int stream = -1;
  bool eof = true;  ///< control channel drained to EOF (or never opened)
  WorkerStats stats{};
  bool have_stats = false;
};

std::string executable_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return !path.empty() && ::stat(path.c_str(), &st) == 0 &&
         S_ISREG(st.st_mode);
}

bool spec_runs_invariant(const check::Spec& spec, std::string_view name) {
  if (spec.invariants.empty()) return true;
  return std::find(spec.invariants.begin(), spec.invariants.end(), name) !=
         spec.invariants.end();
}

/// Everything one run owns, so teardown is a single place: workers are
/// SIGKILLed and reaped whether the run finishes, throws, or times out.
class LiveRun {
 public:
  LiveRun(const harness::Scenario& s, const RunOptions& opts,
          const std::vector<check::TraceSink*>& sinks)
      : s_(s), opts_(opts), plan_rng_(s.seed ^ 0x11fe9ad5u) {
    plan_ = compile_timeline(s.effective_timeline(), s.cluster_size,
                             s.run_length, plan_rng_);
    metrics_ = std::make_unique<StreamMetrics>(s.cluster_size, plan_.victims);
    sinks_ = sinks;
    if (s.checks.enabled) {
      checker_.emplace(s.checks, s.config, s.cluster_size);
      sinks_.push_back(&*checker_);
    }
    sinks_.push_back(metrics_.get());
    if (s.metrics_interval > Duration{0}) sinks_.push_back(&series_);
    merger_.emplace(sinks_);
    seed_state_ = s.seed;
  }

  ~LiveRun() { teardown(); }

  harness::RunResult execute();

 private:
  TimePoint now_rt() const {
    return TimePoint{(net::steady_now_ns() - epoch_ns_) / 1000};
  }

  void fail(const std::string& what) {
    teardown();
    throw std::runtime_error("live run failed: " + what);
  }

  void teardown() {
    for (auto& slot : slots_) {
      if (slot.proc) slot.proc->kill_and_reap();
    }
  }

  void push_parent(check::TraceEventKind kind, int node, int peer = -1) {
    check::TraceEvent e;
    e.at = now_rt();
    e.kind = kind;
    e.node = node;
    e.peer = peer;
    if (kind == check::TraceEventKind::kCrash ||
        kind == check::TraceEventKind::kRestart ||
        kind == check::TraceEventKind::kBlock ||
        kind == check::TraceEventKind::kUnblock ||
        kind == check::TraceEventKind::kFaultStart ||
        kind == check::TraceEventKind::kFaultEnd) {
      last_disturbance_ = e.at;
      disturbed_ = true;
    }
    merger_->push(parent_stream_, e);
  }

  void spawn_slot(int index, std::uint16_t port);
  void start_worker(int index);
  void resend_node_faults(int index);
  void recompute_partitions();
  void execute_action(const LiveAction& a);
  void pump(Duration max_wait);
  void drain_worker(int index);
  void collect_stats();
  void stop_workers();
  void check_deadline();
  void supplement_convergence(TimePoint run_end);

  const harness::Scenario& s_;
  const RunOptions& opts_;
  Rng plan_rng_;
  LivePlan plan_;
  std::unique_ptr<StreamMetrics> metrics_;
  SeriesCollector series_;
  std::optional<check::Checker> checker_;
  std::vector<check::TraceSink*> sinks_;
  std::optional<TraceMerger> merger_;
  int parent_stream_ = -1;

  std::int64_t epoch_ns_ = 0;
  std::int64_t deadline_ns_ = 0;
  std::uint64_t seed_state_ = 1;
  std::string binary_;
  std::vector<Slot> slots_;

  /// Per-node stack of active partition claims (mirrors the sim injector's
  /// partition_claims) and per-node active netem overlays, so a respawned
  /// worker can be brought back up to the current fault state.
  std::map<int, std::vector<int>> partition_claims_;
  std::map<int, std::map<int, net::NetemFilter::Overlay>> active_netem_;

  TimePoint last_disturbance_{};
  bool disturbed_ = false;
};

void LiveRun::spawn_slot(int index, std::uint16_t port) {
  NodeProcess::Options po;
  po.index = index;
  po.udp_port = port;
  po.seed = splitmix64(seed_state_);
  po.epoch_ns = epoch_ns_;
  po.config_spec = encode_config(s_.config);
  po.binary = binary_;
  po.metrics_interval = s_.metrics_interval;
  if (!opts_.log_dir.empty()) {
    po.log_path = opts_.log_dir + "/node-" + std::to_string(index) + ".log";
  }
  auto proc = std::make_unique<NodeProcess>();
  std::string error;
  if (!proc->spawn(po, error)) fail(error);
  if (!proc->handshake(opts_.handshake_timeout, error)) {
    fail(error);
  }
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  slot.proc = std::move(proc);
  slot.stream = merger_->open_stream();
  slot.eof = false;
}

void LiveRun::start_worker(int index) {
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  const std::optional<Address> join =
      index == 0 ? std::nullopt
                 : std::optional<Address>(slots_[0].proc->address());
  slot.proc->send_line(start_line(join));
}

void LiveRun::resend_node_faults(int index) {
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (const auto it = active_netem_.find(index); it != active_netem_.end()) {
    for (const auto& [token, overlay] : it->second) {
      slot.proc->send_line(fault_add_line(token, overlay));
    }
  }
  // Partition block sets are pushed by recompute_partitions() below.
}

void LiveRun::recompute_partitions() {
  const auto group_of = [this](int v) {
    const auto it = partition_claims_.find(v);
    return it == partition_claims_.end() || it->second.empty()
               ? 0
               : it->second.back();
  };
  for (int i = 0; i < s_.cluster_size; ++i) {
    Slot& slot = slots_[static_cast<std::size_t>(i)];
    if (!slot.proc || !slot.proc->running()) continue;
    const int my_group = group_of(i);
    std::vector<Address> blocked;
    for (int j = 0; j < s_.cluster_size; ++j) {
      if (j == i) continue;
      const Slot& other = slots_[static_cast<std::size_t>(j)];
      if (!other.proc) continue;
      if (group_of(j) != my_group) blocked.push_back(other.proc->address());
    }
    slot.proc->send_line(fault_del_line(kPartitionToken));
    if (!blocked.empty()) {
      slot.proc->send_line(fault_part_line(kPartitionToken, blocked));
    }
  }
}

void LiveRun::execute_action(const LiveAction& a) {
  Slot* slot = a.node >= 0 && a.node < s_.cluster_size
                   ? &slots_[static_cast<std::size_t>(a.node)]
                   : nullptr;
  switch (a.kind) {
    case LiveAction::Kind::kStop:
      push_parent(check::TraceEventKind::kBlock, a.node);
      if (slot && slot->proc) slot->proc->sigstop();
      break;
    case LiveAction::Kind::kCont:
      if (slot && slot->proc) slot->proc->sigcont();
      push_parent(check::TraceEventKind::kUnblock, a.node);
      break;
    case LiveAction::Kind::kKill:
      push_parent(check::TraceEventKind::kCrash, a.node);
      // SIGKILL only; the control stream is drained to EOF so everything
      // the victim emitted before dying still merges (then the stream
      // closes and stops bounding the watermark).
      if (slot && slot->proc) slot->proc->kill_hard();
      break;
    case LiveAction::Kind::kRespawn: {
      if (!slot) break;
      const std::uint16_t port = slot->proc ? slot->proc->udp_port() : 0;
      if (slot->proc) {
        drain_worker(a.node);
        slot->proc->kill_and_reap();
        if (!slot->eof) {
          merger_->close_stream(slot->stream);
          slot->eof = true;
        }
      }
      push_parent(check::TraceEventKind::kRestart, a.node);
      spawn_slot(a.node, port);
      resend_node_faults(a.node);
      recompute_partitions();
      start_worker(a.node);
      break;
    }
    case LiveAction::Kind::kNetemAdd:
      active_netem_[a.node][a.token] = a.overlay;
      if (slot && slot->proc) {
        slot->proc->send_line(fault_add_line(a.token, a.overlay));
      }
      break;
    case LiveAction::Kind::kNetemDel:
      if (const auto it = active_netem_.find(a.node);
          it != active_netem_.end()) {
        it->second.erase(a.token);
      }
      if (slot && slot->proc) slot->proc->send_line(fault_del_line(a.token));
      break;
    case LiveAction::Kind::kPartitionAdd:
      for (int v : a.island) partition_claims_[v].push_back(a.token);
      recompute_partitions();
      break;
    case LiveAction::Kind::kPartitionDel:
      for (int v : a.island) {
        std::vector<int>& claims = partition_claims_[v];
        // Drop the most recent matching claim; the node follows the next
        // remaining claim or re-merges (sim injector semantics).
        if (const auto it =
                std::find(claims.rbegin(), claims.rend(), a.token);
            it != claims.rend()) {
          claims.erase(std::next(it).base());
        }
      }
      recompute_partitions();
      break;
    case LiveAction::Kind::kFaultStart:
      push_parent(check::TraceEventKind::kFaultStart, -1, a.entry);
      break;
    case LiveAction::Kind::kFaultEnd:
      push_parent(check::TraceEventKind::kFaultEnd, -1, a.entry);
      break;
  }
}

/// Read whatever is buffered on `index`'s control channel right now (used
/// before a respawn replaces the process, so no emitted event is lost).
void LiveRun::drain_worker(int index) {
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (!slot.proc || slot.eof) return;
  char buf[4096];
  while (true) {
    pollfd pfd{slot.proc->control_fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 0) <= 0) break;
    const ssize_t n = ::read(slot.proc->control_fd(), buf, sizeof(buf));
    if (n <= 0) break;
    slot.proc->lines().append(buf, static_cast<std::size_t>(n));
  }
  std::string error;
  while (auto line = slot.proc->lines().next_line()) {
    if (const auto msg = parse_worker_msg(*line, error)) {
      if (msg->kind == WorkerMsg::Kind::kEvent) {
        merger_->push(slot.stream, msg->event);
      } else if (msg->kind == WorkerMsg::Kind::kTick) {
        merger_->advance(slot.stream, msg->tick);
      }
    }
  }
}

/// One poll round over every open control channel: feed line buffers, push
/// events/ticks into the merger, record stats, close drained streams.
void LiveRun::pump(Duration max_wait) {
  std::vector<pollfd> fds;
  std::vector<int> fd_slot;
  for (int i = 0; i < s_.cluster_size; ++i) {
    const Slot& slot = slots_[static_cast<std::size_t>(i)];
    if (!slot.proc || slot.eof || slot.proc->control_fd() < 0) continue;
    fds.push_back({slot.proc->control_fd(), POLLIN, 0});
    fd_slot.push_back(i);
  }
  if (fds.empty()) {
    if (max_wait > Duration{0}) {
      ::usleep(static_cast<useconds_t>(
          std::min<std::int64_t>(max_wait.us, 100000)));
    }
    return;
  }
  const int timeout_ms = static_cast<int>(
      std::clamp<std::int64_t>((max_wait.us + 999) / 1000, 0, 100));
  const int rv = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rv <= 0) return;
  char buf[8192];
  for (std::size_t k = 0; k < fds.size(); ++k) {
    if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    Slot& slot = slots_[static_cast<std::size_t>(fd_slot[k])];
    bool closed = false;
    while (true) {
      const ssize_t n = ::read(slot.proc->control_fd(), buf, sizeof(buf));
      if (n > 0) {
        slot.proc->lines().append(buf, static_cast<std::size_t>(n));
        if (n < static_cast<ssize_t>(sizeof(buf))) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      closed = true;  // EOF or hard error: the worker is gone
      break;
    }
    std::string error;
    while (auto line = slot.proc->lines().next_line()) {
      const auto msg = parse_worker_msg(*line, error);
      if (!msg) continue;  // tolerate garbage; the worker's log has details
      switch (msg->kind) {
        case WorkerMsg::Kind::kEvent:
          merger_->push(slot.stream, msg->event);
          break;
        case WorkerMsg::Kind::kTick:
          merger_->advance(slot.stream, msg->tick);
          break;
        case WorkerMsg::Kind::kStats:
          slot.stats = msg->stats;
          slot.have_stats = true;
          break;
        case WorkerMsg::Kind::kHello:
        case WorkerMsg::Kind::kBye:
          break;
      }
    }
    if (closed) {
      merger_->close_stream(slot.stream);
      slot.eof = true;
      slot.proc->try_reap();
    }
  }
}

void LiveRun::check_deadline() {
  if (net::steady_now_ns() < deadline_ns_) return;
  teardown();
  throw TimeoutError("live run exceeded its wall-clock ceiling (" +
                     std::to_string((deadline_ns_ - epoch_ns_) / 1000000000) +
                     " s) — workers torn down");
}

void LiveRun::collect_stats() {
  for (int i = 0; i < s_.cluster_size; ++i) {
    Slot& slot = slots_[static_cast<std::size_t>(i)];
    if (slot.proc && slot.proc->running() && !slot.eof) {
      slot.proc->send_line(stats_request_line());
    }
  }
  const std::int64_t wait_until = net::steady_now_ns() + 3'000'000'000;
  while (net::steady_now_ns() < wait_until) {
    bool missing = false;
    for (int i = 0; i < s_.cluster_size; ++i) {
      const Slot& slot = slots_[static_cast<std::size_t>(i)];
      if (slot.proc && !slot.eof && !slot.have_stats) missing = true;
    }
    if (!missing) break;
    pump(msec(50));
  }
}

void LiveRun::stop_workers() {
  for (auto& slot : slots_) {
    if (slot.proc && slot.proc->running() && !slot.eof) {
      slot.proc->send_line(stop_line());
    }
  }
  // Bounded drain: workers answer BYE and exit; stragglers get SIGKILL.
  const std::int64_t wait_until = net::steady_now_ns() + 2'000'000'000;
  while (net::steady_now_ns() < wait_until) {
    bool any_open = false;
    for (const auto& slot : slots_) {
      if (slot.proc && !slot.eof) any_open = true;
    }
    if (!any_open) break;
    pump(msec(50));
  }
  teardown();
  for (auto& slot : slots_) {
    if (slot.proc && !slot.eof) {
      merger_->close_stream(slot.stream);
      slot.eof = true;
    }
  }
}

void LiveRun::supplement_convergence(TimePoint run_end) {
  if (!checker_ || !spec_runs_invariant(s_.checks, "convergence")) return;
  // The stream-only Checker cannot inspect membership tables the way the
  // sim-bound convergence invariant does, so the live tier asserts the same
  // property from the workers' final self-reports: after a quiet tail of at
  // least convergence_settle, every surviving member must see the whole
  // cluster alive.
  const TimePoint since = disturbed_ ? last_disturbance_ : TimePoint{0};
  if (run_end - since < s_.checks.convergence_settle) return;
  for (int i = 0; i < s_.cluster_size; ++i) {
    const Slot& slot = slots_[static_cast<std::size_t>(i)];
    if (!slot.have_stats) continue;
    if (slot.stats.active != s_.cluster_size) {
      checker_->add_violation(
          "convergence", run_end, i, -1,
          "node-" + std::to_string(i) + " sees " +
              std::to_string(slot.stats.active) + " active members, expected " +
              std::to_string(s_.cluster_size) + " after a settled tail");
    }
  }
}

harness::RunResult LiveRun::execute() {
  binary_ = opts_.node_binary.empty() ? find_live_node_binary()
                                      : opts_.node_binary;
  if (!file_exists(binary_)) {
    fail("live_node worker binary not found (searched $LIFEGUARD_LIVE_NODE, "
         "next to the current executable, and ./live_node); build the "
         "live_node target or pass --node-binary");
  }
  if (!opts_.log_dir.empty()) {
    ::mkdir(opts_.log_dir.c_str(), 0755);
  }

  epoch_ns_ = net::steady_now_ns();
  const Duration ceiling =
      opts_.timeout > Duration{0}
          ? opts_.timeout
          : s_.quiesce + plan_.total_run + opts_.handshake_timeout + sec(30);
  deadline_ns_ = epoch_ns_ + ceiling.us * 1000;

  parent_stream_ = merger_->open_stream();
  slots_.resize(static_cast<std::size_t>(s_.cluster_size));
  for (int i = 0; i < s_.cluster_size; ++i) spawn_slot(i, 0);

  // Everyone is up; node 0 seeds, the rest join through it.
  for (int i = 0; i < s_.cluster_size; ++i) start_worker(i);
  const TimePoint t_start = now_rt();
  const TimePoint t_inject = t_start + s_.quiesce;
  const TimePoint t_end = t_inject + plan_.total_run;
  metrics_->set_anomaly_start(t_inject);

  std::size_t next_action = 0;
  while (true) {
    check_deadline();
    const TimePoint now = now_rt();
    while (next_action < plan_.actions.size() &&
           t_inject + plan_.actions[next_action].at <= now) {
      execute_action(plan_.actions[next_action]);
      ++next_action;
    }
    merger_->advance(parent_stream_, now_rt());
    if (now >= t_end && next_action >= plan_.actions.size()) break;
    TimePoint next_wake = t_end;
    if (next_action < plan_.actions.size()) {
      next_wake = std::min(next_wake,
                           t_inject + plan_.actions[next_action].at);
    }
    pump(next_wake - now);
  }

  collect_stats();
  stop_workers();
  merger_->finish();

  const TimePoint run_end = now_rt();
  harness::RunResult out;
  out.scenario_name = s_.name;
  out.cluster_size = s_.cluster_size;
  out.victims = plan_.victims;
  metrics_->finalize(plan_.victims, out);
  for (const auto& slot : slots_) {
    if (!slot.have_stats) continue;
    out.msgs_sent += static_cast<std::int64_t>(slot.stats.msgs_sent);
    out.bytes_sent += static_cast<std::int64_t>(slot.stats.bytes_sent);
  }
  out.metrics.counter("net.msgs_sent").add(out.msgs_sent);
  out.metrics.counter("net.bytes_sent").add(out.bytes_sent);
  out.series = series_.take();
  if (checker_) {
    supplement_convergence(run_end);
    checker_->finish(run_end);
    out.checks = checker_->report();
  }
  return out;
}

}  // namespace

std::string find_live_node_binary() {
  if (const char* env = std::getenv("LIFEGUARD_LIVE_NODE");
      env != nullptr && file_exists(env)) {
    return env;
  }
  if (const std::string dir = executable_dir(); !dir.empty()) {
    const std::string candidate = dir + "/live_node";
    if (file_exists(candidate)) return candidate;
  }
  if (file_exists("./live_node")) return "./live_node";
  return {};
}

harness::RunResult run(const harness::Scenario& s, const RunOptions& opts,
                       const std::vector<check::TraceSink*>& sinks) {
  auto errors = s.validate();
  if (membership::base_name(s.membership) != "swim") {
    errors.push_back("membership '" + s.membership +
                     "' is simulator-only — the live tier's worker processes "
                     "speak the swim protocol");
  }
  if (s.cluster_size > kMaxLiveCluster) {
    errors.push_back("cluster_size (" + std::to_string(s.cluster_size) +
                     ") exceeds the live tier's cap (" +
                     std::to_string(kMaxLiveCluster) +
                     " real processes); use the sim backend for larger runs");
  }
  if (!errors.empty()) throw harness::ScenarioError(std::move(errors));
  LiveRun run(s, opts, sinks);
  return run.execute();
}

}  // namespace lifeguard::live

// ---------------------------------------------------------------------------
// harness backend dispatch (declared in harness/scenario.h; defined here —
// the only translation unit that links both engines)

namespace lifeguard::harness {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSim:
      return "sim";
    case Backend::kLive:
      return "live";
  }
  return "?";
}

std::optional<Backend> backend_from_name(std::string_view name) {
  if (name == "sim") return Backend::kSim;
  if (name == "live") return Backend::kLive;
  return std::nullopt;
}

RunResult run(const Scenario& s, const RunOptions& opts,
              const std::vector<check::TraceSink*>& sinks) {
  if (opts.backend == Backend::kSim) return run(s, sinks);
  live::RunOptions lo;
  lo.timeout = opts.timeout;
  lo.node_binary = opts.node_binary;
  lo.log_dir = opts.log_dir;
  return live::run(s, lo, sinks);
}

}  // namespace lifeguard::harness
