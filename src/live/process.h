// One live cluster member as a real OS process.
//
// NodeProcess fork/execs the live_node worker binary with its identity,
// port, seed, shared epoch and encoded swim::Config on argv, connected to
// the parent by a SOCK_STREAM socketpair carrying the line protocol of
// live/control.h. The worker's stderr goes to a per-node log file.
//
// Crash-fault mapping: SIGSTOP/SIGCONT freeze and thaw the process (sim
// block/unblock — a stopped process neither sends nor receives), SIGKILL is
// a crash, and a respawn is a brand-new NodeProcess on the *same* UDP port
// so the member rejoins under its old address.
//
// Orphan safety is layered: every child sets PR_SET_PDEATHSIG(SIGKILL) so a
// dying parent takes its workers with it, and the parent registers every
// live pid in a global table that emergency_teardown() SIGKILLs — the
// watchdog and fatal-error paths call it before exiting.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"
#include "live/control.h"

namespace lifeguard::live {

/// SIGKILL every registered live worker pid. Safe to call from any thread
/// and repeatedly; used by the scenario_runner watchdog and fatal paths.
void emergency_teardown();
void register_live_pid(pid_t pid);
void unregister_live_pid(pid_t pid);

class NodeProcess {
 public:
  struct Options {
    int index = 0;
    /// 0 lets the worker pick a free port (first spawn); a respawn passes
    /// the previous port so the member keeps its address.
    std::uint16_t udp_port = 0;
    std::uint64_t seed = 1;
    std::int64_t epoch_ns = 0;
    std::string config_spec;  ///< control.h encode_config() output
    std::string binary;       ///< path to the live_node executable
    std::string log_path;     ///< per-node stderr log ("" = inherit)
    Duration tick = msec(200);  ///< worker TICK cadence
    /// Telemetry self-sampling cadence: the worker emits kMetricSample EV
    /// lines (node = its index) every interval. 0 disables sampling.
    Duration metrics_interval{};
  };

  NodeProcess() = default;
  ~NodeProcess();

  NodeProcess(const NodeProcess&) = delete;
  NodeProcess& operator=(const NodeProcess&) = delete;
  NodeProcess(NodeProcess&& o) noexcept;
  NodeProcess& operator=(NodeProcess&& o) noexcept;

  /// Fork/exec the worker. False (with `error`) on spawn failure.
  bool spawn(const Options& opts, std::string& error);

  /// Block until the worker's HELLO arrives (recording its bound UDP port)
  /// or `timeout` of wall time passes. False on timeout/EOF/garbage.
  bool handshake(Duration timeout, std::string& error);

  /// Write one protocol line to the worker; false once the worker is gone.
  bool send_line(std::string_view line);

  void sigstop();
  void sigcont();
  void kill_hard();  ///< SIGKILL
  /// Non-blocking reap; returns true once the child has been collected
  /// (then running() goes false).
  bool try_reap();
  /// SIGKILL (if still up) and wait. Used for teardown.
  void kill_and_reap();

  bool running() const { return pid_ > 0 && !reaped_; }
  pid_t pid() const { return pid_; }
  int index() const { return index_; }
  int control_fd() const { return control_fd_; }
  std::uint16_t udp_port() const { return udp_port_; }
  /// 127.0.0.1:<udp_port> — valid after handshake().
  Address address() const;

  /// Line framer for this worker's control stream (parent side reads
  /// control_fd() and feeds it here).
  LineBuffer& lines() { return lines_; }

 private:
  void close_control();

  pid_t pid_ = -1;
  bool reaped_ = false;
  int index_ = -1;
  int control_fd_ = -1;
  std::uint16_t udp_port_ = 0;
  std::unique_ptr<LineWriter> writer_;
  LineBuffer lines_;
};

}  // namespace lifeguard::live
