// Control-channel protocol between the live tier's parent process and its
// per-node workers (examples/live_node.cc).
//
// Each worker holds one end of a SOCK_STREAM socketpair; both directions
// carry newline-terminated ASCII lines, so the protocol is greppable in logs
// and trivially testable without processes. Worker -> parent:
//
//   HELLO <index> <pid> <udp-port>       readiness handshake (exactly once)
//   EV {"t":..,"k":"suspect",...}        one check::TraceEvent (event_line)
//   TICK <t_us>                          liveness watermark: "nothing before
//                                        t_us will ever be emitted" — drives
//                                        the parent's K-way merge forward
//   STATS msgs=<n> bytes=<n> active=<n>  reply to a STATS request
//   BYE                                  clean shutdown acknowledgement
//
// Parent -> worker:
//
//   START <ip>:<port> | START -         join via the given seed, or be it
//   FAULT add <token> el=.. il=.. lat=.. jit=.. dup=.. rp=.. rs=..
//                                        install a netem overlay (tokens are
//                                        fault-timeline entry indices)
//   FAULT part <token> <ip:port,...>     block the listed peers (partition)
//   FAULT del <token>                    remove whatever <token> installed
//   STATS                                request a STATS reply
//   STOP                                 leave, flush, answer BYE, exit
//
// Timestamps are microseconds in the run's shared epoch: the parent captures
// net::steady_now_ns() once and hands it to every worker (--epoch-ns), so
// the EV/TICK streams of all processes merge on one comparable time base.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "check/events.h"
#include "common/types.h"
#include "net/fault_filter.h"
#include "swim/config.h"

namespace lifeguard::live {

// ---------------------------------------------------------------------------
// Address + config codecs (argv/env-safe, no spaces)

/// "127.0.0.1:9000" — parse_address's exact inverse.
std::string format_address(const Address& a);
std::optional<Address> parse_address(std::string_view s);

/// Encode every swim::Config field as comma-joined key=val (durations in
/// microseconds, bools as 0/1), fit for a single argv token. decode_config
/// starts from a default Config, applies each pair, and rejects unknown or
/// malformed keys so a version-skewed worker fails loudly at spawn.
std::string encode_config(const swim::Config& c);
std::optional<swim::Config> decode_config(std::string_view s,
                                          std::string& error);

// ---------------------------------------------------------------------------
// Worker -> parent messages

struct WorkerStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  int active = 0;  ///< members the worker currently believes alive
};

struct WorkerMsg {
  enum class Kind : std::uint8_t { kHello, kEvent, kTick, kStats, kBye };
  Kind kind = Kind::kBye;
  // kHello
  int index = -1;
  int pid = -1;
  std::uint16_t udp_port = 0;
  // kEvent
  check::TraceEvent event{};
  // kTick
  TimePoint tick{};
  // kStats
  WorkerStats stats{};
};

std::string hello_line(int index, int pid, std::uint16_t udp_port);
std::string event_msg_line(const check::TraceEvent& e);
std::string tick_line(TimePoint t);
std::string stats_line(const WorkerStats& s);
std::string bye_line();

std::optional<WorkerMsg> parse_worker_msg(std::string_view line,
                                          std::string& error);

// ---------------------------------------------------------------------------
// Parent -> worker commands

struct Command {
  enum class Kind : std::uint8_t {
    kStart,
    kFaultAdd,
    kFaultPart,
    kFaultDel,
    kStats,
    kStop,
  };
  Kind kind = Kind::kStop;
  std::optional<Address> join;        ///< kStart; nullopt = act as the seed
  int token = 0;                      ///< kFaultAdd/kFaultPart/kFaultDel
  net::NetemFilter::Overlay overlay;  ///< kFaultAdd
  std::vector<Address> peers;         ///< kFaultPart
};

std::string start_line(const std::optional<Address>& join);
std::string fault_add_line(int token, const net::NetemFilter::Overlay& o);
std::string fault_part_line(int token, const std::vector<Address>& peers);
std::string fault_del_line(int token);
std::string stats_request_line();
std::string stop_line();

std::optional<Command> parse_command(std::string_view line, std::string& error);

// ---------------------------------------------------------------------------
// Stream plumbing

/// Incremental line framer over a byte stream: feed reads in, pull complete
/// lines (without the terminator) out.
class LineBuffer {
 public:
  void append(const char* data, std::size_t n) { buf_.append(data, n); }
  /// Next complete line, or nullopt until one arrives.
  std::optional<std::string> next_line();
  bool empty() const { return buf_.empty(); }

 private:
  std::string buf_;
};

/// Thread-safe whole-line writer: appends '\n' and loops until the write
/// completes (SOCK_STREAM may short-write). Returns false once the peer is
/// gone (EPIPE/ECONNRESET) — callers treat that as the process having died,
/// not an error. Both sides ignore SIGPIPE.
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}
  bool write_line(std::string_view line);

 private:
  int fd_;
  std::mutex mu_;
};

}  // namespace lifeguard::live
