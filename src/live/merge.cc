#include "live/merge.h"

#include <limits>

namespace lifeguard::live {

int TraceMerger::open_stream() {
  const int id = static_cast<int>(watermarks_.size());
  watermarks_.push_back(TimePoint{0});
  open_.push_back(true);
  return id;
}

void TraceMerger::push(int stream, check::TraceEvent e) {
  if (stream < 0 || stream >= static_cast<int>(open_.size()) ||
      !open_[static_cast<std::size_t>(stream)]) {
    return;
  }
  auto& wm = watermarks_[static_cast<std::size_t>(stream)];
  if (e.at < wm) e.at = wm;  // clamp: per-stream order is an invariant
  wm = e.at;
  heap_.push(Entry{e, stream, next_seq_++});
  flush();
}

void TraceMerger::advance(int stream, TimePoint t) {
  if (stream < 0 || stream >= static_cast<int>(open_.size()) ||
      !open_[static_cast<std::size_t>(stream)]) {
    return;
  }
  auto& wm = watermarks_[static_cast<std::size_t>(stream)];
  if (t > wm) {
    wm = t;
    flush();
  }
}

void TraceMerger::close_stream(int stream) {
  if (stream < 0 || stream >= static_cast<int>(open_.size())) return;
  if (!open_[static_cast<std::size_t>(stream)]) return;
  open_[static_cast<std::size_t>(stream)] = false;
  flush();
}

void TraceMerger::finish() {
  for (std::size_t i = 0; i < open_.size(); ++i) open_[i] = false;
  flush();
}

TimePoint TraceMerger::global_watermark() const {
  TimePoint min{std::numeric_limits<std::int64_t>::max()};
  bool any_open = false;
  for (std::size_t i = 0; i < open_.size(); ++i) {
    if (!open_[i]) continue;
    any_open = true;
    if (watermarks_[i] < min) min = watermarks_[i];
  }
  // No stream still bounds the merge — everything buffered is releasable.
  if (!any_open) return TimePoint{std::numeric_limits<std::int64_t>::max()};
  return min;
}

void TraceMerger::flush() {
  const TimePoint wm = global_watermark();
  while (!heap_.empty() && heap_.top().event.at <= wm) {
    emit(heap_.top().event);
    heap_.pop();
  }
}

void TraceMerger::emit(const check::TraceEvent& e) {
  ++emitted_;
  const bool datagram = e.kind == check::TraceEventKind::kDatagram;
  for (check::TraceSink* sink : sinks_) {
    if (datagram && !sink->wants_datagrams()) continue;
    sink->on_trace_event(e);
  }
}

}  // namespace lifeguard::live
