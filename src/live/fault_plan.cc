#include "live/fault_plan.h"

#include <algorithm>

#include "fault/injector.h"

namespace lifeguard::live {

namespace {

void stop_cont_span(std::vector<LiveAction>& out, int entry,
                    const std::vector<int>& victims, Duration start,
                    Duration span) {
  for (int v : victims) {
    out.push_back({.at = start, .kind = LiveAction::Kind::kStop,
                   .node = v, .entry = entry});
  }
  for (int v : victims) {
    out.push_back({.at = start + span, .kind = LiveAction::Kind::kCont,
                   .node = v, .entry = entry});
  }
}

}  // namespace

LivePlan compile_timeline(const fault::Timeline& tl, int cluster_size,
                          Duration run_length, Rng& rng) {
  using fault::FaultKind;
  LivePlan plan;
  plan.total_run = fault::FaultInjector::plan_total_run(tl, run_length);
  plan.entry_victims.reserve(tl.size());

  for (std::size_t i = 0; i < tl.size(); ++i) {
    const fault::TimelineEntry& e = tl.entries()[i];
    const int entry = static_cast<int>(i);
    const bool exclude_seed = e.fault.kind == FaultKind::kChurn;
    std::vector<int> victims =
        e.victims.resolve(cluster_size, rng, exclude_seed);
    const Duration start = e.at;
    const Duration end = e.at + e.duration;

    // Markers first, so stable sort keeps them ahead of same-instant actions.
    plan.actions.push_back(
        {.at = start, .kind = LiveAction::Kind::kFaultStart, .entry = entry});
    plan.actions.push_back(
        {.at = end, .kind = LiveAction::Kind::kFaultEnd, .entry = entry});

    switch (e.fault.kind) {
      case FaultKind::kBlock:
        stop_cont_span(plan.actions, entry, victims, start, e.duration);
        break;

      case FaultKind::kIntervalBlock: {
        // Lock-step cycles; cycles begun before span end run to completion
        // (sim::schedule_interval_anomaly).
        const Duration cycle = e.fault.period + e.fault.gap;
        if (cycle > Duration{0}) {
          for (Duration t = start; t < end; t = t + cycle) {
            stop_cont_span(plan.actions, entry, victims, t, e.fault.period);
          }
        }
        break;
      }

      case FaultKind::kStress: {
        const auto& p = e.fault.stress;
        for (int v : victims) {
          Rng vr = rng.fork();
          // Staggered onset, then log-uniform block/run spans — the same
          // draw shapes as sim's StressCycle.
          Duration t = start + Duration{vr.uniform_range(0, 500000)};
          while (t < end) {
            const Duration block{static_cast<std::int64_t>(vr.log_uniform(
                static_cast<double>(p.block_min.us),
                static_cast<double>(p.block_max.us)))};
            const Duration run{static_cast<std::int64_t>(vr.log_uniform(
                static_cast<double>(p.run_min.us),
                static_cast<double>(p.run_max.us)))};
            stop_cont_span(plan.actions, entry, {v}, t, block);
            t = t + block + run;
          }
        }
        break;
      }

      case FaultKind::kFlapping: {
        const Duration cycle = e.fault.period + e.fault.gap;
        if (cycle > Duration{0}) {
          for (int v : victims) {
            // Independent random phase per victim, drawn from one full
            // cycle (sim::schedule_flapping_anomaly).
            const Duration phase{rng.uniform_range(0, cycle.us - 1)};
            for (Duration t = start + phase; t < end; t = t + cycle) {
              stop_cont_span(plan.actions, entry, {v}, t, e.fault.period);
            }
          }
        }
        break;
      }

      case FaultKind::kChurn: {
        const Duration cycle = e.fault.period + e.fault.gap;
        if (cycle > Duration{0}) {
          for (int v : victims) {
            if (v == 0) continue;  // node 0 is the rejoin seed
            const Duration phase{rng.uniform_range(0, cycle.us - 1)};
            for (Duration t = start + phase; t < end; t = t + cycle) {
              plan.actions.push_back({.at = t, .kind = LiveAction::Kind::kKill,
                                      .node = v, .entry = entry});
              plan.actions.push_back({.at = t + e.fault.period,
                                      .kind = LiveAction::Kind::kRespawn,
                                      .node = v, .entry = entry});
            }
          }
        }
        break;
      }

      case FaultKind::kPartition: {
        // A distinct claim token per entry so overlapping partitions stack
        // and unwind like sim's partition_claims.
        const int group = entry + 1;
        plan.actions.push_back({.at = start,
                                .kind = LiveAction::Kind::kPartitionAdd,
                                .entry = entry, .token = group,
                                .island = victims});
        plan.actions.push_back({.at = end,
                                .kind = LiveAction::Kind::kPartitionDel,
                                .entry = entry, .token = group,
                                .island = victims});
        break;
      }

      case FaultKind::kLinkLoss:
      case FaultKind::kLatency:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder: {
        const net::NetemFilter::Overlay overlay =
            net::NetemFilter::overlay_from_fault(e.fault);
        for (int v : victims) {
          plan.actions.push_back({.at = start,
                                  .kind = LiveAction::Kind::kNetemAdd,
                                  .node = v, .entry = entry, .token = entry,
                                  .overlay = overlay});
          plan.actions.push_back({.at = end,
                                  .kind = LiveAction::Kind::kNetemDel,
                                  .node = v, .entry = entry, .token = entry});
        }
        break;
      }
    }

    for (int v : victims) {
      if (std::find(plan.victims.begin(), plan.victims.end(), v) ==
          plan.victims.end()) {
        plan.victims.push_back(v);
      }
    }
    plan.entry_victims.push_back(std::move(victims));
  }

  std::stable_sort(
      plan.actions.begin(), plan.actions.end(),
      [](const LiveAction& a, const LiveAction& b) { return a.at < b.at; });
  return plan;
}

}  // namespace lifeguard::live
