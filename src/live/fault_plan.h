// Compile a fault::Timeline into the live tier's action list.
//
// The simulator compiles timeline entries onto its virtual event queue
// (fault/injector.h); a multi-process cluster has no such queue, so the live
// tier lowers the same Timeline ahead of time into a flat, time-sorted list
// of primitive actions the parent executes at wall-clock offsets:
//
//   kBlock / kIntervalBlock / kStress / kFlapping -> kStop / kCont
//       (SIGSTOP / SIGCONT: a stopped process neither sends nor receives
//        protocol traffic — the closest real-OS analogue of sim block)
//   kChurn      -> kKill / kRespawn  (SIGKILL, then a fresh process on the
//                                     same UDP port rejoining via node 0)
//   kPartition  -> kPartitionAdd / kPartitionDel (the runner recomputes
//                  per-node peer block sets from the active claim stacks,
//                  mirroring sim::Network partition groups)
//   network kinds -> kNetemAdd / kNetemDel (per-victim netem overlays,
//                  keyed by the timeline entry index)
//   every entry -> kFaultStart / kFaultEnd markers for the merged stream
//
// The per-kind schedules replicate sim/anomaly.cc shape for shape: interval
// cycles begun before span end complete, flapping draws one random phase per
// victim from a full cycle, stress forks a per-victim Rng and staggers onset
// by up to 500 ms, churn phase-staggers its crash/restart cycles and never
// touches node 0 (the rejoin seed). Victim resolution uses the same
// VictimSelector::resolve in entry order. The draws come from the
// *caller-provided* Rng, though — not the shared engine Rng interleaved with
// protocol traffic — so a live run's victim sets are statistically
// equivalent to the simulator's, not bit-identical (docs/live-tier.md).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault.h"
#include "net/fault_filter.h"

namespace lifeguard::live {

struct LiveAction {
  enum class Kind : std::uint8_t {
    kStop,          ///< SIGSTOP `node`
    kCont,          ///< SIGCONT `node`
    kKill,          ///< SIGKILL `node` (churn crash)
    kRespawn,       ///< restart `node` on its old port; it rejoins via node 0
    kNetemAdd,      ///< install `overlay` on `node` under `token`
    kNetemDel,      ///< remove `token`'s overlay from `node`
    kPartitionAdd,  ///< `island` splits off under claim `token`
    kPartitionDel,  ///< `island`'s claim `token` is released
    kFaultStart,    ///< entry-span marker for the merged stream
    kFaultEnd,
  };

  Duration at{};  ///< offset from injection start (after the quiesce)
  Kind kind = Kind::kStop;
  int node = -1;   ///< victim (process/netem kinds); -1 for markers
  int entry = -1;  ///< owning fault::Timeline entry index
  int token = 0;   ///< netem overlay / partition claim key
  net::NetemFilter::Overlay overlay;  ///< kNetemAdd only
  std::vector<int> island;            ///< kPartitionAdd/kPartitionDel only
};

struct LivePlan {
  /// Stable-sorted by `at`; equal-time actions keep per-entry generation
  /// order, so an entry's kFaultStart precedes its first same-instant stop.
  std::vector<LiveAction> actions;
  /// Per-entry victim sets, parallel to the Timeline (== sim's
  /// InjectionOutcome::entry_victims role).
  std::vector<std::vector<int>> entry_victims;
  /// Union of all victims, first-occurrence order, deduplicated.
  std::vector<int> victims;
  /// Run length from injection start (FaultInjector::plan_total_run).
  Duration total_run{};
};

/// Lower `tl` for a cluster of `cluster_size` observed for `run_length`.
/// The Timeline must already have passed validate() for that size.
LivePlan compile_timeline(const fault::Timeline& tl, int cluster_size,
                          Duration run_length, Rng& rng);

}  // namespace lifeguard::live
