#include "live/control.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include "check/trace.h"

namespace lifeguard::live {

namespace {

// %.17g round-trips every double exactly; probabilities must survive the
// parent -> worker hop unchanged or seeded runs stop being reproducible.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_us(Duration d) { return std::to_string(d.us); }

bool parse_i64(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const std::string tmp(s);
  const long long v = std::strtoll(tmp.c_str(), &end, 10);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  std::int64_t v = 0;
  if (!parse_i64(s, v) || v < 0) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string tmp(s);
  out = std::strtod(tmp.c_str(), &end);
  return end == tmp.c_str() + tmp.size();
}

bool parse_bool(std::string_view s, bool& out) {
  if (s == "0") {
    out = false;
    return true;
  }
  if (s == "1") {
    out = true;
    return true;
  }
  return false;
}

bool parse_duration_us(std::string_view s, Duration& out) {
  std::int64_t us = 0;
  if (!parse_i64(s, us)) return false;
  out = Duration{us};
  return true;
}

/// Splits "a,b,c" / "a b c" on `sep`, invoking `fn(piece)`; stops and
/// returns false the first time `fn` does.
template <typename Fn>
bool for_each_piece(std::string_view s, char sep, Fn fn) {
  while (!s.empty()) {
    const std::size_t cut = s.find(sep);
    const std::string_view piece =
        cut == std::string_view::npos ? s : s.substr(0, cut);
    if (!fn(piece)) return false;
    if (cut == std::string_view::npos) break;
    s.remove_prefix(cut + 1);
  }
  return true;
}

bool split_kv(std::string_view piece, std::string_view& key,
              std::string_view& val) {
  const std::size_t eq = piece.find('=');
  if (eq == std::string_view::npos) return false;
  key = piece.substr(0, eq);
  val = piece.substr(eq + 1);
  return true;
}

std::string_view take_word(std::string_view& s) {
  const std::size_t cut = s.find(' ');
  std::string_view word;
  if (cut == std::string_view::npos) {
    word = s;
    s = {};
  } else {
    word = s.substr(0, cut);
    s.remove_prefix(cut + 1);
  }
  return word;
}

}  // namespace

// ---------------------------------------------------------------------------
// Address + config codecs

std::string format_address(const Address& a) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (a.ip >> 24) & 0xff,
                (a.ip >> 16) & 0xff, (a.ip >> 8) & 0xff, a.ip & 0xff, a.port);
  return buf;
}

std::optional<Address> parse_address(std::string_view s) {
  unsigned b0 = 0, b1 = 0, b2 = 0, b3 = 0, port = 0;
  char tail = 0;
  const std::string tmp(s);
  const int matched = std::sscanf(tmp.c_str(), "%u.%u.%u.%u:%u%c", &b0, &b1,
                                  &b2, &b3, &port, &tail);
  if (matched != 5 || b0 > 255 || b1 > 255 || b2 > 255 || b3 > 255 ||
      port > 65535) {
    return std::nullopt;
  }
  return Address{(b0 << 24) | (b1 << 16) | (b2 << 8) | b3,
                 static_cast<std::uint16_t>(port)};
}

std::string encode_config(const swim::Config& c) {
  std::string out;
  const auto kv = [&out](const char* key, const std::string& val) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += val;
  };
  kv("pi", fmt_us(c.probe_interval));
  kv("pt", fmt_us(c.probe_timeout));
  kv("ic", std::to_string(c.indirect_checks));
  kv("rfp", c.reliable_fallback_probe ? "1" : "0");
  kv("rm", std::to_string(c.retransmit_mult));
  kv("gi", fmt_us(c.gossip_interval));
  kv("gf", std::to_string(c.gossip_fanout));
  kv("gtd", fmt_us(c.gossip_to_dead));
  kv("mpb", std::to_string(c.max_packet_bytes));
  kv("ppi", fmt_us(c.push_pull_interval));
  kv("ri", fmt_us(c.reconnect_interval));
  kv("jri", fmt_us(c.join_retry_interval));
  kv("sa", fmt_double(c.suspicion_alpha));
  kv("sb", fmt_double(c.suspicion_beta));
  kv("sk", std::to_string(c.suspicion_k));
  kv("lp", c.lha_probe ? "1" : "0");
  kv("ls", c.lha_suspicion ? "1" : "0");
  kv("bs", c.buddy_system ? "1" : "0");
  kv("lhm", std::to_string(c.lhm_max));
  kv("nf", fmt_double(c.nack_fraction));
  kv("ne", c.nack_enabled ? "1" : "0");
  kv("dra", fmt_us(c.dead_reclaim_after));
  return out;
}

std::optional<swim::Config> decode_config(std::string_view s,
                                          std::string& error) {
  swim::Config c;
  const bool ok = for_each_piece(s, ',', [&](std::string_view piece) {
    std::string_view key, val;
    if (!split_kv(piece, key, val)) {
      error = "config: expected key=val, got '" + std::string(piece) + "'";
      return false;
    }
    std::int64_t i = 0;
    bool parsed = false;
    if (key == "pi") parsed = parse_duration_us(val, c.probe_interval);
    else if (key == "pt") parsed = parse_duration_us(val, c.probe_timeout);
    else if (key == "ic") parsed = parse_i64(val, i),
             c.indirect_checks = static_cast<int>(i);
    else if (key == "rfp") parsed = parse_bool(val, c.reliable_fallback_probe);
    else if (key == "rm") parsed = parse_i64(val, i),
             c.retransmit_mult = static_cast<int>(i);
    else if (key == "gi") parsed = parse_duration_us(val, c.gossip_interval);
    else if (key == "gf") parsed = parse_i64(val, i),
             c.gossip_fanout = static_cast<int>(i);
    else if (key == "gtd") parsed = parse_duration_us(val, c.gossip_to_dead);
    else if (key == "mpb") parsed = parse_i64(val, i),
             c.max_packet_bytes = static_cast<std::size_t>(i);
    else if (key == "ppi") parsed = parse_duration_us(val, c.push_pull_interval);
    else if (key == "ri") parsed = parse_duration_us(val, c.reconnect_interval);
    else if (key == "jri") parsed = parse_duration_us(val, c.join_retry_interval);
    else if (key == "sa") parsed = parse_double(val, c.suspicion_alpha);
    else if (key == "sb") parsed = parse_double(val, c.suspicion_beta);
    else if (key == "sk") parsed = parse_i64(val, i),
             c.suspicion_k = static_cast<int>(i);
    else if (key == "lp") parsed = parse_bool(val, c.lha_probe);
    else if (key == "ls") parsed = parse_bool(val, c.lha_suspicion);
    else if (key == "bs") parsed = parse_bool(val, c.buddy_system);
    else if (key == "lhm") parsed = parse_i64(val, i),
             c.lhm_max = static_cast<int>(i);
    else if (key == "nf") parsed = parse_double(val, c.nack_fraction);
    else if (key == "ne") parsed = parse_bool(val, c.nack_enabled);
    else if (key == "dra") parsed = parse_duration_us(val, c.dead_reclaim_after);
    else {
      error = "config: unknown key '" + std::string(key) + "'";
      return false;
    }
    if (!parsed) {
      error = "config: bad value for '" + std::string(key) + "': '" +
              std::string(val) + "'";
      return false;
    }
    return true;
  });
  if (!ok) return std::nullopt;
  return c;
}

// ---------------------------------------------------------------------------
// Worker -> parent messages

std::string hello_line(int index, int pid, std::uint16_t udp_port) {
  return "HELLO " + std::to_string(index) + " " + std::to_string(pid) + " " +
         std::to_string(udp_port);
}

std::string event_msg_line(const check::TraceEvent& e) {
  return "EV " + check::event_line(e);
}

std::string tick_line(TimePoint t) { return "TICK " + std::to_string(t.us); }

std::string stats_line(const WorkerStats& s) {
  return "STATS msgs=" + std::to_string(s.msgs_sent) +
         " bytes=" + std::to_string(s.bytes_sent) +
         " active=" + std::to_string(s.active);
}

std::string bye_line() { return "BYE"; }

std::optional<WorkerMsg> parse_worker_msg(std::string_view line,
                                          std::string& error) {
  std::string_view rest = line;
  const std::string_view verb = take_word(rest);
  WorkerMsg m;
  if (verb == "HELLO") {
    m.kind = WorkerMsg::Kind::kHello;
    std::int64_t index = 0, pid = 0, port = 0;
    std::string_view w1 = take_word(rest), w2 = take_word(rest),
                     w3 = take_word(rest);
    if (!parse_i64(w1, index) || !parse_i64(w2, pid) || !parse_i64(w3, port) ||
        port < 0 || port > 65535 || !rest.empty()) {
      error = "malformed HELLO: '" + std::string(line) + "'";
      return std::nullopt;
    }
    m.index = static_cast<int>(index);
    m.pid = static_cast<int>(pid);
    m.udp_port = static_cast<std::uint16_t>(port);
    return m;
  }
  if (verb == "EV") {
    m.kind = WorkerMsg::Kind::kEvent;
    const auto e = check::event_from_line(rest, error);
    if (!e) return std::nullopt;
    m.event = *e;
    return m;
  }
  if (verb == "TICK") {
    m.kind = WorkerMsg::Kind::kTick;
    std::int64_t us = 0;
    if (!parse_i64(rest, us)) {
      error = "malformed TICK: '" + std::string(line) + "'";
      return std::nullopt;
    }
    m.tick = TimePoint{us};
    return m;
  }
  if (verb == "STATS") {
    m.kind = WorkerMsg::Kind::kStats;
    std::int64_t active = 0;
    const bool ok = for_each_piece(rest, ' ', [&](std::string_view piece) {
      std::string_view key, val;
      if (!split_kv(piece, key, val)) return false;
      if (key == "msgs") return parse_u64(val, m.stats.msgs_sent);
      if (key == "bytes") return parse_u64(val, m.stats.bytes_sent);
      if (key == "active") {
        if (!parse_i64(val, active)) return false;
        m.stats.active = static_cast<int>(active);
        return true;
      }
      return false;
    });
    if (!ok) {
      error = "malformed STATS: '" + std::string(line) + "'";
      return std::nullopt;
    }
    return m;
  }
  if (verb == "BYE" && rest.empty()) {
    m.kind = WorkerMsg::Kind::kBye;
    return m;
  }
  error = "unknown worker message: '" + std::string(line) + "'";
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Parent -> worker commands

std::string start_line(const std::optional<Address>& join) {
  return "START " + (join ? format_address(*join) : std::string("-"));
}

std::string fault_add_line(int token, const net::NetemFilter::Overlay& o) {
  return "FAULT add " + std::to_string(token) + " el=" +
         fmt_double(o.egress_loss) + " il=" + fmt_double(o.ingress_loss) +
         " lat=" + fmt_us(o.extra_latency) + " jit=" + fmt_us(o.jitter) +
         " dup=" + fmt_double(o.duplicate_p) + " rp=" + fmt_double(o.reorder_p) +
         " rs=" + fmt_us(o.reorder_spread);
}

std::string fault_part_line(int token, const std::vector<Address>& peers) {
  std::string out = "FAULT part " + std::to_string(token) + " ";
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (i > 0) out += ',';
    out += format_address(peers[i]);
  }
  return out;
}

std::string fault_del_line(int token) {
  return "FAULT del " + std::to_string(token);
}

std::string stats_request_line() { return "STATS"; }

std::string stop_line() { return "STOP"; }

std::optional<Command> parse_command(std::string_view line,
                                     std::string& error) {
  std::string_view rest = line;
  const std::string_view verb = take_word(rest);
  Command cmd;
  if (verb == "START") {
    cmd.kind = Command::Kind::kStart;
    if (rest == "-") return cmd;
    cmd.join = parse_address(rest);
    if (!cmd.join) {
      error = "malformed START: '" + std::string(line) + "'";
      return std::nullopt;
    }
    return cmd;
  }
  if (verb == "STATS" && rest.empty()) {
    cmd.kind = Command::Kind::kStats;
    return cmd;
  }
  if (verb == "STOP" && rest.empty()) {
    cmd.kind = Command::Kind::kStop;
    return cmd;
  }
  if (verb != "FAULT") {
    error = "unknown command: '" + std::string(line) + "'";
    return std::nullopt;
  }
  const std::string_view op = take_word(rest);
  std::int64_t token = 0;
  if (!parse_i64(take_word(rest), token)) {
    error = "malformed FAULT token: '" + std::string(line) + "'";
    return std::nullopt;
  }
  cmd.token = static_cast<int>(token);
  if (op == "del") {
    cmd.kind = Command::Kind::kFaultDel;
    if (!rest.empty()) {
      error = "malformed FAULT del: '" + std::string(line) + "'";
      return std::nullopt;
    }
    return cmd;
  }
  if (op == "add") {
    cmd.kind = Command::Kind::kFaultAdd;
    auto& o = cmd.overlay;
    const bool ok = for_each_piece(rest, ' ', [&](std::string_view piece) {
      std::string_view key, val;
      if (!split_kv(piece, key, val)) return false;
      if (key == "el") return parse_double(val, o.egress_loss);
      if (key == "il") return parse_double(val, o.ingress_loss);
      if (key == "lat") return parse_duration_us(val, o.extra_latency);
      if (key == "jit") return parse_duration_us(val, o.jitter);
      if (key == "dup") return parse_double(val, o.duplicate_p);
      if (key == "rp") return parse_double(val, o.reorder_p);
      if (key == "rs") return parse_duration_us(val, o.reorder_spread);
      return false;
    });
    if (!ok) {
      error = "malformed FAULT add: '" + std::string(line) + "'";
      return std::nullopt;
    }
    return cmd;
  }
  if (op == "part") {
    cmd.kind = Command::Kind::kFaultPart;
    const bool ok = for_each_piece(rest, ',', [&](std::string_view piece) {
      const auto a = parse_address(piece);
      if (!a) return false;
      cmd.peers.push_back(*a);
      return true;
    });
    if (!ok || cmd.peers.empty()) {
      error = "malformed FAULT part: '" + std::string(line) + "'";
      return std::nullopt;
    }
    return cmd;
  }
  error = "unknown FAULT op: '" + std::string(line) + "'";
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Stream plumbing

std::optional<std::string> LineBuffer::next_line() {
  const std::size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  std::string line = buf_.substr(0, nl);
  buf_.erase(0, nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

bool LineWriter::write_line(std::string_view line) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string framed(line);
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace lifeguard::live
