// Minimal leveled logger.
//
// Protocol code logs through a per-node Logger so experiment harnesses can
// silence or capture output. Formatting is std::format-free on purpose (older
// libstdc++ compatibility) — callers build strings with operator+ or
// append(); hot paths guard with enabled() so disabled logging costs one
// branch.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace lifeguard {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel l);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  Logger() = default;
  Logger(std::string prefix, LogLevel min_level)
      : prefix_(std::move(prefix)), min_level_(min_level) {}

  void set_level(LogLevel l) { min_level_ = l; }
  LogLevel level() const { return min_level_; }
  void set_prefix(std::string p) { prefix_ = std::move(p); }
  /// Replace the default stderr sink (e.g. to capture logs in tests).
  void set_sink(Sink s) { sink_ = std::move(s); }

  bool enabled(LogLevel l) const { return l >= min_level_; }

  void log(LogLevel l, std::string_view msg) const;
  void debug(std::string_view msg) const { log(LogLevel::kDebug, msg); }
  void info(std::string_view msg) const { log(LogLevel::kInfo, msg); }
  void warn(std::string_view msg) const { log(LogLevel::kWarn, msg); }
  void error(std::string_view msg) const { log(LogLevel::kError, msg); }

 private:
  std::string prefix_;
  LogLevel min_level_ = LogLevel::kOff;
  Sink sink_;
};

}  // namespace lifeguard
