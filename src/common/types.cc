#include "common/types.h"

namespace lifeguard {

std::string Address::to_string() const {
  return std::to_string((ip >> 24) & 0xff) + "." +
         std::to_string((ip >> 16) & 0xff) + "." +
         std::to_string((ip >> 8) & 0xff) + "." + std::to_string(ip & 0xff) +
         ":" + std::to_string(port);
}

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::kUdp:
      return "udp";
    case Channel::kReliable:
      return "reliable";
  }
  return "?";
}

}  // namespace lifeguard
