#include "common/rng.h"

#include <cmath>

namespace lifeguard {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_double() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::log_uniform(double lo, double hi) {
  if (!(lo > 0) || hi <= lo) return lo;
  const double u = uniform_double();
  return lo * std::exp(u * std::log(hi / lo));
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform_double() < p;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace lifeguard
