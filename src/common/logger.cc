#include "common/logger.h"

#include <cstdio>

namespace lifeguard {

const char* log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel l, std::string_view msg) const {
  if (!enabled(l)) return;
  if (sink_) {
    sink_(l, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %s %.*s\n", log_level_name(l), prefix_.c_str(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace lifeguard
