// Lightweight metrics: counters and sample histograms.
//
// This plays the role Consul telemetry plays in the paper's evaluation —
// message/byte counts and latency distributions are read from here by the
// harness. No locking: each node's metrics are touched only from its runtime
// thread; cross-node aggregation happens after a run completes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lifeguard {

class Counter {
 public:
  void add(std::int64_t v = 1) { value_ += v; }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }
  bool operator==(const Counter&) const = default;

 private:
  std::int64_t value_ = 0;
};

/// One-pass summary of a sample distribution, cheap to copy and serialize.
/// `stddev` is the sample standard deviation (n-1 denominator); 0 when
/// count < 2. Extracted from a Histogram without copying its samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Stores raw samples; percentile extraction sorts on demand. Suitable for
/// experiment-scale sample counts (millions), not unbounded production use.
class Histogram {
 public:
  void record(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  /// Pre-size the sample buffer (bulk loads, merges of known size).
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; linear interpolation between closest ranks. Returns 0 when
  /// empty.
  double percentile(double q) const;
  /// Sample standard deviation (n-1 denominator); 0 when count < 2.
  double stddev() const;
  /// All summary statistics in one call — sorts once, copies nothing.
  Summary summary() const;
  const std::vector<double>& samples() const { return samples_; }
  /// Bulk-appends `o`'s samples (one reserve + insert); the combined buffer
  /// re-sorts at most once, on the next percentile query.
  void merge(const Histogram& o);
  void reset() { samples_.clear(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Named metric registry. Keys are dotted paths ("net.msgs_sent.udp").
class Metrics {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  std::int64_t counter_value(const std::string& name) const;
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Adds all of `o`'s counters and histogram samples into this registry.
  void merge(const Metrics& o);
  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace lifeguard
