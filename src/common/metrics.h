// Lightweight metrics: counters and sample histograms.
//
// This plays the role Consul telemetry plays in the paper's evaluation —
// message/byte counts and latency distributions are read from here by the
// harness. No locking: each node's metrics are touched only from its runtime
// thread; cross-node aggregation happens after a run completes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lifeguard {

class Counter {
 public:
  void add(std::int64_t v = 1) { value_ += v; }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

/// Stores raw samples; percentile extraction sorts on demand. Suitable for
/// experiment-scale sample counts (millions), not unbounded production use.
class Histogram {
 public:
  void record(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; linear interpolation between closest ranks. Returns 0 when
  /// empty.
  double percentile(double q) const;
  const std::vector<double>& samples() const { return samples_; }
  void merge(const Histogram& o);
  void reset() { samples_.clear(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Named metric registry. Keys are dotted paths ("net.msgs_sent.udp").
class Metrics {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  std::int64_t counter_value(const std::string& name) const;
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Adds all of `o`'s counters and histogram samples into this registry.
  void merge(const Metrics& o);
  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace lifeguard
