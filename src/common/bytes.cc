#include "common/bytes.h"

namespace lifeguard {

void BufWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BufWriter::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BufWriter::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void BufWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_.size()) return;
  for (std::size_t i = 0; i < 4; ++i) {
    buf_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint8_t BufReader::u8() { return read_le<std::uint8_t>(); }
std::uint16_t BufReader::u16() { return read_le<std::uint16_t>(); }
std::uint32_t BufReader::u32() { return read_le<std::uint32_t>(); }
std::uint64_t BufReader::u64() { return read_le<std::uint64_t>(); }

std::uint64_t BufReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (!require(1)) return 0;
    const std::uint8_t b = data_[pos_++];
    if (shift >= 63 && (b & 0x7e) != 0) {  // overflow: >64 significant bits
      ok_ = false;
      return 0;
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::string BufReader::str() {
  const std::uint64_t n = varint();
  if (!require(n)) return {};
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::span<const std::uint8_t> BufReader::raw(std::size_t n) {
  if (!require(n)) return {};
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

}  // namespace lifeguard
