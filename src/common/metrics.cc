#include "common/metrics.h"

#include <cmath>
#include <numeric>

namespace lifeguard {

double Histogram::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::mean() const {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Histogram::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Histogram::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return samples_[lo];
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Histogram::stddev() const {
  const std::size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double v : samples_) {
    const double d = v - m;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(n - 1));
}

Summary Histogram::summary() const {
  Summary s;
  s.count = samples_.size();
  if (s.count == 0) return s;
  ensure_sorted();
  s.mean = mean();
  s.stddev = stddev();
  s.min = samples_.front();
  s.max = samples_.back();
  s.p50 = percentile(0.5);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::merge(const Histogram& o) {
  if (o.samples_.empty()) return;
  samples_.reserve(samples_.size() + o.samples_.size());
  samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
  sorted_ = false;
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::int64_t Metrics::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void Metrics::merge(const Metrics& o) {
  for (const auto& [k, c] : o.counters_) counters_[k].add(c.value());
  for (const auto& [k, h] : o.histograms_) histograms_[k].merge(h);
}

void Metrics::reset() {
  counters_.clear();
  histograms_.clear();
}

}  // namespace lifeguard
