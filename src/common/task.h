// Task — a move-only callable with small-buffer storage, built for the
// simulator's hot path.
//
// std::function is the wrong vehicle for a discrete-event simulator: it
// requires copyable callables (forcing shared_ptr wrappers around moved-in
// payload buffers) and heap-allocates any capture list larger than its tiny
// internal buffer (~16 bytes in libstdc++ — two pointers). Nearly every
// event the simulator schedules carries 24–56 bytes of captures (a runtime
// pointer, an address, a datagram vector), so the old std::function-based
// queue paid one or two allocations per event.
//
// Task stores captures up to kInlineSize bytes inline (no allocation) and
// falls back to the heap only for oversized callables. It is move-only, so
// a delivery closure can own its datagram vector outright. A std::function
// (32 bytes) also fits inline, so code that still traffics in std::function
// composes with Task at zero extra cost.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lifeguard {

class Task {
 public:
  /// Bytes of inline capture storage. Sized for the simulator's delivery
  /// closure (runtime pointer + address + datagram vector + channel) with
  /// room to spare for protocol timer lambdas.
  static constexpr std::size_t kInlineSize = 56;

  Task() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for lambdas
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<void**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  Task(Task&& o) noexcept { move_from(o); }
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  void operator()() { ops_->call(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*call)(unsigned char*);
    /// Move the callable from `src` into `dst` and destroy the source.
    void (*relocate)(unsigned char* src, unsigned char* dst) noexcept;
    void (*destroy)(unsigned char*) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](unsigned char* src, unsigned char* dst) noexcept {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*f));
        f->~Fn();
      },
      [](unsigned char* buf) noexcept {
        std::launder(reinterpret_cast<Fn*>(buf))->~Fn();
      },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* buf) { (**reinterpret_cast<Fn**>(buf))(); },
      [](unsigned char* src, unsigned char* dst) noexcept {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](unsigned char* buf) noexcept { delete *reinterpret_cast<Fn**>(buf); },
  };

  void move_from(Task& o) noexcept {
    if (o.ops_ != nullptr) {
      ops_ = o.ops_;
      ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace lifeguard
