// Bounds-checked binary buffer reader/writer used by the wire codec.
//
// All multi-byte integers are little-endian. Variable-length integers use
// LEB128 (unsigned). The reader never throws on malformed input: every
// accessor reports failure through ok()/a default value, so the protocol can
// drop garbage datagrams instead of crashing (a membership agent must survive
// arbitrary bytes arriving on its UDP port).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lifeguard {

class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Write into `reuse`'s storage (cleared first) — pairs with the runtime
  /// buffer pool so hot-path encoding reuses delivered datagram capacity.
  explicit BufWriter(std::vector<std::uint8_t> reuse)
      : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void varint(std::uint64_t v);
  /// Length-prefixed (varint) string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix.
  void raw(std::span<const std::uint8_t> bytes);

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> bytes() const { return buf_; }
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

  /// Patch a previously written u32 at `offset` (used for length fixups).
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  std::string str();
  /// Returns a subspan of `n` bytes (zero-copy view into the input).
  std::span<const std::uint8_t> raw(std::size_t n);

 private:
  template <typename T>
  T read_le() {
    if (!require(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  bool require(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace lifeguard
