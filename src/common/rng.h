// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the protocol and the simulator draws from an
// Rng owned by its runtime, seeded from the experiment seed, so entire cluster
// runs replay bit-identically. xoshiro256** is small, fast and high quality;
// SplitMix64 expands seeds into full state (the construction recommended by
// the xoshiro authors).
//
// Thread-safety: all state lives in the Rng instance — no globals, no
// thread_locals, no shared tables — so independently seeded generators on
// different threads (one per campaign trial) never interact. A single
// instance is not synchronized; don't share one across threads.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace lifeguard {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound == 0 returns 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Log-uniform double in [lo, hi]; lo must be > 0 and <= hi.
  double log_uniform(double lo, double hi);

  /// Returns true with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (stable across platforms).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 single step, exposed for tests and seed derivation.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace lifeguard
