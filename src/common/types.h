// Strong time and address types shared by every module.
//
// We deliberately avoid std::chrono in protocol code: the simulator owns a
// virtual clock, and a single integral microsecond representation keeps event
// ordering, serialization and arithmetic trivial while the wrapper types stop
// accidental unit mixups (Core Guidelines I.4: strongly typed interfaces).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace lifeguard {

/// A span of time in microseconds. Value type, totally ordered.
struct Duration {
  std::int64_t us = 0;

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return {us + o.us}; }
  constexpr Duration operator-(Duration o) const { return {us - o.us}; }
  constexpr Duration& operator+=(Duration o) {
    us += o.us;
    return *this;
  }
  constexpr Duration operator*(std::int64_t k) const { return {us * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {us / k}; }

  /// Scale by a floating factor (used by LHA timeout scaling); truncates.
  constexpr Duration scaled(double f) const {
    return {static_cast<std::int64_t>(static_cast<double>(us) * f)};
  }

  constexpr double seconds() const { return static_cast<double>(us) / 1e6; }
  constexpr double millis() const { return static_cast<double>(us) / 1e3; }
  constexpr bool is_zero() const { return us == 0; }
  constexpr bool is_negative() const { return us < 0; }
};

constexpr Duration usec(std::int64_t v) { return {v}; }
constexpr Duration msec(std::int64_t v) { return {v * 1000}; }
constexpr Duration sec(std::int64_t v) { return {v * 1000000}; }
/// Fractional seconds helper for configuration code.
constexpr Duration sec_f(double v) {
  return {static_cast<std::int64_t>(v * 1e6)};
}

/// An instant on a (virtual or real) monotonic clock, microseconds since the
/// clock's epoch.
struct TimePoint {
  std::int64_t us = 0;

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return {us + d.us}; }
  constexpr TimePoint operator-(Duration d) const { return {us - d.us}; }
  constexpr Duration operator-(TimePoint o) const { return {us - o.us}; }

  constexpr double seconds() const { return static_cast<double>(us) / 1e6; }
};

/// Network endpoint. In the simulator, `ip` is the node index and `port` is
/// zero; over the real UDP transport it is a genuine IPv4 endpoint.
struct Address {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  constexpr auto operator<=>(const Address&) const = default;
  constexpr bool is_unset() const { return ip == 0 && port == 0; }

  std::string to_string() const;
};

/// Which logical channel a packet travels on. kUdp models memberlist's UDP
/// path (subject to loss); kReliable models its TCP path (push-pull state
/// sync and the fallback direct probe) — lossless but still latency-bound and
/// still subject to anomaly blocking.
enum class Channel : std::uint8_t { kUdp = 0, kReliable = 1 };

const char* channel_name(Channel c);

}  // namespace lifeguard

template <>
struct std::hash<lifeguard::Address> {
  std::size_t operator()(const lifeguard::Address& a) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(a.ip) << 16) | a.port);
  }
};
