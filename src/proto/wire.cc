#include "proto/wire.h"

namespace lifeguard::proto {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kPingReq:
      return "ping-req";
    case MsgType::kAck:
      return "ack";
    case MsgType::kNack:
      return "nack";
    case MsgType::kSuspect:
      return "suspect";
    case MsgType::kAlive:
      return "alive";
    case MsgType::kDead:
      return "dead";
    case MsgType::kPushPullReq:
      return "push-pull-req";
    case MsgType::kPushPullResp:
      return "push-pull-resp";
    case MsgType::kCompound:
      return "compound";
  }
  return "?";
}

MsgType message_type(const Message& m) {
  struct Visitor {
    MsgType operator()(const Ping&) const { return MsgType::kPing; }
    MsgType operator()(const PingReq&) const { return MsgType::kPingReq; }
    MsgType operator()(const Ack&) const { return MsgType::kAck; }
    MsgType operator()(const Nack&) const { return MsgType::kNack; }
    MsgType operator()(const Suspect&) const { return MsgType::kSuspect; }
    MsgType operator()(const Alive&) const { return MsgType::kAlive; }
    MsgType operator()(const Dead&) const { return MsgType::kDead; }
    MsgType operator()(const PushPull& p) const {
      return p.is_response ? MsgType::kPushPullResp : MsgType::kPushPullReq;
    }
  };
  return std::visit(Visitor{}, m);
}

namespace {

void write_addr(BufWriter& w, const Address& a) {
  w.u32(a.ip);
  w.u16(a.port);
}

Address read_addr(BufReader& r) {
  Address a;
  a.ip = r.u32();
  a.port = r.u16();
  return a;
}

}  // namespace

void encode(const Message& m, BufWriter& w) {
  w.u8(static_cast<std::uint8_t>(message_type(m)));
  struct Visitor {
    BufWriter& w;
    void operator()(const Ping& p) const {
      w.u32(p.seq);
      w.str(p.target);
      w.str(p.source);
      write_addr(w, p.source_addr);
    }
    void operator()(const PingReq& p) const {
      w.u32(p.seq);
      w.str(p.target);
      write_addr(w, p.target_addr);
      w.str(p.source);
      write_addr(w, p.source_addr);
      w.u64(static_cast<std::uint64_t>(p.probe_timeout_us));
      w.u8(p.want_nack ? 1 : 0);
    }
    void operator()(const Ack& a) const {
      w.u32(a.seq);
      w.str(a.from);
    }
    void operator()(const Nack& n) const {
      w.u32(n.seq);
      w.str(n.from);
    }
    void operator()(const Suspect& s) const {
      w.str(s.member);
      w.u64(s.incarnation);
      w.str(s.from);
    }
    void operator()(const Alive& a) const {
      w.str(a.member);
      w.u64(a.incarnation);
      write_addr(w, a.addr);
    }
    void operator()(const Dead& d) const {
      w.str(d.member);
      w.u64(d.incarnation);
      w.str(d.from);
    }
    void operator()(const PushPull& p) const {
      w.u8(p.join ? 1 : 0);
      w.str(p.from);
      write_addr(w, p.from_addr);
      w.varint(p.members.size());
      for (const auto& s : p.members) {
        w.str(s.name);
        write_addr(w, s.addr);
        w.u64(s.incarnation);
        w.u8(s.state);
      }
    }
  };
  std::visit(Visitor{w}, m);
}

std::vector<std::uint8_t> encode_datagram(const Message& m) {
  BufWriter w(64);
  encode(m, w);
  return std::move(w).take();
}

std::optional<Message> decode(BufReader& r) {
  const auto tag = static_cast<MsgType>(r.u8());
  if (!r.ok()) return std::nullopt;
  Message out;
  switch (tag) {
    case MsgType::kPing: {
      Ping p;
      p.seq = r.u32();
      p.target = r.str();
      p.source = r.str();
      p.source_addr = read_addr(r);
      out = std::move(p);
      break;
    }
    case MsgType::kPingReq: {
      PingReq p;
      p.seq = r.u32();
      p.target = r.str();
      p.target_addr = read_addr(r);
      p.source = r.str();
      p.source_addr = read_addr(r);
      p.probe_timeout_us = static_cast<std::int64_t>(r.u64());
      p.want_nack = r.u8() != 0;
      out = std::move(p);
      break;
    }
    case MsgType::kAck: {
      Ack a;
      a.seq = r.u32();
      a.from = r.str();
      out = std::move(a);
      break;
    }
    case MsgType::kNack: {
      Nack n;
      n.seq = r.u32();
      n.from = r.str();
      out = std::move(n);
      break;
    }
    case MsgType::kSuspect: {
      Suspect s;
      s.member = r.str();
      s.incarnation = r.u64();
      s.from = r.str();
      out = std::move(s);
      break;
    }
    case MsgType::kAlive: {
      Alive a;
      a.member = r.str();
      a.incarnation = r.u64();
      a.addr = read_addr(r);
      out = std::move(a);
      break;
    }
    case MsgType::kDead: {
      Dead d;
      d.member = r.str();
      d.incarnation = r.u64();
      d.from = r.str();
      out = std::move(d);
      break;
    }
    case MsgType::kPushPullReq:
    case MsgType::kPushPullResp: {
      PushPull p;
      p.is_response = tag == MsgType::kPushPullResp;
      p.join = r.u8() != 0;
      p.from = r.str();
      p.from_addr = read_addr(r);
      const std::uint64_t n = r.varint();
      if (!r.ok() || n > 1'000'000) return std::nullopt;
      p.members.reserve(n);
      for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        MemberSnapshot s;
        s.name = r.str();
        s.addr = read_addr(r);
        s.incarnation = r.u64();
        s.state = r.u8();
        p.members.push_back(std::move(s));
      }
      out = std::move(p);
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return out;
}

std::vector<std::uint8_t> pack_compound(
    const std::vector<std::vector<std::uint8_t>>& frames) {
  return pack_compound(frames, {});
}

std::vector<std::uint8_t> pack_compound(
    const std::vector<std::vector<std::uint8_t>>& frames,
    std::vector<std::uint8_t> reuse) {
  if (frames.size() == 1) {
    reuse.assign(frames.front().begin(), frames.front().end());
    return reuse;
  }
  BufWriter w(std::move(reuse));
  w.u8(static_cast<std::uint8_t>(MsgType::kCompound));
  w.u16(static_cast<std::uint16_t>(frames.size()));
  for (const auto& f : frames) {
    w.varint(f.size());
    w.raw(f);
  }
  return std::move(w).take();
}

bool unpack_compound(std::span<const std::uint8_t> datagram,
                     std::vector<std::span<const std::uint8_t>>& frames_out) {
  frames_out.clear();
  if (datagram.empty()) return false;
  if (static_cast<MsgType>(datagram[0]) != MsgType::kCompound) {
    frames_out.push_back(datagram);
    return true;
  }
  BufReader r(datagram);
  (void)r.u8();
  const std::uint16_t count = r.u16();
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint64_t len = r.varint();
    auto frame = r.raw(len);
    if (!r.ok()) return false;
    frames_out.push_back(frame);
  }
  return r.ok();
}

std::size_t compound_frame_overhead(std::size_t frame_size) {
  // varint length prefix
  std::size_t n = 1;
  while (frame_size >= 0x80) {
    frame_size >>= 7;
    ++n;
  }
  return n;
}

}  // namespace lifeguard::proto
