// Wire format for the SWIM/Lifeguard protocol.
//
// One datagram carries either a single message or a Compound container of
// sub-messages (memberlist's compound message / piggybacking). Layout per
// message: a one-byte type tag followed by type-specific fields. Integers are
// little-endian, strings varint-length-prefixed. Decoding is total: any
// malformed input yields std::nullopt, never UB.
//
// Message inventory mirrors memberlist plus Lifeguard's nack (paper §IV-A):
//   Ping        direct liveness probe (carries target name to catch stale
//               addressing, per memberlist)
//   PingReq     ask a relay to probe `target` on behalf of `origin`
//   Ack         answer to Ping, or relayed answer to PingReq
//   Nack        Lifeguard: relay reports it got no timely ack from target
//   Suspect     gossip: `from` suspects `member` at `incarnation`
//   Alive       gossip: `member` is alive at `incarnation` (join/refute)
//   Dead        gossip: `from` declares `member` dead; from == member means a
//               graceful leave (memberlist convention)
//   PushPullReq/PushPullResp  anti-entropy full state sync (reliable channel)
//   Compound    container; counted as ONE message in telemetry, matching the
//               paper's accounting of compound messages
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace lifeguard::proto {

enum class MsgType : std::uint8_t {
  kPing = 1,
  kPingReq = 2,
  kAck = 3,
  kNack = 4,
  kSuspect = 5,
  kAlive = 6,
  kDead = 7,
  kPushPullReq = 8,
  kPushPullResp = 9,
  kCompound = 10,
};

const char* msg_type_name(MsgType t);

struct Ping {
  std::uint32_t seq = 0;
  std::string target;       // name of the node being probed
  std::string source;       // prober's name (for ack routing diagnostics)
  Address source_addr;      // prober's address
};

struct PingReq {
  std::uint32_t seq = 0;    // origin's sequence number, echoed in Ack/Nack
  std::string target;
  Address target_addr;
  std::string source;       // origin's name
  Address source_addr;      // origin's address (relay replies here)
  std::int64_t probe_timeout_us = 0;  // origin's current (scaled) timeout
  bool want_nack = false;   // Lifeguard LHA-Probe enabled at origin
};

struct Ack {
  std::uint32_t seq = 0;
  std::string from;         // responder's name
};

struct Nack {
  std::uint32_t seq = 0;
  std::string from;         // relay's name
};

/// State gossip about one member. Shared shape for Suspect / Alive / Dead.
struct Suspect {
  std::string member;
  std::uint64_t incarnation = 0;
  std::string from;         // originator of this (independent) suspicion
};

struct Alive {
  std::string member;
  std::uint64_t incarnation = 0;
  Address addr;
};

struct Dead {
  std::string member;
  std::uint64_t incarnation = 0;
  std::string from;         // from == member encodes a graceful leave
};

/// One member's entry in a push-pull state exchange.
struct MemberSnapshot {
  std::string name;
  Address addr;
  std::uint64_t incarnation = 0;
  std::uint8_t state = 0;   // swim::MemberState numeric value
};

struct PushPull {
  bool is_response = false;
  bool join = false;        // true on the initial join exchange
  std::string from;
  Address from_addr;
  std::vector<MemberSnapshot> members;
};

using Message = std::variant<Ping, PingReq, Ack, Nack, Suspect, Alive, Dead,
                             PushPull>;

MsgType message_type(const Message& m);

/// Serialize a single message (with its type tag) into `w`.
void encode(const Message& m, BufWriter& w);

/// Convenience: encode into a fresh datagram payload.
std::vector<std::uint8_t> encode_datagram(const Message& m);

/// Decode one message starting at the reader's position. Returns nullopt on
/// malformed input (reader state is then unspecified).
std::optional<Message> decode(BufReader& r);

// ---- Compound containers -------------------------------------------------

/// Builds a compound datagram from pre-encoded message frames. A single frame
/// is emitted without the compound wrapper (memberlist does the same).
std::vector<std::uint8_t> pack_compound(
    const std::vector<std::vector<std::uint8_t>>& frames);

/// As above, but assembles the datagram in `reuse`'s storage (cleared
/// first). Pass Runtime::acquire_buffer() to recycle delivered-datagram
/// capacity instead of allocating per packet.
std::vector<std::uint8_t> pack_compound(
    const std::vector<std::vector<std::uint8_t>>& frames,
    std::vector<std::uint8_t> reuse);

/// Splits a datagram into message frames. A non-compound datagram yields one
/// frame. Returns false on malformed input.
bool unpack_compound(std::span<const std::uint8_t> datagram,
                     std::vector<std::span<const std::uint8_t>>& frames_out);

/// Byte overhead of adding one frame of `frame_size` to a compound packet.
std::size_t compound_frame_overhead(std::size_t frame_size);

/// Byte overhead of the compound header itself.
inline constexpr std::size_t kCompoundHeaderBytes = 1 + 2;  // tag + count u16

}  // namespace lifeguard::proto
