// Transmit-limited gossip broadcast queue (memberlist's
// TransmitLimitedQueue).
//
// Each state update (alive / suspect / dead about one member) is enqueued as a
// pre-encoded frame keyed by the member's name. An update is piggybacked onto
// outgoing packets until it has been transmitted `retransmit_limit(n)` times,
// where n is the current cluster size — the `λ·⌈log10(n+1)⌉` rule from SWIM's
// dissemination component. Selection prefers frames with the fewest transmits
// so far (SWIM's "prefer less-shared updates" rule); among equals, newer
// first. A new update about a member invalidates any queued older update
// about the same member.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lifeguard::proto {

/// λ·⌈log10(n+1)⌉ with multiplier λ. n is the number of known members.
int retransmit_limit(int retransmit_mult, int n);

class BroadcastQueue {
 public:
  explicit BroadcastQueue(int retransmit_mult)
      : retransmit_mult_(retransmit_mult) {}

  /// Queue `frame` (an encoded message) keyed by `member`. Replaces any
  /// queued broadcast with the same key.
  void queue(const std::string& member, std::vector<std::uint8_t> frame);

  /// Select frames to piggyback: greedily packs frames (fewest transmits
  /// first) whose size + `per_frame_overhead` fits within `byte_budget`.
  /// Increments transmit counts and drops frames that reached the limit for
  /// cluster size `n`. Returned frames are copies (the queue may drop its own
  /// storage).
  std::vector<std::vector<std::uint8_t>> get_broadcasts(
      std::size_t per_frame_overhead_base, std::size_t byte_budget, int n);

  /// Remove a queued broadcast about `member` (e.g. superseded externally).
  void invalidate(const std::string& member);

  std::size_t pending() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total frames handed out by get_broadcasts (telemetry).
  std::int64_t total_transmits() const { return total_transmits_; }
  /// Highest per-update transmit count ever reached (telemetry; the
  /// checking layer asserts it never exceeds retransmit_limit at the
  /// largest cluster size the queue has seen).
  int max_transmits() const { return max_transmits_; }

 private:
  struct Entry {
    std::string key;
    std::vector<std::uint8_t> frame;
  };
  /// Selection rank: fewest transmits first, then newest (largest enqueue
  /// id) first. (transmits, enqueue_id) pairs are unique, so this is a total
  /// order — keeping entries in a map sorted by it replaces the old
  /// stable_sort-per-get_broadcasts (and the O(queue) erase_if per queue())
  /// with O(log m) updates, selecting the exact same frames in the exact
  /// same order.
  struct Rank {
    int transmits = 0;
    std::uint64_t enqueue_id = 0;  // newer = larger
  };
  struct RankLess {
    bool operator()(const Rank& a, const Rank& b) const {
      if (a.transmits != b.transmits) return a.transmits < b.transmits;
      return a.enqueue_id > b.enqueue_id;
    }
  };

  int retransmit_mult_;
  std::uint64_t next_id_ = 1;
  std::int64_t total_transmits_ = 0;
  int max_transmits_ = 0;
  /// Lower bound on the smallest queued frame size (never raised while the
  /// queue is non-empty; reset when it drains). Lets get_broadcasts stop
  /// scanning once no conceivable frame fits the remaining budget.
  std::size_t min_frame_size_ = SIZE_MAX;
  std::map<Rank, Entry, RankLess> entries_;
  /// Member key → current rank (entries are unique per key: queue()
  /// invalidates before inserting).
  std::unordered_map<std::string, Rank> by_key_;
};

}  // namespace lifeguard::proto
