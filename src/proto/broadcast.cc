#include "proto/broadcast.h"

#include <algorithm>
#include <cmath>

#include "proto/wire.h"

namespace lifeguard::proto {

int retransmit_limit(int retransmit_mult, int n) {
  const double scale = std::ceil(std::log10(static_cast<double>(n) + 1.0));
  return static_cast<int>(retransmit_mult * std::max(1.0, scale));
}

void BroadcastQueue::queue(const std::string& member,
                           std::vector<std::uint8_t> frame) {
  invalidate(member);
  const Rank rank{0, next_id_++};
  min_frame_size_ = std::min(min_frame_size_, frame.size());
  entries_.emplace(rank, Entry{member, std::move(frame)});
  by_key_.emplace(member, rank);
}

void BroadcastQueue::invalidate(const std::string& member) {
  const auto it = by_key_.find(member);
  if (it == by_key_.end()) return;
  entries_.erase(it->second);
  by_key_.erase(it);
  if (entries_.empty()) min_frame_size_ = SIZE_MAX;
}

std::vector<std::vector<std::uint8_t>> BroadcastQueue::get_broadcasts(
    std::size_t per_frame_overhead_base, std::size_t byte_budget, int n) {
  std::vector<std::vector<std::uint8_t>> out;
  if (entries_.empty()) return out;

  const int limit = retransmit_limit(retransmit_mult_, n);
  std::size_t used = 0;
  // No queued frame can cost less than the smallest ever queued; once even
  // that cannot fit, every remaining entry would be skipped too, so stop
  // scanning. During a join storm (queues holding O(n) updates, budget full
  // after a few dozen frames) this turns a per-message O(n) walk into
  // O(selected). Selection is unchanged: the bound never exceeds any
  // remaining frame's true cost.
  const std::size_t lb_size = min_frame_size_ == SIZE_MAX ? 0 : min_frame_size_;
  const std::size_t min_cost = lb_size + per_frame_overhead_base +
                               compound_frame_overhead(lb_size);
  // Entries iterate in selection order (fewest transmits, then newest).
  // Rank bumps for selected entries are applied after the scan — exactly
  // like the old sorted-vector walk, whose in-loop ++transmits never
  // re-sorted the current pass either.
  std::vector<std::map<Rank, Entry, RankLess>::iterator> selected;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (used + min_cost > byte_budget) break;  // nothing more can fit
    const Entry& e = it->second;
    const std::size_t cost =
        e.frame.size() + per_frame_overhead_base +
        compound_frame_overhead(e.frame.size());
    if (used + cost > byte_budget) continue;  // try smaller later frames
    used += cost;
    out.push_back(e.frame);
    ++total_transmits_;
    max_transmits_ = std::max(max_transmits_, it->first.transmits + 1);
    selected.push_back(it);
  }
  for (auto it : selected) {
    const Rank bumped{it->first.transmits + 1, it->first.enqueue_id};
    auto node = entries_.extract(it);
    if (bumped.transmits >= limit) {
      by_key_.erase(node.mapped().key);  // reached its retransmit limit
      continue;
    }
    by_key_[node.mapped().key] = bumped;
    node.key() = bumped;
    entries_.insert(std::move(node));
  }
  if (entries_.empty()) min_frame_size_ = SIZE_MAX;
  return out;
}

}  // namespace lifeguard::proto
