#include "proto/broadcast.h"

#include <algorithm>
#include <cmath>

#include "proto/wire.h"

namespace lifeguard::proto {

int retransmit_limit(int retransmit_mult, int n) {
  const double scale = std::ceil(std::log10(static_cast<double>(n) + 1.0));
  return static_cast<int>(retransmit_mult * std::max(1.0, scale));
}

void BroadcastQueue::queue(const std::string& member,
                           std::vector<std::uint8_t> frame) {
  invalidate(member);
  entries_.push_back(Entry{member, std::move(frame), 0, next_id_++});
}

void BroadcastQueue::invalidate(const std::string& member) {
  std::erase_if(entries_, [&](const Entry& e) { return e.key == member; });
}

std::vector<std::vector<std::uint8_t>> BroadcastQueue::get_broadcasts(
    std::size_t per_frame_overhead_base, std::size_t byte_budget, int n) {
  std::vector<std::vector<std::uint8_t>> out;
  if (entries_.empty()) return out;

  // Fewest transmits first; ties broken newest-first.
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.transmits != b.transmits)
                       return a.transmits < b.transmits;
                     return a.enqueue_id > b.enqueue_id;
                   });

  const int limit = retransmit_limit(retransmit_mult_, n);
  std::size_t used = 0;
  std::vector<std::size_t> done;  // indices that reached their limit
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    const std::size_t cost =
        e.frame.size() + per_frame_overhead_base +
        compound_frame_overhead(e.frame.size());
    if (used + cost > byte_budget) continue;  // try smaller later frames
    used += cost;
    out.push_back(e.frame);
    ++e.transmits;
    ++total_transmits_;
    max_transmits_ = std::max(max_transmits_, e.transmits);
    if (e.transmits >= limit) done.push_back(i);
  }
  // Remove exhausted entries (reverse order keeps indices valid).
  for (auto it = done.rbegin(); it != done.rend(); ++it) {
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  return out;
}

}  // namespace lifeguard::proto
