#include "sim/network.h"

#include <algorithm>

namespace lifeguard::sim {

Duration Network::sample_latency() {
  const std::int64_t lo = params_.latency_min.us;
  const std::int64_t hi = std::max(lo, params_.latency_max.us);
  return Duration{rng_.uniform_range(lo, hi)};
}

Duration Network::sample_link_latency(int from_node, int to_node, Channel ch) {
  Duration d = sample_latency();
  if (active_overlays_ == 0) return d;  // fast path: zero extra draws
  for (int node : {from_node, to_node}) {
    const auto i = static_cast<std::size_t>(node);
    if (i >= faults_.size() || overlay_on_[i] == 0) continue;
    const LinkFault& f = faults_[i].effective;
    d += f.extra_latency;
    if (f.jitter > Duration{0}) {
      d += Duration{rng_.uniform_range(0, f.jitter.us)};
    }
    if (ch == Channel::kUdp && f.reorder_p > 0.0 && rng_.chance(f.reorder_p)) {
      d += Duration{rng_.uniform_range(0, f.reorder_spread.us)};
      metrics_.counter("net.reordered").add();
    }
  }
  return d;
}

bool Network::should_drop(int from_node, int to_node, Channel ch) {
  const auto f = static_cast<std::size_t>(from_node);
  const auto t = static_cast<std::size_t>(to_node);
  if (f >= groups_.size() || t >= groups_.size()) return true;
  if (groups_[f] != groups_[t]) {
    metrics_.counter("net.dropped.partition").add();
    return true;
  }
  if (ch == Channel::kUdp && active_overlays_ > 0 &&
      (overlay_on_[f] | overlay_on_[t]) != 0) {
    const double egress = faults_[f].effective.egress_loss;
    const double ingress = faults_[t].effective.ingress_loss;
    if ((egress > 0.0 && rng_.chance(egress)) ||
        (ingress > 0.0 && rng_.chance(ingress))) {
      metrics_.counter("net.dropped.fault_loss").add();
      return true;
    }
  }
  if (ch == Channel::kUdp && rng_.chance(params_.udp_loss)) {
    metrics_.counter("net.dropped.loss").add();
    return true;
  }
  return false;
}

bool Network::should_duplicate(int from_node, int to_node) {
  if (active_overlays_ == 0) return false;
  const auto f = static_cast<std::size_t>(from_node);
  const auto t = static_cast<std::size_t>(to_node);
  if (f >= faults_.size() || t >= faults_.size()) return false;
  if ((overlay_on_[f] | overlay_on_[t]) == 0) return false;
  const double a = faults_[f].effective.duplicate_p;
  const double b = faults_[t].effective.duplicate_p;
  const double p = 1.0 - (1.0 - a) * (1.0 - b);
  if (p <= 0.0) return false;
  if (!rng_.chance(p)) return false;
  metrics_.counter("net.duplicated").add();
  return true;
}

void Network::set_partition(int node, int group) {
  const auto i = static_cast<std::size_t>(node);
  if (i < groups_.size()) groups_[i] = group;
}

void Network::heal() { std::fill(groups_.begin(), groups_.end(), 0); }

void Network::recombine(NodeFaults& nf) {
  LinkFault eff;
  double keep_egress = 1.0, keep_ingress = 1.0, keep_dup = 1.0, keep_ro = 1.0;
  for (const auto& [token, f] : nf.overlays) {
    (void)token;
    keep_egress *= 1.0 - f.egress_loss;
    keep_ingress *= 1.0 - f.ingress_loss;
    keep_dup *= 1.0 - f.duplicate_p;
    keep_ro *= 1.0 - f.reorder_p;
    eff.extra_latency += f.extra_latency;
    eff.jitter += f.jitter;
    eff.reorder_spread = std::max(eff.reorder_spread, f.reorder_spread);
  }
  eff.egress_loss = 1.0 - keep_egress;
  eff.ingress_loss = 1.0 - keep_ingress;
  eff.duplicate_p = 1.0 - keep_dup;
  eff.reorder_p = 1.0 - keep_ro;
  nf.effective = eff;
}

int Network::add_link_fault(int node, const LinkFault& f) {
  const auto i = static_cast<std::size_t>(node);
  if (i >= faults_.size()) return 0;
  const int token = next_token_++;
  faults_[i].overlays.emplace_back(token, f);
  recombine(faults_[i]);
  overlay_on_[i] = 1;
  ++active_overlays_;
  return token;
}

void Network::remove_link_fault(int node, int token) {
  const auto i = static_cast<std::size_t>(node);
  if (i >= faults_.size()) return;
  auto& overlays = faults_[i].overlays;
  for (auto it = overlays.begin(); it != overlays.end(); ++it) {
    if (it->first == token) {
      overlays.erase(it);
      recombine(faults_[i]);
      overlay_on_[i] = overlays.empty() ? 0 : 1;
      --active_overlays_;
      return;
    }
  }
}

void Network::clear_link_faults() {
  for (auto& nf : faults_) {
    nf.overlays.clear();
    nf.effective = LinkFault{};
  }
  std::fill(overlay_on_.begin(), overlay_on_.end(), 0);
  active_overlays_ = 0;
}

}  // namespace lifeguard::sim
