#include "sim/network.h"

#include <algorithm>

namespace lifeguard::sim {

Duration Network::sample_latency() {
  const std::int64_t lo = params_.latency_min.us;
  const std::int64_t hi = std::max(lo, params_.latency_max.us);
  return Duration{rng_.uniform_range(lo, hi)};
}

bool Network::should_drop(int from_node, int to_node, Channel ch) {
  const auto f = static_cast<std::size_t>(from_node);
  const auto t = static_cast<std::size_t>(to_node);
  if (f >= groups_.size() || t >= groups_.size()) return true;
  if (groups_[f] != groups_[t]) {
    metrics_.counter("net.dropped.partition").add();
    return true;
  }
  if (ch == Channel::kUdp && rng_.chance(params_.udp_loss)) {
    metrics_.counter("net.dropped.loss").add();
    return true;
  }
  return false;
}

void Network::set_partition(int node, int group) {
  const auto i = static_cast<std::size_t>(node);
  if (i < groups_.size()) groups_[i] = group;
}

void Network::heal() { std::fill(groups_.begin(), groups_.end(), 0); }

}  // namespace lifeguard::sim
