// Simulator — owns the virtual clock, event queue, network model and the
// cluster of membership agents. Deterministic: a (config, seed) pair replays
// identically. The failure-detection protocol is pluggable via
// SimParams::membership (membership::BackendRegistry); the default "swim"
// backend is bit-parity with the simulator's original direct use of
// swim::Node.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "membership/backend.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/sim_runtime.h"
#include "swim/config.h"
#include "swim/events.h"
#include "swim/node.h"
#include "swim/probe_observer.h"

namespace lifeguard::sim {

/// Simulator-level happenings that are not membership events: process
/// control (crash/restart/block/unblock), fault-timeline entry spans, and
/// routed datagrams. Together with the swim::EventBus stream they form the
/// merged observation stream the checking layer (src/check) taps.
enum class SimEventKind : std::uint8_t {
  kCrash = 0,    ///< node hard-killed (process death)
  kRestart,      ///< node replaced by a fresh process and rejoining
  kBlock,        ///< anomaly began: node's protocol I/O stalled
  kUnblock,      ///< anomaly ended: node's I/O resumed
  kFaultStart,   ///< a fault::Timeline entry's span opened (peer = entry)
  kFaultEnd,     ///< a fault::Timeline entry's span closed (peer = entry)
  kDatagram,     ///< one datagram routed from `node` to `peer`
  // Probe-round spans (telemetry): node = prober, peer = target/relay.
  kProbeStart,     ///< direct ping left for `peer`
  kProbeAck,       ///< probe acked (value = round-trip in microseconds)
  kProbeIndirect,  ///< indirect stage launched (ping-req fan-out)
  kProbeFail,      ///< protocol period ended without an ack
  kProbeNack,      ///< nack received (peer = relay that reported timeliness)
};

struct SimEvent {
  TimePoint at{};
  SimEventKind kind = SimEventKind::kCrash;
  int node = -1;  ///< afflicted node (control) or sender (datagram/probe)
  int peer = -1;  ///< receiver (datagram) or timeline entry index (faults)
  double value = 0;  ///< kProbeAck: round-trip time in microseconds
};

struct SimParams {
  NetworkParams network;
  std::uint64_t seed = 1;
  /// Record only failure declarations (EventType::kFailed) in the per-node
  /// RecordingListeners instead of every membership transition. The harness
  /// engine enables this: its metric extraction reads only failure events,
  /// so results are bit-identical, while a large cluster's O(n²) join storm
  /// no longer materializes as retained MemberEvent records. The EventBus
  /// stream (checking layer, traces) is unaffected.
  bool record_failures_only = false;
  /// Virtual CPU cost of handling one inbound message once a backlog exists
  /// (see SimRuntime). The anomaly instrumentation blocks I/O, not the CPU,
  /// so an agent in an open window runs at full speed — a few microseconds
  /// per datagram. Zero disables rate-limiting entirely.
  Duration msg_proc_cost = usec(5);
  /// Kernel receive-buffer bound per node (Linux rmem default ballpark).
  /// UDP datagrams past this are dropped; the reliable channel (TCP) is
  /// flow-controlled and never overflow-dropped.
  std::size_t recv_buffer_bytes = 256 * 1024;
  /// Membership backend spec ("swim", "central", "central:miss=5",
  /// "static"); see membership::BackendRegistry. The constructor throws
  /// std::invalid_argument on an unknown or malformed spec.
  std::string membership = "swim";
};

/// Address scheme for simulated nodes: ip = index + 1, port = 7946.
Address sim_address(int node_index);

class Simulator {
 public:
  Simulator(int num_nodes, const swim::Config& cfg, SimParams params);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // ---- cluster control ----
  /// Start every node and have each (except node 0) join via node 0. The
  /// paper's experiments then allow a quiesce period before injecting
  /// anomalies.
  void start_all();
  /// Drive the event loop until the virtual clock reaches `t`.
  void run_until(TimePoint t);
  /// Convenience: run_until(now + d).
  void run_for(Duration d);
  /// True when every running node sees exactly `expected_active` active
  /// members.
  bool converged(int expected_active) const;

  // ---- anomaly injection (paper §V-D) ----
  void block_node(int index);
  void unblock_node(int index);
  bool is_blocked(int index) const;

  // ---- crash/stop (true failures) ----
  /// Hard-kill: the node stops processing everything (process death).
  void crash_node(int index);
  bool is_crashed(int index) const {
    return crashed_[static_cast<std::size_t>(index)];
  }
  /// Replace a crashed node with a fresh process at the same address (clean
  /// state, incarnation 0) and have it rejoin through node 0. The recorded
  /// event log of the previous incarnation is retained. Models the churn of
  /// an orchestrator restarting a failed agent.
  void restart_node(int index);

  // ---- access ----
  TimePoint now() const { return now_; }
  int size() const { return static_cast<int>(agents_.size()); }
  /// The protocol-agnostic agent at `index` (any backend).
  membership::Agent& agent(int index) {
    return *agents_[static_cast<std::size_t>(index)];
  }
  const membership::Agent& agent(int index) const {
    return *agents_[static_cast<std::size_t>(index)];
  }
  /// SWIM-specific access; throws std::bad_cast when the cluster runs a
  /// non-swim backend (callers that need swim internals — probe state,
  /// suspicion tables — are swim-only by definition).
  swim::Node& node(int index) {
    return dynamic_cast<swim::Node&>(agent(index));
  }
  const swim::Node& node(int index) const {
    return dynamic_cast<const swim::Node&>(agent(index));
  }
  /// The backend spec this cluster was built with ("swim" by default).
  const std::string& membership_name() const { return spec_.spec; }
  /// The backend name without parameters ("central:miss=5" -> "central").
  const std::string& membership_base() const { return spec_.base; }
  /// False for control backends (static) that never declare failures.
  bool detects_failures() const { return backend_->detects_failures(); }
  SimRuntime& runtime(int index) {
    return *runtimes_[static_cast<std::size_t>(index)];
  }
  const swim::RecordingListener& events(int index) const {
    return *listeners_[static_cast<std::size_t>(index)];
  }
  /// Cluster-wide feed of every node's membership events; survives
  /// restart_node (new incarnations are re-attached).
  swim::EventBus& event_bus() { return bus_; }
  Network& network() { return *network_; }
  const Network& network() const { return *network_; }
  EventQueue& queue() { return queue_; }
  Rng& rng() { return rng_; }
  /// Schedule an experiment-control callback at absolute time `t`.
  void at(TimePoint t, Task fn);

  // ---- simulator-event taps (checking layer) ----
  /// Attach an observer for every SimEvent; returns a token for
  /// remove_sim_tap. Taps are pure observers: they draw no randomness and
  /// must not mutate the cluster, so attaching one never perturbs a
  /// (scenario, seed) replay.
  using SimTap = std::function<void(const SimEvent&)>;
  int add_sim_tap(SimTap fn);
  void remove_sim_tap(int token);
  /// Publish a SimEvent stamped with the current virtual time. Cheap no-op
  /// while no tap is attached (kDatagram in particular fires per routed
  /// datagram).
  void note(SimEventKind kind, int node, int peer = -1, double value = 0);

  /// Aggregate node metrics plus network metrics into one registry.
  Metrics aggregate_metrics() const;
  /// Total datagrams delivered by the network (telemetry).
  std::int64_t datagrams_routed() const { return datagrams_routed_; }

  // SimRuntime-facing: route a datagram through the network model.
  void route(int from_node, const Address& to,
             std::vector<std::uint8_t> payload, Channel channel);

  // ---- datagram buffer pool ----
  // Delivered payload buffers cycle back through the pool and are handed
  // out again for the next outbound datagram (Runtime::acquire_buffer), so
  // steady-state routing allocates nothing. Pure capacity reuse: datagram
  // contents, Rng draws and event ordering are untouched.
  /// A cleared buffer with recycled capacity (empty when the pool is dry).
  std::vector<std::uint8_t> acquire_buffer();
  /// Return a spent buffer's capacity to the pool.
  void recycle_buffer(std::vector<std::uint8_t>&& buf);

 private:
  int index_of(const Address& addr) const;

  /// Factory arguments for the agent in slot `index` (also used by
  /// restart_node to build the replacement incarnation).
  membership::AgentParams agent_params(int index) const;

  /// Wire node `index`'s event bus to its RecordingListener.
  void attach_node(int index);

  /// Per-node adapter turning swim::ProbeObserver callbacks into probe-span
  /// SimEvents on the tap stream. Pure observer: draws no randomness, only
  /// translates member names to indices.
  struct ProbeTap final : swim::ProbeObserver {
    Simulator* sim = nullptr;
    int node = -1;
    void on_probe_start(const std::string& target) override;
    void on_probe_ack(const std::string& target, Duration rtt) override;
    void on_probe_indirect(const std::string& target) override;
    void on_probe_fail(const std::string& target) override;
    void on_probe_nack(const std::string& target,
                       const std::string& relay) override;
  };

  TimePoint now_{};
  EventQueue queue_;
  Rng rng_;
  swim::Config cfg_;
  membership::BackendSpec spec_;
  const membership::Backend* backend_ = nullptr;
  swim::EventBus bus_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<swim::RecordingListener>> listeners_;
  std::vector<std::unique_ptr<membership::Agent>> agents_;
  std::vector<swim::EventBus::Subscription> subscriptions_;
  std::vector<bool> crashed_;
  std::vector<std::pair<int, SimTap>> sim_taps_;
  int next_tap_token_ = 1;
  /// One per node; re-installed on restart_node (stable across incarnations).
  std::vector<std::unique_ptr<ProbeTap>> probe_taps_;
  /// Metrics of node incarnations retired by restart_node.
  Metrics retired_metrics_;
  std::int64_t datagrams_routed_ = 0;
  bool record_failures_only_ = false;
  std::vector<std::vector<std::uint8_t>> buffer_pool_;
};

}  // namespace lifeguard::sim
