#include "sim/event_queue.h"

#include <utility>

namespace lifeguard::sim {

std::uint64_t EventQueue::push(TimePoint at, std::function<void()> fn) {
  const std::uint64_t id = next_seq_++;
  heap_.push(Ev{at, id, std::move(fn)});
  return id;
}

void EventQueue::cancel(std::uint64_t id) {
  if (id == 0 || id >= next_seq_) return;
  cancelled_.insert(id);
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() {
  drop_cancelled_top();
  return heap_.empty();
}

TimePoint EventQueue::next_time() {
  drop_cancelled_top();
  return heap_.top().at;
}

bool EventQueue::run_next(TimePoint& now) {
  drop_cancelled_top();
  if (heap_.empty()) return false;
  // Move the closure out before popping; run after popping so the handler
  // can push new events freely.
  auto fn = std::move(const_cast<Ev&>(heap_.top()).fn);
  now = heap_.top().at;
  heap_.pop();
  ++executed_;
  fn();
  return true;
}

}  // namespace lifeguard::sim
