#include "sim/event_queue.h"

#include <utility>

namespace lifeguard::sim {

// Handles pack (slot index + 1) in the high 32 bits and the slot's
// generation in the low 32: never 0, O(1) to validate, and stale after the
// slot is vacated (generation bump) no matter how the slot is reused.
namespace {

constexpr std::uint64_t make_handle(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(slot) + 1) << 32 | gen;
}

}  // namespace

std::uint32_t EventQueue::acquire_slot() {
  if (free_slots_.empty()) {
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t index = free_slots_.back();
  free_slots_.pop_back();
  return index;
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.fn.reset();  // release captures now, not when the heap entry surfaces
  s.seq = 0;
  ++s.gen;
  free_slots_.push_back(index);
}

std::uint64_t EventQueue::push(TimePoint at, Task fn) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.seq = next_seq_++;
  heap_.push(Entry{at, s.seq, slot});
  ++live_;
  return make_handle(slot, s.gen);
}

void EventQueue::cancel(std::uint64_t id) {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > slots_.size()) return;
  const auto slot = static_cast<std::uint32_t>(hi - 1);
  Slot& s = slots_[slot];
  if (s.seq == 0 || s.gen != static_cast<std::uint32_t>(id)) return;
  release_slot(slot);  // the heap entry becomes stale and is dropped at pop
  --live_;
}

void EventQueue::drop_stale_top() {
  while (!heap_.empty() && slots_[heap_.top().slot].seq != heap_.top().seq) {
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() {
  drop_stale_top();
  return heap_.top().at;
}

bool EventQueue::fire(Entry top, TimePoint& now) {
  // Move the callable out and free the slot before running: the handler may
  // push new events (possibly reusing this very slot) freely.
  Task fn = std::move(slots_[top.slot].fn);
  now = top.at;
  release_slot(top.slot);
  --live_;
  heap_.pop();
  ++executed_;
  fn();
  return true;
}

bool EventQueue::run_next(TimePoint& now) {
  drop_stale_top();
  if (heap_.empty()) return false;
  return fire(heap_.top(), now);
}

bool EventQueue::run_next_until(TimePoint limit, TimePoint& now) {
  drop_stale_top();
  if (heap_.empty() || heap_.top().at > limit) return false;
  return fire(heap_.top(), now);
}

}  // namespace lifeguard::sim
