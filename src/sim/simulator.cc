#include "sim/simulator.h"

#include <stdexcept>
#include <string_view>
#include <utility>

namespace lifeguard::sim {

Address sim_address(int node_index) {
  return Address{static_cast<std::uint32_t>(node_index) + 1, 7946};
}

Simulator::Simulator(int num_nodes, const swim::Config& cfg, SimParams params)
    : rng_(params.seed), cfg_(cfg),
      record_failures_only_(params.record_failures_only) {
  std::string spec_error;
  const auto spec = membership::parse_spec(params.membership, &spec_error);
  if (!spec) throw std::invalid_argument(spec_error);
  spec_ = *spec;
  backend_ = membership::BackendRegistry::builtin().find(spec_.base);
  network_ = std::make_unique<Network>(params.network, num_nodes, rng_.fork());
  runtimes_.reserve(static_cast<std::size_t>(num_nodes));
  listeners_.reserve(static_cast<std::size_t>(num_nodes));
  agents_.reserve(static_cast<std::size_t>(num_nodes));
  subscriptions_.resize(static_cast<std::size_t>(num_nodes));
  crashed_.assign(static_cast<std::size_t>(num_nodes), false);
  for (int i = 0; i < num_nodes; ++i) {
    // Backend creation is argument-for-argument the old direct
    // make_unique<swim::Node> call and draws no randomness, preserving the
    // simulator's golden-seed bit-parity for the swim backend.
    runtimes_.push_back(std::make_unique<SimRuntime>(
        *this, i, sim_address(i), rng_.fork(), params.msg_proc_cost,
        params.recv_buffer_bytes));
    listeners_.push_back(std::make_unique<swim::RecordingListener>());
    agents_.push_back(backend_->create(agent_params(i), *runtimes_.back()));
    attach_node(i);
  }
}

membership::AgentParams Simulator::agent_params(int index) const {
  membership::AgentParams p;
  p.name = "node-" + std::to_string(index);
  p.address = sim_address(index);
  p.index = index;
  p.cluster_size = static_cast<int>(crashed_.size());
  p.config = cfg_;
  p.spec = spec_;
  return p;
}

namespace {

/// Reverse of the "node-<index>" naming scheme; -1 for foreign names.
int node_index_from_name(const std::string& name) {
  constexpr std::string_view kPrefix = "node-";
  if (name.size() <= kPrefix.size() || name.compare(0, kPrefix.size(), kPrefix) != 0) {
    return -1;
  }
  int idx = 0;
  for (std::size_t i = kPrefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return -1;
    idx = idx * 10 + (c - '0');
  }
  return idx;
}

}  // namespace

void Simulator::ProbeTap::on_probe_start(const std::string& target) {
  sim->note(SimEventKind::kProbeStart, node, node_index_from_name(target));
}

void Simulator::ProbeTap::on_probe_ack(const std::string& target,
                                       Duration rtt) {
  sim->note(SimEventKind::kProbeAck, node, node_index_from_name(target),
            static_cast<double>(rtt.us));
}

void Simulator::ProbeTap::on_probe_indirect(const std::string& target) {
  sim->note(SimEventKind::kProbeIndirect, node, node_index_from_name(target));
}

void Simulator::ProbeTap::on_probe_fail(const std::string& target) {
  sim->note(SimEventKind::kProbeFail, node, node_index_from_name(target));
}

void Simulator::ProbeTap::on_probe_nack(const std::string& /*target*/,
                                        const std::string& relay) {
  sim->note(SimEventKind::kProbeNack, node, node_index_from_name(relay));
}

void Simulator::attach_node(int index) {
  const auto i = static_cast<std::size_t>(index);
  membership::Agent* agent = agents_[i].get();
  swim::RecordingListener* rec = listeners_[i].get();
  swim::EventBus* bus = &bus_;
  // When record_failures_only_ is set, retain only failure declarations
  // (all the harness's metric extraction reads); the bus always sees the
  // full stream.
  const bool all = !record_failures_only_;
  subscriptions_[i] =
      agent->subscribe([rec, bus, all](const swim::MemberEvent& e) {
        if (all || e.type == swim::EventType::kFailed) rec->on_event(e);
        bus->publish(e);
      });
  runtimes_[i]->attach(agent, [agent] { agent->on_unblocked(); });
  // Probe-span telemetry: one adapter per slot, surviving restart_node (the
  // fresh incarnation gets the same tap re-installed). Backends without a
  // probe pipeline ignore the observer.
  if (probe_taps_.size() <= i) probe_taps_.resize(i + 1);
  if (probe_taps_[i] == nullptr) {
    probe_taps_[i] = std::make_unique<ProbeTap>();
    probe_taps_[i]->sim = this;
    probe_taps_[i]->node = index;
  }
  agent->set_probe_observer(probe_taps_[i].get());
}

Simulator::~Simulator() {
  // Agents cancel timers against the queue in their destructors; destroy
  // them before the queue (member order already guarantees this; being
  // explicit guards against reordering).
  agents_.clear();
}

void Simulator::start_all() {
  for (auto& agent : agents_) agent->start();
  // Stagger joins within the first second, like agents brought up by a
  // provisioning system; everyone joins through node 0.
  for (int i = 1; i < size(); ++i) {
    const Duration jitter{rng_.uniform_range(1000, 1000000)};
    membership::Agent* agent = agents_[static_cast<std::size_t>(i)].get();
    at(now_ + jitter, [agent] { agent->join({sim_address(0)}); });
  }
}

void Simulator::run_until(TimePoint t) {
  while (queue_.run_next_until(t, now_)) {
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_for(Duration d) { run_until(now_ + d); }

bool Simulator::converged(int expected_active) const {
  for (const auto& agent : agents_) {
    if (!agent->running()) continue;
    if (agent->active_members() != expected_active) return false;
  }
  return true;
}

void Simulator::block_node(int index) {
  note(SimEventKind::kBlock, index);
  runtimes_[static_cast<std::size_t>(index)]->set_blocked(true);
}

void Simulator::unblock_node(int index) {
  note(SimEventKind::kUnblock, index);
  runtimes_[static_cast<std::size_t>(index)]->set_blocked(false);
}

bool Simulator::is_blocked(int index) const {
  return runtimes_[static_cast<std::size_t>(index)]->blocked();
}

void Simulator::crash_node(int index) {
  note(SimEventKind::kCrash, index);
  crashed_[static_cast<std::size_t>(index)] = true;
  agents_[static_cast<std::size_t>(index)]->stop();
  // Found by the fuzzer (scenarios/fuzz-corpus regression): a host crashed
  // while blocked kept its queued sends, and the anomaly's end flushed them
  // — datagrams from a dead node. A crash takes the kernel buffers with it.
  runtimes_[static_cast<std::size_t>(index)]->reset_on_crash();
}

void Simulator::restart_node(int index) {
  note(SimEventKind::kRestart, index);
  const auto i = static_cast<std::size_t>(index);
  retired_metrics_.merge(agents_[i]->metrics());
  crashed_[i] = false;
  runtimes_[i]->set_blocked(false);
  agents_[i] = backend_->create(agent_params(index), *runtimes_[i]);
  attach_node(index);
  agents_[i]->start();
  // Rejoin through node 0 (swim learns of its stale dead entry via push-pull
  // and refutes with a higher incarnation; central re-registers with the
  // coordinator).
  if (index != 0) agents_[i]->join({sim_address(0)});
}

void Simulator::at(TimePoint t, Task fn) { queue_.push(t, std::move(fn)); }

int Simulator::add_sim_tap(SimTap fn) {
  const int token = next_tap_token_++;
  sim_taps_.emplace_back(token, std::move(fn));
  return token;
}

void Simulator::remove_sim_tap(int token) {
  std::erase_if(sim_taps_, [token](const auto& t) { return t.first == token; });
}

void Simulator::note(SimEventKind kind, int node, int peer, double value) {
  if (sim_taps_.empty()) return;
  SimEvent e;
  e.at = now_;
  e.kind = kind;
  e.node = node;
  e.peer = peer;
  e.value = value;
  for (const auto& [token, tap] : sim_taps_) tap(e);
}

void Simulator::route(int from_node, const Address& to,
                      std::vector<std::uint8_t> payload, Channel channel) {
  const int target = index_of(to);
  if (target < 0) return;
  if (crashed_[static_cast<std::size_t>(target)]) return;  // dead host
  if (network_->should_drop(from_node, target, channel)) return;
  ++datagrams_routed_;
  note(SimEventKind::kDatagram, from_node, target);
  const Duration latency =
      network_->sample_link_latency(from_node, target, channel);
  // A duplication overlay (fault::Timeline) delivers a second, independently
  // delayed copy of a UDP datagram. Decide before the payload is moved.
  const bool duplicate = channel == Channel::kUdp &&
                         network_->should_duplicate(from_node, target);
  SimRuntime* rt = runtimes_[static_cast<std::size_t>(target)].get();
  const Address from = sim_address(from_node);
  std::vector<std::uint8_t> copy;
  if (duplicate) {
    copy = acquire_buffer();
    copy.assign(payload.begin(), payload.end());
  }
  // Task is move-only, so the delivery closure owns its payload outright and
  // stays within Task's inline capture buffer: no allocation per datagram.
  queue_.push(now_ + latency,
              [rt, from, p = std::move(payload), channel]() mutable {
                rt->deliver(from, std::move(p), channel);
              });
  if (duplicate) {
    const Duration dup_latency =
        network_->sample_link_latency(from_node, target, channel);
    ++datagrams_routed_;
    note(SimEventKind::kDatagram, from_node, target);
    queue_.push(now_ + dup_latency,
                [rt, from, p = std::move(copy), channel]() mutable {
                  rt->deliver(from, std::move(p), channel);
                });
  }
}

std::vector<std::uint8_t> Simulator::acquire_buffer() {
  if (buffer_pool_.empty()) return {};
  std::vector<std::uint8_t> buf = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  buf.clear();
  return buf;
}

void Simulator::recycle_buffer(std::vector<std::uint8_t>&& buf) {
  // Bound both directions of pool growth: drop oversized buffers (push-pull
  // state of a huge cluster) and stop hoarding past a fixed pool size.
  constexpr std::size_t kMaxPooledCapacity = 16 * 1024;
  constexpr std::size_t kMaxPooledBuffers = 1024;
  if (buf.capacity() == 0 || buf.capacity() > kMaxPooledCapacity ||
      buffer_pool_.size() >= kMaxPooledBuffers) {
    return;
  }
  buffer_pool_.push_back(std::move(buf));
}

int Simulator::index_of(const Address& addr) const {
  const int idx = static_cast<int>(addr.ip) - 1;
  if (idx < 0 || idx >= size() || addr.port != 7946) return -1;
  return idx;
}

Metrics Simulator::aggregate_metrics() const {
  Metrics out;
  out.merge(retired_metrics_);
  for (const auto& agent : agents_) out.merge(agent->metrics());
  out.merge(network_->metrics());
  return out;
}

}  // namespace lifeguard::sim
