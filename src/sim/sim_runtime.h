// Per-node Runtime implementation backed by the simulator, including the
// anomaly semantics the paper's evaluation is built on (§V-D):
//
// While a node is "blocked" (anomalous):
//   * outbound sends are queued — the real agent's goroutines are stuck
//     inside sendto(); the packets leave (with fresh network latency) when
//     the anomaly ends;
//   * inbound datagrams are queued unprocessed — received by the kernel but
//     never read by the blocked process — and are handled, in arrival order,
//     when the anomaly ends (subject to a receive-buffer cap, mirroring a
//     UDP socket buffer: overflow is dropped);
//   * timers still fire — Go runtime timers are unaffected by a goroutine
//     blocked in I/O. This is precisely what lets a slow member's suspicion
//     timeouts expire and produce false positives.
//
// Inbound processing is additionally rate-limited: each message costs
// `msg_proc_cost` of the node's (virtual) CPU once a backlog exists. A node
// that cycles between long blocks and millisecond open windows therefore
// drains only a handful of messages per window — so queued refutations and
// acks can lag the suspicion timers by many cycles, which is the paper's
// false-positive mechanism. Nodes with an empty queue process packets
// immediately (the healthy fast path).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "runtime/runtime.h"

namespace lifeguard::sim {

class Simulator;

class SimRuntime final : public Runtime {
 public:
  SimRuntime(Simulator& sim, int node_index, Address addr, Rng rng,
             Duration msg_proc_cost, std::size_t recv_buffer_bytes);

  // Runtime interface.
  TimePoint now() const override;
  TimerId schedule(Duration delay, Task fn) override;
  void cancel(TimerId id) override;
  void send(const Address& to, std::vector<std::uint8_t> payload,
            Channel channel) override;
  Rng& rng() override { return rng_; }
  bool blocked() const override { return blocked_; }
  std::vector<std::uint8_t> acquire_buffer() override;

  // Simulator-facing.
  void attach(PacketHandler* handler, std::function<void()> on_unblock);
  /// Deliver a datagram that has traversed the network.
  void deliver(const Address& from, std::vector<std::uint8_t> payload,
               Channel channel);
  void set_blocked(bool blocked);
  /// The host process died: its kernel state dies with it. Drops the stuck
  /// outbound sends and the unread inbound backlog, and clears any block so
  /// a later anomaly-end cannot flush traffic from the dead incarnation.
  /// (restart_node reuses this runtime for the fresh process.)
  void reset_on_crash();
  const Address& address() const { return addr_; }
  int node_index() const { return node_; }
  /// Cap on queued unprocessed inbound bytes while blocked (socket buffer).
  void set_recv_buffer_limit(std::size_t bytes) { recv_buffer_limit_ = bytes; }
  std::int64_t inbound_dropped() const { return inbound_dropped_; }
  std::size_t backlog() const { return pending_in_.size(); }

 private:
  void schedule_drain();
  void drain_one();
  struct PendingPacket {
    Address peer;
    std::vector<std::uint8_t> payload;
    Channel channel;
  };

  Simulator& sim_;
  int node_;
  Address addr_;
  Rng rng_;
  PacketHandler* handler_ = nullptr;
  std::function<void()> on_unblock_;

  bool blocked_ = false;
  Duration msg_proc_cost_;
  bool drain_scheduled_ = false;
  std::deque<PendingPacket> pending_out_;
  std::deque<PendingPacket> pending_in_;
  std::size_t pending_in_bytes_ = 0;
  std::size_t recv_buffer_limit_ = 8 * 1024 * 1024;
  std::int64_t inbound_dropped_ = 0;
};

}  // namespace lifeguard::sim
