// Network model: latency, loss, partitions and link-fault overlays between
// simulated nodes.
//
// Defaults approximate the paper's loopback testbed (sub-millisecond,
// lossless). UDP loss and partitions are available for failure-injection
// tests and robustness experiments; the reliable channel is never subjected
// to random loss (it models TCP) but does respect partitions and latency.
//
// Link-fault overlays (fault::Timeline network primitives) stack per node:
// asymmetric extra loss, added latency/jitter, duplication and reordering.
// Random loss / duplication / reordering afflict the UDP channel only — the
// reliable channel models TCP, whose retransmit/sequencing machinery masks
// them — while added latency delays both channels. When no overlay is
// installed anywhere, every query consumes exactly the same Rng draws as the
// pre-overlay model, so existing (scenario, seed) runs replay bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"

namespace lifeguard::sim {

struct NetworkParams {
  Duration latency_min = usec(200);
  Duration latency_max = msec(2);
  /// Probability an individual UDP datagram is dropped.
  double udp_loss = 0.0;
};

/// One link-fault overlay: what a fault::Timeline network entry installs on
/// each victim for its span. Several overlays on one node combine
/// independently (loss/duplicate/reorder probabilities compose as
/// 1 - Π(1 - pᵢ); latencies add; the reorder spread takes the max).
struct LinkFault {
  /// Extra drop probability for datagrams the node sends / receives.
  double egress_loss = 0.0;
  double ingress_loss = 0.0;
  /// Added one-way delay, plus uniform jitter in [0, jitter] per datagram.
  Duration extra_latency{};
  Duration jitter{};
  /// Probability a UDP datagram is delivered twice.
  double duplicate_p = 0.0;
  /// Probability a UDP datagram is held back an extra uniform
  /// [0, reorder_spread] — enough to land behind later traffic.
  double reorder_p = 0.0;
  Duration reorder_spread{};

  bool any() const {
    return egress_loss > 0.0 || ingress_loss > 0.0 ||
           !extra_latency.is_zero() || !jitter.is_zero() ||
           duplicate_p > 0.0 || reorder_p > 0.0;
  }
};

class Network {
 public:
  Network(NetworkParams params, int num_nodes, Rng rng)
      : params_(params), groups_(static_cast<std::size_t>(num_nodes), 0),
        faults_(static_cast<std::size_t>(num_nodes)),
        overlay_on_(static_cast<std::size_t>(num_nodes), 0), rng_(rng) {}

  /// Sample a one-way delivery latency from the base distribution only.
  Duration sample_latency();

  /// One-way delay for a specific link: the base sample plus both endpoints'
  /// latency overlays (jitter, and — on kUdp — a possible reorder penalty).
  /// Identical to sample_latency() when no overlay touches the link.
  Duration sample_link_latency(int from_node, int to_node, Channel ch);

  /// True when the datagram should be dropped (loss, partition, or a loss
  /// overlay on either endpoint).
  bool should_drop(int from_node, int to_node, Channel ch);

  /// True when this UDP datagram should additionally be delivered twice.
  bool should_duplicate(int from_node, int to_node);

  /// Assign `node` to partition `group`; nodes in different groups cannot
  /// exchange packets. Group 0 is the default for everyone.
  void set_partition(int node, int group);
  /// The partition group `node` currently belongs to (0 = unpartitioned).
  int partition_group(int node) const {
    return groups_[static_cast<std::size_t>(node)];
  }
  /// Heal all partitions.
  void heal();

  // ---- link-fault overlays ----
  /// Install an overlay on `node`; returns a token for remove_link_fault.
  int add_link_fault(int node, const LinkFault& f);
  /// Remove one overlay by its token. Unknown tokens are ignored.
  void remove_link_fault(int node, int token);
  /// Remove every overlay on every node.
  void clear_link_faults();
  /// The combined overlay currently effective on `node`.
  const LinkFault& effective_fault(int node) const {
    return faults_[static_cast<std::size_t>(node)].effective;
  }
  bool has_link_faults() const { return active_overlays_ > 0; }

  NetworkParams& params() { return params_; }
  Metrics& metrics() { return metrics_; }

 private:
  struct NodeFaults {
    std::vector<std::pair<int, LinkFault>> overlays;
    LinkFault effective;  ///< cached combination of `overlays`
  };

  void recombine(NodeFaults& nf);

  NetworkParams params_;
  std::vector<int> groups_;
  std::vector<NodeFaults> faults_;
  /// Per-node overlay index (0/1): lets the per-datagram queries skip the
  /// combined-overlay reads entirely for nodes no fault touches, so a mostly
  /// healthy large cluster pays nothing for a fault on a few victims.
  std::vector<std::uint8_t> overlay_on_;
  int active_overlays_ = 0;
  int next_token_ = 1;
  Rng rng_;
  Metrics metrics_;
};

}  // namespace lifeguard::sim
