// Network model: latency, loss and partitions between simulated nodes.
//
// Defaults approximate the paper's loopback testbed (sub-millisecond,
// lossless). UDP loss and partitions are available for failure-injection
// tests and robustness experiments; the reliable channel is never subjected
// to random loss (it models TCP) but does respect partitions and latency.
#pragma once

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"

namespace lifeguard::sim {

struct NetworkParams {
  Duration latency_min = usec(200);
  Duration latency_max = msec(2);
  /// Probability an individual UDP datagram is dropped.
  double udp_loss = 0.0;
};

class Network {
 public:
  Network(NetworkParams params, int num_nodes, Rng rng)
      : params_(params), groups_(static_cast<std::size_t>(num_nodes), 0),
        rng_(rng) {}

  /// Sample a one-way delivery latency.
  Duration sample_latency();

  /// True when the datagram should be dropped (loss or partition).
  bool should_drop(int from_node, int to_node, Channel ch);

  /// Assign `node` to partition `group`; nodes in different groups cannot
  /// exchange packets. Group 0 is the default for everyone.
  void set_partition(int node, int group);
  /// Heal all partitions.
  void heal();

  NetworkParams& params() { return params_; }
  Metrics& metrics() { return metrics_; }

 private:
  NetworkParams params_;
  std::vector<int> groups_;
  Rng rng_;
  Metrics metrics_;
};

}  // namespace lifeguard::sim
