#include "sim/anomaly.h"

#include <memory>

namespace lifeguard::sim {

std::vector<int> pick_victims(Simulator& sim, int count) {
  std::vector<int> all(static_cast<std::size_t>(sim.size()));
  for (int i = 0; i < sim.size(); ++i) all[static_cast<std::size_t>(i)] = i;
  sim.rng().shuffle(all);
  if (count > sim.size()) count = sim.size();
  all.resize(static_cast<std::size_t>(count));
  return all;
}

void schedule_threshold_anomaly(Simulator& sim, const std::vector<int>& victims,
                                TimePoint start, Duration duration) {
  // Lock-step on/off, synchronized "via the system clock" (paper §V-D1).
  sim.at(start, [&sim, victims] {
    for (int v : victims) sim.block_node(v);
  });
  sim.at(start + duration, [&sim, victims] {
    for (int v : victims) sim.unblock_node(v);
  });
}

void schedule_interval_anomaly(Simulator& sim, const std::vector<int>& victims,
                               TimePoint start, Duration duration,
                               Duration interval, TimePoint end) {
  TimePoint t = start;
  // The paper runs cycles until 120 s have passed, ending with the close of
  // the next anomalous period; expand the cycle list up front (bounded).
  while (t < end) {
    schedule_threshold_anomaly(sim, victims, t, duration);
    t = t + duration + interval;
  }
}

namespace {

// Self-rescheduling per-victim stress cycle. Owned by the closure chain;
// keeps itself alive via shared_ptr until `end`.
struct StressCycle : std::enable_shared_from_this<StressCycle> {
  Simulator& sim;
  int victim;
  TimePoint end;
  StressParams params;
  Rng rng;

  StressCycle(Simulator& s, int v, TimePoint e, StressParams p, Rng r)
      : sim(s), victim(v), end(e), params(p), rng(r) {}

  void begin_block(TimePoint at) {
    if (at >= end) {
      // Leave the node unblocked at experiment end.
      sim.at(at, [this, self = shared_from_this()] {
        sim.unblock_node(victim);
      });
      return;
    }
    const Duration block{static_cast<std::int64_t>(rng.log_uniform(
        static_cast<double>(params.block_min.us),
        static_cast<double>(params.block_max.us)))};
    const Duration run{static_cast<std::int64_t>(rng.log_uniform(
        static_cast<double>(params.run_min.us),
        static_cast<double>(params.run_max.us)))};
    sim.at(at, [this, self = shared_from_this()] { sim.block_node(victim); });
    sim.at(at + block,
           [this, self = shared_from_this()] { sim.unblock_node(victim); });
    begin_block(at + block + run);
  }
};

}  // namespace

void schedule_stress_anomaly(Simulator& sim, const std::vector<int>& victims,
                             TimePoint start, TimePoint end,
                             StressParams params) {
  for (int v : victims) {
    auto cycle = std::make_shared<StressCycle>(sim, v, end, params,
                                               sim.rng().fork());
    // Stagger onset slightly: workloads never land at the same instant.
    const Duration jitter{cycle->rng.uniform_range(0, 500000)};
    cycle->begin_block(start + jitter);
  }
}

void schedule_flapping_anomaly(Simulator& sim, const std::vector<int>& victims,
                               TimePoint start, Duration duration,
                               Duration interval, TimePoint end) {
  const Duration cycle = duration + interval;
  if (cycle <= Duration{0}) return;
  for (int v : victims) {
    // Independent phase per victim: this is what distinguishes flapping from
    // the lock-step interval schedule.
    const Duration phase{sim.rng().uniform_range(0, cycle.us - 1)};
    TimePoint t = start + phase;
    while (t < end) {
      schedule_threshold_anomaly(sim, {v}, t, duration);
      t = t + cycle;
    }
  }
}

void schedule_churn_anomaly(Simulator& sim, const std::vector<int>& victims,
                            TimePoint start, Duration downtime,
                            Duration uptime, TimePoint end) {
  const Duration cycle = downtime + uptime;
  if (cycle <= Duration{0}) return;
  for (int v : victims) {
    if (v == 0) continue;  // node 0 is the rejoin seed; never churn it
    const Duration phase{sim.rng().uniform_range(0, cycle.us - 1)};
    for (TimePoint t = start + phase; t < end; t = t + cycle) {
      sim.at(t, [&sim, v] { sim.crash_node(v); });
      sim.at(t + downtime, [&sim, v] { sim.restart_node(v); });
    }
  }
}

}  // namespace lifeguard::sim
