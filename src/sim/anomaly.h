// Anomaly schedules (paper §V-D).
//
// An anomaly is a span during which a member's protocol message sends and
// receives are blocked. Three schedules:
//   * Threshold: one synchronized set of C anomalies of duration D — the
//     worst case of fully correlated slowness (e.g. power event on a rack).
//   * Interval: the C members cycle anomalous-for-D / normal-for-I in
//     lock-step until the experiment ends — intermittent slowness.
//   * Stress: each afflicted member independently cycles with randomized
//     block/run spans — our model of the paper's Fig. 1 CPU-exhaustion
//     scenario (stress -c 128 on one core: progress in short random bursts).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace lifeguard::sim {

/// Choose C distinct victim node indices uniformly from [0, sim.size()).
std::vector<int> pick_victims(Simulator& sim, int count);

/// Threshold: block `victims` at `start`, unblock at `start + duration`.
void schedule_threshold_anomaly(Simulator& sim, const std::vector<int>& victims,
                                TimePoint start, Duration duration);

/// Interval: cycle blocked-for-`duration` / open-for-`interval`, starting at
/// `start`; the last cycle begun before `end` completes (the paper runs "until
/// the end of the next anomalous period").
void schedule_interval_anomaly(Simulator& sim, const std::vector<int>& victims,
                               TimePoint start, Duration duration,
                               Duration interval, TimePoint end);

/// Stress: per-victim independent cycles; block spans drawn log-uniform from
/// [block_min, block_max], run windows log-uniform from [run_min, run_max].
struct StressParams {
  Duration block_min = sec(2);
  Duration block_max = sec(40);
  Duration run_min = msec(1);
  Duration run_max = msec(50);
};
void schedule_stress_anomaly(Simulator& sim, const std::vector<int>& victims,
                             TimePoint start, TimePoint end,
                             StressParams params);

/// Flapping: like the interval schedule but *unsynchronized* — each victim
/// cycles blocked-for-`duration` / open-for-`interval` with its own random
/// initial phase (drawn from one full cycle). Models independent overloaded
/// members rather than a correlated rack-level event; victims end unblocked.
void schedule_flapping_anomaly(Simulator& sim, const std::vector<int>& victims,
                               TimePoint start, Duration duration,
                               Duration interval, TimePoint end);

/// Churn: each victim cycles crash (hard kill) for `downtime`, then restart +
/// rejoin for `uptime`, phase-staggered, until `end`; the final restart of a
/// cycle begun before `end` still happens (at most `downtime` later), so a
/// short drain after `end` leaves everyone running. Node 0 is the rejoin seed
/// and is never churned. Exercises join/refute/incarnation paths under
/// sustained member turnover.
void schedule_churn_anomaly(Simulator& sim, const std::vector<int>& victims,
                            TimePoint start, Duration downtime,
                            Duration uptime, TimePoint end);

}  // namespace lifeguard::sim
