// Discrete-event queue: the simulator's clock and scheduler.
//
// Events fire in (time, insertion-sequence) order, so same-timestamp events
// run FIFO and runs are bit-reproducible. Cancellation is lazy (tombstone
// set) — O(1) cancel, skipped at pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace lifeguard::sim {

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`. Returns a handle (never 0).
  std::uint64_t push(TimePoint at, std::function<void()> fn);
  /// Tombstone a pending event. Unknown/fired handles are ignored.
  void cancel(std::uint64_t id);

  bool empty();
  /// Timestamp of the next live event; queue must not be empty.
  TimePoint next_time();
  /// Pop and run the next live event, advancing `now` to its timestamp.
  /// Returns false when the queue is empty.
  bool run_next(TimePoint& now);

  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Ev {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_top();

  std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace lifeguard::sim
