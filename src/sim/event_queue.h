// Discrete-event queue: the simulator's clock and scheduler.
//
// Events fire in (time, insertion-sequence) order, so same-timestamp events
// run FIFO and runs are bit-reproducible. Storage is an intrusive slot pool
// with generation-counted handles: the heap orders lightweight 24-byte
// entries while the callables (Task — no per-event allocation for captures
// up to Task::kInlineSize) live in reusable slots. cancel() is O(1), frees
// the callable's captures immediately, and is an exact no-op for handles
// whose event already fired or was already cancelled — pending() never
// drifts (the old tombstone-set design under-counted after a cancel of a
// fired handle; see tests/sim/event_queue_test.cc).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/task.h"
#include "common/types.h"

namespace lifeguard::sim {

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`. Returns a handle (never 0).
  std::uint64_t push(TimePoint at, Task fn);
  /// Cancel a pending event and release its captures. Handles that are
  /// unknown, already fired, or already cancelled are ignored exactly.
  void cancel(std::uint64_t id);

  bool empty() const { return live_ == 0; }
  /// Timestamp of the next live event; queue must not be empty.
  TimePoint next_time();
  /// Pop and run the next live event, advancing `now` to its timestamp.
  /// Returns false when the queue is empty.
  bool run_next(TimePoint& now);
  /// run_next, but only when the next live event is due at or before
  /// `limit` — the simulator's run_until loop in one heap inspection.
  bool run_next_until(TimePoint limit, TimePoint& now);

  /// Exact number of scheduled-but-unfired events.
  std::size_t pending() const { return live_; }
  std::uint64_t executed() const { return executed_; }

 private:
  /// Heap entry: ordering key plus the slot holding the callable. `seq`
  /// doubles as the staleness check — a cancelled slot is freed (and maybe
  /// reused) immediately, and its orphaned heap entry no longer matches.
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// One pooled event record. `gen` is bumped every time the slot is
  /// vacated, invalidating outstanding handles to prior occupants.
  struct Slot {
    Task fn;
    std::uint64_t seq = 0;  ///< seq of the current occupant; 0 when free
    std::uint32_t gen = 0;
  };

  void drop_stale_top();
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  bool fire(Entry top, TimePoint& now);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace lifeguard::sim
