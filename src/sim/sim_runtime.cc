#include "sim/sim_runtime.h"

#include <utility>

#include "sim/simulator.h"

namespace lifeguard::sim {

SimRuntime::SimRuntime(Simulator& sim, int node_index, Address addr, Rng rng,
                       Duration msg_proc_cost, std::size_t recv_buffer_bytes)
    : sim_(sim),
      node_(node_index),
      addr_(addr),
      rng_(rng),
      msg_proc_cost_(msg_proc_cost),
      recv_buffer_limit_(recv_buffer_bytes) {}

void SimRuntime::attach(PacketHandler* handler,
                        std::function<void()> on_unblock) {
  handler_ = handler;
  on_unblock_ = std::move(on_unblock);
}

TimePoint SimRuntime::now() const { return sim_.now(); }

TimerId SimRuntime::schedule(Duration delay, Task fn) {
  if (delay < Duration{0}) delay = Duration{0};
  return sim_.queue().push(sim_.now() + delay, std::move(fn));
}

void SimRuntime::cancel(TimerId id) { sim_.queue().cancel(id); }

void SimRuntime::send(const Address& to, std::vector<std::uint8_t> payload,
                      Channel channel) {
  if (blocked_) {
    // Goroutine stuck in sendto(): the packet leaves when we unblock.
    pending_out_.push_back(PendingPacket{to, std::move(payload), channel});
    return;
  }
  sim_.route(node_, to, std::move(payload), channel);
}

std::vector<std::uint8_t> SimRuntime::acquire_buffer() {
  return sim_.acquire_buffer();
}

void SimRuntime::deliver(const Address& from,
                         std::vector<std::uint8_t> payload, Channel channel) {
  if (!blocked_ && pending_in_.empty()) {
    // Healthy fast path: no backlog, process immediately; the spent buffer's
    // capacity feeds the next outbound datagram.
    if (handler_ != nullptr) handler_->on_packet(from, payload, channel);
    sim_.recycle_buffer(std::move(payload));
    return;
  }
  // Either blocked (process not reading) or a backlog exists (FIFO order
  // must hold). UDP is bounded like a real socket buffer — overflow is
  // dropped, which is how a refutation that arrives late in a long anomaly
  // can be lost for good. TCP is flow-controlled: never dropped here.
  if (channel == Channel::kUdp &&
      pending_in_bytes_ + payload.size() > recv_buffer_limit_) {
    ++inbound_dropped_;
    return;
  }
  pending_in_bytes_ += payload.size();
  pending_in_.push_back(PendingPacket{from, std::move(payload), channel});
  schedule_drain();
}

void SimRuntime::schedule_drain() {
  if (drain_scheduled_ || blocked_ || pending_in_.empty()) return;
  drain_scheduled_ = true;
  // Each backlogged message costs CPU time to handle; while blocked the
  // drain pauses and resumes at the next unblock.
  sim_.queue().push(sim_.now() + msg_proc_cost_, [this] { drain_one(); });
}

void SimRuntime::drain_one() {
  drain_scheduled_ = false;
  if (blocked_ || pending_in_.empty()) return;
  PendingPacket p = std::move(pending_in_.front());
  pending_in_.pop_front();
  pending_in_bytes_ -= p.payload.size();
  if (handler_ != nullptr) handler_->on_packet(p.peer, p.payload, p.channel);
  sim_.recycle_buffer(std::move(p.payload));
  schedule_drain();
}

void SimRuntime::reset_on_crash() {
  blocked_ = false;
  for (PendingPacket& p : pending_out_) sim_.recycle_buffer(std::move(p.payload));
  pending_out_.clear();
  for (PendingPacket& p : pending_in_) sim_.recycle_buffer(std::move(p.payload));
  pending_in_.clear();
  pending_in_bytes_ = 0;
}

void SimRuntime::set_blocked(bool blocked) {
  if (blocked == blocked_) return;
  blocked_ = blocked;
  if (blocked_) return;

  // Anomaly over: notify the node first (the stuck goroutines resume —
  // deferred probe stages, pending ticks), then flush the stuck sends, then
  // resume draining the inbound backlog at the processing rate.
  if (on_unblock_) on_unblock_();
  while (!pending_out_.empty() && !blocked_) {
    PendingPacket p = std::move(pending_out_.front());
    pending_out_.pop_front();
    sim_.route(node_, p.peer, std::move(p.payload), p.channel);
  }
  schedule_drain();
}

}  // namespace lifeguard::sim
