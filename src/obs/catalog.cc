#include "obs/catalog.h"

namespace lifeguard::obs {

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kMembersActive:
      return "members.active";
    case Metric::kMembersSuspect:
      return "members.suspect";
    case Metric::kMembersDead:
      return "members.dead";
    case Metric::kLhmMean:
      return "lhm.mean";
    case Metric::kLhmMax:
      return "lhm.max";
    case Metric::kProbeRttMeanUs:
      return "probe.rtt.mean_us";
    case Metric::kProbeNackRate:
      return "probe.nack.rate";
    case Metric::kProbeFailRate:
      return "probe.fail.rate";
    case Metric::kNetMsgsRate:
      return "net.msgs.rate";
    case Metric::kNetMsgsTotal:
      return "net.msgs.total";
    case Metric::kNetBytesTotal:
      return "net.bytes.total";
    case Metric::kGossipPendingMean:
      return "gossip.pending.mean";
    case Metric::kGossipPendingMax:
      return "gossip.pending.max";
    case Metric::kSimQueueDepth:
      return "sim.queue.depth";
    case Metric::kSimEventsRate:
      return "sim.events.rate";
    case Metric::kGossipTransmitsRate:
      return "gossip.transmits.rate";
    case Metric::kHeartbeatSentTotal:
      return "detect.heartbeat.sent.total";
    case Metric::kHeartbeatMissedTotal:
      return "detect.heartbeat.missed.total";
    case Metric::kCoordinatorRttMeanUs:
      return "detect.coordinator.rtt.mean_us";
  }
  return "?";
}

std::optional<Metric> metric_from_id(int id) {
  if (id < 0 || id >= kMetricCount) return std::nullopt;
  return static_cast<Metric>(id);
}

std::optional<Metric> metric_from_name(std::string_view name) {
  for (int id = 0; id < kMetricCount; ++id) {
    const auto m = static_cast<Metric>(id);
    if (name == metric_name(m)) return m;
  }
  return std::nullopt;
}

std::vector<Metric> all_metrics() {
  std::vector<Metric> out;
  out.reserve(kMetricCount);
  for (int id = 0; id < kMetricCount; ++id) {
    out.push_back(static_cast<Metric>(id));
  }
  return out;
}

std::string prometheus_metric_name(Metric m) {
  std::string out = "lifeguard_";
  for (const char* p = metric_name(m); *p != '\0'; ++p) {
    out += (*p == '.') ? '_' : *p;
  }
  return out;
}

}  // namespace lifeguard::obs
