// Snapshot sampler — the telemetry layer's time-series source for the sim
// backend.
//
// Every `interval` of virtual time the sampler walks the cluster and emits
// one Sample per catalog Metric (cluster aggregates: node = -1), both into
// its own Series (returned through RunResult::series) and as kMetricSample
// TraceEvents to the run's sinks — so a TraceRecorder persists the series
// inside the trace and replay reproduces it bit-identically.
//
// Determinism: ticks are plain event-queue tasks that draw no randomness and
// mutate nothing, so protocol Rng draws and RunResult metrics are identical
// with sampling on or off. The first tick fires at `interval` after start()
// (not at time zero), which makes a replayed run — whose sampler starts the
// same way — emit element-wise equal samples.
#pragma once

#include <vector>

#include "check/events.h"
#include "common/types.h"
#include "obs/catalog.h"
#include "sim/simulator.h"

namespace lifeguard::obs {

class Sampler {
 public:
  /// `sinks` receive one kMetricSample TraceEvent per emitted Sample; the
  /// series accumulates regardless, so a sink-less sampler still fills
  /// RunResult::series. Must outlive the simulator's event-loop execution.
  Sampler(sim::Simulator& sim, Duration interval,
          std::vector<check::TraceSink*> sinks);

  /// Schedule the first snapshot at now + interval; each snapshot
  /// reschedules the next, so sampling runs for the rest of the run.
  void start();

  const Series& series() const { return series_; }
  Series take_series() { return std::move(series_); }

 private:
  void tick();
  void emit(Metric m, double value);

  sim::Simulator& sim_;
  Duration interval_{};
  std::vector<check::TraceSink*> sinks_;
  Series series_;

  // Previous cumulative values for per-interval rates. Deltas are clamped at
  // zero: restart_node resets a fresh incarnation's counters, which must not
  // read as a negative rate.
  double prev_msgs_ = 0;
  double prev_nacks_ = 0;
  double prev_fails_ = 0;
  double prev_transmits_ = 0;
  double prev_rtt_count_ = 0;
  double prev_rtt_sum_ = 0;
  double prev_events_ = 0;
  double prev_hb_rtt_count_ = 0;
  double prev_hb_rtt_sum_ = 0;
  TimePoint prev_at_{};
};

}  // namespace lifeguard::obs
