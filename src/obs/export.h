// Telemetry exporters — the read side of the telemetry layer.
//
// One Series (obs/catalog.h) serializes three ways:
//   * a JSONL time-series file, one sample per line (the --metrics-out
//     artifact; docs/observability.md documents the schema),
//   * a Prometheus text-exposition snapshot of each metric's latest value,
//   * per-(time, metric) percentile bands folded across a campaign's
//     repetitions (fold_series_bands), serialized as JSONL or CSV.
//
// Everything here is pure serialization: doubles go through std::to_chars
// (round-trip exact), ordering is deterministic, and the band fold consumes
// trials in the caller's order — the campaign engine passes trial-index
// order, so artifacts are byte-identical at every `jobs` level.
#pragma once

#include <ostream>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "obs/catalog.h"

namespace lifeguard::obs {

/// One line per sample:
///   {"t":12.5,"metric":"lhm.mean","id":3,"node":-1,"value":0.25}
/// `t` is seconds since run start; `node` is -1 for cluster aggregates.
void write_series_jsonl(std::ostream& os, const Series& series);

/// Prometheus text exposition of each (metric, node)'s latest value. Names
/// come from prometheus_metric_name(); per-node samples carry a node label.
void write_prometheus(std::ostream& os, const Series& series);

/// Summary of one (time, metric, node) coordinate across a grid point's
/// repetitions — the campaign's folded view of a sampled run.
struct SeriesBand {
  TimePoint at{};
  Metric metric = Metric::kMembersActive;
  int node = -1;
  Summary stats;
};

/// Fold many trials' series into per-coordinate bands, ordered by
/// (time, metric id, node). Pass trials in a deterministic order (the
/// campaign engine uses trial-index order) and the result is too.
std::vector<SeriesBand> fold_series_bands(
    const std::vector<const Series*>& trials);

/// One line per band:
///   {"type":"series-band","t":12.5,"metric":"lhm.mean","id":3,"node":-1,
///    "count":5,"mean":...,"stddev":...,"min":...,"max":...,"p50":...,
///    "p99":...}
void write_bands_jsonl(std::ostream& os, const std::vector<SeriesBand>& bands);

/// Header `t,metric,id,node,count,mean,stddev,min,max,p50,p99` + one row
/// per band.
void write_bands_csv(std::ostream& os, const std::vector<SeriesBand>& bands);

}  // namespace lifeguard::obs
