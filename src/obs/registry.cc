#include "obs/registry.h"

namespace lifeguard::obs {

NodeMetrics::NodeMetrics(Metrics& m)
    : metrics_(&m),
      msgs_sent_(&m.counter("net.msgs_sent")),
      bytes_sent_(&m.counter("net.bytes_sent")),
      msgs_received_(&m.counter("net.msgs_received")),
      bytes_received_(&m.counter("net.bytes_received")),
      malformed_(&m.counter("net.malformed")),
      sent_ch_{&m.counter(std::string("net.sent_ch.") +
                          channel_name(Channel::kUdp)),
               &m.counter(std::string("net.sent_ch.") +
                          channel_name(Channel::kReliable))},
      probe_started_(&m.counter("probe.started")),
      probe_indirect_(&m.counter("probe.indirect")),
      probe_failed_(&m.counter("probe.failed")),
      probe_missed_nack_(&m.counter("probe.missed_nack")),
      probe_acked_(&m.counter("probe.acked")),
      probe_success_(&m.counter("probe.success")),
      probe_nack_received_(&m.counter("probe.nack_received")),
      probe_relayed_(&m.counter("probe.relayed")),
      probe_nack_sent_(&m.counter("probe.nack_sent")),
      probe_misrouted_ping_(&m.counter("probe.misrouted_ping")),
      probe_stale_ack_(&m.counter("probe.stale_ack")),
      probe_ack_forwarded_(&m.counter("probe.ack_forwarded")),
      probe_rtt_us_(&m.histogram("probe.rtt_us")),
      join_learned_(&m.counter("swim.join_learned")),
      refuted_(&m.counter("swim.refuted")),
      resurrected_(&m.counter("swim.resurrected")),
      dead_declared_(&m.counter("swim.dead_declared")),
      dead_learned_(&m.counter("swim.dead_learned")),
      left_learned_(&m.counter("swim.left_learned")),
      refuted_death_(&m.counter("swim.refuted_death")),
      refutations_(&m.counter("swim.refutations")),
      leaves_(&m.counter("swim.leave")),
      reclaimed_(&m.counter("swim.reclaimed")),
      buddy_prioritized_(&m.counter("buddy.prioritized")),
      suspicion_started_(&m.counter("suspicion.started")),
      suspicion_confirmed_(&m.counter("suspicion.confirmed")),
      suspicion_confirmations_at_death_(
          &m.histogram("suspicion.confirmations_at_death")),
      suspicion_lifetime_s_(&m.histogram("suspicion.lifetime_s")),
      sync_received_(&m.counter("sync.received")),
      reconnect_attempts_(&m.counter("sync.reconnect_attempts")) {}

void NodeMetrics::count_sent(const char* type, std::size_t bytes, Channel ch) {
  msgs_sent_->add();
  bytes_sent_->add(static_cast<std::int64_t>(bytes));
  Counter* type_counter = nullptr;
  for (const auto& [t, c] : sent_type_) {
    if (t == type) {
      type_counter = c;
      break;
    }
  }
  if (type_counter == nullptr) {
    type_counter = &metrics_->counter(std::string("net.sent.") + type);
    sent_type_.emplace_back(type, type_counter);
  }
  type_counter->add();
  sent_ch_[static_cast<std::size_t>(ch)]->add();
}

void NodeMetrics::count_received(std::size_t bytes) {
  msgs_received_->add();
  bytes_received_->add(static_cast<std::int64_t>(bytes));
}

DetectionMetrics::DetectionMetrics(Metrics& m)
    : metrics_(&m),
      msgs_sent_(&m.counter("net.msgs_sent")),
      bytes_sent_(&m.counter("net.bytes_sent")),
      msgs_received_(&m.counter("net.msgs_received")),
      bytes_received_(&m.counter("net.bytes_received")),
      malformed_(&m.counter("net.malformed")),
      heartbeat_sent_(&m.counter("detect.heartbeat_sent")),
      heartbeat_missed_(&m.counter("detect.heartbeat_missed")),
      coordinator_rtt_us_(&m.histogram("detect.coordinator_rtt_us")) {}

void DetectionMetrics::count_sent(const char* type, std::size_t bytes) {
  msgs_sent_->add();
  bytes_sent_->add(static_cast<std::int64_t>(bytes));
  Counter* type_counter = nullptr;
  for (const auto& [t, c] : sent_type_) {
    if (t == type) {
      type_counter = c;
      break;
    }
  }
  if (type_counter == nullptr) {
    type_counter = &metrics_->counter(std::string("net.sent.") + type);
    sent_type_.emplace_back(type, type_counter);
  }
  type_counter->add();
}

void DetectionMetrics::count_received(std::size_t bytes) {
  msgs_received_->add();
  bytes_received_->add(static_cast<std::int64_t>(bytes));
}

}  // namespace lifeguard::obs
