// Typed per-node metric registry — the telemetry layer's write side.
//
// common/metrics.h remains the storage (a name -> Counter/Histogram map that
// the harness aggregates and campaigns reset per trial); NodeMetrics is a
// typed facade over one node's registry that resolves every fixed-name
// metric exactly once, at bind time. Protocol hot paths then bump plain
// pointers instead of doing string-keyed map lookups — this replaces the
// ad-hoc `metrics_.counter("...")` calls and hand-rolled Counter* caches
// that had accreted in swim::Node.
//
// Label dimensions are encoded the way the rest of the repo already names
// metrics: the node id is the registry itself (one Metrics per node), the
// message kind and channel are dotted suffixes ("net.sent.ping",
// "net.sent_ch.udp") and the probe phase is the counter name
// ("probe.started", "probe.acked", ...). Everything here is lock-free by
// construction: a node's registry is touched only from its runtime thread,
// and no method draws randomness or reads a clock.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"

namespace lifeguard::obs {

/// A point-in-time level, set rather than accumulated (gossip-queue depth,
/// LHM score). Gauges live outside the Metrics map: they are not aggregated
/// post-run — they exist so samplers (obs/sampler.h, the live worker) can
/// read the current level without reaching into protocol internals.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class NodeMetrics {
 public:
  /// Resolves every fixed-name counter and histogram in `m`. Counter
  /// references are node-stable (std::map) for the registry's lifetime, so
  /// the pointers never dangle. Eager resolution means the names exist (at
  /// zero) even when an event never fires; counter_value() reads the same
  /// either way.
  explicit NodeMetrics(Metrics& m);

  // ---- network, labelled by message kind and channel ----
  /// One outbound datagram: bumps net.msgs_sent / net.bytes_sent plus the
  /// per-kind ("net.sent.<type>") and per-channel ("net.sent_ch.<ch>")
  /// counters. `type` must be a string literal (pointer identity keys the
  /// per-kind cache, as count_sent() always did).
  void count_sent(const char* type, std::size_t bytes, Channel ch);
  void count_received(std::size_t bytes);
  Counter& malformed() { return *malformed_; }

  // ---- probe pipeline, labelled by phase ----
  Counter& probe_started() { return *probe_started_; }
  Counter& probe_indirect() { return *probe_indirect_; }
  Counter& probe_failed() { return *probe_failed_; }
  Counter& probe_missed_nack() { return *probe_missed_nack_; }
  Counter& probe_acked() { return *probe_acked_; }
  Counter& probe_success() { return *probe_success_; }
  Counter& probe_nack_received() { return *probe_nack_received_; }
  Counter& probe_relayed() { return *probe_relayed_; }
  Counter& probe_nack_sent() { return *probe_nack_sent_; }
  Counter& probe_misrouted_ping() { return *probe_misrouted_ping_; }
  Counter& probe_stale_ack() { return *probe_stale_ack_; }
  Counter& probe_ack_forwarded() { return *probe_ack_forwarded_; }
  /// Round-trip time of acked direct probes, in (virtual) microseconds.
  Histogram& probe_rtt_us() { return *probe_rtt_us_; }

  // ---- membership state machine ----
  Counter& join_learned() { return *join_learned_; }
  Counter& refuted() { return *refuted_; }
  Counter& resurrected() { return *resurrected_; }
  Counter& dead_declared() { return *dead_declared_; }
  Counter& dead_learned() { return *dead_learned_; }
  Counter& left_learned() { return *left_learned_; }
  Counter& refuted_death() { return *refuted_death_; }
  Counter& refutations() { return *refutations_; }
  Counter& leaves() { return *leaves_; }
  Counter& reclaimed() { return *reclaimed_; }
  Counter& buddy_prioritized() { return *buddy_prioritized_; }

  // ---- suspicion subprotocol ----
  Counter& suspicion_started() { return *suspicion_started_; }
  Counter& suspicion_confirmed() { return *suspicion_confirmed_; }
  Histogram& suspicion_confirmations_at_death() {
    return *suspicion_confirmations_at_death_;
  }
  Histogram& suspicion_lifetime_s() { return *suspicion_lifetime_s_; }

  // ---- anti-entropy ----
  Counter& sync_received() { return *sync_received_; }
  Counter& reconnect_attempts() { return *reconnect_attempts_; }

  // ---- live levels (samplers read these; not in the post-run Metrics) ----
  Gauge& lhm() { return lhm_; }
  const Gauge& lhm() const { return lhm_; }
  Gauge& gossip_pending() { return gossip_pending_; }
  const Gauge& gossip_pending() const { return gossip_pending_; }

 private:
  Metrics* metrics_;

  Counter* msgs_sent_;
  Counter* bytes_sent_;
  Counter* msgs_received_;
  Counter* bytes_received_;
  Counter* malformed_;
  Counter* sent_ch_[2];  ///< by Channel
  /// Per-message-kind counters, keyed by literal pointer identity (a
  /// duplicated literal only costs one redundant entry aimed at the same
  /// counter).
  std::vector<std::pair<const char*, Counter*>> sent_type_;

  Counter* probe_started_;
  Counter* probe_indirect_;
  Counter* probe_failed_;
  Counter* probe_missed_nack_;
  Counter* probe_acked_;
  Counter* probe_success_;
  Counter* probe_nack_received_;
  Counter* probe_relayed_;
  Counter* probe_nack_sent_;
  Counter* probe_misrouted_ping_;
  Counter* probe_stale_ack_;
  Counter* probe_ack_forwarded_;
  Histogram* probe_rtt_us_;

  Counter* join_learned_;
  Counter* refuted_;
  Counter* resurrected_;
  Counter* dead_declared_;
  Counter* dead_learned_;
  Counter* left_learned_;
  Counter* refuted_death_;
  Counter* refutations_;
  Counter* leaves_;
  Counter* reclaimed_;
  Counter* buddy_prioritized_;

  Counter* suspicion_started_;
  Counter* suspicion_confirmed_;
  Histogram* suspicion_confirmations_at_death_;
  Histogram* suspicion_lifetime_s_;

  Counter* sync_received_;
  Counter* reconnect_attempts_;

  Gauge lhm_;
  Gauge gossip_pending_;
};

/// Typed facade for the backend-generic detection metrics that heartbeat
/// protocols (membership/central.h) maintain: heartbeat traffic, missed
/// deadlines, and the member-observed coordinator round-trip. Same idiom as
/// NodeMetrics — every fixed-name metric resolves once at bind time and hot
/// paths bump plain pointers. The names feed the obs catalog ids 16..18
/// (obs/catalog.h); swim leaves them untouched, so the sampler only emits
/// those series for non-swim backends.
class DetectionMetrics {
 public:
  explicit DetectionMetrics(Metrics& m);

  /// One outbound protocol datagram: bumps net.msgs_sent / net.bytes_sent
  /// plus the per-kind "net.sent.<type>" counter, mirroring
  /// NodeMetrics::count_sent so harness message-load accounting is
  /// backend-uniform. `type` must be a string literal.
  void count_sent(const char* type, std::size_t bytes);
  void count_received(std::size_t bytes);
  Counter& malformed() { return *malformed_; }

  Counter& heartbeat_sent() { return *heartbeat_sent_; }
  Counter& heartbeat_missed() { return *heartbeat_missed_; }
  /// Member-side heartbeat -> ack round-trip, in (virtual) microseconds.
  Histogram& coordinator_rtt_us() { return *coordinator_rtt_us_; }
  const Histogram& coordinator_rtt_us() const { return *coordinator_rtt_us_; }

 private:
  Metrics* metrics_;
  Counter* msgs_sent_;
  Counter* bytes_sent_;
  Counter* msgs_received_;
  Counter* bytes_received_;
  Counter* malformed_;
  std::vector<std::pair<const char*, Counter*>> sent_type_;
  Counter* heartbeat_sent_;
  Counter* heartbeat_missed_;
  Histogram* coordinator_rtt_us_;
};

}  // namespace lifeguard::obs
