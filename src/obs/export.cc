#include "obs/export.h"

#include <charconv>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

namespace lifeguard::obs {

namespace {

/// std::to_chars shortest round-trip form (same idiom as the harness's
/// json_double; obs sits below harness in the layering, so no sharing).
std::string fmt_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec == std::errc{}) return std::string(buf, res.ptr);
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_time_s(TimePoint at) {
  return fmt_double(static_cast<double>(at.us) / 1e6);
}

}  // namespace

void write_series_jsonl(std::ostream& os, const Series& series) {
  for (const Sample& s : series) {
    os << "{\"t\":" << fmt_time_s(s.at) << ",\"metric\":\""
       << metric_name(s.metric) << "\",\"id\":" << static_cast<int>(s.metric)
       << ",\"node\":" << s.node << ",\"value\":" << fmt_double(s.value)
       << "}\n";
  }
}

void write_prometheus(std::ostream& os, const Series& series) {
  // Latest value per (metric, node), in id-then-node order. The map walk is
  // the output order, so the snapshot is deterministic.
  std::map<std::pair<int, int>, double> latest;
  for (const Sample& s : series) {
    latest[{static_cast<int>(s.metric), s.node}] = s.value;
  }
  int current = -1;
  for (const auto& [key, value] : latest) {
    const auto m = metric_from_id(key.first);
    if (!m) continue;
    const std::string name = prometheus_metric_name(*m);
    if (key.first != current) {
      os << "# TYPE " << name << " gauge\n";
      current = key.first;
    }
    os << name;
    if (key.second >= 0) os << "{node=\"" << key.second << "\"}";
    os << " " << fmt_double(value) << "\n";
  }
}

std::vector<SeriesBand> fold_series_bands(
    const std::vector<const Series*>& trials) {
  // Group by coordinate; std::map gives the (time, id, node) output order.
  std::map<std::tuple<std::int64_t, int, int>, Histogram> groups;
  for (const Series* series : trials) {
    if (series == nullptr) continue;
    for (const Sample& s : *series) {
      groups[{s.at.us, static_cast<int>(s.metric), s.node}].record(s.value);
    }
  }
  std::vector<SeriesBand> out;
  out.reserve(groups.size());
  for (const auto& [key, hist] : groups) {
    SeriesBand b;
    b.at = TimePoint{std::get<0>(key)};
    b.metric = metric_from_id(std::get<1>(key)).value_or(Metric::kMembersActive);
    b.node = std::get<2>(key);
    b.stats = hist.summary();
    out.push_back(std::move(b));
  }
  return out;
}

void write_bands_jsonl(std::ostream& os, const std::vector<SeriesBand>& bands) {
  for (const SeriesBand& b : bands) {
    os << "{\"type\":\"series-band\",\"t\":" << fmt_time_s(b.at)
       << ",\"metric\":\"" << metric_name(b.metric)
       << "\",\"id\":" << static_cast<int>(b.metric) << ",\"node\":" << b.node
       << ",\"count\":" << b.stats.count
       << ",\"mean\":" << fmt_double(b.stats.mean)
       << ",\"stddev\":" << fmt_double(b.stats.stddev)
       << ",\"min\":" << fmt_double(b.stats.min)
       << ",\"max\":" << fmt_double(b.stats.max)
       << ",\"p50\":" << fmt_double(b.stats.p50)
       << ",\"p99\":" << fmt_double(b.stats.p99) << "}\n";
  }
}

void write_bands_csv(std::ostream& os, const std::vector<SeriesBand>& bands) {
  os << "t,metric,id,node,count,mean,stddev,min,max,p50,p99\n";
  for (const SeriesBand& b : bands) {
    os << fmt_time_s(b.at) << "," << metric_name(b.metric) << ","
       << static_cast<int>(b.metric) << "," << b.node << "," << b.stats.count
       << "," << fmt_double(b.stats.mean) << "," << fmt_double(b.stats.stddev)
       << "," << fmt_double(b.stats.min) << "," << fmt_double(b.stats.max)
       << "," << fmt_double(b.stats.p50) << "," << fmt_double(b.stats.p99)
       << "\n";
  }
}

}  // namespace lifeguard::obs
