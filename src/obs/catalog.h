// The metric catalog — the stable vocabulary of the telemetry layer.
//
// Every time-series point the snapshot sampler (obs/sampler.h) or a live
// worker emits names one Metric from this enum. Ids are stable wire/artifact
// identifiers: a kMetricSample TraceEvent carries the id in its `peer` field
// and the sampled value in `value`, so traces, campaign band artifacts and
// the JSONL/Prometheus exports all agree on what, say, metric 3 means.
// Append-only: never renumber (recorded traces would silently change
// meaning); add new metrics at the tail.
//
// docs/observability.md is the prose version of this catalog — keep the two
// in sync.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace lifeguard::obs {

enum class Metric : std::uint8_t {
  kMembersActive = 0,    ///< mean active (alive|suspect) members per node view
  kMembersSuspect = 1,   ///< mean suspected members per node view
  kMembersDead = 2,      ///< mean dead members per node view
  kLhmMean = 3,          ///< mean Local Health Multiplier score (paper §IV-A)
  kLhmMax = 4,           ///< worst LHM score in the cluster
  kProbeRttMeanUs = 5,   ///< mean probe round-trip time this interval (us)
  kProbeNackRate = 6,    ///< nacks received per second (cluster-wide)
  kProbeFailRate = 7,    ///< failed probes per second (cluster-wide)
  kNetMsgsRate = 8,      ///< messages sent per second (cluster-wide)
  kNetMsgsTotal = 9,     ///< cumulative messages sent
  kNetBytesTotal = 10,   ///< cumulative bytes sent
  kGossipPendingMean = 11,  ///< mean gossip-queue depth (piggyback backlog)
  kGossipPendingMax = 12,   ///< deepest gossip queue in the cluster
  kSimQueueDepth = 13,      ///< simulator event-queue depth (sim only)
  kSimEventsRate = 14,      ///< simulator events executed per second (sim only)
  kGossipTransmitsRate = 15,  ///< piggyback frames sent per second (saturation)
  // Backend-generic detection metrics (membership backends with explicit
  // heartbeats — central today). The sampler emits ids 16..18 only for
  // non-swim backends, keeping swim series byte-identical to pre-backend
  // recordings.
  kHeartbeatSentTotal = 16,    ///< cumulative heartbeats sent (cluster-wide)
  kHeartbeatMissedTotal = 17,  ///< cumulative heartbeat deadline misses
  kCoordinatorRttMeanUs = 18,  ///< mean heartbeat->ack RTT this interval (us)
};

inline constexpr int kMetricCount = 19;

/// Dotted-path name ("probe.rtt.mean_us"); "?" for an out-of-range value.
const char* metric_name(Metric m);
/// Inverse of the id an event carries in `peer`; nullopt when out of range.
std::optional<Metric> metric_from_id(int id);
std::optional<Metric> metric_from_name(std::string_view name);
/// All metrics in id order (schema validation, exporters).
std::vector<Metric> all_metrics();
/// Prometheus exposition name: "lifeguard_" prefix, dots to underscores.
std::string prometheus_metric_name(Metric m);

/// One time-series point. `node` is -1 for cluster aggregates (the sim
/// sampler's output) and the member index for per-node points (live
/// workers sample themselves).
struct Sample {
  TimePoint at{};
  Metric metric = Metric::kMembersActive;
  int node = -1;
  double value = 0.0;

  bool operator==(const Sample&) const = default;
};

using Series = std::vector<Sample>;

}  // namespace lifeguard::obs
