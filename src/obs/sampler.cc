#include "obs/sampler.h"

#include <algorithm>
#include <utility>

namespace lifeguard::obs {

namespace {

/// Sum of one named counter across every node's registry.
double counter_sum(const sim::Simulator& sim, const std::string& name) {
  double total = 0;
  for (int i = 0; i < sim.size(); ++i) {
    total += static_cast<double>(sim.agent(i).metrics().counter_value(name));
  }
  return total;
}

}  // namespace

Sampler::Sampler(sim::Simulator& sim, Duration interval,
                 std::vector<check::TraceSink*> sinks)
    : sim_(sim), interval_(interval), sinks_(std::move(sinks)) {}

void Sampler::start() {
  prev_at_ = sim_.now();
  prev_events_ = static_cast<double>(sim_.queue().executed());
  sim_.at(sim_.now() + interval_, [this] { tick(); });
}

void Sampler::emit(Metric m, double value) {
  Sample s;
  s.at = sim_.now();
  s.metric = m;
  s.node = -1;  // cluster aggregate
  s.value = value;
  series_.push_back(s);

  check::TraceEvent e;
  e.at = s.at;
  e.kind = check::TraceEventKind::kMetricSample;
  e.node = -1;
  e.peer = static_cast<int>(m);
  e.value = value;
  for (check::TraceSink* sink : sinks_) sink->on_trace_event(e);
}

void Sampler::tick() {
  const TimePoint now = sim_.now();
  const double dt = (now - prev_at_).seconds();
  // Clamped delta-to-rate: cumulative counters only grow within one node
  // incarnation, but restart_node hands the slot a zeroed registry.
  auto rate = [dt](double cur, double& prev) {
    const double d = cur - prev;
    prev = cur;
    return (dt > 0 && d > 0) ? d / dt : 0.0;
  };

  // ---- membership views, health and queue depths (running nodes only) ----
  int views = 0;
  double active = 0, suspect = 0, dead = 0;
  double lhm_sum = 0, lhm_max = 0;
  double pending_sum = 0, pending_max = 0;
  for (int i = 0; i < sim_.size(); ++i) {
    const membership::Agent& a = sim_.agent(i);
    if (!a.running()) continue;
    ++views;
    active += static_cast<double>(a.active_members());
    suspect += static_cast<double>(a.suspect_count());
    dead += static_cast<double>(a.dead_count());
    const double lhm = a.health_score();
    lhm_sum += lhm;
    lhm_max = std::max(lhm_max, lhm);
    const double pending = static_cast<double>(a.pending_broadcast_count());
    pending_sum += pending;
    pending_max = std::max(pending_max, pending);
  }
  const double denom = views > 0 ? views : 1;

  // ---- probe RTT: per-interval mean over this window's new samples ----
  double rtt_count = 0, rtt_sum = 0;
  for (int i = 0; i < sim_.size(); ++i) {
    const auto& hists = sim_.agent(i).metrics().histograms();
    const auto it = hists.find("probe.rtt_us");
    if (it == hists.end()) continue;
    rtt_count += static_cast<double>(it->second.count());
    rtt_sum += it->second.sum();
  }
  const double d_count = rtt_count - prev_rtt_count_;
  const double d_sum = rtt_sum - prev_rtt_sum_;
  prev_rtt_count_ = rtt_count;
  prev_rtt_sum_ = rtt_sum;
  const double rtt_mean = d_count > 0 ? d_sum / d_count : 0.0;

  // ---- cluster-wide cumulative counters ----
  const double msgs = counter_sum(sim_, "net.msgs_sent");
  const double bytes = counter_sum(sim_, "net.bytes_sent");
  const double nacks = counter_sum(sim_, "probe.nack_received");
  const double fails = counter_sum(sim_, "probe.failed");
  double transmits = 0;
  for (int i = 0; i < sim_.size(); ++i) {
    transmits += static_cast<double>(sim_.agent(i).gossip_transmits_total());
  }

  // Emitted in catalog id order — the series (and the recorded trace) are
  // bit-stable for a (scenario, seed).
  emit(Metric::kMembersActive, active / denom);
  emit(Metric::kMembersSuspect, suspect / denom);
  emit(Metric::kMembersDead, dead / denom);
  emit(Metric::kLhmMean, lhm_sum / denom);
  emit(Metric::kLhmMax, lhm_max);
  emit(Metric::kProbeRttMeanUs, rtt_mean);
  emit(Metric::kProbeNackRate, rate(nacks, prev_nacks_));
  emit(Metric::kProbeFailRate, rate(fails, prev_fails_));
  emit(Metric::kNetMsgsRate, rate(msgs, prev_msgs_));
  emit(Metric::kNetMsgsTotal, msgs);
  emit(Metric::kNetBytesTotal, bytes);
  emit(Metric::kGossipPendingMean, pending_sum / denom);
  emit(Metric::kGossipPendingMax, pending_max);
  emit(Metric::kSimQueueDepth, static_cast<double>(sim_.queue().pending()));
  emit(Metric::kSimEventsRate,
       rate(static_cast<double>(sim_.queue().executed()), prev_events_));
  emit(Metric::kGossipTransmitsRate, rate(transmits, prev_transmits_));

  // Backend-generic detection metrics (ids 16..18) are emitted only for
  // non-swim backends: swim never populates the detect.* instruments, and
  // skipping the emits keeps swim series byte-identical to recordings made
  // before the membership seam existed.
  if (sim_.membership_base() != "swim") {
    emit(Metric::kHeartbeatSentTotal,
         counter_sum(sim_, "detect.heartbeat_sent"));
    emit(Metric::kHeartbeatMissedTotal,
         counter_sum(sim_, "detect.heartbeat_missed"));
    double hb_count = 0, hb_sum = 0;
    for (int i = 0; i < sim_.size(); ++i) {
      const auto& hists = sim_.agent(i).metrics().histograms();
      const auto it = hists.find("detect.coordinator_rtt_us");
      if (it == hists.end()) continue;
      hb_count += static_cast<double>(it->second.count());
      hb_sum += it->second.sum();
    }
    const double dh_count = hb_count - prev_hb_rtt_count_;
    const double dh_sum = hb_sum - prev_hb_rtt_sum_;
    prev_hb_rtt_count_ = hb_count;
    prev_hb_rtt_sum_ = hb_sum;
    emit(Metric::kCoordinatorRttMeanUs,
         dh_count > 0 ? dh_sum / dh_count : 0.0);
  }

  prev_at_ = now;
  sim_.at(now + interval_, [this] { tick(); });
}

}  // namespace lifeguard::obs
