// Composable fault-injection value types (see DESIGN.md, "Fault layer").
//
// A `Fault` is one kind of badness with its parameters — the process-level
// kinds the paper's evaluation is built on (block/threshold, interval
// cycles, CPU-starvation stress, flapping, churn, partition) plus
// network-level primitives the single-slot AnomalyPlan could never express:
// asymmetric link loss, added latency/jitter, datagram duplication and
// reordering.
//
// A `VictimSelector` says *who* is afflicted: a uniform random draw (the
// paper's choice), explicit node indices, a percentage of the cluster, or a
// contiguous island.
//
// A `fault::Timeline` is an ordered list of phased entries — each a Fault, a
// VictimSelector, an onset offset `at` and an active `duration`. Entries may
// overlap freely ("partition during CPU exhaustion") or be sequenced
// ("churn after the heal"). Timelines are plain values: validate() returns
// one actionable message per defect, parse_timeline_entry() builds entries
// from `kind@AT:DUR,key=val` flag syntax, and summary() renders them for
// catalogs.
//
// Execution lives in fault/injector.h. harness::AnomalyPlan is now a thin
// shim producing a one-entry Timeline (scenario.h); its replay is
// bit-identical to the pre-Timeline engine by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "sim/anomaly.h"

namespace lifeguard::fault {

// ---------------------------------------------------------------------------
// Fault

enum class FaultKind : std::uint8_t {
  // -- process-level (victims' protocol I/O or the process itself) --
  kBlock = 0,      ///< sends+receives blocked for the whole span (§V-D1)
  kIntervalBlock,  ///< lock-step blocked-for-D / open-for-I cycles (§V-D2)
  kStress,         ///< randomized CPU-starvation cycles (§II, Fig. 1)
  kFlapping,       ///< per-victim unsynchronized D/I cycles
  kChurn,          ///< victims crash, stay down, restart and rejoin in cycles
  kPartition,      ///< victims split into an island; re-merged at span end
  // -- network-level (victims' links; the rest of the fabric is untouched) --
  kLinkLoss,   ///< extra datagram loss on victims' links (asymmetric)
  kLatency,    ///< added one-way delay + jitter on victims' links
  kDuplicate,  ///< UDP datagrams to/from victims delivered twice
  kReorder,    ///< UDP datagrams randomly delayed past later traffic
};

const char* fault_kind_name(FaultKind k);
std::optional<FaultKind> fault_kind_from_name(std::string_view name);
/// True for the kinds that perturb links rather than processes.
bool is_network_fault(FaultKind k);

/// One kind of badness plus its parameters. Which fields matter depends on
/// `kind`; the factories document each shape and are the intended way to
/// build one.
struct Fault {
  FaultKind kind = FaultKind::kBlock;

  /// kIntervalBlock/kFlapping: blocked span D per cycle. kChurn: downtime
  /// between crash and restart.
  Duration period{};
  /// kIntervalBlock/kFlapping: open window I per cycle. kChurn: uptime
  /// between restart and the next crash.
  Duration gap{};
  /// kStress: block/run span distributions.
  sim::StressParams stress;

  /// kLinkLoss: drop probability for datagrams a victim *sends* / *receives*
  /// — asymmetric on purpose (a saturated uplink loses egress first).
  double egress_loss = 0.0;
  double ingress_loss = 0.0;
  /// kLatency: fixed added one-way delay plus uniform jitter in [0, jitter].
  Duration extra_latency{};
  Duration jitter{};
  /// kDuplicate/kReorder: per-datagram probability.
  double probability = 0.0;
  /// kReorder: an affected datagram is delayed a further uniform [0, spread].
  Duration spread{};

  static Fault block();
  static Fault interval_block(Duration d, Duration i);
  static Fault stressed(sim::StressParams params = {});
  static Fault flapping(Duration d, Duration i);
  static Fault churn(Duration downtime, Duration uptime);
  static Fault partition();
  static Fault link_loss(double egress, double ingress);
  static Fault latency(Duration extra, Duration jitter = {});
  static Fault duplicate(double probability);
  static Fault reorder(double probability, Duration spread);
};

// ---------------------------------------------------------------------------
// Victim selection

/// Who a fault afflicts. resolve() draws from the cluster Rng only for the
/// random modes, in a fixed order, so (scenario, seed) replays identically.
struct VictimSelector {
  enum class Mode : std::uint8_t {
    kUniform,   ///< `count` distinct members, uniform without replacement
    kExplicit,  ///< exactly `indices`
    kFraction,  ///< round(fraction * cluster_size) members, uniform
    kIsland,    ///< the contiguous block [first, first + count)
  };

  Mode mode = Mode::kUniform;
  int count = 0;
  double fraction = 0.0;
  std::vector<int> indices;
  int first = 0;  ///< kIsland only

  static VictimSelector uniform(int count);
  static VictimSelector nodes(std::vector<int> indices);
  static VictimSelector fraction_of(double fraction);
  static VictimSelector island(int size, int first = 0);

  /// How many victims this resolves to in a cluster of `cluster_size`.
  int resolved_count(int cluster_size) const;

  /// Materialize the victim set. `exclude_seed_node` removes node 0 from the
  /// random draws (churn: node 0 is the rejoin seed). The uniform draw is
  /// shuffle-then-truncate, matching the legacy pick_victims() exactly so
  /// AnomalyPlan replay stays bit-identical.
  std::vector<int> resolve(int cluster_size, Rng& rng,
                           bool exclude_seed_node) const;

  /// "x4", "nodes 1+3+5", "25%", "island [0,4)" — for summaries.
  std::string describe() const;
};

// ---------------------------------------------------------------------------
// Timeline

/// One phased entry: at `at` (offset from injection start, i.e. after the
/// quiesce), `fault` afflicts `victims` for `duration`. Cycling kinds keep
/// cycling until the span closes; partition re-merges and network overlays
/// are removed at span end. A block whose span outlives the observation
/// window keeps the run alive until it ends (the engine extends the run).
struct TimelineEntry {
  Duration at{};
  Duration duration{};
  Fault fault;
  VictimSelector victims = VictimSelector::uniform(1);

  /// "loss@10s+30s x2 egress=0.30" — stable, grep-able.
  std::string describe() const;
};

class Timeline {
 public:
  Timeline() = default;

  /// Append an entry; returns *this for chaining.
  Timeline& add(Duration at, Duration duration, Fault fault,
                VictimSelector victims);
  Timeline& add(TimelineEntry entry);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<TimelineEntry>& entries() const { return entries_; }
  /// Mutable access for sweep axes; throws std::out_of_range with an
  /// actionable message when `i` does not name an entry.
  TimelineEntry& entry(std::size_t i);

  /// Empty when runnable against a cluster of `cluster_size`; otherwise one
  /// message per defect, each naming the offending entry.
  std::vector<std::string> validate(int cluster_size) const;

  /// "block@0s+16s x4; loss@10s+30s x2 egress=0.30" — catalog / --json form.
  std::string summary() const;

 private:
  std::vector<TimelineEntry> entries_;
};

/// Parse one `--fault` flag value into an entry. Grammar:
///
///   KIND@AT:DUR[,key=value]...
///
/// KIND is a fault_kind_name(). AT/DUR (and every duration value) accept
/// `us`, `ms` or `s` suffixes; a bare number is milliseconds. Keys:
///   victims=N | nodes=A+B+C | pct=P | island=N[+FIRST]   (selector)
///   d=DUR i=DUR            cycle shape (interval/flapping); churn aliases
///   down=DUR up=DUR        churn downtime/uptime
///   bmin/bmax/rmin/rmax=DUR  stress block/run span distributions
///   egress=P ingress=P     link loss probabilities
///   extra=DUR jitter=DUR   added latency
///   p=P spread=DUR         duplicate/reorder probability and reorder spread
///
/// Returns nullopt and sets `error` (naming the offending token) on any
/// malformed input. Semantic checks are Timeline::validate()'s job.
std::optional<TimelineEntry> parse_timeline_entry(std::string_view spec,
                                                  std::string& error);

// ---------------------------------------------------------------------------
// Fuzzing hooks (src/fuzz)

/// Every FaultKind in declaration order — the fuzzer's enumeration seam.
const std::vector<FaultKind>& all_fault_kinds();

/// Draw a random entry of `kind` that Timeline::validate() accepts against a
/// `cluster_size`-node cluster, with `at + duration <= horizon`. Every value
/// lands on the serializable grid: durations are whole milliseconds (the
/// `<N>us` rendering is exact) and probabilities are twentieths (shortest
/// double form, exact strtod round trip), so the entry round-trips through
/// check::entry_spec() bit-for-bit. Victim selectors come from the uniform /
/// explicit / island modes only — never kFraction, whose pct rendering
/// multiplies by 100 and cannot guarantee an exact round trip.
/// Requires cluster_size >= 3 and horizon >= 1 s.
TimelineEntry random_timeline_entry(FaultKind kind, int cluster_size,
                                    Duration horizon, Rng& rng);

/// Re-draw one rng-chosen dimension of `e` (onset, duration, victims or the
/// kind's parameters) under the same grid, keeping the entry validate-clean
/// and `at + duration <= horizon`.
void perturb_timeline_entry(TimelineEntry& e, int cluster_size,
                            Duration horizon, Rng& rng);

/// "The test ends at the end of the next anomalous period" (§V-D2):
/// `span` rounded up to whole (duration + interval) cycles. One definition,
/// shared by the injector's drain computation and the legacy-grid sweeps, so
/// shim parity cannot drift.
Duration cycle_aligned_length(Duration span, Duration duration,
                              Duration interval);

}  // namespace lifeguard::fault
