// FaultInjector — executes a fault::Timeline against a cluster.
//
// Injection is split into a backend-agnostic planning layer and a per-backend
// compilation step:
//
//   * plan_total_run() computes how long the run must last so every entry
//     completes and settles — pure arithmetic over the Timeline, shared by
//     any backend. For a one-entry Timeline produced by the AnomalyPlan shim
//     it reproduces the legacy engine's per-kind drain times exactly
//     (golden-seed parity).
//   * inject(sim::Simulator&) resolves each entry's victims in entry order
//     (fixed Rng draw sequence) and compiles the entries onto the event
//     queue: process-level kinds reuse the sim/anomaly.h schedules;
//     partition entries get a distinct partition group each; network kinds
//     install/remove sim::LinkFault overlays at span boundaries.
//
// The block-style kinds only need "block/unblock node X at time T" from a
// backend, so a future UDP-backend compiler can reuse the same plan; see
// DESIGN.md ("Fault layer").
#pragma once

#include <vector>

#include "common/types.h"
#include "fault/fault.h"

namespace lifeguard {
class Cluster;
}

namespace lifeguard::sim {
class Simulator;
}

namespace lifeguard::fault {

/// What inject() resolved and scheduled.
struct InjectionOutcome {
  /// Union of every entry's victims, first-occurrence order, deduplicated.
  std::vector<int> victims;
  /// Per-entry victim sets, parallel to the Timeline.
  std::vector<std::vector<int>> entry_victims;
  /// Run the cluster for this long (measured from injection start) so every
  /// entry completes, cycles close, and restarts/heals settle.
  Duration total_run{};
};

class FaultInjector {
 public:
  /// How long (from injection start) a run over `tl` must last, given the
  /// scenario's observation window `run_length`. Per entry:
  ///   block/network kinds: the span itself;
  ///   interval: the span rounded up to whole cycles, + 1 s drain;
  ///   stress: the span + 2 s; partition: + 1 s after the heal-by window;
  ///   flapping: + one blocked period + 1 s (a phase-shifted final cycle);
  ///   churn: + one downtime + 2 s (the final restart and its rejoin).
  static Duration plan_total_run(const Timeline& tl, Duration run_length);

  /// Resolve victims and schedule every entry onto the simulator's event
  /// queue at `t0 + entry.at`. Does not run the clock — the caller runs
  /// sim.run_until(t0 + outcome.total_run). The Timeline must have passed
  /// validate() for the simulator's cluster size.
  InjectionOutcome inject(sim::Simulator& sim, const Timeline& tl,
                          TimePoint t0, Duration run_length) const;

  /// Cluster-facade convenience: injects into cluster.simulator() starting
  /// at the current virtual time. Throws std::invalid_argument on the UDP
  /// backend (only block-style faults are portable there; not compiled yet).
  InjectionOutcome inject(Cluster& cluster, const Timeline& tl,
                          Duration run_length) const;
};

}  // namespace lifeguard::fault
