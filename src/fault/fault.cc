#include "fault/fault.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

namespace lifeguard::fault {

// ---------------------------------------------------------------------------
// Fault

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kBlock:
      return "block";
    case FaultKind::kIntervalBlock:
      return "interval";
    case FaultKind::kStress:
      return "stress";
    case FaultKind::kFlapping:
      return "flapping";
    case FaultKind::kChurn:
      return "churn";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLinkLoss:
      return "loss";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (FaultKind k :
       {FaultKind::kBlock, FaultKind::kIntervalBlock, FaultKind::kStress,
        FaultKind::kFlapping, FaultKind::kChurn, FaultKind::kPartition,
        FaultKind::kLinkLoss, FaultKind::kLatency, FaultKind::kDuplicate,
        FaultKind::kReorder}) {
    if (name == fault_kind_name(k)) return k;
  }
  return std::nullopt;
}

bool is_network_fault(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkLoss:
    case FaultKind::kLatency:
    case FaultKind::kDuplicate:
    case FaultKind::kReorder:
      return true;
    default:
      return false;
  }
}

Fault Fault::block() { return {}; }

Fault Fault::interval_block(Duration d, Duration i) {
  Fault f;
  f.kind = FaultKind::kIntervalBlock;
  f.period = d;
  f.gap = i;
  return f;
}

Fault Fault::stressed(sim::StressParams params) {
  Fault f;
  f.kind = FaultKind::kStress;
  f.stress = params;
  return f;
}

Fault Fault::flapping(Duration d, Duration i) {
  Fault f;
  f.kind = FaultKind::kFlapping;
  f.period = d;
  f.gap = i;
  return f;
}

Fault Fault::churn(Duration downtime, Duration uptime) {
  Fault f;
  f.kind = FaultKind::kChurn;
  f.period = downtime;
  f.gap = uptime;
  return f;
}

Fault Fault::partition() {
  Fault f;
  f.kind = FaultKind::kPartition;
  return f;
}

Fault Fault::link_loss(double egress, double ingress) {
  Fault f;
  f.kind = FaultKind::kLinkLoss;
  f.egress_loss = egress;
  f.ingress_loss = ingress;
  return f;
}

Fault Fault::latency(Duration extra, Duration jitter) {
  Fault f;
  f.kind = FaultKind::kLatency;
  f.extra_latency = extra;
  f.jitter = jitter;
  return f;
}

Fault Fault::duplicate(double probability) {
  Fault f;
  f.kind = FaultKind::kDuplicate;
  f.probability = probability;
  return f;
}

Fault Fault::reorder(double probability, Duration spread) {
  Fault f;
  f.kind = FaultKind::kReorder;
  f.probability = probability;
  f.spread = spread;
  return f;
}

// ---------------------------------------------------------------------------
// VictimSelector

VictimSelector VictimSelector::uniform(int count) {
  VictimSelector v;
  v.mode = Mode::kUniform;
  v.count = count;
  return v;
}

VictimSelector VictimSelector::nodes(std::vector<int> indices) {
  VictimSelector v;
  v.mode = Mode::kExplicit;
  v.indices = std::move(indices);
  return v;
}

VictimSelector VictimSelector::fraction_of(double fraction) {
  VictimSelector v;
  v.mode = Mode::kFraction;
  v.fraction = fraction;
  return v;
}

VictimSelector VictimSelector::island(int size, int first) {
  VictimSelector v;
  v.mode = Mode::kIsland;
  v.count = size;
  v.first = first;
  return v;
}

int VictimSelector::resolved_count(int cluster_size) const {
  switch (mode) {
    case Mode::kUniform:
    case Mode::kIsland:
      return count;
    case Mode::kExplicit:
      return static_cast<int>(indices.size());
    case Mode::kFraction:
      return static_cast<int>(fraction * cluster_size + 0.5);
  }
  return 0;
}

std::vector<int> VictimSelector::resolve(int cluster_size, Rng& rng,
                                         bool exclude_seed_node) const {
  switch (mode) {
    case Mode::kExplicit:
      return indices;
    case Mode::kIsland: {
      std::vector<int> out;
      for (int i = first; i < first + count && i < cluster_size; ++i) {
        out.push_back(i);
      }
      return out;
    }
    case Mode::kUniform:
    case Mode::kFraction: {
      // Shuffle-then-truncate over the eligible indices: exactly the legacy
      // pick_victims() / pick_churn_victims() draw sequence (AnomalyPlan
      // replay parity depends on this).
      std::vector<int> all;
      for (int i = exclude_seed_node ? 1 : 0; i < cluster_size; ++i) {
        all.push_back(i);
      }
      rng.shuffle(all);
      int n = resolved_count(cluster_size);
      if (n > static_cast<int>(all.size())) n = static_cast<int>(all.size());
      all.resize(static_cast<std::size_t>(std::max(n, 0)));
      return all;
    }
  }
  return {};
}

std::string VictimSelector::describe() const {
  std::ostringstream os;
  switch (mode) {
    case Mode::kUniform:
      os << "x" << count;
      break;
    case Mode::kExplicit: {
      os << "nodes ";
      for (std::size_t i = 0; i < indices.size(); ++i) {
        if (i > 0) os << "+";
        os << indices[i];
      }
      break;
    }
    case Mode::kFraction:
      os << static_cast<int>(fraction * 100 + 0.5) << "%";
      break;
    case Mode::kIsland:
      os << "island [" << first << "," << first + count << ")";
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Timeline

namespace {

std::string fmt_duration(Duration d) {
  std::ostringstream os;
  if (d.us % 1000000 == 0) {
    os << d.us / 1000000 << "s";
  } else if (d.us % 1000 == 0) {
    os << d.us / 1000 << "ms";
  } else {
    os << d.us << "us";
  }
  return os.str();
}

}  // namespace

std::string TimelineEntry::describe() const {
  std::ostringstream os;
  os << fault_kind_name(fault.kind) << "@" << fmt_duration(at) << "+"
     << fmt_duration(duration) << " " << victims.describe();
  switch (fault.kind) {
    case FaultKind::kIntervalBlock:
    case FaultKind::kFlapping:
      os << " D=" << fmt_duration(fault.period)
         << " I=" << fmt_duration(fault.gap);
      break;
    case FaultKind::kChurn:
      os << " down=" << fmt_duration(fault.period)
         << " up=" << fmt_duration(fault.gap);
      break;
    case FaultKind::kLinkLoss:
      os << " egress=" << fault.egress_loss
         << " ingress=" << fault.ingress_loss;
      break;
    case FaultKind::kLatency:
      os << " extra=" << fmt_duration(fault.extra_latency)
         << " jitter=" << fmt_duration(fault.jitter);
      break;
    case FaultKind::kDuplicate:
      os << " p=" << fault.probability;
      break;
    case FaultKind::kReorder:
      os << " p=" << fault.probability
         << " spread=" << fmt_duration(fault.spread);
      break;
    default:
      break;
  }
  return os.str();
}

Timeline& Timeline::add(Duration at, Duration duration, Fault fault,
                        VictimSelector victims) {
  TimelineEntry e;
  e.at = at;
  e.duration = duration;
  e.fault = fault;
  e.victims = std::move(victims);
  entries_.push_back(std::move(e));
  return *this;
}

Timeline& Timeline::add(TimelineEntry entry) {
  entries_.push_back(std::move(entry));
  return *this;
}

TimelineEntry& Timeline::entry(std::size_t i) {
  if (i >= entries_.size()) {
    throw std::out_of_range("timeline entry " + std::to_string(i) +
                            " does not exist — the timeline has " +
                            std::to_string(entries_.size()) + " entries");
  }
  return entries_[i];
}

std::vector<std::string> Timeline::validate(int cluster_size) const {
  std::vector<std::string> errors;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const TimelineEntry& e = entries_[i];
    const std::string where = "timeline[" + std::to_string(i) + "] (" +
                              fault_kind_name(e.fault.kind) + "): ";
    auto fail = [&errors, &where](const std::string& msg) {
      errors.push_back(where + msg);
    };

    if (e.at.is_negative()) fail("at must be >= 0");
    if (e.duration <= Duration{0}) {
      fail("duration must be > 0 — it is the fault's active span");
    }
    // Keep every span far from int64-microsecond overflow so the drain
    // arithmetic (at + duration + cycle alignment + slack) is always safe.
    // Ten years of virtual time is orders beyond any real experiment.
    constexpr Duration kMaxSpan = sec(315360000);
    for (Duration d : {e.at, e.duration, e.fault.period, e.fault.gap,
                       e.fault.extra_latency, e.fault.jitter, e.fault.spread}) {
      if (d > kMaxSpan) {
        fail("time spans are capped at 10 years of virtual time — larger "
             "values risk clock overflow");
        break;
      }
    }

    // -- victims --
    const VictimSelector& v = e.victims;
    const int n = v.resolved_count(cluster_size);
    switch (v.mode) {
      case VictimSelector::Mode::kUniform:
        if (v.count < 1) fail("victims count must be >= 1");
        break;
      case VictimSelector::Mode::kExplicit:
        if (v.indices.empty()) fail("explicit victim list must be non-empty");
        for (int idx : v.indices) {
          if (idx < 0 || idx >= cluster_size) {
            fail("victim index " + std::to_string(idx) +
                 " is outside [0, " + std::to_string(cluster_size) + ")");
          }
        }
        break;
      case VictimSelector::Mode::kFraction:
        if (v.fraction <= 0.0 || v.fraction > 1.0) {
          fail("victim fraction (" + std::to_string(v.fraction) +
               ") must be in (0, 1]");
        } else if (n < 1) {
          fail("victim fraction (" + std::to_string(v.fraction) +
               ") rounds to 0 members of a " + std::to_string(cluster_size) +
               "-node cluster — the entry would be a silent no-op");
        }
        break;
      case VictimSelector::Mode::kIsland:
        if (v.count < 1 || v.first < 0 ||
            v.first + v.count > cluster_size) {
          fail("island [" + std::to_string(v.first) + ", " +
               std::to_string(v.first + v.count) +
               ") must fit inside [0, " + std::to_string(cluster_size) + ")");
        }
        break;
    }
    if (n > cluster_size) {
      fail("resolves to " + std::to_string(n) +
           " victims, more than cluster_size (" +
           std::to_string(cluster_size) + ")");
    }

    // -- per-kind parameters --
    const Fault& f = e.fault;
    switch (f.kind) {
      case FaultKind::kBlock:
        break;
      case FaultKind::kIntervalBlock:
      case FaultKind::kFlapping:
        if (f.period <= Duration{0} || f.gap <= Duration{0}) {
          fail("cycle shape needs period D > 0 and gap I > 0 — use 'block' "
               "for one uninterrupted span");
        }
        break;
      case FaultKind::kStress:
        if (f.stress.block_min <= Duration{0} ||
            f.stress.block_min > f.stress.block_max) {
          fail("stress block range must satisfy 0 < block_min <= block_max");
        }
        if (f.stress.run_min <= Duration{0} ||
            f.stress.run_min > f.stress.run_max) {
          fail("stress run range must satisfy 0 < run_min <= run_max");
        }
        break;
      case FaultKind::kChurn:
        if (f.period <= Duration{0} || f.gap <= Duration{0}) {
          fail("churn needs downtime > 0 and uptime > 0");
        }
        if (n >= cluster_size) {
          fail("churn victims (" + std::to_string(n) +
               ") must be <= cluster_size - 1 — node 0 is the rejoin seed "
               "and is never churned");
        }
        if ((v.mode == VictimSelector::Mode::kIsland && v.first == 0) ||
            std::count(v.indices.begin(), v.indices.end(), 0) > 0) {
          fail("node 0 is the rejoin seed and cannot be churned — pick "
               "explicit indices >= 1 or start the island at 1");
        }
        break;
      case FaultKind::kPartition:
        if (n >= cluster_size) {
          fail("island size (" + std::to_string(n) +
               ") must leave members on both sides of the split");
        }
        break;
      case FaultKind::kLinkLoss:
        if (f.egress_loss < 0.0 || f.egress_loss > 1.0 ||
            f.ingress_loss < 0.0 || f.ingress_loss > 1.0) {
          fail("loss probabilities must be in [0, 1]");
        } else if (f.egress_loss == 0.0 && f.ingress_loss == 0.0) {
          fail("at least one of egress/ingress loss must be > 0");
        }
        break;
      case FaultKind::kLatency:
        if (f.extra_latency.is_negative() || f.jitter.is_negative()) {
          fail("extra latency and jitter must be >= 0");
        } else if (f.extra_latency.is_zero() && f.jitter.is_zero()) {
          fail("at least one of extra/jitter must be > 0");
        }
        break;
      case FaultKind::kDuplicate:
        if (f.probability <= 0.0 || f.probability > 1.0) {
          fail("duplicate probability must be in (0, 1]");
        }
        break;
      case FaultKind::kReorder:
        if (f.probability <= 0.0 || f.probability > 1.0) {
          fail("reorder probability must be in (0, 1]");
        }
        if (f.spread <= Duration{0}) {
          fail("reorder spread must be > 0 — it is the extra delay window");
        }
        break;
    }
  }
  return errors;
}

std::string Timeline::summary() const {
  std::string out;
  for (const TimelineEntry& e : entries_) {
    if (!out.empty()) out += "; ";
    out += e.describe();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parsing

namespace {

/// "16384", "16s", "500ms", "250us" → Duration; bare numbers are ms.
std::optional<Duration> parse_duration_text(std::string_view text) {
  std::int64_t scale = 1000;  // default: milliseconds
  if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    scale = 1;
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale = 1000;
    text.remove_suffix(2);
  } else if (!text.empty() && text.back() == 's') {
    scale = 1000000;
    text.remove_suffix(1);
  }
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE || v < 0 ||
      v > std::numeric_limits<std::int64_t>::max() / scale) {
    return std::nullopt;
  }
  return Duration{v * scale};
}

/// Strict non-negative integer (no fractions, no exponents).
std::optional<int> parse_int_text(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE || v < 0 ||
      v > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(v);
}

std::optional<double> parse_prob_text(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t p = s.find(sep);
    out.push_back(s.substr(0, p));
    if (p == std::string_view::npos) break;
    s.remove_prefix(p + 1);
  }
  return out;
}

}  // namespace

std::optional<TimelineEntry> parse_timeline_entry(std::string_view spec,
                                                  std::string& error) {
  const auto parts = split(spec, ',');
  // Head: KIND@AT:DUR
  const std::string_view head = parts[0];
  const std::size_t at_pos = head.find('@');
  const std::size_t colon = head.find(':', at_pos == std::string_view::npos
                                                 ? 0
                                                 : at_pos);
  if (at_pos == std::string_view::npos || colon == std::string_view::npos) {
    error = "expected KIND@AT:DUR, got '" + std::string(head) + "'";
    return std::nullopt;
  }
  TimelineEntry e;
  const auto kind = fault_kind_from_name(head.substr(0, at_pos));
  if (!kind) {
    error = "unknown fault kind '" + std::string(head.substr(0, at_pos)) +
            "' (expected block|interval|stress|flapping|churn|partition|"
            "loss|latency|duplicate|reorder)";
    return std::nullopt;
  }
  e.fault.kind = *kind;
  const auto at = parse_duration_text(head.substr(at_pos + 1,
                                                  colon - at_pos - 1));
  const auto dur = parse_duration_text(head.substr(colon + 1));
  if (!at || !dur) {
    error = "bad time in '" + std::string(head) +
            "' (use e.g. 10s, 500ms, 250us; bare numbers are ms)";
    return std::nullopt;
  }
  e.at = *at;
  e.duration = *dur;

  bool selector_set = false;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string_view kv = parts[i];
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      error = "expected key=value, got '" + std::string(kv) + "'";
      return std::nullopt;
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);
    auto bad_value = [&error, key, val]() {
      error = "bad value '" + std::string(val) + "' for key '" +
              std::string(key) + "'";
    };
    // Fault-parameter keys apply only to the kinds that read them — a
    // misapplied key would otherwise silently configure nothing.
    auto applies_to = [&](std::initializer_list<FaultKind> kinds) {
      for (FaultKind k : kinds) {
        if (e.fault.kind == k) return true;
      }
      error = "key '" + std::string(key) + "' does not apply to fault kind '" +
              fault_kind_name(e.fault.kind) + "'";
      return false;
    };
    auto duration_key = [&](Duration& out) {
      const auto d = parse_duration_text(val);
      if (!d) {
        bad_value();
        return false;
      }
      out = *d;
      return true;
    };
    auto prob_key = [&](double& out) {
      const auto p = parse_prob_text(val);
      if (!p) {
        bad_value();
        return false;
      }
      out = *p;
      return true;
    };

    if (key == "victims") {
      const auto n = parse_int_text(val);
      if (!n || *n < 1) {
        bad_value();
        return std::nullopt;
      }
      e.victims = VictimSelector::uniform(*n);
      selector_set = true;
    } else if (key == "nodes") {
      std::vector<int> idx;
      for (std::string_view tok : split(val, '+')) {
        const auto n = parse_int_text(tok);
        if (!n) {
          bad_value();
          return std::nullopt;
        }
        idx.push_back(*n);
      }
      e.victims = VictimSelector::nodes(std::move(idx));
      selector_set = true;
    } else if (key == "pct") {
      double p = 0;
      if (!prob_key(p)) return std::nullopt;
      e.victims = VictimSelector::fraction_of(p / 100.0);
      selector_set = true;
    } else if (key == "island") {
      const auto toks = split(val, '+');
      const auto n = parse_int_text(toks[0]);
      const std::optional<int> f =
          toks.size() > 1 ? parse_int_text(toks[1]) : std::optional<int>(0);
      if (!n || !f || toks.size() > 2) {
        bad_value();
        return std::nullopt;
      }
      e.victims = VictimSelector::island(*n, *f);
      selector_set = true;
    } else if (key == "d" || key == "down") {
      if (!applies_to({FaultKind::kIntervalBlock, FaultKind::kFlapping,
                       FaultKind::kChurn})) {
        return std::nullopt;
      }
      if (!duration_key(e.fault.period)) return std::nullopt;
    } else if (key == "i" || key == "up") {
      if (!applies_to({FaultKind::kIntervalBlock, FaultKind::kFlapping,
                       FaultKind::kChurn})) {
        return std::nullopt;
      }
      if (!duration_key(e.fault.gap)) return std::nullopt;
    } else if (key == "egress") {
      if (!applies_to({FaultKind::kLinkLoss})) return std::nullopt;
      if (!prob_key(e.fault.egress_loss)) return std::nullopt;
    } else if (key == "ingress") {
      if (!applies_to({FaultKind::kLinkLoss})) return std::nullopt;
      if (!prob_key(e.fault.ingress_loss)) return std::nullopt;
    } else if (key == "extra") {
      if (!applies_to({FaultKind::kLatency})) return std::nullopt;
      if (!duration_key(e.fault.extra_latency)) return std::nullopt;
    } else if (key == "jitter") {
      if (!applies_to({FaultKind::kLatency})) return std::nullopt;
      if (!duration_key(e.fault.jitter)) return std::nullopt;
    } else if (key == "p") {
      if (!applies_to({FaultKind::kDuplicate, FaultKind::kReorder})) {
        return std::nullopt;
      }
      if (!prob_key(e.fault.probability)) return std::nullopt;
    } else if (key == "spread") {
      if (!applies_to({FaultKind::kReorder})) return std::nullopt;
      if (!duration_key(e.fault.spread)) return std::nullopt;
    } else if (key == "bmin") {
      if (!applies_to({FaultKind::kStress})) return std::nullopt;
      if (!duration_key(e.fault.stress.block_min)) return std::nullopt;
    } else if (key == "bmax") {
      if (!applies_to({FaultKind::kStress})) return std::nullopt;
      if (!duration_key(e.fault.stress.block_max)) return std::nullopt;
    } else if (key == "rmin") {
      if (!applies_to({FaultKind::kStress})) return std::nullopt;
      if (!duration_key(e.fault.stress.run_min)) return std::nullopt;
    } else if (key == "rmax") {
      if (!applies_to({FaultKind::kStress})) return std::nullopt;
      if (!duration_key(e.fault.stress.run_max)) return std::nullopt;
    } else {
      error = "unknown key '" + std::string(key) + "'";
      return std::nullopt;
    }
  }
  if (!selector_set) e.victims = VictimSelector::uniform(1);
  return e;
}

Duration cycle_aligned_length(Duration span, Duration duration,
                              Duration interval) {
  const Duration cycle = duration + interval;
  if (cycle <= Duration{0}) return span;
  const std::int64_t cycles = (span.us + cycle.us - 1) / cycle.us;
  return cycle * cycles;
}

// ---------------------------------------------------------------------------
// Fuzzing hooks

namespace {

/// Uniform whole-millisecond duration on a `step_ms` grid over [lo, hi] —
/// the serializable value lattice every generated span lives on.
Duration grid_ms(Rng& rng, std::int64_t lo_ms, std::int64_t hi_ms,
                 std::int64_t step_ms) {
  if (hi_ms < lo_ms) hi_ms = lo_ms;
  const std::int64_t steps = (hi_ms - lo_ms) / step_ms;
  return msec(lo_ms +
              step_ms * static_cast<std::int64_t>(
                            rng.uniform(static_cast<std::uint64_t>(steps + 1))));
}

/// Probabilities are twentieths in (0, 1]: 0.05, 0.1, ..., 1. Shortest-form
/// double rendering of these is short and strtod-exact.
double grid_prob(Rng& rng) {
  return static_cast<double>(1 + rng.uniform(20)) / 20.0;
}

VictimSelector random_selector(FaultKind kind, int cluster_size, Rng& rng) {
  // Churn never touches node 0 (the rejoin seed); churn and partition must
  // leave survivors, so their victim count stays below the cluster size.
  const bool churn = kind == FaultKind::kChurn;
  const bool spare_some = churn || kind == FaultKind::kPartition;
  const int cap =
      std::max(1, std::min(spare_some ? cluster_size - 1 : cluster_size,
                           cluster_size / 2 + 1));
  const int count = 1 + static_cast<int>(rng.uniform(
                            static_cast<std::uint64_t>(cap)));
  switch (rng.uniform(3)) {
    case 0:
      return VictimSelector::uniform(count);
    case 1: {
      const int lo = churn ? 1 : 0;
      std::vector<int> pool;
      for (int i = lo; i < cluster_size; ++i) pool.push_back(i);
      rng.shuffle(pool);
      const int k = std::min<int>(count, static_cast<int>(pool.size()));
      pool.resize(static_cast<std::size_t>(k));
      std::sort(pool.begin(), pool.end());
      return VictimSelector::nodes(std::move(pool));
    }
    default: {
      const int lo = churn ? 1 : 0;
      const int c = std::min(count, cluster_size - lo);
      const int first =
          lo + static_cast<int>(rng.uniform(
                   static_cast<std::uint64_t>(cluster_size - lo - c + 1)));
      return VictimSelector::island(c, first);
    }
  }
}

Fault random_fault(FaultKind kind, Rng& rng) {
  switch (kind) {
    case FaultKind::kBlock:
      return Fault::block();
    case FaultKind::kIntervalBlock:
      return Fault::interval_block(grid_ms(rng, 250, 4000, 250),
                                   grid_ms(rng, 250, 4000, 250));
    case FaultKind::kFlapping:
      return Fault::flapping(grid_ms(rng, 250, 4000, 250),
                             grid_ms(rng, 250, 4000, 250));
    case FaultKind::kStress: {
      sim::StressParams p;
      p.block_min = grid_ms(rng, 100, 2000, 100);
      p.block_max = p.block_min + grid_ms(rng, 0, 4000, 100);
      p.run_min = grid_ms(rng, 1, 50, 1);
      p.run_max = p.run_min + grid_ms(rng, 0, 100, 1);
      return Fault::stressed(p);
    }
    case FaultKind::kChurn:
      return Fault::churn(grid_ms(rng, 500, 8000, 250),
                          grid_ms(rng, 1000, 10000, 250));
    case FaultKind::kPartition:
      return Fault::partition();
    case FaultKind::kLinkLoss: {
      const double egress = grid_prob(rng);
      const double ingress = rng.chance(0.5) ? grid_prob(rng) : 0.0;
      return Fault::link_loss(egress, ingress);
    }
    case FaultKind::kLatency:
      return Fault::latency(grid_ms(rng, 50, 2000, 50),
                            grid_ms(rng, 0, 1000, 50));
    case FaultKind::kDuplicate:
      return Fault::duplicate(grid_prob(rng));
    case FaultKind::kReorder:
      return Fault::reorder(grid_prob(rng), grid_ms(rng, 10, 1000, 10));
  }
  return Fault::block();  // unreachable
}

}  // namespace

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds = {
      FaultKind::kBlock,    FaultKind::kIntervalBlock, FaultKind::kStress,
      FaultKind::kFlapping, FaultKind::kChurn,         FaultKind::kPartition,
      FaultKind::kLinkLoss, FaultKind::kLatency,       FaultKind::kDuplicate,
      FaultKind::kReorder,
  };
  return kinds;
}

TimelineEntry random_timeline_entry(FaultKind kind, int cluster_size,
                                    Duration horizon, Rng& rng) {
  TimelineEntry e;
  const std::int64_t horizon_ms = std::max<std::int64_t>(horizon.us / 1000,
                                                         1000);
  // Onset leaves at least 500 ms of active span before the horizon.
  e.at = grid_ms(rng, 0, horizon_ms - 500, 250);
  e.duration = grid_ms(rng, 500, horizon_ms - e.at.us / 1000, 250);
  e.fault = random_fault(kind, rng);
  e.victims = random_selector(kind, cluster_size, rng);
  return e;
}

void perturb_timeline_entry(TimelineEntry& e, int cluster_size,
                            Duration horizon, Rng& rng) {
  const std::int64_t horizon_ms = std::max<std::int64_t>(horizon.us / 1000,
                                                         1000);
  switch (rng.uniform(4)) {
    case 0:  // onset — keep the span inside the horizon
      e.at = grid_ms(rng, 0, horizon_ms - e.duration.us / 1000, 250);
      break;
    case 1:  // duration
      e.duration = grid_ms(rng, 500, horizon_ms - e.at.us / 1000, 250);
      break;
    case 2:  // victims
      e.victims = random_selector(e.fault.kind, cluster_size, rng);
      break;
    default:  // parameters (a fresh draw of the same kind)
      e.fault = random_fault(e.fault.kind, rng);
      break;
  }
}

}  // namespace lifeguard::fault
