#include "fault/injector.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "cluster/cluster.h"
#include "sim/anomaly.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace lifeguard::fault {

Duration FaultInjector::plan_total_run(const Timeline& tl,
                                       Duration run_length) {
  // The run must cover the observation window, every entry's own minimum
  // quiet point, and the largest per-kind settle slack. For a one-entry shim
  // Timeline this reduces exactly to the legacy per-kind drain times.
  Duration total = run_length;
  Duration slack{};
  for (const TimelineEntry& e : tl.entries()) {
    Duration min_end = e.at + e.duration;
    Duration sl{};
    switch (e.fault.kind) {
      case FaultKind::kBlock:
      case FaultKind::kLinkLoss:
      case FaultKind::kLatency:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
        break;
      case FaultKind::kIntervalBlock:
        // Cycles begun inside the span complete ("the test ends at the end
        // of the next anomalous period", §V-D2).
        min_end =
            e.at + cycle_aligned_length(e.duration, e.fault.period, e.fault.gap);
        sl = sec(1);
        break;
      case FaultKind::kStress:
        sl = sec(2);
        break;
      case FaultKind::kPartition:
        sl = sec(1);
        break;
      case FaultKind::kFlapping:
        // A phase-shifted final cycle may close up to one period late.
        min_end = e.at + e.duration + e.fault.period;
        sl = sec(1);
        break;
      case FaultKind::kChurn:
        // The last crash before span end restarts at most one downtime
        // later; give the rejoin time to disseminate.
        min_end = e.at + e.duration + e.fault.period;
        sl = sec(2);
        break;
    }
    total = std::max(total, min_end);
    slack = std::max(slack, sl);
  }
  return total + slack;
}

InjectionOutcome FaultInjector::inject(sim::Simulator& sim, const Timeline& tl,
                                       TimePoint t0,
                                       Duration run_length) const {
  InjectionOutcome out;
  out.total_run = plan_total_run(tl, run_length);
  out.entry_victims.reserve(tl.size());

  // Per-node stack of active partition claims, shared by every partition
  // entry's closures: when spans overlap on a victim, an entry's end restores
  // the next-most-recent claim instead of blindly re-merging the node.
  auto partition_claims =
      std::make_shared<std::map<int, std::vector<int>>>();

  for (std::size_t i = 0; i < tl.size(); ++i) {
    const TimelineEntry& e = tl.entries()[i];
    const bool exclude_seed = e.fault.kind == FaultKind::kChurn;
    std::vector<int> victims =
        e.victims.resolve(sim.size(), sim.rng(), exclude_seed);
    const TimePoint start = t0 + e.at;
    const TimePoint end = start + e.duration;

    // Span markers for the checking layer's merged event stream. Scheduled
    // before the per-kind closures so a same-instant fault-start precedes
    // its first block/crash in the (stable FIFO) queue; notes are inert
    // when no tap is attached.
    const int entry_index = static_cast<int>(i);
    sim.at(start, [&sim, entry_index] {
      sim.note(sim::SimEventKind::kFaultStart, -1, entry_index);
    });
    sim.at(end, [&sim, entry_index] {
      sim.note(sim::SimEventKind::kFaultEnd, -1, entry_index);
    });

    switch (e.fault.kind) {
      case FaultKind::kBlock:
        sim::schedule_threshold_anomaly(sim, victims, start, e.duration);
        break;
      case FaultKind::kIntervalBlock:
        sim::schedule_interval_anomaly(sim, victims, start, e.fault.period,
                                       e.fault.gap, end);
        break;
      case FaultKind::kStress:
        sim::schedule_stress_anomaly(sim, victims, start, end, e.fault.stress);
        break;
      case FaultKind::kFlapping:
        sim::schedule_flapping_anomaly(sim, victims, start, e.fault.period,
                                       e.fault.gap, end);
        break;
      case FaultKind::kChurn:
        sim::schedule_churn_anomaly(sim, victims, start, e.fault.period,
                                    e.fault.gap, end);
        break;
      case FaultKind::kPartition: {
        // A distinct group per entry so overlapping partitions compose.
        const int group = static_cast<int>(i) + 1;
        sim.at(start, [&sim, victims, group, partition_claims] {
          for (int v : victims) {
            (*partition_claims)[v].push_back(group);
            sim.network().set_partition(v, group);
          }
        });
        sim.at(end, [&sim, victims, group, partition_claims] {
          for (int v : victims) {
            std::vector<int>& claims = (*partition_claims)[v];
            // Drop this entry's claim; the node follows the most recent
            // remaining claim (another still-active partition) or re-merges.
            if (const auto it = std::find(claims.rbegin(), claims.rend(),
                                          group);
                it != claims.rend()) {
              claims.erase(std::next(it).base());
            }
            sim.network().set_partition(v, claims.empty() ? 0 : claims.back());
          }
        });
        break;
      }
      case FaultKind::kLinkLoss:
      case FaultKind::kLatency:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder: {
        sim::LinkFault lf;
        switch (e.fault.kind) {
          case FaultKind::kLinkLoss:
            lf.egress_loss = e.fault.egress_loss;
            lf.ingress_loss = e.fault.ingress_loss;
            break;
          case FaultKind::kLatency:
            lf.extra_latency = e.fault.extra_latency;
            lf.jitter = e.fault.jitter;
            break;
          case FaultKind::kDuplicate:
            lf.duplicate_p = e.fault.probability;
            break;
          default:  // kReorder
            lf.reorder_p = e.fault.probability;
            lf.reorder_spread = e.fault.spread;
            break;
        }
        // Tokens are shared between the install and remove closures so
        // overlapping entries on the same node stack and unwind cleanly.
        auto tokens = std::make_shared<std::vector<std::pair<int, int>>>();
        sim.at(start, [&sim, victims, lf, tokens] {
          for (int v : victims) {
            tokens->emplace_back(v, sim.network().add_link_fault(v, lf));
          }
        });
        sim.at(end, [&sim, tokens] {
          for (const auto& [node, token] : *tokens) {
            sim.network().remove_link_fault(node, token);
          }
        });
        break;
      }
    }

    out.entry_victims.push_back(victims);
    for (int v : victims) {
      if (std::find(out.victims.begin(), out.victims.end(), v) ==
          out.victims.end()) {
        out.victims.push_back(v);
      }
    }
  }
  return out;
}

InjectionOutcome FaultInjector::inject(Cluster& cluster, const Timeline& tl,
                                       Duration run_length) const {
  sim::Simulator* sim = cluster.simulator();
  if (sim == nullptr) {
    throw std::invalid_argument(
        "FaultInjector: the UDP backend cannot execute fault timelines yet — "
        "only block-style faults are portable there (see DESIGN.md); use the "
        "sim backend");
  }
  return inject(*sim, tl, sim->now(), run_length);
}

}  // namespace lifeguard::fault
