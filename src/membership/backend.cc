#include "membership/backend.h"

#include <charconv>
#include <memory>
#include <utility>

#include "membership/central.h"
#include "swim/node.h"

namespace lifeguard::membership {

std::string base_name(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  return std::string(spec.substr(0, colon));
}

std::optional<BackendSpec> parse_spec(std::string_view spec,
                                      std::string* error) {
  const auto fail = [&](std::string why) -> std::optional<BackendSpec> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };
  BackendSpec out;
  out.spec = std::string(spec);
  out.base = base_name(spec);
  if (BackendRegistry::builtin().find(out.base) == nullptr) {
    return fail("unknown membership backend '" + out.base +
                "' (known: swim, central, static)");
  }
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) return out;
  std::string_view params = spec.substr(colon + 1);
  if (out.base == "static") {
    return fail("backend 'static' takes no parameters");
  }
  const std::string known_keys =
      out.base == "central" ? "miss, plant" : "plant";
  if (params.empty()) {
    return fail("empty parameter list after '" + out.base +
                ":' (drop the colon or pass e.g. " +
                (out.base == "central" ? "miss=3" : "plant=drop-refute") +
                ")");
  }
  while (!params.empty()) {
    const std::size_t comma = params.find(',');
    const std::string_view kv = params.substr(0, comma);
    params = comma == std::string_view::npos ? std::string_view{}
                                             : params.substr(comma + 1);
    const std::size_t eq = kv.find('=');
    const std::string_view key = kv.substr(0, eq);
    if (key == "miss" && out.base == "central") {
      if (eq == std::string_view::npos) return fail("miss needs a value");
      const std::string_view val = kv.substr(eq + 1);
      int miss = 0;
      const auto [ptr, ec] =
          std::from_chars(val.data(), val.data() + val.size(), miss);
      if (ec != std::errc{} || ptr != val.data() + val.size() || miss < 1 ||
          miss > 100) {
        return fail("miss must be an integer in [1, 100], got '" +
                    std::string(val) + "'");
      }
      out.miss_threshold = miss;
    } else if (key == "plant") {
      if (eq == std::string_view::npos) return fail("plant needs a value");
      const std::string_view val = kv.substr(eq + 1);
      const std::string_view known =
          out.base == "swim" ? "drop-refute" : "refail";
      if (val != known) {
        return fail("unknown " + out.base + " plant '" + std::string(val) +
                    "' (known: " + std::string(known) + ")");
      }
      out.plant = std::string(val);
    } else {
      return fail("unknown " + out.base + " parameter '" + std::string(key) +
                  "' (known: " + known_keys + ")");
    }
  }
  return out;
}

namespace {

/// Fixed membership, no detection: every member believes the full roster is
/// alive forever. The control backend — its false-positive count and message
/// load are zero by construction, so it anchors the noise floor in
/// comparative campaigns.
class StaticAgent final : public Agent {
 public:
  StaticAgent(const AgentParams& params, Runtime& rt)
      : name_(params.name),
        addr_(params.address),
        index_(params.index),
        cluster_size_(params.cluster_size),
        rt_(rt) {}

  void start() override {
    if (running_) return;
    running_ = true;
    // The roster is configuration, not protocol: report every peer joined
    // up front so traces and views have the full fixed membership.
    for (int i = 0; i < cluster_size_; ++i) {
      if (i == index_) continue;
      swim::MemberEvent e;
      e.at = rt_.now();
      e.type = swim::EventType::kJoin;
      e.member = "node-" + std::to_string(i);
      e.reporter = name_;
      e.origin = name_;
      e.originated = false;
      events_.publish(e);
    }
  }
  void join(const std::vector<Address>&) override {}
  void leave() override {}
  void stop() override { running_ = false; }
  bool running() const override { return running_; }
  void on_packet(const Address&, std::span<const std::uint8_t> payload,
                 Channel) override {
    metrics_.counter("net.msgs_received").add();
    metrics_.counter("net.bytes_received")
        .add(static_cast<std::int64_t>(payload.size()));
  }
  void on_unblocked() override {}
  const std::string& name() const override { return name_; }
  const Address& address() const override { return addr_; }
  [[nodiscard]] swim::EventBus::Subscription subscribe(
      swim::EventBus::Handler fn) override {
    return events_.subscribe(std::move(fn));
  }
  int active_members() const override { return cluster_size_; }
  std::vector<std::string> active_view() const override {
    std::vector<std::string> out;
    out.reserve(static_cast<std::size_t>(cluster_size_));
    for (int i = 0; i < cluster_size_; ++i) {
      out.push_back("node-" + std::to_string(i));
    }
    return out;
  }
  Metrics& metrics() override { return metrics_; }
  const Metrics& metrics() const override { return metrics_; }

 private:
  std::string name_;
  Address addr_;
  int index_ = 0;
  int cluster_size_ = 0;
  Runtime& rt_;
  swim::EventBus events_;
  Metrics metrics_;
  bool running_ = false;
};

class SwimBackend final : public Backend {
 public:
  const std::string& name() const override {
    static const std::string n = "swim";
    return n;
  }
  const std::string& summary() const override {
    static const std::string s =
        "SWIM randomized probing + Lifeguard local health (the paper's "
        "protocol)";
    return s;
  }
  bool detects_failures() const override { return true; }
  std::unique_ptr<Agent> create(const AgentParams& params,
                                Runtime& rt) const override {
    // Argument-for-argument the pre-refactor direct construction: the swim
    // backend must stay golden-seed bit-parity with it (no extra Rng draws,
    // no reordering). The plant flag is set after construction — a no-op
    // unless the spec asks for it.
    auto node = std::make_unique<swim::Node>(params.name, params.address,
                                             params.config, rt);
    if (params.spec.plant == "drop-refute") node->plant_drop_refute(true);
    return node;
  }
};

class CentralBackend final : public Backend {
 public:
  const std::string& name() const override {
    static const std::string n = "central";
    return n;
  }
  const std::string& summary() const override {
    static const std::string s =
        "coordinator-based heartbeats (node 0 acks and pushes views; "
        "miss-threshold detection)";
    return s;
  }
  bool detects_failures() const override { return true; }
  std::unique_ptr<Agent> create(const AgentParams& params,
                                Runtime& rt) const override {
    return std::make_unique<CentralAgent>(params, rt);
  }
};

class StaticBackend final : public Backend {
 public:
  const std::string& name() const override {
    static const std::string n = "static";
    return n;
  }
  const std::string& summary() const override {
    static const std::string s =
        "fixed roster, no detection (control / noise floor)";
    return s;
  }
  bool detects_failures() const override { return false; }
  std::unique_ptr<Agent> create(const AgentParams& params,
                                Runtime& rt) const override {
    return std::make_unique<StaticAgent>(params, rt);
  }
};

}  // namespace

const BackendRegistry& BackendRegistry::builtin() {
  static const BackendRegistry* reg = [] {
    static const SwimBackend swim_backend;
    static const CentralBackend central_backend;
    static const StaticBackend static_backend;
    auto* r = new BackendRegistry();
    r->backends_ = {&swim_backend, &central_backend, &static_backend};
    return r;
  }();
  return *reg;
}

const Backend* BackendRegistry::find(std::string_view name_or_spec) const {
  const std::string base = base_name(name_or_spec);
  for (const Backend* b : backends_) {
    if (b->name() == base) return b;
  }
  return nullptr;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const Backend* b : backends_) out.push_back(b->name());
  return out;
}

}  // namespace lifeguard::membership
