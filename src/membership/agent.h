// membership::Agent — the protocol-agnostic seam over one group member.
//
// The simulator, cluster facade, checking layer and telemetry sampler used
// to talk to swim::Node directly; they now talk to this interface, so a
// Scenario can swap the failure-detection protocol (SWIM/Lifeguard, a
// centralized heartbeat coordinator, a static no-detection control) without
// touching any of that machinery. An Agent is one member: it owns its
// member table, publishes every membership transition it observes on a
// swim::EventBus (the shape the trace/check/obs layers already consume),
// and does all I/O through the sans-I/O Runtime it was created with.
//
// Contract highlights (docs/membership.md has the full version):
//   * Single-threaded: all entry points run on the owning runtime's thread.
//   * Deterministic: an agent draws randomness only from Runtime::rng(), so
//     a (scenario, seed) pair replays bit-identically.
//   * Events: state transitions are published as swim::MemberEvent with
//     `originated` set only on transitions this agent itself decided (its
//     own detector firing), never when applying another member's report —
//     false-positive accounting (paper §V-F1) depends on this.
//   * Views: active_view() returns the names of members this agent currently
//     believes alive (itself included); convergence checking compares these
//     across the cluster.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "runtime/runtime.h"
#include "swim/events.h"

namespace lifeguard::swim {
class ProbeObserver;
}  // namespace lifeguard::swim

namespace lifeguard::obs {
class DetectionMetrics;
}  // namespace lifeguard::obs

namespace lifeguard::membership {

class Agent : public PacketHandler {
 public:
  ~Agent() override = default;

  // ---- lifecycle ----
  /// Marks self alive and starts the protocol's schedules (probe loops,
  /// heartbeat timers, ...). Idempotent protocols may ignore a restart.
  virtual void start() = 0;
  /// Introduces this agent to the group via the seed addresses. Protocols
  /// without a join handshake may treat this as a no-op.
  virtual void join(const std::vector<Address>& seeds) = 0;
  /// Graceful departure intent; the agent keeps running so the intent can
  /// disseminate. Call stop() afterwards.
  virtual void leave() = 0;
  /// Cancels all timers; the agent goes quiet. Idempotent.
  virtual void stop() = 0;
  virtual bool running() const = 0;

  // ---- runtime callbacks ----
  // on_packet() is inherited from PacketHandler.
  /// Invoked when an injected anomaly that was blocking this agent's I/O
  /// ends; protocols with stalled loops resume them here.
  virtual void on_unblocked() = 0;

  // ---- identity ----
  virtual const std::string& name() const = 0;
  virtual const Address& address() const = 0;

  // ---- events ----
  /// Attach an observer to this agent's membership-transition stream.
  [[nodiscard]] virtual swim::EventBus::Subscription subscribe(
      swim::EventBus::Handler fn) = 0;

  // ---- membership view ----
  /// Members this agent currently believes alive, itself included.
  virtual int active_members() const = 0;
  /// Names of those members, in no particular order.
  virtual std::vector<std::string> active_view() const = 0;
  /// Members currently in the suspect limbo state (0 for protocols without
  /// a suspicion stage).
  virtual int suspect_count() const { return 0; }
  /// Members this agent has declared failed.
  virtual int dead_count() const { return 0; }

  // ---- telemetry ----
  virtual Metrics& metrics() = 0;
  virtual const Metrics& metrics() const = 0;
  /// Lifeguard local-health score (0 for protocols without one).
  virtual double health_score() const { return 0.0; }
  /// Depth of the gossip/dissemination queue (0 when there is none).
  virtual std::size_t pending_broadcast_count() const { return 0; }
  /// Total piggybacked gossip transmissions (0 when there is no gossip).
  virtual std::int64_t gossip_transmits_total() const { return 0; }
  /// Probe-pipeline lifecycle observer (telemetry spans). Only meaningful
  /// for probe-based protocols; the default ignores the observer.
  virtual void set_probe_observer(swim::ProbeObserver*) {}
  /// Typed view of the backend-generic detection metrics (heartbeat
  /// counters, coordinator RTT), or nullptr when the protocol does not
  /// maintain them (swim's probe pipeline has its own typed facade).
  virtual const obs::DetectionMetrics* detection() const { return nullptr; }
};

}  // namespace lifeguard::membership
