#include "membership/central.h"

#include <utility>

#include "common/bytes.h"

namespace lifeguard::membership {

namespace {

enum MsgTag : std::uint8_t {
  kJoinTag = 1,
  kHeartbeatTag = 2,
  kAckTag = 3,
  kViewTag = 4,
};

constexpr std::uint8_t kStatusAlive = 0;
constexpr std::uint8_t kStatusFailed = 1;

}  // namespace

CentralAgent::CentralAgent(const AgentParams& params, Runtime& rt)
    : name_(params.name),
      addr_(params.address),
      index_(static_cast<std::uint32_t>(params.index)),
      cluster_size_(params.cluster_size),
      heartbeat_interval_(params.config.probe_interval),
      miss_threshold_(params.spec.miss_threshold),
      plant_refail_(params.spec.plant == "refail"),
      rt_(rt),
      det_(metrics_) {}

CentralAgent::~CentralAgent() { stop(); }

std::string CentralAgent::member_name(std::uint32_t index) {
  return "node-" + std::to_string(index);
}

void CentralAgent::start() {
  if (running_) return;
  running_ = true;
  table_[index_] = Entry{0, true, rt_.now()};
  if (is_coordinator()) coordinator_start();
}

void CentralAgent::join(const std::vector<Address>& seeds) {
  if (!running_ || is_coordinator() || seeds.empty()) return;
  coordinator_addr_ = seeds.front();
  BufWriter w(rt_.acquire_buffer());
  w.u8(kJoinTag);
  w.u32(index_);
  send_bytes(coordinator_addr_, std::move(w).take(), "join");
  if (heartbeat_timer_ == kInvalidTimer) {
    heartbeat_timer_ =
        rt_.schedule(heartbeat_interval_, [this] { heartbeat_tick(); });
  }
}

void CentralAgent::leave() {
  // No graceful-leave handshake: a departing member simply stops
  // heartbeating and the coordinator detects it like a crash. This keeps the
  // backend an honest baseline — plain heartbeat systems pay detection
  // latency even for voluntary departures.
}

void CentralAgent::stop() {
  running_ = false;
  rt_.cancel(check_timer_);
  check_timer_ = kInvalidTimer;
  rt_.cancel(heartbeat_timer_);
  heartbeat_timer_ = kInvalidTimer;
  ack_outstanding_ = false;
  consecutive_misses_ = 0;
}

void CentralAgent::publish(swim::EventType type, std::uint32_t member_index,
                           std::uint64_t incarnation, bool originated) {
  if (member_index == index_) return;  // no events about self
  swim::MemberEvent e;
  e.at = rt_.now();
  e.type = type;
  e.member = member_name(member_index);
  e.reporter = name_;
  // Every transition in this protocol is decided at the coordinator except a
  // member's own coordinator-failure verdict.
  e.origin = originated ? name_ : member_name(0);
  e.incarnation = incarnation;
  e.originated = originated;
  events_.publish(e);
}

void CentralAgent::send_bytes(const Address& to,
                              std::vector<std::uint8_t> bytes,
                              const char* type) {
  det_.count_sent(type, bytes.size());
  rt_.send(to, std::move(bytes), Channel::kUdp);
}

// ---- coordinator side --------------------------------------------------

void CentralAgent::coordinator_start() {
  check_timer_ =
      rt_.schedule(heartbeat_interval_, [this] { check_tick(); });
}

bool CentralAgent::admit(std::uint32_t index, const Address& from) {
  auto [it, inserted] = table_.try_emplace(index);
  Entry& e = it->second;
  e.last_heartbeat = rt_.now();
  e.addr = from;
  if (inserted) {
    publish(swim::EventType::kJoin, index, e.incarnation, true);
    return true;
  }
  if (!e.alive) {
    e.alive = true;
    ++e.incarnation;
    publish(swim::EventType::kJoin, index, e.incarnation, true);
    return true;
  }
  return false;
}

void CentralAgent::check_tick() {
  const Duration deadline = heartbeat_interval_ * miss_threshold_;
  const TimePoint now = rt_.now();
  for (auto& [index, e] : table_) {
    // Planted defect (central:plant=refail): skip the already-failed guard,
    // so a member whose heartbeats stopped is re-declared failed on every
    // tick — the kFailed -> kFailed re-announcement the legal-transitions
    // invariant rejects.
    if (index == index_ || (!e.alive && !plant_refail_)) continue;
    if (now - e.last_heartbeat > deadline) {
      e.alive = false;
      det_.heartbeat_missed().add();
      publish(swim::EventType::kFailed, index, e.incarnation, true);
    }
  }
  // Push the view every tick, changed or not: lost view datagrams heal by
  // anti-entropy, the same role push-pull plays for swim.
  push_views();
  check_timer_ =
      rt_.schedule(heartbeat_interval_, [this] { check_tick(); });
}

std::vector<std::uint8_t> CentralAgent::encode_view() {
  BufWriter w(rt_.acquire_buffer());
  w.u8(kViewTag);
  w.u32(static_cast<std::uint32_t>(table_.size()));
  for (const auto& [index, e] : table_) {
    w.u32(index);
    w.u8(e.alive ? kStatusAlive : kStatusFailed);
    w.u64(e.incarnation);
  }
  return std::move(w).take();
}

void CentralAgent::push_views() {
  const std::vector<std::uint8_t> view = encode_view();
  for (const auto& [index, e] : table_) {
    if (index == index_ || !e.alive || e.addr.is_unset()) continue;
    send_bytes(e.addr, view, "view");
  }
}

// ---- member side -------------------------------------------------------

void CentralAgent::heartbeat_tick() {
  if (ack_outstanding_) {
    det_.heartbeat_missed().add();
    ++consecutive_misses_;
    auto coord = table_.find(0);
    if (consecutive_misses_ >= miss_threshold_ && coord != table_.end() &&
        coord->second.alive) {
      coord->second.alive = false;
      publish(swim::EventType::kFailed, 0, coord->second.incarnation, true);
    }
  }
  pending_seq_ = next_seq_++;
  pending_sent_ = rt_.now();
  ack_outstanding_ = true;
  det_.heartbeat_sent().add();
  BufWriter w(rt_.acquire_buffer());
  w.u8(kHeartbeatTag);
  w.u32(index_);
  w.u32(pending_seq_);
  send_bytes(coordinator_addr_, std::move(w).take(), "heartbeat");
  heartbeat_timer_ =
      rt_.schedule(heartbeat_interval_, [this] { heartbeat_tick(); });
}

void CentralAgent::coordinator_seen_alive() {
  consecutive_misses_ = 0;
  auto coord = table_.find(0);
  if (coord != table_.end() && !coord->second.alive) {
    coord->second.alive = true;
    publish(swim::EventType::kAlive, 0, coord->second.incarnation, true);
  }
}

void CentralAgent::handle_ack(std::uint32_t seq) {
  if (ack_outstanding_ && seq == pending_seq_) {
    ack_outstanding_ = false;
    det_.coordinator_rtt_us().record(
        static_cast<double>((rt_.now() - pending_sent_).us));
  }
  coordinator_seen_alive();
}

void CentralAgent::handle_view(BufReader& r) {
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    const std::uint32_t index = r.u32();
    const bool alive = r.u8() == kStatusAlive;
    const std::uint64_t incarnation = r.u64();
    if (!r.ok() || index == index_) continue;
    auto [it, inserted] = table_.try_emplace(index);
    Entry& e = it->second;
    if (inserted) {
      e.alive = alive;
      e.incarnation = incarnation;
      // A pair's event stream must open with a join; a member first seen
      // already-failed gets no events until it rejoins.
      if (alive) publish(swim::EventType::kJoin, index, incarnation, false);
      continue;
    }
    if (alive && !e.alive) {
      publish(swim::EventType::kJoin, index, incarnation, false);
      if (index == 0) consecutive_misses_ = 0;
    } else if (!alive && e.alive) {
      publish(swim::EventType::kFailed, index, incarnation, false);
    }
    e.alive = alive;
    e.incarnation = incarnation;
  }
  // A view reaching us proves the coordinator is up even if acks got lost.
  coordinator_seen_alive();
}

// ---- dispatch ----------------------------------------------------------

void CentralAgent::on_packet(const Address& from,
                             std::span<const std::uint8_t> payload,
                             Channel /*channel*/) {
  if (!running_) return;
  det_.count_received(payload.size());
  BufReader r(payload);
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case kJoinTag: {
      const std::uint32_t sender = r.u32();
      if (!r.ok() || !is_coordinator()) break;
      if (admit(sender, from)) push_views();
      return;
    }
    case kHeartbeatTag: {
      const std::uint32_t sender = r.u32();
      const std::uint32_t seq = r.u32();
      if (!r.ok() || !is_coordinator()) break;
      if (admit(sender, from)) push_views();
      BufWriter w(rt_.acquire_buffer());
      w.u8(kAckTag);
      w.u32(seq);
      send_bytes(from, std::move(w).take(), "heartbeat-ack");
      return;
    }
    case kAckTag: {
      const std::uint32_t seq = r.u32();
      if (!r.ok() || is_coordinator()) break;
      handle_ack(seq);
      return;
    }
    case kViewTag: {
      if (is_coordinator()) break;
      handle_view(r);
      if (r.ok()) return;
      break;
    }
    default:
      break;
  }
  det_.malformed().add();
}

// ---- views -------------------------------------------------------------

int CentralAgent::active_members() const {
  int n = 0;
  for (const auto& [index, e] : table_) n += e.alive ? 1 : 0;
  return n;
}

std::vector<std::string> CentralAgent::active_view() const {
  std::vector<std::string> out;
  out.reserve(table_.size());
  for (const auto& [index, e] : table_) {
    if (e.alive) out.push_back(member_name(index));
  }
  return out;
}

int CentralAgent::dead_count() const {
  int n = 0;
  for (const auto& [index, e] : table_) n += e.alive ? 0 : 1;
  return n;
}

}  // namespace lifeguard::membership
