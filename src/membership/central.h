// membership::CentralAgent — coordinator-based heartbeat failure detection.
//
// The classic centralized alternative the paper's gossip protocol is
// usually compared against: every member sends a periodic heartbeat to a
// coordinator (the member at index 0), which acks it and pushes full
// membership views to the group. Failure detection is a consecutive-miss
// count on both sides:
//   * the coordinator declares a member failed when no heartbeat arrives
//     for miss_threshold heartbeat intervals, and
//   * a member declares the *coordinator* failed after miss_threshold
//     consecutive unacked heartbeats (the coordinator is a fault-injectable
//     node like any other — crash it and watch the group go blind).
//
// Timing reuses the scenario Config: heartbeat interval = probe_interval,
// so every existing config axis sweeps this backend too; the miss threshold
// comes from the membership spec ("central:miss=N", default 3).
//
// Views are full snapshots pushed on every membership change and once per
// check tick (anti-entropy against datagram loss); members apply them as
// diffs and publish the resulting transitions as non-originated events, so
// the paper's false-positive accounting (only `originated` kFailed events
// count) attributes every detection to the node whose timer fired.
//
// Wire format (little-endian, one message per datagram, Channel::kUdp):
//   Join       u8 tag=1, u32 sender_index
//   Heartbeat  u8 tag=2, u32 sender_index, u32 seq
//   Ack        u8 tag=3, u32 seq
//   View       u8 tag=4, u32 count, count * { u32 index, u8 status
//              (0 alive / 1 failed), u64 incarnation }
// Decoding is total: malformed datagrams bump net.malformed and are dropped.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/types.h"
#include "membership/backend.h"
#include "obs/registry.h"
#include "runtime/runtime.h"
#include "swim/events.h"

namespace lifeguard::membership {

class CentralAgent final : public Agent {
 public:
  CentralAgent(const AgentParams& params, Runtime& rt);
  ~CentralAgent() override;

  CentralAgent(const CentralAgent&) = delete;
  CentralAgent& operator=(const CentralAgent&) = delete;

  // ---- Agent ----
  void start() override;
  void join(const std::vector<Address>& seeds) override;
  void leave() override;
  void stop() override;
  bool running() const override { return running_; }
  void on_packet(const Address& from, std::span<const std::uint8_t> payload,
                 Channel channel) override;
  void on_unblocked() override {}
  const std::string& name() const override { return name_; }
  const Address& address() const override { return addr_; }
  [[nodiscard]] swim::EventBus::Subscription subscribe(
      swim::EventBus::Handler fn) override {
    return events_.subscribe(std::move(fn));
  }
  int active_members() const override;
  std::vector<std::string> active_view() const override;
  int dead_count() const override;
  Metrics& metrics() override { return metrics_; }
  const Metrics& metrics() const override { return metrics_; }
  const obs::DetectionMetrics* detection() const override { return &det_; }

  bool is_coordinator() const { return index_ == 0; }

 private:
  /// One member as this agent knows it. Ordered map => deterministic view
  /// encoding and event order.
  struct Entry {
    std::uint64_t incarnation = 0;
    bool alive = true;
    TimePoint last_heartbeat{};  ///< coordinator side only
    Address addr{};              ///< coordinator side: learned from packets
  };

  // ---- shared ----
  void publish(swim::EventType type, std::uint32_t member_index,
               std::uint64_t incarnation, bool originated);
  void send_bytes(const Address& to, std::vector<std::uint8_t> bytes,
                  const char* type);
  static std::string member_name(std::uint32_t index);

  // ---- coordinator side ----
  void coordinator_start();
  void check_tick();
  /// Adds / revives `index` (join message or heartbeat from an unknown or
  /// failed member — the latter covers lost Join datagrams and restarts).
  /// Returns true when membership changed.
  bool admit(std::uint32_t index, const Address& from);
  void push_views();
  std::vector<std::uint8_t> encode_view();

  // ---- member side ----
  void heartbeat_tick();
  void handle_ack(std::uint32_t seq);
  void handle_view(BufReader& r);
  void coordinator_seen_alive();

  // ---- data ----
  std::string name_;
  Address addr_;
  std::uint32_t index_ = 0;
  int cluster_size_ = 0;
  Duration heartbeat_interval_{};
  int miss_threshold_ = 3;
  /// Test-only planted defect ("central:plant=refail"): the miss scan drops
  /// the already-failed guard and re-announces failed members every tick.
  bool plant_refail_ = false;

  Runtime& rt_;
  swim::EventBus events_;
  Metrics metrics_;
  obs::DetectionMetrics det_;

  bool running_ = false;
  /// Everyone this agent knows about, itself included, keyed by index.
  std::map<std::uint32_t, Entry> table_;

  // coordinator
  TimerId check_timer_ = kInvalidTimer;

  // member
  Address coordinator_addr_{};
  TimerId heartbeat_timer_ = kInvalidTimer;
  std::uint32_t next_seq_ = 1;
  std::uint32_t pending_seq_ = 0;
  TimePoint pending_sent_{};
  bool ack_outstanding_ = false;
  int consecutive_misses_ = 0;
};

}  // namespace lifeguard::membership
