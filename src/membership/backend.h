// membership::Backend — named factories for membership Agents.
//
// A Backend is a protocol: it knows how to create one Agent per cluster
// member against a Runtime. The BackendRegistry maps spec strings (the
// `membership` field of a harness::Scenario, the --membership CLI flag, the
// trace-header key) to backends. A spec is `NAME[:key=value,...]`; the part
// before the colon selects the backend, the rest parameterizes it:
//
//   swim             SWIM + Lifeguard (the default; swim::Node unchanged)
//   central          coordinator-based heartbeat detection; node 0 is the
//                    coordinator. Heartbeat interval / ack timeout reuse the
//                    scenario Config's probe_interval / probe_timeout, so
//                    existing config axes sweep the central backend too.
//   central:miss=N   override the consecutive-miss threshold (default 3)
//   static           fixed membership, no detection — the control/noise
//                    floor for comparative campaigns
//
// Planted defects (test-only): `plant=NAME` re-introduces a known protocol
// bug behind the spec grammar, so the fuzzer's planted-bug regression suite
// (tests/fuzz) has real violations to find, and a reproducer scenario file
// carries its plant in the `membership` field — replaying the violation
// bit-for-bit with no out-of-band switches:
//
//   swim:plant=drop-refute   the node never refutes suspicion/death gossip
//                            about itself (a healthy member stays dead in
//                            every other view -> convergence violation)
//   central:plant=refail     the coordinator's miss scan drops the
//                            already-failed guard and re-announces failed
//                            members every check tick (kFailed -> kFailed,
//                            a legal-transitions violation)
//
// Invariant applicability: swim-specific invariants (suspicion-bounds,
// refute-before-resurrect, incarnation-monotonic, retransmit-bound) only
// run when base() == "swim"; check::Checker auto-disables them otherwise.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "membership/agent.h"
#include "swim/config.h"

namespace lifeguard::membership {

/// A parsed `NAME[:key=value,...]` membership spec.
struct BackendSpec {
  std::string spec = "swim";  ///< the full spec string, verbatim
  std::string base = "swim";  ///< backend name (the part before ':')
  int miss_threshold = 3;     ///< central: consecutive misses before failed
  /// Test-only planted defect; empty means none (see the header comment).
  /// Valid values: "drop-refute" (swim), "refail" (central).
  std::string plant;
};

/// The backend name portion of a spec string (everything before the first
/// ':'), without validating the parameters. "central:miss=5" -> "central".
std::string base_name(std::string_view spec);

/// Parses and validates `spec`. On failure returns nullopt and sets `error`
/// to a human-readable reason (unknown backend, bad parameter, ...).
std::optional<BackendSpec> parse_spec(std::string_view spec,
                                      std::string* error = nullptr);

/// Everything a backend needs to build one member's agent.
struct AgentParams {
  std::string name;          ///< "node-<index>" under the simulator
  Address address{};
  int index = 0;             ///< position in the cluster, 0-based
  int cluster_size = 0;
  swim::Config config{};     ///< protocol timing knobs (shared across backends)
  BackendSpec spec{};        ///< parsed membership spec (backend parameters)
};

class Backend {
 public:
  virtual ~Backend() = default;
  /// Registry key ("swim", "central", "static").
  virtual const std::string& name() const = 0;
  /// One-line description for catalogs and docs.
  virtual const std::string& summary() const = 0;
  /// False for control backends that never declare a member failed; the
  /// convergence invariant then expects every member in every view, and
  /// detection-latency extraction knows to expect no failure events.
  virtual bool detects_failures() const = 0;
  virtual std::unique_ptr<Agent> create(const AgentParams& params,
                                        Runtime& rt) const = 0;
};

/// Immutable name -> Backend table. builtin() holds the three in-tree
/// backends; find() accepts either a bare name or a full spec string.
class BackendRegistry {
 public:
  static const BackendRegistry& builtin();

  /// Lookup by backend name or spec string; nullptr when unknown.
  const Backend* find(std::string_view name_or_spec) const;
  /// Backend names in catalog order (swim first).
  std::vector<std::string> names() const;
  const std::vector<const Backend*>& all() const { return backends_; }

 private:
  std::vector<const Backend*> backends_;
};

}  // namespace lifeguard::membership
