#include "fuzz/mutator.h"

#include <algorithm>
#include <cstddef>

namespace lifeguard::fuzz {

namespace {

fault::FaultKind random_kind(Rng& rng) {
  const auto& kinds = fault::all_fault_kinds();
  return kinds[static_cast<std::size_t>(rng.uniform(kinds.size()))];
}

}  // namespace

fault::TimelineEntry Mutator::random_entry(Rng& rng) const {
  return fault::random_timeline_entry(random_kind(rng), cluster_size_,
                                      opts_.horizon, rng);
}

fault::Timeline Mutator::random_timeline(Rng& rng) const {
  const int n = 1 + static_cast<int>(rng.uniform(
                        static_cast<std::uint64_t>(opts_.max_entries)));
  fault::Timeline tl;
  for (int i = 0; i < n; ++i) tl.add(random_entry(rng));
  return tl;
}

fault::Timeline Mutator::mutate(const fault::Timeline& parent,
                                const fault::Timeline& other,
                                Rng& rng) const {
  std::vector<fault::TimelineEntry> entries = parent.entries();
  if (entries.empty()) return random_timeline(rng);

  // Op weights favor small local moves; crossover only when a second
  // parent exists. The draw order is part of the determinism contract.
  const bool can_cross = !other.empty();
  const std::uint64_t op = rng.uniform(can_cross ? 5 : 4);
  switch (op) {
    case 0: {  // splice a fresh entry (replace one at the size ceiling)
      const fault::TimelineEntry fresh = random_entry(rng);
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform(entries.size() + 1));
      if (static_cast<int>(entries.size()) < opts_.max_entries) {
        entries.insert(entries.begin() + static_cast<std::ptrdiff_t>(pos),
                       fresh);
      } else {
        entries[std::min(pos, entries.size() - 1)] = fresh;
      }
      break;
    }
    case 1: {  // drop an entry (timelines stay non-empty)
      if (entries.size() > 1) {
        const std::size_t pos =
            static_cast<std::size_t>(rng.uniform(entries.size()));
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(pos));
      } else {
        entries[0] = random_entry(rng);
      }
      break;
    }
    case 2: {  // perturb one dimension of one entry
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform(entries.size()));
      fault::perturb_timeline_entry(entries[pos], cluster_size_,
                                    opts_.horizon, rng);
      break;
    }
    case 3: {  // re-kind: same slot, fresh entry of a fresh kind
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform(entries.size()));
      entries[pos] = random_entry(rng);
      break;
    }
    default: {  // crossover: parent prefix + other suffix
      const std::size_t cut =
          1 + static_cast<std::size_t>(rng.uniform(entries.size()));
      entries.resize(std::min(cut, entries.size()));
      const auto& tail = other.entries();
      const std::size_t from =
          static_cast<std::size_t>(rng.uniform(tail.size()));
      for (std::size_t i = from; i < tail.size(); ++i) {
        if (static_cast<int>(entries.size()) >= opts_.max_entries) break;
        entries.push_back(tail[i]);
      }
      break;
    }
  }

  fault::Timeline out;
  for (fault::TimelineEntry& e : entries) out.add(std::move(e));
  return out;
}

}  // namespace lifeguard::fuzz
