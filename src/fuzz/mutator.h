// fuzz::Mutator — grammar-bounded mutation of fault::Timelines.
//
// Every candidate the fuzzer proposes must be a first-class scenario: it
// has to pass Timeline::validate() against the target cluster, serialize
// through check::entry_spec() bit-for-bit (so a finding can land as a
// committed scenarios/fuzz-*.json file), and replay deterministically. The
// mutator therefore never edits free-form: it composes the generation
// primitives in fault/fault.h (random_timeline_entry / perturb_timeline_
// entry), which draw every value from the serializable grid — whole-
// millisecond durations, twentieth probabilities, and the uniform /
// explicit / island victim modes (never kFraction, whose pct rendering is
// not exactly invertible).
//
// Mutations are pure functions of (parent, other, Rng): splice in a fresh
// entry, drop one, perturb one dimension of one entry, re-kind an entry, or
// cross two corpus timelines. Determinism is the caller's contract — hand
// in an Rng seeded from the trial derivation chain and the same candidate
// comes out on every run at every jobs level.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault.h"

namespace lifeguard::fuzz {

struct MutatorOptions {
  /// Candidate timelines never exceed this many entries (shrinking budget
  /// and scenario readability both favor short timelines).
  int max_entries = 4;
  /// Every entry satisfies at + duration <= horizon, leaving the run a
  /// disturbance-free tail for the convergence invariant to assert over.
  Duration horizon = sec(25);
};

class Mutator {
 public:
  Mutator(int cluster_size, MutatorOptions opts = {})
      : cluster_size_(cluster_size), opts_(opts) {}

  const MutatorOptions& options() const { return opts_; }
  int cluster_size() const { return cluster_size_; }

  /// A fresh random timeline of 1..max_entries entries — corpus seeding.
  fault::Timeline random_timeline(Rng& rng) const;

  /// One random entry of one random kind (also used by splice).
  fault::TimelineEntry random_entry(Rng& rng) const;

  /// One mutation step over `parent`, optionally crossing with `other`
  /// (pass an empty timeline when there is no second parent). The result is
  /// non-empty, within max_entries, and validate-clean by construction.
  fault::Timeline mutate(const fault::Timeline& parent,
                         const fault::Timeline& other, Rng& rng) const;

 private:
  int cluster_size_;
  MutatorOptions opts_;
};

}  // namespace lifeguard::fuzz
