// fuzz::Engine — coverage-guided fault-timeline fuzzing.
//
// The search loop the checker, shrinker and Campaign engine were built
// toward (ROADMAP item 4): generate candidate fault::Timelines with
// fuzz::Mutator, run each as a full deterministic scenario trial through
// the thread-pooled harness::Campaign machinery, extract structural
// coverage from the merged TraceEvent stream (check::CoverageCollector),
// and keep the candidates that reached behavior no earlier trial did. Any
// invariant violation is auto-shrunk with check::shrink() and emitted as a
// minimal committed-format reproducer (scenarios/fuzz-*.json, PR 9's
// codec) with its own baseline entry.
//
// Determinism contract (the same one Campaign and the shrinker pin):
// given (--fuzz-seed, trial budget, base scenario), the whole run — corpus
// evolution, coverage set, findings, every emitted byte — is identical at
// every --fuzz-jobs level. Trials execute in parallel inside a generation,
// but candidates are derived from SplitMix64 chains over (seed, generation,
// candidate index) before the generation starts, and coverage/corpus state
// advances only at the generation barrier, folded in trial-index order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/shrink.h"
#include "fuzz/mutator.h"
#include "harness/scenario.h"

namespace lifeguard::fuzz {

/// The global seen-coverage set plus the corpus of timelines that extended
/// it. The corpus is append-only in discovery order (trial-index order
/// within a generation), so its contents — and the files written from it —
/// are independent of the jobs level.
class CoverageMap {
 public:
  /// Folds one trial's sorted key set in; returns how many keys were new.
  std::size_t merge(const std::vector<std::uint64_t>& keys);

  std::size_t size() const { return seen_.size(); }
  /// Order-independent digest of the whole seen set (sorted fold).
  std::uint64_t digest() const;

 private:
  std::unordered_set<std::uint64_t> seen_;
};

struct EngineOptions {
  /// Total trial budget (--fuzz N).
  int trials = 1000;
  /// Base of every derivation chain (--fuzz-seed).
  std::uint64_t seed = 1;
  /// Worker threads per generation, 0 = hardware (--fuzz-jobs). Never
  /// changes any output byte.
  int jobs = 0;
  /// Trials per generation barrier. Fixed and jobs-independent: corpus
  /// state only advances between generations.
  int generation_size = 25;
  /// Where reproducers, the corpus and coverage.json land; empty = keep
  /// everything in memory only.
  std::string out_dir;
  /// Write the corpus + coverage report even when there are no findings
  /// (the committed evidence-of-absence artifact).
  bool write_corpus = true;
  MutatorOptions mutator;
};

/// One violation the fuzzer found, shrunk and (when out_dir is set) written.
struct Finding {
  /// Distinct violated invariants of the original trial, sorted — the
  /// dedup signature (one finding per signature per run).
  std::vector<std::string> invariants;
  /// Global trial index that first hit the signature.
  int trial_index = 0;
  /// The shrunk minimal reproducer (name "fuzz-<invariant>-<hash>").
  harness::Scenario reproducer;
  check::ShrinkResult shrink;
  /// Path written under out_dir; empty when out_dir is empty.
  std::string file;
};

struct FuzzReport {
  int trials = 0;
  int generations = 0;
  std::size_t coverage_keys = 0;
  std::uint64_t coverage_digest = 0;
  std::size_t corpus_size = 0;
  std::vector<Finding> findings;
  /// Filenames (relative to out_dir) of the written corpus scenarios.
  std::vector<std::string> corpus_files;
  /// Path of the written coverage report; empty when nothing was written.
  std::string report_file;
};

class Engine {
 public:
  /// `base` supplies the cluster shape, config, membership spec and check
  /// knobs; its anomaly/timeline are replaced per candidate and its checks
  /// are force-enabled (Spec::all()) when off.
  Engine(harness::Scenario base, EngineOptions opts);

  /// Run the full budget. Throws ScenarioError on an unrunnable base and
  /// std::runtime_error when out_dir cannot be written.
  FuzzReport run();

 private:
  harness::Scenario base_;
  EngineOptions opts_;
};

// ---------------------------------------------------------------------------
// The committed coverage report (out_dir/coverage.json)

/// Machine-checked evidence of what a fuzz run searched: the budget, the
/// final coverage set size and digest, and per-corpus-file replay digests.
/// tests/fuzz re-runs every corpus scenario and pins that the union of
/// their coverage equals this document.
struct CoverageReport {
  static constexpr int kVersion = 1;

  std::uint64_t fuzz_seed = 0;
  int trials = 0;
  int generations = 0;
  int cluster_size = 0;
  std::size_t coverage_keys = 0;
  std::uint64_t coverage_digest = 0;

  struct CorpusEntry {
    std::string file;          ///< scenario filename, relative to the report
    std::uint64_t seed = 0;    ///< the trial seed baked into the scenario
    std::size_t new_keys = 0;  ///< keys this trial added when discovered
    std::uint64_t digest = 0;  ///< full coverage digest of the trial's run
  };
  std::vector<CorpusEntry> corpus;
  /// Reproducer filenames, relative to the report.
  std::vector<std::string> findings;
};

std::string coverage_report_to_json(const CoverageReport& r);
std::optional<CoverageReport> coverage_report_from_json(
    const std::string& text, std::string& error);
bool save_coverage_report(const CoverageReport& r, const std::string& path,
                          std::string& error);
std::optional<CoverageReport> load_coverage_report(const std::string& path,
                                                   std::string& error);

}  // namespace lifeguard::fuzz
