#include "fuzz/engine.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "check/coverage.h"
#include "check/flatjson.h"
#include "check/trace.h"
#include "harness/campaign.h"
#include "harness/gate.h"
#include "harness/scenariofile.h"

namespace lifeguard::fuzz {

namespace {

/// Folded into the candidate-derivation chain so fuzz candidate seeds can
/// never collide with the trial seeds of an ordinary campaign ("fuzz").
constexpr std::uint64_t kFuzzSalt = 0x66757a7aULL;

std::string hex8(std::uint64_t h) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08llx",
                static_cast<unsigned long long>((h ^ (h >> 32)) &
                                                0xffffffffULL));
  return buf;
}

std::string zero_pad4(std::size_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04zu", n);
  return buf;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

/// FNV-1a over strings and words — the reproducer-name hash. Depends only
/// on the minimal scenario's content, so the filename is jobs-invariant.
struct ContentHash {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void feed(std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
  }
  void feed(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
};

std::vector<fault::FaultKind> entry_kinds_of(const fault::Timeline& tl) {
  std::vector<fault::FaultKind> kinds;
  kinds.reserve(tl.size());
  for (const fault::TimelineEntry& e : tl.entries()) {
    kinds.push_back(e.fault.kind);
  }
  return kinds;
}

int effective_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

// ---------------------------------------------------------------------------
// CoverageMap

std::size_t CoverageMap::merge(const std::vector<std::uint64_t>& keys) {
  std::size_t fresh = 0;
  for (std::uint64_t k : keys) {
    if (seen_.insert(k).second) ++fresh;
  }
  return fresh;
}

std::uint64_t CoverageMap::digest() const {
  std::vector<std::uint64_t> keys(seen_.begin(), seen_.end());
  std::sort(keys.begin(), keys.end());
  return check::CoverageCollector::digest_of(keys);
}

// ---------------------------------------------------------------------------
// Engine

Engine::Engine(harness::Scenario base, EngineOptions opts)
    : base_(std::move(base)), opts_(std::move(opts)) {}

FuzzReport Engine::run() {
  harness::Scenario base = base_;
  base.anomaly = harness::AnomalyPlan::none();
  base.timeline = fault::Timeline{};
  // Force-enable the full suite (empty invariant list = every built-in);
  // tolerance knobs the caller tuned (cap, slack, settle) are respected.
  base.checks.enabled = true;

  // Keep candidate spans inside the window that leaves the convergence
  // invariant a settle-length disturbance-free tail to assert over.
  MutatorOptions mopts = opts_.mutator;
  {
    const Duration cap =
        base.run_length - base.checks.convergence_settle - sec(5);
    if (cap >= sec(5) && mopts.horizon > cap) mopts.horizon = cap;
  }
  const Mutator mutator(base.cluster_size, mopts);

  CoverageMap coverage;
  std::vector<fault::Timeline> corpus;
  std::vector<std::uint64_t> corpus_seeds;
  std::vector<std::size_t> corpus_new_keys;
  std::vector<std::uint64_t> corpus_digests;
  std::set<std::vector<std::string>> seen_signatures;
  std::vector<Finding> findings;

  int done = 0;
  int gen = 0;
  while (done < opts_.trials) {
    const int g_size = std::min(opts_.generation_size, opts_.trials - done);

    // Derive the whole generation's candidates before anything runs: each
    // is a pure function of (seed, generation, index, corpus-at-barrier).
    std::vector<fault::Timeline> cands;
    cands.reserve(static_cast<std::size_t>(g_size));
    for (int i = 0; i < g_size; ++i) {
      Rng rng(harness::trial_seed(
          opts_.seed, {kFuzzSalt, static_cast<std::uint64_t>(gen)}, i));
      if (corpus.empty() || rng.chance(0.2)) {
        cands.push_back(mutator.random_timeline(rng));
      } else {
        const fault::Timeline& parent =
            corpus[static_cast<std::size_t>(rng.uniform(corpus.size()))];
        const fault::Timeline& other =
            corpus[static_cast<std::size_t>(rng.uniform(corpus.size()))];
        cands.push_back(mutator.mutate(parent, other, rng));
      }
    }

    // One pre-allocated collector per trial index: workers touch disjoint
    // slots, the barrier fold below reads them in index order.
    std::vector<check::CoverageCollector> collectors;
    collectors.reserve(cands.size());
    for (const fault::Timeline& tl : cands) {
      collectors.emplace_back(entry_kinds_of(tl));
    }

    harness::Campaign camp;
    camp.name = "fuzz";
    camp.base = base;
    harness::Axis axis;
    axis.name = "candidate";
    for (int i = 0; i < g_size; ++i) {
      const fault::Timeline tl = cands[static_cast<std::size_t>(i)];
      axis.points.push_back(
          {"g" + std::to_string(gen) + "c" + std::to_string(i),
           (static_cast<std::uint64_t>(gen) << 20) |
               static_cast<std::uint64_t>(i),
           [tl](harness::Scenario& s) { s.timeline = tl; }});
    }
    camp.axes.push_back(std::move(axis));
    camp.repetitions = 1;
    camp.base_seed = opts_.seed;
    camp.jobs = opts_.jobs;
    camp.trial_sinks =
        [&collectors](const harness::TrialResult& t) {
          return std::vector<check::TraceSink*>{
              &collectors[static_cast<std::size_t>(t.trial_index)]};
        };
    const harness::CampaignResult result = harness::run(camp);

    // Generation barrier: fold coverage, corpus and findings in trial-index
    // order — the step that makes evolution jobs-invariant.
    for (int i = 0; i < g_size; ++i) {
      const harness::TrialResult& t =
          result.trials[static_cast<std::size_t>(i)];
      const std::vector<std::uint64_t> keys =
          collectors[static_cast<std::size_t>(i)].keys();
      const std::size_t fresh = coverage.merge(keys);
      if (fresh > 0) {
        corpus.push_back(cands[static_cast<std::size_t>(i)]);
        corpus_seeds.push_back(t.seed);
        corpus_new_keys.push_back(fresh);
        corpus_digests.push_back(check::CoverageCollector::digest_of(keys));
      }
      if (t.result.checks.total_violations > 0) {
        std::vector<std::string> sig =
            t.result.checks.violated_invariants();
        std::sort(sig.begin(), sig.end());
        if (seen_signatures.insert(sig).second) {
          harness::Scenario violating = base;
          violating.timeline = cands[static_cast<std::size_t>(i)];
          violating.seed = t.seed;

          Finding f;
          f.invariants = sig;
          f.trial_index = done + i;
          check::ShrinkOptions sopts;
          sopts.jobs = effective_jobs(opts_.jobs);
          f.shrink = check::shrink(violating, sopts);

          harness::Scenario minimal = f.shrink.minimal;
          ContentHash hash;
          for (const std::string& spec :
               check::timeline_specs(minimal.effective_timeline())) {
            hash.feed(spec);
          }
          hash.feed(minimal.seed);
          hash.feed(minimal.membership);
          for (const std::string& inv : sig) hash.feed(inv);
          minimal.name = "fuzz-" + sig.front() + "-" + hex8(hash.h);
          minimal.summary =
              "fuzzer reproducer: violates " + join(sig, ", ") +
              " (trial " + std::to_string(f.trial_index) + ", shrunk " +
              std::to_string(violating.timeline.size()) + " -> " +
              std::to_string(minimal.effective_timeline().size()) +
              " entries)";
          f.reproducer = std::move(minimal);
          findings.push_back(std::move(f));
        }
      }
    }
    done += g_size;
    ++gen;
  }

  FuzzReport report;
  report.trials = done;
  report.generations = gen;
  report.coverage_keys = coverage.size();
  report.coverage_digest = coverage.digest();
  report.corpus_size = corpus.size();
  report.findings = std::move(findings);

  if (!opts_.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts_.out_dir, ec);
    auto save_scenario = [&](const harness::Scenario& s) -> std::string {
      const std::string fname = harness::ScenarioFile::filename(s);
      const std::string path = opts_.out_dir + "/" + fname;
      std::string error;
      if (!harness::ScenarioFile::save(s, path, error)) {
        throw std::runtime_error("fuzz: cannot write " + path + ": " +
                                 error);
      }
      return fname;
    };

    harness::BaselineSet baselines;
    for (Finding& f : report.findings) {
      const std::string fname = save_scenario(f.reproducer);
      f.file = opts_.out_dir + "/" + fname;
      baselines.entries.push_back(
          harness::record_baseline(f.reproducer, f.shrink.minimal_result));
    }
    if (!baselines.entries.empty()) {
      std::string error;
      if (!harness::save_baselines_file(
              baselines, opts_.out_dir + "/baselines.json", error)) {
        throw std::runtime_error("fuzz: " + error);
      }
    }

    if (opts_.write_corpus) {
      CoverageReport cov;
      cov.fuzz_seed = opts_.seed;
      cov.trials = report.trials;
      cov.generations = report.generations;
      cov.cluster_size = base.cluster_size;
      cov.coverage_keys = report.coverage_keys;
      cov.coverage_digest = report.coverage_digest;
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        harness::Scenario c = base;
        c.timeline = corpus[i];
        c.seed = corpus_seeds[i];
        c.name = "fuzz-corpus-" + zero_pad4(i);
        c.summary = "fuzz corpus: +" + std::to_string(corpus_new_keys[i]) +
                    " coverage keys when discovered";
        const std::string fname = save_scenario(c);
        report.corpus_files.push_back(fname);
        cov.corpus.push_back(
            {fname, corpus_seeds[i], corpus_new_keys[i], corpus_digests[i]});
      }
      for (const Finding& f : report.findings) {
        cov.findings.push_back(
            harness::ScenarioFile::filename(f.reproducer));
      }
      report.report_file = opts_.out_dir + "/coverage.json";
      std::string error;
      if (!save_coverage_report(cov, report.report_file, error)) {
        throw std::runtime_error("fuzz: " + error);
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Coverage report codec

std::string coverage_report_to_json(const CoverageReport& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"type\": \"lifeguard-fuzz-coverage\",\n";
  os << "  \"version\": " << CoverageReport::kVersion << ",\n";
  os << "  \"fuzz_seed\": \"" << r.fuzz_seed << "\",\n";
  os << "  \"trials\": " << r.trials << ",\n";
  os << "  \"generations\": " << r.generations << ",\n";
  os << "  \"cluster_size\": " << r.cluster_size << ",\n";
  os << "  \"coverage_keys\": " << r.coverage_keys << ",\n";
  os << "  \"coverage_digest\": \"" << r.coverage_digest << "\",\n";
  os << "  \"corpus\": [";
  for (std::size_t i = 0; i < r.corpus.size(); ++i) {
    const CoverageReport::CorpusEntry& e = r.corpus[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << e.file << "\", \"seed\": \"" << e.seed
       << "\", \"new_keys\": " << e.new_keys << ", \"digest\": \""
       << e.digest << "\"}";
  }
  os << (r.corpus.empty() ? "],\n" : "\n  ],\n");
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "    \"" << r.findings[i] << "\"";
  }
  os << (r.findings.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::optional<CoverageReport> coverage_report_from_json(
    const std::string& text, std::string& error) {
  namespace fj = check::flatjson;
  fj::Value doc;
  if (!fj::parse(text, doc, error)) return std::nullopt;

  static const std::set<std::string> kKnown = {
      "type",          "version",       "fuzz_seed",
      "trials",        "generations",   "cluster_size",
      "coverage_keys", "coverage_digest", "corpus",
      "findings"};
  for (const auto& [key, value] : doc.members) {
    if (kKnown.find(key) == kKnown.end()) {
      error = "unknown key '" + key + "' in coverage report";
      return std::nullopt;
    }
  }

  CoverageReport r;
  std::string type;
  std::int64_t version = 0;
  if (!fj::get_str(doc, "type", type, error)) return std::nullopt;
  if (type != "lifeguard-fuzz-coverage") {
    error = "not a coverage report (type '" + type + "')";
    return std::nullopt;
  }
  if (!fj::get_i64(doc, "version", version, error)) return std::nullopt;
  if (version != CoverageReport::kVersion) {
    error = "unsupported coverage report version " + std::to_string(version);
    return std::nullopt;
  }
  std::int64_t trials = 0, generations = 0, cluster = 0, keys = 0;
  if (!fj::get_u64(doc, "fuzz_seed", r.fuzz_seed, error) ||
      !fj::get_i64(doc, "trials", trials, error) ||
      !fj::get_i64(doc, "generations", generations, error) ||
      !fj::get_i64(doc, "cluster_size", cluster, error) ||
      !fj::get_i64(doc, "coverage_keys", keys, error) ||
      !fj::get_u64(doc, "coverage_digest", r.coverage_digest, error)) {
    return std::nullopt;
  }
  r.trials = static_cast<int>(trials);
  r.generations = static_cast<int>(generations);
  r.cluster_size = static_cast<int>(cluster);
  r.coverage_keys = static_cast<std::size_t>(keys);

  const fj::Value* corpus = doc.find("corpus");
  if (corpus == nullptr || corpus->kind != fj::Value::Kind::kArray) {
    error = "coverage report needs a 'corpus' array";
    return std::nullopt;
  }
  for (const fj::Value& v : corpus->array) {
    if (v.kind != fj::Value::Kind::kObject) {
      error = "corpus entries must be objects";
      return std::nullopt;
    }
    CoverageReport::CorpusEntry e;
    std::int64_t new_keys = 0;
    if (!fj::get_str(v, "file", e.file, error) ||
        !fj::get_u64(v, "seed", e.seed, error) ||
        !fj::get_i64(v, "new_keys", new_keys, error) ||
        !fj::get_u64(v, "digest", e.digest, error)) {
      return std::nullopt;
    }
    e.new_keys = static_cast<std::size_t>(new_keys);
    r.corpus.push_back(std::move(e));
  }
  if (!fj::get_string_array(doc, "findings", r.findings, error)) {
    return std::nullopt;
  }
  return r;
}

bool save_coverage_report(const CoverageReport& r, const std::string& path,
                          std::string& error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    error = "cannot open " + path + " for writing";
    return false;
  }
  out << coverage_report_to_json(r);
  out.flush();
  if (!out) {
    error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::optional<CoverageReport> load_coverage_report(const std::string& path,
                                                   std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto r = coverage_report_from_json(buf.str(), error);
  if (!r) error = path + ": " + error;
  return r;
}

}  // namespace lifeguard::fuzz
