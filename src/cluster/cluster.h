// lifeguard::Cluster — one facade over both execution substrates.
//
// A Cluster owns N swim::Node agents plus the runtimes that drive them, and
// hides the Node↔Runtime wiring that examples and the harness used to do by
// hand. Two backends:
//
//   * kSim — the deterministic discrete-event simulator (sim::Simulator).
//     run_for() advances the virtual clock; a (config, seed) pair replays
//     identically. simulator() exposes the underlying Simulator for anomaly
//     injection and per-node event logs.
//   * kUdp — real loopback UDP sockets, one runtime loop thread per node
//     (net::UdpRuntime). run_for() sleeps wall-clock time; queries are
//     marshalled onto each node's loop thread.
//
// Cluster-wide membership events from every node fan into one EventBus;
// subscribe() returns a RAII Subscription (see swim/events.h).
//
// Build via ClusterBuilder:
//
//   auto cluster = lifeguard::ClusterBuilder()
//                      .size(16)
//                      .config(swim::Config::lifeguard())
//                      .seed(42)
//                      .build();          // sim backend by default
//   cluster->start();
//   cluster->run_for(sec(15));
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "swim/config.h"
#include "swim/events.h"
#include "swim/node.h"

namespace lifeguard {

class Cluster {
 public:
  enum class Backend { kSim, kUdp };

  ~Cluster();
  Cluster(Cluster&&) noexcept;
  Cluster& operator=(Cluster&&) noexcept;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Backend backend() const;
  int size() const;

  /// Start every node; all nodes except node 0 join through node 0.
  /// Idempotent.
  void start();
  /// Advance time by `d`: virtual clock (sim) or wall clock (udp).
  void run_for(Duration d);
  /// True when every running node sees exactly size() active members.
  bool converged() const;
  /// Run in small steps until converged() or `timeout` elapses; returns
  /// whether convergence was reached.
  bool await_convergence(Duration timeout);
  /// Stop every node. Idempotent; also invoked by the destructor.
  void stop();

  /// Cluster-wide event feed: every membership transition observed by any
  /// node. UDP backend: the handler runs on node loop threads.
  [[nodiscard]] swim::EventBus::Subscription subscribe(
      swim::EventBus::Handler fn);

  /// Node access. UDP backend: any use beyond name()/address() must be
  /// marshalled onto that node's loop thread — prefer the query helpers.
  swim::Node& node(int index);
  /// Thread-safe query of one node's active-member count.
  int active_members(int index) const;
  /// Hard-stop one node (no graceful leave), marshalled onto its loop
  /// thread on the UDP backend. The rest of the cluster keeps running.
  void stop_node(int index);
  /// Hard-kill one node (process death: it stops processing everything).
  /// Used by churn-style faults; on kUdp this is stop_node.
  void crash_node(int index);
  /// Replace a crashed node with a fresh process at the same address and
  /// rejoin it through node 0 (see sim::Simulator::restart_node). kSim only;
  /// throws std::invalid_argument on the UDP backend.
  void restart_node(int index);

  /// Merged metrics of every node (plus the network model on kSim).
  Metrics aggregate_metrics() const;

  /// The underlying simulator, or nullptr on the kUdp backend.
  sim::Simulator* simulator();

 private:
  friend class ClusterBuilder;
  struct Impl;
  explicit Cluster(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Fluent builder; build() validates and throws std::invalid_argument with
/// an actionable message on bad combinations.
class ClusterBuilder {
 public:
  ClusterBuilder& size(int num_nodes);
  ClusterBuilder& config(const swim::Config& cfg);
  ClusterBuilder& seed(std::uint64_t seed);
  ClusterBuilder& backend(Cluster::Backend b);
  /// Network model (kSim only).
  ClusterBuilder& network(const sim::NetworkParams& params);
  /// Per-message CPU cost once a backlog exists (kSim only).
  ClusterBuilder& msg_proc_cost(Duration cost);
  /// Simulated kernel receive-buffer bound per node (kSim only).
  ClusterBuilder& recv_buffer_bytes(std::size_t bytes);
  /// Retain only failure events in the per-node recordings (kSim only; see
  /// sim::SimParams::record_failures_only). The harness engine enables this:
  /// its metric extraction reads nothing else, and a big cluster's O(n²)
  /// join storm then never materializes as stored events.
  ClusterBuilder& record_failures_only(bool on);
  /// Membership backend spec (kSim only; see membership::BackendRegistry):
  /// "swim" (default), "central", "central:miss=N", "static". The UDP
  /// backend only runs swim; build() throws otherwise.
  ClusterBuilder& membership(std::string spec);

  std::unique_ptr<Cluster> build() const;

 private:
  int size_ = 8;
  swim::Config config_ = swim::Config::lifeguard();
  std::uint64_t seed_ = 1;
  Cluster::Backend backend_ = Cluster::Backend::kSim;
  sim::SimParams sim_params_;
};

}  // namespace lifeguard
