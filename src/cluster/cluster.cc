#include "cluster/cluster.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "net/udp_runtime.h"

namespace lifeguard {

namespace {

/// Run `fn` on a UDP runtime's loop thread and wait for its result.
template <typename T>
T query_on_loop(net::UdpRuntime& rt, std::function<T()> fn) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  T result{};
  rt.post([&] {
    T value = fn();
    {
      const std::lock_guard<std::mutex> lock(mu);
      result = std::move(value);
      done = true;
    }
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return result;
}

}  // namespace

struct Cluster::Impl {
  Cluster::Backend backend = Cluster::Backend::kSim;
  int size = 0;
  bool started = false;
  bool stopped = false;

  // ---- kSim ----
  std::unique_ptr<sim::Simulator> sim;

  // ---- kUdp ----
  struct UdpAgent {
    std::unique_ptr<net::UdpRuntime> rt;
    std::unique_ptr<swim::Node> node;
  };
  std::vector<UdpAgent> agents;
  swim::EventBus udp_bus;
  std::vector<swim::EventBus::Subscription> udp_feeders;
};

Cluster::Cluster(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Cluster::Cluster(Cluster&&) noexcept = default;
Cluster& Cluster::operator=(Cluster&&) noexcept = default;

Cluster::~Cluster() {
  if (impl_) stop();
}

Cluster::Backend Cluster::backend() const { return impl_->backend; }

int Cluster::size() const { return impl_->size; }

void Cluster::start() {
  if (impl_->started) return;
  impl_->started = true;
  if (impl_->sim) {
    impl_->sim->start_all();
    return;
  }
  for (auto& agent : impl_->agents) {
    swim::Node* node = agent.node.get();
    agent.rt->post([node] { node->start(); });
  }
  const Address seed_addr = impl_->agents[0].rt->local_address();
  for (std::size_t i = 1; i < impl_->agents.size(); ++i) {
    swim::Node* node = impl_->agents[i].node.get();
    impl_->agents[i].rt->post([node, seed_addr] { node->join({seed_addr}); });
  }
}

void Cluster::run_for(Duration d) {
  if (impl_->sim) {
    impl_->sim->run_for(d);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(d.us));
}

bool Cluster::converged() const {
  for (int i = 0; i < impl_->size; ++i) {
    if (active_members(i) != impl_->size) return false;
  }
  return true;
}

bool Cluster::await_convergence(Duration timeout) {
  const Duration step = impl_->sim ? msec(500) : msec(100);
  Duration waited{};
  while (true) {
    if (converged()) return true;
    if (waited >= timeout) return false;
    run_for(step);
    waited += step;
  }
}

void Cluster::stop() {
  if (impl_->stopped) return;
  impl_->stopped = true;
  if (impl_->sim) {
    for (int i = 0; i < impl_->size; ++i) impl_->sim->agent(i).stop();
    return;
  }
  for (auto& agent : impl_->agents) {
    swim::Node* node = agent.node.get();
    agent.rt->post([node] { node->stop(); });
  }
  for (auto& agent : impl_->agents) agent.rt->shutdown();
}

swim::EventBus::Subscription Cluster::subscribe(swim::EventBus::Handler fn) {
  if (impl_->sim) return impl_->sim->event_bus().subscribe(std::move(fn));
  return impl_->udp_bus.subscribe(std::move(fn));
}

swim::Node& Cluster::node(int index) {
  if (impl_->sim) return impl_->sim->node(index);
  return *impl_->agents[static_cast<std::size_t>(index)].node;
}

int Cluster::active_members(int index) const {
  if (impl_->sim) return impl_->sim->agent(index).active_members();
  auto& agent = impl_->agents[static_cast<std::size_t>(index)];
  swim::Node* node = agent.node.get();
  // After stop() the loop threads are joined: posting would never run (and
  // would deadlock the wait), but direct access is race-free.
  if (impl_->stopped) return node->members().num_active();
  return query_on_loop<int>(*agent.rt,
                            [node] { return node->members().num_active(); });
}

void Cluster::stop_node(int index) {
  if (impl_->stopped) return;  // already stopped cluster-wide
  if (impl_->sim) {
    impl_->sim->agent(index).stop();
    return;
  }
  auto& agent = impl_->agents[static_cast<std::size_t>(index)];
  swim::Node* node = agent.node.get();
  agent.rt->post([node] { node->stop(); });
}

void Cluster::crash_node(int index) {
  if (impl_->sim) {
    impl_->sim->crash_node(index);
    return;
  }
  stop_node(index);
}

void Cluster::restart_node(int index) {
  if (impl_->sim) {
    impl_->sim->restart_node(index);
    return;
  }
  throw std::invalid_argument(
      "Cluster::restart_node is only supported on the sim backend — the UDP "
      "runtime joins its loop thread on stop and cannot be restarted yet");
}

Metrics Cluster::aggregate_metrics() const {
  if (impl_->sim) return impl_->sim->aggregate_metrics();
  Metrics out;
  for (auto& agent : impl_->agents) {
    swim::Node* node = agent.node.get();
    if (impl_->stopped) {
      out.merge(node->metrics());  // loop threads joined; direct is safe
    } else {
      out.merge(query_on_loop<Metrics>(*agent.rt,
                                       [node] { return node->metrics(); }));
    }
  }
  return out;
}

sim::Simulator* Cluster::simulator() { return impl_->sim.get(); }

// ---------------------------------------------------------------------------
// ClusterBuilder

ClusterBuilder& ClusterBuilder::size(int num_nodes) {
  size_ = num_nodes;
  return *this;
}

ClusterBuilder& ClusterBuilder::config(const swim::Config& cfg) {
  config_ = cfg;
  return *this;
}

ClusterBuilder& ClusterBuilder::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

ClusterBuilder& ClusterBuilder::backend(Cluster::Backend b) {
  backend_ = b;
  return *this;
}

ClusterBuilder& ClusterBuilder::network(const sim::NetworkParams& params) {
  sim_params_.network = params;
  return *this;
}

ClusterBuilder& ClusterBuilder::msg_proc_cost(Duration cost) {
  sim_params_.msg_proc_cost = cost;
  return *this;
}

ClusterBuilder& ClusterBuilder::recv_buffer_bytes(std::size_t bytes) {
  sim_params_.recv_buffer_bytes = bytes;
  return *this;
}

ClusterBuilder& ClusterBuilder::record_failures_only(bool on) {
  sim_params_.record_failures_only = on;
  return *this;
}

ClusterBuilder& ClusterBuilder::membership(std::string spec) {
  sim_params_.membership = std::move(spec);
  return *this;
}

std::unique_ptr<Cluster> ClusterBuilder::build() const {
  if (size_ < 1) {
    throw std::invalid_argument(
        "ClusterBuilder: size must be >= 1, got " + std::to_string(size_) +
        " — call .size(n) with the number of member agents");
  }
  if (backend_ == Cluster::Backend::kUdp && size_ > 256) {
    throw std::invalid_argument(
        "ClusterBuilder: the UDP backend spawns one loop thread per node; " +
        std::to_string(size_) +
        " nodes is above the supported 256 — use the sim backend for large "
        "clusters");
  }
  if (backend_ == Cluster::Backend::kUdp && sim_params_.membership != "swim") {
    throw std::invalid_argument(
        "ClusterBuilder: the UDP backend only runs the swim membership "
        "backend (got '" +
        sim_params_.membership + "') — use the sim backend");
  }

  auto impl = std::make_unique<Cluster::Impl>();
  impl->backend = backend_;
  impl->size = size_;

  if (backend_ == Cluster::Backend::kSim) {
    sim::SimParams params = sim_params_;
    params.seed = seed_;
    impl->sim = std::make_unique<sim::Simulator>(size_, config_, params);
    return std::unique_ptr<Cluster>(new Cluster(std::move(impl)));
  }

  impl->agents.reserve(static_cast<std::size_t>(size_));
  swim::EventBus* bus = &impl->udp_bus;
  for (int i = 0; i < size_; ++i) {
    Cluster::Impl::UdpAgent agent;
    agent.rt = std::make_unique<net::UdpRuntime>(
        0, seed_ + static_cast<std::uint64_t>(i));
    agent.node = std::make_unique<swim::Node>(
        "node-" + std::to_string(i), agent.rt->local_address(), config_,
        *agent.rt);
    impl->udp_feeders.push_back(agent.node->subscribe(
        [bus](const swim::MemberEvent& e) { bus->publish(e); }));
    agent.rt->start(agent.node.get());
    impl->agents.push_back(std::move(agent));
  }
  return std::unique_ptr<Cluster>(new Cluster(std::move(impl)));
}

}  // namespace lifeguard
