#include "perf/suite.h"

#include <chrono>
#include <stdexcept>

#include "common/task.h"
#include "proto/broadcast.h"
#include "proto/wire.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "swim/config.h"
#include "swim/membership.h"

namespace lifeguard::perf {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Repeat `body` (one batch of `batch_items` operations) until `min_time_s`
/// elapsed; returns the measured Measurement with items_per_s filled in.
Measurement timed_loop(const SuiteOptions& opt, std::int64_t batch_items,
                       const std::function<void()>& body) {
  Measurement m;
  const double min_time = opt.quick ? opt.min_time_s / 4.0 : opt.min_time_s;
  const double start = now_s();
  double elapsed = 0.0;
  std::int64_t batches = 0;
  do {
    body();
    ++batches;
    elapsed = now_s() - start;
  } while (elapsed < min_time);
  m.wall_s = elapsed;
  m.iterations = batches;
  m.items_per_s =
      static_cast<double>(batches * batch_items) / std::max(elapsed, 1e-9);
  m.peak_rss_kb = peak_rss_kb();
  return m;
}

// ---------------------------------------------------------------------------
// micro suite — component hot paths

Measurement bench_event_queue(const SuiteOptions& opt) {
  constexpr std::int64_t kBatch = 100'000;
  return timed_loop(opt, kBatch, [] {
    sim::EventQueue q;
    TimePoint now{};
    std::int64_t sink = 0;
    for (std::int64_t i = 0; i < kBatch; ++i) {
      q.push(TimePoint{(i * 7919) % 100000}, [&sink, i] { sink += i; });
      if (i % 4 == 0) q.run_next(now);
    }
    while (q.run_next(now)) {
    }
  });
}

Measurement bench_event_queue_cancel(const SuiteOptions& opt) {
  constexpr std::int64_t kBatch = 100'000;
  return timed_loop(opt, kBatch, [] {
    sim::EventQueue q;
    TimePoint now{};
    std::uint64_t handles[64] = {};
    for (std::int64_t i = 0; i < kBatch; ++i) {
      const auto h = q.push(TimePoint{(i * 131) % 50000}, [] {});
      handles[i % 64] = h;
      if (i % 2 == 0) q.cancel(handles[(i * 31) % 64]);  // half cancelled
      if (i % 8 == 0) q.run_next(now);
    }
    while (q.run_next(now)) {
    }
  });
}

Measurement bench_task_dispatch(const SuiteOptions& opt) {
  constexpr std::int64_t kBatch = 1'000'000;
  return timed_loop(opt, kBatch, [] {
    // A capture the size of the simulator's delivery closure.
    struct Payload {
      void* p = nullptr;
      std::uint64_t a = 0, b = 0, c = 0;
    };
    std::int64_t sink = 0;
    for (std::int64_t i = 0; i < kBatch; ++i) {
      Payload pl{nullptr, static_cast<std::uint64_t>(i), 0, 0};
      Task t([pl, &sink] { sink += static_cast<std::int64_t>(pl.a); });
      t();
    }
  });
}

Measurement bench_codec_roundtrip(const SuiteOptions& opt) {
  constexpr std::int64_t kBatch = 100'000;
  return timed_loop(opt, kBatch, [] {
    const proto::Ping ping{12345, "node-042", "node-117", Address{1, 7946}};
    for (std::int64_t i = 0; i < kBatch; ++i) {
      BufWriter w(64);
      proto::encode(ping, w);
      const auto bytes = std::move(w).take();
      BufReader r(bytes);
      auto msg = proto::decode(r);
      if (!msg) throw std::runtime_error("codec roundtrip failed");
    }
  });
}

Measurement bench_broadcast_queue(const SuiteOptions& opt) {
  constexpr std::int64_t kBatch = 10'000;
  return timed_loop(opt, kBatch, [] {
    proto::BroadcastQueue q(4);
    const std::vector<std::uint8_t> frame(40, 0xab);
    for (std::int64_t i = 0; i < kBatch; ++i) {
      // Churn: rotating updates (each invalidates its predecessor),
      // drained by MTU-budget selections like the per-message piggyback.
      q.queue("member-" + std::to_string(i % 64), frame);
      if (i % 4 == 0) {
        auto out = q.get_broadcasts(2, 1400, 128);
        if (out.empty() && i > 64) throw std::runtime_error("empty select");
      }
    }
  });
}

Measurement bench_membership_selection(const SuiteOptions& opt) {
  constexpr std::int64_t kBatch = 10'000;
  return timed_loop(opt, kBatch, [] {
    Rng rng(42);
    swim::MembershipTable table("node-0");
    for (int i = 0; i < 256; ++i) {
      swim::Member m;
      m.name = "node-" + std::to_string(i);
      m.addr = Address{static_cast<std::uint32_t>(i) + 1, 7946};
      table.add(std::move(m), rng);
    }
    for (std::int64_t i = 0; i < kBatch; ++i) {
      auto picks = table.random_active(3, rng, {});
      if (picks.empty()) throw std::runtime_error("no candidates");
    }
  });
}

Measurement bench_agent_dispatch(const SuiteOptions& opt) {
  // The membership::Backend seam's cost: the sampler's per-tick access
  // pattern (view size, suspect/dead counts, health, queue depth) through
  // the Agent vtable. The cluster is built and settled outside the timed
  // loop — this measures dispatch, not simulation.
  constexpr std::int64_t kBatch = 100'000;
  sim::SimParams p;
  p.seed = 11;
  p.record_failures_only = true;
  sim::Simulator sim(16, swim::Config::lifeguard(), p);
  sim.start_all();
  sim.run_for(sec(10));
  return timed_loop(opt, kBatch, [&sim] {
    double sink = 0;
    for (std::int64_t i = 0; i < kBatch; ++i) {
      const membership::Agent& a = sim.agent(static_cast<int>(i % 16));
      sink += static_cast<double>(a.active_members() + a.suspect_count() +
                                  a.dead_count() + a.pending_broadcast_count());
      sink += a.health_score();
    }
    if (sink < 0) throw std::runtime_error("impossible");
  });
}

// ---------------------------------------------------------------------------
// sim suite — whole-simulator throughput

/// Run a healthy n-node cluster for `virtual_s` virtual seconds and report
/// virtual-seconds-per-second (items), events/sec and datagrams/sec.
Measurement bench_cluster(int n, std::int64_t virtual_s) {
  Measurement m;
  sim::SimParams p;
  p.seed = 7;
  p.record_failures_only = true;  // the harness engine's configuration
  sim::Simulator sim(n, swim::Config::lifeguard(), p);
  const double start = now_s();
  sim.start_all();
  sim.run_for(sec(virtual_s));
  const double elapsed = std::max(now_s() - start, 1e-9);
  m.wall_s = elapsed;
  m.iterations = 1;
  m.items_per_s = static_cast<double>(virtual_s) / elapsed;
  m.events_per_s = static_cast<double>(sim.queue().executed()) / elapsed;
  m.datagrams_per_s = static_cast<double>(sim.datagrams_routed()) / elapsed;
  m.peak_rss_kb = peak_rss_kb();
  return m;
}

/// The anomaly workload: block/unblock cycles over a 64-node cluster.
Measurement bench_cluster_anomaly(const SuiteOptions& opt) {
  Measurement m;
  sim::SimParams p;
  p.seed = 9;
  p.record_failures_only = true;
  sim::Simulator sim(64, swim::Config::swim_baseline(), p);
  const std::int64_t virtual_s = opt.quick ? 15 : 30;
  const double start = now_s();
  sim.start_all();
  sim.run_for(sec(virtual_s / 3));
  for (int v = 0; v < 8; ++v) sim.block_node(v);
  sim.run_for(sec(virtual_s / 2));
  for (int v = 0; v < 8; ++v) sim.unblock_node(v);
  sim.run_for(sec(virtual_s - virtual_s / 3 - virtual_s / 2));
  const double elapsed = std::max(now_s() - start, 1e-9);
  m.wall_s = elapsed;
  m.iterations = 1;
  m.items_per_s = static_cast<double>(virtual_s) / elapsed;
  m.events_per_s = static_cast<double>(sim.queue().executed()) / elapsed;
  m.datagrams_per_s = static_cast<double>(sim.datagrams_routed()) / elapsed;
  m.peak_rss_kb = peak_rss_kb();
  return m;
}

// ---------------------------------------------------------------------------
// registry

const std::vector<BenchCase>& micro_cases() {
  static const std::vector<BenchCase> cases = {
      {"micro/event-queue", "schedule/fire mix on the discrete-event queue",
       bench_event_queue, false},
      {"micro/event-queue-cancel", "schedule/cancel storm (timer churn)",
       bench_event_queue_cancel, false},
      {"micro/task-dispatch", "Task construction + dispatch, 32-byte capture",
       bench_task_dispatch, false},
      {"micro/codec-roundtrip", "ping encode+decode round trip",
       bench_codec_roundtrip, false},
      {"micro/broadcast-queue", "piggyback queue churn + MTU-fill selection",
       bench_broadcast_queue, false},
      {"micro/membership-selection", "random gossip-target selection, n=256",
       bench_membership_selection, false},
      {"micro/agent-dispatch",
       "sampler access pattern through the membership::Agent vtable, n=16",
       bench_agent_dispatch, false},
  };
  return cases;
}

const std::vector<BenchCase>& sim_cases() {
  static const std::vector<BenchCase> cases = {
      {"sim/cluster-n64", "healthy 64-node cluster, 30 virtual s",
       [](const SuiteOptions& opt) {
         return bench_cluster(64, opt.quick ? 10 : 30);
       },
       false},
      {"sim/cluster-n256", "healthy 256-node cluster, 20 virtual s",
       [](const SuiteOptions& opt) {
         return bench_cluster(256, opt.quick ? 5 : 20);
       },
       false},
      {"sim/cluster-n1024", "large-n tier: 1024 nodes, 15 virtual s",
       [](const SuiteOptions&) { return bench_cluster(1024, 15); }, true},
      {"sim/cluster-anomaly-n64",
       "64 nodes with an 8-victim synchronized block cycle",
       bench_cluster_anomaly, false},
  };
  return cases;
}

}  // namespace

std::vector<std::string> Suite::names() { return {"micro", "sim"}; }

const std::vector<BenchCase>* Suite::find(std::string_view suite) {
  if (suite == "micro") return &micro_cases();
  if (suite == "sim") return &sim_cases();
  return nullptr;
}

Baseline Suite::run(std::string_view suite, const SuiteOptions& opt,
                    std::FILE* progress) {
  const std::vector<BenchCase>* cases = find(suite);
  if (cases == nullptr) {
    throw std::invalid_argument("unknown suite '" + std::string(suite) +
                                "' (expected one of: micro, sim)");
  }
  Baseline b;
  b.suite = suite;
  b.created = utc_timestamp();
  b.host = host_fingerprint();
  b.build = build_fingerprint();
  b.commit = git_fingerprint();
  for (const BenchCase& c : *cases) {
    if (opt.quick && c.heavy) {
      if (progress != nullptr) {
        std::fprintf(progress, "%-32s skipped (--quick)\n", c.name.c_str());
      }
      continue;
    }
    Measurement m = c.fn(opt);
    m.name = c.name;
    if (progress != nullptr) {
      std::fprintf(progress, "%-32s %12.4g items/s  %10.4g events/s  %.2fs\n",
                   m.name.c_str(), m.items_per_s, m.events_per_s, m.wall_s);
    }
    b.entries.push_back(std::move(m));
  }
  return b;
}

}  // namespace lifeguard::perf
