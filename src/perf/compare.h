// perf::compare — diff two benchmark baselines and flag regressions.
//
// The primary metric per case is its throughput (items_per_s, falling back
// to events_per_s, falling back to 1/wall_s), so "change" is uniformly
// higher-is-better. A case regresses when its new throughput falls more
// than `threshold_pct` below the old one. CI runs this as a soft gate
// (report-only) against the committed BENCH_*.json; developers run it as a
// hard gate (nonzero exit) before updating a baseline.
#pragma once

#include <string>
#include <vector>

#include "perf/baseline.h"

namespace lifeguard::perf {

struct CaseDelta {
  std::string name;
  double old_value = 0.0;  ///< primary throughput in the old baseline
  double new_value = 0.0;  ///< primary throughput in the new baseline
  /// (new - old) / old * 100; positive = faster.
  double change_pct = 0.0;
  bool regression = false;
};

struct CompareReport {
  double threshold_pct = 0.0;
  std::vector<CaseDelta> deltas;            ///< cases present in both
  std::vector<std::string> only_in_old;     ///< dropped cases
  std::vector<std::string> only_in_new;     ///< added cases
  /// Most negative change among regressions; 0 when none regressed.
  double worst_regression_pct = 0.0;

  bool has_regression() const { return worst_regression_pct < 0.0; }
};

/// The case's uniform higher-is-better metric.
double primary_metric(const Measurement& m);

/// Diff `new_b` against `old_b` with the given regression threshold
/// (percent, e.g. 10.0 = fail on >10% throughput loss).
CompareReport compare(const Baseline& old_b, const Baseline& new_b,
                      double threshold_pct);

/// Human-readable table of the report (one line per case).
std::string format_report(const CompareReport& r);

}  // namespace lifeguard::perf
