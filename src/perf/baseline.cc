#include "perf/baseline.h"

#include <sys/resource.h>
#include <sys/utsname.h>

#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "harness/report.h"  // json_escape — one escaping rule set

namespace lifeguard::perf {

const Measurement* Baseline::find(const std::string& name) const {
  for (const Measurement& m : entries) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::int64_t peak_rss_kb() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::int64_t>(ru.ru_maxrss);  // KiB on Linux
}

std::string utc_timestamp() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm);
  return buf;
}

std::string host_fingerprint() {
  utsname u{};
  if (uname(&u) != 0) return "unknown";
  return std::string(u.sysname) + " " + u.release + " " + u.machine;
}

std::string build_fingerprint() {
  std::string out;
#if defined(__clang__)
  out = "clang " + std::to_string(__clang_major__) + "." +
        std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  out = "gcc " + std::to_string(__GNUC__) + "." +
        std::to_string(__GNUC_MINOR__);
#else
  out = "unknown-compiler";
#endif
#if defined(NDEBUG)
  out += ", NDEBUG";
#else
  out += ", assertions";
#endif
  return out;
}

namespace {

/// First output line of `cmd`, stripped of its newline; empty on any
/// failure (no git, not a repo, popen error).
std::string command_line_output(const char* cmd) {
  FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) return {};
  char buf[256] = {0};
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
  // Drain the rest: closing a pipe with unread output can SIGPIPE the
  // child and turn a successful command into a nonzero pclose status.
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
  }
  const int rc = ::pclose(pipe);
  if (rc != 0) return {};
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string git_fingerprint() {
  std::string sha =
      command_line_output("git rev-parse --short HEAD 2>/dev/null");
  if (sha.empty()) return {};
  // `git status --porcelain` prints one line per modification; any output
  // means the measured tree differs from the recorded sha.
  const std::string status =
      command_line_output("git status --porcelain 2>/dev/null");
  if (!status.empty()) sha += "-dirty";
  return sha;
}

std::string to_json(const Baseline& b) {
  using harness::json_escape;
  std::ostringstream os;
  os << "{\n";
  os << "  \"suite\": \"" << json_escape(b.suite) << "\",\n";
  os << "  \"created\": \"" << json_escape(b.created) << "\",\n";
  os << "  \"host\": \"" << json_escape(b.host) << "\",\n";
  os << "  \"build\": \"" << json_escape(b.build) << "\",\n";
  if (!b.commit.empty()) {
    os << "  \"commit\": \"" << json_escape(b.commit) << "\",\n";
  }
  os << "  \"entries\": [\n";
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    const Measurement& m = b.entries[i];
    os << "    {\"name\": \"" << json_escape(m.name) << "\", "
       << "\"wall_s\": " << fmt(m.wall_s) << ", "
       << "\"items_per_s\": " << fmt(m.items_per_s) << ", "
       << "\"events_per_s\": " << fmt(m.events_per_s) << ", "
       << "\"datagrams_per_s\": " << fmt(m.datagrams_per_s) << ", "
       << "\"peak_rss_kb\": " << m.peak_rss_kb << ", "
       << "\"iterations\": " << m.iterations << "}"
       << (i + 1 < b.entries.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Parsing — a minimal recursive scanner for this document shape (strings,
// numbers, one array of flat objects). Same spirit as the trace codec:
// tolerant of unknown keys, strict about structure.

namespace {

struct Scanner {
  std::string_view s;
  std::size_t i = 0;
  std::string error;

  bool fail(const std::string& msg) {
    error = msg + " at offset " + std::to_string(i);
    return false;
  }

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }

  bool expect(char c) {
    ws();
    if (i >= s.size() || s[i] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++i;
    return true;
  }

  bool peek(char c) {
    ws();
    return i < s.size() && s[i] == c;
  }

  bool string(std::string& out) {
    ws();
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return fail("dangling escape");
        const char esc = s[i++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default: return fail("unsupported escape");
        }
      }
      out += c;
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;
    return true;
  }

  bool number(double& out) {
    ws();
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
            s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E')) {
      ++i;
    }
    if (i == start) return fail("expected number");
    try {
      out = std::stod(std::string(s.substr(start, i - start)));
    } catch (...) {
      return fail("malformed number");
    }
    return true;
  }

  /// Skip any scalar value (string or number) — unknown-key tolerance.
  bool skip_scalar() {
    ws();
    if (i < s.size() && s[i] == '"') {
      std::string tmp;
      return string(tmp);
    }
    double tmp = 0;
    return number(tmp);
  }
};

bool parse_measurement(Scanner& sc, Measurement& m) {
  if (!sc.expect('{')) return false;
  if (sc.peek('}')) return sc.expect('}');
  for (;;) {
    std::string key;
    if (!sc.string(key) || !sc.expect(':')) return false;
    if (key == "name") {
      if (!sc.string(m.name)) return false;
    } else {
      double v = 0;
      if (key == "wall_s" || key == "items_per_s" || key == "events_per_s" ||
          key == "datagrams_per_s" || key == "peak_rss_kb" ||
          key == "iterations") {
        if (!sc.number(v)) return false;
        if (key == "wall_s") m.wall_s = v;
        else if (key == "items_per_s") m.items_per_s = v;
        else if (key == "events_per_s") m.events_per_s = v;
        else if (key == "datagrams_per_s") m.datagrams_per_s = v;
        else if (key == "peak_rss_kb") m.peak_rss_kb = static_cast<std::int64_t>(v);
        else m.iterations = static_cast<std::int64_t>(v);
      } else if (!sc.skip_scalar()) {
        return false;
      }
    }
    if (sc.peek(',')) {
      if (!sc.expect(',')) return false;
      continue;
    }
    return sc.expect('}');
  }
}

}  // namespace

std::optional<Baseline> from_json(const std::string& text,
                                  std::string& error) {
  Scanner sc{text, 0, {}};
  Baseline b;
  if (!sc.expect('{')) {
    error = sc.error;
    return std::nullopt;
  }
  for (;;) {
    std::string key;
    if (!sc.string(key) || !sc.expect(':')) {
      error = sc.error;
      return std::nullopt;
    }
    bool ok = true;
    if (key == "suite") ok = sc.string(b.suite);
    else if (key == "created") ok = sc.string(b.created);
    else if (key == "host") ok = sc.string(b.host);
    else if (key == "build") ok = sc.string(b.build);
    else if (key == "commit") ok = sc.string(b.commit);
    else if (key == "entries") {
      ok = sc.expect('[');
      if (ok && !sc.peek(']')) {
        for (;;) {
          Measurement m;
          if (!parse_measurement(sc, m)) {
            ok = false;
            break;
          }
          b.entries.push_back(std::move(m));
          if (sc.peek(',')) {
            if (!sc.expect(',')) { ok = false; break; }
            continue;
          }
          break;
        }
      }
      if (ok) ok = sc.expect(']');
    } else {
      ok = sc.skip_scalar();
    }
    if (!ok) {
      error = sc.error;
      return std::nullopt;
    }
    if (sc.peek(',')) {
      if (!sc.expect(',')) {
        error = sc.error;
        return std::nullopt;
      }
      continue;
    }
    if (!sc.expect('}')) {
      error = sc.error;
      return std::nullopt;
    }
    return b;
  }
}

bool save_baseline_file(const Baseline& b, const std::string& path,
                        std::string& error) {
  std::ofstream out(path);
  if (!out) {
    error = "cannot open " + path + " for writing";
    return false;
  }
  out << to_json(b);
  if (!out) {
    error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::optional<Baseline> load_baseline_file(const std::string& path,
                                           std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = from_json(buf.str(), error);
  if (!parsed) error = path + ": " + error;
  return parsed;
}

}  // namespace lifeguard::perf
