#include "perf/compare.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lifeguard::perf {

double primary_metric(const Measurement& m) {
  if (m.items_per_s > 0.0) return m.items_per_s;
  if (m.events_per_s > 0.0) return m.events_per_s;
  if (m.wall_s > 0.0) return 1.0 / m.wall_s;
  return 0.0;
}

CompareReport compare(const Baseline& old_b, const Baseline& new_b,
                      double threshold_pct) {
  CompareReport r;
  r.threshold_pct = threshold_pct;
  for (const Measurement& m : old_b.entries) {
    const Measurement* n = new_b.find(m.name);
    if (n == nullptr) {
      r.only_in_old.push_back(m.name);
      continue;
    }
    CaseDelta d;
    d.name = m.name;
    d.old_value = primary_metric(m);
    d.new_value = primary_metric(*n);
    d.change_pct = d.old_value > 0.0
                       ? (d.new_value - d.old_value) / d.old_value * 100.0
                       : 0.0;
    d.regression = d.change_pct < -threshold_pct;
    if (d.regression) {
      r.worst_regression_pct = std::min(r.worst_regression_pct, d.change_pct);
    }
    r.deltas.push_back(std::move(d));
  }
  for (const Measurement& m : new_b.entries) {
    if (old_b.find(m.name) == nullptr) r.only_in_new.push_back(m.name);
  }
  return r;
}

std::string format_report(const CompareReport& r) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-36s %14s %14s %9s\n", "case",
                "old (items/s)", "new (items/s)", "change");
  os << line;
  for (const CaseDelta& d : r.deltas) {
    std::snprintf(line, sizeof(line), "%-36s %14.4g %14.4g %+8.1f%%%s\n",
                  d.name.c_str(), d.old_value, d.new_value, d.change_pct,
                  d.regression ? "  <-- REGRESSION" : "");
    os << line;
  }
  for (const std::string& name : r.only_in_old) {
    os << name << ": missing from the new baseline\n";
  }
  for (const std::string& name : r.only_in_new) {
    os << name << ": new case (no old measurement)\n";
  }
  if (r.has_regression()) {
    std::snprintf(line, sizeof(line),
                  "worst regression %.1f%% exceeds the %.1f%% threshold\n",
                  r.worst_regression_pct, r.threshold_pct);
    os << line;
  } else {
    std::snprintf(line, sizeof(line),
                  "no regression beyond the %.1f%% threshold\n",
                  r.threshold_pct);
    os << line;
  }
  return os.str();
}

}  // namespace lifeguard::perf
