// perf::Suite — the uniform benchmark harness behind bench_runner.
//
// Suites group benchmark cases behind stable names ("micro" = component
// hot paths, "sim" = whole-simulator throughput including the large-n
// tier), each case producing one Measurement. Suite::run() executes a suite
// and assembles a Baseline (baseline.h) ready for --json emission and
// perf::compare gating. Everything is deterministic work measured with a
// wall clock — rates vary with the machine, which is exactly what a
// baseline records (its host/build metadata says where it was measured).
//
// The google-benchmark micro_* binaries remain for interactive exploration;
// this layer is the scriptable, artifact-producing path CI and the
// committed BENCH_*.json baselines use.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "perf/baseline.h"

namespace lifeguard::perf {

struct SuiteOptions {
  /// Shrink per-case work (CI smoke mode): micro cases time-box tighter,
  /// simulator cases run fewer virtual seconds and skip the largest n.
  bool quick = false;
  /// Minimum measured time per micro case, seconds.
  double min_time_s = 0.3;
};

/// One benchmark case: fn runs the workload and reports its rates.
struct BenchCase {
  std::string name;
  std::string summary;
  std::function<Measurement(const SuiteOptions&)> fn;
  /// Skipped in --quick mode (the big simulator cases).
  bool heavy = false;
};

class Suite {
 public:
  /// Registered suite names, stable CLI vocabulary.
  static std::vector<std::string> names();
  /// The cases of one suite; empty when the name is unknown.
  static const std::vector<BenchCase>* find(std::string_view suite);
  /// Run a whole suite. `progress` (may be null) receives one line per
  /// case as it completes.
  static Baseline run(std::string_view suite, const SuiteOptions& opt,
                      std::FILE* progress);
};

}  // namespace lifeguard::perf
