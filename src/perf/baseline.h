// Machine-readable performance baselines — the perf:: layer's artifact.
//
// A Baseline is what one `bench_runner --suite NAME --json FILE` run emits:
// run metadata (suite, host, build, creation time) plus one Measurement per
// benchmark case. Baselines are committed as BENCH_<suite>.json at the repo
// root so the performance trajectory is recorded next to the code it
// measures, and perf::compare (compare.h) diffs two of them to gate
// regressions. The format is plain JSON, hand-written and hand-parsed like
// the trace codec (check/trace.cc) — no external dependency.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lifeguard::perf {

/// One benchmark case's results. `items_per_s` is the case's primary
/// throughput (ops/sec for micro cases, virtual seconds per real second for
/// simulator cases); the event/datagram rates and peak RSS add the
/// simulator-specific dimensions the ROADMAP asks to track.
struct Measurement {
  std::string name;
  double wall_s = 0.0;            ///< total measured wall time
  double items_per_s = 0.0;       ///< primary throughput (higher is better)
  double events_per_s = 0.0;      ///< simulator events executed per second
  double datagrams_per_s = 0.0;   ///< datagrams routed per second
  std::int64_t peak_rss_kb = 0;   ///< process peak RSS after the case ran
  std::int64_t iterations = 0;    ///< repetitions folded into the rates

  bool operator==(const Measurement&) const = default;
};

struct Baseline {
  std::string suite;    ///< suite name ("micro", "sim", ...)
  std::string created;  ///< UTC timestamp, "YYYY-MM-DD HH:MM:SS"
  std::string host;     ///< uname summary of the measuring machine
  std::string build;    ///< compiler + build-type fingerprint
  /// git HEAD of the measured tree ("abc1234" or "abc1234-dirty"); empty
  /// when the measuring process ran outside a git checkout.
  std::string commit;
  std::vector<Measurement> entries;

  const Measurement* find(const std::string& name) const;
};

/// Current process peak RSS in KiB (getrusage; 0 if unavailable).
std::int64_t peak_rss_kb();
/// "YYYY-MM-DD HH:MM:SS" UTC now.
std::string utc_timestamp();
/// uname-based host fingerprint ("Linux 6.8.0 x86_64").
std::string host_fingerprint();
/// Compiler/build fingerprint ("gcc 12.2.0, NDEBUG").
std::string build_fingerprint();
/// Short git HEAD sha of the working tree, "-dirty"-suffixed when the
/// checkout has uncommitted changes ("abc1234" / "abc1234-dirty"). Empty
/// when git is unavailable or the cwd is not a repository — baselines stay
/// writable anywhere.
std::string git_fingerprint();

/// Pretty-printed JSON document (the BENCH_*.json format).
std::string to_json(const Baseline& b);
/// Parse a baseline document. Returns std::nullopt and sets `error` on
/// malformed input; unknown keys are ignored (forward compatibility).
std::optional<Baseline> from_json(const std::string& text, std::string& error);

bool save_baseline_file(const Baseline& b, const std::string& path,
                        std::string& error);
std::optional<Baseline> load_baseline_file(const std::string& path,
                                           std::string& error);

}  // namespace lifeguard::perf
