#include "check/spec.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace lifeguard::check {

Spec Spec::all() {
  Spec s;
  s.enabled = true;
  return s;  // empty invariant list = the full built-in suite
}

std::vector<std::string> Spec::validate() const {
  std::vector<std::string> errors;
  const std::vector<std::string>& known = builtin_invariant_names();
  std::set<std::string> seen;
  for (const std::string& name : invariants) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::string catalog;
      for (const std::string& k : known) {
        if (!catalog.empty()) catalog += ", ";
        catalog += k;
      }
      errors.push_back("checks.invariants names unknown invariant '" + name +
                       "' — the built-in suite is: " + catalog);
    } else if (!seen.insert(name).second) {
      errors.push_back("checks.invariants lists '" + name +
                       "' twice — each invariant runs once");
    }
  }
  if (timeout_slack < 0.0 || timeout_slack >= 1.0) {
    errors.push_back("checks.timeout_slack (" + std::to_string(timeout_slack) +
                     ") must be a fraction in [0, 1)");
  }
  if (convergence_settle < Duration{0}) {
    errors.push_back("checks.convergence_settle must be >= 0");
  }
  if (suspicion_cap < Duration{0}) {
    errors.push_back("checks.suspicion_cap must be >= 0 (0 = derive the "
                     "bound from the protocol config)");
  }
  if (max_violations < 1) {
    errors.push_back("checks.max_violations must be >= 1 — a checker that "
                     "retains nothing cannot explain a failure");
  }
  return errors;
}

std::string Violation::describe() const {
  std::ostringstream os;
  os << "[" << at.seconds() << "s] " << invariant;
  if (node >= 0) os << " node-" << node;
  if (member >= 0) os << " about node-" << member;
  os << ": " << message;
  return os.str();
}

std::vector<std::string> RunReport::violated_invariants() const {
  std::vector<std::string> out;
  for (const Violation& v : violations) {
    if (std::find(out.begin(), out.end(), v.invariant) == out.end()) {
      out.push_back(v.invariant);
    }
  }
  return out;
}

}  // namespace lifeguard::check
