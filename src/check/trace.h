// Trace record–replay: persist the merged event stream of one run as a
// compact JSONL artifact and re-execute it deterministically.
//
// A trace is a header line (everything needed to rebuild the Scenario: seed,
// cluster shape, config preset + suspicion tuning, network model, the
// effective fault timeline rendered in the --fault grammar, and the check
// Spec) followed by one line per TraceEvent and an event-count footer
// (truncation detection). Node identities are indices, so lines are tiny:
//
//   {"type":"trace","scenario":"packet-chaos","seed":"1",...}
//   {"t":15204983,"k":"suspect","n":3,"m":7,"o":3,"inc":2,"og":1}
//   ...
//   {"type":"end","events":3121}
//
// Because the engine is deterministic, a trace doubles as a reproducer: the
// header alone replays the run (check/replay.h), and the recorded stream
// pins what the replay must produce, element for element.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "check/events.h"
#include "check/spec.h"
#include "fault/fault.h"
#include "harness/scenario.h"

namespace lifeguard::check {

struct TraceHeader {
  std::string scenario;
  std::uint64_t seed = 1;
  int cluster_size = 0;
  Duration quiesce{};
  Duration run_length{};
  /// swim::Config::table1_name() of the run's config ("Custom" when it
  /// matches no preset — such traces replay only via replay(Scenario, ...)).
  std::string config_name;
  double suspicion_alpha = 0.0;
  double suspicion_beta = 0.0;
  int suspicion_k = 0;
  sim::NetworkParams network{};
  Duration msg_proc_cost{};
  std::size_t recv_buffer_bytes = 0;
  /// The effective fault timeline, one entry_spec() string per entry.
  std::vector<std::string> timeline;
  /// The run's check Spec (replays re-check with identical settings).
  Spec checks;
  /// Snapshot sampling interval (0 = telemetry off). Carried so a replay
  /// re-emits the same kMetricSample stream the recording produced.
  Duration metrics_interval{};
  /// True when the recording captured probe-round span events.
  bool probe_spans = false;
  /// Membership backend spec of the recorded run. The header key is only
  /// emitted when it differs from "swim" (and defaults to "swim" on load),
  /// keeping pre-backend traces byte-identical and loadable.
  std::string membership = "swim";
};

struct Trace {
  TraceHeader header;
  std::vector<TraceEvent> events;

  bool has_datagrams() const;
  bool has_probe_spans() const;
};

/// Retains the merged stream of one engine run (pass to harness::run's
/// `sinks`). The header is derived from the Scenario at construction.
class TraceRecorder : public TraceSink {
 public:
  explicit TraceRecorder(const harness::Scenario& s,
                         bool include_datagrams = false,
                         bool include_probe_spans = false);

  void on_trace_event(const TraceEvent& e) override;
  bool wants_datagrams() const override { return include_datagrams_; }
  bool wants_probe_spans() const override { return include_probe_spans_; }

  const Trace& trace() const { return trace_; }
  Trace take() { return std::move(trace_); }

 private:
  bool include_datagrams_;
  bool include_probe_spans_;
  Trace trace_;
};

/// Derive a trace header from a Scenario (what TraceRecorder stores).
TraceHeader make_header(const harness::Scenario& s);

// ---- event-line codec ----
/// One TraceEvent in the compact flat-JSON form trace files use for event
/// records ({"t":..,"k":"suspect","n":3,...}; no trailing newline). This is
/// also the wire form the live tier's control channel streams (one `EV `
/// line per event; see src/live/control.h) — one codec, so a live run's
/// recorded trace is indistinguishable from a simulated one.
std::string event_line(const TraceEvent& e);
/// Inverse of event_line; nullopt + `error` on malformed input.
std::optional<TraceEvent> event_from_line(std::string_view line,
                                          std::string& error);

/// Render one timeline entry in the `--fault` grammar such that
/// fault::parse_timeline_entry() reconstructs it exactly.
std::string entry_spec(const fault::TimelineEntry& e);
std::vector<std::string> timeline_specs(const fault::Timeline& tl);
/// Inverse of timeline_specs; nullopt + `error` on a malformed spec.
std::optional<fault::Timeline> timeline_from_specs(
    const std::vector<std::string>& specs, std::string& error);

// ---- persistence ----
void save_trace(const Trace& t, std::ostream& out);
/// False + `error` when the file cannot be written.
bool save_trace_file(const Trace& t, const std::string& path,
                     std::string& error);
/// nullopt + `error` (naming the offending line) on malformed input or a
/// truncated stream.
std::optional<Trace> load_trace(std::istream& in, std::string& error);
std::optional<Trace> load_trace_file(const std::string& path,
                                     std::string& error);

}  // namespace lifeguard::check
