// Deterministic trace replay.
//
// replay() re-executes a recorded run — the engine is deterministic, so the
// (scenario, seed) pair *is* the execution — while recording a fresh trace,
// then verifies the replayed stream against the recording element by
// element. A match certifies the reproducer: the same events, at the same
// virtual times, in the same order, bit for bit. A divergence names the
// first differing element (an engine change, a perturbed seed, or a
// corrupted trace).
//
// scenario_from_header() rebuilds the Scenario a trace header describes, so
// `scenario_runner --replay FILE` works from the artifact alone. Traces of
// non-preset ("Custom") protocol configs can only be replayed through the
// in-memory overload.
#pragma once

#include <optional>
#include <string>

#include "check/trace.h"
#include "harness/scenario.h"

namespace lifeguard::check {

struct ReplayResult {
  /// The re-executed run (RunResult::checks carries re-checked verdicts
  /// when the trace was recorded with checks enabled).
  harness::RunResult result;
  /// The freshly recorded stream.
  Trace trace;
  /// True when the replayed stream equals the recording element-wise.
  bool matches = false;
  /// First divergence, rendered ("event 1234: recorded ..., replayed ...");
  /// empty when matches.
  std::string divergence;
};

/// Re-run `s` and verify against `recorded`. The scenario must be the one
/// the trace was recorded from (use scenario_from_header for file traces).
ReplayResult replay(const harness::Scenario& s, const Trace& recorded);

/// Rebuild the Scenario a header describes; nullopt + `error` when the
/// config preset is unknown ("Custom") or the timeline fails to parse.
std::optional<harness::Scenario> scenario_from_header(const TraceHeader& h,
                                                      std::string& error);

/// Load, rebuild, and replay in one step.
std::optional<ReplayResult> replay_file(const std::string& path,
                                        std::string& error);

}  // namespace lifeguard::check
