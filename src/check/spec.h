// Checking-layer value types that ride inside harness::Scenario/RunResult.
//
// A check::Spec is a plain descriptor: which invariants run and the few
// tolerance knobs they read. It lives in Scenario (the `checks` slot) so a
// campaign sweeps and validates it like any other field. A RunReport is the
// per-run verdict carried back in RunResult: which invariants ran, how many
// events they saw, and every Violation (capped — the count is exact, the
// retained list bounded).
//
// Everything here is deterministic data derived only from the (scenario,
// seed) run, so campaign artifacts that include verdicts stay bit-identical
// at every jobs level. The invariant implementations live in invariant.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace lifeguard::check {

/// Stable names of the built-in invariant suite (the order they run in).
const std::vector<std::string>& builtin_invariant_names();

/// Which invariants to evaluate and with what tolerances.
struct Spec {
  bool enabled = false;
  /// Invariant names to run; empty means the full built-in suite.
  std::vector<std::string> invariants;

  /// Fractional tolerance on the suspicion-bounds window (timer-grain and
  /// float-rounding slack, not protocol slack).
  double timeout_slack = 0.05;
  /// convergence: only asserted when the run's tail — from the last fault /
  /// block / crash / restart event to run end — is at least this long;
  /// shorter tails make the check vacuously pass (the protocol was never
  /// given time to settle).
  Duration convergence_settle = sec(20);
  /// suspicion-bounds: when > 0, overrides the derived upper bound. Setting
  /// it below the protocol's real floor plants a deliberate violation —
  /// the shrinker's property tests are built on this knob.
  Duration suspicion_cap{};
  /// Retain at most this many Violation records (total_violations stays
  /// exact beyond the cap).
  std::size_t max_violations = 64;

  /// The full built-in suite, enabled.
  static Spec all();

  /// Empty when runnable; otherwise one actionable message per defect
  /// (unknown invariant names, out-of-range tolerances).
  std::vector<std::string> validate() const;
};

/// One invariant violation, anchored to the merged event stream.
struct Violation {
  std::string invariant;
  TimePoint at{};
  int node = -1;    ///< reporter / afflicted node (-1 for cluster-wide)
  int member = -1;  ///< subject member (-1 when not member-specific)
  std::string message;

  bool operator==(const Violation&) const = default;

  /// "[73.41s] suspicion-bounds node-3 about node-7: ..." — log form.
  std::string describe() const;
};

/// Per-run checking verdict (RunResult::checks).
struct RunReport {
  bool checked = false;
  /// Names of the invariants that ran, in execution order.
  std::vector<std::string> invariants;
  std::int64_t events_seen = 0;
  /// Exact violation count (violations.size() may be capped below it).
  std::int64_t total_violations = 0;
  std::vector<Violation> violations;

  bool passed() const { return checked && total_violations == 0; }
  /// Distinct violated invariant names, first-occurrence order.
  std::vector<std::string> violated_invariants() const;

  bool operator==(const RunReport&) const = default;
};

}  // namespace lifeguard::check
