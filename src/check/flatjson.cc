#include "check/flatjson.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace lifeguard::check::flatjson {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
}

bool scan_string(std::string_view s, std::size_t& i, std::string& out,
                 std::string& error) {
  if (i >= s.size() || s[i] != '"') {
    error = "expected '\"'";
    return false;
  }
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) {
        error = "dangling escape";
        return false;
      }
      const char esc = s[i++];
      switch (esc) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        case 'n': c = '\n'; break;
        case 'r': c = '\r'; break;
        case 't': c = '\t'; break;
        case 'u': {
          if (i + 4 > s.size()) {
            error = "truncated \\u escape";
            return false;
          }
          unsigned code = 0;
          for (int d = 0; d < 4; ++d) {
            const char hc = s[i++];
            code <<= 4;
            if (hc >= '0' && hc <= '9') code |= static_cast<unsigned>(hc - '0');
            else if (hc >= 'a' && hc <= 'f') code |= static_cast<unsigned>(hc - 'a' + 10);
            else if (hc >= 'A' && hc <= 'F') code |= static_cast<unsigned>(hc - 'A' + 10);
            else {
              error = "bad \\u escape";
              return false;
            }
          }
          // Artifacts only escape control characters; anything else is kept
          // as-is only when it fits one byte.
          if (code > 0xFF) {
            error = "unsupported \\u escape above 0xFF";
            return false;
          }
          c = static_cast<char>(code);
          break;
        }
        default:
          error = "unknown escape";
          return false;
      }
    }
    out += c;
  }
  if (i >= s.size()) {
    error = "unterminated string";
    return false;
  }
  ++i;  // closing quote
  return true;
}

bool scan_value(std::string_view s, std::size_t& i, Value& out,
                std::string& error);

bool scan_object(std::string_view s, std::size_t& i, Value& out,
                 std::string& error) {
  out.kind = Value::Kind::kObject;
  out.members.clear();
  if (i >= s.size() || s[i] != '{') {
    error = "expected '{'";
    return false;
  }
  ++i;
  skip_ws(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return true;
  }
  while (true) {
    std::string key;
    skip_ws(s, i);
    if (!scan_string(s, i, key, error)) return false;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') {
      error = "expected ':' after key '" + key + "'";
      return false;
    }
    ++i;
    Value v;
    if (!scan_value(s, i, v, error)) return false;
    // Duplicate keys keep the first occurrence (matching the old
    // map::emplace behavior of the trace scanner).
    if (out.find(key) == nullptr) {
      out.members.emplace_back(std::move(key), std::move(v));
    }
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    error = "expected ',' or '}'";
    return false;
  }
}

bool scan_value(std::string_view s, std::size_t& i, Value& out,
                std::string& error) {
  skip_ws(s, i);
  if (i >= s.size()) {
    error = "expected a value";
    return false;
  }
  if (s[i] == '"') {
    out.kind = Value::Kind::kString;
    return scan_string(s, i, out.text, error);
  }
  if (s[i] == '{') return scan_object(s, i, out, error);
  if (s[i] == 't' || s[i] == 'f') {
    const bool is_true = s.substr(i, 4) == "true";
    const bool is_false = s.substr(i, 5) == "false";
    if (!is_true && !is_false) {
      error = "bad literal";
      return false;
    }
    out.kind = Value::Kind::kBool;
    out.boolean = is_true;
    i += is_true ? 4 : 5;
    return true;
  }
  if (s[i] == '[') {
    ++i;
    out.kind = Value::Kind::kArray;
    out.array.clear();
    skip_ws(s, i);
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      Value element;
      if (!scan_value(s, i, element, error)) return false;
      out.array.push_back(std::move(element));
      skip_ws(s, i);
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      error = "expected ',' or ']' in array";
      return false;
    }
  }
  // number
  const std::size_t start = i;
  while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                          s[i] == '-' || s[i] == '+' || s[i] == '.' ||
                          s[i] == 'e' || s[i] == 'E')) {
    ++i;
  }
  if (i == start) {
    error = "expected a value";
    return false;
  }
  out.kind = Value::Kind::kNumber;
  out.text = std::string(s.substr(start, i - start));
  return true;
}

}  // namespace

bool parse(std::string_view text, Value& out, std::string& error) {
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') {
    error = "expected '{'";
    return false;
  }
  if (!scan_object(text, i, out, error)) return false;
  skip_ws(text, i);
  if (i != text.size()) {
    error = "trailing content after the document";
    return false;
  }
  return true;
}

bool get_i64(const Value& obj, const std::string& key, std::int64_t& out,
             std::string& error, bool required) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    if (required) error = "missing field '" + key + "'";
    return !required;
  }
  // Numbers arrive as raw tokens; seeds as strings — accept both.
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->text.c_str(), &end, 10);
  if (v->text.empty() || end != v->text.c_str() + v->text.size() ||
      errno == ERANGE) {
    error = "field '" + key + "' is not an integer";
    return false;
  }
  out = parsed;
  return true;
}

bool get_u64(const Value& obj, const std::string& key, std::uint64_t& out,
             std::string& error, bool required) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    if (required) error = "missing field '" + key + "'";
    return !required;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->text.c_str(), &end, 10);
  if (v->text.empty() || end != v->text.c_str() + v->text.size() ||
      errno == ERANGE) {
    error = "field '" + key + "' is not an unsigned integer";
    return false;
  }
  out = parsed;
  return true;
}

bool get_dbl(const Value& obj, const std::string& key, double& out,
             std::string& error, bool required) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    if (required) error = "missing field '" + key + "'";
    return !required;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v->text.c_str(), &end);
  if (v->text.empty() || end != v->text.c_str() + v->text.size() ||
      errno == ERANGE) {
    error = "field '" + key + "' is not a number";
    return false;
  }
  out = parsed;
  return true;
}

bool get_str(const Value& obj, const std::string& key, std::string& out,
             std::string& error, bool required) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    if (required) error = "missing string field '" + key + "'";
    return !required;
  }
  if (v->kind != Value::Kind::kString) {
    error = "field '" + key + "' is not a string";
    return false;
  }
  out = v->text;
  return true;
}

bool get_bool(const Value& obj, const std::string& key, bool& out,
              std::string& error, bool required) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    if (required) error = "missing field '" + key + "'";
    return !required;
  }
  if (v->kind != Value::Kind::kBool) {
    error = "field '" + key + "' is not a boolean";
    return false;
  }
  out = v->boolean;
  return true;
}

bool get_string_array(const Value& obj, const std::string& key,
                      std::vector<std::string>& out, std::string& error,
                      bool required) {
  const Value* v = obj.find(key);
  if (v == nullptr) {
    if (required) error = "missing array field '" + key + "'";
    return !required;
  }
  if (v->kind != Value::Kind::kArray) {
    error = "field '" + key + "' is not an array";
    return false;
  }
  out.clear();
  out.reserve(v->array.size());
  for (const Value& e : v->array) {
    if (e.kind != Value::Kind::kString) {
      error = "array '" + key + "' holds a non-string element";
      return false;
    }
    out.push_back(e.text);
  }
  return true;
}

}  // namespace lifeguard::check::flatjson
