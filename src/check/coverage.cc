#include "check/coverage.h"

#include <algorithm>

#include "common/rng.h"

namespace lifeguard::check {

namespace {

// Feature namespaces. Values are part of the committed golden digest —
// append, never renumber.
enum Tag : std::uint64_t {
  kTagTransition = 1,   ///< (prev state, new state)
  kTagOriginated = 2,   ///< (new state) when the reporter originated it
  kTagFaultSpan = 3,    ///< (FaultKind, member-event kind) while active
  kTagSuspWindow = 4,   ///< log2-seconds bucket of suspect -> failed
  kTagControl = 5,      ///< crash/restart/block/unblock seen
  kTagSpanEdge = 6,     ///< (FaultKind, start|end)
  kTagOverlap = 7,      ///< concurrently active fault entries at a start
  kTagCountBucket = 8,  ///< (member-event kind, log2 count)
};

/// Fixed mixing of up to three feature words under a tag. FNV-1a over
/// SplitMix64-whitened words: platform-independent, order-sensitive in its
/// arguments, and stable forever (the golden-digest contract).
std::uint64_t mix(std::uint64_t tag, std::uint64_t a, std::uint64_t b = 0,
                  std::uint64_t c = 0) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t v : {tag, a, b, c}) {
    h ^= splitmix64(v);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t pair_key(int node, int peer) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 32) |
         static_cast<std::uint32_t>(peer);
}

std::uint64_t log2_bucket(std::int64_t v) {
  std::uint64_t b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

constexpr std::uint8_t kNoState = 0xff;

}  // namespace

CoverageCollector::CoverageCollector(std::vector<fault::FaultKind> entry_kinds)
    : entry_kinds_(std::move(entry_kinds)),
      member_event_counts_(static_cast<std::size_t>(TraceEventKind::kLeft) + 1,
                           0) {}

void CoverageCollector::add_member_event(const TraceEvent& e) {
  const auto kind = static_cast<std::uint8_t>(e.kind);
  ++member_event_counts_[kind];

  const std::uint64_t pk = pair_key(e.node, e.peer);
  auto [it, inserted] = last_state_.try_emplace(pk, kNoState);
  const std::uint8_t prev = it->second;
  it->second = kind;
  keys_.insert(mix(kTagTransition, prev, kind));
  if (e.originated) keys_.insert(mix(kTagOriginated, kind));

  // Suspicion window: the span from the first suspect observation to the
  // failed verdict for the same (reporter, subject), log2 seconds.
  if (e.kind == TraceEventKind::kSuspect) {
    suspect_since_.try_emplace(pk, e.at);
  } else if (e.kind == TraceEventKind::kFailed) {
    const auto s = suspect_since_.find(pk);
    if (s != suspect_since_.end()) {
      const std::int64_t window_s =
          std::max<std::int64_t>((e.at - s->second).us / 1000000, 1);
      keys_.insert(mix(kTagSuspWindow, log2_bucket(window_s)));
      suspect_since_.erase(s);
    }
  } else {
    suspect_since_.erase(pk);
  }

  // Fault-span x member-state: which transitions happen under which kinds
  // of active badness.
  for (const auto& [entry, depth] : active_entries_) {
    if (depth <= 0) continue;
    const std::uint64_t fk =
        entry >= 0 && entry < static_cast<int>(entry_kinds_.size())
            ? static_cast<std::uint64_t>(entry_kinds_[static_cast<std::size_t>(
                  entry)])
            : 0x100 + static_cast<std::uint64_t>(entry);
    keys_.insert(mix(kTagFaultSpan, fk, kind));
  }
}

void CoverageCollector::add_fault_span(const TraceEvent& e) {
  const bool start = e.kind == TraceEventKind::kFaultStart;
  const std::uint64_t fk =
      e.peer >= 0 && e.peer < static_cast<int>(entry_kinds_.size())
          ? static_cast<std::uint64_t>(
                entry_kinds_[static_cast<std::size_t>(e.peer)])
          : 0x100 + static_cast<std::uint64_t>(e.peer);
  keys_.insert(mix(kTagSpanEdge, fk, start ? 1 : 0));
  if (start) {
    ++active_entries_[e.peer];
    std::int64_t overlap = 0;
    for (const auto& [entry, depth] : active_entries_) {
      if (depth > 0) ++overlap;
    }
    keys_.insert(mix(kTagOverlap, static_cast<std::uint64_t>(overlap)));
  } else {
    auto it = active_entries_.find(e.peer);
    if (it != active_entries_.end() && --it->second <= 0) {
      active_entries_.erase(it);
    }
  }
}

void CoverageCollector::on_trace_event(const TraceEvent& e) {
  if (is_member_event(e.kind)) {
    add_member_event(e);
    return;
  }
  switch (e.kind) {
    case TraceEventKind::kCrash:
    case TraceEventKind::kRestart:
    case TraceEventKind::kBlock:
    case TraceEventKind::kUnblock:
      keys_.insert(mix(kTagControl, static_cast<std::uint64_t>(e.kind)));
      break;
    case TraceEventKind::kFaultStart:
    case TraceEventKind::kFaultEnd:
      add_fault_span(e);
      break;
    default:  // metric samples, probe spans, datagrams: not coverage signal
      break;
  }
}

std::vector<std::uint64_t> CoverageCollector::keys() const {
  std::vector<std::uint64_t> out(keys_.begin(), keys_.end());
  for (std::size_t k = 0; k < member_event_counts_.size(); ++k) {
    if (member_event_counts_[k] > 0) {
      out.push_back(
          mix(kTagCountBucket, k, log2_bucket(member_event_counts_[k])));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint64_t CoverageCollector::digest_of(
    const std::vector<std::uint64_t>& keys) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t k : keys) {
    h ^= k;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace lifeguard::check
