// Delta-debugging fault-timeline shrinker.
//
// Given a scenario whose run violates an invariant, shrink() searches for a
// smaller scenario that still violates one of the *same* invariants: it
// repeatedly proposes reductions — drop a timeline entry, halve a victim
// set, halve a duration or onset, halve the observation window — re-runs
// each candidate (full deterministic engine run, same seed), and greedily
// accepts the first reduction that preserves the failure. The result is a
// seed-stable minimal reproducer: typically one or two entries that a human
// can read off.
//
// Determinism: every round generates its candidate list in a fixed order
// and accepts the lowest-index violating candidate. Candidates within a
// batch run concurrently (`jobs` — trials share nothing, exactly like the
// Campaign engine), but the accepted candidate depends only on the
// candidate order, so the minimal scenario is bit-identical at every jobs
// level.
#pragma once

#include <string>
#include <vector>

#include "harness/scenario.h"

namespace lifeguard::check {

struct ShrinkOptions {
  /// Concurrent candidate evaluations per batch (>= 1). Does not affect
  /// the result, only wall-clock.
  int jobs = 1;
  /// Accepted-reduction budget (each round accepts at most one).
  int max_rounds = 64;
  /// Durations are not halved below this (avoids grinding through
  /// microsecond tails that cannot change a verdict).
  Duration min_duration = msec(100);
  /// run_length is not halved below this.
  Duration min_run_length = sec(5);
};

struct ShrinkResult {
  /// The smallest still-violating scenario found (== the input scenario,
  /// checks-enabled, when nothing could be removed).
  harness::Scenario minimal;
  /// The violating run of `minimal`.
  harness::RunResult minimal_result;
  /// False when the input scenario did not violate anything — there is
  /// nothing to shrink and `minimal` is just the input.
  bool reproduced = false;
  /// Invariants the baseline violated; candidates must re-violate one.
  std::vector<std::string> target_invariants;
  int rounds = 0;
  /// Engine runs spent (baseline + candidate evaluations).
  int runs = 0;
  /// One line per accepted reduction ("drop entry 2: 4 -> 3 entries").
  std::vector<std::string> log;
};

/// Shrink `s` (its AnomalyPlan, if any, is first materialized into an
/// explicit timeline; checks are force-enabled with Spec::all() unless the
/// scenario already configures them).
ShrinkResult shrink(const harness::Scenario& s, const ShrinkOptions& opts = {});

}  // namespace lifeguard::check
