// The merged observation stream the checking layer is built on.
//
// A TraceEvent is one record of the combined simulator-event + membership
// EventBus stream: membership transitions (join/alive/suspect/failed/left,
// from swim::EventBus), process control (crash/restart/block/unblock, from
// sim::Simulator's tap), fault-timeline entry spans, and — optionally —
// routed datagrams. Node identities are indices (the simulator's "node-N"
// scheme), which keeps records compact, totally comparable, and bit-stable
// across runs: two deterministic runs of the same (scenario, seed) produce
// element-wise equal streams, which is what record–replay verification pins.
//
// TraceSink is the observer seam: check::Checker evaluates invariants over
// the stream live, check::TraceRecorder retains it for JSONL persistence,
// and check::EventTap (tap.h) wires a simulator to any number of sinks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace lifeguard::check {

enum class TraceEventKind : std::uint8_t {
  // -- membership transitions (swim::EventBus) --
  kJoin = 0,
  kAlive,
  kSuspect,
  kFailed,
  kLeft,
  // -- simulator events (sim::Simulator taps) --
  kCrash,
  kRestart,
  kBlock,
  kUnblock,
  kFaultStart,
  kFaultEnd,
  kDatagram,
  // -- telemetry (obs:: sampler and probe-round spans) --
  kMetricSample,
  kProbeStart,
  kProbeAck,
  kProbeIndirect,
  kProbeFail,
  kProbeNack,
};

const char* trace_event_kind_name(TraceEventKind k);
std::optional<TraceEventKind> trace_event_kind_from_name(std::string_view n);
/// True for the kinds that originate on the membership EventBus.
bool is_member_event(TraceEventKind k);

struct TraceEvent {
  TimePoint at{};
  TraceEventKind kind = TraceEventKind::kJoin;
  /// Member events: the reporter (where the transition happened). Control
  /// events: the afflicted node. kDatagram: the sender.
  int node = -1;
  /// Member events: the subject member. kDatagram: the receiver.
  /// kFaultStart/kFaultEnd: the fault::Timeline entry index.
  int peer = -1;
  /// Member events: the transition's originator node (-1 when unknown).
  int origin = -1;
  std::uint64_t incarnation = 0;
  /// Member events: true when the reporter itself originated the transition.
  bool originated = false;
  /// kMetricSample: the sampled value (peer holds the obs::Metric id).
  /// kProbeAck: the probe round-trip time in microseconds. 0 otherwise.
  double value = 0.0;

  bool operator==(const TraceEvent&) const = default;

  /// "12.304s suspect node-3 about node-7 (inc 2, origin node-3, local)" —
  /// for violation messages and divergence reports.
  std::string describe() const;
};

/// "node-12" -> 12; -1 for anything else. The simulator names every member
/// this way, so the mapping is total within a simulated cluster.
int node_index_of(std::string_view member_name);

/// True for the probe-round span kinds (kProbeStart..kProbeNack).
bool is_probe_span_event(TraceEventKind k);

/// Observer of the merged stream. Sinks that return false from
/// wants_datagrams() are not shown kDatagram records (they fire per routed
/// datagram — high volume, and noise in a persisted trace). Probe-round
/// spans are gated the same way by wants_probe_spans(): every probe fires
/// at least two of them, so they only flow to sinks that opt in.
/// kMetricSample records are delivered unconditionally — they are sparse
/// (one per metric per sampling interval) and every sink tolerates them.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_trace_event(const TraceEvent& e) = 0;
  virtual bool wants_datagrams() const { return false; }
  virtual bool wants_probe_spans() const { return false; }
};

}  // namespace lifeguard::check
