// check::CoverageCollector — structural coverage over the merged stream.
//
// The fuzzer (src/fuzz) needs a deterministic, compact answer to "did this
// trial exercise protocol behavior no earlier trial reached?". This sink
// folds the merged TraceEvent stream into a set of 64-bit feature keys:
//
//   * state-transition edges: (previous state -> new state) of a subject
//     member as observed by a reporter, deduplicated cluster-wide, plus
//     whether the reporter originated the transition;
//   * fault-span x member-state pairs: which membership transitions occur
//     while a fault of each FaultKind is active (kFaultStart/kFaultEnd
//     carry the timeline entry index; the constructor's kind list maps it
//     back to the FaultKind);
//   * suspicion-window edges: the log2 bucket of the observed
//     suspect -> failed window per (reporter, subject) pair — the invariant
//     window the suspicion-bounds check measures;
//   * process-control events seen (crash/restart/block/unblock), fault-span
//     begin/end edges per kind, and the overlap depth of concurrently
//     active fault entries;
//   * log2 count buckets per membership-transition kind, so "ten times as
//     many suspicions" is new coverage even when every edge was known.
//
// Keys are order-insensitive (a set), derived only from the stream, and the
// hash is a fixed FNV/SplitMix construction with no pointers, addresses or
// host state — two identical traces produce identical keys on any platform,
// which is what the golden-digest test pins.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/events.h"
#include "fault/fault.h"

namespace lifeguard::check {

class CoverageCollector final : public TraceSink {
 public:
  /// `entry_kinds[i]` is the FaultKind of fault::Timeline entry i — the
  /// index kFaultStart/kFaultEnd events carry in `peer`. Events naming an
  /// unknown entry index contribute span features under their raw index.
  explicit CoverageCollector(std::vector<fault::FaultKind> entry_kinds = {});

  void on_trace_event(const TraceEvent& e) override;

  /// Sorted, deduplicated feature keys of the stream seen so far, including
  /// the per-kind count buckets (recomputed on every call — cheap).
  std::vector<std::uint64_t> keys() const;

  /// Order-independent digest of keys(): FNV-1a folded over the sorted key
  /// list. Two runs with identical coverage have identical digests.
  std::uint64_t digest() const { return digest_of(keys()); }

  static std::uint64_t digest_of(const std::vector<std::uint64_t>& keys);

 private:
  void add_member_event(const TraceEvent& e);
  void add_fault_span(const TraceEvent& e);

  std::vector<fault::FaultKind> entry_kinds_;
  std::unordered_set<std::uint64_t> keys_;
  /// (reporter, subject) -> last observed state kind (for transition edges).
  std::unordered_map<std::uint64_t, std::uint8_t> last_state_;
  /// (reporter, subject) -> time the current suspicion was first observed.
  std::unordered_map<std::uint64_t, TimePoint> suspect_since_;
  /// Active fault entries, as a FaultKind occupancy count.
  std::unordered_map<int, int> active_entries_;
  std::vector<std::int64_t> member_event_counts_;
};

}  // namespace lifeguard::check
