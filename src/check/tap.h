// EventTap — wires a simulated cluster to the checking layer.
//
// One tap merges the simulator's SimEvent stream and the cluster-wide
// membership EventBus into TraceEvents and fans them out to any number of
// TraceSinks (a live Checker, a TraceRecorder, both). Attach it before
// Simulator::start_all() so join events are captured; detach (destruction)
// is RAII on both streams.
//
// The tap is a pure observer: it draws no randomness and mutates nothing,
// so attaching one never changes a (scenario, seed) run.
#pragma once

#include <vector>

#include "check/events.h"
#include "swim/events.h"

namespace lifeguard::sim {
class Simulator;
}

namespace lifeguard::check {

class EventTap {
 public:
  /// Subscribes to `sim`'s event bus and sim-event tap; every event is
  /// converted and forwarded to each sink (kDatagram only to sinks that
  /// want it). Sinks must outlive the tap.
  EventTap(sim::Simulator& sim, std::vector<TraceSink*> sinks);
  ~EventTap();

  EventTap(const EventTap&) = delete;
  EventTap& operator=(const EventTap&) = delete;

 private:
  void forward(const TraceEvent& e);

  sim::Simulator& sim_;
  std::vector<TraceSink*> sinks_;
  bool any_wants_datagrams_ = false;
  bool any_wants_probe_spans_ = false;
  swim::EventBus::Subscription bus_sub_;
  int sim_tap_token_ = 0;
};

}  // namespace lifeguard::check
