#include "check/tap.h"

#include <utility>

#include "sim/simulator.h"

namespace lifeguard::check {

namespace {

TraceEventKind member_event_kind(swim::EventType t) {
  switch (t) {
    case swim::EventType::kJoin:
      return TraceEventKind::kJoin;
    case swim::EventType::kAlive:
      return TraceEventKind::kAlive;
    case swim::EventType::kSuspect:
      return TraceEventKind::kSuspect;
    case swim::EventType::kFailed:
      return TraceEventKind::kFailed;
    case swim::EventType::kLeft:
      return TraceEventKind::kLeft;
  }
  return TraceEventKind::kJoin;
}

TraceEventKind sim_event_kind(sim::SimEventKind k) {
  switch (k) {
    case sim::SimEventKind::kCrash:
      return TraceEventKind::kCrash;
    case sim::SimEventKind::kRestart:
      return TraceEventKind::kRestart;
    case sim::SimEventKind::kBlock:
      return TraceEventKind::kBlock;
    case sim::SimEventKind::kUnblock:
      return TraceEventKind::kUnblock;
    case sim::SimEventKind::kFaultStart:
      return TraceEventKind::kFaultStart;
    case sim::SimEventKind::kFaultEnd:
      return TraceEventKind::kFaultEnd;
    case sim::SimEventKind::kDatagram:
      return TraceEventKind::kDatagram;
    case sim::SimEventKind::kProbeStart:
      return TraceEventKind::kProbeStart;
    case sim::SimEventKind::kProbeAck:
      return TraceEventKind::kProbeAck;
    case sim::SimEventKind::kProbeIndirect:
      return TraceEventKind::kProbeIndirect;
    case sim::SimEventKind::kProbeFail:
      return TraceEventKind::kProbeFail;
    case sim::SimEventKind::kProbeNack:
      return TraceEventKind::kProbeNack;
  }
  return TraceEventKind::kDatagram;
}

bool is_probe_span(sim::SimEventKind k) {
  switch (k) {
    case sim::SimEventKind::kProbeStart:
    case sim::SimEventKind::kProbeAck:
    case sim::SimEventKind::kProbeIndirect:
    case sim::SimEventKind::kProbeFail:
    case sim::SimEventKind::kProbeNack:
      return true;
    default:
      return false;
  }
}

}  // namespace

EventTap::EventTap(sim::Simulator& sim, std::vector<TraceSink*> sinks)
    : sim_(sim), sinks_(std::move(sinks)) {
  for (const TraceSink* s : sinks_) {
    any_wants_datagrams_ = any_wants_datagrams_ || s->wants_datagrams();
    any_wants_probe_spans_ = any_wants_probe_spans_ || s->wants_probe_spans();
  }
  bus_sub_ = sim.event_bus().subscribe([this](const swim::MemberEvent& me) {
    TraceEvent e;
    e.at = me.at;
    e.kind = member_event_kind(me.type);
    e.node = node_index_of(me.reporter);
    e.peer = node_index_of(me.member);
    e.origin = node_index_of(me.origin);
    e.incarnation = me.incarnation;
    e.originated = me.originated;
    forward(e);
  });
  sim_tap_token_ = sim.add_sim_tap([this](const sim::SimEvent& se) {
    if (se.kind == sim::SimEventKind::kDatagram && !any_wants_datagrams_) {
      return;
    }
    if (is_probe_span(se.kind) && !any_wants_probe_spans_) return;
    TraceEvent e;
    e.at = se.at;
    e.kind = sim_event_kind(se.kind);
    e.node = se.node;
    e.peer = se.peer;
    e.value = se.value;
    forward(e);
  });
}

EventTap::~EventTap() { sim_.remove_sim_tap(sim_tap_token_); }

void EventTap::forward(const TraceEvent& e) {
  const bool datagram = e.kind == TraceEventKind::kDatagram;
  const bool span = is_probe_span_event(e.kind);
  for (TraceSink* s : sinks_) {
    if (datagram && !s->wants_datagrams()) continue;
    if (span && !s->wants_probe_spans()) continue;
    s->on_trace_event(e);
  }
}

}  // namespace lifeguard::check
