#include "check/shrink.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace lifeguard::check {

namespace {

using harness::RunResult;
using harness::Scenario;

/// One proposed reduction: a mutated scenario plus a human-readable label.
struct Candidate {
  Scenario scenario;
  std::string label;
};

fault::Timeline without_entry(const fault::Timeline& tl, std::size_t skip) {
  fault::Timeline out;
  for (std::size_t i = 0; i < tl.size(); ++i) {
    if (i != skip) out.add(tl.entries()[i]);
  }
  return out;
}

/// Halve a victim selector's resolved size; false when already minimal.
bool halve_victims(fault::VictimSelector& v, int cluster_size) {
  const int n = v.resolved_count(cluster_size);
  if (n <= 1) return false;
  switch (v.mode) {
    case fault::VictimSelector::Mode::kUniform:
      v.count = n / 2;
      return true;
    case fault::VictimSelector::Mode::kExplicit:
      v.indices.resize(static_cast<std::size_t>(n / 2));
      return true;
    case fault::VictimSelector::Mode::kFraction:
      // Collapse to a concrete draw of half the size: simpler to read in a
      // reproducer than a fraction.
      v = fault::VictimSelector::uniform(n / 2);
      return true;
    case fault::VictimSelector::Mode::kIsland:
      v.count = n / 2;
      return true;
  }
  return false;
}

std::vector<Candidate> propose(const Scenario& current,
                               const ShrinkOptions& opts) {
  std::vector<Candidate> out;
  const fault::Timeline& tl = current.timeline;

  // 1. Drop whole entries — the biggest single reduction first.
  for (std::size_t i = 0; i < tl.size(); ++i) {
    Candidate c{current, "drop entry " + std::to_string(i) + " (" +
                             tl.entries()[i].describe() + ")"};
    c.scenario.timeline = without_entry(tl, i);
    out.push_back(std::move(c));
  }
  // 2. Halve victim sets.
  for (std::size_t i = 0; i < tl.size(); ++i) {
    Candidate c{current, "halve victims of entry " + std::to_string(i)};
    if (halve_victims(c.scenario.timeline.entry(i).victims,
                      current.cluster_size)) {
      out.push_back(std::move(c));
    }
  }
  // 3. Halve durations.
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const Duration d = tl.entries()[i].duration;
    if (d / 2 < opts.min_duration) continue;
    Candidate c{current, "halve duration of entry " + std::to_string(i)};
    c.scenario.timeline.entry(i).duration = d / 2;
    out.push_back(std::move(c));
  }
  // 4. Pull onsets toward zero.
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const Duration at = tl.entries()[i].at;
    if (at <= Duration{0}) continue;
    Candidate c{current, "halve onset of entry " + std::to_string(i)};
    c.scenario.timeline.entry(i).at =
        at < msec(10) ? Duration{0} : at / 2;
    out.push_back(std::move(c));
  }
  // 5. Shorten the observation window.
  if (current.run_length / 2 >= opts.min_run_length) {
    Candidate c{current, "halve run_length"};
    c.scenario.run_length = current.run_length / 2;
    out.push_back(std::move(c));
  }
  return out;
}

/// Does the run violate one of the target invariants?
bool violates_target(const RunResult& r,
                     const std::vector<std::string>& target) {
  for (const std::string& name : r.checks.violated_invariants()) {
    if (std::find(target.begin(), target.end(), name) != target.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace

ShrinkResult shrink(const Scenario& s, const ShrinkOptions& opts) {
  ShrinkResult out;

  Scenario current = s;
  if (!current.checks.enabled) current.checks = Spec::all();
  if (current.timeline.empty()) {
    current.timeline = current.effective_timeline();
    current.anomaly = harness::AnomalyPlan::none();
  }

  // Baseline: the input must fail, and what it fails is the shrink target.
  RunResult baseline = harness::run(current);
  ++out.runs;
  out.target_invariants = baseline.checks.violated_invariants();
  if (out.target_invariants.empty()) {
    out.minimal = std::move(current);
    out.minimal_result = std::move(baseline);
    return out;
  }
  out.reproduced = true;
  out.minimal_result = std::move(baseline);

  const int jobs = std::max(opts.jobs, 1);
  for (; out.rounds < opts.max_rounds; ) {
    const std::vector<Candidate> candidates = propose(current, opts);
    int accepted = -1;
    RunResult accepted_result;

    // Evaluate in index-ordered batches; accept the lowest-index violating
    // candidate. A batch runs concurrently, but acceptance depends only on
    // candidate order — the minimal scenario is jobs-invariant.
    for (std::size_t base = 0; base < candidates.size() && accepted < 0;
         base += static_cast<std::size_t>(jobs)) {
      const std::size_t batch =
          std::min(candidates.size() - base, static_cast<std::size_t>(jobs));
      std::vector<RunResult> results(batch);
      std::vector<bool> violating(batch, false);
      auto evaluate = [&](std::size_t offset) {
        const Scenario& cand = candidates[base + offset].scenario;
        if (!cand.validate().empty()) return;  // reduction broke the shape
        RunResult r = harness::run(cand);
        violating[offset] = violates_target(r, out.target_invariants);
        results[offset] = std::move(r);
      };
      if (batch == 1) {
        evaluate(0);
      } else {
        std::vector<std::thread> pool;
        pool.reserve(batch);
        for (std::size_t off = 0; off < batch; ++off) {
          pool.emplace_back(evaluate, off);
        }
        for (std::thread& th : pool) th.join();
      }
      out.runs += static_cast<int>(batch);
      for (std::size_t off = 0; off < batch; ++off) {
        if (violating[off]) {
          accepted = static_cast<int>(base + off);
          accepted_result = std::move(results[off]);
          break;
        }
      }
    }

    if (accepted < 0) break;  // fixpoint: nothing smaller still fails
    current = candidates[static_cast<std::size_t>(accepted)].scenario;
    out.minimal_result = std::move(accepted_result);
    out.log.push_back(candidates[static_cast<std::size_t>(accepted)].label +
                      " -> " + std::to_string(current.timeline.size()) +
                      " entries");
    ++out.rounds;
  }

  out.minimal = std::move(current);
  return out;
}

}  // namespace lifeguard::check
