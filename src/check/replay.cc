#include "check/replay.h"

#include <algorithm>

namespace lifeguard::check {

std::optional<harness::Scenario> scenario_from_header(const TraceHeader& h,
                                                      std::string& error) {
  const auto config = swim::Config::from_table1_name(h.config_name);
  if (!config) {
    error = "trace config '" + h.config_name +
            "' is not a known preset — a run with a hand-tuned Config can "
            "only be replayed via check::replay(Scenario, Trace)";
    return std::nullopt;
  }
  harness::Scenario s;
  s.name = h.scenario;
  s.summary = "replayed from trace";
  s.seed = h.seed;
  s.cluster_size = h.cluster_size;
  s.quiesce = h.quiesce;
  s.run_length = h.run_length;
  s.config = *config;
  s.config.suspicion_alpha = h.suspicion_alpha;
  s.config.suspicion_beta = h.suspicion_beta;
  s.config.suspicion_k = h.suspicion_k;
  s.network = h.network;
  s.msg_proc_cost = h.msg_proc_cost;
  s.recv_buffer_bytes = h.recv_buffer_bytes;
  const auto tl = timeline_from_specs(h.timeline, error);
  if (!tl) return std::nullopt;
  s.timeline = *tl;
  s.anomaly = harness::AnomalyPlan::none();
  s.checks = h.checks;
  s.metrics_interval = h.metrics_interval;
  s.membership = h.membership;
  if (auto errors = s.validate(); !errors.empty()) {
    error = "trace header rebuilds an invalid scenario: " + errors.front();
    return std::nullopt;
  }
  return s;
}

ReplayResult replay(const harness::Scenario& s, const Trace& recorded) {
  ReplayResult out;
  // Datagram and probe-span records are off by default; re-record them iff
  // the recording has them, so the two streams are comparable.
  TraceRecorder recorder(s, recorded.has_datagrams(),
                         recorded.header.probe_spans);
  out.result = harness::run(s, {&recorder});
  out.trace = recorder.take();

  const std::vector<TraceEvent>& a = recorded.events;
  const std::vector<TraceEvent>& b = out.trace.events;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) continue;
    out.divergence = "event " + std::to_string(i) + ": recorded {" +
                     a[i].describe() + "}, replayed {" + b[i].describe() + "}";
    return out;
  }
  if (a.size() != b.size()) {
    out.divergence = "recorded " + std::to_string(a.size()) +
                     " events but replay produced " + std::to_string(b.size());
    return out;
  }
  out.matches = true;
  return out;
}

std::optional<ReplayResult> replay_file(const std::string& path,
                                        std::string& error) {
  const auto trace = load_trace_file(path, error);
  if (!trace) return std::nullopt;
  const auto scenario = scenario_from_header(trace->header, error);
  if (!scenario) return std::nullopt;
  return replay(*scenario, *trace);
}

}  // namespace lifeguard::check
