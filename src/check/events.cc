#include "check/events.h"

#include <sstream>

namespace lifeguard::check {

const char* trace_event_kind_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kJoin:
      return "join";
    case TraceEventKind::kAlive:
      return "alive";
    case TraceEventKind::kSuspect:
      return "suspect";
    case TraceEventKind::kFailed:
      return "failed";
    case TraceEventKind::kLeft:
      return "left";
    case TraceEventKind::kCrash:
      return "crash";
    case TraceEventKind::kRestart:
      return "restart";
    case TraceEventKind::kBlock:
      return "block";
    case TraceEventKind::kUnblock:
      return "unblock";
    case TraceEventKind::kFaultStart:
      return "fault-start";
    case TraceEventKind::kFaultEnd:
      return "fault-end";
    case TraceEventKind::kDatagram:
      return "datagram";
    case TraceEventKind::kMetricSample:
      return "metric";
    case TraceEventKind::kProbeStart:
      return "probe-start";
    case TraceEventKind::kProbeAck:
      return "probe-ack";
    case TraceEventKind::kProbeIndirect:
      return "probe-indirect";
    case TraceEventKind::kProbeFail:
      return "probe-fail";
    case TraceEventKind::kProbeNack:
      return "probe-nack";
  }
  return "?";
}

std::optional<TraceEventKind> trace_event_kind_from_name(std::string_view n) {
  for (TraceEventKind k :
       {TraceEventKind::kJoin, TraceEventKind::kAlive, TraceEventKind::kSuspect,
        TraceEventKind::kFailed, TraceEventKind::kLeft, TraceEventKind::kCrash,
        TraceEventKind::kRestart, TraceEventKind::kBlock,
        TraceEventKind::kUnblock, TraceEventKind::kFaultStart,
        TraceEventKind::kFaultEnd, TraceEventKind::kDatagram,
        TraceEventKind::kMetricSample, TraceEventKind::kProbeStart,
        TraceEventKind::kProbeAck, TraceEventKind::kProbeIndirect,
        TraceEventKind::kProbeFail, TraceEventKind::kProbeNack}) {
    if (n == trace_event_kind_name(k)) return k;
  }
  return std::nullopt;
}

bool is_member_event(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kJoin:
    case TraceEventKind::kAlive:
    case TraceEventKind::kSuspect:
    case TraceEventKind::kFailed:
    case TraceEventKind::kLeft:
      return true;
    default:
      return false;
  }
}

bool is_probe_span_event(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kProbeStart:
    case TraceEventKind::kProbeAck:
    case TraceEventKind::kProbeIndirect:
    case TraceEventKind::kProbeFail:
    case TraceEventKind::kProbeNack:
      return true;
    default:
      return false;
  }
}

int node_index_of(std::string_view member_name) {
  constexpr std::string_view prefix = "node-";
  if (member_name.size() <= prefix.size() ||
      member_name.substr(0, prefix.size()) != prefix) {
    return -1;
  }
  int value = 0;
  for (char c : member_name.substr(prefix.size())) {
    if (c < '0' || c > '9') return -1;
    if (value > 1000000) return -1;  // absurd index: not a sim node name
    value = value * 10 + (c - '0');
  }
  return value;
}

std::string TraceEvent::describe() const {
  std::ostringstream os;
  os << at.seconds() << "s " << trace_event_kind_name(kind);
  if (is_member_event(kind)) {
    os << " node-" << node << " about node-" << peer << " (inc " << incarnation
       << ", origin node-" << origin << (originated ? ", local" : ", gossip")
       << ")";
  } else if (kind == TraceEventKind::kDatagram) {
    os << " node-" << node << " -> node-" << peer;
  } else if (kind == TraceEventKind::kFaultStart ||
             kind == TraceEventKind::kFaultEnd) {
    os << " entry " << peer;
  } else if (kind == TraceEventKind::kMetricSample) {
    os << " #" << peer;
    if (node >= 0) os << " node-" << node;
    os << " = " << value;
  } else if (is_probe_span_event(kind)) {
    os << " node-" << node << " -> node-" << peer;
    if (kind == TraceEventKind::kProbeAck) os << " (rtt " << value << "us)";
  } else {
    os << " node-" << node;
  }
  return os.str();
}

}  // namespace lifeguard::check
