// Minimal hand-rolled JSON scanner shared by the repo's artifact codecs.
//
// Grown out of the trace codec's flat-object scanner (check/trace.cc), now
// a small recursive value model so the scenario-file and baseline codecs
// (harness/scenariofile.h, harness/gate.h) can parse the same dialect:
// objects, arrays, strings, numbers and booleans — no null, no non-ASCII
// escapes above 0xFF, numbers kept as raw tokens until a typed accessor
// converts them. Newlines count as whitespace, so one parse() call handles
// both a single JSONL record and a pretty-printed multi-line document.
//
// The typed accessors carry the error discipline every codec here shares:
// failures name the offending key ("field 'nodes' is not an integer") so a
// caller can prefix file/line context and surface the message as-is.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lifeguard::check::flatjson {

struct Value {
  enum class Kind { kString, kNumber, kBool, kArray, kObject };
  Kind kind = Kind::kString;
  /// Unescaped string contents, or the raw number token ("12", "0.5",
  /// "1e-3"). Typed accessors parse the token; strings holding numbers
  /// (e.g. the seed convention "seed": "1") convert the same way.
  std::string text;
  bool boolean = false;
  std::vector<Value> array;
  /// Object members in file order (duplicate keys keep the first).
  std::vector<std::pair<std::string, Value>> members;

  /// First member named `key`; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

/// Parse one complete JSON document from `text`. The document must be a
/// single object; trailing non-whitespace is an error. False + `error`
/// (with a short reason) on malformed input.
bool parse(std::string_view text, Value& out, std::string& error);

// ---- typed member accessors ----
// All take an object Value. Optional fields (`required = false`) leave
// `out` untouched when the key is absent and return true.

bool get_i64(const Value& obj, const std::string& key, std::int64_t& out,
             std::string& error, bool required = true);
bool get_u64(const Value& obj, const std::string& key, std::uint64_t& out,
             std::string& error, bool required = true);
bool get_dbl(const Value& obj, const std::string& key, double& out,
             std::string& error, bool required = true);
bool get_str(const Value& obj, const std::string& key, std::string& out,
             std::string& error, bool required = true);
bool get_bool(const Value& obj, const std::string& key, bool& out,
              std::string& error, bool required = true);
/// Array of strings ("timeline": ["block@0us:16000000us,victims=4"]).
bool get_string_array(const Value& obj, const std::string& key,
                      std::vector<std::string>& out, std::string& error,
                      bool required = true);

}  // namespace lifeguard::check::flatjson
