#include "check/trace.h"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "check/flatjson.h"
#include "harness/report.h"

namespace lifeguard::check {

using harness::json_double;
using harness::json_escape;

bool Trace::has_datagrams() const {
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kDatagram) return true;
  }
  return false;
}

bool Trace::has_probe_spans() const {
  for (const TraceEvent& e : events) {
    if (is_probe_span_event(e.kind)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Header derivation & timeline specs

namespace {

std::string us_spec(Duration d) { return std::to_string(d.us) + "us"; }

std::string selector_spec(const fault::VictimSelector& v) {
  switch (v.mode) {
    case fault::VictimSelector::Mode::kUniform:
      return "victims=" + std::to_string(v.count);
    case fault::VictimSelector::Mode::kExplicit: {
      std::string out = "nodes=";
      for (std::size_t i = 0; i < v.indices.size(); ++i) {
        if (i > 0) out += "+";
        out += std::to_string(v.indices[i]);
      }
      return out;
    }
    case fault::VictimSelector::Mode::kFraction:
      return "pct=" + json_double(v.fraction * 100.0);
    case fault::VictimSelector::Mode::kIsland:
      return "island=" + std::to_string(v.count) + "+" +
             std::to_string(v.first);
  }
  return "victims=1";
}

}  // namespace

std::string entry_spec(const fault::TimelineEntry& e) {
  std::string out = std::string(fault_kind_name(e.fault.kind)) + "@" +
                    us_spec(e.at) + ":" + us_spec(e.duration) + "," +
                    selector_spec(e.victims);
  const fault::Fault& f = e.fault;
  switch (f.kind) {
    case fault::FaultKind::kBlock:
    case fault::FaultKind::kPartition:
      break;
    case fault::FaultKind::kIntervalBlock:
    case fault::FaultKind::kFlapping:
      out += ",d=" + us_spec(f.period) + ",i=" + us_spec(f.gap);
      break;
    case fault::FaultKind::kChurn:
      out += ",down=" + us_spec(f.period) + ",up=" + us_spec(f.gap);
      break;
    case fault::FaultKind::kStress:
      out += ",bmin=" + us_spec(f.stress.block_min) +
             ",bmax=" + us_spec(f.stress.block_max) +
             ",rmin=" + us_spec(f.stress.run_min) +
             ",rmax=" + us_spec(f.stress.run_max);
      break;
    case fault::FaultKind::kLinkLoss:
      out += ",egress=" + json_double(f.egress_loss) +
             ",ingress=" + json_double(f.ingress_loss);
      break;
    case fault::FaultKind::kLatency:
      out += ",extra=" + us_spec(f.extra_latency) +
             ",jitter=" + us_spec(f.jitter);
      break;
    case fault::FaultKind::kDuplicate:
      out += ",p=" + json_double(f.probability);
      break;
    case fault::FaultKind::kReorder:
      out += ",p=" + json_double(f.probability) +
             ",spread=" + us_spec(f.spread);
      break;
  }
  return out;
}

std::vector<std::string> timeline_specs(const fault::Timeline& tl) {
  std::vector<std::string> out;
  out.reserve(tl.size());
  for (const fault::TimelineEntry& e : tl.entries()) {
    out.push_back(entry_spec(e));
  }
  return out;
}

std::optional<fault::Timeline> timeline_from_specs(
    const std::vector<std::string>& specs, std::string& error) {
  fault::Timeline tl;
  for (const std::string& spec : specs) {
    std::string entry_error;
    const auto e = fault::parse_timeline_entry(spec, entry_error);
    if (!e) {
      error = "bad timeline spec '" + spec + "': " + entry_error;
      return std::nullopt;
    }
    tl.add(*e);
  }
  return tl;
}

TraceHeader make_header(const harness::Scenario& s) {
  TraceHeader h;
  h.scenario = s.name;
  h.seed = s.seed;
  h.cluster_size = s.cluster_size;
  h.quiesce = s.quiesce;
  h.run_length = s.run_length;
  // The header carries the preset name plus the suspicion tuning — the
  // only config fields the catalog varies. A config that differs from its
  // preset in any *other* field is recorded as "Custom" so replay_file
  // rejects it honestly instead of silently rebuilding the wrong run
  // (replay(Scenario, Trace) still works for such runs).
  h.config_name = s.config.table1_name();
  h.suspicion_alpha = s.config.suspicion_alpha;
  h.suspicion_beta = s.config.suspicion_beta;
  h.suspicion_k = s.config.suspicion_k;
  if (auto preset = swim::Config::from_table1_name(h.config_name)) {
    preset->suspicion_alpha = h.suspicion_alpha;
    preset->suspicion_beta = h.suspicion_beta;
    preset->suspicion_k = h.suspicion_k;
    if (!(*preset == s.config)) h.config_name = "Custom";
  }
  h.network = s.network;
  h.msg_proc_cost = s.msg_proc_cost;
  h.recv_buffer_bytes = s.recv_buffer_bytes;
  h.timeline = timeline_specs(s.effective_timeline());
  h.checks = s.checks;
  h.metrics_interval = s.metrics_interval;
  h.membership = s.membership;
  return h;
}

TraceRecorder::TraceRecorder(const harness::Scenario& s, bool include_datagrams,
                             bool include_probe_spans)
    : include_datagrams_(include_datagrams),
      include_probe_spans_(include_probe_spans) {
  trace_.header = make_header(s);
  trace_.header.probe_spans = include_probe_spans;
}

void TraceRecorder::on_trace_event(const TraceEvent& e) {
  trace_.events.push_back(e);
}

// ---------------------------------------------------------------------------
// Save

namespace {

std::string strings_json(const std::vector<std::string>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(v[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

std::string event_line(const TraceEvent& e) {
  std::string out = "{\"t\":" + std::to_string(e.at.us) + ",\"k\":\"" +
                    trace_event_kind_name(e.kind) + "\"";
  if (e.node >= 0) out += ",\"n\":" + std::to_string(e.node);
  if (e.peer >= 0) out += ",\"m\":" + std::to_string(e.peer);
  if (e.origin >= 0) out += ",\"o\":" + std::to_string(e.origin);
  if (e.incarnation != 0) out += ",\"inc\":" + std::to_string(e.incarnation);
  if (e.originated) out += ",\"og\":1";
  if (e.value != 0.0) out += ",\"v\":" + json_double(e.value);
  out += "}";
  return out;
}

void save_trace(const Trace& t, std::ostream& out) {
  const TraceHeader& h = t.header;
  out << "{\"type\":\"trace\",\"version\":1"
      << ",\"scenario\":\"" << json_escape(h.scenario) << "\""
      << ",\"seed\":\"" << h.seed << "\""
      << ",\"nodes\":" << h.cluster_size
      << ",\"quiesce_us\":" << h.quiesce.us
      << ",\"run_length_us\":" << h.run_length.us
      << ",\"config\":\"" << json_escape(h.config_name) << "\""
      << ",\"alpha\":" << json_double(h.suspicion_alpha)
      << ",\"beta\":" << json_double(h.suspicion_beta)
      << ",\"k\":" << h.suspicion_k
      << ",\"loss\":" << json_double(h.network.udp_loss)
      << ",\"lat_min_us\":" << h.network.latency_min.us
      << ",\"lat_max_us\":" << h.network.latency_max.us
      << ",\"proc_us\":" << h.msg_proc_cost.us
      << ",\"rbuf\":" << h.recv_buffer_bytes
      << ",\"timeline\":" << strings_json(h.timeline)
      << ",\"checked\":" << (h.checks.enabled ? "true" : "false")
      << ",\"invariants\":" << strings_json(h.checks.invariants)
      << ",\"slack\":" << json_double(h.checks.timeout_slack)
      << ",\"settle_us\":" << h.checks.convergence_settle.us
      << ",\"cap_us\":" << h.checks.suspicion_cap.us
      << ",\"max_violations\":" << h.checks.max_violations
      << ",\"metrics_us\":" << h.metrics_interval.us
      << ",\"spans\":" << (h.probe_spans ? "true" : "false");
  // Emitted only for non-default backends: pre-membership traces stay
  // byte-identical (golden-parity) and load with the "swim" default.
  if (h.membership != "swim") {
    out << ",\"membership\":\"" << json_escape(h.membership) << "\"";
  }
  out << "}\n";
  for (const TraceEvent& e : t.events) {
    out << event_line(e) << "\n";
  }
  out << "{\"type\":\"end\",\"events\":" << t.events.size() << "}\n";
}

bool save_trace_file(const Trace& t, const std::string& path,
                     std::string& error) {
  std::ofstream out(path);
  if (!out) {
    error = "cannot open '" + path + "' for writing";
    return false;
  }
  save_trace(t, out);
  out.flush();
  if (!out) {
    error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Load (shared flat-JSON scanner — check/flatjson.h)

namespace {

using flatjson::Value;
using flatjson::get_dbl;
using flatjson::get_i64;
using flatjson::get_str;
using flatjson::get_string_array;
using flatjson::get_u64;

const Value* field(const Value& o, const std::string& key) {
  return o.find(key);
}

bool parse_header(const Value& o, TraceHeader& h, std::string& error) {
  std::int64_t i64 = 0;
  if (!get_str(o, "scenario", h.scenario, error)) return false;
  if (!get_u64(o, "seed", h.seed, error)) return false;
  if (!get_i64(o, "nodes", i64, error)) return false;
  h.cluster_size = static_cast<int>(i64);
  if (!get_i64(o, "quiesce_us", h.quiesce.us, error)) return false;
  if (!get_i64(o, "run_length_us", h.run_length.us, error)) return false;
  if (!get_str(o, "config", h.config_name, error)) return false;
  if (!get_dbl(o, "alpha", h.suspicion_alpha, error)) return false;
  if (!get_dbl(o, "beta", h.suspicion_beta, error)) return false;
  if (!get_i64(o, "k", i64, error)) return false;
  h.suspicion_k = static_cast<int>(i64);
  if (!get_dbl(o, "loss", h.network.udp_loss, error)) return false;
  if (!get_i64(o, "lat_min_us", h.network.latency_min.us, error)) return false;
  if (!get_i64(o, "lat_max_us", h.network.latency_max.us, error)) return false;
  if (!get_i64(o, "proc_us", h.msg_proc_cost.us, error)) return false;
  if (!get_i64(o, "rbuf", i64, error)) return false;
  h.recv_buffer_bytes = static_cast<std::size_t>(i64);
  if (!get_string_array(o, "timeline", h.timeline, error)) return false;
  const Value* checked = field(o, "checked");
  h.checks.enabled = checked != nullptr && checked->boolean;
  if (!get_string_array(o, "invariants", h.checks.invariants, error,
                        /*required=*/false)) {
    return false;
  }
  if (!get_dbl(o, "slack", h.checks.timeout_slack, error)) return false;
  if (!get_i64(o, "settle_us", h.checks.convergence_settle.us, error)) {
    return false;
  }
  if (!get_i64(o, "cap_us", h.checks.suspicion_cap.us, error)) return false;
  if (!get_i64(o, "max_violations", i64, error)) return false;
  h.checks.max_violations = static_cast<std::size_t>(i64);
  // Telemetry fields are optional: pre-telemetry traces omit them.
  if (!get_i64(o, "metrics_us", h.metrics_interval.us, error,
               /*required=*/false)) {
    return false;
  }
  if (const Value* spans = field(o, "spans")) {
    h.probe_spans = spans->boolean;
  }
  // Absent in pre-backend and swim traces; defaults to "swim".
  if (!get_str(o, "membership", h.membership, error, /*required=*/false)) {
    return false;
  }
  return true;
}

bool parse_event(const Value& o, TraceEvent& e, std::string& error) {
  std::string kind_name;
  if (!get_i64(o, "t", e.at.us, error)) return false;
  if (!get_str(o, "k", kind_name, error)) return false;
  const auto kind = trace_event_kind_from_name(kind_name);
  if (!kind) {
    error = "unknown event kind '" + kind_name + "'";
    return false;
  }
  e.kind = *kind;
  std::int64_t i64 = -1;
  if (!get_i64(o, "n", i64, error, /*required=*/false)) return false;
  e.node = static_cast<int>(i64);
  i64 = -1;
  if (!get_i64(o, "m", i64, error, /*required=*/false)) return false;
  e.peer = static_cast<int>(i64);
  i64 = -1;
  if (!get_i64(o, "o", i64, error, /*required=*/false)) return false;
  e.origin = static_cast<int>(i64);
  if (field(o, "inc") != nullptr) {
    if (!get_u64(o, "inc", e.incarnation, error)) return false;
  }
  i64 = 0;
  if (!get_i64(o, "og", i64, error, /*required=*/false)) return false;
  e.originated = i64 != 0;
  if (field(o, "v") != nullptr) {
    if (!get_dbl(o, "v", e.value, error)) return false;
  }
  return true;
}

}  // namespace

std::optional<TraceEvent> event_from_line(std::string_view line,
                                          std::string& error) {
  Value o;
  if (!flatjson::parse(line, o, error)) return std::nullopt;
  TraceEvent e;
  if (!parse_event(o, e, error)) return std::nullopt;
  return e;
}

std::optional<Trace> load_trace(std::istream& in, std::string& error) {
  Trace t;
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  bool have_footer = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Value o;
    std::string scan_error;
    if (!flatjson::parse(line, o, scan_error)) {
      error = "line " + std::to_string(line_no) + ": " + scan_error;
      return std::nullopt;
    }
    if (const Value* type = field(o, "type")) {
      if (type->text == "trace") {
        if (have_header) {
          error = "line " + std::to_string(line_no) + ": duplicate header";
          return std::nullopt;
        }
        if (!parse_header(o, t.header, error)) {
          error = "line " + std::to_string(line_no) + ": " + error;
          return std::nullopt;
        }
        have_header = true;
        continue;
      }
      if (type->text == "end") {
        std::int64_t count = 0;
        if (!get_i64(o, "events", count, error)) {
          error = "line " + std::to_string(line_no) + ": " + error;
          return std::nullopt;
        }
        if (count != static_cast<std::int64_t>(t.events.size())) {
          error = "trace is truncated: footer declares " +
                  std::to_string(count) + " events, file has " +
                  std::to_string(t.events.size());
          return std::nullopt;
        }
        have_footer = true;
        continue;
      }
      error = "line " + std::to_string(line_no) + ": unknown record type '" +
              type->text + "'";
      return std::nullopt;
    }
    if (!have_header) {
      error = "line " + std::to_string(line_no) +
              ": event record before the trace header";
      return std::nullopt;
    }
    TraceEvent e;
    if (!parse_event(o, e, error)) {
      error = "line " + std::to_string(line_no) + ": " + error;
      return std::nullopt;
    }
    t.events.push_back(e);
  }
  if (!have_header) {
    error = "not a trace: no header line";
    return std::nullopt;
  }
  if (!have_footer) {
    error = "trace is truncated: no end-of-trace footer";
    return std::nullopt;
  }
  return t;
}

std::optional<Trace> load_trace_file(const std::string& path,
                                     std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return load_trace(in, error);
}

}  // namespace lifeguard::check
